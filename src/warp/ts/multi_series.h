// Multichannel (multivariate) time series.
//
// Used by the Appendix-B gesture reproduction, where each exemplar has
// several synchronized channels (e.g. accelerometer axes or skeleton key
// points). Channels share a common length; storage is channel-major so a
// single channel is a contiguous span.

#ifndef WARP_TS_MULTI_SERIES_H_
#define WARP_TS_MULTI_SERIES_H_

#include <cstddef>
#include <span>
#include <vector>

#include "warp/ts/time_series.h"

namespace warp {

class MultiSeries {
 public:
  MultiSeries() = default;
  MultiSeries(size_t num_channels, size_t length, int label = TimeSeries::kUnlabeled);

  // Builds from per-channel vectors; all channels must have equal length.
  explicit MultiSeries(std::vector<std::vector<double>> channels,
                       int label = TimeSeries::kUnlabeled);

  size_t num_channels() const { return num_channels_; }
  size_t length() const { return length_; }
  bool empty() const { return length_ == 0; }

  int label() const { return label_; }
  void set_label(int label) { label_ = label; }

  std::span<const double> channel(size_t c) const;
  std::span<double> mutable_channel(size_t c);

  double at(size_t c, size_t t) const;
  void set(size_t c, size_t t, double value);

  // The t-th frame as a stack-free accessor: returns value of channel c at
  // time t for all channels via the out parameter.
  void Frame(size_t t, std::vector<double>& out) const;

  // Z-normalizes every channel independently, in place.
  void ZNormalizeChannels();

 private:
  size_t num_channels_ = 0;
  size_t length_ = 0;
  int label_ = TimeSeries::kUnlabeled;
  std::vector<double> data_;  // Channel-major: data_[c * length_ + t].
};

}  // namespace warp

#endif  // WARP_TS_MULTI_SERIES_H_
