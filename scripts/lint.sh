#!/usr/bin/env bash
# Repository lint driver: convention checks (always), clang-format and
# clang-tidy (when the tools are installed).
#
# Conventions enforced unconditionally (pure grep, no tool deps):
#   * no raw assert()            — invariants go through WARP_CHECK/WARP_DCHECK
#   * no std::rand/srand/mt19937/random_device — all randomness flows
#     through warp::Rng with explicit seeds (see CONTRIBUTING.md)
#   * no #pragma once            — headers use project include guards
#   * include guards match path  — e.g. src/warp/core/dtw.h uses WARP_CORE_DTW_H_
#   * no std::chrono in src/ outside common/stopwatch* and obs/ — timing
#     flows through warp::Stopwatch so the observability layer sees it
#
# Tool-backed checks:
#   * clang-format --dry-run -Werror over all tracked C++ sources
#   * clang-tidy (config in .clang-tidy) over src/warp, warnings as errors
#
# Missing tools are reported loudly and skipped, because the analysis
# container ships only g++; set LINT_STRICT=1 (CI does) to turn a missing
# tool into a failure instead.
#
# Usage: scripts/lint.sh [--fix]   (--fix lets clang-format rewrite files)
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

FIX=0
[ "${1:-}" = "--fix" ] && FIX=1
STRICT="${LINT_STRICT:-0}"
failures=0

fail() {
  echo "LINT FAIL: $*" >&2
  failures=$((failures + 1))
}

skip_tool() {
  local tool="$1"
  if [ "$STRICT" = "1" ]; then
    fail "required tool '$tool' is not installed (LINT_STRICT=1)"
  else
    echo "LINT SKIP: '$tool' not installed — install it or run in CI for full coverage" >&2
  fi
}

cpp_sources() {
  git ls-files '*.cc' '*.h'
}

# --- Convention: no raw assert() -------------------------------------------
# [^_[:alnum:]] before "assert(" excludes static_assert and the WARP_*
# macro definitions' internal_assert namespace.
raw_asserts="$(cpp_sources | xargs grep -nE '(^|[^_[:alnum:]])assert\(' \
    | grep -v 'static_assert' || true)"
if [ -n "$raw_asserts" ]; then
  echo "$raw_asserts" >&2
  fail "raw assert() found — use WARP_CHECK/WARP_DCHECK (warp/common/assert.h)"
fi

# --- Convention: seeded randomness only ------------------------------------
banned_random="$(cpp_sources | grep '^src/' | xargs grep -nE \
    'std::rand\b|[^_[:alnum:]]srand\(|[^_[:alnum:]]rand\(\)|std::random_device|std::mt19937' \
    | grep -vE ':[0-9]+: *(//|\*)' || true)"
if [ -n "$banned_random" ]; then
  echo "$banned_random" >&2
  fail "platform RNG found in src/ — all randomness must flow through warp::Rng"
fi

# --- Convention: timing flows through warp::Stopwatch ----------------------
# Raw std::chrono in library code bypasses the observability layer and
# invites nondeterministic timing-dependent behavior. Only the Stopwatch
# implementation and the obs/ subsystem may touch the clock directly.
banned_chrono="$(cpp_sources | grep '^src/' \
    | grep -vE '^src/warp/(common/stopwatch|obs/)' \
    | xargs grep -nE 'std::chrono|<chrono>' \
    | grep -vE ':[0-9]+: *(//|\*)' || true)"
if [ -n "$banned_chrono" ]; then
  echo "$banned_chrono" >&2
  fail "std::chrono found in src/ — time through warp::Stopwatch (warp/common/stopwatch.h)"
fi

# --- Convention: DP loops run on the shared engine --------------------------
# A `std::vector<double> prev(` declaration in src/warp/core/ is the
# telltale of a hand-rolled two-row DP loop. All banded/two-row dynamic
# programming belongs in dp_engine.h (policies + TwoRowEngine); kernels
# are thin instantiations. See DESIGN.md "One banded-DP engine".
raw_dp_loops="$(cpp_sources | grep '^src/warp/core/' \
    | grep -v 'src/warp/core/dp_engine.h' \
    | xargs grep -nE 'std::vector<double> prev\(' || true)"
if [ -n "$raw_dp_loops" ]; then
  echo "$raw_dp_loops" >&2
  fail "hand-rolled two-row DP loop in src/warp/core/ — instantiate dp::TwoRowEngine (warp/core/dp_engine.h) instead"
fi

# --- Convention: sockets only in src/warp/serve/net.* ----------------------
# The serve subsystem's entire syscall surface lives behind TcpConn /
# TcpListener (warp/serve/net.h). Raw socket calls anywhere else bypass
# the loopback-only binding, the line-size cap, and the EINTR handling.
raw_sockets="$(cpp_sources | grep -v '^src/warp/serve/net\.' \
    | xargs grep -nE \
    '[^_[:alnum:]](socket|bind|listen|accept|accept4|connect|recv|send|sendto|recvfrom|setsockopt|getsockname|shutdown)\(|<sys/socket\.h>|<netinet/|<arpa/inet\.h>' \
    | grep -vE ':[0-9]+: *(//|\*)' || true)"
if [ -n "$raw_sockets" ]; then
  echo "$raw_sockets" >&2
  fail "raw socket syscall outside src/warp/serve/net.* — go through TcpConn/TcpListener (warp/serve/net.h)"
fi

# --- Convention: intrinsics only in src/warp/simd/ --------------------------
# All architecture-specific SIMD lives behind the vdouble wrapper
# (warp/simd/vdouble.h). Raw <immintrin.h>/<arm_neon.h> anywhere else
# bypasses the scalar fallback, the runtime --simd dispatch, and the
# determinism contract (docs/SIMD.md).
raw_intrinsics="$(cpp_sources | grep -v '^src/warp/simd/' \
    | xargs grep -nE '<immintrin\.h>|<arm_neon\.h>|<x86intrin\.h>|<emmintrin\.h>|<smmintrin\.h>' \
    | grep -vE ':[0-9]+: *(//|\*)' || true)"
if [ -n "$raw_intrinsics" ]; then
  echo "$raw_intrinsics" >&2
  fail "raw SIMD intrinsics header outside src/warp/simd/ — go through vdouble (warp/simd/vdouble.h)"
fi

# --- Convention: include guards, no #pragma once ---------------------------
pragma_once="$(cpp_sources | xargs grep -ln '#pragma once' || true)"
if [ -n "$pragma_once" ]; then
  echo "$pragma_once" >&2
  fail "#pragma once found — use WARP_..._H_ include guards"
fi

while IFS= read -r header; do
  case "$header" in
    src/warp/*) rel="${header#src/warp/}" ;;
    *)          rel="$header" ;;
  esac
  guard="WARP_$(echo "$rel" | tr '[:lower:]/.' '[:upper:]__')_"
  if ! grep -q "#ifndef $guard" "$header" || \
     ! grep -q "#define $guard" "$header"; then
    fail "$header: missing or misnamed include guard (expected $guard)"
  fi
done < <(git ls-files '*.h')

# --- clang-format ----------------------------------------------------------
if command -v clang-format > /dev/null 2>&1; then
  if [ "$FIX" = "1" ]; then
    cpp_sources | xargs clang-format -i
    echo "clang-format: rewrote files in place (--fix)"
  elif ! cpp_sources | xargs clang-format --dry-run -Werror 2>&1 | tail -40; then
    fail "clang-format found formatting violations (run scripts/lint.sh --fix)"
  fi
else
  skip_tool clang-format
fi

# --- clang-tidy over src/warp ----------------------------------------------
if command -v clang-tidy > /dev/null 2>&1; then
  TIDY_BUILD_DIR="${TIDY_BUILD_DIR:-build-tidy}"
  if [ ! -f "$TIDY_BUILD_DIR/compile_commands.json" ]; then
    cmake -B "$TIDY_BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
          -DWARP_BUILD_BENCHMARKS=OFF -DWARP_BUILD_EXAMPLES=OFF \
          > /dev/null || fail "could not configure $TIDY_BUILD_DIR for clang-tidy"
  fi
  if [ -f "$TIDY_BUILD_DIR/compile_commands.json" ]; then
    if ! git ls-files 'src/warp/*.cc' | \
        xargs clang-tidy -p "$TIDY_BUILD_DIR" -warnings-as-errors='*' -quiet; then
      fail "clang-tidy reported findings on src/warp"
    fi
  fi
else
  skip_tool clang-tidy
fi

if [ $failures -eq 0 ]; then
  echo "lint: all checks passed"
  exit 0
fi
echo "lint: $failures check(s) failed" >&2
exit 1
