// ResultCache tests: LRU mechanics, key construction, and the headline
// guarantee — a cache hit is bitwise-identical to recomputation at any
// engine thread count.

#include "warp/serve/result_cache.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "warp/gen/random_walk.h"
#include "warp/serve/dataset_store.h"
#include "warp/serve/query_engine.h"

namespace warp {
namespace serve {
namespace {

std::string Hex(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%a", v);
  return buffer;
}

ServeResponse OkResponse(int64_t id, double distance) {
  ServeResponse response;
  response.id = id;
  response.ok = true;
  response.op = QueryOp::kDist;
  response.scanned = response.total = 1;
  response.distance = distance;
  return response;
}

TEST(ResultCacheTest, MissThenInsertThenHit) {
  ResultCache cache(4);
  ServeResponse out;
  EXPECT_FALSE(cache.Lookup("k", &out));
  cache.Insert("k", OkResponse(1, 0.5));
  ASSERT_TRUE(cache.Lookup("k", &out));
  EXPECT_EQ(out.distance, 0.5);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  cache.Insert("k", OkResponse(1, 0.5));
  ServeResponse out;
  EXPECT_FALSE(cache.Lookup("k", &out));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCacheTest, PartialAndFailedResponsesAreNeverCached) {
  ResultCache cache(4);
  ServeResponse partial = OkResponse(1, 0.5);
  partial.partial = true;  // Deadline-clipped: not a function of the key.
  cache.Insert("p", partial);

  ServeResponse failed;
  failed.ok = false;
  failed.error = "boom";
  cache.Insert("f", failed);

  ServeResponse out;
  EXPECT_FALSE(cache.Lookup("p", &out));
  EXPECT_FALSE(cache.Lookup("f", &out));
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedFirst) {
  ResultCache cache(2);
  cache.Insert("a", OkResponse(1, 1.0));
  cache.Insert("b", OkResponse(2, 2.0));
  ServeResponse out;
  ASSERT_TRUE(cache.Lookup("a", &out));  // Refresh "a": "b" is now LRU.
  cache.Insert("c", OkResponse(3, 3.0));

  EXPECT_TRUE(cache.Lookup("a", &out));
  EXPECT_FALSE(cache.Lookup("b", &out));  // Evicted.
  EXPECT_TRUE(cache.Lookup("c", &out));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCacheTest, InsertRefreshesRecency) {
  ResultCache cache(2);
  cache.Insert("a", OkResponse(1, 1.0));
  cache.Insert("b", OkResponse(2, 2.0));
  cache.Insert("a", OkResponse(1, 1.5));  // Re-insert: "b" becomes LRU.
  cache.Insert("c", OkResponse(3, 3.0));
  ServeResponse out;
  ASSERT_TRUE(cache.Lookup("a", &out));
  EXPECT_EQ(out.distance, 1.5);
  EXPECT_FALSE(cache.Lookup("b", &out));
}

TEST(ResultCacheTest, KeySeparatesEverythingThatChangesTheAnswer) {
  ServeRequest request;
  request.op = QueryOp::k1Nn;
  request.dataset = "d";
  request.query = {1.0, 2.0, 3.0};

  const std::string base = CacheKey(request, 1);
  EXPECT_EQ(CacheKey(request, 1), base);  // Deterministic.
  EXPECT_NE(CacheKey(request, 2), base);  // Epoch.

  ServeRequest other = request;
  other.id = 999;  // The id is correlation only, never part of the key.
  EXPECT_EQ(CacheKey(other, 1), base);

  other = request;
  other.measure = "msm";
  EXPECT_NE(CacheKey(other, 1), base);
  other = request;
  other.params.window_fraction = 0.2;
  EXPECT_NE(CacheKey(other, 1), base);
  other = request;
  other.query[2] = 3.0000000001;
  EXPECT_NE(CacheKey(other, 1), base);
  other = request;
  other.znormalize = false;
  EXPECT_NE(CacheKey(other, 1), base);
  other = request;
  other.op = QueryOp::kKnn;
  EXPECT_NE(CacheKey(other, 1), base);
}

// The satellite guarantee: run a query cold, then again through the
// cache, at 1, 2, and 8 engine threads — every distance matches the cold
// run to the last bit (compared as hexfloats so a failure shows the bits).
TEST(ResultCacheTest, HitsAreBitwiseIdenticalToRecomputation) {
  DatasetStore store;
  store.Register("d", gen::RandomWalkDataset(40, 64, 17), {6});
  const Dataset queries = gen::RandomWalkDataset(5, 64, 99);

  std::vector<ServeRequest> requests;
  for (size_t i = 0; i < queries.size(); ++i) {
    ServeRequest request;
    request.id = static_cast<int64_t>(i);
    request.op = i % 2 == 0 ? QueryOp::k1Nn : QueryOp::kKnn;
    request.k = 3;
    request.dataset = "d";
    request.params.window_fraction = 0.1;
    request.query = queries[i].values();
    requests.push_back(std::move(request));
  }

  std::vector<std::string> reference;  // From the threads=1 cold run.
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ResultCache cache(64);
    QueryEngine engine(&store, &cache, threads);

    std::vector<std::string> cold;
    for (const ServeRequest& request : requests) {
      const ServeResponse response = engine.Run(request);
      ASSERT_TRUE(response.ok) << response.error;
      for (const Neighbor& n : response.neighbors) {
        cold.push_back(std::to_string(n.index) + ":" + Hex(n.distance));
      }
    }
    const uint64_t misses_after_cold = cache.misses();
    EXPECT_EQ(cache.hits(), 0u);

    std::vector<std::string> warm;
    for (const ServeRequest& request : requests) {
      const ServeResponse response = engine.Run(request);
      ASSERT_TRUE(response.ok) << response.error;
      EXPECT_EQ(response.id, request.id);  // Hits are re-stamped.
      for (const Neighbor& n : response.neighbors) {
        warm.push_back(std::to_string(n.index) + ":" + Hex(n.distance));
      }
    }
    EXPECT_EQ(warm, cold);
    EXPECT_EQ(cache.hits(), requests.size());
    EXPECT_EQ(cache.misses(), misses_after_cold);  // No new computes.

    if (reference.empty()) {
      reference = cold;
    } else {
      EXPECT_EQ(cold, reference);  // Thread count never changes answers.
    }
  }
}

// Re-registering a dataset bumps its epoch, so answers cached against the
// replaced data can never be served again.
TEST(ResultCacheTest, ReRegistrationInvalidatesCachedAnswers) {
  DatasetStore store;
  store.Register("d", gen::RandomWalkDataset(10, 32, 1), {3});
  ResultCache cache(16);
  QueryEngine engine(&store, &cache, 1);

  ServeRequest request;
  request.op = QueryOp::k1Nn;
  request.dataset = "d";
  request.query = gen::RandomWalkDataset(1, 32, 5)[0].values();

  const ServeResponse before = engine.Run(request);
  ASSERT_TRUE(before.ok) << before.error;
  ASSERT_EQ(engine.Run(request).neighbors[0].distance,
            before.neighbors[0].distance);
  EXPECT_EQ(cache.hits(), 1u);

  // Replace the dataset with different contents under the same name.
  store.Register("d", gen::RandomWalkDataset(10, 32, 2), {3});
  const ServeResponse after = engine.Run(request);
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_EQ(cache.hits(), 1u);  // The stale entry was not served.
  EXPECT_NE(Hex(after.neighbors[0].distance),
            Hex(before.neighbors[0].distance));
}

}  // namespace
}  // namespace serve
}  // namespace warp
