#include "warp/mining/similarity_search.h"

#include <limits>
#include <vector>

#include "warp/common/assert.h"
#include "warp/common/stopwatch.h"
#include "warp/core/dtw.h"
#include "warp/core/envelope.h"
#include "warp/core/lower_bounds.h"
#include "warp/common/metrics.h"
#include "warp/ts/znorm.h"

namespace warp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Z-normalizes haystack[pos, pos+m) into `out` given precomputed window
// mean/stddev (just-in-time normalization: no normalized copy of the
// haystack ever exists).
void NormalizeWindow(std::span<const double> haystack, size_t pos, size_t m,
                     double mean, double stddev, std::vector<double>* out) {
  out->resize(m);
  if (stddev < 1e-12) {
    out->assign(m, 0.0);
    return;
  }
  const double inv = 1.0 / stddev;
  for (size_t i = 0; i < m; ++i) {
    (*out)[i] = (haystack[pos + i] - mean) * inv;
  }
}

}  // namespace

SubsequenceMatch FindBestMatch(std::span<const double> haystack,
                               std::span<const double> query, size_t band,
                               CostKind cost, SearchStats* stats) {
  WARP_CHECK(!query.empty());
  WARP_CHECK_MSG(haystack.size() >= query.size(),
                 "haystack shorter than query");
  const size_t m = query.size();
  const size_t num_windows = haystack.size() - m + 1;

  const std::vector<double> q = ZNormalized(query);
  const Envelope q_envelope = ComputeEnvelope(q, band);

  // Running sums over the sliding window for O(1) mean/stddev per step.
  RunningMeanStd running(m);
  for (size_t i = 0; i < m; ++i) running.Push(haystack[i]);

  Stopwatch watch;
  SubsequenceMatch best;
  best.distance = kInf;
  std::vector<double> window;
  DtwWorkspace buffer;

  for (size_t pos = 0; pos < num_windows; ++pos) {
    if (pos > 0) {
      running.Pop(haystack[pos - 1]);
      running.Push(haystack[pos + m - 1]);
    }
    if (stats != nullptr) ++stats->windows;
    WARP_COUNT(obs::Counter::kCascadeCandidates);
    const double mean = running.mean();
    const double stddev = running.stddev();
    const double inv = stddev > 1e-12 ? 1.0 / stddev : 0.0;

    // Rung 1: LB_Kim on the normalized endpoints, O(1) — the window's
    // first/last values are normalized on the fly.
    const double first = (haystack[pos] - mean) * inv;
    const double last = (haystack[pos + m - 1] - mean) * inv;
    const double kim = WithCost(cost, [&](auto c) {
      return c(q.front(), first) + c(q.back(), last);
    });
    if (kim >= best.distance) {
      if (stats != nullptr) ++stats->pruned_by_kim;
      WARP_COUNT(obs::Counter::kLbKimKills);
      continue;
    }

    // Rung 2: LB_Keogh against the query envelope, early-abandoning.
    NormalizeWindow(haystack, pos, m, mean, stddev, &window);
    if (LbKeogh(q_envelope, window, cost, best.distance) >= best.distance) {
      if (stats != nullptr) ++stats->pruned_by_keogh;
      WARP_COUNT(obs::Counter::kLbKeoghKills);
      continue;
    }

    // Rung 3: exact early-abandoning cDTW.
    const double d =
        CdtwDistanceAbandoning(q, window, band, best.distance, cost, &buffer);
    if (stats != nullptr) {
      if (d == kInf) {
        ++stats->abandoned_dtw;
      } else {
        ++stats->full_dtw;
      }
    }
    if (d == kInf) {
      WARP_COUNT(obs::Counter::kCascadeEarlyAbandons);
    } else {
      WARP_COUNT(obs::Counter::kCascadeFullDtw);
    }
    if (d < best.distance) {
      best.distance = d;
      best.position = pos;
    }
  }
  if (stats != nullptr) stats->seconds = watch.ElapsedSeconds();
  return best;
}

SubsequenceMatch FindBestMatchNaive(std::span<const double> haystack,
                                    std::span<const double> query,
                                    size_t band, CostKind cost,
                                    SearchStats* stats) {
  WARP_CHECK(!query.empty());
  WARP_CHECK_MSG(haystack.size() >= query.size(),
                 "haystack shorter than query");
  const size_t m = query.size();
  const std::vector<double> q = ZNormalized(query);

  Stopwatch watch;
  SubsequenceMatch best;
  best.distance = kInf;
  std::vector<double> window;
  DtwWorkspace buffer;
  for (size_t pos = 0; pos + m <= haystack.size(); ++pos) {
    if (stats != nullptr) {
      ++stats->windows;
      ++stats->full_dtw;
    }
    WARP_COUNT(obs::Counter::kCascadeCandidates);
    WARP_COUNT(obs::Counter::kCascadeFullDtw);
    window.assign(haystack.begin() + pos, haystack.begin() + pos + m);
    ZNormalizeInPlace(window);
    const double d = CdtwDistance(q, window, band, cost, &buffer);
    if (d < best.distance) {
      best.distance = d;
      best.position = pos;
    }
  }
  if (stats != nullptr) stats->seconds = watch.ElapsedSeconds();
  return best;
}

}  // namespace warp
