// Unit and differential tests for the matrix profile.

#include "warp/mining/matrix_profile.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "warp/core/dtw.h"
#include "warp/gen/random_walk.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace {

// Brute-force reference: squared z-normalized ED with the same exclusion
// zone.
MatrixProfile ReferenceProfile(std::span<const double> series, size_t m) {
  const size_t exclusion = m / 2;
  const size_t num_windows = series.size() - m + 1;
  MatrixProfile result;
  result.window = m;
  result.profile.assign(num_windows,
                        std::numeric_limits<double>::infinity());
  result.index.assign(num_windows, 0);
  for (size_t i = 0; i < num_windows; ++i) {
    const std::vector<double> a = ZNormalized(series.subspan(i, m));
    for (size_t j = 0; j < num_windows; ++j) {
      const size_t gap = i > j ? i - j : j - i;
      if (gap <= exclusion) continue;
      const std::vector<double> b = ZNormalized(series.subspan(j, m));
      const double d = EuclideanDistance(a, b);
      if (d < result.profile[i]) {
        result.profile[i] = d;
        result.index[i] = j;
      }
    }
  }
  return result;
}

TEST(MatrixProfileTest, MatchesBruteForceReference) {
  Rng rng(231);
  for (int round = 0; round < 5; ++round) {
    const std::vector<double> series = gen::RandomWalk(200, rng);
    for (size_t m : {8u, 16u, 32u}) {
      const MatrixProfile fast = ComputeMatrixProfile(series, m);
      const MatrixProfile reference = ReferenceProfile(series, m);
      ASSERT_EQ(fast.size(), reference.size());
      for (size_t i = 0; i < fast.size(); ++i) {
        EXPECT_NEAR(fast.profile[i], reference.profile[i], 1e-6)
            << "m=" << m << " i=" << i;
      }
    }
  }
}

TEST(MatrixProfileTest, PlantedMotifIsTheMinimum) {
  Rng rng(232);
  std::vector<double> series = gen::RandomWalk(600, rng);
  std::vector<double> pattern(50);
  for (size_t t = 0; t < pattern.size(); ++t) {
    pattern[t] = 5.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 25.0);
  }
  for (size_t k = 0; k < pattern.size(); ++k) {
    series[100 + k] = pattern[k];
    series[400 + k] = 2.0 * pattern[k] + 1.0;  // Scaled copy.
  }
  const MatrixProfile profile = ComputeMatrixProfile(series, 50);
  const ProfileMotif motif = TopMotif(profile);
  EXPECT_NEAR(static_cast<double>(motif.position_a), 100.0, 3.0);
  EXPECT_NEAR(static_cast<double>(motif.position_b), 400.0, 3.0);
  EXPECT_LT(motif.distance, 0.5);
}

TEST(MatrixProfileTest, PlantedDiscordIsTheMaximum) {
  // Periodic signal with one corrupted cycle.
  std::vector<double> series(800);
  for (size_t t = 0; t < series.size(); ++t) {
    series[t] = std::sin(2.0 * M_PI * static_cast<double>(t) / 40.0);
  }
  for (size_t t = 500; t < 540; ++t) {
    series[t] = (t % 5 == 0) ? 1.5 : -0.2;
  }
  const MatrixProfile profile = ComputeMatrixProfile(series, 40);
  const ProfileDiscord discord = TopDiscord(profile);
  EXPECT_GE(discord.position + 40, 500u);
  EXPECT_LE(discord.position, 540u);
}

TEST(MatrixProfileTest, SymmetryOfNearestNeighborDistances) {
  // profile[i] <= d(i, index[i]) by construction and the relation is
  // consistent: d(i, index[i]) equals profile[i].
  Rng rng(233);
  const std::vector<double> series = gen::RandomWalk(300, rng);
  const size_t m = 20;
  const MatrixProfile profile = ComputeMatrixProfile(series, m);
  for (size_t i = 0; i < profile.size(); i += 13) {
    const std::vector<double> a =
        ZNormalized(std::span<const double>(series).subspan(i, m));
    const std::vector<double> b = ZNormalized(
        std::span<const double>(series).subspan(profile.index[i], m));
    EXPECT_NEAR(EuclideanDistance(a, b), profile.profile[i], 1e-6);
  }
}

TEST(MatrixProfileTest, ConstantRegionsHandled) {
  // A series with a long flat stretch must not produce NaNs.
  std::vector<double> series(300, 1.0);
  Rng rng(234);
  for (size_t t = 150; t < 300; ++t) series[t] = rng.Gaussian();
  const MatrixProfile profile = ComputeMatrixProfile(series, 20);
  for (double v : profile.profile) {
    EXPECT_FALSE(std::isnan(v));
  }
  // Two flat windows match perfectly.
  EXPECT_NEAR(profile.profile[10], 0.0, 1e-12);
}

TEST(MatrixProfileTest, ExclusionZoneRespected) {
  Rng rng(235);
  const std::vector<double> series = gen::RandomWalk(250, rng);
  const size_t m = 24;
  const MatrixProfile profile = ComputeMatrixProfile(series, m);
  for (size_t i = 0; i < profile.size(); ++i) {
    const size_t gap = i > profile.index[i] ? i - profile.index[i]
                                            : profile.index[i] - i;
    EXPECT_GT(gap, m / 2) << "i=" << i;
  }
}

}  // namespace
}  // namespace warp
