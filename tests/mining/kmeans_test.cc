// Unit tests for DTW k-means.

#include "warp/mining/kmeans.h"

#include <set>

#include <gtest/gtest.h>

#include "warp/gen/gesture.h"
#include "warp/gen/random_walk.h"
#include "warp/gen/warping.h"

namespace warp {
namespace {

// Two well-separated groups: warped copies of two distinct random bases.
std::vector<std::vector<double>> TwoGroups(size_t per_group, size_t length,
                                           std::vector<int>* truth) {
  Rng rng(151);
  const std::vector<double> base_a = gen::RandomWalk(length, rng);
  std::vector<double> base_b = gen::RandomWalk(length, rng);
  for (double& v : base_b) v += 50.0;  // Separate levels decisively.
  std::vector<std::vector<double>> series;
  for (size_t i = 0; i < per_group; ++i) {
    series.push_back(gen::ApplyRandomWarp(base_a, 0.05, rng));
    truth->push_back(0);
    series.push_back(gen::ApplyRandomWarp(base_b, 0.05, rng));
    truth->push_back(1);
  }
  return series;
}

TEST(KMeansTest, RecoversTwoObviousClusters) {
  std::vector<int> truth;
  const auto series = TwoGroups(6, 50, &truth);
  KMeansOptions options;
  options.k = 2;
  options.band = 5;
  options.seed = 3;
  const KMeansResult result = DtwKMeans(series, options);

  ASSERT_EQ(result.assignment.size(), series.size());
  // Perfect separation up to label permutation.
  std::set<int> cluster_of_class0;
  std::set<int> cluster_of_class1;
  for (size_t i = 0; i < series.size(); ++i) {
    (truth[i] == 0 ? cluster_of_class0 : cluster_of_class1)
        .insert(result.assignment[i]);
  }
  EXPECT_EQ(cluster_of_class0.size(), 1u);
  EXPECT_EQ(cluster_of_class1.size(), 1u);
  EXPECT_NE(*cluster_of_class0.begin(), *cluster_of_class1.begin());
}

TEST(KMeansTest, SingleClusterCoversEverything) {
  std::vector<int> truth;
  const auto series = TwoGroups(3, 30, &truth);
  KMeansOptions options;
  options.k = 1;
  const KMeansResult result = DtwKMeans(series, options);
  for (int a : result.assignment) EXPECT_EQ(a, 0);
  EXPECT_EQ(result.centroids.size(), 1u);
}

TEST(KMeansTest, KEqualsNAssignsZeroInertia) {
  Rng rng(152);
  std::vector<std::vector<double>> series;
  for (int i = 0; i < 4; ++i) {
    series.push_back(gen::RandomWalk(20, rng));
    for (double& v : series.back()) v += 100.0 * i;  // Far apart.
  }
  KMeansOptions options;
  options.k = 4;
  options.max_iterations = 20;
  const KMeansResult result = DtwKMeans(series, options);
  EXPECT_NEAR(result.inertia, 0.0, 1e-6);
}

TEST(KMeansTest, DeterministicPerSeed) {
  std::vector<int> truth;
  const auto series = TwoGroups(4, 30, &truth);
  KMeansOptions options;
  options.k = 2;
  options.seed = 9;
  const KMeansResult a = DtwKMeans(series, options);
  const KMeansResult b = DtwKMeans(series, options);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeansTest, ConvergedFlagStopsEarly) {
  std::vector<int> truth;
  const auto series = TwoGroups(5, 30, &truth);
  KMeansOptions options;
  options.k = 2;
  options.max_iterations = 50;
  const KMeansResult result = DtwKMeans(series, options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations_run, 50u);
}

}  // namespace
}  // namespace warp
