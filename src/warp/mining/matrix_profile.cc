#include "warp/mining/matrix_profile.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "warp/common/assert.h"

namespace warp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kStdEpsilon = 1e-10;

}  // namespace

MatrixProfile ComputeMatrixProfile(std::span<const double> series, size_t m) {
  WARP_CHECK(m >= 2);
  const size_t exclusion = m / 2;
  WARP_CHECK_MSG(series.size() >= m + exclusion + 1,
                 "series too short for a non-trivial self-join");
  const size_t num_windows = series.size() - m + 1;

  // Per-window mean and stddev from prefix sums.
  std::vector<double> mean(num_windows);
  std::vector<double> stddev(num_windows);
  {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (size_t t = 0; t < m; ++t) {
      sum += series[t];
      sum_sq += series[t] * series[t];
    }
    for (size_t i = 0;; ++i) {
      const double mu = sum / static_cast<double>(m);
      const double var = sum_sq / static_cast<double>(m) - mu * mu;
      mean[i] = mu;
      stddev[i] = var > 0.0 ? std::sqrt(var) : 0.0;
      if (i + 1 >= num_windows) break;
      sum += series[i + m] - series[i];
      sum_sq += series[i + m] * series[i + m] - series[i] * series[i];
    }
  }

  MatrixProfile result;
  result.window = m;
  result.profile.assign(num_windows, kInf);
  result.index.assign(num_windows, 0);

  auto update = [&](size_t i, size_t j, double distance) {
    if (distance < result.profile[i]) {
      result.profile[i] = distance;
      result.index[i] = j;
    }
    if (distance < result.profile[j]) {
      result.profile[j] = distance;
      result.index[j] = i;
    }
  };

  const double dm = static_cast<double>(m);
  // One pass per diagonal k = j - i, skipping the exclusion zone.
  for (size_t k = exclusion + 1; k < num_windows; ++k) {
    // QT for the diagonal's first cell (0, k).
    double qt = 0.0;
    for (size_t t = 0; t < m; ++t) qt += series[t] * series[t + k];
    for (size_t i = 0;; ++i) {
      const size_t j = i + k;
      double distance;
      const bool flat_i = stddev[i] < kStdEpsilon;
      const bool flat_j = stddev[j] < kStdEpsilon;
      if (flat_i || flat_j) {
        distance = (flat_i && flat_j) ? 0.0 : 2.0 * dm;
      } else {
        double corr = (qt - dm * mean[i] * mean[j]) /
                      (dm * stddev[i] * stddev[j]);
        corr = std::clamp(corr, -1.0, 1.0);
        distance = 2.0 * dm * (1.0 - corr);
      }
      update(i, j, distance);
      if (j + 1 >= num_windows) break;
      qt += series[i + m] * series[j + m] - series[i] * series[j];
    }
  }
  return result;
}

ProfileMotif TopMotif(const MatrixProfile& profile) {
  WARP_CHECK(!profile.profile.empty());
  ProfileMotif motif;
  motif.distance = kInf;
  for (size_t i = 0; i < profile.size(); ++i) {
    if (profile.profile[i] < motif.distance) {
      motif.distance = profile.profile[i];
      motif.position_a = i;
      motif.position_b = profile.index[i];
    }
  }
  if (motif.position_a > motif.position_b) {
    std::swap(motif.position_a, motif.position_b);
  }
  return motif;
}

ProfileDiscord TopDiscord(const MatrixProfile& profile) {
  WARP_CHECK(!profile.profile.empty());
  ProfileDiscord discord;
  discord.nn_distance = -kInf;
  for (size_t i = 0; i < profile.size(); ++i) {
    if (profile.profile[i] > discord.nn_distance &&
        profile.profile[i] < kInf) {
      discord.nn_distance = profile.profile[i];
      discord.position = i;
    }
  }
  return discord;
}

}  // namespace warp
