// The approximation-error metric of the original FastDTW paper.
//
// Salvador & Chan report error as (approx - exact) / exact * 100%. The
// ICDE paper's headline adversarial example ("an error of 156,100%") uses
// this metric; so do our accuracy sweeps.

#ifndef WARP_CORE_APPROX_ERROR_H_
#define WARP_CORE_APPROX_ERROR_H_

namespace warp {

// Percentage error of `approx` relative to `exact`. exact must be >= 0 and
// approx >= exact - epsilon (FastDTW never undershoots). An exact value of
// zero with a non-zero approximation returns +infinity.
double ApproxErrorPercent(double approx, double exact);

}  // namespace warp

#endif  // WARP_CORE_APPROX_ERROR_H_
