#include <vector>

#include "warp/core/align.h"

namespace warp {
int Align(int x) { return x; }
}  // namespace warp
