#include "warp/serve/dataset_store.h"

#include <algorithm>
#include <utility>

#include "warp/common/assert.h"

namespace warp {
namespace serve {

const std::vector<Envelope>* StoredDataset::EnvelopesForBand(
    size_t band) const {
  for (size_t i = 0; i < bands.size(); ++i) {
    if (bands[i] == band) return &envelopes[i];
  }
  return nullptr;
}

std::shared_ptr<const StoredDataset> DatasetStore::Register(
    const std::string& name, Dataset dataset, std::vector<size_t> bands) {
  WARP_CHECK_MSG(!dataset.empty(), "cannot register an empty dataset");
  auto stored = std::make_shared<StoredDataset>();
  stored->name = name;
  dataset.ZNormalizeAll();
  stored->uniform_length = dataset.UniformLength();
  stored->data = std::move(dataset);

  const size_t count = stored->data.size();
  stored->head.reserve(count);
  stored->tail.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const TimeSeries& s = stored->data[i];
    WARP_CHECK_MSG(!s.empty(), "cannot index an empty series");
    stored->head.push_back(s[0]);
    stored->tail.push_back(s[s.size() - 1]);
  }

  std::sort(bands.begin(), bands.end());
  bands.erase(std::unique(bands.begin(), bands.end()), bands.end());
  if (stored->uniform_length > 0) {
    for (const size_t band : bands) {
      std::vector<Envelope> per_series;
      per_series.reserve(count);
      for (size_t i = 0; i < count; ++i) {
        per_series.push_back(ComputeEnvelope(stored->data[i].view(), band));
      }
      stored->bands.push_back(band);
      stored->envelopes.push_back(std::move(per_series));
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  stored->epoch = next_epoch_++;
  datasets_[name] = stored;
  return stored;
}

std::shared_ptr<const StoredDataset> DatasetStore::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : it->second;
}

bool DatasetStore::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return datasets_.erase(name) != 0;
}

std::vector<std::string> DatasetStore::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, dataset] : datasets_) names.push_back(name);
  return names;
}

uint64_t DatasetStore::CurrentEpoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_epoch_;
}

}  // namespace serve
}  // namespace warp
