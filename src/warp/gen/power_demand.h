// Residential electrical power demand generator (paper Fig. 3, Case C).
//
// Models the paper's example: the first hour of each day's power demand in
// a UK residence, sampled every eight seconds (450 points). Most nights
// are quiet; some nights a dishwasher programmed to run after midnight
// produces a conserved three-peak heating pattern whose start time drifts
// by up to ~30% of the hour — a short series with a *wide* natural warping
// amount W.

#ifndef WARP_GEN_POWER_DEMAND_H_
#define WARP_GEN_POWER_DEMAND_H_

#include <cstddef>
#include <cstdint>

#include "warp/common/random.h"
#include "warp/ts/dataset.h"
#include "warp/ts/time_series.h"

namespace warp {
namespace gen {

// Labels used by MakePowerDemandDataset.
inline constexpr int kQuietNightLabel = 0;
inline constexpr int kDishwasherNightLabel = 1;

// A quiet night: low fridge-cycle baseline plus noise.
TimeSeries MakeQuietNight(size_t n, Rng& rng);

// A dishwasher night: the quiet baseline plus the dishwasher program — two
// wash-heater peaks and a final drying peak — starting at `program_start`
// (sample index). The program spans about 40% of the hour.
TimeSeries MakeDishwasherNight(size_t n, size_t program_start, Rng& rng);

// Largest admissible `program_start` for a trace of length n.
size_t MaxProgramStart(size_t n);

// A dataset of `count` nights of length n; each night is a dishwasher
// night with probability `dishwasher_probability`, with a start time drawn
// uniformly over the admissible range.
Dataset MakePowerDemandDataset(size_t count, size_t n,
                               double dishwasher_probability, uint64_t seed);

}  // namespace gen
}  // namespace warp

#endif  // WARP_GEN_POWER_DEMAND_H_
