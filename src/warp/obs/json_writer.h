// A small, dependency-free JSON emitter for bench reports.
//
// Scope: streaming write-only construction of one document. Correctness
// over features — proper string escaping (control characters as \u00XX,
// UTF-8 passed through), shortest round-trip double formatting, nesting
// validated with WARP_CHECK so a malformed emission aborts instead of
// producing unparseable output. Non-finite doubles become null, since
// JSON has no Inf/NaN and the DTW code uses +inf as a sentinel.

#ifndef WARP_OBS_JSON_WRITER_H_
#define WARP_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace warp {
namespace obs {

class JsonWriter {
 public:
  JsonWriter() = default;

  // Containers. A document is exactly one top-level value; Key() is only
  // legal directly inside an object, values only inside an array or after
  // a Key().
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);

  // Scalar values.
  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  // Splices `json` in value position verbatim. `json` must itself be a
  // valid JSON value (e.g. a scalar previously produced by Escape /
  // FormatDouble / std::to_string) — the writer does not re-validate it.
  JsonWriter& RawValue(std::string_view json);

  // The finished document. WARP_CHECKs that every container was closed.
  const std::string& TakeOutput();

  // `value` with JSON string escaping applied (no surrounding quotes).
  static std::string Escape(std::string_view value);

  // Shortest decimal form of a finite `value` that strtod parses back to
  // the same bits; "null" for NaN/Inf.
  static std::string FormatDouble(double value);

 private:
  struct Scope {
    bool is_object = false;
    bool has_items = false;
  };

  // Comma/placement bookkeeping shared by every value-emitting method.
  void BeforeValue();

  std::string out_;
  std::vector<Scope> stack_;
  bool pending_key_ = false;
  bool done_ = false;
};

}  // namespace obs
}  // namespace warp

#endif  // WARP_OBS_JSON_WRITER_H_
