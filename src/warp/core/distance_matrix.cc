#include "warp/core/distance_matrix.h"

#include <utility>

#include "warp/common/assert.h"
#include "warp/common/table_printer.h"

namespace warp {

DistanceMatrix::DistanceMatrix(size_t n) : n_(n) {
  WARP_CHECK(n > 0);
  values_.assign(n * (n - 1) / 2, 0.0);
}

size_t DistanceMatrix::CondensedIndex(size_t i, size_t j) const {
  WARP_DCHECK(i < j && j < n_);
  // Row i of the upper triangle starts after sum_{k<i} (n-1-k) entries.
  return i * (2 * n_ - i - 1) / 2 + (j - i - 1);
}

double DistanceMatrix::at(size_t i, size_t j) const {
  WARP_CHECK(i < n_ && j < n_);
  if (i == j) return 0.0;
  if (i > j) std::swap(i, j);
  return values_[CondensedIndex(i, j)];
}

void DistanceMatrix::set(size_t i, size_t j, double value) {
  WARP_CHECK(i < n_ && j < n_);
  WARP_CHECK_MSG(i != j, "diagonal is fixed at zero");
  if (i > j) std::swap(i, j);
  values_[CondensedIndex(i, j)] = value;
}

std::string DistanceMatrix::ToString(std::span<const std::string> labels,
                                     int precision) const {
  WARP_CHECK(labels.size() == n_);
  std::vector<std::string> headers;
  headers.push_back("");
  for (const auto& label : labels) headers.push_back(label);
  TablePrinter table(std::move(headers));
  for (size_t i = 0; i < n_; ++i) {
    std::vector<std::string> row;
    row.push_back(labels[i]);
    for (size_t j = 0; j < n_; ++j) {
      if (j < i) {
        row.push_back("");
      } else {
        row.push_back(TablePrinter::FormatDouble(at(i, j), precision));
      }
    }
    table.AddRow(std::move(row));
  }
  return table.ToString();
}

DistanceMatrix ComputePairwiseMatrix(
    const std::vector<std::vector<double>>& series,
    const SeriesMeasure& measure) {
  WARP_CHECK(!series.empty());
  DistanceMatrix matrix(series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    for (size_t j = i + 1; j < series.size(); ++j) {
      matrix.set(i, j, measure(series[i], series[j]));
    }
  }
  return matrix;
}

}  // namespace warp
