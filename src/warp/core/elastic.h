// The classic elastic similarity measures beyond the DTW family: LCSS,
// ERP, and MSM. These are the measures every distance "bake-off" (and the
// paper's reference [1]-[5] literature) compares against cDTW; having
// them here makes the library a complete elastic-measure suite.
//
//   * LCSS (Vlachos et al., 2002): longest common subsequence under an
//     epsilon value-match and an optional band; robust to outliers
//     because unmatched points cost nothing.
//   * ERP, Edit distance with Real Penalty (Chen & Ng, 2004): edit
//     distance whose gaps are charged against a fixed reference value g;
//     unlike DTW and LCSS it is a true metric (triangle inequality).
//   * MSM, Move-Split-Merge (Stefan, Athitsos & Das, 2013): edit distance
//     with an explicit cost c for splitting/merging points; also a
//     metric.
//
// All three use the library's conventions: span inputs, optional
// Sakoe–Chiba band where the literature defines one, WARP_CHECK
// contracts.

#ifndef WARP_CORE_ELASTIC_H_
#define WARP_CORE_ELASTIC_H_

#include <cstddef>
#include <span>

namespace warp {

struct DtwWorkspace;

// All three run on the shared two-row engine (warp/core/dp_engine.h);
// the optional workspace reuses scratch rows across calls.

// ---------------------------------------------------------------------------
// LCSS.

// Length of the longest common subsequence where x[i] matches y[j] iff
// |x[i] - y[j]| <= epsilon and |i - j| <= band.
size_t LcssLength(std::span<const double> x, std::span<const double> y,
                  double epsilon, size_t band,
                  DtwWorkspace* workspace = nullptr);

// The standard LCSS distance: 1 - LCSS / min(n, m), in [0, 1].
double LcssDistance(std::span<const double> x, std::span<const double> y,
                    double epsilon, size_t band,
                    DtwWorkspace* workspace = nullptr);

// ---------------------------------------------------------------------------
// ERP. L1-based; `gap_value` (g) is the reference a gapped element is
// charged against (0 for z-normalized data is the standard choice).

double ErpDistance(std::span<const double> x, std::span<const double> y,
                   double gap_value = 0.0,
                   DtwWorkspace* workspace = nullptr);

// ---------------------------------------------------------------------------
// MSM. `split_merge_cost` (c) is the price of duplicating or merging a
// point; typical grid 0.01 .. 100 in the classification literature.

double MsmDistance(std::span<const double> x, std::span<const double> y,
                   double split_merge_cost = 1.0,
                   DtwWorkspace* workspace = nullptr);

}  // namespace warp

#endif  // WARP_CORE_ELASTIC_H_
