// Z-normalization utilities.
//
// The UCR suite's "just-in-time normalization" trick — normalizing each
// sliding window on the fly from running sums rather than materializing
// normalized copies — lives here as RunningMeanStd; the similarity-search
// module builds on it.

#ifndef WARP_TS_ZNORM_H_
#define WARP_TS_ZNORM_H_

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace warp {

struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;  // Population standard deviation.
};

MeanStd ComputeMeanStd(std::span<const double> values);

// (x - mean) / stddev for each element. A constant series (stddev below
// `min_stddev`) normalizes to all zeros rather than dividing by ~0.
void ZNormalizeInPlace(std::span<double> values, double min_stddev = 1e-12);
std::vector<double> ZNormalized(std::span<const double> values,
                                double min_stddev = 1e-12);

// Maintains running sum and sum of squares over a sliding window of fixed
// length, supporting O(1) mean/stddev per step. This is the arithmetic
// behind just-in-time normalization in subsequence search.
class RunningMeanStd {
 public:
  explicit RunningMeanStd(size_t window) : window_(window) {}

  // Pushes the next value; once `size() == window`, old values must be
  // popped by the caller providing the expiring value.
  void Push(double value) {
    sum_ += value;
    sum_sq_ += value * value;
    ++count_;
  }

  void Pop(double value) {
    sum_ -= value;
    sum_sq_ -= value * value;
    --count_;
  }

  size_t size() const { return count_; }
  size_t window() const { return window_; }

  double mean() const { return sum_ / static_cast<double>(count_); }

  double stddev() const {
    const double m = mean();
    const double var = sum_sq_ / static_cast<double>(count_) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
  }

  void Reset() {
    sum_ = 0.0;
    sum_sq_ = 0.0;
    count_ = 0;
  }

 private:
  size_t window_;
  size_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace warp

#endif  // WARP_TS_ZNORM_H_
