#!/usr/bin/env bash
# ThreadSanitizer check — thin wrapper over the unified sanitizer matrix
# driver (scripts/check_sanitizers.sh), kept for muscle memory and CI
# configs that call it directly.
#
# Builds the tree under TSan (Debug, so the WARP_DCHECK oracle hooks are
# live) and runs the full test suite — above all the parallel-layer unit
# and determinism tests — with a 4-worker default pool, so every
# parallelized hot path is raced-checked at an oversubscribed thread
# count. The driver fails loudly if the compiler lacks TSan support and
# forwards any WARP_THREADS override from the environment.
#
# Usage:  scripts/check_tsan.sh [ctest-args...]
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
exec "$ROOT/scripts/check_sanitizers.sh" thread -- "$@"
