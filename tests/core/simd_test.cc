// SIMD-vs-scalar parity: the determinism contract of docs/SIMD.md.
//
// Every vectorized kernel — the anti-diagonal DP wavefront, the envelope
// sliding extrema, the LB_Keogh block skip, the LB_Kim candidate
// batches, and the z-norm scale pass — must produce results identical to
// the scalar reference at EVERY size, band, and thread count. --simd=on
// forces the vector-structured code paths even on the scalar-fallback
// backend and below the auto width gate, so this suite pins the
// contract on every build, not just AVX2 hosts.
//
// Distances are compared with EXPECT_EQ on doubles (bitwise up to the
// sign of zero); envelopes likewise — the sliding-extrema pass may pick
// the other representation of a tied ±0.0, which compares equal.

#include "warp/simd/vdouble.h"

#include <cmath>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "warp/common/random.h"
#include "warp/core/distance_matrix.h"
#include "warp/core/envelope.h"
#include "warp/core/lower_bounds.h"
#include "warp/core/measure.h"
#include "warp/gen/gesture.h"
#include "warp/gen/random_walk.h"
#include "warp/mining/nn_classifier.h"
#include "warp/simd/dispatch.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace {

std::vector<double> Walk(uint64_t seed, size_t n) {
  Rng rng(seed);
  return gen::RandomWalk(n, rng);
}

double Eval(const SeriesMeasure& fn, const std::vector<double>& x,
            const std::vector<double>& y, simd::SimdMode mode) {
  const simd::ScopedSimdMode scoped(mode);
  return fn(x, y);
}

// --------------------------------------------------------------------------
// vdouble unit tests: the wrapper's per-lane semantics are what every
// kernel's exactness argument rests on.

TEST(VdoubleTest, MaskedLoadEveryTailLength) {
  for (size_t count = 0; count <= simd::kLanes; ++count) {
    // Exact-sized heap buffer: under ASan, any read past p[count - 1]
    // (the documented guarantee) is an out-of-bounds error.
    std::vector<double> src(std::max<size_t>(count, 1));
    src.resize(count);
    for (size_t i = 0; i < count; ++i) src[i] = 1.5 + static_cast<double>(i);
    static const double dummy = 0.0;
    const double* p = count == 0 ? &dummy : src.data();
    const simd::vdouble v = simd::vdouble::LoadMasked(p, count);
    for (size_t l = 0; l < simd::kLanes; ++l) {
      EXPECT_EQ(v.Lane(l), l < count ? src[l] : 0.0)
          << "count=" << count << " lane=" << l;
    }
  }
}

TEST(VdoubleTest, MaskedStoreEveryTailLength) {
  for (size_t count = 0; count <= simd::kLanes; ++count) {
    // One sentinel slot past the masked range: it must survive the store.
    std::vector<double> dst(count + 1, -7.25);
    simd::vdouble::Broadcast(9.5).StoreMasked(dst.data(), count);
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(dst[i], 9.5) << "count=" << count << " i=" << i;
    }
    EXPECT_EQ(dst[count], -7.25) << "count=" << count;
  }
}

TEST(VdoubleTest, RoundTripAndLanewiseArithmetic) {
  double a_mem[simd::kLanes];
  double b_mem[simd::kLanes];
  for (size_t l = 0; l < simd::kLanes; ++l) {
    a_mem[l] = 0.1 * static_cast<double>(l + 1);
    b_mem[l] = 3.0 - static_cast<double>(l);
  }
  const simd::vdouble a = simd::vdouble::Load(a_mem);
  const simd::vdouble b = simd::vdouble::Load(b_mem);
  double out[simd::kLanes];
  (a + b).Store(out);
  for (size_t l = 0; l < simd::kLanes; ++l) EXPECT_EQ(out[l], a_mem[l] + b_mem[l]);
  (a - b).Store(out);
  for (size_t l = 0; l < simd::kLanes; ++l) EXPECT_EQ(out[l], a_mem[l] - b_mem[l]);
  (a * b).Store(out);
  for (size_t l = 0; l < simd::kLanes; ++l) EXPECT_EQ(out[l], a_mem[l] * b_mem[l]);
}

// The engine's first-minimal-candidate tie rule: `if (b < a) a = b;`.
// With a = +0.0, b = -0.0 neither compares less, so the FIRST operand
// (and its sign bit) must survive.
TEST(VdoubleTest, MinMaxPreferFirstOnTies) {
  const simd::vdouble pz = simd::vdouble::Broadcast(+0.0);
  const simd::vdouble nz = simd::vdouble::Broadcast(-0.0);
  EXPECT_FALSE(std::signbit(MinPreferFirst(pz, nz).Lane(0)));
  EXPECT_TRUE(std::signbit(MinPreferFirst(nz, pz).Lane(0)));
  EXPECT_FALSE(std::signbit(MaxPreferFirst(pz, nz).Lane(0)));
  EXPECT_TRUE(std::signbit(MaxPreferFirst(nz, pz).Lane(0)));

  const simd::vdouble two = simd::vdouble::Broadcast(2.0);
  const simd::vdouble three = simd::vdouble::Broadcast(3.0);
  EXPECT_EQ(MinPreferFirst(three, two).Lane(0), 2.0);
  EXPECT_EQ(MinPreferFirst(two, three).Lane(0), 2.0);
  EXPECT_EQ(MaxPreferFirst(three, two).Lane(0), 3.0);
  EXPECT_EQ(MaxPreferFirst(two, three).Lane(0), 3.0);
}

TEST(VdoubleTest, AbsClearsSignBit) {
  EXPECT_EQ(Abs(simd::vdouble::Broadcast(-3.5)).Lane(0), 3.5);
  EXPECT_EQ(Abs(simd::vdouble::Broadcast(3.5)).Lane(0), 3.5);
  EXPECT_FALSE(std::signbit(Abs(simd::vdouble::Broadcast(-0.0)).Lane(0)));
}

// AnyOutside is strict: values equal to a bound are inside (LB_Keogh's
// excursion test is `c > u || c < l`).
TEST(VdoubleTest, AnyOutsideIsStrict) {
  const simd::vdouble lo = simd::vdouble::Broadcast(-1.0);
  const simd::vdouble hi = simd::vdouble::Broadcast(1.0);
  EXPECT_FALSE(AnyOutside(simd::vdouble::Broadcast(0.5), lo, hi));
  EXPECT_FALSE(AnyOutside(simd::vdouble::Broadcast(1.0), lo, hi));
  EXPECT_FALSE(AnyOutside(simd::vdouble::Broadcast(-1.0), lo, hi));
  EXPECT_TRUE(AnyOutside(simd::vdouble::Broadcast(1.0000001), lo, hi));
  EXPECT_TRUE(AnyOutside(simd::vdouble::Broadcast(-1.0000001), lo, hi));
  // One excursion lane among inside lanes is enough.
  double mixed[simd::kLanes];
  for (size_t l = 0; l < simd::kLanes; ++l) mixed[l] = 0.0;
  mixed[simd::kLanes - 1] = 2.0;
  EXPECT_TRUE(AnyOutside(simd::vdouble::Load(mixed), lo, hi));
}

// --------------------------------------------------------------------------
// Dispatch plumbing.

TEST(DispatchTest, ParseSimdMode) {
  simd::SimdMode mode = simd::SimdMode::kAuto;
  EXPECT_TRUE(simd::ParseSimdMode("on", &mode));
  EXPECT_EQ(mode, simd::SimdMode::kOn);
  EXPECT_TRUE(simd::ParseSimdMode("off", &mode));
  EXPECT_EQ(mode, simd::SimdMode::kOff);
  EXPECT_TRUE(simd::ParseSimdMode("auto", &mode));
  EXPECT_EQ(mode, simd::SimdMode::kAuto);
  for (const char* bad : {"", "ON", "onn", "0", "true", "avx2"}) {
    mode = simd::SimdMode::kOn;
    EXPECT_FALSE(simd::ParseSimdMode(bad, &mode)) << bad;
    EXPECT_EQ(mode, simd::SimdMode::kOn) << "mode must be untouched: " << bad;
  }
}

TEST(DispatchTest, ScopedModeRestores) {
  const simd::SimdMode outer = simd::GetSimdMode();
  {
    const simd::ScopedSimdMode off(simd::SimdMode::kOff);
    EXPECT_EQ(simd::GetSimdMode(), simd::SimdMode::kOff);
    EXPECT_FALSE(simd::SimdActive());
    EXPECT_FALSE(simd::WavefrontEligible(1000));
    {
      const simd::ScopedSimdMode on(simd::SimdMode::kOn);
      EXPECT_TRUE(simd::SimdActive());
      // Mode on bypasses the auto width gate so parity tests can reach
      // the wavefront at every size on every build.
      EXPECT_TRUE(simd::WavefrontEligible(1));
    }
    EXPECT_EQ(simd::GetSimdMode(), simd::SimdMode::kOff);
  }
  EXPECT_EQ(simd::GetSimdMode(), outer);
}

TEST(DispatchTest, AutoRespectsWidthGate) {
  const simd::ScopedSimdMode auto_mode(simd::SimdMode::kAuto);
  // Below the gate auto is always scalar, whatever the host CPU.
  EXPECT_FALSE(simd::WavefrontEligible(simd::kWavefrontAutoMinWidth - 1));
  // At/above the gate auto follows the runtime probe.
  EXPECT_EQ(simd::WavefrontEligible(simd::kWavefrontAutoMinWidth),
            simd::SimdActive());
}

TEST(DispatchTest, AutoRespectsEnvelopeBandGate) {
  const simd::ScopedSimdMode auto_mode(simd::SimdMode::kAuto);
  // Past the gate auto stays on the deque, whatever the host CPU.
  EXPECT_FALSE(simd::EnvelopeEligible(simd::kEnvelopeAutoMaxBand + 1));
  // At/below the gate auto follows the runtime probe.
  EXPECT_EQ(simd::EnvelopeEligible(simd::kEnvelopeAutoMaxBand),
            simd::SimdActive());
  {
    const simd::ScopedSimdMode on(simd::SimdMode::kOn);
    EXPECT_TRUE(simd::EnvelopeEligible(simd::kEnvelopeAutoMaxBand + 1));
  }
  {
    const simd::ScopedSimdMode off(simd::SimdMode::kOff);
    EXPECT_FALSE(simd::EnvelopeEligible(0));
  }
}

// --------------------------------------------------------------------------
// Measure parity: every registered measure, every length 1..130, bands
// {0, 1, n/8, n}. --simd=on must reproduce --simd=off bit for bit; auto
// must match both (it only picks between the two proven-identical paths).

TEST(SimdParityTest, EveryMeasureEveryLengthEveryBand) {
  for (size_t n = 1; n <= 130; ++n) {
    const std::vector<double> x = Walk(2 * n, n);
    const std::vector<double> y = Walk(2 * n + 1, n);
    for (const size_t band : {size_t{0}, size_t{1}, n / 8, n}) {
      MeasureParams params;
      params.band_cells = static_cast<long>(band);
      for (const MeasureInfo& info : RegisteredMeasures()) {
        // The derivative transform WARP_CHECKs a 3-point minimum.
        if (info.name == "ddtw" && n < 3) continue;
        const SeriesMeasure fn = MakeMeasure(info.name, params);
        const double scalar = Eval(fn, x, y, simd::SimdMode::kOff);
        const double forced = Eval(fn, x, y, simd::SimdMode::kOn);
        const double autod = Eval(fn, x, y, simd::SimdMode::kAuto);
        EXPECT_EQ(scalar, forced)
            << info.name << " n=" << n << " band=" << band << " (on)";
        EXPECT_EQ(scalar, autod)
            << info.name << " n=" << n << " band=" << band << " (auto)";
      }
    }
  }
}

// Unequal lengths exercise the rectangular wavefront geometry (full-band
// rectangles) and every kernel's rectangular row ranges.
TEST(SimdParityTest, EveryMeasureUnequalLengths) {
  const std::pair<size_t, size_t> shapes[] = {
      {64, 96}, {96, 64}, {1, 130}, {130, 1}, {33, 7}, {130, 129}, {17, 16}};
  for (const auto& [n, m] : shapes) {
    const std::vector<double> x = Walk(500 + n, n);
    const std::vector<double> y = Walk(700 + m, m);
    const size_t longest = std::max(n, m);
    for (const size_t band : {size_t{1}, longest / 8, longest}) {
      MeasureParams params;
      params.band_cells = static_cast<long>(band);
      // The default ratio-suggested omega needs equal lengths.
      params.adtw_omega = 0.5;
      for (const MeasureInfo& info : RegisteredMeasures()) {
        // ed and wdtw WARP_CHECK equal lengths.
        if (info.name == "ed" || info.name == "wdtw") continue;
        if (info.name == "ddtw" && std::min(n, m) < 3) continue;
        const SeriesMeasure fn = MakeMeasure(info.name, params);
        const double scalar = Eval(fn, x, y, simd::SimdMode::kOff);
        const double forced = Eval(fn, x, y, simd::SimdMode::kOn);
        EXPECT_EQ(scalar, forced)
            << info.name << " n=" << n << " m=" << m << " band=" << band;
      }
    }
  }
}

// The parallel pairwise fill must stay bitwise-deterministic in every
// mode at 1, 2, and 8 threads (workers all read the process-wide mode).
TEST(SimdParityTest, PairwiseMatrixEveryThreadCount) {
  std::vector<std::vector<double>> series;
  for (uint64_t k = 0; k < 6; ++k) series.push_back(Walk(300 + k, 100));
  MeasureParams params;
  params.band_cells = 12;
  for (const MeasureInfo& info : RegisteredMeasures()) {
    const SeriesMeasure fn = MakeMeasure(info.name, params);
    DistanceMatrix reference(series.size());
    {
      const simd::ScopedSimdMode off(simd::SimdMode::kOff);
      reference = ComputePairwiseMatrix(series, fn, 1);
    }
    for (const simd::SimdMode mode :
         {simd::SimdMode::kOn, simd::SimdMode::kAuto}) {
      const simd::ScopedSimdMode scoped(mode);
      for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        const DistanceMatrix matrix =
            ComputePairwiseMatrix(series, fn, threads);
        for (size_t i = 0; i < series.size(); ++i) {
          for (size_t j = i + 1; j < series.size(); ++j) {
            EXPECT_EQ(matrix.at(i, j), reference.at(i, j))
                << info.name << " pair (" << i << "," << j << ") threads="
                << threads << " mode=" << simd::SimdModeName(mode);
          }
        }
      }
    }
  }
}

// --------------------------------------------------------------------------
// Elementwise kernels.

TEST(SimdParityTest, EnvelopeMatchesScalarAndNaive) {
  for (size_t n = 1; n <= 130; ++n) {
    const std::vector<double> v = Walk(n, n);
    for (const size_t band : {size_t{0}, size_t{1}, n / 8, n, 2 * n}) {
      Envelope scalar;
      Envelope forced;
      {
        const simd::ScopedSimdMode off(simd::SimdMode::kOff);
        scalar = ComputeEnvelope(v, band);
      }
      {
        const simd::ScopedSimdMode on(simd::SimdMode::kOn);
        forced = ComputeEnvelope(v, band);
      }
      const Envelope naive = ComputeEnvelopeNaive(v, band);
      ASSERT_EQ(forced.upper.size(), n);
      ASSERT_EQ(forced.lower.size(), n);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(forced.upper[i], scalar.upper[i])
            << "n=" << n << " band=" << band << " i=" << i;
        EXPECT_EQ(forced.lower[i], scalar.lower[i])
            << "n=" << n << " band=" << band << " i=" << i;
        EXPECT_EQ(forced.upper[i], naive.upper[i])
            << "n=" << n << " band=" << band << " i=" << i;
        EXPECT_EQ(forced.lower[i], naive.lower[i])
            << "n=" << n << " band=" << band << " i=" << i;
      }
    }
  }
}

TEST(SimdParityTest, LbKeoghMatchesScalarIncludingAbandon) {
  for (size_t n = 1; n <= 130; ++n) {
    const std::vector<double> q = Walk(1000 + n, n);
    const std::vector<double> c = Walk(2000 + n, n);
    const Envelope env = ComputeEnvelope(q, std::max<size_t>(1, n / 16));
    for (const CostKind cost : {CostKind::kSquared, CostKind::kAbsolute}) {
      double scalar_full = 0.0;
      {
        const simd::ScopedSimdMode off(simd::SimdMode::kOff);
        scalar_full = LbKeogh(env, c, cost);
      }
      // Abandon thresholds straddling the result (hit and miss both
      // ways), plus the degenerate negative bound that abandons at the
      // very first check.
      for (const double abandon : {kNoAbandon, scalar_full * 0.5,
                                   scalar_full * 2.0 + 1.0, -1.0}) {
        double scalar = 0.0;
        double forced = 0.0;
        {
          const simd::ScopedSimdMode off(simd::SimdMode::kOff);
          scalar = LbKeogh(env, c, cost, abandon);
        }
        {
          const simd::ScopedSimdMode on(simd::SimdMode::kOn);
          forced = LbKeogh(env, c, cost, abandon);
        }
        EXPECT_EQ(forced, scalar)
            << "n=" << n << " cost=" << static_cast<int>(cost)
            << " abandon=" << abandon;
      }
    }
  }
}

TEST(SimdParityTest, ZNormEveryLength) {
  for (size_t n = 1; n <= 130; ++n) {
    std::vector<double> scalar = Walk(4000 + n, n);
    std::vector<double> forced = scalar;
    {
      const simd::ScopedSimdMode off(simd::SimdMode::kOff);
      ZNormalizeInPlace(scalar);
    }
    {
      const simd::ScopedSimdMode on(simd::SimdMode::kOn);
      ZNormalizeInPlace(forced);
    }
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(forced[i], scalar[i]) << "n=" << n << " i=" << i;
    }
  }
}

// --------------------------------------------------------------------------
// The lane-parallel LB_Kim candidate batches feed kill decisions in the
// 1-NN cascade; predictions, distances, and cascade stats must not move.

TEST(SimdParityTest, NnClassifierCascadeParity) {
  gen::GestureOptions options;
  options.length = 80;
  options.num_classes = 4;
  options.seed = 71;
  const Dataset data = gen::MakeGestureDataset(8, options);
  const auto [train, test] = data.StratifiedSplit(0.5);
  const AcceleratedNnClassifier classifier(train, 6);

  for (const TimeSeries& query : test.series()) {
    Prediction scalar;
    Prediction forced;
    {
      const simd::ScopedSimdMode off(simd::SimdMode::kOff);
      scalar = classifier.Classify(query.view());
    }
    {
      const simd::ScopedSimdMode on(simd::SimdMode::kOn);
      forced = classifier.Classify(query.view());
    }
    EXPECT_EQ(forced.label, scalar.label);
    EXPECT_EQ(forced.nn_index, scalar.nn_index);
    EXPECT_EQ(forced.distance, scalar.distance);

    {
      const simd::ScopedSimdMode off(simd::SimdMode::kOff);
      scalar = classifier.ClassifyKnn(query.view(), 3);
    }
    {
      const simd::ScopedSimdMode on(simd::SimdMode::kOn);
      forced = classifier.ClassifyKnn(query.view(), 3);
    }
    EXPECT_EQ(forced.label, scalar.label);
    EXPECT_EQ(forced.distance, scalar.distance);
  }

  ClassificationStats scalar_stats;
  ClassificationStats forced_stats;
  {
    const simd::ScopedSimdMode off(simd::SimdMode::kOff);
    scalar_stats = classifier.Evaluate(test, 2);
  }
  {
    const simd::ScopedSimdMode on(simd::SimdMode::kOn);
    forced_stats = classifier.Evaluate(test, 2);
  }
  EXPECT_EQ(forced_stats.accuracy, scalar_stats.accuracy);
  EXPECT_EQ(forced_stats.correct, scalar_stats.correct);
}

}  // namespace
}  // namespace warp
