#include "warp/check/path_oracle.h"

#include <cmath>
#include <cstdio>

#include "warp/common/assert.h"

namespace warp {
namespace check {

bool CheckPath(const WarpingPath& path, size_t n, size_t m,
               std::string* error) {
  WARP_CHECK(error != nullptr);
  return path.Validate(n, m, error);
}

bool CheckPathInWindow(const WarpingPath& path, const WarpingWindow& window,
                       std::string* error) {
  WARP_CHECK(error != nullptr);
  if (!window.Validate(error)) return false;
  if (!path.Validate(window.rows(), window.cols(), error)) return false;
  for (size_t k = 0; k < path.size(); ++k) {
    const PathPoint& p = path[k];
    if (!window.Contains(p.i, p.j)) {
      char buffer[96];
      std::snprintf(buffer, sizeof(buffer),
                    "path cell %zu = (%u, %u) escapes the window [%u, %u]",
                    k, p.i, p.j, window.range(p.i).lo, window.range(p.i).hi);
      *error = buffer;
      return false;
    }
  }
  return true;
}

bool CheckPathCost(const WarpingPath& path, std::span<const double> x,
                   std::span<const double> y, CostKind cost,
                   double reported_distance, double tolerance,
                   std::string* error) {
  WARP_CHECK(error != nullptr);
  if (!path.Validate(x.size(), y.size(), error)) return false;
  const double along = path.CostAlong(x, y, cost);
  const double slack =
      tolerance * (1.0 + std::fabs(along) + std::fabs(reported_distance));
  if (std::fabs(along - reported_distance) > slack) {
    char buffer[128];
    std::snprintf(buffer, sizeof(buffer),
                  "path cost %.17g disagrees with reported distance %.17g",
                  along, reported_distance);
    *error = buffer;
    return false;
  }
  return true;
}

}  // namespace check
}  // namespace warp
