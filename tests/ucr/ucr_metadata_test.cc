// Unit tests for the bundled UCR archive metadata snapshot.

#include "warp/ucr/ucr_metadata.h"

#include <gtest/gtest.h>

namespace warp {
namespace ucr {
namespace {

TEST(UcrMetadataTest, HasAll128Datasets) {
  EXPECT_EQ(AllDatasets().size(), 128u);
}

TEST(UcrMetadataTest, SortedByNameAndLookupWorks) {
  const auto datasets = AllDatasets();
  for (size_t i = 1; i < datasets.size(); ++i) {
    EXPECT_LT(datasets[i - 1].name, datasets[i].name);
  }
  const DatasetInfo* uwave = FindDataset("UWaveGestureLibraryAll");
  ASSERT_NE(uwave, nullptr);
  EXPECT_EQ(uwave->length, 945);
  EXPECT_EQ(uwave->train_size, 896);
  EXPECT_EQ(FindDataset("NoSuchDataset"), nullptr);
}

TEST(UcrMetadataTest, PaperSection31Values) {
  // Section 3.1 quotes UWaveGestureLibraryAll: ED error 0.052, best w = 4
  // with error 0.034.
  const DatasetInfo* uwave = FindDataset("UWaveGestureLibraryAll");
  ASSERT_NE(uwave, nullptr);
  EXPECT_NEAR(uwave->ed_error, 0.052, 1e-9);
  EXPECT_NEAR(uwave->cdtw_error, 0.034, 1e-9);
  EXPECT_EQ(uwave->best_window_percent, 4);
}

TEST(UcrMetadataTest, AllEntriesPlausible) {
  for (const DatasetInfo& info : AllDatasets()) {
    EXPECT_GT(info.train_size, 0) << info.name;
    EXPECT_GT(info.test_size, 0) << info.name;
    EXPECT_GT(info.length, 0) << info.name;
    EXPECT_GE(info.num_classes, 2) << info.name;
    EXPECT_GE(info.best_window_percent, 0) << info.name;
    EXPECT_LE(info.best_window_percent, 100) << info.name;
    EXPECT_GE(info.ed_error, 0.0) << info.name;
    EXPECT_LE(info.ed_error, 1.0) << info.name;
    EXPECT_GE(info.cdtw_error, 0.0) << info.name;
    EXPECT_LE(info.cdtw_error, 1.0) << info.name;
  }
}

TEST(UcrMetadataTest, Fig2DistributionalClaims) {
  // The claims the paper draws from Fig. 2: most series are shorter than
  // 1,000 points, and the best window is rarely above 10%.
  const auto lengths = SeriesLengths();
  const auto windows = BestWindowPercents();
  ASSERT_EQ(lengths.size(), 128u);
  ASSERT_EQ(windows.size(), 128u);

  size_t short_series = 0;
  for (double length : lengths) {
    if (length < 1000.0) ++short_series;
  }
  EXPECT_GT(short_series, 64u);  // A majority.

  size_t small_window = 0;
  for (double w : windows) {
    if (w <= 10.0) ++small_window;
  }
  EXPECT_GT(small_window, 96u);  // "Rarely above 10%."
}

TEST(UcrMetadataTest, CaseCensusMatchesThePaperNarrative) {
  const auto census = CaseCensus();
  EXPECT_EQ(census[0] + census[1] + census[2] + census[3], 128u);
  // The overwhelming majority of datasets are Case A...
  EXPECT_GT(census[static_cast<size_t>(WarpingCase::kA)], 96u);
  // ...and Case D ("no obvious applications") is nearly empty.
  EXPECT_LE(census[static_cast<size_t>(WarpingCase::kD)], 3u);
}

TEST(UcrMetadataTest, CaseOfUsesThePapersBoundaries) {
  DatasetInfo info{};
  info.length = 500;
  info.best_window_percent = 5;
  EXPECT_EQ(CaseOf(info), WarpingCase::kA);
  info.length = 2000;
  EXPECT_EQ(CaseOf(info), WarpingCase::kB);
  info.best_window_percent = 40;
  EXPECT_EQ(CaseOf(info), WarpingCase::kD);
  info.length = 500;
  EXPECT_EQ(CaseOf(info), WarpingCase::kC);
  EXPECT_STREQ(CaseName(WarpingCase::kA), "A (short N, narrow W)");
}

TEST(UcrMetadataTest, LongestSeriesMatchesPaperClaim) {
  // Section 3.4: "The longest of these is 2,844."
  int longest = 0;
  for (const DatasetInfo& info : AllDatasets()) {
    longest = std::max(longest, info.length);
  }
  EXPECT_EQ(longest, 2844);
}

}  // namespace
}  // namespace ucr
}  // namespace warp
