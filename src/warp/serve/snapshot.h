// Persistent index snapshots: the warp-snap-v1 on-disk format.
//
// Registering a dataset is O(dataset) in z-norms and envelope builds —
// exactly the reusable precomputation Lemire's two-pass LB work argues
// for. A snapshot persists that finished index so a restart is a read +
// re-shard instead of a recompute: save serializes the LOGICAL dataset
// (global series order — epoch, z-normed values, labels, LB_Kim
// head/tail caches, per-band LB_Keogh envelopes) with every double
// written as its raw IEEE-754 little-endian bit pattern, and load hands
// back a bit-exact DatasetIndex ready for DatasetStore::RegisterIndex().
//
// Storing the logical order (not the sharded layout) is what makes one
// snapshot valid at ANY shard count: ShardRouter::Partition is a pure
// function of (epoch, shard_count), so the restoring store re-shards the
// arrays however it is configured — a pure shuffle, no FP recomputation,
// answers bitwise-identical to the saving server's.
//
// File layout (all integers little-endian):
//
//   header   8 bytes  magic "warpsnap"
//            u32      version (currently 1)
//            u32      flags (0; readers refuse nonzero)
//            u64      payload length in bytes
//   payload  u64+...  dataset name (length, bytes)
//            u64      epoch at save time (informational; restore
//                     assigns a fresh epoch)
//            u64      uniform series length (0 = ragged)
//            u64      series count
//            u64+...  band half-widths (count, values)
//            per series: u64 length, i64 label, u64+... name,
//                        length raw-LE doubles
//            series-count raw-LE doubles  LB_Kim head cache
//            series-count raw-LE doubles  LB_Kim tail cache
//            per band, per series: length raw-LE doubles (envelope
//                        upper), length raw-LE doubles (envelope lower)
//   trailer  u64      FNV-1a 64 checksum of the payload bytes
//
// Readers REFUSE, never guess: bad magic, unsupported version, nonzero
// flags, truncation anywhere, checksum mismatch, structural
// inconsistency (ragged lengths under a uniform header, non-finite
// values, head/tail disagreeing with the series they cache) each fail
// with a distinct error message and leave the output untouched.
//
// This is the ONLY serve/ translation unit allowed to touch the
// filesystem (enforced by warp_lint's serve-io-containment rule).

#ifndef WARP_SERVE_SNAPSHOT_H_
#define WARP_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "warp/serve/dataset_store.h"

namespace warp {
namespace serve {

// Extension snapshot files carry; ListSnapshotFiles filters on it.
inline constexpr char kSnapshotExtension[] = ".wsnap";

// What a snapshot file claims to contain, filled by both save and load.
struct SnapshotMeta {
  std::string dataset;
  uint64_t epoch = 0;
  size_t series = 0;
  size_t uniform_length = 0;
  std::vector<size_t> bands;
  uint64_t payload_bytes = 0;
  uint64_t checksum = 0;
};

// Serializes `stored` (logical order) to `path`, overwriting any
// existing file. Returns false and fills *error on IO failure.
bool SaveSnapshot(const StoredDataset& stored, const std::string& path,
                  std::string* error, SnapshotMeta* meta = nullptr);

// Reads a warp-snap-v1 file into *index (ready for RegisterIndex).
// Returns false and fills *error — refusing, never guessing — on any
// mismatch; *index is untouched on failure. `meta` is optional.
bool LoadSnapshot(const std::string& path, DatasetIndex* index,
                  SnapshotMeta* meta, std::string* error);

// The `*.wsnap` files directly inside `dir`, sorted by filename so
// auto-load order is deterministic. Returns false on an unreadable
// directory.
bool ListSnapshotFiles(const std::string& dir,
                       std::vector<std::string>* paths, std::string* error);

}  // namespace serve
}  // namespace warp

#endif  // WARP_SERVE_SNAPSHOT_H_
