#include "warp/mining/kmeans.h"

#include <limits>

#include "warp/common/assert.h"
#include "warp/common/random.h"
#include "warp/core/dtw.h"
#include "warp/mining/dba.h"

namespace warp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

size_t EffectiveBand(const KMeansOptions& options, size_t length) {
  return options.band == 0 ? length : options.band;
}

// k-means++-style seeding: first centroid uniform, each next centroid a
// member whose distance to its nearest chosen centroid is maximal among a
// small random sample (cheap and deterministic).
std::vector<std::vector<double>> SeedCentroids(
    const std::vector<std::vector<double>>& series,
    const KMeansOptions& options, Rng& rng) {
  std::vector<std::vector<double>> centroids;
  centroids.push_back(series[rng.UniformInt(series.size())]);
  DtwBuffer buffer;
  while (centroids.size() < options.k) {
    size_t best_index = 0;
    double best_distance = -1.0;
    // Sample up to 16 candidates; pick the one farthest from its nearest
    // existing centroid.
    const size_t samples = std::min<size_t>(16, series.size());
    for (size_t s = 0; s < samples; ++s) {
      const size_t index = rng.UniformInt(series.size());
      double nearest = kInf;
      for (const auto& centroid : centroids) {
        nearest = std::min(
            nearest,
            CdtwDistance(centroid, series[index],
                         EffectiveBand(options, centroid.size()),
                         options.cost, &buffer));
      }
      if (nearest > best_distance) {
        best_distance = nearest;
        best_index = index;
      }
    }
    centroids.push_back(series[best_index]);
  }
  return centroids;
}

}  // namespace

KMeansResult DtwKMeans(const std::vector<std::vector<double>>& series,
                       const KMeansOptions& options) {
  WARP_CHECK(!series.empty());
  WARP_CHECK(options.k >= 1 && options.k <= series.size());
  for (const auto& s : series) WARP_CHECK(!s.empty());

  Rng rng(options.seed);
  KMeansResult result;
  result.centroids = SeedCentroids(series, options, rng);
  result.assignment.assign(series.size(), -1);

  DtwBuffer buffer;
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Assignment step.
    bool changed = false;
    result.inertia = 0.0;
    for (size_t i = 0; i < series.size(); ++i) {
      int best_cluster = 0;
      double best_distance = kInf;
      for (size_t c = 0; c < result.centroids.size(); ++c) {
        const double d = CdtwDistance(
            result.centroids[c], series[i],
            EffectiveBand(options, result.centroids[c].size()),
            options.cost, &buffer);
        if (d < best_distance) {
          best_distance = d;
          best_cluster = static_cast<int>(c);
        }
      }
      if (result.assignment[i] != best_cluster) {
        result.assignment[i] = best_cluster;
        changed = true;
      }
      result.inertia += best_distance;
    }
    ++result.iterations_run;
    if (!changed) {
      result.converged = true;
      return result;
    }

    // Update step: DBA over each cluster's members; an emptied cluster is
    // re-seeded with a random series.
    for (size_t c = 0; c < result.centroids.size(); ++c) {
      std::vector<std::vector<double>> members;
      for (size_t i = 0; i < series.size(); ++i) {
        if (result.assignment[i] == static_cast<int>(c)) {
          members.push_back(series[i]);
        }
      }
      if (members.empty()) {
        result.centroids[c] = series[rng.UniformInt(series.size())];
        continue;
      }
      DbaOptions dba_options;
      dba_options.iterations = options.dba_iterations;
      dba_options.band = options.band;
      dba_options.cost = options.cost;
      result.centroids[c] =
          DtwBarycenterAverage(members, dba_options).barycenter;
    }
  }
  return result;
}

}  // namespace warp
