#include "warp/gen/adversarial.h"

#include <cmath>

#include "warp/common/assert.h"

namespace warp {
namespace gen {

std::vector<double> MakeAdversarialSeries(size_t burst_center,
                                          size_t bump_center,
                                          const AdversarialOptions& options) {
  const size_t n = options.length;
  WARP_CHECK(n >= 64);
  WARP_CHECK_MSG(options.burst_length % 2 == 0, "burst length must be even");
  WARP_CHECK(options.burst_length <= n);

  std::vector<double> series(n, 0.0);

  // Period-2 alternating burst, aligned so each (even, odd) index pair is
  // (+amp, -amp) and therefore averages to exactly zero under
  // halve-by-two coarsening.
  size_t burst_start = burst_center - std::min(burst_center,
                                               options.burst_length / 2);
  burst_start -= burst_start % 2;  // Even alignment is what hides it.
  const size_t burst_end = std::min(n, burst_start + options.burst_length);
  for (size_t t = burst_start; t < burst_end; ++t) {
    series[t] = (t % 2 == 0) ? options.burst_amplitude
                             : -options.burst_amplitude;
  }

  // Tiny smooth bump: survives coarsening (its mean is preserved by PAA).
  for (size_t t = 0; t < n; ++t) {
    const double z =
        (static_cast<double>(t) - static_cast<double>(bump_center)) /
        options.bump_width;
    series[t] += options.bump_amplitude * std::exp(-0.5 * z * z);
  }
  return series;
}

AdversarialTriple MakeAdversarialTriple(const AdversarialOptions& options) {
  AdversarialTriple triple;
  triple.a = MakeAdversarialSeries(options.burst_center_a,
                                   options.bump_center_a, options);
  triple.b = MakeAdversarialSeries(options.burst_center_b,
                                   options.bump_center_b, options);

  // C: a slow sine of moderate energy — unambiguously different from A
  // and B under any measure, with a distance between full-DTW(A,B) and
  // the burst energy FastDTW ends up paying.
  triple.c.resize(options.length);
  for (size_t t = 0; t < options.length; ++t) {
    const double u =
        static_cast<double>(t) / static_cast<double>(options.length);
    triple.c[t] = 0.18 * std::sin(2.0 * M_PI * 1.5 * u);
  }
  return triple;
}

}  // namespace gen
}  // namespace warp
