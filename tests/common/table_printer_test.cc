// Unit tests for TablePrinter and Stopwatch.

#include "warp/common/table_printer.h"

#include <gtest/gtest.h>

#include "warp/common/stopwatch.h"

namespace warp {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({std::string("a"), std::string("1")});
  table.AddRow({std::string("longer"), std::string("22")});
  const std::string out = table.ToString();
  // Every line has the same width.
  size_t first_len = out.find('\n');
  size_t pos = 0;
  while (pos < out.size()) {
    const size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(TablePrinterTest, FormatsDoubles) {
  TablePrinter table({"x", "y"});
  table.AddRow(std::vector<double>{1.23456, 2.0}, 2);
  const std::string out = table.ToString();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("2.00"), std::string::npos);
}

TEST(TablePrinterTest, HeaderSeparatorPresent) {
  TablePrinter table({"h"});
  table.AddRow({std::string("v")});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(TablePrinterTest, FormatDoubleHelper) {
  EXPECT_EQ(TablePrinter::FormatDouble(3.14159, 3), "3.142");
  EXPECT_EQ(TablePrinter::FormatDouble(1.0, 0), "1");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GT(watch.ElapsedSeconds(), 0.0);
  EXPECT_GT(watch.ElapsedMicros(), watch.ElapsedSeconds());
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  const double before = watch.ElapsedSeconds();
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), before + 1.0);
}

TEST(MeasureRepeatedTest, ReportsConsistentStatistics) {
  int calls = 0;
  const TimingSummary summary = MeasureRepeated(
      [&calls] {
        ++calls;
        volatile double sink = 0.0;
        for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
      },
      /*repetitions=*/5, /*warmup=*/2);
  EXPECT_EQ(calls, 7);
  EXPECT_EQ(summary.repetitions, 5);
  EXPECT_LE(summary.min, summary.mean);
  EXPECT_LE(summary.mean, summary.max);
  EXPECT_GT(summary.total, 0.0);
  EXPECT_FALSE(summary.ToString().empty());
}

}  // namespace
}  // namespace warp
