// Unit tests for DistanceMatrix.

#include "warp/core/distance_matrix.h"

#include <gtest/gtest.h>

#include "warp/core/dtw.h"

namespace warp {
namespace {

TEST(DistanceMatrixTest, DiagonalIsZero) {
  DistanceMatrix matrix(3);
  EXPECT_DOUBLE_EQ(matrix.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(matrix.at(2, 2), 0.0);
}

TEST(DistanceMatrixTest, SetIsSymmetric) {
  DistanceMatrix matrix(4);
  matrix.set(1, 3, 2.5);
  EXPECT_DOUBLE_EQ(matrix.at(1, 3), 2.5);
  EXPECT_DOUBLE_EQ(matrix.at(3, 1), 2.5);
}

TEST(DistanceMatrixTest, AllPairsIndependentlyAddressable) {
  const size_t n = 7;
  DistanceMatrix matrix(n);
  double v = 1.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      matrix.set(i, j, v);
      v += 1.0;
    }
  }
  v = 1.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      EXPECT_DOUBLE_EQ(matrix.at(i, j), v) << i << "," << j;
      v += 1.0;
    }
  }
}

TEST(DistanceMatrixTest, ComputePairwiseUsesMeasure) {
  const std::vector<std::vector<double>> series = {
      {0.0, 0.0}, {1.0, 1.0}, {3.0, 3.0}};
  const DistanceMatrix matrix = ComputePairwiseMatrix(
      series, [](std::span<const double> a, std::span<const double> b) {
        return EuclideanDistance(a, b);
      });
  EXPECT_DOUBLE_EQ(matrix.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(matrix.at(0, 2), 18.0);
  EXPECT_DOUBLE_EQ(matrix.at(1, 2), 8.0);
}

TEST(DistanceMatrixTest, ToStringContainsLabelsAndValues) {
  DistanceMatrix matrix(2);
  matrix.set(0, 1, 1.5);
  const std::vector<std::string> labels = {"A", "B"};
  const std::string rendered = matrix.ToString(labels, 1);
  EXPECT_NE(rendered.find("A"), std::string::npos);
  EXPECT_NE(rendered.find("B"), std::string::npos);
  EXPECT_NE(rendered.find("1.5"), std::string::npos);
}

}  // namespace
}  // namespace warp
