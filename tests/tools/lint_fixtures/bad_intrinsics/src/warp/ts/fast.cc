#include <immintrin.h>

namespace warp {
int FastPath() { return 1; }
}  // namespace warp
