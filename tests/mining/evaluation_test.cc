// Unit tests for evaluation metrics.

#include "warp/mining/evaluation.h"

#include <gtest/gtest.h>

namespace warp {
namespace {

TEST(ConfusionMatrixTest, PerfectClassifier) {
  ConfusionMatrix matrix;
  for (int i = 0; i < 10; ++i) matrix.Add(i % 3, i % 3);
  EXPECT_DOUBLE_EQ(matrix.Accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(matrix.MacroF1(), 1.0);
  for (int label : {0, 1, 2}) {
    EXPECT_DOUBLE_EQ(matrix.Precision(label), 1.0);
    EXPECT_DOUBLE_EQ(matrix.Recall(label), 1.0);
  }
}

TEST(ConfusionMatrixTest, KnownMixedCase) {
  // actual 0: predicted {0, 0, 1}; actual 1: predicted {1, 0}.
  ConfusionMatrix matrix;
  matrix.Add(0, 0);
  matrix.Add(0, 0);
  matrix.Add(0, 1);
  matrix.Add(1, 1);
  matrix.Add(1, 0);
  EXPECT_DOUBLE_EQ(matrix.Accuracy(), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(matrix.Recall(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(matrix.Precision(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(matrix.Recall(1), 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(matrix.Precision(1), 1.0 / 2.0);
  EXPECT_EQ(matrix.count(0, 1), 1u);
  EXPECT_EQ(matrix.count(1, 0), 1u);
  EXPECT_EQ(matrix.total(), 5u);
}

TEST(ConfusionMatrixTest, UnpredictedClassHasZeroPrecision) {
  ConfusionMatrix matrix;
  matrix.Add(0, 1);
  matrix.Add(1, 1);
  EXPECT_DOUBLE_EQ(matrix.Precision(0), 0.0);
  EXPECT_DOUBLE_EQ(matrix.F1(0), 0.0);
}

TEST(ConfusionMatrixTest, ToStringListsAllLabels) {
  ConfusionMatrix matrix;
  matrix.Add(0, 0);
  matrix.Add(1, 2);
  const std::string rendered = matrix.ToString();
  EXPECT_NE(rendered.find("precision"), std::string::npos);
  EXPECT_NE(rendered.find("recall"), std::string::npos);
  EXPECT_NE(rendered.find("2"), std::string::npos);
}

TEST(RandIndexTest, IdenticalPartitionsScoreOne) {
  const std::vector<int> a = {0, 0, 1, 1, 2};
  EXPECT_DOUBLE_EQ(RandIndex(a, a), 1.0);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, a), 1.0);
}

TEST(RandIndexTest, LabelPermutationInvariant) {
  const std::vector<int> a = {0, 0, 1, 1, 2, 2};
  const std::vector<int> b = {5, 5, 9, 9, 1, 1};
  EXPECT_DOUBLE_EQ(RandIndex(a, b), 1.0);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, b), 1.0);
}

TEST(RandIndexTest, KnownDisagreement) {
  // a: {0,0}{1,1}; b: {0,1}{0,1}. Pairs: (0,1) same in a, diff in b;
  // (2,3) same in a, diff in b; (0,2),(1,3) diff in a, same in b;
  // (0,3),(1,2) diff in both -> 2 agreements of 6.
  const std::vector<int> a = {0, 0, 1, 1};
  const std::vector<int> b = {0, 1, 0, 1};
  EXPECT_NEAR(RandIndex(a, b), 2.0 / 6.0, 1e-12);
}

TEST(AdjustedRandIndexTest, RandomLabelsNearZero) {
  // ARI of a partition vs a shuffled-label partition should hover near 0.
  std::vector<int> a;
  std::vector<int> b;
  for (int i = 0; i < 400; ++i) {
    a.push_back(i % 4);
    b.push_back((i * 7 + i / 13) % 4);  // Unrelated deterministic labels.
  }
  EXPECT_LT(std::abs(AdjustedRandIndex(a, b)), 0.1);
  // While plain Rand on many clusters is inflated (the known bias ARI
  // fixes).
  EXPECT_GT(RandIndex(a, b), 0.5);
}

TEST(PurityTest, MajorityVoteSemantics) {
  // Cluster 0: labels {1,1,2} -> 2 right; cluster 1: {3,3} -> 2 right.
  const std::vector<int> clusters = {0, 0, 0, 1, 1};
  const std::vector<int> labels = {1, 1, 2, 3, 3};
  EXPECT_DOUBLE_EQ(Purity(clusters, labels), 4.0 / 5.0);
}

TEST(PurityTest, PerfectAndDegenerate) {
  const std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(Purity(labels, labels), 1.0);
  // Everything in one cluster: purity = biggest class share.
  const std::vector<int> one_cluster = {7, 7, 7, 7};
  EXPECT_DOUBLE_EQ(Purity(one_cluster, labels), 0.5);
}

}  // namespace
}  // namespace warp
