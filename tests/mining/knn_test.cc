// Unit tests for the k-NN generalization: vote semantics, reduction to
// 1-NN, and exactness of the accelerated engine.

#include <gtest/gtest.h>

#include "warp/core/dtw.h"
#include "warp/gen/gesture.h"
#include "warp/mining/nn_classifier.h"

namespace warp {
namespace {

SeriesMeasure CdtwMeasure(size_t band) {
  return [band](std::span<const double> a, std::span<const double> b) {
    return CdtwDistance(a, b, band);
  };
}

TEST(KnnTest, KEqualsOneMatches1Nn) {
  gen::GestureOptions options;
  options.length = 64;
  options.num_classes = 3;
  options.seed = 271;
  const Dataset pool = gen::MakeGestureDataset(6, options);
  const auto [train, test] = pool.StratifiedSplit(0.5);
  for (const auto& query : test.series()) {
    const Prediction knn = ClassifyKnn(train, query.view(), 1,
                                       CdtwMeasure(6));
    const Prediction nn = Classify1Nn(train, query.view(), CdtwMeasure(6));
    EXPECT_EQ(knn.label, nn.label);
    EXPECT_EQ(knn.nn_index, nn.nn_index);
    EXPECT_DOUBLE_EQ(knn.distance, nn.distance);
  }
}

TEST(KnnTest, MajorityOutvotesSingleNearOutlier) {
  // Query sits nearest to one class-1 outlier but is surrounded by
  // class-0 exemplars: k=3 must flip the prediction to class 0.
  Dataset train;
  train.Add(TimeSeries({1.0, 1.0, 1.0}, 1));  // The near outlier.
  train.Add(TimeSeries({2.0, 2.0, 2.0}, 0));
  train.Add(TimeSeries({2.1, 2.1, 2.1}, 0));
  train.Add(TimeSeries({9.0, 9.0, 9.0}, 1));
  const std::vector<double> query = {1.4, 1.4, 1.4};
  EXPECT_EQ(ClassifyKnn(train, query, 1, CdtwMeasure(1)).label, 1);
  EXPECT_EQ(ClassifyKnn(train, query, 3, CdtwMeasure(1)).label, 0);
}

TEST(KnnTest, TieGoesToNearestOfTiedClasses) {
  Dataset train;
  train.Add(TimeSeries({1.0}, 7));   // Nearest.
  train.Add(TimeSeries({3.0}, 4));
  const std::vector<double> query = {1.5};
  // k=2: one vote each -> class of the nearest neighbor wins.
  EXPECT_EQ(ClassifyKnn(train, query, 2, CdtwMeasure(0)).label, 7);
}

TEST(KnnTest, AcceleratedMatchesBruteForceAcrossK) {
  gen::GestureOptions options;
  options.length = 80;
  options.num_classes = 4;
  options.warp_fraction = 0.1;
  options.noise_stddev = 0.4;
  options.seed = 272;
  const Dataset pool = gen::MakeGestureDataset(8, options);
  const auto [train, test] = pool.StratifiedSplit(0.5);
  const size_t band = 8;
  const AcceleratedNnClassifier accelerated(train, band);
  for (size_t k : {1u, 3u, 5u, 9u}) {
    for (const auto& query : test.series()) {
      const Prediction fast = accelerated.ClassifyKnn(query.view(), k);
      const Prediction brute =
          ClassifyKnn(train, query.view(), k, CdtwMeasure(band));
      ASSERT_EQ(fast.label, brute.label) << "k=" << k;
      ASSERT_NEAR(fast.distance, brute.distance, 1e-9) << "k=" << k;
    }
  }
}

TEST(KnnTest, AcceleratedKnnStillPrunes) {
  gen::GestureOptions options;
  options.length = 96;
  options.seed = 273;
  const Dataset pool = gen::MakeGestureDataset(10, options);
  const auto [train, test] = pool.StratifiedSplit(0.6);
  const AcceleratedNnClassifier accelerated(train, 5);
  ClassificationStats stats;
  for (const auto& query : test.series()) {
    accelerated.ClassifyKnn(query.view(), 3, &stats);
  }
  EXPECT_GT(stats.pruned_by_kim + stats.pruned_by_keogh +
                stats.abandoned_dtw,
            0u);
}

TEST(KnnTest, EvaluateKnnCountsCorrectly) {
  gen::GestureOptions options;
  options.length = 48;
  options.num_classes = 2;
  options.seed = 274;
  const Dataset pool = gen::MakeGestureDataset(8, options);
  const auto [train, test] = pool.StratifiedSplit(0.5);
  const ClassificationStats stats =
      EvaluateKnn(train, test, 3, CdtwMeasure(4));
  EXPECT_EQ(stats.total, test.size());
  EXPECT_GE(stats.accuracy, 0.5);
}

}  // namespace
}  // namespace warp
