#include "warp/core/wdtw.h"

#include <cmath>
#include <vector>

#include "warp/common/assert.h"
#include "warp/core/dp_engine.h"

namespace warp {

std::vector<double> MakeWdtwWeights(size_t n, double g, double w_max) {
  WARP_CHECK(n > 0);
  WARP_CHECK(w_max > 0.0);
  std::vector<double> weights(n);
  const double mid = static_cast<double>(n) / 2.0;
  for (size_t d = 0; d < n; ++d) {
    weights[d] =
        w_max / (1.0 + std::exp(-g * (static_cast<double>(d) - mid)));
  }
  return weights;
}

double WdtwDistance(std::span<const double> x, std::span<const double> y,
                    double g, size_t band, CostKind cost,
                    DtwWorkspace* workspace) {
  WARP_CHECK_MSG(x.size() == y.size(),
                 "WDTW requires equal lengths (phase-difference weights)");
  WARP_CHECK(!x.empty());
  const std::vector<double> weights = MakeWdtwWeights(x.size(), g);

  // The weighted local cost is a per-cell scale on top of the base cost;
  // the DP itself is the engine's MinPlus recurrence over the square
  // Sakoe–Chiba band (equal lengths, so the integer fast path applies).
  return WithCost(cost, [&](auto c) {
    struct WeightedCost {
      const double* x;
      const double* y;
      const double* weights;
      decltype(c) base;
      double operator()(size_t i, size_t j) const {
        const size_t phase = i > j ? i - j : j - i;
        return weights[phase] * base(x[i], y[j]);
      }
    };
    const WeightedCost cell{x.data(), y.data(), weights.data(), c};
    return dp::TwoRowEngine(x.size(), y.size(),
                            dp::SquareBandRowRange{band, y.size() - 1},
                            dp::MinPlusPolicy<WeightedCost>{cell}, dp::kInf,
                            workspace);
  });
}

}  // namespace warp
