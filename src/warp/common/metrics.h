// Work counters for every kernel in the library.
//
// The paper's argument is about the work an algorithm actually performs
// (cells computed, recursion overhead, pruning power), not just its
// wall-clock time. This registry makes that work observable: each kernel
// publishes named monotonic counters (DP cells, pruned cells, lower-bound
// invocations and kills, FastDTW cells per recursion, envelope builds,
// thread-pool activity) that the bench harnesses snapshot around every
// measurement and emit in their JSON reports.
//
// Design contract:
//   * Increments go to a cache-line-aligned per-thread slab (one relaxed
//     load + store, no contention, no false sharing) registered in a
//     global list on first use — the same per-worker-slot philosophy as
//     PerThread<T> in warp/common/parallel.h.
//   * SnapshotCounters() merges the slabs by unsigned 64-bit addition,
//     which is order-independent, so merged totals are bitwise-stable at
//     any thread count and across runs.
//   * With the CMake option WARP_PROFILE=OFF every WARP_COUNT[_ADD] site
//     collapses to an empty inline function whose (side-effect-free)
//     arguments are dead code — the instrumented kernels compile to the
//     same hot-loop code as before instrumentation.
//
// Counting never changes algorithm results: outputs are bitwise identical
// with profiling on, off, and at 1/2/8 threads (tests/obs/metrics_test.cc).
//
// Layering note: this file lives in warp/common/ (not warp/obs/) because
// the counter slab is layer-0 infrastructure — the thread pool in
// warp/common/parallel.cc bumps pool counters, and common sits below obs
// in the module DAG (docs/STATIC_ANALYSIS.md). The namespace stays
// warp::obs: counters are observability data, and the obs subsystem
// (report/trace/json) builds its snapshots on top of this registry.

#ifndef WARP_COMMON_METRICS_H_
#define WARP_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

// Defined (to 0 or 1) by CMake via the WARP_PROFILE option; default on for
// builds that bypass CMake so counters are never silently missing.
#ifndef WARP_PROFILE_ENABLED
#define WARP_PROFILE_ENABLED 1
#endif

namespace warp {
namespace obs {

// One X(enumerator, json_name) entry per counter. The json_name is the
// stable identifier used in --json output and docs/OBSERVABILITY.md;
// keep both in sync when adding counters.
#define WARP_OBS_COUNTER_LIST(X)                          \
  /* Banded/windowed DP engine (dp_engine.h / dtw.cc). */ \
  X(kDtwCells, "dtw_cells")                               \
  X(kWorkspaceAllocs, "workspace_allocs")                 \
  X(kDtwEarlyAbandons, "dtw_early_abandons")              \
  X(kPrunedDtwCells, "pruned_dtw_cells")                  \
  X(kPrunedDtwCellsSkipped, "pruned_dtw_cells_skipped")   \
  X(kPathEngineCells, "path_engine_cells")                \
  X(kPathEngineBytes, "path_engine_bytes")                \
  X(kSubsequenceCells, "subsequence_cells")               \
  /* FastDTW, optimized port (fastdtw.cc). */             \
  X(kFastDtwCells, "fastdtw_cells")                       \
  X(kFastDtwLevels, "fastdtw_levels")                     \
  X(kFastDtwBaseCases, "fastdtw_base_cases")              \
  /* FastDTW, reference port (fastdtw_reference.cc). */   \
  X(kFastDtwRefCells, "fastdtw_ref_cells")                \
  X(kFastDtwRefLevels, "fastdtw_ref_levels")              \
  X(kFastDtwRefBaseCases, "fastdtw_ref_base_cases")       \
  /* Envelopes and lower bounds. */                       \
  X(kEnvelopeBuilds, "envelope_builds")                   \
  X(kEnvelopePoints, "envelope_points")                   \
  X(kLbKimCalls, "lb_kim_calls")                          \
  X(kLbKimKills, "lb_kim_kills")                          \
  X(kLbKeoghCalls, "lb_keogh_calls")                      \
  X(kLbKeoghKills, "lb_keogh_kills")                      \
  X(kLbImprovedCalls, "lb_improved_calls")                \
  /* 1-NN / search / monitor pruning cascades. */         \
  X(kCascadeCandidates, "cascade_candidates")             \
  X(kCascadeEarlyAbandons, "cascade_early_abandons")      \
  X(kCascadeFullDtw, "cascade_full_dtw")                  \
  /* Thread pool (parallel.cc). */                        \
  X(kPoolTasks, "pool_tasks")                             \
  X(kPoolChunks, "pool_chunks")                           \
  X(kPoolParallelFors, "pool_parallel_fors")              \
  X(kPoolQueueWaitNanos, "pool_queue_wait_nanos")         \
  /* Query-serving subsystem (serve/). */                 \
  X(kServeRequests, "serve_requests")                     \
  X(kServeBatches, "serve_batches")                       \
  X(kServeBatchedQueries, "serve_batched_queries")        \
  X(kServeCacheHits, "serve_cache_hits")                  \
  X(kServeCacheMisses, "serve_cache_misses")              \
  X(kServeCacheEvictions, "serve_cache_evictions")        \
  X(kServeDeadlineExceeded, "serve_deadline_exceeded")     \
  X(kServeShardScans, "serve_shard_scans")                 \
  X(kServeSnapshotSaves, "serve_snapshot_saves")           \
  X(kServeSnapshotLoads, "serve_snapshot_loads")           \
  X(kServeShed, "serve_shed")                               \
  /* Multi-process cluster (cluster/). */                   \
  X(kClusterScatters, "cluster_scatters")                   \
  X(kClusterWorkerRestarts, "cluster_worker_restarts")      \
  X(kClusterPartialReplies, "cluster_partial_replies")      \
  /* SIMD kernels (warp/simd/). */                         \
  X(kSimdBlocks, "simd_blocks")                            \
  X(kSimdScalarTail, "simd_scalar_tail")

enum class Counter : uint32_t {
#define WARP_OBS_DECLARE_ENUM(name, json_name) name,
  WARP_OBS_COUNTER_LIST(WARP_OBS_DECLARE_ENUM)
#undef WARP_OBS_DECLARE_ENUM
      kNumCounters
};

inline constexpr size_t kNumCounters =
    static_cast<size_t>(Counter::kNumCounters);
inline constexpr bool kProfilingEnabled = WARP_PROFILE_ENABLED != 0;

// The stable JSON/report name of a counter.
const char* CounterName(Counter counter);

// One thread's counter storage. Atomics are only a formality for the
// cross-thread snapshot reads: each slab has exactly one writer (its
// thread), so increments use relaxed load+store, which compiles to a
// plain add on mainstream targets.
struct alignas(64) CounterSlab {
  std::array<std::atomic<uint64_t>, kNumCounters> values{};
};

namespace internal {
// Registers (once) and returns the calling thread's slab. Slabs are never
// unregistered: a finished thread's totals remain visible to snapshots.
CounterSlab* RegisterLocalSlab();
extern thread_local CounterSlab* local_slab;
}  // namespace internal

#if WARP_PROFILE_ENABLED
inline void AddCount(Counter counter, uint64_t amount) {
  CounterSlab* slab = internal::local_slab;
  if (slab == nullptr) slab = internal::RegisterLocalSlab();
  std::atomic<uint64_t>& cell = slab->values[static_cast<size_t>(counter)];
  cell.store(cell.load(std::memory_order_relaxed) + amount,
             std::memory_order_relaxed);
}
// The calling thread's own running total for `counter` (0 if this thread
// never counted, or with profiling off). One relaxed load — cheap enough
// to difference around a work chunk and attribute the delta to a request
// (the serving engine's cells-per-query histogram does exactly that).
inline uint64_t LocalCount(Counter counter) {
  const CounterSlab* slab = internal::local_slab;
  return slab == nullptr
             ? uint64_t{0}
             : slab->values[static_cast<size_t>(counter)].load(
                   std::memory_order_relaxed);
}
#else
inline void AddCount(Counter /*counter*/, uint64_t /*amount*/) {}
inline uint64_t LocalCount(Counter /*counter*/) { return 0; }
#endif

// A merged, immutable view of all counters at one instant.
struct MetricsSnapshot {
  std::array<uint64_t, kNumCounters> values{};

  uint64_t Get(Counter counter) const {
    return values[static_cast<size_t>(counter)];
  }
  uint64_t operator[](Counter counter) const { return Get(counter); }
};

// Per-counter difference a - b, saturating at zero (counters are
// monotonic, so a genuine "since" delta never saturates).
MetricsSnapshot operator-(const MetricsSnapshot& a, const MetricsSnapshot& b);

// Merged totals across every thread that ever counted. Deterministic:
// unsigned addition in any order yields the same totals.
MetricsSnapshot SnapshotCounters();

// Convenience: SnapshotCounters() - before.
MetricsSnapshot CountersSince(const MetricsSnapshot& before);

// Zeroes every slab. Only meaningful while no kernel work is in flight
// (e.g. between bench cases on the orchestrating thread).
void ResetCounters();

}  // namespace obs
}  // namespace warp

// Instrumentation entry points. `amount` must be side-effect free: with
// WARP_PROFILE=OFF the call is an empty inline function and the argument
// computation is dead code the optimizer removes.
#define WARP_COUNT_ADD(counter, amount) \
  ::warp::obs::AddCount((counter), static_cast<uint64_t>(amount))
#define WARP_COUNT(counter) WARP_COUNT_ADD(counter, 1)

#endif  // WARP_COMMON_METRICS_H_
