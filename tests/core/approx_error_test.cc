// Unit tests for the FastDTW-paper error metric.

#include "warp/core/approx_error.h"

#include <cmath>

#include <gtest/gtest.h>

namespace warp {
namespace {

TEST(ApproxErrorTest, ExactMatchIsZero) {
  EXPECT_DOUBLE_EQ(ApproxErrorPercent(5.0, 5.0), 0.0);
}

TEST(ApproxErrorTest, DoubleIsHundredPercent) {
  EXPECT_DOUBLE_EQ(ApproxErrorPercent(10.0, 5.0), 100.0);
}

TEST(ApproxErrorTest, PaperHeadlineExample) {
  // Table 2: exact 0.020, FastDTW_20 31.24 -> ~156,100%.
  EXPECT_NEAR(ApproxErrorPercent(31.24, 0.020), 156100.0, 0.5);
}

TEST(ApproxErrorTest, ZeroExactZeroApprox) {
  EXPECT_DOUBLE_EQ(ApproxErrorPercent(0.0, 0.0), 0.0);
}

TEST(ApproxErrorTest, ZeroExactNonZeroApproxIsInfinite) {
  EXPECT_TRUE(std::isinf(ApproxErrorPercent(1.0, 0.0)));
}

}  // namespace
}  // namespace warp
