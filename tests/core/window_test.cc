// Unit tests for WarpingWindow construction and invariants.

#include "warp/core/window.h"

#include <gtest/gtest.h>

#include "warp/core/dtw.h"
#include "warp/gen/random_walk.h"

namespace warp {
namespace {

TEST(WindowTest, FullWindowCoversEverything) {
  const WarpingWindow window = WarpingWindow::Full(4, 6);
  EXPECT_TRUE(window.IsValid());
  EXPECT_EQ(window.rows(), 4u);
  EXPECT_EQ(window.cols(), 6u);
  EXPECT_EQ(window.CellCount(), 24u);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      EXPECT_TRUE(window.Contains(i, j));
    }
  }
}

TEST(WindowTest, SakoeChibaSquareBand) {
  const WarpingWindow window = WarpingWindow::SakoeChiba(10, 10, 2);
  EXPECT_TRUE(window.IsValid());
  for (size_t i = 0; i < 10; ++i) {
    for (size_t j = 0; j < 10; ++j) {
      const bool in_band =
          (i > j ? i - j : j - i) <= 2;
      EXPECT_EQ(window.Contains(i, j), in_band) << i << "," << j;
    }
  }
  EXPECT_EQ(window.MaxDiagonalDeviation(), 2u);
}

TEST(WindowTest, SakoeChibaZeroBandIsDiagonal) {
  const WarpingWindow window = WarpingWindow::SakoeChiba(8, 8, 0);
  EXPECT_TRUE(window.IsValid());
  EXPECT_EQ(window.CellCount(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(window.range(i).lo, i);
    EXPECT_EQ(window.range(i).hi, i);
  }
}

TEST(WindowTest, SakoeChibaUnequalLengthsStaysValid) {
  // Slope > 1 diagonals with a tiny band need the reachability patch.
  for (size_t n : {3u, 5u, 10u}) {
    for (size_t m : {7u, 29u, 100u}) {
      for (size_t band : {0u, 1u, 2u}) {
        const WarpingWindow window = WarpingWindow::SakoeChiba(n, m, band);
        std::string error;
        EXPECT_TRUE(window.Validate(&error))
            << "n=" << n << " m=" << m << " band=" << band << ": " << error;
      }
    }
  }
}

TEST(WindowTest, SakoeChibaFractionMatchesCells) {
  const WarpingWindow by_fraction =
      WarpingWindow::SakoeChibaFraction(100, 100, 0.05);
  const WarpingWindow by_cells = WarpingWindow::SakoeChiba(100, 100, 5);
  ASSERT_EQ(by_fraction.rows(), by_cells.rows());
  for (size_t i = 0; i < by_fraction.rows(); ++i) {
    EXPECT_EQ(by_fraction.range(i), by_cells.range(i));
  }
}

TEST(WindowTest, ItakuraIsValidAndDiamondShaped) {
  const WarpingWindow window = WarpingWindow::Itakura(51, 51, 2.0);
  EXPECT_TRUE(window.IsValid());
  // Pinched at the ends, widest in the middle.
  const auto mid = window.range(25);
  EXPECT_LT(window.range(1).hi - window.range(1).lo, mid.hi - mid.lo);
  EXPECT_LT(window.range(49).hi - window.range(49).lo, mid.hi - mid.lo);
  // The corners of the matrix are excluded (unlike Sakoe–Chiba).
  EXPECT_FALSE(window.Contains(0, 25));
  EXPECT_FALSE(window.Contains(50, 25));
}

TEST(WindowTest, ItakuraDtwAtLeastUnconstrained) {
  Rng rng(31);
  const std::vector<double> x = gen::RandomWalk(60, rng);
  const std::vector<double> y = gen::RandomWalk(60, rng);
  const WarpingWindow window = WarpingWindow::Itakura(60, 60, 2.0);
  EXPECT_GE(WindowedDtwDistance(x, y, window), DtwDistance(x, y) - 1e-12);
}

TEST(WindowTest, FromLowResPathCoversProjectedPath) {
  // A simple diagonal low-res path on a 10x10 grid, projected to 20x20.
  WarpingPath path;
  for (uint32_t k = 0; k < 10; ++k) path.Append(k, k);
  for (size_t radius : {0u, 1u, 3u}) {
    const WarpingWindow window =
        WarpingWindow::FromLowResPath(path, 20, 20, radius);
    std::string error;
    EXPECT_TRUE(window.Validate(&error)) << error;
    // Every projected 2x2 block of every path cell must be inside.
    for (uint32_t k = 0; k < 10; ++k) {
      EXPECT_TRUE(window.Contains(2 * k, 2 * k));
      EXPECT_TRUE(window.Contains(2 * k + 1, 2 * k + 1));
      EXPECT_TRUE(window.Contains(2 * k, 2 * k + 1));
      EXPECT_TRUE(window.Contains(2 * k + 1, 2 * k));
    }
  }
}

TEST(WindowTest, FromLowResPathRadiusExpands) {
  WarpingPath path;
  for (uint32_t k = 0; k < 16; ++k) path.Append(k, k);
  const WarpingWindow tight = WarpingWindow::FromLowResPath(path, 32, 32, 0);
  const WarpingWindow wide = WarpingWindow::FromLowResPath(path, 32, 32, 4);
  EXPECT_LT(tight.CellCount(), wide.CellCount());
  // Radius-4 expansion must contain the radius-0 window.
  for (size_t i = 0; i < 32; ++i) {
    EXPECT_LE(wide.range(i).lo, tight.range(i).lo);
    EXPECT_GE(wide.range(i).hi, tight.range(i).hi);
  }
}

TEST(WindowTest, FromLowResPathOddLengths) {
  // Odd high-res lengths leave a trailing row/column that halve-by-two
  // dropped; the window must still be valid and cover both corners.
  WarpingPath path;
  for (uint32_t k = 0; k < 10; ++k) path.Append(k, k);
  const WarpingWindow window =
      WarpingWindow::FromLowResPath(path, 21, 21, 0);
  std::string error;
  EXPECT_TRUE(window.Validate(&error)) << error;
  EXPECT_TRUE(window.Contains(0, 0));
  EXPECT_TRUE(window.Contains(20, 20));
}

TEST(WindowTest, CellCountMatchesRanges) {
  const WarpingWindow window = WarpingWindow::SakoeChiba(100, 100, 7);
  uint64_t expected = 0;
  for (size_t i = 0; i < window.rows(); ++i) {
    expected += window.range(i).hi - window.range(i).lo + 1;
  }
  EXPECT_EQ(window.CellCount(), expected);
}

}  // namespace
}  // namespace warp
