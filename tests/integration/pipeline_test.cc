// Integration tests: whole-pipeline flows across modules, the way the
// examples (and a real user) compose the library.

#include <cstdio>

#include <gtest/gtest.h>

#include "warp/core/distance_matrix.h"
#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/gen/gesture.h"
#include "warp/gen/power_demand.h"
#include "warp/mining/dba.h"
#include "warp/mining/hierarchical_clustering.h"
#include "warp/mining/kmeans.h"
#include "warp/mining/nn_classifier.h"
#include "warp/mining/window_search.h"
#include "warp/ts/io.h"

namespace warp {
namespace {

gen::GestureOptions PipelineOptions() {
  gen::GestureOptions options;
  options.length = 128;
  options.num_classes = 4;
  options.warp_fraction = 0.08;
  options.noise_stddev = 0.3;
  options.seed = 2468;
  return options;
}

TEST(PipelineTest, GenerateSearchClassify) {
  // generate -> learn window -> accelerated classify == brute force.
  const Dataset pool = gen::MakeGestureDataset(10, PipelineOptions());
  const auto [train, test] = pool.StratifiedSplit(0.5);

  const WindowSearchResult search = FindBestWindowLoocv(train, 16, 4);
  const AcceleratedNnClassifier classifier(train, search.best_band);
  const ClassificationStats accelerated = classifier.Evaluate(test);

  const ClassificationStats brute = Evaluate1Nn(
      train, test,
      [&](std::span<const double> a, std::span<const double> b) {
        return CdtwDistance(a, b, search.best_band);
      });
  EXPECT_EQ(accelerated.correct, brute.correct);
  EXPECT_GT(accelerated.accuracy, 0.7);
}

TEST(PipelineTest, SaveLoadRoundTripPreservesClassification) {
  const Dataset pool = gen::MakeGestureDataset(6, PipelineOptions());
  const auto [train, test] = pool.StratifiedSplit(0.5);

  const std::string train_path = ::testing::TempDir() + "/pipe_train.tsv";
  const std::string test_path = ::testing::TempDir() + "/pipe_test.tsv";
  std::string error;
  ASSERT_TRUE(SaveUcrFile(train_path, train, &error)) << error;
  ASSERT_TRUE(SaveUcrFile(test_path, test, &error)) << error;

  Dataset train2;
  Dataset test2;
  ASSERT_TRUE(LoadUcrFile(train_path, &train2, &error)) << error;
  ASSERT_TRUE(LoadUcrFile(test_path, &test2, &error)) << error;

  const AcceleratedNnClassifier original(train, 8);
  const AcceleratedNnClassifier reloaded(train2, 8);
  for (size_t q = 0; q < test.size(); ++q) {
    EXPECT_EQ(original.Classify(test[q].view()).label,
              reloaded.Classify(test2[q].view()).label);
  }
}

TEST(PipelineTest, HierarchicalAndKMeansAgreeOnEasyData) {
  // Two visually distinct power-demand regimes; both clusterers should
  // produce the same 2-way partition.
  const Dataset month = gen::MakePowerDemandDataset(24, 200, 0.5, 777);
  std::vector<std::vector<double>> traces;
  std::vector<int> labels;
  for (const auto& night : month.series()) {
    traces.push_back(night.values());
    labels.push_back(night.label());
  }
  // Skip degenerate draws (all one class).
  if (month.Labels().size() < 2) GTEST_SKIP();

  const DistanceMatrix matrix = ComputePairwiseMatrix(
      traces, [](std::span<const double> a, std::span<const double> b) {
        return CdtwDistanceFraction(a, b, 0.4);
      });
  const std::vector<int> hierarchical =
      AgglomerativeCluster(matrix, Linkage::kAverage).CutIntoClusters(2);

  KMeansOptions options;
  options.k = 2;
  options.band = 80;
  options.seed = 5;
  const std::vector<int> kmeans = DtwKMeans(traces, options).assignment;

  // Compare partitions via pair agreement (label-permutation safe).
  size_t agree = 0;
  size_t total = 0;
  for (size_t i = 0; i < traces.size(); ++i) {
    for (size_t j = i + 1; j < traces.size(); ++j) {
      const bool same_h = hierarchical[i] == hierarchical[j];
      const bool same_k = kmeans[i] == kmeans[j];
      agree += (same_h == same_k) ? 1 : 0;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.9);
}

TEST(PipelineTest, DbaPrototypeClassifiesItsOwnClass) {
  // Compute a DBA prototype per class, then 1-NN against prototypes:
  // a tiny nearest-centroid classifier built from parts.
  const Dataset pool = gen::MakeGestureDataset(8, PipelineOptions());
  const auto [train, test] = pool.StratifiedSplit(0.6);

  std::vector<std::vector<double>> prototypes;
  std::vector<int> prototype_labels;
  for (int label : train.Labels()) {
    std::vector<std::vector<double>> members;
    for (const auto& s : train.series()) {
      if (s.label() == label) members.push_back(s.values());
    }
    DbaOptions dba_options;
    dba_options.iterations = 4;
    dba_options.band = 12;
    prototypes.push_back(DtwBarycenterAverage(members, dba_options).barycenter);
    prototype_labels.push_back(label);
  }

  size_t correct = 0;
  for (const auto& query : test.series()) {
    double best = 1e300;
    int label = -1;
    for (size_t p = 0; p < prototypes.size(); ++p) {
      const double d = CdtwDistance(prototypes[p], query.view(), 12);
      if (d < best) {
        best = d;
        label = prototype_labels[p];
      }
    }
    if (label == query.label()) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(test.size()),
            0.7);
}

TEST(PipelineTest, FastDtwPathPluggedIntoDowmstreamCostAccounting) {
  // The approximate path is still a valid alignment: feeding it back as a
  // path cost must reproduce FastDTW's distance and upper-bound DTW's.
  const Dataset pool = gen::MakeGestureDataset(1, PipelineOptions());
  const auto& a = pool[0];
  const auto& b = pool[1];
  const DtwResult fast = FastDtw(a.view(), b.view(), 4);
  EXPECT_NEAR(fast.path.CostAlong(a.view(), b.view()), fast.distance, 1e-9);
  EXPECT_GE(fast.distance, DtwDistance(a.view(), b.view()) - 1e-9);
}

}  // namespace
}  // namespace warp
