#include "harness/bench_flags.h"

int main(int argc, char** argv) {
  warp::bench::Flags flags(argc, argv);
  const size_t threads = SingleCoreThreadsFlag(flags);
  const bool json = JsonFlag(flags);
  const bool simd = SimdFlag(flags);
  flags.Finalize();
  (void)threads;
  (void)json;
  (void)simd;
  for (const auto& measure : RegisteredMeasures()) (void)measure;
  return 0;
}
