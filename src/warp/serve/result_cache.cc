#include "warp/serve/result_cache.h"

#include <cstring>
#include <utility>

#include "warp/obs/json_writer.h"
#include "warp/common/metrics.h"

namespace warp {
namespace serve {

namespace {

// FNV-1a over the raw bytes of the query values. The doubles are used
// bit-for-bit: two queries hash equal iff their values are bitwise equal,
// matching the engine's bitwise determinism contract.
uint64_t HashDoubles(const std::vector<double>& values) {
  uint64_t hash = 1469598103934665603ull;
  for (const double value : values) {
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (bits >> shift) & 0xFFu;
      hash *= 1099511628211ull;
    }
  }
  return hash;
}

void AppendDouble(std::string* key, double value) {
  key->push_back('|');
  *key += obs::JsonWriter::FormatDouble(value);
}

}  // namespace

std::string CacheKey(const ServeRequest& request, uint64_t epoch) {
  std::string key;
  key.reserve(160);
  key += QueryOpName(request.op);
  key.push_back('|');
  key += request.dataset;
  key.push_back('|');
  key += std::to_string(epoch);
  key.push_back('|');
  key += request.measure;
  const MeasureParams& p = request.params;
  AppendDouble(&key, p.window_fraction);
  key.push_back('|');
  key += std::to_string(p.band_cells);
  AppendDouble(&key, p.wdtw_g);
  key.push_back('|');
  key.push_back(p.wdtw_full_band ? '1' : '0');
  AppendDouble(&key, p.adtw_omega);
  AppendDouble(&key, p.adtw_ratio);
  AppendDouble(&key, p.lcss_epsilon);
  AppendDouble(&key, p.erp_gap);
  AppendDouble(&key, p.msm_cost);
  key.push_back('|');
  key += std::to_string(p.fastdtw_radius);
  key.push_back('|');
  key += p.cost == CostKind::kSquared ? "sq" : "abs";
  key.push_back('|');
  key += std::to_string(request.k);
  AppendDouble(&key, request.threshold);
  key.push_back('|');
  key += std::to_string(request.index);
  key.push_back('|');
  key.push_back(request.znormalize ? '1' : '0');
  key.push_back('|');
  key += std::to_string(request.query.size());
  key.push_back('|');
  key += std::to_string(HashDoubles(request.query));
  // Shard-filtered sub-scans (cluster workers) answer over one shard's
  // candidates only; they must never collide with full-dataset entries.
  key.push_back('|');
  key += std::to_string(request.shard_filter);
  return key;
}

ResultCache::ResultCache(size_t capacity) : capacity_(capacity) {}

bool ResultCache::Lookup(const std::string& key, ServeResponse* response) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    WARP_COUNT(obs::Counter::kServeCacheMisses);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  WARP_COUNT(obs::Counter::kServeCacheHits);
  *response = it->second->response;
  return true;
}

void ResultCache::Insert(const std::string& key,
                         const ServeResponse& response) {
  if (capacity_ == 0 || !response.ok || response.partial) return;
  // Stage timings are wall-clock properties of one execution, not of the
  // answer; store entries pristine so a hit never replays stale timings
  // (the engine stamps a fresh trace on every hit).
  ServeResponse stored = response;
  stored.trace = StageTrace{};
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->response = stored;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(stored)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    WARP_COUNT(obs::Counter::kServeCacheEvictions);
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

uint64_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

}  // namespace serve
}  // namespace warp
