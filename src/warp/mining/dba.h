// DTW Barycenter Averaging (Petitjean, Ketterlin & Gançarski, 2011).
//
// An extension beyond the paper: computes a consensus series minimizing
// the sum of (c)DTW distances to a set, by repeatedly aligning every
// series to the current average and re-averaging the values mapped to
// each index. Exercises path recovery at scale and powers the clustering
// example's cluster prototypes.

#ifndef WARP_MINING_DBA_H_
#define WARP_MINING_DBA_H_

#include <cstddef>
#include <vector>

#include "warp/common/cost.h"

namespace warp {

struct DbaOptions {
  size_t iterations = 10;
  // Sakoe–Chiba band for the alignments; 0 means unconstrained (band of
  // the full length).
  size_t band = 0;
  CostKind cost = CostKind::kSquared;
  // Stop early when the average's total within-set cost improves by less
  // than this relative amount between iterations.
  double convergence_threshold = 1e-6;
};

struct DbaResult {
  std::vector<double> barycenter;
  double total_cost = 0.0;       // Sum of DTW distances at the end.
  size_t iterations_run = 0;
};

// All series must be non-empty; the initial average is the medoid (the
// series with the smallest sum of distances to the others).
DbaResult DtwBarycenterAverage(const std::vector<std::vector<double>>& series,
                               const DbaOptions& options = DbaOptions());

}  // namespace warp

#endif  // WARP_MINING_DBA_H_
