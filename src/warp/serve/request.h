// Typed requests and responses for the query-serving subsystem.
//
// One struct pair shared by the query engine (execution), the result
// cache (keying), the protocol layer (JSON <-> struct), and the in-process
// bench — so a request built from a wire line and one built directly by a
// test are the same object and provably take the same code path.

#ifndef WARP_SERVE_REQUEST_H_
#define WARP_SERVE_REQUEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "warp/core/measure.h"

namespace warp {
namespace serve {

// Query operations the engine executes. The server additionally handles
// control operations (load/info/stats/ping/shutdown) that never reach the
// engine; see docs/SERVING.md.
enum class QueryOp {
  k1Nn,          // nearest neighbor of `query` in `dataset`
  kKnn,          // k nearest neighbors
  kRange,        // all series with distance <= threshold
  kDist,         // distance between `query` and series `index`
  kSubsequence,  // best-matching window of series `index` for `query`
};

// "1nn", "knn", ... — the wire op names.
const char* QueryOpName(QueryOp op);
bool ParseQueryOp(const std::string& name, QueryOp* op);

struct ServeRequest {
  int64_t id = 0;
  QueryOp op = QueryOp::k1Nn;
  std::string dataset;
  std::string measure = "cdtw";
  MeasureParams params;        // band/window/cost + measure knobs.
  size_t k = 1;                // knn only.
  double threshold = 0.0;      // range only.
  size_t index = 0;            // dist / subsequence target series.
  std::vector<double> query;   // the query series.
  bool znormalize = true;      // z-normalize `query` before matching.
  double deadline_ms = 0.0;    // <= 0: no deadline.
};

struct Neighbor {
  size_t index = 0;
  int label = 0;
  double distance = 0.0;
};

struct ServeResponse {
  int64_t id = 0;
  bool ok = false;
  std::string error;
  QueryOp op = QueryOp::k1Nn;

  // Deadline bookkeeping: `partial` is set when the per-request budget
  // expired before every candidate was scanned; `scanned` of `total`
  // candidates were fully considered (the answer is exact over those).
  bool partial = false;
  uint64_t scanned = 0;
  uint64_t total = 0;

  // 1nn / knn / range results, ordered by (distance, index) for knn and
  // by index for range.
  std::vector<Neighbor> neighbors;

  // dist / subsequence results.
  double distance = 0.0;
  size_t position = 0;
};

}  // namespace serve
}  // namespace warp

#endif  // WARP_SERVE_REQUEST_H_
