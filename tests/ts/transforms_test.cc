// Unit tests for preprocessing transforms.

#include "warp/ts/transforms.h"

#include <gtest/gtest.h>

#include "warp/gen/random_walk.h"

namespace warp {
namespace {

TEST(MovingAverageTest, RadiusZeroIsIdentity) {
  const std::vector<double> x = {1.0, 5.0, 2.0};
  EXPECT_EQ(MovingAverage(x, 0), x);
}

TEST(MovingAverageTest, KnownWindowValues) {
  const std::vector<double> x = {0.0, 3.0, 6.0, 9.0};
  const std::vector<double> smoothed = MovingAverage(x, 1);
  // Edges truncate: [mean(0,3), mean(0,3,6), mean(3,6,9), mean(6,9)].
  EXPECT_DOUBLE_EQ(smoothed[0], 1.5);
  EXPECT_DOUBLE_EQ(smoothed[1], 3.0);
  EXPECT_DOUBLE_EQ(smoothed[2], 6.0);
  EXPECT_DOUBLE_EQ(smoothed[3], 7.5);
}

TEST(MovingAverageTest, SlidingSumMatchesNaive) {
  Rng rng(261);
  const std::vector<double> x = gen::RandomWalk(200, rng);
  for (size_t radius : {1u, 5u, 50u, 500u}) {
    const std::vector<double> fast = MovingAverage(x, radius);
    for (size_t i = 0; i < x.size(); i += 17) {
      const size_t lo = i > radius ? i - radius : 0;
      const size_t hi = std::min(x.size(), i + radius + 1);
      double sum = 0.0;
      for (size_t k = lo; k < hi; ++k) sum += x[k];
      EXPECT_NEAR(fast[i], sum / static_cast<double>(hi - lo), 1e-9)
          << "radius=" << radius << " i=" << i;
    }
  }
}

TEST(DifferenceTest, LengthAndValues) {
  const std::vector<double> x = {1.0, 4.0, 2.0};
  EXPECT_EQ(Difference(x), (std::vector<double>{3.0, -2.0}));
}

TEST(DifferenceTest, ConstantSeriesDifferencesToZero) {
  const std::vector<double> x(10, 5.0);
  for (double v : Difference(x)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(DetrendTest, RemovesExactLine) {
  std::vector<double> x;
  for (int i = 0; i < 50; ++i) x.push_back(2.0 + 0.5 * i);
  for (double v : DetrendLinear(x)) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(DetrendTest, ResidualIsOrthogonalToTrend) {
  Rng rng(262);
  const std::vector<double> x = gen::RandomWalk(100, rng);
  const std::vector<double> residual = DetrendLinear(x);
  double sum = 0.0;
  double weighted = 0.0;
  for (size_t i = 0; i < residual.size(); ++i) {
    sum += residual[i];
    weighted += residual[i] * static_cast<double>(i);
  }
  EXPECT_NEAR(sum, 0.0, 1e-6);
  EXPECT_NEAR(weighted, 0.0, 1e-4);
}

TEST(ExponentialSmoothingTest, AlphaOneIsIdentity) {
  Rng rng(263);
  const std::vector<double> x = gen::RandomWalk(40, rng);
  EXPECT_EQ(ExponentialSmoothing(x, 1.0), x);
}

TEST(ExponentialSmoothingTest, SmoothsTowardHistory) {
  const std::vector<double> x = {0.0, 10.0};
  const std::vector<double> smoothed = ExponentialSmoothing(x, 0.25);
  EXPECT_DOUBLE_EQ(smoothed[0], 0.0);
  EXPECT_DOUBLE_EQ(smoothed[1], 2.5);
}

TEST(MinMaxScaleTest, MapsToUnitInterval) {
  const std::vector<double> x = {-2.0, 0.0, 6.0};
  const std::vector<double> scaled = MinMaxScale(x);
  EXPECT_DOUBLE_EQ(scaled[0], 0.0);
  EXPECT_DOUBLE_EQ(scaled[1], 0.25);
  EXPECT_DOUBLE_EQ(scaled[2], 1.0);
}

TEST(MinMaxScaleTest, ConstantSeriesMapsToHalf) {
  const std::vector<double> x(5, 3.0);
  for (double v : MinMaxScale(x)) EXPECT_DOUBLE_EQ(v, 0.5);
}

}  // namespace
}  // namespace warp
