#include "warp/core/window.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "warp/common/assert.h"

namespace warp {

namespace {

uint32_t U32(size_t v) { return static_cast<uint32_t>(v); }

}  // namespace

WarpingWindow WarpingWindow::Full(size_t n, size_t m) {
  WARP_CHECK(n > 0 && m > 0);
  std::vector<ColRange> ranges(n, ColRange{0, U32(m - 1)});
  return WarpingWindow(m, std::move(ranges));
}

WarpingWindow WarpingWindow::SakoeChiba(size_t n, size_t m, size_t band) {
  WARP_CHECK(n > 0 && m > 0);
  std::vector<ColRange> ranges(n);
  const double slope =
      n > 1 ? static_cast<double>(m - 1) / static_cast<double>(n - 1) : 0.0;
  const int64_t b = static_cast<int64_t>(band);
  const int64_t last_col = static_cast<int64_t>(m) - 1;
  for (size_t i = 0; i < n; ++i) {
    const int64_t center =
        static_cast<int64_t>(std::llround(static_cast<double>(i) * slope));
    const int64_t lo = std::clamp<int64_t>(center - b, 0, last_col);
    const int64_t hi = std::clamp<int64_t>(center + b, 0, last_col);
    ranges[i] = {U32(static_cast<size_t>(lo)), U32(static_cast<size_t>(hi))};
  }
  WarpingWindow window(m, std::move(ranges));
  window.Canonicalize();
  return window;
}

WarpingWindow WarpingWindow::SakoeChibaFraction(size_t n, size_t m,
                                                double fraction) {
  WARP_CHECK(fraction >= 0.0);
  const size_t longest = std::max(n, m);
  const size_t band = static_cast<size_t>(
      std::llround(fraction * static_cast<double>(longest)));
  return SakoeChiba(n, m, band);
}

WarpingWindow WarpingWindow::Itakura(size_t n, size_t m, double max_slope) {
  WARP_CHECK(n > 0 && m > 0);
  WARP_CHECK_MSG(max_slope > 1.0, "Itakura slope must exceed 1");
  std::vector<ColRange> ranges(n);
  const int64_t last_col = static_cast<int64_t>(m) - 1;
  if (n == 1) {
    ranges[0] = {0, U32(m - 1)};
    return WarpingWindow(m, std::move(ranges));
  }
  const double s = max_slope;
  for (size_t i = 0; i < n; ++i) {
    const double u = static_cast<double>(i) / static_cast<double>(n - 1);
    const double v_min = std::max(u / s, 1.0 - s * (1.0 - u));
    const double v_max = std::min(s * u, 1.0 - (1.0 - u) / s);
    int64_t lo = static_cast<int64_t>(
        std::ceil(v_min * static_cast<double>(last_col) - 1e-9));
    int64_t hi = static_cast<int64_t>(
        std::floor(v_max * static_cast<double>(last_col) + 1e-9));
    lo = std::clamp<int64_t>(lo, 0, last_col);
    hi = std::clamp<int64_t>(hi, lo, last_col);
    ranges[i] = {U32(static_cast<size_t>(lo)), U32(static_cast<size_t>(hi))};
  }
  WarpingWindow window(m, std::move(ranges));
  window.Canonicalize();
  return window;
}

WarpingWindow WarpingWindow::FromLowResPath(const WarpingPath& low_res_path,
                                            size_t n, size_t m,
                                            size_t radius) {
  WARP_CHECK_MSG(n >= 2 && m >= 2,
                 "high-resolution lengths must be at least 2");
  const size_t n2 = n / 2;
  const size_t m2 = m / 2;
  const auto low_ranges = low_res_path.PerRowColumnRanges(n2);
  (void)m2;  // Low-res column bounds are implied by the path's validity.

  // Expand by `radius` in low-resolution coordinates. Because the per-row
  // ranges of a valid path are monotone, the union over rows [i-r, i+r] of
  // [lo-r, hi+r] is exactly [lo(i-r)-r, hi(i+r)+r]. Values may leave the
  // low-res matrix here; they are clamped after projection, matching the
  // reference implementation (which filters out-of-range cells late).
  const int64_t r = static_cast<int64_t>(radius);
  std::vector<int64_t> expanded_lo(n2);
  std::vector<int64_t> expanded_hi(n2);
  for (size_t i = 0; i < n2; ++i) {
    const size_t i_lo = i >= radius ? i - radius : 0;
    const size_t i_hi = std::min(i + radius, n2 - 1);
    expanded_lo[i] = static_cast<int64_t>(low_ranges[i_lo].first) - r;
    expanded_hi[i] = static_cast<int64_t>(low_ranges[i_hi].second) + r;
  }

  // Project each low-resolution cell (i, j) onto the 2x2 block
  // {2i, 2i+1} x {2j, 2j+1} at full resolution. A trailing odd row/column
  // (dropped by the halve-by-two coarsening) inherits the last low-res
  // row's range; Canonicalize then guarantees corner coverage.
  const int64_t last_col = static_cast<int64_t>(m) - 1;
  std::vector<ColRange> ranges(n);
  for (size_t h = 0; h < n; ++h) {
    const size_t il = std::min(h / 2, n2 - 1);
    const int64_t lo = std::clamp<int64_t>(2 * expanded_lo[il], 0, last_col);
    const int64_t hi =
        std::clamp<int64_t>(2 * expanded_hi[il] + 1, 0, last_col);
    ranges[h] = {U32(static_cast<size_t>(lo)), U32(static_cast<size_t>(hi))};
  }
  WarpingWindow window(m, std::move(ranges));
  window.Canonicalize();
  return window;
}

uint64_t WarpingWindow::CellCount() const {
  uint64_t count = 0;
  for (const ColRange& range : ranges_) count += range.hi - range.lo + 1;
  return count;
}

void WarpingWindow::Canonicalize() {
  WARP_CHECK(!ranges_.empty());
  WARP_CHECK(cols_ > 0);
  const uint32_t last_col = U32(cols_ - 1);
  const size_t n = ranges_.size();

  for (ColRange& range : ranges_) {
    range.hi = std::min(range.hi, last_col);
    range.lo = std::min(range.lo, range.hi);
  }

  // Corner cells must be inside.
  ranges_[0].lo = 0;
  ranges_[n - 1].hi = last_col;

  // Monotone envelope, expanding only: hi is made non-decreasing going
  // forward, lo non-decreasing by relaxing earlier rows downward.
  for (size_t i = 1; i < n; ++i) {
    ranges_[i].hi = std::max(ranges_[i].hi, ranges_[i - 1].hi);
  }
  for (size_t i = n - 1; i > 0; --i) {
    ranges_[i - 1].lo = std::min(ranges_[i - 1].lo, ranges_[i].lo);
  }

  // DP reachability: row i must start no later than one past row i-1's
  // end. Patching expands hi upward only, which preserves monotonicity.
  for (size_t i = n - 1; i > 0; --i) {
    if (ranges_[i].lo > ranges_[i - 1].hi + 1) {
      ranges_[i - 1].hi = ranges_[i].lo - 1;
    }
  }
  // Canonicalize's whole contract is that the result satisfies IsValid.
  WARP_DCHECK(IsValid());
}

bool WarpingWindow::IsValid() const {
  std::string unused;
  return Validate(&unused);
}

bool WarpingWindow::Validate(std::string* error) const {
  if (ranges_.empty() || cols_ == 0) {
    *error = "window is empty";
    return false;
  }
  const size_t n = ranges_.size();
  char buffer[128];
  for (size_t i = 0; i < n; ++i) {
    if (ranges_[i].lo > ranges_[i].hi || ranges_[i].hi >= cols_) {
      std::snprintf(buffer, sizeof(buffer),
                    "row %zu has invalid range [%u, %u] (cols=%zu)", i,
                    ranges_[i].lo, ranges_[i].hi, cols_);
      *error = buffer;
      return false;
    }
  }
  if (ranges_[0].lo != 0) {
    *error = "cell (0, 0) is outside the window";
    return false;
  }
  if (ranges_[n - 1].hi != cols_ - 1) {
    *error = "cell (n-1, m-1) is outside the window";
    return false;
  }
  for (size_t i = 1; i < n; ++i) {
    if (ranges_[i].lo < ranges_[i - 1].lo ||
        ranges_[i].hi < ranges_[i - 1].hi) {
      std::snprintf(buffer, sizeof(buffer), "row %zu is not monotone", i);
      *error = buffer;
      return false;
    }
    if (ranges_[i].lo > ranges_[i - 1].hi + 1) {
      std::snprintf(buffer, sizeof(buffer),
                    "row %zu is unreachable from row %zu", i, i - 1);
      *error = buffer;
      return false;
    }
  }
  return true;
}

size_t WarpingWindow::MaxDiagonalDeviation() const {
  size_t max_dev = 0;
  for (size_t i = 0; i < ranges_.size(); ++i) {
    const size_t below =
        i > ranges_[i].lo ? i - ranges_[i].lo : ranges_[i].lo - i;
    const size_t above =
        ranges_[i].hi > i ? ranges_[i].hi - i : i - ranges_[i].hi;
    max_dev = std::max({max_dev, below, above});
  }
  return max_dev;
}

}  // namespace warp
