// Experiment E4 — paper Fig. 3 (the Case-C motivating example).
//
// Two midnight-to-1AM residential power-demand traces containing the same
// dishwasher program at different start times (the owner schedules it for
// the cheap-electricity window). The conserved three-peak pattern can be
// aligned, but only with a wide warping window: the paper estimates
// W = 34% from the peak offsets and rounds to 40%. This harness renders
// the two days, estimates W from the optimal alignment, and shows the
// narrow-window/wide-window contrast.
//
// Flags: --length (450), --shift (153), --json=<path>.

#include <algorithm>
#include <cstdio>
#include <span>
#include <string>

#include "harness/bench_flags.h"
#include "warp/common/stopwatch.h"
#include "warp/core/dtw.h"
#include "warp/gen/power_demand.h"
#include "warp/common/metrics.h"
#include "warp/obs/report.h"

namespace warp {
namespace bench {
namespace {

// Compact ASCII sparkline of a series (one char per bucket).
std::string Sparkline(std::span<const double> values, size_t width) {
  static constexpr char kLevels[] = " .:-=+*#%@";
  double lo = values[0];
  double hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = hi > lo ? hi - lo : 1.0;
  std::string out;
  const size_t bucket = std::max<size_t>(1, values.size() / width);
  for (size_t start = 0; start < values.size(); start += bucket) {
    double peak = values[start];
    for (size_t k = start; k < std::min(values.size(), start + bucket); ++k) {
      peak = std::max(peak, values[k]);
    }
    const int level = static_cast<int>((peak - lo) / range * 9.0);
    out += kLevels[level];
  }
  return out;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t length = static_cast<size_t>(flags.GetInt("length", 450));
  const size_t shift = static_cast<size_t>(flags.GetInt("shift", 153));
  const size_t threads = SingleCoreThreadsFlag(flags);
  const std::string json_path = JsonFlag(flags);
  SimdFlag(flags);
  flags.Finalize();

  obs::BenchReport report(
      "E4 / Fig. 3",
      "Power-demand motivating example: W estimate from the alignment");
  report.AddConfig("threads", static_cast<int64_t>(threads));
  report.AddConfig("length", static_cast<int64_t>(length));
  report.AddConfig("shift", static_cast<int64_t>(shift));

  PrintBanner("E4 / Fig. 3",
              "Electrical power demand, midnight-1AM (8 s sampling, "
              "N=450): the same dishwasher program shifted by 153 samples");

  Rng rng(333);
  const TimeSeries day1 = gen::MakeDishwasherNight(length, 20, rng);
  const TimeSeries day2 = gen::MakeDishwasherNight(
      length, std::min(20 + shift, gen::MaxProgramStart(length)), rng);

  std::printf("day 1: %s\n", Sparkline(day1.view(), 90).c_str());
  std::printf("day 2: %s\n\n", Sparkline(day2.view(), 90).c_str());

  // Estimate W the way the paper does: from the alignment's maximum
  // diagonal deviation.
  obs::MetricsSnapshot before = obs::SnapshotCounters();
  Stopwatch watch;
  const DtwResult alignment = Dtw(day1.view(), day2.view());
  report.AddCase("full_dtw", SummarizeSamples({watch.ElapsedSeconds()}),
                 obs::CountersSince(before));
  const double w_estimate = 100.0 *
                            static_cast<double>(
                                alignment.path.MaxDiagonalDeviation()) /
                            static_cast<double>(length);
  std::printf("optimal alignment deviates up to %u samples -> W estimate "
              "%.0f%% of N (paper: 153/450 = 34%%, rounded up to 40%%)\n\n",
              alignment.path.MaxDiagonalDeviation(), w_estimate);

  std::printf("distance vs window width:\n");
  before = obs::SnapshotCounters();
  watch.Restart();
  for (double w : {0.0, 0.05, 0.10, 0.20, 0.34, 0.40, 1.0}) {
    const double d = CdtwDistanceFraction(day1.view(), day2.view(), w);
    std::printf("  cDTW_%-4.0f%%  %10.2f\n", w * 100.0, d);
  }
  report.AddCase("cdtw_sweep", SummarizeSamples({watch.ElapsedSeconds()}),
                 obs::CountersSince(before));
  const double narrow = CdtwDistanceFraction(day1.view(), day2.view(), 0.05);
  const double wide = CdtwDistanceFraction(day1.view(), day2.view(), 0.40);
  std::printf("\nShape check: the conserved pattern aligns only with a wide "
              "window (cDTW_40%% = %.2f << cDTW_5%% = %.2f): %s\n",
              wide, narrow, wide < narrow ? "reproduced" : "NOT reproduced");
  report.Finish(json_path);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace warp

int main(int argc, char** argv) { return warp::bench::Main(argc, argv); }
