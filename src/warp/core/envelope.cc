#include "warp/core/envelope.h"

#include <algorithm>

#include "warp/common/assert.h"
#include "warp/obs/metrics.h"

namespace warp {

Envelope ComputeEnvelope(std::span<const double> values, size_t band) {
  WARP_CHECK(!values.empty());
  const size_t n = values.size();
  WARP_COUNT(obs::Counter::kEnvelopeBuilds);
  WARP_COUNT_ADD(obs::Counter::kEnvelopePoints, n);
  Envelope env;
  env.upper.resize(n);
  env.lower.resize(n);

  // Monotonic deques of indices: max_deque's values are decreasing,
  // min_deque's increasing. Each index enters and leaves each deque at
  // most once, so the whole pass is O(n).
  std::vector<size_t> max_deque;
  std::vector<size_t> min_deque;
  size_t max_head = 0;
  size_t min_head = 0;

  auto push = [&](size_t idx) {
    while (max_deque.size() > max_head &&
           values[max_deque.back()] <= values[idx]) {
      max_deque.pop_back();
    }
    max_deque.push_back(idx);
    while (min_deque.size() > min_head &&
           values[min_deque.back()] >= values[idx]) {
      min_deque.pop_back();
    }
    min_deque.push_back(idx);
  };

  // The window for output i is [i - band, i + band] clamped; indices are
  // pushed as they come into reach and heads advance as they fall out.
  size_t next_to_push = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t window_end = std::min(n - 1, i + band);
    while (next_to_push <= window_end) push(next_to_push++);
    const size_t window_start = i > band ? i - band : 0;
    while (max_deque[max_head] < window_start) ++max_head;
    while (min_deque[min_head] < window_start) ++min_head;
    env.upper[i] = values[max_deque[max_head]];
    env.lower[i] = values[min_deque[min_head]];
  }
#ifndef NDEBUG
  // Debug-build oracle hook: the tube must contain the series itself —
  // LB_Keogh silently stops lower-bounding if it does not.
  for (size_t i = 0; i < n; ++i) {
    WARP_DCHECK(env.lower[i] <= values[i] && values[i] <= env.upper[i]);
  }
#endif
  return env;
}

Envelope ComputeEnvelopeNaive(std::span<const double> values, size_t band) {
  WARP_CHECK(!values.empty());
  const size_t n = values.size();
  WARP_COUNT(obs::Counter::kEnvelopeBuilds);
  WARP_COUNT_ADD(obs::Counter::kEnvelopePoints, n);
  Envelope env;
  env.upper.resize(n);
  env.lower.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i > band ? i - band : 0;
    const size_t hi = std::min(n - 1, i + band);
    double upper = values[lo];
    double lower = values[lo];
    for (size_t k = lo + 1; k <= hi; ++k) {
      upper = std::max(upper, values[k]);
      lower = std::min(lower, values[k]);
    }
    env.upper[i] = upper;
    env.lower[i] = lower;
  }
  return env;
}

}  // namespace warp
