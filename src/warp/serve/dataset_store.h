// Name-keyed registry of served datasets with a precomputed LB index.
//
// The serving argument of the paper (and of Rakthanmanon et al.'s UCR
// suite): when the same reference set answers many queries, every piece
// of per-candidate work that does not depend on the query should be done
// ONCE, at load time. A StoredDataset therefore holds z-normalized copies
// of the series plus:
//
//   * per-series LB_Keogh envelopes at each registered band width, so the
//     candidate-side Keogh bound costs zero envelope builds per query;
//   * LB_Kim head/tail caches (first/last point of every series packed in
//     two flat arrays), so the first cascade rung touches 16 bytes per
//     candidate instead of paging in whole series.
//
// Stores hand out std::shared_ptr<const StoredDataset>, so workers read
// the index lock-free while a concurrent re-registration swaps in a new
// epoch; the old snapshot stays valid until its last reader drops it.
// Every (re-)registration bumps a store-wide epoch that is part of the
// result-cache key — answers cached against a replaced dataset can never
// be served again.

#ifndef WARP_SERVE_DATASET_STORE_H_
#define WARP_SERVE_DATASET_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "warp/core/envelope.h"
#include "warp/ts/dataset.h"

namespace warp {
namespace serve {

// An immutable, fully indexed dataset snapshot.
struct StoredDataset {
  std::string name;
  uint64_t epoch = 0;         // Store-wide, bumped per (re-)registration.
  Dataset data;               // Z-normalized copies.
  size_t uniform_length = 0;  // 0 when series lengths differ.

  // Envelope index: bands_[i] is the half-width (in cells) of
  // envelopes_[i], one Envelope per series, same order as `data`.
  // Only built for uniform-length datasets (the 1-NN setting).
  std::vector<size_t> bands;
  std::vector<std::vector<Envelope>> envelopes;

  // LB_Kim endpoint caches: head[i] / tail[i] are series i's first / last
  // value.
  std::vector<double> head;
  std::vector<double> tail;

  // The envelopes for `band`, or nullptr if that band is not indexed.
  const std::vector<Envelope>* EnvelopesForBand(size_t band) const;
};

class DatasetStore {
 public:
  DatasetStore() = default;

  DatasetStore(const DatasetStore&) = delete;
  DatasetStore& operator=(const DatasetStore&) = delete;

  // Registers (or replaces) `name`, z-normalizing every series and
  // building the LB index at each band in `bands` (deduplicated;
  // ignored for non-uniform-length datasets). Returns the stored
  // snapshot. Thread-safe.
  std::shared_ptr<const StoredDataset> Register(const std::string& name,
                                                Dataset dataset,
                                                std::vector<size_t> bands);

  // The current snapshot for `name`, or nullptr if unknown.
  std::shared_ptr<const StoredDataset> Get(const std::string& name) const;

  // Removes `name`; returns false if it was not present. Outstanding
  // snapshots stay valid.
  bool Drop(const std::string& name);

  // Registered names in sorted order.
  std::vector<std::string> Names() const;

  // The epoch the next registration will get (== number of registrations
  // so far + 1).
  uint64_t CurrentEpoch() const;

 private:
  mutable std::mutex mutex_;
  uint64_t next_epoch_ = 1;
  std::map<std::string, std::shared_ptr<const StoredDataset>> datasets_;
};

}  // namespace serve
}  // namespace warp

#endif  // WARP_SERVE_DATASET_STORE_H_
