// Runtime SIMD dispatch: one process-wide mode, three answers.
//
// The build decides which vdouble backend exists (WARP_SIMD + target
// arch, see vdouble.h); this module decides, per process, whether the
// vector code paths actually run. The mode comes from the shared
// --simd=on|off|auto flag:
//
//   off   — scalar paths only; the reference behavior.
//   auto  — vector paths when a real vector backend is compiled in, the
//           CPU supports it, and the job is wide enough to win (the
//           wavefront sweep pays per-diagonal setup, so very narrow
//           bands stay scalar; see kWavefrontAutoMinWidth).
//   on    — force the vector-structured code paths unconditionally,
//           even on the scalar-fallback backend and below the auto
//           width gate. Results are identical by contract; this exists
//           so tests can pin SIMD/scalar parity at every size on every
//           build (tests/core/simd_test.cc).
//
// All answers are cheap (one relaxed atomic load) and safe to call from
// any thread; SetSimdMode is meant for main() and test setup.

#ifndef WARP_SIMD_DISPATCH_H_
#define WARP_SIMD_DISPATCH_H_

#include <cstddef>
#include <string_view>

namespace warp {
namespace simd {

enum class SimdMode { kOff, kOn, kAuto };

// Diagonals narrower than this lose to the scalar row sweep (the
// per-diagonal setup dominates); `auto` keeps them scalar. Measured on
// AVX2: width 13 runs at ~0.5x, width 25 at ~1.2x, width 95+ at 3.8x.
inline constexpr size_t kWavefrontAutoMinWidth = 16;

// The doubling envelope sweep does log2(2*band+1) passes where the
// monotonic deque does one, so wide bands hand the 4-lane gain back to
// the log factor; `auto` keeps them on the deque. Measured on AVX2
// (n = 256..4096): band 8 runs at ~1.6-1.8x, band 32 at ~1.2-1.6x,
// band 64 at ~0.7-1.1x, band 128+ at ~0.6-0.9x.
inline constexpr size_t kEnvelopeAutoMaxBand = 32;

// Parses "on" / "off" / "auto". Returns false (mode untouched) on
// anything else.
bool ParseSimdMode(std::string_view text, SimdMode* mode);
const char* SimdModeName(SimdMode mode);

void SetSimdMode(SimdMode mode);
SimdMode GetSimdMode();

// The compiled vdouble backend ("avx2", "neon", "scalar").
const char* SimdBackendName();

// True when a real vector backend is compiled in AND the running CPU
// supports it.
bool SimdRuntimeSupported();

// Should the elementwise vector kernels (z-norm, envelope combine,
// LB_Keogh block skip, LB_Kim batches) run?
bool SimdActive();

// Should the DP wavefront sweep run for a job whose widest anti-diagonal
// holds `width` cells? Adds the auto-mode width gate on top of
// SimdActive(); mode on bypasses the gate.
bool WavefrontEligible(size_t width);

// Should the doubling envelope sweep run for this Sakoe-Chiba band?
// Adds the auto-mode band gate on top of SimdActive(); mode on bypasses
// the gate.
bool EnvelopeEligible(size_t band);

// RAII mode override for benchmarks' scalar-vs-SIMD A/B twins and tests.
class ScopedSimdMode {
 public:
  explicit ScopedSimdMode(SimdMode mode) : saved_(GetSimdMode()) {
    SetSimdMode(mode);
  }
  ~ScopedSimdMode() { SetSimdMode(saved_); }
  ScopedSimdMode(const ScopedSimdMode&) = delete;
  ScopedSimdMode& operator=(const ScopedSimdMode&) = delete;

 private:
  SimdMode saved_;
};

}  // namespace simd
}  // namespace warp

#endif  // WARP_SIMD_DISPATCH_H_
