#include "warp/gen/chroma.h"

#include <cmath>

#include "warp/common/assert.h"
#include "warp/gen/warping.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace gen {

std::vector<double> MakeSongProfile(size_t length, uint64_t seed) {
  WARP_CHECK(length >= 16);
  Rng rng(seed);
  std::vector<double> profile(length);

  // Chord segments: each 2–8 seconds (200–800 samples at 100 Hz, scaled
  // for other lengths) at a random energy level.
  const size_t min_segment = std::max<size_t>(4, length / 120);
  const size_t max_segment = std::max<size_t>(min_segment + 1, length / 30);
  size_t t = 0;
  double level = rng.Uniform(0.5, 2.0);
  double prev_level = level;
  while (t < length) {
    const size_t segment =
        min_segment + rng.UniformInt(max_segment - min_segment);
    const size_t end = std::min(length, t + segment);
    const size_t ramp = std::max<size_t>(1, (end - t) / 8);
    for (size_t k = t; k < end; ++k) {
      // Smooth transition from the previous chord over the ramp.
      const double blend =
          k - t < ramp ? static_cast<double>(k - t) / static_cast<double>(ramp)
                       : 1.0;
      profile[k] = prev_level * (1.0 - blend) + level * blend;
    }
    t = end;
    prev_level = level;
    level = rng.Uniform(0.5, 2.0);
  }

  // Beat-level texture: ~2 Hz amplitude modulation plus soft vibrato.
  for (size_t k = 0; k < length; ++k) {
    const double u = static_cast<double>(k) / static_cast<double>(length);
    profile[k] *= 1.0 + 0.15 * std::sin(2.0 * M_PI * 480.0 * u) +
                  0.05 * std::sin(2.0 * M_PI * 37.0 * u);
  }
  ZNormalizeInPlace(profile);
  return profile;
}

std::pair<std::vector<double>, std::vector<double>> MakePerformancePair(
    const ChromaOptions& options) {
  std::vector<double> studio = MakeSongProfile(options.length, options.seed);

  Rng rng(options.seed + 1);
  std::vector<double> live =
      ApplyRandomWarp(studio, options.max_shift_fraction, rng);
  for (double& v : live) v += rng.Gaussian(0.0, options.noise_stddev);
  ZNormalizeInPlace(live);
  return {std::move(studio), std::move(live)};
}

}  // namespace gen
}  // namespace warp
