// UCR-suite-style subsequence search: find a pattern in a week of data.
//
// The workload behind the paper's trillion-point remark: scan a long
// series for the best-matching window of a query under cDTW, using the
// acceleration stack only exact DTW admits — just-in-time normalization,
// the LB_Kim/LB_Keogh cascade, and early-abandoning DTW. Prints the
// cascade's pruning statistics and the speedup over the unpruned scan.
//
// Build & run:  ./build/examples/subsequence_search [haystack_len]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "warp/common/random.h"
#include "warp/gen/random_walk.h"
#include "warp/gen/warping.h"
#include "warp/mining/similarity_search.h"

int main(int argc, char** argv) {
  const size_t haystack_len =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 500000;
  const size_t query_len = 128;
  const size_t band = query_len * 5 / 100;  // cDTW_5, as in the UCR suite.

  // A long random-walk "recording" with a warped, rescaled copy of the
  // query planted deep inside.
  warp::Rng rng(7);
  std::vector<double> haystack = warp::gen::RandomWalk(haystack_len, rng);
  std::vector<double> query = warp::gen::RandomWalk(query_len, rng);
  const size_t planted_at = haystack_len * 2 / 3;
  const std::vector<double> planted =
      warp::gen::ApplyRandomWarp(query, 0.04, rng);
  for (size_t i = 0; i < query_len; ++i) {
    haystack[planted_at + i] = 2.5 * planted[i] - 7.0;  // Scale + offset.
  }
  std::printf("haystack: %zu points; query: %zu points; cDTW band: %zu "
              "cells; pattern planted at %zu (warped 4%%, rescaled)\n\n",
              haystack_len, query_len, band, planted_at);

  warp::SearchStats stats;
  const warp::SubsequenceMatch match = warp::FindBestMatch(
      haystack, query, band, warp::CostKind::kSquared, &stats);

  std::printf("best match: position %zu (distance %.4f) — %s\n",
              match.position, match.distance,
              match.position + 5 >= planted_at &&
                      match.position <= planted_at + 5
                  ? "the planted pattern, recovered"
                  : "NOT the planted pattern");
  std::printf("scan time: %.2f s (%.2e positions/s)\n\n", stats.seconds,
              static_cast<double>(stats.windows) / stats.seconds);

  std::printf("cascade statistics:\n");
  std::printf("  %10llu windows examined\n",
              static_cast<unsigned long long>(stats.windows));
  std::printf("  %10llu pruned by LB_Kim      (%.1f%%)\n",
              static_cast<unsigned long long>(stats.pruned_by_kim),
              100.0 * static_cast<double>(stats.pruned_by_kim) /
                  static_cast<double>(stats.windows));
  std::printf("  %10llu pruned by LB_Keogh    (%.1f%%)\n",
              static_cast<unsigned long long>(stats.pruned_by_keogh),
              100.0 * static_cast<double>(stats.pruned_by_keogh) /
                  static_cast<double>(stats.windows));
  std::printf("  %10llu DTWs abandoned early\n",
              static_cast<unsigned long long>(stats.abandoned_dtw));
  std::printf("  %10llu DTWs run to completion (%.3f%%)\n\n",
              static_cast<unsigned long long>(stats.full_dtw),
              100.0 * static_cast<double>(stats.full_dtw) /
                  static_cast<double>(stats.windows));

  // Contrast with the unpruned scan on a prefix.
  const size_t naive_len = std::min<size_t>(haystack_len, 30000);
  warp::SearchStats naive_stats;
  warp::FindBestMatchNaive(
      std::span<const double>(haystack).subspan(0, naive_len), query, band,
      warp::CostKind::kSquared, &naive_stats);
  const double cascade_rate =
      static_cast<double>(stats.windows) / stats.seconds;
  const double naive_rate =
      static_cast<double>(naive_stats.windows) / naive_stats.seconds;
  std::printf("without the cascade the same scan runs %.0fx slower — and "
              "none of these optimizations exist for FastDTW.\n",
              cascade_rate / naive_rate);
  return 0;
}
