// Experiment companion — the Fig. 1(a) accuracy annotations.
//
// The paper annotates its FastDTW curves with the approximation quality
// figures from the original FastDTW paper (error shrinking as the radius
// grows) and "assumes the original claims are true". This harness
// verifies those claims against our implementations: mean and worst-case
// approximation error (the original paper's percent-error metric) of
// FastDTW_r relative to exact Full DTW, by radius, on two data families —
// plus the adversarial family, where the error does not decay.
//
// Flags: --pairs (30), --length (300), --json=<path>.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_flags.h"
#include "warp/common/statistics.h"
#include "warp/common/stopwatch.h"
#include "warp/common/table_printer.h"
#include "warp/common/metrics.h"
#include "warp/obs/report.h"
#include "warp/core/approx_error.h"
#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/gen/adversarial.h"
#include "warp/gen/gesture.h"
#include "warp/gen/random_walk.h"

namespace warp {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int pairs = static_cast<int>(flags.GetInt("pairs", 30));
  const size_t length = static_cast<size_t>(flags.GetInt("length", 300));
  const size_t threads = SingleCoreThreadsFlag(flags);
  const std::string json_path = JsonFlag(flags);
  SimdFlag(flags);
  flags.Finalize();

  obs::BenchReport report(
      "Fig. 1(a) annotations",
      "FastDTW approximation error vs radius on three data families");
  report.AddConfig("threads", static_cast<int64_t>(threads));
  report.AddConfig("pairs", pairs);
  report.AddConfig("length", static_cast<int64_t>(length));

  PrintBanner("Fig. 1(a) annotations",
              "FastDTW approximation error vs radius (percent error "
              "relative to exact Full DTW)");

  // Pre-draw the pair pool.
  Rng rng(606);
  std::vector<std::pair<std::vector<double>, std::vector<double>>>
      walk_pairs;
  std::vector<std::pair<std::vector<double>, std::vector<double>>>
      gesture_pairs;
  gen::GestureOptions gesture_options;
  gesture_options.length = length;
  for (int p = 0; p < pairs; ++p) {
    walk_pairs.emplace_back(gen::RandomWalk(length, rng),
                            gen::RandomWalk(length, rng));
    gesture_pairs.emplace_back(
        gen::MakeGesture(p % gesture_options.num_classes, gesture_options,
                         rng)
            .values(),
        gen::MakeGesture((p + 1) % gesture_options.num_classes,
                         gesture_options, rng)
            .values());
  }

  TablePrinter table({"r", "walks mean err (%)", "walks max err (%)",
                      "gestures mean err (%)", "adversarial err (%)"});
  const gen::AdversarialTriple triple = gen::MakeAdversarialTriple();
  const double adversarial_exact = DtwDistance(triple.a, triple.b);

  for (size_t radius : {0u, 1u, 2u, 5u, 10u, 20u, 40u}) {
    const obs::MetricsSnapshot before = obs::SnapshotCounters();
    Stopwatch watch;
    auto sweep = [&](const auto& pool) {
      std::vector<double> errors;
      for (const auto& [x, y] : pool) {
        const double exact = DtwDistance(x, y);
        errors.push_back(
            ApproxErrorPercent(FastDtwDistance(x, y, radius), exact));
      }
      return errors;
    };
    const std::vector<double> walk_errors = sweep(walk_pairs);
    const std::vector<double> gesture_errors = sweep(gesture_pairs);
    const double adversarial_error = ApproxErrorPercent(
        FastDtwDistance(triple.a, triple.b, radius), adversarial_exact);
    report.AddCase("radius_" + std::to_string(radius),
                   SummarizeSamples({watch.ElapsedSeconds()}),
                   obs::CountersSince(before));
    table.AddRow({TablePrinter::FormatDouble(radius, 0),
                  TablePrinter::FormatDouble(Mean(walk_errors), 2),
                  TablePrinter::FormatDouble(
                      *std::max_element(walk_errors.begin(),
                                        walk_errors.end()),
                      2),
                  TablePrinter::FormatDouble(Mean(gesture_errors), 2),
                  TablePrinter::FormatDouble(adversarial_error, 0)});
  }
  table.Print();

  std::printf(
      "\nExpected shape: errors on natural data decay toward zero as r "
      "grows (the original FastDTW paper's claim, which the ICDE paper "
      "accepts) — while the adversarial pair's error stays catastrophic "
      "at every practical radius, because the coarse resolution committed "
      "to warping the wrong way (Appendix A).\n");
  report.Finish(json_path);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace warp

int main(int argc, char** argv) { return warp::bench::Main(argc, argv); }
