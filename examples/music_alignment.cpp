// Score-following / performance alignment (the paper's Case B).
//
// Aligns a "studio" recording against a "live" rendition of the same
// song (chroma-energy profiles at 100 Hz) and reports, for every studio
// timestamp, how far ahead or behind the live performance is — the
// payload a score-following application actually wants. Uses exact cDTW
// with the paper's 0.83% window (±2 s for a four-minute song).
//
// Build & run:  ./build/examples/music_alignment [length]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "warp/common/stopwatch.h"
#include "warp/core/dtw.h"
#include "warp/gen/chroma.h"

int main(int argc, char** argv) {
  const size_t length =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 12000;

  warp::gen::ChromaOptions options;
  options.length = length;
  options.max_shift_fraction = 0.0083;  // At most ~2 s of 240 s.
  const auto [studio, live] = warp::gen::MakePerformancePair(options);
  std::printf("aligning a %zu-sample (%.1f-minute at 100 Hz) performance "
              "pair, window w = 0.83%%\n\n",
              length, static_cast<double>(length) / 100.0 / 60.0);

  // Path-recovering cDTW: the band is the paper's w as cells.
  const size_t band = std::max<size_t>(1, length * 83 / 10000);
  warp::Stopwatch watch;
  const warp::DtwResult alignment = warp::Cdtw(studio, live, band);
  const double elapsed_ms = watch.ElapsedMillis();

  std::printf("alignment computed in %.1f ms (distance %.2f, %zu path "
              "steps)\n\n",
              elapsed_ms, alignment.distance, alignment.path.size());

  // Tempo report: offset (live - studio) sampled every 10% of the song.
  std::printf("%-12s %-14s %s\n", "position", "studio time", "live offset");
  for (int decile = 0; decile <= 10; ++decile) {
    const size_t target_i = (length - 1) * static_cast<size_t>(decile) / 10;
    // Find a path point at this studio index (paths are monotone, so a
    // binary search over path points by .i works).
    const auto& points = alignment.path.points();
    const auto it = std::lower_bound(
        points.begin(), points.end(), target_i,
        [](const warp::PathPoint& p, size_t i) { return p.i < i; });
    const double offset_seconds =
        (static_cast<double>(it->j) - static_cast<double>(it->i)) / 100.0;
    std::printf("%3d%%         %6.1f s       %+6.2f s %s\n", decile * 10,
                static_cast<double>(target_i) / 100.0, offset_seconds,
                offset_seconds > 0 ? "(live is behind)"
                                   : offset_seconds < 0 ? "(live is ahead)"
                                                        : "");
  }

  std::printf(
      "\nmax tempo deviation on the optimal path: %.2f s (window allows "
      "%.2f s)\n",
      static_cast<double>(alignment.path.MaxDiagonalDeviation()) / 100.0,
      static_cast<double>(band) / 100.0);
  return 0;
}
