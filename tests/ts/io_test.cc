// Unit tests for UCR-format and plain-series I/O, including failure paths.

#include "warp/ts/io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace warp {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }
};

TEST_F(IoTest, ParseUcrLineTabSeparated) {
  TimeSeries series;
  std::string error;
  ASSERT_TRUE(ParseUcrLine("2\t1.5\t-0.25\t3", &series, &error)) << error;
  EXPECT_EQ(series.label(), 2);
  EXPECT_EQ(series.values(), (std::vector<double>{1.5, -0.25, 3.0}));
}

TEST_F(IoTest, ParseUcrLineCommaSeparated) {
  TimeSeries series;
  std::string error;
  ASSERT_TRUE(ParseUcrLine("1,0.5,0.75", &series, &error)) << error;
  EXPECT_EQ(series.label(), 1);
  EXPECT_EQ(series.size(), 2u);
}

TEST_F(IoTest, ParseUcrLineRejectsGarbage) {
  TimeSeries series;
  std::string error;
  EXPECT_FALSE(ParseUcrLine("1\tfoo\t2", &series, &error));
  EXPECT_NE(error.find("foo"), std::string::npos);
}

TEST_F(IoTest, ParseUcrLineRejectsNonFinite) {
  TimeSeries series;
  std::string error;
  EXPECT_FALSE(ParseUcrLine("1\tnan\t2", &series, &error));
  EXPECT_FALSE(ParseUcrLine("1\tinf", &series, &error));
}

TEST_F(IoTest, ParseUcrLineRequiresLabelAndValue) {
  TimeSeries series;
  std::string error;
  EXPECT_FALSE(ParseUcrLine("3", &series, &error));
  EXPECT_FALSE(ParseUcrLine("", &series, &error));
}

TEST_F(IoTest, RoundTripDataset) {
  Dataset dataset;
  dataset.Add(TimeSeries({1.0, 2.0, 3.5}, 0));
  dataset.Add(TimeSeries({-1.0, 0.0, 0.125}, 1));
  const std::string path = TempPath("roundtrip.tsv");
  std::string error;
  ASSERT_TRUE(SaveUcrFile(path, dataset, &error)) << error;

  Dataset loaded;
  ASSERT_TRUE(LoadUcrFile(path, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].label(), 0);
  EXPECT_EQ(loaded[1].label(), 1);
  EXPECT_EQ(loaded[0].values(), dataset[0].values());
  EXPECT_EQ(loaded[1].values(), dataset[1].values());
}

TEST_F(IoTest, LoadMissingFileFails) {
  Dataset dataset;
  std::string error;
  EXPECT_FALSE(LoadUcrFile("/nonexistent/path.tsv", &dataset, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST_F(IoTest, LoadReportsLineNumberOnParseError) {
  const std::string path = TempPath("bad.tsv");
  {
    std::ofstream out(path);
    out << "1\t2.0\t3.0\n";
    out << "2\tbroken\t3.0\n";
  }
  Dataset dataset;
  std::string error;
  EXPECT_FALSE(LoadUcrFile(path, &dataset, &error));
  EXPECT_NE(error.find(":2:"), std::string::npos);
}

TEST_F(IoTest, EmptyFileFails) {
  const std::string path = TempPath("empty.tsv");
  { std::ofstream out(path); }
  Dataset dataset;
  std::string error;
  EXPECT_FALSE(LoadUcrFile(path, &dataset, &error));
}

TEST_F(IoTest, SkipsBlankLines) {
  const std::string path = TempPath("blanks.tsv");
  {
    std::ofstream out(path);
    out << "1\t2.0\n\n\n2\t4.0\n";
  }
  Dataset dataset;
  std::string error;
  ASSERT_TRUE(LoadUcrFile(path, &dataset, &error)) << error;
  EXPECT_EQ(dataset.size(), 2u);
}

TEST_F(IoTest, TruncatedRowLoadsAsShorterSeries) {
  // UCR files are whitespace-delimited; a row cut short mid-write still
  // parses (as a shorter series) and is diagnosable downstream via
  // UniformLength() == 0 rather than silently padding.
  const std::string path = TempPath("truncated.tsv");
  {
    std::ofstream out(path);
    out << "1\t2.0\t3.0\t4.0\n";
    out << "2\t5.0\n";  // Truncated.
  }
  Dataset dataset;
  std::string error;
  ASSERT_TRUE(LoadUcrFile(path, &dataset, &error)) << error;
  ASSERT_EQ(dataset.size(), 2u);
  EXPECT_EQ(dataset[0].size(), 3u);
  EXPECT_EQ(dataset[1].size(), 1u);
  EXPECT_EQ(dataset.UniformLength(), 0u);
}

TEST_F(IoTest, RowEndingInSeparatorIsNotTruncation) {
  TimeSeries series;
  std::string error;
  ASSERT_TRUE(ParseUcrLine("1\t2.0\t3.0\t", &series, &error)) << error;
  EXPECT_EQ(series.size(), 2u);
}

TEST_F(IoTest, MixedCaseNonFiniteValuesRejected) {
  const std::string path = TempPath("nan.tsv");
  {
    std::ofstream out(path);
    out << "1\t2.0\t3.0\n";
    out << "2\t4.0\tNaN\n";
    out << "3\t6.0\t7.0\n";
  }
  Dataset dataset;
  std::string error;
  EXPECT_FALSE(LoadUcrFile(path, &dataset, &error));
  EXPECT_NE(error.find(":2:"), std::string::npos);  // The offending line.
  TimeSeries series;
  EXPECT_FALSE(ParseUcrLine("1\t-INF", &series, &error));
}

TEST_F(IoTest, WhitespaceOnlyFileFails) {
  const std::string path = TempPath("whitespace.tsv");
  {
    std::ofstream out(path);
    out << "\n\r\n\n";
  }
  Dataset dataset;
  std::string error;
  EXPECT_FALSE(LoadUcrFile(path, &dataset, &error));
  EXPECT_NE(error.find("no series"), std::string::npos);
}

TEST_F(IoTest, LoadSeriesFileErrorPaths) {
  TimeSeries series;
  std::string error;
  EXPECT_FALSE(LoadSeriesFile("/nonexistent/series.txt", &series, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);

  const std::string empty = TempPath("empty_series.txt");
  { std::ofstream out(empty); }
  EXPECT_FALSE(LoadSeriesFile(empty, &series, &error));

  const std::string garbage = TempPath("garbage_series.txt");
  {
    std::ofstream out(garbage);
    out << "1.0\nbogus\n";
  }
  EXPECT_FALSE(LoadSeriesFile(garbage, &series, &error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
}

TEST_F(IoTest, SeriesRoundTrip) {
  const TimeSeries series({0.5, -2.25, 7.0});
  const std::string path = TempPath("series.txt");
  std::string error;
  ASSERT_TRUE(SaveSeriesFile(path, series, &error)) << error;
  TimeSeries loaded;
  ASSERT_TRUE(LoadSeriesFile(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.values(), series.values());
}

TEST_F(IoTest, WindowsLineEndingsTolerated) {
  const std::string path = TempPath("crlf.tsv");
  {
    std::ofstream out(path);
    out << "1\t2.0\t3.0\r\n";
  }
  Dataset dataset;
  std::string error;
  ASSERT_TRUE(LoadUcrFile(path, &dataset, &error)) << error;
  EXPECT_EQ(dataset[0].size(), 2u);
}

}  // namespace
}  // namespace warp
