#include "warp/core/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "warp/common/assert.h"
#include "warp/obs/metrics.h"

namespace warp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Distance-only engine.
//
// Classic two-row DP specialized to banded/windowed exploration. Rows are
// visited in order; `row_range(i)` yields the inclusive column range of
// row i and must satisfy the WarpingWindow invariants (monotone ranges,
// reachable, corners included). DP arrays use a +1 column offset so that
// index j+1 holds D(i, j); index 0 holds the virtual D(i, -1) = inf, and
// the virtual row -1 is all inf except D(-1, -1) = 0.
//
// Stale-cell management: ranges only move right, so after finishing row
// i-1 the only prev-row indices row i can read that were not freshly
// written are those above hi_{i-1}+1; they are re-set to inf on entry.
template <bool kAbandoning, typename RowRangeFn, typename CellCostFn>
double DistanceEngineImpl(size_t n, size_t m, RowRangeFn&& row_range,
                          CellCostFn&& cell_cost, double abandon_above,
                          DtwBuffer* buffer, uint64_t* cells) {
  WARP_CHECK(n > 0 && m > 0);
  DtwBuffer local;
  DtwBuffer* buf = buffer != nullptr ? buffer : &local;
  buf->prev.assign(m + 1, kInf);
  buf->cur.assign(m + 1, kInf);
  double* prev = buf->prev.data();
  double* cur = buf->cur.data();
  prev[0] = 0.0;

  size_t prev_hi = m;  // prev[] is fully initialized before row 0.
  uint64_t visited = 0;
  for (size_t i = 0; i < n; ++i) {
    const auto [lo32, hi32] = row_range(i);
    const size_t lo = lo32;
    const size_t hi = hi32;
    WARP_DCHECK(lo <= hi && hi < m);
    for (size_t k = prev_hi + 2; k <= hi + 1; ++k) prev[k] = kInf;
    // Virtual D(i, lo-1) = inf: row i+1 may read this slot as its
    // diagonal predecessor if its range starts at the same column.
    cur[lo] = kInf;

    // The carried scalars keep the recurrence's serial dependency in
    // registers: `left` is D(i, j-1), `diag` is D(i-1, j-1); prev[] is
    // only read once per cell and cur[] only written.
    const double* __restrict prev_row = prev;
    double* __restrict cur_row = cur;
    double left = kInf;
    double diag = prev_row[lo];
    double row_min = kInf;
    for (size_t j = lo; j <= hi; ++j) {
      const double up = prev_row[j + 1];  // D(i-1, j)
      double best = diag;
      if (up < best) best = up;
      if (left < best) best = left;
      const double value = best + cell_cost(i, j);
      cur_row[j + 1] = value;
      left = value;
      diag = up;
      if constexpr (kAbandoning) {
        if (value < row_min) row_min = value;
      }
    }
    visited += hi - lo + 1;
    if constexpr (kAbandoning) {
      if (row_min > abandon_above) {
        if (cells != nullptr) *cells = visited;
        WARP_COUNT_ADD(obs::Counter::kDtwCells, visited);
        WARP_COUNT(obs::Counter::kDtwEarlyAbandons);
        return kInf;
      }
    }
    std::swap(prev, cur);
    prev_hi = hi;
  }
  if (cells != nullptr) *cells = visited;
  WARP_COUNT_ADD(obs::Counter::kDtwCells, visited);
  return prev[m];
}

template <typename RowRangeFn, typename CellCostFn>
double DistanceEngine(size_t n, size_t m, RowRangeFn&& row_range,
                      CellCostFn&& cell_cost, double abandon_above,
                      DtwBuffer* buffer, uint64_t* cells) {
  if (abandon_above == kInf) {
    return DistanceEngineImpl<false>(n, m, row_range, cell_cost,
                                     abandon_above, buffer, cells);
  }
  return DistanceEngineImpl<true>(n, m, row_range, cell_cost, abandon_above,
                                  buffer, cells);
}

// Sakoe–Chiba per-row range, generalized to unequal lengths by centering
// the band on the scaled diagonal. The `lo(i+1) - 1` patch widens hi just
// enough to keep consecutive rows connected when the diagonal advances by
// more than one column per row; this reproduces exactly what
// WarpingWindow::SakoeChiba + Canonicalize produce, without materializing
// the window.
struct BandRowRange {
  size_t n;
  int64_t last_col;
  int64_t band;
  double slope;

  int64_t LoAt(size_t i) const {
    const int64_t center =
        static_cast<int64_t>(std::llround(static_cast<double>(i) * slope));
    return std::clamp<int64_t>(center - band, 0, last_col);
  }

  std::pair<uint32_t, uint32_t> operator()(size_t i) const {
    const int64_t center =
        static_cast<int64_t>(std::llround(static_cast<double>(i) * slope));
    const int64_t lo = std::clamp<int64_t>(center - band, 0, last_col);
    int64_t hi = std::clamp<int64_t>(center + band, 0, last_col);
    if (i + 1 < n) {
      const int64_t next_lo = LoAt(i + 1);
      if (next_lo - 1 > hi) hi = next_lo - 1;
    } else {
      hi = last_col;
    }
    return {static_cast<uint32_t>(lo), static_cast<uint32_t>(hi)};
  }
};

// Routes to the integer fast path when the band is square (n == m); the
// generalized scaled-diagonal range produces identical ranges there, just
// with more arithmetic per row.
template <typename CellCostFn>
double BandedDistance(size_t n, size_t m, size_t band, CellCostFn&& cell_cost,
                      double abandon_above, DtwBuffer* buffer,
                      uint64_t* cells);

BandRowRange MakeBandRowRange(size_t n, size_t m, size_t band) {
  BandRowRange range;
  range.n = n;
  range.last_col = static_cast<int64_t>(m) - 1;
  range.band = static_cast<int64_t>(band);
  range.slope = n > 1 ? static_cast<double>(m - 1) / static_cast<double>(n - 1)
                      : 0.0;
  return range;
}

// Equal-length Sakoe–Chiba band: pure integer clamping, no rounding. The
// all-pairs experiments hit this path, so it matters that it is branch-lean.
struct SquareBandRowRange {
  size_t band;
  size_t last_col;
  std::pair<uint32_t, uint32_t> operator()(size_t i) const {
    const size_t lo = i > band ? i - band : 0;
    const size_t hi = i + band < last_col ? i + band : last_col;
    return {static_cast<uint32_t>(lo), static_cast<uint32_t>(hi)};
  }
};

struct WindowRowRange {
  const WarpingWindow* window;
  std::pair<uint32_t, uint32_t> operator()(size_t i) const {
    const WarpingWindow::ColRange& r = window->range(i);
    return {r.lo, r.hi};
  }
};

template <typename CellCostFn>
double BandedDistance(size_t n, size_t m, size_t band, CellCostFn&& cell_cost,
                      double abandon_above, DtwBuffer* buffer,
                      uint64_t* cells) {
  if (n == m) {
    return DistanceEngine(n, m, SquareBandRowRange{band, m - 1}, cell_cost,
                          abandon_above, buffer, cells);
  }
  return DistanceEngine(n, m, MakeBandRowRange(n, m, band), cell_cost,
                        abandon_above, buffer, cells);
}

// 1-D local cost bound to two spans.
template <typename Cost>
struct SeriesCellCost {
  const double* x;
  const double* y;
  Cost cost;
  double operator()(size_t i, size_t j) const { return cost(x[i], y[j]); }
};

// Multichannel (dependent) local cost: sum of per-channel costs.
template <typename Cost>
struct MultiCellCost {
  const MultiSeries* x;
  const MultiSeries* y;
  Cost cost;
  double operator()(size_t i, size_t j) const {
    double sum = 0.0;
    for (size_t c = 0; c < x->num_channels(); ++c) {
      sum += cost(x->at(c, i), y->at(c, j));
    }
    return sum;
  }
};

// ---------------------------------------------------------------------------
// Path-recovering engine.
//
// Materializes the cumulative-cost value of every window cell (flattened
// row-major with per-row offsets), then walks back from (n-1, m-1) along
// minimal predecessors. Ties prefer the diagonal step, which yields the
// shortest optimal path.
template <typename CellCostFn>
DtwResult PathEngine(size_t n, size_t m, const WarpingWindow& window,
                     CellCostFn&& cell_cost) {
  WARP_CHECK(window.rows() == n && window.cols() == m);
  std::string error;
  WARP_CHECK_MSG(window.Validate(&error), error.c_str());

  std::vector<uint64_t> offsets(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    const auto& r = window.range(i);
    offsets[i + 1] = offsets[i] + (r.hi - r.lo + 1);
  }
  std::vector<double> cumulative(offsets[n]);
  WARP_COUNT_ADD(obs::Counter::kPathEngineCells, offsets[n]);
  WARP_COUNT_ADD(obs::Counter::kPathEngineBytes,
                 offsets[n] * sizeof(double) +
                     (n + 1) * sizeof(uint64_t));

  auto value_at = [&](size_t i, size_t j) -> double {
    const auto& r = window.range(i);
    if (j < r.lo || j > r.hi) return kInf;
    return cumulative[offsets[i] + (j - r.lo)];
  };

  for (size_t i = 0; i < n; ++i) {
    const auto& r = window.range(i);
    for (size_t j = r.lo; j <= r.hi; ++j) {
      double best;
      if (i == 0 && j == 0) {
        best = 0.0;
      } else {
        best = kInf;
        if (i > 0 && j > 0) best = value_at(i - 1, j - 1);
        if (i > 0) best = std::min(best, value_at(i - 1, j));
        if (j > 0) best = std::min(best, value_at(i, j - 1));
      }
      cumulative[offsets[i] + (j - r.lo)] = best + cell_cost(i, j);
    }
  }

  DtwResult result;
  result.distance = value_at(n - 1, m - 1);
  result.cells_visited = offsets[n];
  WARP_CHECK_MSG(std::isfinite(result.distance),
                 "window admits no complete warping path");

  // Traceback.
  size_t i = n - 1;
  size_t j = m - 1;
  result.path.Append(static_cast<uint32_t>(i), static_cast<uint32_t>(j));
  while (i != 0 || j != 0) {
    double best = kInf;
    int move = -1;  // 0 = diagonal, 1 = up, 2 = left.
    if (i > 0 && j > 0) {
      best = value_at(i - 1, j - 1);
      move = 0;
    }
    if (i > 0) {
      const double up = value_at(i - 1, j);
      if (up < best) {
        best = up;
        move = 1;
      }
    }
    if (j > 0) {
      const double left = value_at(i, j - 1);
      if (left < best) {
        best = left;
        move = 2;
      }
    }
    WARP_CHECK_MSG(move >= 0 && std::isfinite(best),
                   "traceback hit an unreachable cell");
    if (move == 0) {
      --i;
      --j;
    } else if (move == 1) {
      --i;
    } else {
      --j;
    }
    result.path.Append(static_cast<uint32_t>(i), static_cast<uint32_t>(j));
  }
  result.path.Reverse();
#ifndef NDEBUG
  // Debug-build invariant oracle hooks: the recovered alignment must be a
  // legal warping path, stay inside the window it was searched in, and
  // cost exactly what the DP reported.
  std::string path_error;
  WARP_CHECK_MSG(result.path.Validate(n, m, &path_error), path_error.c_str());
  for (const PathPoint& p : result.path.points()) {
    WARP_DCHECK(window.Contains(p.i, p.j));
  }
#endif
  return result;
}

}  // namespace

// ---------------------------------------------------------------------------
// Unconstrained DTW.

double DtwDistance(std::span<const double> x, std::span<const double> y,
                   CostKind cost, uint64_t* cells) {
  WARP_CHECK(!x.empty() && !y.empty());
  const size_t band = std::max(x.size(), y.size());
  return WithCost(cost, [&](auto c) {
    return BandedDistance(
        x.size(), y.size(), band,
        SeriesCellCost<decltype(c)>{x.data(), y.data(), c}, kInf, nullptr,
        cells);
  });
}

DtwResult Dtw(std::span<const double> x, std::span<const double> y,
              CostKind cost) {
  return WindowedDtw(x, y, WarpingWindow::Full(x.size(), y.size()), cost);
}

// ---------------------------------------------------------------------------
// Sakoe–Chiba constrained DTW.

double CdtwDistance(std::span<const double> x, std::span<const double> y,
                    size_t band, CostKind cost, DtwBuffer* buffer,
                    uint64_t* cells) {
  WARP_CHECK(!x.empty() && !y.empty());
  return WithCost(cost, [&](auto c) {
    return BandedDistance(
        x.size(), y.size(), band,
        SeriesCellCost<decltype(c)>{x.data(), y.data(), c}, kInf, buffer,
        cells);
  });
}

double CdtwDistanceFraction(std::span<const double> x,
                            std::span<const double> y, double fraction,
                            CostKind cost, DtwBuffer* buffer) {
  WARP_CHECK(fraction >= 0.0);
  const size_t longest = std::max(x.size(), y.size());
  const size_t band = static_cast<size_t>(
      std::llround(fraction * static_cast<double>(longest)));
  return CdtwDistance(x, y, band, cost, buffer);
}

double CdtwDistanceAbandoning(std::span<const double> x,
                              std::span<const double> y, size_t band,
                              double abandon_above, CostKind cost,
                              DtwBuffer* buffer) {
  WARP_CHECK(!x.empty() && !y.empty());
  return WithCost(cost, [&](auto c) {
    return BandedDistance(
        x.size(), y.size(), band,
        SeriesCellCost<decltype(c)>{x.data(), y.data(), c}, abandon_above,
        buffer, nullptr);
  });
}

double PrunedCdtwDistance(std::span<const double> x,
                          std::span<const double> y, size_t band,
                          CostKind cost, double upper_bound,
                          DtwBuffer* buffer, uint64_t* cells) {
  WARP_CHECK(!x.empty());
  WARP_CHECK_MSG(x.size() == y.size(),
                 "PrunedDTW requires equal lengths (the Euclidean upper "
                 "bound rides the diagonal)");
  const size_t n = x.size();
  double ub =
      upper_bound >= 0.0 ? upper_bound : EuclideanDistance(x, y, cost);
  // Tiny inflation so floating-point drift between the bound's summation
  // order and the DP's cannot prune a cell of the optimal path. Larger ub
  // only weakens pruning, never correctness.
  ub += 1e-9 * (std::fabs(ub) + 1.0);

  return WithCost(cost, [&](auto c) -> double {
    DtwBuffer local;
    DtwBuffer* buf = buffer != nullptr ? buffer : &local;
    buf->prev.assign(n + 1, kInf);
    buf->cur.assign(n + 1, kInf);
    double* prev = buf->prev.data();
    double* cur = buf->cur.data();
    prev[0] = 0.0;

    // sc: first column of the previous row whose value stayed <= ub (no
    // cheaper-than-ub path enters this row left of it). limit: one past
    // the previous row's last under-bound column; beyond it cells are
    // reachable only through a live horizontal chain.
    size_t sc = 0;
    size_t prev_last_under = n;  // Row -1 imposes no limit on row 0.
    uint64_t visited = 0;
    uint64_t skipped = 0;  // Band cells pruning never touched.
    for (size_t i = 0; i < n; ++i) {
      const size_t blo = i > band ? i - band : 0;
      const size_t bhi = std::min(n - 1, i + band);
      const size_t beg = std::max(blo, sc);
      const size_t limit =
          i == 0 ? bhi : std::min(bhi, prev_last_under + 1);

      cur[beg] = kInf;  // Virtual D(i, beg-1): pruned or out of band.
      double left = kInf;
      double diag = prev[beg];
      bool found = false;
      size_t first_under = 0;
      size_t last_under = 0;
      size_t j = beg;
      for (; j <= bhi; ++j) {
        if (j > limit && left > ub) break;  // Nothing can reach further.
        const double up = prev[j + 1];
        double best = diag;
        if (up < best) best = up;
        if (left < best) best = left;
        const double value = best + c(x[i], y[j]);
        cur[j + 1] = value;
        diag = up;
        left = value;
        ++visited;
        if (value <= ub) {
          if (!found) {
            first_under = j;
            found = true;
          }
          last_under = j;
        }
      }
      skipped += (bhi - blo + 1) - (j - beg);
      if (!found) {
        // Cannot happen when ub really upper-bounds the optimum (the
        // optimal path crosses every row with prefix <= ub); defend
        // against a caller-supplied bound that was too tight.
        if (cells != nullptr) *cells = visited;
        WARP_COUNT_ADD(obs::Counter::kPrunedDtwCells, visited);
        WARP_COUNT_ADD(obs::Counter::kPrunedDtwCellsSkipped, skipped);
        return kInf;
      }
      // Stale-cell discipline: the next row may read one column past what
      // this row wrote.
      const size_t explored_hi = j > beg ? j - 1 : beg;
      const size_t next_bhi = std::min(n - 1, i + 1 + band);
      for (size_t k = explored_hi + 2; k <= next_bhi + 1; ++k) cur[k] = kInf;
      std::swap(prev, cur);
      sc = first_under;
      prev_last_under = last_under;
    }
    if (cells != nullptr) *cells = visited;
    WARP_COUNT_ADD(obs::Counter::kPrunedDtwCells, visited);
    WARP_COUNT_ADD(obs::Counter::kPrunedDtwCellsSkipped, skipped);
    return prev[n];
  });
}

DtwResult Cdtw(std::span<const double> x, std::span<const double> y,
               size_t band, CostKind cost) {
  return WindowedDtw(x, y, WarpingWindow::SakoeChiba(x.size(), y.size(), band),
                     cost);
}

// ---------------------------------------------------------------------------
// Arbitrary-window DTW.

double WindowedDtwDistance(std::span<const double> x,
                           std::span<const double> y,
                           const WarpingWindow& window, CostKind cost,
                           DtwBuffer* buffer, uint64_t* cells) {
  WARP_CHECK(!x.empty() && !y.empty());
  WARP_CHECK(window.rows() == x.size() && window.cols() == y.size());
  return WithCost(cost, [&](auto c) {
    return DistanceEngine(x.size(), y.size(), WindowRowRange{&window},
                          SeriesCellCost<decltype(c)>{x.data(), y.data(), c},
                          kInf, buffer, cells);
  });
}

DtwResult WindowedDtw(std::span<const double> x, std::span<const double> y,
                      const WarpingWindow& window, CostKind cost) {
  WARP_CHECK(!x.empty() && !y.empty());
  return WithCost(cost, [&](auto c) {
    return PathEngine(x.size(), y.size(), window,
                      SeriesCellCost<decltype(c)>{x.data(), y.data(), c});
  });
}

double NormalizedCdtwDistance(std::span<const double> x,
                              std::span<const double> y, size_t band,
                              CostKind cost) {
  const DtwResult result = Cdtw(x, y, band, cost);
  return result.distance / static_cast<double>(result.path.size());
}

double NormalizedDtwDistance(std::span<const double> x,
                             std::span<const double> y, CostKind cost) {
  const DtwResult result = Dtw(x, y, cost);
  return result.distance / static_cast<double>(result.path.size());
}

// ---------------------------------------------------------------------------
// Euclidean distance.

double EuclideanDistance(std::span<const double> x, std::span<const double> y,
                         CostKind cost) {
  WARP_CHECK_MSG(x.size() == y.size(),
                 "Euclidean distance requires equal lengths");
  WARP_CHECK(!x.empty());
  return WithCost(cost, [&](auto c) {
    double sum = 0.0;
    for (size_t i = 0; i < x.size(); ++i) sum += c(x[i], y[i]);
    return sum;
  });
}

double EuclideanDistanceAbandoning(std::span<const double> x,
                                   std::span<const double> y,
                                   double abandon_above, CostKind cost) {
  WARP_CHECK_MSG(x.size() == y.size(),
                 "Euclidean distance requires equal lengths");
  WARP_CHECK(!x.empty());
  return WithCost(cost, [&](auto c) {
    double sum = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      sum += c(x[i], y[i]);
      if (sum > abandon_above) return kInf;
    }
    return sum;
  });
}

// ---------------------------------------------------------------------------
// Multichannel DTW.

double MultiDtwDistance(const MultiSeries& x, const MultiSeries& y,
                        CostKind cost, uint64_t* cells) {
  WARP_CHECK(!x.empty() && !y.empty());
  WARP_CHECK(x.num_channels() == y.num_channels());
  const size_t band = std::max(x.length(), y.length());
  return WithCost(cost, [&](auto c) {
    return BandedDistance(x.length(), y.length(), band,
                          MultiCellCost<decltype(c)>{&x, &y, c}, kInf,
                          nullptr, cells);
  });
}

double MultiCdtwDistance(const MultiSeries& x, const MultiSeries& y,
                         size_t band, CostKind cost, DtwBuffer* buffer,
                         uint64_t* cells) {
  WARP_CHECK(!x.empty() && !y.empty());
  WARP_CHECK(x.num_channels() == y.num_channels());
  return WithCost(cost, [&](auto c) {
    return BandedDistance(x.length(), y.length(), band,
                          MultiCellCost<decltype(c)>{&x, &y, c}, kInf, buffer,
                          cells);
  });
}

DtwResult MultiWindowedDtw(const MultiSeries& x, const MultiSeries& y,
                           const WarpingWindow& window, CostKind cost) {
  WARP_CHECK(!x.empty() && !y.empty());
  WARP_CHECK(x.num_channels() == y.num_channels());
  return WithCost(cost, [&](auto c) {
    return PathEngine(x.length(), y.length(), window,
                      MultiCellCost<decltype(c)>{&x, &y, c});
  });
}

}  // namespace warp
