// Request batching: coalesces concurrent queries into engine batches.
//
// Connection handlers (one per client) block in Execute(); a single
// dispatcher thread drains EVERY submission pending at that moment into
// one QueryEngine::RunBatch call. Queries that arrive while a batch is in
// flight pile up and form the next batch — the classic group-commit
// shape. The engine groups each batch by dataset, so concurrent clients
// hammering the same dataset share its snapshot resolution and fan out
// over one ParallelFor instead of queueing pool round-trips per request.
//
// The dispatcher is the engine's single orchestrator: Execute() never
// touches the engine from the submitting thread, so the ThreadPool's
// one-orchestrator contract holds no matter how many connections submit.

#ifndef WARP_SERVE_BATCHER_H_
#define WARP_SERVE_BATCHER_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "warp/common/stopwatch.h"
#include "warp/serve/query_engine.h"
#include "warp/serve/request.h"

namespace warp {
namespace serve {

class Batcher {
 public:
  // `engine` must outlive the batcher. Starts the dispatcher thread.
  // `max_queue_depth` bounds the number of submissions (client
  // pipelines, not individual requests) waiting for adoption; 0 means
  // unbounded. A submission arriving at a full queue is shed
  // immediately — every response comes back ok:false,
  // error:"overloaded" — so one slow scan cannot back up the world
  // (admission bounds time-in-queue; deadlines bound time-in-engine).
  explicit Batcher(QueryEngine* engine, size_t max_queue_depth = 0);
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  // Answers `requests` in order; blocks until every response is ready
  // (or fast-fails them all when the queue is at max_queue_depth).
  // Thread-safe; concurrent callers coalesce into shared batches.
  void Execute(const std::vector<ServeRequest>& requests,
               std::vector<ServeResponse>* responses);

  // Batches dispatched so far (for tests and the bench).
  uint64_t batches_dispatched() const;

  // Submissions currently waiting for adoption (for tests and stats).
  size_t queue_depth() const;

  // Submissions fast-failed at the admission gate so far.
  uint64_t shed() const;

 private:
  struct Submission {
    const std::vector<ServeRequest>* requests = nullptr;
    std::vector<ServeResponse>* responses = nullptr;
    // Queue-wait clock: started at submit, read when the dispatcher
    // assembles the batch containing this submission.
    Stopwatch queued;
    // Per-submission signal (not one shared cv) so completing a batch
    // wakes exactly its submitters, not every connection in the house.
    std::condition_variable cv;
    bool done = false;
  };

  void DispatchLoop();

  QueryEngine* const engine_;
  const size_t max_queue_depth_;
  mutable std::mutex mutex_;
  std::condition_variable pending_cv_;  // Signals the dispatcher.
  std::deque<Submission*> pending_;
  uint64_t batches_ = 0;
  uint64_t shed_ = 0;
  bool stop_ = false;
  std::thread dispatcher_;
};

}  // namespace serve
}  // namespace warp

#endif  // WARP_SERVE_BATCHER_H_
