// Typed requests and responses for the query-serving subsystem.
//
// One struct pair shared by the query engine (execution), the result
// cache (keying), the protocol layer (JSON <-> struct), and the in-process
// bench — so a request built from a wire line and one built directly by a
// test are the same object and provably take the same code path.

#ifndef WARP_SERVE_REQUEST_H_
#define WARP_SERVE_REQUEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "warp/core/measure.h"
#include "warp/obs/histogram.h"

namespace warp {
namespace serve {

// Query operations the engine executes. The server additionally handles
// control operations (load/info/stats/ping/shutdown) that never reach the
// engine; see docs/SERVING.md.
enum class QueryOp {
  k1Nn,          // nearest neighbor of `query` in `dataset`
  kKnn,          // k nearest neighbors
  kRange,        // all series with distance <= threshold
  kDist,         // distance between `query` and series `index`
  kSubsequence,  // best-matching window of series `index` for `query`
};

// "1nn", "knn", ... — the wire op names.
const char* QueryOpName(QueryOp op);
bool ParseQueryOp(const std::string& name, QueryOp* op);

// Per-request stage timings (docs/SERVING.md, "Serving telemetry").
// Wall-clock values: they are recorded into the obs histograms for every
// request, echoed back in the response only when the request carried
// "trace":true, and are never part of the result-cache key or of golden
// comparisons. All fields are microseconds except the two flags.
struct StageTrace {
  bool requested = false;   // request asked for the trace echo
  bool from_cache = false;  // answered from the result cache
  double parse_us = 0.0;      // wire line -> ServeRequest (server)
  double cache_us = 0.0;      // result-cache lookup (engine)
  double queue_us = 0.0;      // submit -> batch dispatch (batcher)
  double engine_us = 0.0;     // candidate scan / kernel work (engine)
  double merge_us = 0.0;      // per-chunk result merge (engine)
  double serialize_us = 0.0;  // ServeResponse -> wire line (protocol)
  // DP cells this execution computed (dtw_cells delta; 0 on cache hits
  // and under WARP_PROFILE=OFF). Deterministic, unlike the timings.
  uint64_t cells = 0;
};

struct ServeRequest {
  int64_t id = 0;
  QueryOp op = QueryOp::k1Nn;
  std::string dataset;
  std::string measure = "cdtw";
  MeasureParams params;        // band/window/cost + measure knobs.
  size_t k = 1;                // knn only.
  double threshold = 0.0;      // range only.
  size_t index = 0;            // dist / subsequence target series.
  std::vector<double> query;   // the query series.
  bool znormalize = true;      // z-normalize `query` before matching.
  double deadline_ms = 0.0;    // <= 0: no deadline.
  bool trace = false;          // echo stage timings in the response.

  // Cluster scatter stamp (wire fields "shard"/"shard_epoch"). A router
  // stamps each sub-scan with the target worker's shard and the dataset
  // epoch it planned against; a worker refuses mis-routed or stale work
  // instead of answering wrong. shard_filter < 0 means "scan all shards"
  // (the single-process default); require_epoch 0 means "any epoch".
  long shard_filter = -1;
  uint64_t require_epoch = 0;
};

struct Neighbor {
  size_t index = 0;
  int label = 0;
  double distance = 0.0;
};

struct ServeResponse {
  int64_t id = 0;
  bool ok = false;
  std::string error;
  QueryOp op = QueryOp::k1Nn;

  // Deadline bookkeeping: `partial` is set when the per-request budget
  // expired before every candidate was scanned; `scanned` of `total`
  // candidates were fully considered (the answer is exact over those).
  bool partial = false;
  uint64_t scanned = 0;
  uint64_t total = 0;

  // 1nn / knn / range results, ordered by (distance, index) for knn and
  // by index for range.
  std::vector<Neighbor> neighbors;

  // dist / subsequence results.
  double distance = 0.0;
  size_t position = 0;

  // Shards that contributed no answer because their worker was down
  // (cluster router only; always empty from a single-process server).
  // Serialized only when non-empty, so single-process goldens are
  // unchanged. Implies `partial`.
  std::vector<size_t> shards_missing;

  // Stage timings for this request. Never cached (ResultCache::Insert
  // clears it), never compared in goldens; serialized only when
  // `trace.requested`.
  StageTrace trace;
};

// The latency histogram a query op records into.
obs::Histogram LatencyHistogramForOp(QueryOp op);

}  // namespace serve
}  // namespace warp

#endif  // WARP_SERVE_REQUEST_H_
