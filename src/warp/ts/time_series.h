// A 1-D time series: the basic currency of the warp library.
//
// Algorithms in warp/core accept std::span<const double> so that they work
// on raw vectors, TimeSeries objects, and sub-ranges alike; TimeSeries adds
// a label and a name for dataset handling plus a few shape conveniences.

#ifndef WARP_TS_TIME_SERIES_H_
#define WARP_TS_TIME_SERIES_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace warp {

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::vector<double> values, int label = kUnlabeled)
      : values_(std::move(values)), label_(label) {}

  TimeSeries(const TimeSeries&) = default;
  TimeSeries& operator=(const TimeSeries&) = default;
  TimeSeries(TimeSeries&&) = default;
  TimeSeries& operator=(TimeSeries&&) = default;

  // Label value used for unlabeled series.
  static constexpr int kUnlabeled = -1;

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double operator[](size_t i) const { return values_[i]; }
  double& operator[](size_t i) { return values_[i]; }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }
  std::span<const double> view() const { return values_; }

  int label() const { return label_; }
  void set_label(int label) { label_ = label; }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // Copies the half-open index range [begin, end) into a new series with
  // the same label.
  TimeSeries Slice(size_t begin, size_t end) const;

  // Elementwise summary values. All require a non-empty series.
  double Min() const;
  double Max() const;
  double Mean() const;
  double StdDev() const;  // Population standard deviation.

  // True if any value is NaN or infinite.
  bool HasNonFinite() const;

 private:
  std::vector<double> values_;
  int label_ = kUnlabeled;
  std::string name_;
};

}  // namespace warp

#endif  // WARP_TS_TIME_SERIES_H_
