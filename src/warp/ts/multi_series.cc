#include "warp/ts/multi_series.h"

#include <cmath>

#include "warp/common/assert.h"
#include "warp/ts/znorm.h"

namespace warp {

MultiSeries::MultiSeries(size_t num_channels, size_t length, int label)
    : num_channels_(num_channels),
      length_(length),
      label_(label),
      data_(num_channels * length, 0.0) {
  WARP_CHECK(num_channels > 0);
}

MultiSeries::MultiSeries(std::vector<std::vector<double>> channels, int label)
    : label_(label) {
  WARP_CHECK(!channels.empty());
  num_channels_ = channels.size();
  length_ = channels[0].size();
  data_.reserve(num_channels_ * length_);
  for (const auto& channel : channels) {
    WARP_CHECK_MSG(channel.size() == length_,
                   "all channels must have equal length");
    data_.insert(data_.end(), channel.begin(), channel.end());
  }
}

std::span<const double> MultiSeries::channel(size_t c) const {
  WARP_CHECK(c < num_channels_);
  return {data_.data() + c * length_, length_};
}

std::span<double> MultiSeries::mutable_channel(size_t c) {
  WARP_CHECK(c < num_channels_);
  return {data_.data() + c * length_, length_};
}

double MultiSeries::at(size_t c, size_t t) const {
  WARP_DCHECK(c < num_channels_ && t < length_);
  return data_[c * length_ + t];
}

void MultiSeries::set(size_t c, size_t t, double value) {
  WARP_DCHECK(c < num_channels_ && t < length_);
  data_[c * length_ + t] = value;
}

void MultiSeries::Frame(size_t t, std::vector<double>& out) const {
  WARP_CHECK(t < length_);
  out.resize(num_channels_);
  for (size_t c = 0; c < num_channels_; ++c) out[c] = at(c, t);
}

void MultiSeries::ZNormalizeChannels() {
  for (size_t c = 0; c < num_channels_; ++c) {
    ZNormalizeInPlace(mutable_channel(c));
  }
}

}  // namespace warp
