// Experiment companion — paper Table 1: the four-quadrant map.
//
// One representative head-to-head per quadrant, each on its own domain
// generator, summarizing the whole paper in one table:
//   Case A (short N, narrow W): gesture exemplars, N=315, w=5%
//   Case B (long N, narrow W):  music alignment, N=24,000, w=0.83%
//   Case C (short N, wide W):   power-demand days, N=450, w=40%
//   Case D (long N, wide W):    fall traces, N=1,600, w=100%
// For each: exact cDTW at the domain's W vs FastDTW (reference package
// and optimized port) at a serviceable radius.
//
// Flags: --reps (5), --json=<path>.

#include <cstdio>
#include <string>

#include "harness/bench_flags.h"
#include "warp/common/stopwatch.h"
#include "warp/common/table_printer.h"
#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/core/fastdtw_reference.h"
#include "warp/gen/chroma.h"
#include "warp/gen/fall.h"
#include "warp/gen/gesture.h"
#include "warp/gen/power_demand.h"
#include "warp/obs/report.h"
#include "warp/obs/trace.h"

namespace warp {
namespace bench {
namespace {

struct CaseSpec {
  const char* name;
  std::vector<double> x;
  std::vector<double> y;
  double window_fraction;
  size_t radius;
};

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int reps = static_cast<int>(flags.GetInt("reps", 5));
  const size_t threads = SingleCoreThreadsFlag(flags);
  const std::string json_path = JsonFlag(flags);
  SimdFlag(flags);
  flags.Finalize();

  obs::BenchReport report(
      "Table 1", "Four-quadrant map: exact cDTW_W vs FastDTW per case");
  report.AddConfig("threads", static_cast<int64_t>(threads));
  report.AddConfig("reps", reps);

  PrintBanner("Table 1",
              "The four-quadrant map: one representative pairing per "
              "case, exact cDTW_W vs FastDTW");

  std::vector<CaseSpec> cases;
  {
    gen::GestureOptions options;
    options.length = 315;
    Rng rng(1);
    cases.push_back({"A: gestures (N=315, W=5%)",
                     gen::MakeGesture(0, options, rng).values(),
                     gen::MakeGesture(0, options, rng).values(), 0.05, 10});
  }
  {
    gen::ChromaOptions options;
    options.length = 24000;
    auto [studio, live] = gen::MakePerformancePair(options);
    cases.push_back({"B: music (N=24000, W=0.83%)", std::move(studio),
                     std::move(live), 0.0083, 10});
  }
  {
    Rng rng(2);
    const TimeSeries day1 = gen::MakeDishwasherNight(450, 20, rng);
    const TimeSeries day2 = gen::MakeDishwasherNight(450, 170, rng);
    cases.push_back({"C: power (N=450, W=40%)", day1.values(),
                     day2.values(), 0.40, 20});
  }
  {
    Rng rng(3);
    auto [early, late] = gen::MakeFallPair(16.0, 100.0, rng);
    cases.push_back({"D: falls (N=1600, W=100%)", std::move(early),
                     std::move(late), 1.0, 40});
  }

  TablePrinter table({"case", "cDTW_W (ms)", "FastDTW ref (ms)",
                      "FastDTW opt (ms)", "exact wins vs ref",
                      "vs opt"});
  for (const CaseSpec& spec : cases) {
    obs::TraceSpan case_span(spec.name);
    DtwBuffer buffer;
    double checksum = 0.0;
    const std::string label(spec.name, 0, 1);  // Quadrant letter.
    TimingSummary exact;
    TimingSummary reference;
    TimingSummary optimized;
    {
      obs::TraceSpan span("cdtw_w");
      exact = report.MeasureCase(
          label + "/cdtw_w",
          [&] {
            checksum += CdtwDistanceFraction(spec.x, spec.y,
                                             spec.window_fraction,
                                             CostKind::kSquared, &buffer);
          },
          reps);
    }
    {
      obs::TraceSpan span("fastdtw_ref");
      reference = report.MeasureCase(
          label + "/fastdtw_ref",
          [&] {
            checksum +=
                ReferenceFastDtw(spec.x, spec.y, spec.radius).distance;
          },
          std::max(1, reps / 5), 0);
    }
    {
      obs::TraceSpan span("fastdtw_opt");
      optimized = report.MeasureCase(
          label + "/fastdtw_opt",
          [&] { checksum += FastDtwDistance(spec.x, spec.y, spec.radius); },
          reps);
    }
    DoNotOptimize(checksum);
    table.AddRow(
        {spec.name, TablePrinter::FormatDouble(exact.mean_millis(), 2),
         TablePrinter::FormatDouble(reference.mean_millis(), 2),
         TablePrinter::FormatDouble(optimized.mean_millis(), 2),
         TablePrinter::FormatDouble(reference.mean / exact.mean, 0) + "x",
         TablePrinter::FormatDouble(optimized.mean / exact.mean, 1) + "x"});
  }
  table.Print();
  std::printf("\nPer-case timing detail:\n%s",
              report.TimingTable().c_str());
  std::printf(
      "\nWork counters (cells computed is the paper's core argument — "
      "FastDTW's exceed cDTW_W's at small radii):\n%s",
      report.CounterTable().c_str());
  std::printf(
      "\nThe paper's summary: exact cDTW at the domain's natural W wins "
      "everywhere except deep inside contrived Case D — and even there it "
      "is exact where FastDTW is not.\n");
  report.Finish(json_path);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace warp

int main(int argc, char** argv) { return warp::bench::Main(argc, argv); }
