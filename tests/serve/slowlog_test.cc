// Tests for the bounded slow-query log: capacity, eviction order, the
// tie contract (incumbent survives), and drain semantics.

#include "warp/serve/slowlog.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace warp {
namespace serve {
namespace {

SlowQueryRecord Query(int64_t id, double engine_us) {
  SlowQueryRecord record;
  record.id = id;
  record.op = std::string("1nn");
  record.dataset = std::string("d");
  record.measure = std::string("cdtw");
  record.engine_us = engine_us;
  record.total_us = engine_us + 1.0;
  return record;
}

TEST(SlowQueryLogTest, ZeroCapacityDropsEverything) {
  SlowQueryLog log(0);
  log.Record(Query(1, 100.0));
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.Drain().empty());
}

TEST(SlowQueryLogTest, FillsToCapacityThenKeepsTheSlowest) {
  SlowQueryLog log(3);
  EXPECT_EQ(log.capacity(), 3u);
  log.Record(Query(1, 10.0));
  log.Record(Query(2, 30.0));
  log.Record(Query(3, 20.0));
  EXPECT_EQ(log.size(), 3u);

  // 5.0 is faster than the current minimum (10.0): rejected.
  log.Record(Query(4, 5.0));
  // 25.0 beats the minimum: id 1 (10.0) is evicted.
  log.Record(Query(5, 25.0));
  EXPECT_EQ(log.size(), 3u);

  const std::vector<SlowQueryRecord> drained = log.Drain();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].id, 2);  // 30.0
  EXPECT_EQ(drained[1].id, 5);  // 25.0
  EXPECT_EQ(drained[2].id, 3);  // 20.0
  EXPECT_EQ(log.size(), 0u);  // Drain clears.
}

TEST(SlowQueryLogTest, TiesNeverEvictTheIncumbent) {
  SlowQueryLog log(2);
  log.Record(Query(1, 10.0));
  log.Record(Query(2, 10.0));
  // Equal engine time never displaces a resident record.
  log.Record(Query(3, 10.0));
  const std::vector<SlowQueryRecord> drained = log.Drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].id, 1);  // Ties drain in admission order.
  EXPECT_EQ(drained[1].id, 2);
}

TEST(SlowQueryLogTest, EvictionTargetsTheLatestAdmittedOfTiedMinima) {
  SlowQueryLog log(3);
  log.Record(Query(1, 10.0));
  log.Record(Query(2, 10.0));
  log.Record(Query(3, 50.0));
  // Two records tie at the minimum (10.0); the later admission (id 2)
  // is the victim, so the longest-resident tied record survives.
  log.Record(Query(4, 20.0));
  const std::vector<SlowQueryRecord> drained = log.Drain();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].id, 3);  // 50.0
  EXPECT_EQ(drained[1].id, 4);  // 20.0
  EXPECT_EQ(drained[2].id, 1);  // 10.0 — id 2 was evicted
}

TEST(SlowQueryLogTest, DrainSortsByEngineTimeDescending) {
  SlowQueryLog log(8);
  log.Record(Query(1, 3.0));
  log.Record(Query(2, 9.0));
  log.Record(Query(3, 1.0));
  log.Record(Query(4, 7.0));
  const std::vector<SlowQueryRecord> drained = log.Drain();
  ASSERT_EQ(drained.size(), 4u);
  for (size_t i = 1; i < drained.size(); ++i) {
    EXPECT_GE(drained[i - 1].engine_us, drained[i].engine_us);
  }
  EXPECT_EQ(drained[0].id, 2);
  EXPECT_EQ(drained[3].id, 3);
}

TEST(SlowQueryLogTest, RecordCarriesThePayloadThrough) {
  SlowQueryLog log(1);
  SlowQueryRecord record = Query(7, 42.0);
  record.cells = 1234;
  record.scanned = 50;
  record.total = 100;
  record.partial = true;
  log.Record(record);
  const std::vector<SlowQueryRecord> drained = log.Drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].id, 7);
  EXPECT_EQ(drained[0].op, "1nn");
  EXPECT_EQ(drained[0].dataset, "d");
  EXPECT_EQ(drained[0].measure, "cdtw");
  EXPECT_EQ(drained[0].cells, 1234u);
  EXPECT_EQ(drained[0].scanned, 50u);
  EXPECT_EQ(drained[0].total, 100u);
  EXPECT_TRUE(drained[0].partial);
}

}  // namespace
}  // namespace serve
}  // namespace warp
