// Anti-diagonal (wavefront) SIMD sweep for the banded min-plus DP.
//
// The two-row engine's inner loop carries a serial dependency — D(i, j)
// needs D(i, j-1) — so a row-order sweep is bound by the latency of one
// FP add per cell no matter how it is vectorized (we measured a
// "two-phase" row formulation at 0.73-0.87x of scalar; docs/SIMD.md has
// the full story). Cells on one anti-diagonal d = i + j, however, are
// mutually independent: every dependency of (i, d - i) lives on
// diagonals d-1 and d-2. Sweeping diagonal-by-diagonal turns the whole
// diagonal into straight-line vector code and amortizes the carried
// chain across it.
//
// Determinism contract: each cell performs EXACTLY the scalar policy's
// per-cell operations in the same per-cell order —
//   MinPreferFirst(MinPreferFirst(diag, up), left) + cost(i, j)
// — only the order cells are *scheduled* in changes, and no value is
// ever re-associated across cells. Results are therefore bitwise
// identical to the row engine on every input, which is why no golden
// value was re-pinned for this change (tests/core/simd_test.cc pins the
// parity; tests/core/golden_measures_test.cc pins the absolute values).
//
// Memory scheme ("+1 offset", diagonal edition): three rotating buffers
// hold diagonals d, d-1, d-2, indexed by the row i of cell (i, d - i)
// through a base pointer offset by one slot so index -1 is addressable.
// Slot s of diagonal d's buffer holds D(s, d - s); the slots just
// outside the computed range [ilo, ihi] hold the recurrence's boundary
// values (+inf for DTW/ADTW, gap prefixes for ERP) so the next two
// diagonals can read their out-of-range predecessors unconditionally.
// One slot per side suffices because ilo and ihi advance by at most one
// per diagonal.
//
// Ragged tails run as full overhanging vector steps: buffers and input
// copies are padded by kWavePad, the overhang lanes compute garbage,
// and a range argument shows no later read ever touches a garbage slot
// (every read of diagonal d's buffer lands in [ilo(d)-1, ihi(d)+1],
// which the sweep plus its two sentinel writes always covers).

#ifndef WARP_SIMD_DP_SIMD_H_
#define WARP_SIMD_DP_SIMD_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "warp/common/cost.h"
#include "warp/simd/vdouble.h"

namespace warp {
namespace simd {

// Padding (in doubles) past both ends of every wavefront buffer; covers
// the one-slot boundary offset plus a kLanes-1 lane overhang.
inline constexpr size_t kWavePad = 8;

static_assert(kWavePad >= kLanes + 2, "overhang must stay inside padding");

// Work accounting for one sweep, published by the caller into the obs
// registry (simd_blocks / simd_scalar_tail) and the engine counters.
struct WaveStats {
  uint64_t cells = 0;   // Band cells computed (equals the row engine's).
  uint64_t blocks = 0;  // Vector steps executed.
  uint64_t tail = 0;    // Overhang lanes computed and discarded.
};

namespace internal {

inline constexpr double kWaveInf = std::numeric_limits<double>::infinity();

// Shared diagonal-sweep shell. Op supplies the seed cell, the vector
// recurrence, and the two boundary sentinel values; everything else —
// geometry, rotation, overhang, accounting — is policy-independent.
//
// Preconditions: b0/b1/b2 point one slot into +inf-filled arrays of at
// least n + kWavePad doubles; xpad holds x in an array of at least
// n + kWavePad doubles; yrev holds y reversed (yrev[k] = y[m-1-k]) in
// an array of at least m + kWavePad doubles.
template <typename Op>
double WaveSweep(const Op& op, const double* xpad, int64_t n,
                 const double* yrev, int64_t m, int64_t band, double* b0,
                 double* b1, double* b2, WaveStats* stats) {
  double* bufs[3] = {b0, b1, b2};
  op.InitPrev(bufs[2]);  // The virtual diagonal d = -1.
  bufs[0][0] = op.Seed();
  {
    // The seed diagonal's sentinels, same rule as every other diagonal.
    bufs[0][-1] = op.LowSentinel(0, 0);
    bufs[0][1] = op.HighSentinel(0, 0);
  }
  uint64_t cells = 1;
  uint64_t blocks = 0;
  const int64_t lanes = static_cast<int64_t>(kLanes);
  const int64_t last_d = n + m - 2;
  for (int64_t d = 1; d <= last_d; ++d) {
    double* cur = bufs[d % 3];
    const double* p1 = bufs[(d + 2) % 3];  // Diagonal d - 1.
    const double* p2 = bufs[(d + 1) % 3];  // Diagonal d - 2.
    // Row range of diagonal d: i in [ilo, ihi], j = d - i.
    int64_t ilo = 0;
    if (d - m + 1 > ilo) ilo = d - m + 1;
    {
      const int64_t num = d - band;  // ceil((d - band) / 2)
      const int64_t c = num >= 0 ? (num + 1) / 2 : num / 2;
      if (c > ilo) ilo = c;
    }
    int64_t ihi = n - 1;
    if (d < ihi) ihi = d;
    {
      const int64_t f = (d + band) / 2;  // floor; d + band >= 0 always
      if (f < ihi) ihi = f;
    }
    if (ilo <= ihi) {
      // y[d - i] == yrev[(m - 1 - d) + i]; the base can be negative, so
      // materialize the pointer at the first valid index and step it.
      const double* ys = yrev + ((m - 1 - d) + ilo);
      const double* xs = xpad + ilo;
      for (int64_t i = ilo; i <= ihi; i += lanes) {
        const vdouble xv = vdouble::Load(xs);
        const vdouble yv = vdouble::Load(ys);
        const vdouble diag = vdouble::Load(p2 + (i - 1));
        const vdouble up = vdouble::Load(p1 + (i - 1));
        const vdouble left = vdouble::Load(p1 + i);
        op.Cell(xv, yv, diag, up, left).Store(cur + i);
        xs += lanes;
        ys += lanes;
        ++blocks;
      }
      cells += static_cast<uint64_t>(ihi - ilo + 1);
    }
    cur[ilo - 1] = op.LowSentinel(d, ilo);
    cur[ihi + 1] = op.HighSentinel(d, ihi);
  }
  if (stats != nullptr) {
    stats->cells = cells;
    stats->blocks = blocks;
    stats->tail = blocks * kLanes - (cells - 1);
  }
  return bufs[last_d % 3][n - 1];
}

template <typename Cost>
inline vdouble VectorCost(vdouble a, vdouble b) {
  if constexpr (Cost::kKind == CostKind::kSquared) {
    const vdouble d = a - b;
    return d * d;
  } else {
    return Abs(a - b);
  }
}

// DTW's min-plus recurrence, and ADTW's amerced variant when kAmerced:
// the omega penalty lands on the two non-diagonal predecessors before
// the (first-minimal) minimum, exactly as dp::AdtwPolicy::Cell.
template <typename Cost, bool kAmerced>
struct MinPlusOp {
  const double* x;
  const double* yrev;  // yrev[k] = y[m - 1 - k]
  int64_t m;
  vdouble omega_v;
  double omega;

  double Seed() const {
    // D(0,0): diag = D(-1,-1) = 0 always wins against +inf (+ omega).
    const Cost cost;
    return cost(x[0], yrev[m - 1]);
  }
  vdouble Cell(vdouble xv, vdouble yv, vdouble diag, vdouble up,
               vdouble left) const {
    vdouble a = up;
    vdouble b = left;
    if constexpr (kAmerced) {
      a = a + omega_v;
      b = b + omega_v;
    }
    const vdouble m1 = MinPreferFirst(diag, a);
    const vdouble m2 = MinPreferFirst(m1, b);
    return m2 + VectorCost<Cost>(xv, yv);
  }
  void InitPrev(double* /*prev*/) const {}  // All-inf boundaries.
  double LowSentinel(int64_t /*d*/, int64_t /*ilo*/) const { return kWaveInf; }
  double HighSentinel(int64_t /*d*/, int64_t /*ihi*/) const { return kWaveInf; }
};

// ERP: L1 edit recurrence with gap prefix boundaries. top[j] = D(-1, j)
// and left[i] = D(i, -1) are precomputed by the caller with the same
// sequential accumulation order as dp::ErpPolicy's InitTopRow /
// LeftBoundary, and injected through the sentinel slots.
struct ErpOp {
  const double* x;
  const double* yrev;
  int64_t n;
  int64_t m;
  const double* top;
  const double* left;
  vdouble gap_v;
  double gap;

  double Seed() const {
    // Mirrors ErpPolicy::Cell at (0, 0): first-minimal of the three.
    const double x0 = x[0];
    const double y0 = yrev[m - 1];
    double best = std::fabs(x0 - y0);                  // match: diag = 0
    const double gap_x = top[0] + std::fabs(x0 - gap);  // up = D(-1, 0)
    if (gap_x < best) best = gap_x;
    const double gap_y = left[0] + std::fabs(y0 - gap);  // left = D(0, -1)
    if (gap_y < best) best = gap_y;
    return best;
  }
  vdouble Cell(vdouble xv, vdouble yv, vdouble diag, vdouble up,
               vdouble left_v) const {
    const vdouble match = diag + Abs(xv - yv);
    const vdouble gap_x = up + Abs(xv - gap_v);
    const vdouble gap_y = left_v + Abs(yv - gap_v);
    const vdouble m1 = MinPreferFirst(match, gap_x);
    return MinPreferFirst(m1, gap_y);
  }
  void InitPrev(double* prev) const {
    prev[-1] = top[0];   // D(-1, 0)
    prev[0] = left[0];   // D(0, -1)
  }
  // Slot s of diagonal d holds D(s, d - s); one slot outside [ilo, ihi]
  // that is a matrix boundary cell carries its gap prefix.
  double LowSentinel(int64_t d, int64_t ilo) const {
    return (ilo == 0 && d + 1 <= m - 1) ? top[d + 1] : kWaveInf;
  }
  double HighSentinel(int64_t d, int64_t ihi) const {
    return (ihi == d && d + 1 <= n - 1) ? left[d + 1] : kWaveInf;
  }
};

}  // namespace internal

// The min-plus / amerced wavefront. `band` is the Sakoe-Chiba band for
// n == m; pass 2 * (n + m) to sweep the full matrix (the band clamps
// become no-ops). Returns D(n-1, m-1).
template <typename Cost, bool kAmerced>
double WaveMinPlus(const double* xpad, int64_t n, const double* yrev,
                   int64_t m, int64_t band, double omega, double* b0,
                   double* b1, double* b2, WaveStats* stats) {
  internal::MinPlusOp<Cost, kAmerced> op{
      xpad, yrev, m, vdouble::Broadcast(omega), omega};
  return internal::WaveSweep(op, xpad, n, yrev, m, band, b0, b1, b2, stats);
}

// The ERP wavefront over the full matrix. top/left are the gap prefix
// sums D(-1, j) / D(i, -1) (lengths m and n).
inline double WaveErp(const double* xpad, int64_t n, const double* yrev,
                      int64_t m, double gap, const double* top,
                      const double* left, double* b0, double* b1, double* b2,
                      WaveStats* stats) {
  internal::ErpOp op{xpad, yrev, n,   m,
                     top,  left, vdouble::Broadcast(gap), gap};
  return internal::WaveSweep(op, xpad, n, yrev, m, 2 * (n + m), b0, b1, b2,
                             stats);
}

}  // namespace simd
}  // namespace warp

#endif  // WARP_SIMD_DP_SIMD_H_
