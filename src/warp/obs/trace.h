// Scoped, nesting trace spans built on Stopwatch.
//
// A TraceSpan times a lexical scope and records the counter work done
// inside it (bench → dataset → algorithm → repetition). Spans nest via a
// per-thread stack; each completed span is appended to a global buffer
// that DrainSpans() empties — the bench report serializes them under the
// "spans" key of its JSON document.
//
// Spans are deliberately coarse-grained instrumentation for harness-level
// scopes (a case, a dataset sweep), not for per-cell kernel work: each
// span costs two counter snapshots and one mutex acquisition, so keep
// them out of inner loops. Timing always works; counter deltas are all
// zero when WARP_PROFILE=OFF.

#ifndef WARP_OBS_TRACE_H_
#define WARP_OBS_TRACE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "warp/common/stopwatch.h"
#include "warp/common/metrics.h"

namespace warp {
namespace obs {

// A completed span, as drained by DrainSpans().
struct SpanRecord {
  std::string path;  // Slash-joined ancestry including self, e.g. "bench/ecg/cdtw".
  std::string name;  // Leaf name alone.
  size_t depth = 0;  // 0 for a root span.
  double seconds = 0.0;
  MetricsSnapshot counters;  // Work counted while the span was open.
};

class TraceSpan {
 public:
  explicit TraceSpan(std::string name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  MetricsSnapshot start_counters_;
  Stopwatch watch_;
};

// Removes and returns every span completed since the last drain, in
// completion order (children precede their parents).
std::vector<SpanRecord> DrainSpans();

// Depth of the calling thread's currently open span stack.
size_t ActiveSpanDepth();

}  // namespace obs
}  // namespace warp

#endif  // WARP_OBS_TRACE_H_
