// Unit tests for the deterministic parallel execution primitives.

#include "warp/common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace warp {
namespace {

TEST(DefaultThreadCountTest, HonorsWarpThreadsEnv) {
  setenv("WARP_THREADS", "3", 1);
  EXPECT_EQ(DefaultThreadCount(), 3u);
  setenv("WARP_THREADS", "not-a-number", 1);
  EXPECT_GE(DefaultThreadCount(), 1u);  // Falls back to hardware count.
  setenv("WARP_THREADS", "-2", 1);
  EXPECT_GE(DefaultThreadCount(), 1u);
  unsetenv("WARP_THREADS");
  EXPECT_GE(DefaultThreadCount(), 1u);
}

TEST(ResolveThreadCountTest, ZeroMeansAuto) {
  setenv("WARP_THREADS", "5", 1);
  EXPECT_EQ(ResolveThreadCount(0), 5u);
  EXPECT_EQ(ResolveThreadCount(2), 2u);
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  unsetenv("WARP_THREADS");
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  ParallelFor(&pool, 5, 5, 1, [&](size_t, size_t, size_t) { ++calls; });
  ParallelFor(&pool, 7, 3, 1, [&](size_t, size_t, size_t) { ++calls; });
  ParallelFor(nullptr, 0, 0, 4, [&](size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, GrainLargerThanRangeIsOneInlineChunk) {
  ThreadPool pool(4);
  std::vector<std::array<size_t, 3>> chunks;
  std::mutex mutex;
  ParallelFor(&pool, 2, 7, 100, [&](size_t b, size_t e, size_t worker) {
    std::lock_guard<std::mutex> lock(mutex);
    chunks.push_back({b, e, worker});
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0][0], 2u);
  EXPECT_EQ(chunks[0][1], 7u);
  EXPECT_EQ(chunks[0][2], 0u);  // Single chunks run inline as worker 0.
}

TEST(ParallelForTest, ChunksCoverRangeExactlyOnce) {
  for (const size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const size_t begin = 3;
    const size_t end = 103;
    const size_t grain = 7;
    std::vector<std::atomic<int>> visits(end);
    for (auto& v : visits) v.store(0);
    ParallelFor(&pool, begin, end, grain,
                [&](size_t b, size_t e, size_t worker) {
                  EXPECT_LT(worker, pool.size());
                  // Chunk boundaries must be the fixed grain partition.
                  EXPECT_EQ((b - begin) % grain, 0u);
                  EXPECT_LE(e - b, grain);
                  for (size_t i = b; i < e; ++i) visits[i].fetch_add(1);
                });
    for (size_t i = 0; i < end; ++i) {
      EXPECT_EQ(visits[i].load(), i >= begin ? 1 : 0) << "i=" << i;
    }
  }
}

TEST(ParallelForTest, ZeroGrainIsTreatedAsOne) {
  std::vector<int> hits(10, 0);
  ParallelFor(nullptr, 0, 10, 0,
              [&](size_t b, size_t e, size_t) {
                EXPECT_EQ(e, b + 1);
                for (size_t i = b; i < e; ++i) ++hits[i];
              });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ParallelForTest, PropagatesWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 0, 64, 1,
                  [&](size_t b, size_t, size_t) {
                    if (b == 13) throw std::runtime_error("chunk 13 failed");
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, PropagatesExceptionOnSerialPath) {
  EXPECT_THROW(ParallelFor(nullptr, 0, 8, 2,
                           [&](size_t b, size_t, size_t) {
                             if (b == 4) throw std::logic_error("boom");
                           }),
               std::logic_error);
}

TEST(ChunkCountTest, MatchesCeilDivision) {
  EXPECT_EQ(ChunkCount(0, 0, 4), 0u);
  EXPECT_EQ(ChunkCount(0, 1, 4), 1u);
  EXPECT_EQ(ChunkCount(0, 4, 4), 1u);
  EXPECT_EQ(ChunkCount(0, 5, 4), 2u);
  EXPECT_EQ(ChunkCount(10, 30, 0), 20u);  // grain 0 behaves as 1.
}

TEST(PerThreadTest, SlotsAreIsolatedAcrossWorkers) {
  ThreadPool pool(4);
  PerThread<std::vector<size_t>> scratch(&pool);
  ASSERT_EQ(scratch.size(), 4u);
  // Every chunk appends its begin index to its worker's slot; afterwards
  // the slots must partition the chunk set (no cross-worker writes, which
  // under contention would lose or duplicate entries).
  ParallelFor(&pool, 0, 400, 1, [&](size_t b, size_t, size_t worker) {
    scratch[worker].push_back(b);
  });
  std::set<size_t> seen;
  size_t total = 0;
  for (size_t w = 0; w < scratch.size(); ++w) {
    total += scratch[w].size();
    seen.insert(scratch[w].begin(), scratch[w].end());
  }
  EXPECT_EQ(total, 400u);
  EXPECT_EQ(seen.size(), 400u);
}

TEST(PerThreadTest, NullPoolGetsOneSlot) {
  PerThread<int> scratch(nullptr);
  EXPECT_EQ(scratch.size(), 1u);
  scratch[0] = 42;
  EXPECT_EQ(scratch[0], 42);
}

}  // namespace
}  // namespace warp
