// Batcher tests: group-commit coalescing must change scheduling only —
// every answer equals a direct engine run, under any submission pattern.

#include "warp/serve/batcher.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "warp/gen/random_walk.h"
#include "warp/serve/dataset_store.h"
#include "warp/serve/query_engine.h"

namespace warp {
namespace serve {
namespace {

class BatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_.Register("d", gen::RandomWalkDataset(30, 48, 3), {5});
    const Dataset queries = gen::RandomWalkDataset(24, 48, 31);
    for (size_t i = 0; i < queries.size(); ++i) {
      ServeRequest request;
      request.id = static_cast<int64_t>(i);
      request.op = QueryOp::k1Nn;
      request.dataset = "d";
      request.query = queries[i].values();
      requests_.push_back(std::move(request));
    }
  }

  DatasetStore store_;
  std::vector<ServeRequest> requests_;
};

TEST_F(BatcherTest, EmptySubmissionReturnsEmpty) {
  QueryEngine engine(&store_, nullptr, 1);
  Batcher batcher(&engine);
  std::vector<ServeResponse> responses{ServeResponse{}};
  batcher.Execute({}, &responses);
  EXPECT_TRUE(responses.empty());
}

TEST_F(BatcherTest, SingleSubmitterMatchesDirectRun) {
  QueryEngine engine(&store_, nullptr, 2);
  QueryEngine reference(&store_, nullptr, 1);
  Batcher batcher(&engine);
  std::vector<ServeResponse> responses;
  batcher.Execute(requests_, &responses);
  ASSERT_EQ(responses.size(), requests_.size());
  for (size_t i = 0; i < requests_.size(); ++i) {
    const ServeResponse expected = reference.Run(requests_[i]);
    EXPECT_EQ(responses[i].id, requests_[i].id);
    ASSERT_EQ(responses[i].neighbors.size(), 1u);
    EXPECT_EQ(responses[i].neighbors[0].index, expected.neighbors[0].index);
    EXPECT_EQ(responses[i].neighbors[0].distance,
              expected.neighbors[0].distance);
  }
}

// Many threads submitting concurrently: answers are per-submission
// correct regardless of how the dispatcher groups them, and at least one
// multi-submission batch actually forms under contention.
TEST_F(BatcherTest, ConcurrentSubmittersGetTheirOwnAnswers) {
  QueryEngine engine(&store_, nullptr, 2);
  QueryEngine reference(&store_, nullptr, 1);
  Batcher batcher(&engine);

  constexpr size_t kClients = 8;
  constexpr size_t kRounds = 6;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t round = 0; round < kRounds; ++round) {
        const ServeRequest& request =
            requests_[(c * kRounds + round) % requests_.size()];
        std::vector<ServeResponse> responses;
        batcher.Execute({request}, &responses);
        if (responses.size() != 1 || responses[0].id != request.id ||
            responses[0].neighbors.size() != 1) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0u);

  const uint64_t batches = batcher.batches_dispatched();
  EXPECT_GE(batches, 1u);
  EXPECT_LE(batches, kClients * kRounds);

  // Spot-check correctness of one answer against a direct run.
  std::vector<ServeResponse> check;
  batcher.Execute({requests_[0]}, &check);
  const ServeResponse expected = reference.Run(requests_[0]);
  EXPECT_EQ(check[0].neighbors[0].index, expected.neighbors[0].index);
  EXPECT_EQ(check[0].neighbors[0].distance, expected.neighbors[0].distance);
}

// Admission gate: with max_queue_depth=1, a submission arriving while
// one batch is in the engine and one submission is already queued must
// fast-fail every request with ok:false error:"overloaded" — and leave
// the queued work untouched (the shed is a pure reject, not a drop of
// someone else's queries).
TEST_F(BatcherTest, OverloadedQueueFastFailsNewSubmissions) {
  // A blocker the engine cannot shortcut: `dist` computes the full DTW
  // for a pinned pair, so no lower bound or early abandon applies and
  // the batch occupies the single engine thread for a long, predictable
  // stretch while the test probes the admission gate.
  store_.Register("big", gen::RandomWalkDataset(8, 256, 7), {5});
  const Dataset heavy_queries = gen::RandomWalkDataset(1, 256, 13);
  std::vector<ServeRequest> heavy_batch;
  for (size_t i = 0; i < 200; ++i) {
    ServeRequest heavy;
    heavy.id = 1000 + static_cast<int64_t>(i);
    heavy.op = QueryOp::kDist;
    heavy.dataset = "big";
    heavy.index = i % 8;
    heavy.query = heavy_queries[0].values();
    heavy_batch.push_back(std::move(heavy));
  }

  QueryEngine engine(&store_, nullptr, 1);
  Batcher batcher(&engine, /*max_queue_depth=*/1);

  std::vector<ServeResponse> blocker_responses;
  std::thread blocker(
      [&] { batcher.Execute(heavy_batch, &blocker_responses); });
  while (batcher.batches_dispatched() == 0) std::this_thread::yield();

  // One submission queues behind the in-flight blocker batch (depth 1 ==
  // max); it must survive the shed below and answer normally.
  std::vector<ServeResponse> queued_responses;
  std::thread queued(
      [&] { batcher.Execute({requests_[0]}, &queued_responses); });
  while (batcher.queue_depth() == 0) std::this_thread::yield();

  // Queue full: this submission is shed in its entirety, immediately.
  std::vector<ServeResponse> shed_responses;
  batcher.Execute({requests_[1], requests_[2]}, &shed_responses);
  ASSERT_EQ(shed_responses.size(), 2u);
  for (size_t i = 0; i < shed_responses.size(); ++i) {
    EXPECT_EQ(shed_responses[i].id, requests_[i + 1].id);
    EXPECT_FALSE(shed_responses[i].ok);
    EXPECT_EQ(shed_responses[i].error, "overloaded");
  }
  EXPECT_EQ(batcher.shed(), 1u);  // One submission, not one per request.

  blocker.join();
  queued.join();
  ASSERT_EQ(blocker_responses.size(), heavy_batch.size());
  EXPECT_TRUE(blocker_responses[0].ok) << blocker_responses[0].error;
  ASSERT_EQ(queued_responses.size(), 1u);
  EXPECT_TRUE(queued_responses[0].ok) << queued_responses[0].error;
  EXPECT_EQ(batcher.queue_depth(), 0u);

  // The gate sheds submissions, never established work: a fresh
  // submission after drain is admitted again.
  std::vector<ServeResponse> after;
  batcher.Execute({requests_[3]}, &after);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_TRUE(after[0].ok);
  EXPECT_EQ(batcher.shed(), 1u);
}

}  // namespace
}  // namespace serve
}  // namespace warp
