// Unit tests for Dataset operations.

#include "warp/ts/dataset.h"

#include <gtest/gtest.h>

#include "warp/ts/znorm.h"

namespace warp {
namespace {

Dataset MakeToyDataset() {
  Dataset dataset;
  for (int i = 0; i < 6; ++i) {
    dataset.Add(TimeSeries({static_cast<double>(i), 1.0, 2.0}, i % 2));
  }
  return dataset;
}

TEST(DatasetTest, LabelsAndCounts) {
  const Dataset dataset = MakeToyDataset();
  EXPECT_EQ(dataset.Labels(), (std::vector<int>{0, 1}));
  const auto counts = dataset.ClassCounts();
  EXPECT_EQ(counts.at(0), 3u);
  EXPECT_EQ(counts.at(1), 3u);
}

TEST(DatasetTest, UniformLength) {
  Dataset dataset = MakeToyDataset();
  EXPECT_EQ(dataset.UniformLength(), 3u);
  dataset.Add(TimeSeries({1.0}, 0));
  EXPECT_EQ(dataset.UniformLength(), 0u);
}

TEST(DatasetTest, ZNormalizeAll) {
  Dataset dataset = MakeToyDataset();
  dataset.ZNormalizeAll();
  for (const auto& series : dataset.series()) {
    const MeanStd ms = ComputeMeanStd(series.view());
    EXPECT_NEAR(ms.mean, 0.0, 1e-9);
  }
}

TEST(DatasetTest, ShuffleIsAPermutation) {
  Dataset dataset = MakeToyDataset();
  Rng rng(81);
  dataset.Shuffle(rng);
  EXPECT_EQ(dataset.size(), 6u);
  std::vector<double> firsts;
  for (const auto& series : dataset.series()) firsts.push_back(series[0]);
  std::sort(firsts.begin(), firsts.end());
  EXPECT_EQ(firsts, (std::vector<double>{0.0, 1.0, 2.0, 3.0, 4.0, 5.0}));
}

TEST(DatasetTest, ShuffleIsDeterministicPerSeed) {
  Dataset a = MakeToyDataset();
  Dataset b = MakeToyDataset();
  Rng rng_a(82);
  Rng rng_b(82);
  a.Shuffle(rng_a);
  b.Shuffle(rng_b);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].values(), b[i].values());
  }
}

TEST(DatasetTest, StratifiedSplitPreservesClassBalance) {
  Dataset dataset;
  for (int i = 0; i < 10; ++i) dataset.Add(TimeSeries({1.0}, 0));
  for (int i = 0; i < 20; ++i) dataset.Add(TimeSeries({2.0}, 1));
  const auto [train, test] = dataset.StratifiedSplit(0.5);
  EXPECT_EQ(train.ClassCounts().at(0), 5u);
  EXPECT_EQ(train.ClassCounts().at(1), 10u);
  EXPECT_EQ(test.ClassCounts().at(0), 5u);
  EXPECT_EQ(test.ClassCounts().at(1), 10u);
}

TEST(DatasetTest, StratifiedSplitKeepsAtLeastOnePerClass) {
  Dataset dataset;
  dataset.Add(TimeSeries({1.0}, 0));
  dataset.Add(TimeSeries({2.0}, 0));
  dataset.Add(TimeSeries({3.0}, 1));
  dataset.Add(TimeSeries({4.0}, 1));
  const auto [train, test] = dataset.StratifiedSplit(0.1);
  EXPECT_EQ(train.ClassCounts().at(0), 1u);
  EXPECT_EQ(train.ClassCounts().at(1), 1u);
  EXPECT_EQ(train.size() + test.size(), dataset.size());
}

}  // namespace
}  // namespace warp
