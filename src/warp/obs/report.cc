#include "warp/obs/report.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "warp/common/parallel.h"
#include "warp/common/table_printer.h"
#include "warp/obs/json_writer.h"

namespace warp {
namespace obs {

namespace {

void WriteCounterObject(JsonWriter& writer, const MetricsSnapshot& counters) {
  writer.BeginObject();
  for (size_t i = 0; i < kNumCounters; ++i) {
    if (counters.values[i] == 0) continue;  // Sparse: nonzero only.
    writer.Key(CounterName(static_cast<Counter>(i))).Uint(counters.values[i]);
  }
  writer.EndObject();
}

void WriteTimingObject(JsonWriter& writer, const TimingSummary& timing) {
  writer.BeginObject()
      .Key("repetitions")
      .Int(timing.repetitions)
      .Key("mean_s")
      .Double(timing.mean)
      .Key("stddev_s")
      .Double(timing.stddev)
      .Key("min_s")
      .Double(timing.min)
      .Key("max_s")
      .Double(timing.max)
      .Key("median_s")
      .Double(timing.median)
      .Key("p95_s")
      .Double(timing.p95)
      .Key("p99_s")
      .Double(timing.p99)
      .Key("total_s")
      .Double(timing.total)
      .EndObject();
}

}  // namespace

void WriteHistogramObject(JsonWriter& writer, const HistogramData& data) {
  writer.BeginObject()
      .Key("count").Uint(data.count)
      .Key("sum").Uint(data.sum)
      .Key("mean").Double(data.Mean())
      .Key("p50").Uint(data.Percentile(0.50))
      .Key("p95").Uint(data.Percentile(0.95))
      .Key("p99").Uint(data.Percentile(0.99))
      .Key("buckets").BeginArray();
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    if (data.buckets[i] == 0) continue;  // Sparse: occupied buckets only.
    writer.BeginObject()
        .Key("le").Uint(HistogramBucketBound(i))
        .Key("n").Uint(data.buckets[i])
        .EndObject();
  }
  writer.EndArray().EndObject();
}

BenchReport::BenchReport(std::string experiment, std::string description)
    : experiment_(std::move(experiment)),
      description_(std::move(description)) {}

void BenchReport::AddConfig(const std::string& key, const std::string& value) {
  std::string quoted;
  quoted.push_back('"');
  quoted += JsonWriter::Escape(value);
  quoted.push_back('"');
  config_.push_back({key, std::move(quoted)});
}

void BenchReport::AddConfig(const std::string& key, const char* value) {
  AddConfig(key, std::string(value));
}

void BenchReport::AddConfig(const std::string& key, int64_t value) {
  config_.push_back({key, std::to_string(value)});
}

void BenchReport::AddConfig(const std::string& key, uint64_t value) {
  config_.push_back({key, std::to_string(value)});
}

void BenchReport::AddConfig(const std::string& key, int value) {
  AddConfig(key, static_cast<int64_t>(value));
}

void BenchReport::AddConfig(const std::string& key, double value) {
  config_.push_back({key, JsonWriter::FormatDouble(value)});
}

void BenchReport::AddConfig(const std::string& key, bool value) {
  config_.push_back({key, value ? "true" : "false"});
}

TimingSummary BenchReport::MeasureCase(const std::string& name,
                                       const std::function<void()>& fn,
                                       int repetitions, int warmup) {
  const MetricsSnapshot before = SnapshotCounters();
  const HistogramSnapshot histograms_before = SnapshotHistograms();
  const TimingSummary timing = MeasureRepeated(fn, repetitions, warmup);
  AddCase(name, timing, CountersSince(before),
          HistogramsSince(histograms_before));
  return timing;
}

void BenchReport::AddCase(const std::string& name, const TimingSummary& timing,
                          const MetricsSnapshot& counters) {
  AddCase(name, timing, counters, HistogramSnapshot{});
}

void BenchReport::AddCase(const std::string& name, const TimingSummary& timing,
                          const MetricsSnapshot& counters,
                          const HistogramSnapshot& histograms) {
  cases_.push_back({name, timing, counters, histograms});
}

std::string BenchReport::CounterTable() const {
  if (cases_.empty()) return "";

  std::vector<std::string> headers = {"counter"};
  for (const BenchCase& c : cases_) headers.push_back(c.name);
  TablePrinter table(std::move(headers));

  bool any_row = false;
  for (size_t i = 0; i < kNumCounters; ++i) {
    bool nonzero = false;
    for (const BenchCase& c : cases_) {
      if (c.counters.values[i] != 0) {
        nonzero = true;
        break;
      }
    }
    if (!nonzero) continue;
    any_row = true;
    std::vector<std::string> row = {CounterName(static_cast<Counter>(i))};
    for (const BenchCase& c : cases_) {
      row.push_back(std::to_string(c.counters.values[i]));
    }
    table.AddRow(std::move(row));
  }
  if (!any_row) {
    return kProfilingEnabled
               ? "(all work counters zero)\n"
               : "(work counters disabled: build with -DWARP_PROFILE=ON)\n";
  }
  return table.ToString();
}

std::string BenchReport::TimingTable() const {
  TablePrinter table({"case", "mean ms", "std ms", "min ms", "med ms",
                      "p95 ms", "p99 ms", "max ms", "n"});
  for (const BenchCase& c : cases_) {
    table.AddRow({c.name, TablePrinter::FormatDouble(c.timing.mean * 1e3),
                  TablePrinter::FormatDouble(c.timing.stddev * 1e3),
                  TablePrinter::FormatDouble(c.timing.min * 1e3),
                  TablePrinter::FormatDouble(c.timing.median * 1e3),
                  TablePrinter::FormatDouble(c.timing.p95 * 1e3),
                  TablePrinter::FormatDouble(c.timing.p99 * 1e3),
                  TablePrinter::FormatDouble(c.timing.max * 1e3),
                  std::to_string(c.timing.repetitions)});
  }
  return table.ToString();
}

std::string BenchReport::HistogramTable() const {
  TablePrinter table({"case", "histogram", "count", "mean", "p50", "p95",
                      "p99"});
  bool any_row = false;
  for (const BenchCase& c : cases_) {
    for (size_t h = 0; h < kNumHistograms; ++h) {
      const HistogramData& data = c.histograms.series[h];
      if (data.Empty()) continue;
      any_row = true;
      table.AddRow({c.name, HistogramName(static_cast<Histogram>(h)),
                    std::to_string(data.count),
                    TablePrinter::FormatDouble(data.Mean()),
                    std::to_string(data.Percentile(0.50)),
                    std::to_string(data.Percentile(0.95)),
                    std::to_string(data.Percentile(0.99))});
    }
  }
  return any_row ? table.ToString() : "";
}

std::string BenchReport::ToJson(const std::vector<SpanRecord>& spans) const {
  JsonWriter writer;
  writer.BeginObject()
      .Key("schema")
      .String("warp-bench-v1")
      .Key("experiment")
      .String(experiment_)
      .Key("description")
      .String(description_);

  writer.Key("config").BeginObject();
  for (const ConfigEntry& entry : config_) {
    writer.Key(entry.key).RawValue(entry.json_value);
  }
  writer.EndObject();

  writer.Key("host")
      .BeginObject()
      .Key("threads_default")
      .Uint(static_cast<uint64_t>(DefaultThreadCount()))
      .Key("hardware_concurrency")
      .Uint(static_cast<uint64_t>(std::thread::hardware_concurrency()))
      .Key("profiling")
      .Bool(kProfilingEnabled)
#ifdef NDEBUG
      .Key("build")
      .String("release")
#else
      .Key("build")
      .String("debug")
#endif
      .Key("compiler")
      .String(__VERSION__)
      .EndObject();

  writer.Key("cases").BeginArray();
  for (const BenchCase& c : cases_) {
    writer.BeginObject().Key("name").String(c.name).Key("timing");
    WriteTimingObject(writer, c.timing);
    writer.Key("counters");
    WriteCounterObject(writer, c.counters);
    // Sparse like counters: nonempty histograms only, so non-serving
    // benches keep emitting an empty object here.
    writer.Key("histograms").BeginObject();
    for (size_t h = 0; h < kNumHistograms; ++h) {
      const HistogramData& data = c.histograms.series[h];
      if (data.Empty()) continue;
      writer.Key(HistogramName(static_cast<Histogram>(h)));
      WriteHistogramObject(writer, data);
    }
    writer.EndObject();
    writer.EndObject();
  }
  writer.EndArray();

  writer.Key("spans").BeginArray();
  for (const SpanRecord& span : spans) {
    writer.BeginObject()
        .Key("path")
        .String(span.path)
        .Key("name")
        .String(span.name)
        .Key("depth")
        .Uint(static_cast<uint64_t>(span.depth))
        .Key("seconds")
        .Double(span.seconds)
        .Key("counters");
    WriteCounterObject(writer, span.counters);
    writer.EndObject();
  }
  writer.EndArray();

  writer.EndObject();
  return writer.TakeOutput();
}

void BenchReport::Finish(const std::string& json_path) const {
  const std::vector<SpanRecord> spans = DrainSpans();
  if (json_path.empty()) return;

  const std::string document = ToJson(spans);
  std::FILE* file = std::fopen(json_path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "error: cannot open --json output file %s\n",
                 json_path.c_str());
    std::exit(1);
  }
  const size_t written =
      std::fwrite(document.data(), 1, document.size(), file);
  const bool ok = written == document.size() &&
                  std::fputc('\n', file) != EOF && std::fclose(file) == 0;
  if (!ok) {
    std::fprintf(stderr, "error: short write to %s\n", json_path.c_str());
    std::exit(1);
  }
  std::printf("wrote JSON report: %s\n", json_path.c_str());
}

}  // namespace obs
}  // namespace warp
