// Parameterized property sweeps for the accelerated subsequence search
// and the streaming monitor: pruning must never change results, across a
// grid of bands, query lengths, data families and seeds.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "warp/gen/random_walk.h"
#include "warp/gen/warping.h"
#include "warp/mining/similarity_search.h"
#include "warp/mining/stream_monitor.h"

namespace warp {
namespace {

enum class DataFamily { kRandomWalk, kSine, kNoisySteps };

std::vector<double> MakeSeries(DataFamily family, size_t n, Rng& rng) {
  switch (family) {
    case DataFamily::kSine: {
      std::vector<double> series(n);
      for (size_t t = 0; t < n; ++t) {
        series[t] =
            std::sin(2.0 * M_PI * static_cast<double>(t) / 37.0) +
            rng.Gaussian(0.0, 0.05);
      }
      return series;
    }
    case DataFamily::kNoisySteps: {
      std::vector<double> series(n);
      double level = 0.0;
      for (size_t t = 0; t < n; ++t) {
        if (rng.Bernoulli(0.02)) level += rng.Gaussian(0.0, 2.0);
        series[t] = level + rng.Gaussian(0.0, 0.1);
      }
      return series;
    }
    case DataFamily::kRandomWalk:
    default:
      return gen::RandomWalk(n, rng);
  }
}

// (band, query length, family, seed)
using SearchParam = std::tuple<size_t, size_t, DataFamily, uint64_t>;

class SearchPropertyTest : public ::testing::TestWithParam<SearchParam> {};

TEST_P(SearchPropertyTest, CascadedSearchMatchesNaive) {
  const auto [band, query_len, family, seed] = GetParam();
  Rng rng(seed);
  const std::vector<double> haystack = MakeSeries(family, 600, rng);
  const std::vector<double> query = MakeSeries(family, query_len, rng);

  const SubsequenceMatch fast = FindBestMatch(haystack, query, band);
  const SubsequenceMatch naive = FindBestMatchNaive(haystack, query, band);
  EXPECT_NEAR(fast.distance, naive.distance, 1e-6)
      << "band=" << band << " m=" << query_len;
}

TEST_P(SearchPropertyTest, StatsAreConsistent) {
  const auto [band, query_len, family, seed] = GetParam();
  Rng rng(seed + 1);
  const std::vector<double> haystack = MakeSeries(family, 500, rng);
  const std::vector<double> query = MakeSeries(family, query_len, rng);
  SearchStats stats;
  FindBestMatch(haystack, query, band, CostKind::kSquared, &stats);
  EXPECT_EQ(stats.windows, haystack.size() - query_len + 1);
  EXPECT_EQ(stats.windows, stats.pruned_by_kim + stats.pruned_by_keogh +
                               stats.abandoned_dtw + stats.full_dtw);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SearchPropertyTest,
    ::testing::Combine(::testing::Values<size_t>(0, 2, 6),
                       ::testing::Values<size_t>(16, 50, 120),
                       ::testing::Values(DataFamily::kRandomWalk,
                                         DataFamily::kSine,
                                         DataFamily::kNoisySteps),
                       ::testing::Values<uint64_t>(404)));

// ---------------------------------------------------------------------------
// Streaming monitor vs offline search: every event the monitor fires must
// correspond to a window the offline scan also scores under threshold,
// and vice versa.

using MonitorParam = std::tuple<size_t, double, uint64_t>;

class MonitorPropertyTest : public ::testing::TestWithParam<MonitorParam> {};

TEST_P(MonitorPropertyTest, OnlineEventsMatchOfflineScores) {
  const auto [band, threshold, seed] = GetParam();
  Rng rng(seed);
  const size_t m = 48;
  const std::vector<double> query = gen::RandomWalk(m, rng);
  std::vector<double> stream = gen::RandomWalk(2000, rng);
  // Plant a couple of warped occurrences so events exist.
  for (size_t at : {500u, 1500u}) {
    const std::vector<double> warped = gen::ApplyRandomWarp(query, 0.03, rng);
    for (size_t i = 0; i < m; ++i) stream[at + i] = warped[i];
  }

  StreamMonitor monitor(query, band, threshold);
  std::vector<uint64_t> online_hits;
  for (double v : stream) {
    const auto event = monitor.Push(v);
    if (event.has_value()) online_hits.push_back(event->end_time);
  }

  // Offline: score every window directly.
  const std::vector<double> q = ZNormalized(query);
  std::vector<uint64_t> offline_hits;
  for (size_t pos = 0; pos + m <= stream.size(); ++pos) {
    std::vector<double> window(stream.begin() + pos,
                               stream.begin() + pos + m);
    ZNormalizeInPlace(window);
    if (CdtwDistance(q, window, band) <= threshold) {
      offline_hits.push_back(pos + m - 1);
    }
  }
  EXPECT_EQ(online_hits, offline_hits)
      << "band=" << band << " threshold=" << threshold;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MonitorPropertyTest,
    ::testing::Combine(::testing::Values<size_t>(1, 4, 10),
                       ::testing::Values(0.5, 2.0, 10.0),
                       ::testing::Values<uint64_t>(505, 606)));

}  // namespace
}  // namespace warp
