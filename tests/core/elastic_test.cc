// Unit and property tests for LCSS, ERP, and MSM.

#include "warp/core/elastic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "warp/core/dtw.h"
#include "warp/gen/random_walk.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace {

// --------------------------------------------------------------------------
// LCSS.

TEST(LcssTest, IdenticalSeriesMatchFully) {
  Rng rng(291);
  const std::vector<double> x = gen::RandomWalk(40, rng);
  EXPECT_EQ(LcssLength(x, x, 0.0, 0), 40u);
  EXPECT_DOUBLE_EQ(LcssDistance(x, x, 0.0, 0), 0.0);
}

TEST(LcssTest, DisjointValueRangesShareNothing) {
  std::vector<double> x(20, 0.0);
  std::vector<double> y(20, 100.0);
  EXPECT_EQ(LcssLength(x, y, 1.0, 20), 0u);
  EXPECT_DOUBLE_EQ(LcssDistance(x, y, 1.0, 20), 1.0);
}

TEST(LcssTest, KnownSubsequence) {
  // x = 1 2 3 4 5, y = 9 2 9 4 9: common subsequence {2, 4}.
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {9, 2, 9, 4, 9};
  EXPECT_EQ(LcssLength(x, y, 0.1, 5), 2u);
}

TEST(LcssTest, EpsilonLoosensMatching) {
  Rng rng(292);
  const std::vector<double> x = ZNormalized(gen::RandomWalk(60, rng));
  const std::vector<double> y = ZNormalized(gen::RandomWalk(60, rng));
  size_t previous = 0;
  for (double epsilon : {0.0, 0.1, 0.5, 1.0, 5.0}) {
    const size_t length = LcssLength(x, y, epsilon, 60);
    EXPECT_GE(length, previous);
    previous = length;
  }
  EXPECT_EQ(previous, 60u);  // Huge epsilon matches everything.
}

TEST(LcssTest, BandRestrictsMatches) {
  Rng rng(293);
  const std::vector<double> x = gen::RandomWalk(50, rng);
  std::vector<double> shifted(x.begin() + 10, x.end());
  shifted.insert(shifted.end(), 10, x.back());
  // Matching the 10-step shift needs a band >= 10.
  const size_t narrow = LcssLength(x, shifted, 1e-9, 2);
  const size_t wide = LcssLength(x, shifted, 1e-9, 15);
  EXPECT_GT(wide, narrow);
  EXPECT_GE(wide, 40u);
}

TEST(LcssTest, SymmetricInArguments) {
  Rng rng(294);
  const std::vector<double> x = gen::RandomWalk(30, rng);
  const std::vector<double> y = gen::RandomWalk(45, rng);
  EXPECT_EQ(LcssLength(x, y, 0.3, 10), LcssLength(y, x, 0.3, 10));
}

// --------------------------------------------------------------------------
// ERP.

TEST(ErpTest, SelfDistanceZeroAndSymmetry) {
  Rng rng(295);
  const std::vector<double> x = gen::RandomWalk(40, rng);
  const std::vector<double> y = gen::RandomWalk(33, rng);
  EXPECT_DOUBLE_EQ(ErpDistance(x, x), 0.0);
  EXPECT_NEAR(ErpDistance(x, y), ErpDistance(y, x), 1e-9);
}

TEST(ErpTest, BoundedAboveByL1OnEqualLengths) {
  Rng rng(296);
  const std::vector<double> x = gen::RandomWalk(50, rng);
  const std::vector<double> y = gen::RandomWalk(50, rng);
  double l1 = 0.0;
  for (size_t i = 0; i < 50; ++i) l1 += std::fabs(x[i] - y[i]);
  EXPECT_LE(ErpDistance(x, y), l1 + 1e-9);
}

TEST(ErpTest, GapChargesAgainstReference) {
  // x = {5}, y = {5, 2}: either match 5-5 and gap 2 (|2 - g|) or other
  // combos; with g = 0 the answer is 2.
  const std::vector<double> x = {5.0};
  const std::vector<double> y = {5.0, 2.0};
  EXPECT_DOUBLE_EQ(ErpDistance(x, y, 0.0), 2.0);
  // With g = 2 the gap is free.
  EXPECT_DOUBLE_EQ(ErpDistance(x, y, 2.0), 0.0 + std::fabs(5 - 5));
}

TEST(ErpTest, TriangleInequalityHolds) {
  // ERP is a metric; spot-check on random triples.
  Rng rng(297);
  for (int round = 0; round < 40; ++round) {
    const std::vector<double> a = gen::RandomWalk(10 + rng.UniformInt(20), rng);
    const std::vector<double> b = gen::RandomWalk(10 + rng.UniformInt(20), rng);
    const std::vector<double> c = gen::RandomWalk(10 + rng.UniformInt(20), rng);
    const double ab = ErpDistance(a, b);
    const double bc = ErpDistance(b, c);
    const double ac = ErpDistance(a, c);
    EXPECT_LE(ac, ab + bc + 1e-9) << "round=" << round;
  }
}

TEST(ErpTest, TotalGapEqualsReferenceMass) {
  // Against a single zero point with g = 0, everything in x is gapped:
  // distance = sum |x_i| (plus matching one element against 0).
  const std::vector<double> x = {1.0, -2.0, 3.0};
  const std::vector<double> zero = {0.0};
  EXPECT_DOUBLE_EQ(ErpDistance(x, zero, 0.0), 6.0);
}

// --------------------------------------------------------------------------
// MSM.

TEST(MsmTest, SelfDistanceZeroAndSymmetry) {
  Rng rng(298);
  const std::vector<double> x = gen::RandomWalk(30, rng);
  const std::vector<double> y = gen::RandomWalk(40, rng);
  EXPECT_DOUBLE_EQ(MsmDistance(x, x), 0.0);
  EXPECT_NEAR(MsmDistance(x, y, 0.5), MsmDistance(y, x, 0.5), 1e-9);
}

TEST(MsmTest, HugeCostForcesPointwiseL1OnEqualLengths) {
  Rng rng(299);
  const std::vector<double> x = gen::RandomWalk(25, rng);
  const std::vector<double> y = gen::RandomWalk(25, rng);
  double l1 = 0.0;
  for (size_t i = 0; i < 25; ++i) l1 += std::fabs(x[i] - y[i]);
  EXPECT_NEAR(MsmDistance(x, y, 1e9), l1, 1e-6);
}

TEST(MsmTest, SplitCostChargedForLengthMismatch) {
  // x = {3}, y = {3, 3}: one merge at cost c (values equal, between).
  const std::vector<double> x = {3.0};
  const std::vector<double> y = {3.0, 3.0};
  EXPECT_DOUBLE_EQ(MsmDistance(x, y, 0.25), 0.25);
}

TEST(MsmTest, MonotoneInCost) {
  Rng rng(300);
  const std::vector<double> x = gen::RandomWalk(30, rng);
  const std::vector<double> y = gen::RandomWalk(45, rng);
  double previous = MsmDistance(x, y, 0.0);
  for (double c : {0.01, 0.1, 1.0, 10.0}) {
    const double d = MsmDistance(x, y, c);
    EXPECT_GE(d, previous - 1e-12);
    previous = d;
  }
}

TEST(MsmTest, TriangleInequalityHolds) {
  Rng rng(301);
  for (int round = 0; round < 40; ++round) {
    const std::vector<double> a = gen::RandomWalk(8 + rng.UniformInt(16), rng);
    const std::vector<double> b = gen::RandomWalk(8 + rng.UniformInt(16), rng);
    const std::vector<double> c = gen::RandomWalk(8 + rng.UniformInt(16), rng);
    EXPECT_LE(MsmDistance(a, c), MsmDistance(a, b) + MsmDistance(b, c) + 1e-9)
        << "round=" << round;
  }
}

// --------------------------------------------------------------------------
// Cross-measure sanity: on a warped pair, every elastic measure should
// beat its rigid counterpart.

TEST(ElasticTest, AllMeasuresAbsorbAWarp) {
  Rng rng(302);
  const std::vector<double> x = ZNormalized(gen::RandomWalk(100, rng));
  std::vector<double> y = x;
  y.erase(y.begin(), y.begin() + 3);  // Small shift via deletion.
  y.insert(y.end(), 3, x.back());
  double l1 = 0.0;
  for (size_t i = 0; i < 100; ++i) l1 += std::fabs(x[i] - y[i]);
  EXPECT_LT(ErpDistance(x, y), l1);
  EXPECT_LT(MsmDistance(x, y, 0.1), l1);
  EXPECT_LT(LcssDistance(x, y, 0.1, 10), 0.3);
}

}  // namespace
}  // namespace warp
