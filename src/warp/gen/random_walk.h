// Random-walk series.
//
// The paper's Fig. 4 experiment uses random walks directly ("since the
// timing for both algorithms does not depend on the data itself"); they
// are also the workhorse of the property-based tests.

#ifndef WARP_GEN_RANDOM_WALK_H_
#define WARP_GEN_RANDOM_WALK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "warp/common/random.h"
#include "warp/ts/dataset.h"

namespace warp {
namespace gen {

// A Gaussian random walk of length n: x[0] ~ N(0, step), x[t] = x[t-1] + N(0, step).
std::vector<double> RandomWalk(size_t n, Rng& rng, double step_stddev = 1.0);

// `count` independent z-normalized random walks of length n.
Dataset RandomWalkDataset(size_t count, size_t n, uint64_t seed,
                          double step_stddev = 1.0);

}  // namespace gen
}  // namespace warp

#endif  // WARP_GEN_RANDOM_WALK_H_
