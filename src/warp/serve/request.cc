#include "warp/serve/request.h"

namespace warp {
namespace serve {

const char* QueryOpName(QueryOp op) {
  switch (op) {
    case QueryOp::k1Nn: return "1nn";
    case QueryOp::kKnn: return "knn";
    case QueryOp::kRange: return "range";
    case QueryOp::kDist: return "dist";
    case QueryOp::kSubsequence: return "subsequence";
  }
  return "unknown";
}

obs::Histogram LatencyHistogramForOp(QueryOp op) {
  switch (op) {
    case QueryOp::k1Nn: return obs::Histogram::kServeLatency1nn;
    case QueryOp::kKnn: return obs::Histogram::kServeLatencyKnn;
    case QueryOp::kRange: return obs::Histogram::kServeLatencyRange;
    case QueryOp::kDist: return obs::Histogram::kServeLatencyDist;
    case QueryOp::kSubsequence:
      return obs::Histogram::kServeLatencySubsequence;
  }
  return obs::Histogram::kServeLatency1nn;
}

bool ParseQueryOp(const std::string& name, QueryOp* op) {
  if (name == "1nn") *op = QueryOp::k1Nn;
  else if (name == "knn") *op = QueryOp::kKnn;
  else if (name == "range") *op = QueryOp::kRange;
  else if (name == "dist") *op = QueryOp::kDist;
  else if (name == "subsequence") *op = QueryOp::kSubsequence;
  else return false;
  return true;
}

}  // namespace serve
}  // namespace warp
