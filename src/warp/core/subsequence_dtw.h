// Open-boundary (subsequence) DTW — Müller's "subsequence DTW".
//
// Aligns a short query against the *best-matching contiguous region* of a
// longer series: the warping path may start at any column of the first
// row and end at any column of the last row, so the query does not have
// to explain the whole series. This is the alignment primitive behind
// score-following and query-by-example; it differs from
// mining/similarity_search (which z-normalizes fixed-length windows) in
// that the match region's length is chosen by the warping itself.

#ifndef WARP_CORE_SUBSEQUENCE_DTW_H_
#define WARP_CORE_SUBSEQUENCE_DTW_H_

#include <cstdint>
#include <span>
#include <vector>

#include "warp/common/cost.h"
#include "warp/core/warping_path.h"

namespace warp {

struct DtwWorkspace;

struct SubsequenceAlignment {
  double distance = 0.0;  // Accumulated cost of the best alignment.
  size_t start = 0;       // First matched index of the long series.
  size_t end = 0;         // Last matched index (inclusive).
  // Full alignment path; points use (query index, long-series index).
  // Starts at (0, start) and ends at (query.size()-1, end), so it is not
  // a boundary-complete WarpingPath for the full matrix.
  std::vector<PathPoint> path;
};

// O(n*m) time and memory (the matrix is kept for traceback); `n` is the
// query length, `m` the long series length, m >= n is typical but not
// required.
SubsequenceAlignment SubsequenceDtw(std::span<const double> query,
                                    std::span<const double> series,
                                    CostKind cost = CostKind::kSquared);

// Distance-only variant with O(m) memory. The optional workspace reuses
// the two scratch rows across calls (see warp/core/dp_engine.h).
double SubsequenceDtwDistance(std::span<const double> query,
                              std::span<const double> series,
                              CostKind cost = CostKind::kSquared,
                              DtwWorkspace* workspace = nullptr);

}  // namespace warp

#endif  // WARP_CORE_SUBSEQUENCE_DTW_H_
