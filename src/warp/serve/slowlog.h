// Bounded slow-query log: the top-K computed queries by engine time.
//
// The stats op's histograms say *that* p99 is bad; the slowlog says
// *which* queries made it bad. The engine records every computed
// (non-cache-hit) query; the log keeps only the `capacity` slowest by
// engine time, so memory is bounded no matter how long the server runs.
// The `slowlog` control op drains it (returns entries sorted by engine
// time descending, then clears), and the `stats` op reports a summary
// (capacity + pending count) without draining.
//
// Eviction contract (pinned by tests/serve/slowlog_test.cc): when full,
// a new record replaces the current minimum only if its engine time is
// strictly greater — on ties the incumbent survives, so admission order
// never changes the surviving set's engine times.

#ifndef WARP_SERVE_SLOWLOG_H_
#define WARP_SERVE_SLOWLOG_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace warp {
namespace serve {

struct SlowQueryRecord {
  uint64_t seq = 0;  // admission stamp (monotonic per log), set by Record
  int64_t id = 0;    // client-supplied request id
  std::string op;
  std::string dataset;
  std::string measure;
  double engine_us = 0.0;  // scan + kernel time (the ranking key)
  double total_us = 0.0;   // cache lookup + engine + merge
  uint64_t cells = 0;      // DP cells this query computed (0 when
                           // WARP_PROFILE=OFF)
  uint64_t scanned = 0;
  uint64_t total = 0;
  bool partial = false;
};

class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity) : capacity_(capacity) {}

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  // Admits `record` if the log is not full or `record.engine_us` strictly
  // exceeds the current minimum (which is evicted). Thread-safe.
  void Record(SlowQueryRecord record);

  // Returns the entries sorted by engine_us descending (ties: earlier
  // admission first) and clears the log.
  std::vector<SlowQueryRecord> Drain();

  size_t capacity() const { return capacity_; }
  size_t size() const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  uint64_t next_seq_ = 0;
  std::vector<SlowQueryRecord> entries_;  // unordered until Drain
};

}  // namespace serve
}  // namespace warp

#endif  // WARP_SERVE_SLOWLOG_H_
