// Unit tests for FastDTW: base cases, approximation guarantees, radius
// monotonicity trends, and the adversarial failure mode from Appendix A.

#include "warp/core/fastdtw.h"

#include <vector>

#include <gtest/gtest.h>

#include "warp/core/approx_error.h"
#include "warp/gen/adversarial.h"
#include "warp/gen/random_walk.h"

namespace warp {
namespace {

TEST(FastDtwTest, IdenticalSeriesIsZero) {
  Rng rng(1);
  const std::vector<double> x = gen::RandomWalk(200, rng);
  const DtwResult result = FastDtw(x, x, 1);
  EXPECT_NEAR(result.distance, 0.0, 1e-12);
  EXPECT_TRUE(result.path.IsValid(x.size(), x.size()));
}

TEST(FastDtwTest, ShortSeriesFallBackToExactDtw) {
  // Below radius + 2 the recursion bottoms out at exact DTW.
  Rng rng(2);
  const std::vector<double> x = gen::RandomWalk(10, rng);
  const std::vector<double> y = gen::RandomWalk(10, rng);
  EXPECT_DOUBLE_EQ(FastDtwDistance(x, y, /*radius=*/10), DtwDistance(x, y));
}

TEST(FastDtwTest, HugeRadiusReproducesExactDtw) {
  Rng rng(3);
  const std::vector<double> x = gen::RandomWalk(300, rng);
  const std::vector<double> y = gen::RandomWalk(300, rng);
  // radius >= length: every level's window is the full matrix.
  EXPECT_NEAR(FastDtwDistance(x, y, 300), DtwDistance(x, y), 1e-9);
}

TEST(FastDtwTest, NeverUndershootsExactDtw) {
  // FastDTW restricts the search space, so its path cost is always >= the
  // true optimum — the core approximation property.
  Rng rng(4);
  for (int round = 0; round < 15; ++round) {
    const size_t n = 20 + rng.UniformInt(200);
    const size_t m = 20 + rng.UniformInt(200);
    const std::vector<double> x = gen::RandomWalk(n, rng);
    const std::vector<double> y = gen::RandomWalk(m, rng);
    const double exact = DtwDistance(x, y);
    for (size_t radius : {0u, 1u, 2u, 5u, 10u}) {
      EXPECT_GE(FastDtwDistance(x, y, radius), exact - 1e-9)
          << "n=" << n << " m=" << m << " radius=" << radius;
    }
  }
}

TEST(FastDtwTest, ReturnedPathIsValidAndCostsItsDistance) {
  Rng rng(5);
  for (size_t radius : {0u, 1u, 3u, 7u}) {
    const std::vector<double> x = gen::RandomWalk(157, rng);  // Odd length.
    const std::vector<double> y = gen::RandomWalk(212, rng);
    const DtwResult result = FastDtw(x, y, radius);
    EXPECT_TRUE(result.path.IsValid(x.size(), y.size()))
        << "radius=" << radius;
    EXPECT_NEAR(result.path.CostAlong(x, y), result.distance, 1e-9);
  }
}

TEST(FastDtwTest, OddLengthsAndRadiusZero) {
  // The corner the reference implementation mishandles: odd lengths leave
  // the last row/column uncovered by the projected window at radius 0.
  // Our canonicalization must still produce a complete path.
  Rng rng(6);
  const std::vector<double> x = gen::RandomWalk(101, rng);
  const std::vector<double> y = gen::RandomWalk(99, rng);
  const DtwResult result = FastDtw(x, y, 0);
  EXPECT_TRUE(result.path.IsValid(101, 99));
  EXPECT_GE(result.distance, DtwDistance(x, y) - 1e-9);
}

TEST(FastDtwTest, LargerRadiusVisitsMoreCells) {
  Rng rng(7);
  const std::vector<double> x = gen::RandomWalk(500, rng);
  const std::vector<double> y = gen::RandomWalk(500, rng);
  const uint64_t cells_r1 = FastDtw(x, y, 1).cells_visited;
  const uint64_t cells_r10 = FastDtw(x, y, 10).cells_visited;
  const uint64_t cells_r40 = FastDtw(x, y, 40).cells_visited;
  EXPECT_LT(cells_r1, cells_r10);
  EXPECT_LT(cells_r10, cells_r40);
}

TEST(FastDtwTest, ApproximationImprovesWithRadiusOnAverage) {
  // Not guaranteed pairwise, but the mean error over a batch must shrink
  // from a tiny radius to a large one.
  Rng rng(8);
  double total_error_r0 = 0.0;
  double total_error_r20 = 0.0;
  const int kRounds = 10;
  for (int round = 0; round < kRounds; ++round) {
    const std::vector<double> x = gen::RandomWalk(256, rng);
    const std::vector<double> y = gen::RandomWalk(256, rng);
    const double exact = DtwDistance(x, y);
    total_error_r0 += ApproxErrorPercent(FastDtwDistance(x, y, 0), exact);
    total_error_r20 += ApproxErrorPercent(FastDtwDistance(x, y, 20), exact);
  }
  EXPECT_LE(total_error_r20, total_error_r0);
}

TEST(FastDtwTest, AdversarialPairProducesHugeError) {
  // The Appendix-A construction: full DTW finds a near-perfect alignment,
  // FastDTW (radius 20, as in the paper's Table 2) pays the burst energy.
  const gen::AdversarialTriple triple = gen::MakeAdversarialTriple();
  const double exact = DtwDistance(triple.a, triple.b);
  const double approx = FastDtwDistance(triple.a, triple.b, 20);
  ASSERT_GT(exact, 0.0);
  const double error_percent = ApproxErrorPercent(approx, exact);
  // The paper reports 156,100%; we only require "catastrophic".
  EXPECT_GT(error_percent, 1000.0)
      << "exact=" << exact << " approx=" << approx;
}

TEST(FastDtwTest, AdversarialCPairsAreNotAffected) {
  // d(A,C) and d(B,C) should be essentially identical under both
  // measures, as in the paper's Table 2.
  const gen::AdversarialTriple triple = gen::MakeAdversarialTriple();
  const double exact_ac = DtwDistance(triple.a, triple.c);
  const double approx_ac = FastDtwDistance(triple.a, triple.c, 20);
  EXPECT_LT(ApproxErrorPercent(approx_ac, exact_ac), 25.0);
}

TEST(MultiFastDtwTest, SingleChannelMatchesScalarFastDtw) {
  Rng rng(9);
  const std::vector<double> x = gen::RandomWalk(200, rng);
  const std::vector<double> y = gen::RandomWalk(180, rng);
  const MultiSeries mx(std::vector<std::vector<double>>{x});
  const MultiSeries my(std::vector<std::vector<double>>{y});
  EXPECT_NEAR(MultiFastDtw(mx, my, 5).distance, FastDtwDistance(x, y, 5),
              1e-9);
}

TEST(MultiFastDtwTest, NeverUndershootsExactMultiDtw) {
  Rng rng(10);
  const MultiSeries mx(std::vector<std::vector<double>>{
      gen::RandomWalk(120, rng), gen::RandomWalk(120, rng),
      gen::RandomWalk(120, rng)});
  const MultiSeries my(std::vector<std::vector<double>>{
      gen::RandomWalk(120, rng), gen::RandomWalk(120, rng),
      gen::RandomWalk(120, rng)});
  const double exact = MultiDtwDistance(mx, my);
  for (size_t radius : {0u, 2u, 8u}) {
    EXPECT_GE(MultiFastDtw(mx, my, radius).distance, exact - 1e-9);
  }
}

}  // namespace
}  // namespace warp
