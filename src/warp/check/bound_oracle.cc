#include "warp/check/bound_oracle.h"

#include <cmath>
#include <cstdio>

#include "warp/common/assert.h"
#include "warp/core/dtw.h"
#include "warp/core/envelope.h"
#include "warp/core/lower_bounds.h"

namespace warp {
namespace check {

namespace {

// One "a <= b" comparison with absolute + relative slack; fills `error`
// with the named inequality on violation.
bool LeqOrExplain(double a, double b, const char* a_name, const char* b_name,
                  double tolerance, std::string* error) {
  const double slack = tolerance * (1.0 + std::fabs(a) + std::fabs(b));
  if (a <= b + slack) return true;
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "%s = %.17g exceeds %s = %.17g (violates %s <= %s)", a_name,
                a, b_name, b, a_name, b_name);
  *error = buffer;
  return false;
}

}  // namespace

BoundCascade ComputeBoundCascade(std::span<const double> x,
                                 std::span<const double> y, size_t band,
                                 CostKind cost) {
  WARP_CHECK_MSG(x.size() == y.size(),
                 "the lower-bound cascade assumes equal lengths");
  WARP_CHECK(!x.empty());
  BoundCascade cascade;
  cascade.band = band;
  cascade.cost = cost;
  const Envelope env_x = ComputeEnvelope(x, band);
  const Envelope env_y = ComputeEnvelope(y, band);
  cascade.lb_kim = LbKimFl(x, y, cost);
  cascade.lb_keogh = LbKeogh(env_x, y, cost);
  cascade.lb_keogh_symmetric = LbKeoghSymmetric(env_x, x, env_y, y, cost);
  cascade.lb_improved = LbImproved(env_x, x, y, band, cost);
  cascade.cdtw = CdtwDistance(x, y, band, cost);
  cascade.dtw = DtwDistance(x, y, cost);
  cascade.euclidean = EuclideanDistance(x, y, cost);
  return cascade;
}

bool CheckBoundCascade(const BoundCascade& cascade, double tolerance,
                       std::string* error) {
  WARP_CHECK(error != nullptr);
  return LeqOrExplain(cascade.lb_kim, cascade.cdtw, "LB_Kim", "cDTW_w",
                      tolerance, error) &&
         LeqOrExplain(cascade.lb_keogh, cascade.lb_keogh_symmetric,
                      "LB_Keogh", "LB_KeoghSymmetric", tolerance, error) &&
         LeqOrExplain(cascade.lb_keogh_symmetric, cascade.cdtw,
                      "LB_KeoghSymmetric", "cDTW_w", tolerance, error) &&
         LeqOrExplain(cascade.lb_keogh, cascade.lb_improved, "LB_Keogh",
                      "LB_Improved", tolerance, error) &&
         LeqOrExplain(cascade.lb_improved, cascade.cdtw, "LB_Improved",
                      "cDTW_w", tolerance, error) &&
         LeqOrExplain(cascade.dtw, cascade.cdtw, "DTW", "cDTW_w", tolerance,
                      error) &&
         LeqOrExplain(cascade.cdtw, cascade.euclidean, "cDTW_w", "Euclidean",
                      tolerance, error);
}

bool CheckLowerBoundOrdering(std::span<const double> x,
                             std::span<const double> y, size_t band,
                             CostKind cost, double tolerance,
                             std::string* error) {
  return CheckBoundCascade(ComputeBoundCascade(x, y, band, cost), tolerance,
                           error);
}

bool CheckCdtwBandMonotone(std::span<const double> x,
                           std::span<const double> y,
                           std::span<const size_t> bands, CostKind cost,
                           double tolerance, std::string* error) {
  WARP_CHECK(error != nullptr);
  WARP_CHECK(!bands.empty());
  DtwWorkspace buffer;
  double previous = CdtwDistance(x, y, bands[0], cost, &buffer);
  for (size_t k = 1; k < bands.size(); ++k) {
    WARP_CHECK_MSG(bands[k - 1] <= bands[k], "bands must be ascending");
    const double current = CdtwDistance(x, y, bands[k], cost, &buffer);
    char wide_name[48];
    char narrow_name[48];
    std::snprintf(wide_name, sizeof(wide_name), "cDTW_%zu", bands[k]);
    std::snprintf(narrow_name, sizeof(narrow_name), "cDTW_%zu", bands[k - 1]);
    if (!LeqOrExplain(current, previous, wide_name, narrow_name, tolerance,
                      error)) {
      return false;
    }
    previous = current;
  }
  return true;
}

}  // namespace check
}  // namespace warp
