// The loopback TCP query server (docs/SERVING.md).
//
// Composition of the serve subsystem: a DatasetStore (shared, read-only
// snapshots), a ResultCache, a QueryEngine on a ThreadPool, and a Batcher
// that group-commits concurrent connections into shared engine batches.
// One thread per connection reads line-delimited JSON requests; lines
// that are already buffered when a response would be written are drained
// first and answered as one batch (pipelining IS batching). Control ops
// (ping / info / stats / metrics / slowlog / load / shutdown) are
// answered inline by the server without entering the engine.
//
// All socket work goes through warp/serve/net.h; this file never issues
// a raw socket syscall.

#ifndef WARP_SERVE_SERVER_H_
#define WARP_SERVE_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "warp/serve/dataset_store.h"
#include "warp/ts/dataset.h"

namespace warp {
namespace serve {

struct ServerOptions {
  uint16_t port = 0;           // 0 = kernel-assigned; see Server::port().
  size_t threads = 1;          // Query-engine worker threads.
  size_t shards = 1;           // Store shards per dataset (>= 1).
  size_t cache_capacity = 256; // Result-cache entries; 0 disables caching.
  size_t slowlog_capacity = 32; // Slow-query log entries; 0 disables it.

  // Batcher admission gate: pending submissions beyond this fast-fail
  // with error:"overloaded" (serve/batcher.h). 0 = unbounded.
  size_t max_queue_depth = 1024;

  // Cluster worker mode: >= 0 makes this server shard worker K of
  // `shards`. The store still holds the full sharded layout (identical
  // partition, identical epochs), but every query must arrive stamped
  // with "shard":K — anything else is refused as mis-routed — and scans
  // only cover shard K's candidates (docs/SERVING.md, "Multi-process
  // cluster").
  long worker_shard = -1;

  // Sakoe-Chiba fractions indexed at dataset registration: each becomes a
  // per-series envelope set at band = round(fraction * length).
  std::vector<double> band_fractions = {0.05, 0.1};
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Z-normalizes, indexes (options.band_fractions), and registers
  // `dataset` under `name`. Callable before Start() (preloading) or
  // while serving (the store swaps snapshots atomically).
  void RegisterDataset(const std::string& name, Dataset dataset);

  // Loads a UCR file and registers it. Returns false and fills *error on
  // I/O or parse failure (the dataset list is unchanged).
  bool LoadDataset(const std::string& name, const std::string& path,
                   const std::vector<double>& band_fractions,
                   std::string* error);

  // Registers a dataset from a warp-snap-v1 file (bit-exact index, no
  // recomputation; the store re-shards it at its configured shard
  // count). `name` overrides the name stored in the file when non-empty.
  // Refuses — false + *error, store unchanged — on any mismatch.
  bool LoadSnapshotFile(const std::string& name, const std::string& path,
                        std::string* error);

  // Auto-load: registers every *.wsnap file directly inside `dir`, in
  // sorted filename order, each under its stored dataset name. Stops at
  // the first failure.
  bool LoadSnapshotDir(const std::string& dir, std::string* error);

  // Binds the listener. Returns false and fills *error on failure.
  bool Start(std::string* error);

  // The bound port (valid after Start(); useful with options.port == 0).
  int port() const;

  // Accepts and serves connections until RequestShutdown() (from a
  // connection's `shutdown` op or another thread). Joins every
  // connection thread before returning.
  void Serve();

  // Signals Serve() to stop; safe from any thread, idempotent.
  void RequestShutdown();

  const DatasetStore& store() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Convenience for tools: Start() + Serve(), printing
// "warp_serve listening on 127.0.0.1:<port>" and then "ready port=<port>"
// to stdout first so harnesses (and the cluster supervisor) can scrape
// the bound port even when options.port was 0. Returns a process exit
// code.
int RunServer(Server* server);

}  // namespace serve
}  // namespace warp

#endif  // WARP_SERVE_SERVER_H_
