// Common series preprocessing transforms.
//
// The steps that precede distance computation in real pipelines:
// smoothing, differencing, detrending. All are length-documented, pure
// functions; none are applied implicitly by any distance.

#ifndef WARP_TS_TRANSFORMS_H_
#define WARP_TS_TRANSFORMS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace warp {

// Centered moving average with half-width `radius` (window 2*radius+1,
// truncated at the edges). radius 0 is the identity.
std::vector<double> MovingAverage(std::span<const double> values,
                                  size_t radius);

// First difference: out[i] = values[i+1] - values[i]; length n-1.
// Requires at least 2 points.
std::vector<double> Difference(std::span<const double> values);

// Removes the least-squares line; length preserved.
std::vector<double> DetrendLinear(std::span<const double> values);

// Exponential (EWMA) smoothing with factor alpha in (0, 1]:
// out[0] = values[0], out[i] = alpha*values[i] + (1-alpha)*out[i-1].
std::vector<double> ExponentialSmoothing(std::span<const double> values,
                                         double alpha);

// Min-max rescaling to [0, 1]; a constant series maps to all 0.5.
std::vector<double> MinMaxScale(std::span<const double> values);

}  // namespace warp

#endif  // WARP_TS_TRANSFORMS_H_
