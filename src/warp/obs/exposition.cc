#include "warp/obs/exposition.h"

#include <cstdio>

namespace warp {
namespace obs {

namespace {

void AppendLine(std::string* out, const std::string& name,
                unsigned long long value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), " %llu\n", value);
  out->append(name);
  out->append(buffer);
}

void AppendTypeHeader(std::string* out, const std::string& name,
                      const char* type) {
  out->append("# TYPE ");
  out->append(name);
  out->append(" ");
  out->append(type);
  out->append("\n");
}

void AppendHistogram(std::string* out, const std::string& name,
                     const HistogramData& data) {
  AppendTypeHeader(out, name, "histogram");
  // Cumulative buckets up to the highest occupied one; "+Inf" always
  // present and always equal to the total count.
  size_t highest = 0;
  bool any = false;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    if (data.buckets[i] != 0) {
      highest = i;
      any = true;
    }
  }
  uint64_t cumulative = 0;
  if (any) {
    for (size_t i = 0; i <= highest; ++i) {
      cumulative += data.buckets[i];
      char label[64];
      std::snprintf(label, sizeof(label), "_bucket{le=\"%llu\"}",
                    static_cast<unsigned long long>(HistogramBucketBound(i)));
      AppendLine(out, name + label, cumulative);
    }
  }
  AppendLine(out, name + "_bucket{le=\"+Inf\"}", data.count);
  AppendLine(out, name + "_sum", data.sum);
  AppendLine(out, name + "_count", data.count);
}

}  // namespace

std::string RenderMetricsText(const MetricsSnapshot& counters,
                              const HistogramSnapshot& histograms,
                              const GaugeSnapshot& gauges,
                              const std::vector<ExpositionExtra>& extras) {
  std::string out = "# warp-metrics-v1\n";

  for (size_t i = 0; i < kNumCounters; ++i) {
    const Counter counter = static_cast<Counter>(i);
    const std::string name = std::string("warp_") + CounterName(counter);
    AppendTypeHeader(&out, name, "counter");
    AppendLine(&out, name + "_total", counters.Get(counter));
  }

  for (size_t i = 0; i < kNumGauges; ++i) {
    const Gauge gauge = static_cast<Gauge>(i);
    const std::string name = std::string("warp_") + GaugeName(gauge);
    AppendTypeHeader(&out, name, "gauge");
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), " %lld\n",
                  static_cast<long long>(gauges.Get(gauge)));
    out.append(name);
    out.append(buffer);
  }

  for (const ExpositionExtra& extra : extras) {
    const std::string name = "warp_" + extra.name;
    AppendTypeHeader(&out, name, extra.is_counter ? "counter" : "gauge");
    if (extra.is_counter) {
      const uint64_t value =
          extra.value > 0 ? static_cast<uint64_t>(extra.value) : uint64_t{0};
      AppendLine(&out, name + "_total", value);
    } else {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), " %lld\n",
                    static_cast<long long>(extra.value));
      out.append(name);
      out.append(buffer);
    }
  }

  for (size_t i = 0; i < kNumHistograms; ++i) {
    const Histogram histogram = static_cast<Histogram>(i);
    AppendHistogram(&out, std::string("warp_") + HistogramName(histogram),
                    histograms.Get(histogram));
  }

  return out;
}

}  // namespace obs
}  // namespace warp
