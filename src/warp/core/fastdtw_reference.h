// A deliberately literal port of the reference FastDTW implementation —
// the pure-Python `fastdtw` package (v0.3.x) that the papers citing
// FastDTW (and the paper's own Appendix-B correspondent) actually ran.
//
// Where warp/core/fastdtw.h is an aggressively engineered reimplementation
// (contiguous per-row windows, flat rolling arrays), this port preserves
// the reference's data structures and control flow:
//   * the search window is materialized as an explicit cell list built
//     through hash *sets* of (i, j) pairs, with an O(radius^2) expansion
//     loop around every low-resolution path cell;
//   * the windowed DP stores costs and parent pointers in a hash *map*
//     keyed by (i, j), exactly like the package's defaultdict;
//   * each recursion level copies the coarsened series.
//
// The performance gap between the two (an order of magnitude and more) is
// itself part of the reproduction: the paper's timing curves were
// measured against implementations with these constants. Benchmarks
// report both so the reader can see that the paper's conclusion survives
// either way at matched fidelity.
//
// Known reference quirks preserved or minimally repaired (documented in
// line): rows the projected window misses (odd lengths with radius 0)
// crash the Python package; this port repairs them by extending the
// previous row's reach so every call returns a complete path.

#ifndef WARP_CORE_FASTDTW_REFERENCE_H_
#define WARP_CORE_FASTDTW_REFERENCE_H_

#include <span>

#include "warp/core/dtw.h"

namespace warp {

// Distance + path, semantics of `fastdtw.fastdtw(x, y, radius, dist)`.
DtwResult ReferenceFastDtw(std::span<const double> x,
                           std::span<const double> y, size_t radius,
                           CostKind cost = CostKind::kSquared);

// Multichannel variant (the package accepts vector-valued samples with a
// pointwise dist; dependent warping, summed per-channel cost).
DtwResult ReferenceMultiFastDtw(const MultiSeries& x, const MultiSeries& y,
                                size_t radius,
                                CostKind cost = CostKind::kSquared);

}  // namespace warp

#endif  // WARP_CORE_FASTDTW_REFERENCE_H_
