// The warping path: the optimal alignment DTW recovers.
//
// A path is a sequence of matrix cells from (0, 0) to (n-1, m-1) whose
// steps are each one of {down, right, diagonal}. FastDTW threads paths
// between resolutions, and the alignment examples visualize them, so the
// type carries full invariant validation.

#ifndef WARP_CORE_WARPING_PATH_H_
#define WARP_CORE_WARPING_PATH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "warp/common/assert.h"
#include "warp/common/cost.h"

namespace warp {

struct PathPoint {
  uint32_t i = 0;  // Row: index into the first series.
  uint32_t j = 0;  // Column: index into the second series.

  friend bool operator==(const PathPoint&, const PathPoint&) = default;
};

class WarpingPath {
 public:
  WarpingPath() = default;
  explicit WarpingPath(std::vector<PathPoint> points)
      : points_(std::move(points)) {}

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const PathPoint& operator[](size_t k) const {
    WARP_DCHECK(k < points_.size());
    return points_[k];
  }
  const std::vector<PathPoint>& points() const { return points_; }

  void Append(uint32_t i, uint32_t j) { points_.push_back({i, j}); }
  void Reverse();

  // True iff the path satisfies the DTW constraints for series of lengths
  // (n, m): boundary (starts at (0,0), ends at (n-1,m-1)), monotonicity and
  // continuity (every step is (0,1), (1,0) or (1,1)).
  bool IsValid(size_t n, size_t m) const;

  // Like IsValid but explains the first violation (for tests/diagnostics).
  bool Validate(size_t n, size_t m, std::string* error) const;

  // Sum of local costs along this path for the given series; any valid
  // path's cost upper-bounds the DTW distance.
  double CostAlong(std::span<const double> x, std::span<const double> y,
                   CostKind cost = CostKind::kSquared) const;

  // For each row i in [0, n), the inclusive column range the path touches.
  // Requires a valid path; every row of a valid path is touched by a
  // contiguous, non-decreasing range. Used by FastDTW's window projection.
  std::vector<std::pair<uint32_t, uint32_t>> PerRowColumnRanges(
      size_t n) const;

  // Maximum |i - j| over the path — the smallest Sakoe–Chiba band (in
  // cells) that contains this alignment. This is how a domain's natural
  // warping amount W can be estimated from exemplar alignments.
  uint32_t MaxDiagonalDeviation() const;

 private:
  std::vector<PathPoint> points_;
};

}  // namespace warp

#endif  // WARP_CORE_WARPING_PATH_H_
