#include "warp/gen/fall.h"

#include <algorithm>
#include <cmath>

#include "warp/common/assert.h"

namespace warp {
namespace gen {

namespace {

// Number of samples the fall transient occupies (0.7 s at 100 Hz).
constexpr size_t kTransientLength = 70;

// Value of the transient at sample k: a drop from the standing level
// (1.0) to the ground level (0.0) with a damped bounce.
double TransientValue(size_t k) {
  const double t = static_cast<double>(k) / kTransientLength;  // [0, 1)
  const double drop = 1.0 - 1.0 / (1.0 + std::exp(-18.0 * (t - 0.25)));
  const double bounce =
      0.25 * std::exp(-6.0 * t) * std::sin(24.0 * M_PI * t);
  return drop + bounce;
}

}  // namespace

std::vector<double> MakeFallTrace(size_t n, size_t fall_start, Rng& rng,
                                  double noise_stddev) {
  WARP_CHECK(n > 0);
  WARP_CHECK_MSG(fall_start + kTransientLength <= n,
                 "fall transient must fit in the trace");
  std::vector<double> trace(n);
  for (size_t t = 0; t < n; ++t) {
    double level;
    if (t < fall_start) {
      level = 1.0;  // Standing.
    } else if (t < fall_start + kTransientLength) {
      level = TransientValue(t - fall_start);
    } else {
      level = 0.0;  // On the ground.
    }
    trace[t] = level + rng.Gaussian(0.0, noise_stddev);
  }
  return trace;
}

std::pair<std::vector<double>, std::vector<double>> MakeFallPair(
    double seconds, double hz, Rng& rng) {
  WARP_CHECK(seconds > 0.0 && hz > 0.0);
  const size_t n = static_cast<size_t>(std::llround(seconds * hz));
  WARP_CHECK_MSG(n > kTransientLength,
                 "window too short for a fall transient");
  std::vector<double> early = MakeFallTrace(n, 0, rng);
  std::vector<double> late = MakeFallTrace(n, n - kTransientLength, rng);
  return {std::move(early), std::move(late)};
}

}  // namespace gen
}  // namespace warp
