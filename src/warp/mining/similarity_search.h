// UCR-suite-style subsequence similarity search.
//
// Finds the best-matching window of a long series for a query under
// cDTW_w, with the optimizations of Rakthanmanon et al. (KDD 2012) the
// paper invokes for its trillion-point projection: just-in-time
// z-normalization of each candidate window from running sums, a cascade of
// lower bounds (LB_Kim -> LB_Keogh), and early-abandoning DTW. These
// tricks only exist for *exact* DTW — the structural reason FastDTW cannot
// compete in repeated-measurement workloads.

#ifndef WARP_MINING_SIMILARITY_SEARCH_H_
#define WARP_MINING_SIMILARITY_SEARCH_H_

#include <cstdint>
#include <span>

#include "warp/common/cost.h"

namespace warp {

struct SubsequenceMatch {
  size_t position = 0;   // Start index of the best window in the haystack.
  double distance = 0.0; // cDTW distance on the z-normalized window.
};

struct SearchStats {
  uint64_t windows = 0;
  uint64_t pruned_by_kim = 0;
  uint64_t pruned_by_keogh = 0;
  uint64_t abandoned_dtw = 0;
  uint64_t full_dtw = 0;
  double seconds = 0.0;
};

// Scans every window of haystack of length query.size(); both the query
// and each window are z-normalized before comparison (the standard
// similarity-search contract). `band` is the cDTW half-width in cells.
SubsequenceMatch FindBestMatch(std::span<const double> haystack,
                               std::span<const double> query, size_t band,
                               CostKind cost = CostKind::kSquared,
                               SearchStats* stats = nullptr);

// Reference implementation without any pruning, for differential tests
// and for the ablation benchmark.
SubsequenceMatch FindBestMatchNaive(std::span<const double> haystack,
                                    std::span<const double> query,
                                    size_t band,
                                    CostKind cost = CostKind::kSquared,
                                    SearchStats* stats = nullptr);

}  // namespace warp

#endif  // WARP_MINING_SIMILARITY_SEARCH_H_
