#ifndef WARP_CORE_ALIGN_H_
#define WARP_CORE_ALIGN_H_

namespace warp {
int Align(int x);
}  // namespace warp

#endif  // WARP_CORE_ALIGN_H_
