// Request-lifetime distributions and point-in-time gauges for the
// serving path.
//
// The counter registry (warp/common/metrics.h) answers "how much work
// happened in total"; it cannot answer "what does p99 look like" or
// "where does one request's time go". This registry adds the missing
// shapes:
//
//   * Histogram — a fixed 65-bucket log2 histogram (bucket 0 holds the
//     value zero; bucket i holds values whose bit width is i, i.e. the
//     range [2^(i-1), 2^i - 1]). Recording touches only the calling
//     thread's cache-line-aligned slab with relaxed load+store, exactly
//     the counter-slab discipline, so recording is contention-free and
//     SnapshotHistograms() merges by unsigned addition — merged counts,
//     sums, and buckets are bitwise-stable at any thread count.
//   * Gauge — a signed instantaneous level (queue depth, open
//     connections, inflight batch size). Deltas are commutative
//     fetch_adds on one global atomic, so the settled value is
//     deterministic even though intermediate readings race by nature.
//
// With WARP_PROFILE=OFF every Record/GaugeAdd site collapses to an empty
// inline function (dead-code arguments), matching the WARP_COUNT
// contract: serving results are bitwise identical with profiling on,
// off, and at any thread count (tests/serve/stats_golden_test.cc).
//
// Percentiles are computed from the buckets at snapshot time: pNN is the
// upper bound of the bucket containing the NN-th percentile rank. That
// makes them quantized (a power-of-two ceiling), but deterministic and
// mergeable — good enough to see a p99 collapse by 10x, which is what
// the serving roadmap items need.

#ifndef WARP_OBS_HISTOGRAM_H_
#define WARP_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "warp/common/metrics.h"  // WARP_PROFILE_ENABLED / kProfilingEnabled

namespace warp {
namespace obs {

// One X(enumerator, json_name) entry per histogram. The json_name is the
// stable identifier used by the stats op, the metrics exposition, and
// warp-bench-v1 reports; keep docs/OBSERVABILITY.md in sync. The _us
// suffix marks microsecond-valued series; unsuffixed series count items.
#define WARP_OBS_HISTOGRAM_LIST(X)                                \
  /* End-to-end engine latency per query op (query_engine.cc). */ \
  X(kServeLatency1nn, "serve_latency_1nn_us")                     \
  X(kServeLatencyKnn, "serve_latency_knn_us")                     \
  X(kServeLatencyRange, "serve_latency_range_us")                 \
  X(kServeLatencyDist, "serve_latency_dist_us")                   \
  X(kServeLatencySubsequence, "serve_latency_subsequence_us")     \
  /* Work per computed (non-cache-hit) query. */                  \
  X(kServeCellsPerQuery, "serve_cells_per_query")                 \
  /* Batching shape (batcher.cc). */                              \
  X(kServeBatchOccupancy, "serve_batch_occupancy")                \
  /* Request lifecycle stages (server/batcher/query_engine). */   \
  X(kServeStageParse, "serve_stage_parse_us")                     \
  X(kServeStageCacheLookup, "serve_stage_cache_lookup_us")        \
  X(kServeStageQueueWait, "serve_stage_queue_wait_us")            \
  X(kServeStageEngineScan, "serve_stage_engine_scan_us")          \
  X(kServeStageMerge, "serve_stage_merge_us")                     \
  X(kServeStageSerialize, "serve_stage_serialize_us")             \
  /* Snapshot persistence (serve/snapshot.cc). */                 \
  X(kServeSnapshotSaveUs, "serve_snapshot_save_us")               \
  X(kServeSnapshotLoadUs, "serve_snapshot_load_us")               \
  /* Router scatter/gather round trip (cluster/router.cc). */     \
  X(kRouterGatherUs, "router_gather_us")

// One X(enumerator, json_name) entry per gauge.
#define WARP_OBS_GAUGE_LIST(X)                  \
  X(kServeQueueDepth, "serve_queue_depth")      \
  X(kServeOpenConnections, "serve_open_connections") \
  X(kServeInflightBatch, "serve_inflight_batch")

enum class Histogram : uint32_t {
#define WARP_OBS_DECLARE_ENUM(name, json_name) name,
  WARP_OBS_HISTOGRAM_LIST(WARP_OBS_DECLARE_ENUM)
#undef WARP_OBS_DECLARE_ENUM
      kNumHistograms
};

enum class Gauge : uint32_t {
#define WARP_OBS_DECLARE_ENUM(name, json_name) name,
  WARP_OBS_GAUGE_LIST(WARP_OBS_DECLARE_ENUM)
#undef WARP_OBS_DECLARE_ENUM
      kNumGauges
};

inline constexpr size_t kNumHistograms =
    static_cast<size_t>(Histogram::kNumHistograms);
inline constexpr size_t kNumGauges = static_cast<size_t>(Gauge::kNumGauges);

// Bucket 0 holds exact zeros; bucket i (1..64) holds values with bit
// width i. 65 buckets cover the whole uint64_t range.
inline constexpr size_t kHistogramBuckets = 65;

// The stable JSON/report name of a histogram or gauge.
const char* HistogramName(Histogram histogram);
const char* GaugeName(Gauge gauge);

// Bucket index of a value: 0 for 0, otherwise the value's bit width.
inline size_t HistogramBucketIndex(uint64_t value) {
  size_t bits = 0;
  while (value != 0) {
    ++bits;
    value >>= 1;
  }
  return bits;
}

// Inclusive upper bound of a bucket: 0, 1, 3, 7, ..., 2^i - 1.
inline uint64_t HistogramBucketBound(size_t bucket) {
  if (bucket >= 64) return ~uint64_t{0};
  return (uint64_t{1} << bucket) - 1;
}

// One thread's histogram storage. Same single-writer discipline as
// CounterSlab: atomics only formalize the cross-thread snapshot reads.
struct alignas(64) HistogramSlab {
  struct Series {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
  };
  std::array<Series, kNumHistograms> series{};
};

namespace internal {
// Registers (once) and returns the calling thread's histogram slab.
// Never unregistered, same rationale as the counter slabs.
HistogramSlab* RegisterLocalHistogramSlab();
extern thread_local HistogramSlab* local_histogram_slab;

// The global gauge cells (one atomic per gauge, zero-initialized).
std::atomic<int64_t>& GaugeCell(Gauge gauge);

inline void BumpSeries(HistogramSlab::Series& series, uint64_t value) {
  auto bump = [](std::atomic<uint64_t>& cell, uint64_t amount) {
    cell.store(cell.load(std::memory_order_relaxed) + amount,
               std::memory_order_relaxed);
  };
  bump(series.count, 1);
  bump(series.sum, value);
  bump(series.buckets[HistogramBucketIndex(value)], 1);
}
}  // namespace internal

#if WARP_PROFILE_ENABLED
inline void RecordValue(Histogram histogram, uint64_t value) {
  HistogramSlab* slab = internal::local_histogram_slab;
  if (slab == nullptr) slab = internal::RegisterLocalHistogramSlab();
  internal::BumpSeries(slab->series[static_cast<size_t>(histogram)], value);
}
inline void GaugeAdd(Gauge gauge, int64_t delta) {
  internal::GaugeCell(gauge).fetch_add(delta, std::memory_order_relaxed);
}
inline int64_t GaugeValue(Gauge gauge) {
  return internal::GaugeCell(gauge).load(std::memory_order_relaxed);
}
#else
inline void RecordValue(Histogram /*histogram*/, uint64_t /*value*/) {}
inline void GaugeAdd(Gauge /*gauge*/, int64_t /*delta*/) {}
inline int64_t GaugeValue(Gauge /*gauge*/) { return 0; }
#endif

// Microsecond convenience for stage timings: negative and NaN inputs
// clamp to zero, fractional microseconds round down.
inline void RecordMicros(Histogram histogram, double micros) {
  const uint64_t value =
      micros > 0.0 ? static_cast<uint64_t>(micros) : uint64_t{0};
  RecordValue(histogram, value);
}

// A merged, immutable view of one histogram at one instant.
struct HistogramData {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  bool Empty() const { return count == 0; }
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  // Upper bound of the bucket holding the q-quantile rank (q in [0,1]).
  // Zero when empty.
  uint64_t Percentile(double q) const;
};

struct HistogramSnapshot {
  std::array<HistogramData, kNumHistograms> series{};

  const HistogramData& Get(Histogram histogram) const {
    return series[static_cast<size_t>(histogram)];
  }
  bool AllEmpty() const;
};

// Per-field difference a - b, saturating at zero (all fields are
// monotonic, so a genuine "since" delta never saturates).
HistogramSnapshot operator-(const HistogramSnapshot& a,
                            const HistogramSnapshot& b);

// Merged totals across every thread that ever recorded. Deterministic:
// unsigned addition in any order yields the same counts/sums/buckets.
HistogramSnapshot SnapshotHistograms();

// Convenience: SnapshotHistograms() - before.
HistogramSnapshot HistogramsSince(const HistogramSnapshot& before);

// Zeroes every slab. Only meaningful while no serving work is in flight
// (e.g. between bench cases on the orchestrating thread).
void ResetHistograms();

// A point-in-time reading of all gauges. Readings taken while work is in
// flight may see transient levels; settled values (queue drained, batch
// finished) are deterministic because deltas are paired and commutative.
struct GaugeSnapshot {
  std::array<int64_t, kNumGauges> values{};

  int64_t Get(Gauge gauge) const {
    return values[static_cast<size_t>(gauge)];
  }
};

GaugeSnapshot SnapshotGauges();

}  // namespace obs
}  // namespace warp

// Instrumentation entry points, mirroring WARP_COUNT: `value` must be
// side-effect free — with WARP_PROFILE=OFF the call is an empty inline
// function and the argument computation is dead code.
#define WARP_HISTOGRAM_RECORD(histogram, value) \
  ::warp::obs::RecordValue((histogram), static_cast<uint64_t>(value))
#define WARP_HISTOGRAM_RECORD_US(histogram, micros) \
  ::warp::obs::RecordMicros((histogram), (micros))
#define WARP_GAUGE_ADD(gauge, delta) \
  ::warp::obs::GaugeAdd((gauge), static_cast<int64_t>(delta))

#endif  // WARP_OBS_HISTOGRAM_H_
