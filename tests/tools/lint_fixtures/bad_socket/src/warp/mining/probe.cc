#include <sys/socket.h>

namespace warp {
int Probe() {
  return socket(2, 1, 0);
}
}  // namespace warp
