// Piecewise Aggregate Approximation (PAA) and resampling.
//
// FastDTW's coarsening step is PAA with a reduction factor of exactly two;
// HalveByTwo reproduces the reference implementation's semantics (pairs are
// averaged, a trailing odd element is dropped), which matters because the
// Appendix-A adversarial construction exploits precisely this step.

#ifndef WARP_TS_PAA_H_
#define WARP_TS_PAA_H_

#include <cstddef>
#include <span>
#include <vector>

namespace warp {

// General PAA: aggregates `values` into `num_segments` equal-width segments
// (fractional boundaries handled by proportional weighting, so the result
// is exact for any n and num_segments <= n).
std::vector<double> Paa(std::span<const double> values, size_t num_segments);

// FastDTW's reduce-by-half: out[i] = (in[2i] + in[2i+1]) / 2 for
// i in [0, floor(n/2)). Matches the published reference implementation.
std::vector<double> HalveByTwo(std::span<const double> values);

// Linear-interpolation resampling to `new_length` points, preserving the
// first and last samples. Used by generators, not by FastDTW itself.
std::vector<double> ResampleLinear(std::span<const double> values,
                                   size_t new_length);

// Naive decimation: keep every `factor`-th sample, starting at index 0.
std::vector<double> Downsample(std::span<const double> values, size_t factor);

}  // namespace warp

#endif  // WARP_TS_PAA_H_
