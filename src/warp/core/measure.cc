#include "warp/core/measure.h"

#include <algorithm>
#include <cmath>

#include "warp/common/assert.h"
#include "warp/core/adtw.h"
#include "warp/core/ddtw.h"
#include "warp/core/dtw.h"
#include "warp/core/elastic.h"
#include "warp/core/fastdtw.h"
#include "warp/core/fastdtw_reference.h"
#include "warp/core/wdtw.h"

namespace warp {

namespace {

// Per-pair band resolution: an explicit cell count wins, otherwise the
// same llround-of-fraction rule as CdtwDistanceFraction.
size_t ResolveBand(const MeasureParams& p, size_t n, size_t m) {
  if (p.band_cells >= 0) return static_cast<size_t>(p.band_cells);
  const size_t longest = std::max(n, m);
  return static_cast<size_t>(
      std::llround(p.window_fraction * static_cast<double>(longest)));
}

// Scratch rows shared by all closures on a given thread; reused across
// calls so steady-state distance evaluation never touches the heap.
DtwWorkspace& ThreadWorkspace() {
  static thread_local DtwWorkspace workspace;
  return workspace;
}

struct MeasureEntry {
  MeasureInfo info;
  SeriesMeasure (*make)(const MeasureParams&);
};

const std::vector<MeasureEntry>& Registry() {
  static const std::vector<MeasureEntry> entries = {
      {{"ed", "Euclidean distance (lock-step)", true},
       [](const MeasureParams& p) -> SeriesMeasure {
         return [p](std::span<const double> a, std::span<const double> b) {
           return EuclideanDistance(a, b, p.cost);
         };
       }},
      {{"cdtw", "DTW under a Sakoe-Chiba band", true},
       [](const MeasureParams& p) -> SeriesMeasure {
         return [p](std::span<const double> a, std::span<const double> b) {
           return CdtwDistance(a, b, ResolveBand(p, a.size(), b.size()),
                               p.cost, &ThreadWorkspace());
         };
       }},
      {{"dtw", "unconstrained (full) DTW", true},
       [](const MeasureParams& p) -> SeriesMeasure {
         return [p](std::span<const double> a, std::span<const double> b) {
           return DtwDistance(a, b, p.cost, nullptr, &ThreadWorkspace());
         };
       }},
      {{"ddtw", "derivative DTW under a band", true},
       [](const MeasureParams& p) -> SeriesMeasure {
         return [p](std::span<const double> a, std::span<const double> b) {
           return DdtwDistance(a, b, ResolveBand(p, a.size(), b.size()),
                               p.cost, &ThreadWorkspace());
         };
       }},
      {{"wdtw", "weighted DTW (logistic phase penalty)", true},
       [](const MeasureParams& p) -> SeriesMeasure {
         return [p](std::span<const double> a, std::span<const double> b) {
           const size_t band = p.wdtw_full_band
                                   ? a.size()
                                   : ResolveBand(p, a.size(), b.size());
           return WdtwDistance(a, b, p.wdtw_g, band, p.cost,
                               &ThreadWorkspace());
         };
       }},
      {{"adtw", "amerced DTW (additive warp penalty)", true},
       [](const MeasureParams& p) -> SeriesMeasure {
         return [p](std::span<const double> a, std::span<const double> b) {
           const double omega = p.adtw_omega >= 0.0
                                    ? p.adtw_omega
                                    : SuggestAdtwOmega(a, b, p.adtw_ratio,
                                                       p.cost);
           return AdtwDistance(a, b, omega, p.cost, &ThreadWorkspace());
         };
       }},
      {{"lcss", "longest common subsequence distance", true},
       [](const MeasureParams& p) -> SeriesMeasure {
         return [p](std::span<const double> a, std::span<const double> b) {
           return LcssDistance(a, b, p.lcss_epsilon,
                               ResolveBand(p, a.size(), b.size()),
                               &ThreadWorkspace());
         };
       }},
      {{"erp", "edit distance with real penalty", true},
       [](const MeasureParams& p) -> SeriesMeasure {
         return [p](std::span<const double> a, std::span<const double> b) {
           return ErpDistance(a, b, p.erp_gap, &ThreadWorkspace());
         };
       }},
      {{"msm", "move-split-merge distance", true},
       [](const MeasureParams& p) -> SeriesMeasure {
         return [p](std::span<const double> a, std::span<const double> b) {
           return MsmDistance(a, b, p.msm_cost, &ThreadWorkspace());
         };
       }},
      {{"fastdtw", "FastDTW approximation (optimized)", false},
       [](const MeasureParams& p) -> SeriesMeasure {
         return [p](std::span<const double> a, std::span<const double> b) {
           return FastDtwDistance(a, b, p.fastdtw_radius, p.cost);
         };
       }},
      {{"fastdtw-ref", "FastDTW approximation (reference port)", false},
       [](const MeasureParams& p) -> SeriesMeasure {
         return [p](std::span<const double> a, std::span<const double> b) {
           return ReferenceFastDtw(a, b, p.fastdtw_radius, p.cost).distance;
         };
       }},
  };
  return entries;
}

}  // namespace

const std::vector<MeasureInfo>& RegisteredMeasures() {
  static const std::vector<MeasureInfo> infos = [] {
    std::vector<MeasureInfo> result;
    result.reserve(Registry().size());
    for (const MeasureEntry& entry : Registry()) result.push_back(entry.info);
    return result;
  }();
  return infos;
}

bool IsRegisteredMeasure(const std::string& name) {
  for (const MeasureEntry& entry : Registry()) {
    if (entry.info.name == name) return true;
  }
  return false;
}

std::string RegisteredMeasureNames() {
  std::string names;
  for (const MeasureEntry& entry : Registry()) {
    if (!names.empty()) names += " | ";
    names += entry.info.name;
  }
  return names;
}

SeriesMeasure MakeMeasure(const std::string& name,
                          const MeasureParams& params) {
  for (const MeasureEntry& entry : Registry()) {
    if (entry.info.name == name) return entry.make(params);
  }
  WARP_CHECK_MSG(false, "unregistered measure name");
}

}  // namespace warp
