int main() {
  const char* covered[] = {"dtw"};
  (void)covered;
  return 0;
}
