#include "warp/cluster/supervisor.h"

#include <algorithm>
#include <csignal>
#include <utility>

#include "warp/common/metrics.h"

namespace warp {
namespace cluster {
namespace {

// How long a worker must stay up before its next failure is treated as
// fresh (backoff resets) rather than part of a crash loop.
constexpr double kHealthyUptimeMs = 2000.0;

// Grace period between SIGTERM and SIGKILL during Stop().
constexpr int kTermGraceMs = 2000;

}  // namespace

Supervisor::Supervisor(const SupervisorOptions& options) : options_(options) {
  slots_.resize(options_.shards);
  for (size_t shard = 0; shard < options_.shards; ++shard) {
    slots_[shard].status.shard_id = shard;
  }
}

Supervisor::~Supervisor() { Stop(); }

bool Supervisor::SpawnAndAwaitReady(size_t shard, ChildProcess* proc,
                                    int* port, long* pid,
                                    std::string* error) {
  WorkerSpec spec;
  spec.shard_id = shard;
  spec.shard_count = options_.shards;
  spec.threads = options_.threads;
  spec.cache_capacity = options_.cache_capacity;
  spec.max_queue_depth = options_.max_queue_depth;
  spec.snapshot_dir = options_.snapshot_dir;
  if (!proc->Spawn(WorkerCommand(options_.worker_binary, spec), error)) {
    return false;
  }
  std::string line;
  if (!proc->WaitForLinePrefix("ready port=", options_.ready_timeout_ms,
                               &line) ||
      !ParseReadyPort(line, port)) {
    proc->Kill(SIGKILL);
    proc->Reap();
    *error = "worker for shard " + std::to_string(shard) +
             " did not report readiness within " +
             std::to_string(options_.ready_timeout_ms) + "ms";
    return false;
  }
  *pid = proc->pid();
  return true;
}

bool Supervisor::Start(std::string* error) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) {
      *error = "supervisor already started";
      return false;
    }
  }
  // Spawn and await each worker outside the lock: nothing else touches
  // the slots until started_ flips and the monitor thread exists.
  for (size_t shard = 0; shard < options_.shards; ++shard) {
    Slot& slot = slots_[shard];
    if (!SpawnAndAwaitReady(shard, &slot.proc, &slot.status.port,
                            &slot.status.pid, error)) {
      for (size_t prev = 0; prev < shard; ++prev) {
        slots_[prev].proc.Kill(SIGKILL);
        slots_[prev].proc.Reap();
        slots_[prev].status.up = false;
      }
      return false;
    }
    slot.status.up = true;
    slot.status.generation = 1;
    slot.up_since_ms = clock_.ElapsedMillis();
    slot.last_ping_ms = slot.up_since_ms;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
    stopping_ = false;
  }
  monitor_ = std::thread([this] { MonitorLoop(); });
  return true;
}

bool Supervisor::PingWorker(int port) const {
  WorkerClient client;
  std::string error;
  if (!client.Connect(port, options_.ping_timeout_ms, &error)) return false;
  std::vector<std::string> replies;
  if (!client.Send("{\"id\":0,\"op\":\"ping\"}\n")) return false;
  return client.ReadLines(1, options_.ping_timeout_ms, &replies);
}

void Supervisor::MonitorLoop() {
  while (true) {
    // Phase 1 (locked): reap deaths, schedule restarts, pick work.
    long restart_shard = -1;
    long ping_shard = -1;
    int ping_port = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      const double now_ms = clock_.ElapsedMillis();
      for (Slot& slot : slots_) {
        if (slot.status.up) {
          if (slot.proc.TryReap(nullptr)) {
            // Stayed up long enough -> fresh failure; otherwise keep
            // doubling so a crash loop backs off instead of spinning.
            const bool healthy =
                now_ms - slot.up_since_ms >= kHealthyUptimeMs;
            slot.backoff_ms = healthy ? options_.restart_backoff_ms
                                      : std::min(slot.backoff_ms * 2,
                                                 options_.restart_backoff_max_ms);
            if (slot.backoff_ms < options_.restart_backoff_ms) {
              slot.backoff_ms = options_.restart_backoff_ms;
            }
            slot.status.up = false;
            slot.status.pid = -1;
            slot.restart_due_ms = now_ms + slot.backoff_ms;
          } else if (ping_shard < 0 && options_.ping_interval_ms > 0 &&
                     now_ms - slot.last_ping_ms >=
                         options_.ping_interval_ms) {
            ping_shard = static_cast<long>(slot.status.shard_id);
            ping_port = slot.status.port;
          }
        } else if (restart_shard < 0 && restarts_enabled_ &&
                   now_ms >= slot.restart_due_ms) {
          restart_shard = static_cast<long>(slot.status.shard_id);
        }
      }
    }

    // Phase 2 (unlocked): at most one slow action per tick, so status
    // queries from the router never wait on a spawn or a ping.
    if (restart_shard >= 0) {
      Slot& slot = slots_[static_cast<size_t>(restart_shard)];
      ChildProcess proc;
      int port = 0;
      long pid = -1;
      std::string error;
      const bool ok = SpawnAndAwaitReady(static_cast<size_t>(restart_shard),
                                         &proc, &port, &pid, &error);
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_ || !restarts_enabled_) {
        if (ok) {
          proc.Kill(SIGKILL);
          proc.Reap();
        }
        if (stopping_) return;
        continue;
      }
      const double now_ms = clock_.ElapsedMillis();
      if (ok) {
        slot.proc = std::move(proc);
        slot.status.up = true;
        slot.status.port = port;
        slot.status.pid = pid;
        slot.status.generation++;
        slot.status.restarts++;
        slot.up_since_ms = now_ms;
        slot.last_ping_ms = now_ms;
        WARP_COUNT(obs::Counter::kClusterWorkerRestarts);
      } else {
        slot.backoff_ms =
            std::min(std::max(slot.backoff_ms * 2, options_.restart_backoff_ms),
                     options_.restart_backoff_max_ms);
        slot.restart_due_ms = now_ms + slot.backoff_ms;
      }
      continue;  // Re-examine immediately; another shard may need work.
    }

    if (ping_shard >= 0) {
      const bool alive = PingWorker(ping_port);
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      Slot& slot = slots_[static_cast<size_t>(ping_shard)];
      const double now_ms = clock_.ElapsedMillis();
      // Only act if the worker we pinged is still the one in the slot.
      if (slot.status.up && slot.status.port == ping_port) {
        slot.last_ping_ms = now_ms;
        if (!alive) {
          // Unresponsive but not exited: put it down ourselves.
          slot.proc.Kill(SIGKILL);
          slot.proc.Reap();
          slot.backoff_ms = options_.restart_backoff_ms;
          slot.status.up = false;
          slot.status.pid = -1;
          slot.restart_due_ms = now_ms + slot.backoff_ms;
        }
      }
      continue;
    }

    SleepMillis(options_.poll_interval_ms);
  }
}

void Supervisor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    restarts_enabled_ = false;
    if (!started_) return;
    stopping_ = true;
  }
  if (monitor_.joinable()) monitor_.join();

  // Monitor is gone; slots are ours alone now.
  for (Slot& slot : slots_) {
    if (!slot.proc.running()) continue;
    slot.proc.Kill(SIGTERM);
  }
  const Stopwatch grace;
  bool all_dead = false;
  while (!all_dead && grace.ElapsedMillis() < kTermGraceMs) {
    all_dead = true;
    for (Slot& slot : slots_) {
      if (slot.proc.running() && !slot.proc.TryReap(nullptr)) {
        all_dead = false;
      }
    }
    if (!all_dead) SleepMillis(10);
  }
  for (Slot& slot : slots_) {
    if (slot.proc.running()) {
      slot.proc.Kill(SIGKILL);
      slot.proc.Reap();
    }
    slot.status.up = false;
    slot.status.pid = -1;
  }
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

void Supervisor::DisableRestarts() {
  std::lock_guard<std::mutex> lock(mu_);
  restarts_enabled_ = false;
}

WorkerStatus Supervisor::Status(size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_[shard].status;
}

std::vector<WorkerStatus> Supervisor::StatusAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WorkerStatus> all;
  all.reserve(slots_.size());
  for (const Slot& slot : slots_) all.push_back(slot.status);
  return all;
}

long Supervisor::worker_pid(size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  const WorkerStatus& status = slots_[shard].status;
  return status.up ? status.pid : -1;
}

}  // namespace cluster
}  // namespace warp
