// Synthetic seismic-trace generator (paper Table 1, Case B's other
// domain).
//
// Long recordings (tens of thousands of samples) where two stations — or
// two events at the same station — see the same P-wave / S-wave / coda
// structure with small relative timing differences: long N, narrow W.
// Each trace is background microtremor noise plus enveloped wave-packet
// arrivals; a pair shares the arrivals with a small inter-trace delay.

#ifndef WARP_GEN_SEISMIC_H_
#define WARP_GEN_SEISMIC_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "warp/common/random.h"

namespace warp {
namespace gen {

struct SeismicOptions {
  size_t length = 20000;        // e.g. 200 s at 100 Hz.
  double p_arrival = 0.25;      // P-wave onset, fraction of the trace.
  double s_arrival = 0.45;      // S-wave onset (larger, lower frequency).
  double noise_stddev = 0.02;   // Microtremor background.
  double max_delay_fraction = 0.005;  // Inter-trace timing difference (W).
  uint64_t seed = 17;
};

// A single event trace.
std::vector<double> MakeSeismicTrace(const SeismicOptions& options,
                                     Rng& rng);

// (station A, station B): the same event with a small smooth relative
// delay bounded by max_delay_fraction, independent noise. Z-normalized.
std::pair<std::vector<double>, std::vector<double>> MakeSeismicPair(
    const SeismicOptions& options);

}  // namespace gen
}  // namespace warp

#endif  // WARP_GEN_SEISMIC_H_
