// Bottom-up piecewise-linear segmentation (Keogh et al., ICDM 2001).
//
// The "segmentation" task from the paper's opening list: approximate a
// series by k straight-line segments, merging greedily from an initial
// fine segmentation, always taking the merge with the smallest error
// increase. Useful on its own and as a preprocessing step (the PLA
// representation is the piecewise-linear cousin of the PAA used by
// FastDTW's coarsening).

#ifndef WARP_MINING_SEGMENTATION_H_
#define WARP_MINING_SEGMENTATION_H_

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace warp {

struct Segment {
  size_t begin = 0;      // First index covered.
  size_t end = 0;        // Last index covered (inclusive).
  double slope = 0.0;    // Least-squares line over [begin, end].
  double intercept = 0.0;  // Value at index `begin`.
  double error = 0.0;    // Sum of squared residuals of the fit.

  double ValueAt(size_t index) const {
    return intercept + slope * static_cast<double>(index - begin);
  }
};

struct SegmentationOptions {
  // Stop when this many segments remain (lower bound).
  size_t max_segments = 1;
  // ...or earlier, when the cheapest merge would push any segment's
  // residual error above this.
  double max_segment_error = std::numeric_limits<double>::max();
};

// Bottom-up merge from 2-point seed segments. O(n^2) worst case (merge
// costs are recomputed locally), fine for n up to tens of thousands.
// Series must have at least 2 points.
std::vector<Segment> BottomUpSegmentation(std::span<const double> series,
                                          const SegmentationOptions& options);

// Reconstructs the PLA approximation (same length as the original).
std::vector<double> ReconstructFromSegments(
    const std::vector<Segment>& segments);

// Total squared reconstruction error of a segmentation.
double TotalSegmentationError(const std::vector<Segment>& segments);

}  // namespace warp

#endif  // WARP_MINING_SEGMENTATION_H_
