#include "warp/mining/hierarchical_clustering.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "warp/common/assert.h"

namespace warp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Dendrogram::Dendrogram(size_t num_leaves, std::vector<MergeStep> merges)
    : num_leaves_(num_leaves), merges_(std::move(merges)) {
  WARP_CHECK(num_leaves_ >= 1);
  WARP_CHECK_MSG(merges_.size() == num_leaves_ - 1,
                 "a dendrogram over n leaves has exactly n-1 merges");
}

std::vector<size_t> Dendrogram::LeavesOf(size_t cluster_id) const {
  std::vector<size_t> leaves;
  std::vector<size_t> stack{cluster_id};
  while (!stack.empty()) {
    const size_t id = stack.back();
    stack.pop_back();
    if (id < num_leaves_) {
      leaves.push_back(id);
    } else {
      const MergeStep& merge = merges_[id - num_leaves_];
      // Right first so the left subtree is emitted first.
      stack.push_back(merge.right);
      stack.push_back(merge.left);
    }
  }
  return leaves;
}

std::vector<int> Dendrogram::CutIntoClusters(size_t k) const {
  WARP_CHECK(k >= 1 && k <= num_leaves_);
  // The clusters after undoing the last k-1 merges are the roots of the
  // forest formed by merges [0, n-1-k].
  const size_t kept_merges = num_leaves_ - k;
  std::vector<bool> is_child(num_leaves_ + kept_merges, false);
  for (size_t s = 0; s < kept_merges; ++s) {
    is_child[merges_[s].left] = true;
    is_child[merges_[s].right] = true;
  }
  std::vector<int> assignment(num_leaves_, -1);
  int cluster = 0;
  for (size_t id = 0; id < num_leaves_ + kept_merges; ++id) {
    if (is_child[id]) continue;
    for (size_t leaf : LeavesOf(id)) assignment[leaf] = cluster;
    ++cluster;
  }
  WARP_CHECK(cluster == static_cast<int>(k));
  return assignment;
}

std::string Dendrogram::ToNewick(std::span<const std::string> labels) const {
  WARP_CHECK(labels.size() == num_leaves_);

  // Branch length of a child = parent height - child height (leaves have
  // height 0).
  auto height_of = [&](size_t id) {
    return id < num_leaves_ ? 0.0 : merges_[id - num_leaves_].height;
  };

  // Recursive (via explicit lambda recursion) Newick emission.
  std::string out;
  auto emit = [&](auto&& self, size_t id, double parent_height) -> void {
    char buffer[48];
    if (id < num_leaves_) {
      out += labels[id];
    } else {
      const MergeStep& merge = merges_[id - num_leaves_];
      out += '(';
      self(self, merge.left, merge.height);
      out += ',';
      self(self, merge.right, merge.height);
      out += ')';
    }
    std::snprintf(buffer, sizeof(buffer), ":%.6g",
                  parent_height - height_of(id));
    out += buffer;
  };

  const size_t root = num_leaves_ + merges_.size() - 1;
  if (num_leaves_ == 1) {
    out = labels[0];
  } else {
    const MergeStep& top = merges_.back();
    out += '(';
    emit(emit, top.left, top.height);
    out += ',';
    emit(emit, top.right, top.height);
    out += ')';
  }
  (void)root;
  out += ';';
  return out;
}

std::string Dendrogram::RenderAscii(
    std::span<const std::string> labels) const {
  WARP_CHECK(labels.size() == num_leaves_);
  std::string out;
  auto emit = [&](auto&& self, size_t id, int depth) -> void {
    for (int d = 0; d < depth; ++d) out += "    ";
    if (id < num_leaves_) {
      out += "+-- ";
      out += labels[id];
      out += '\n';
      return;
    }
    const MergeStep& merge = merges_[id - num_leaves_];
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "+-- [height %.4g]\n", merge.height);
    out += buffer;
    self(self, merge.left, depth + 1);
    self(self, merge.right, depth + 1);
  };
  emit(emit, num_leaves_ + merges_.size() - 1, 0);
  return out;
}

Dendrogram AgglomerativeCluster(const DistanceMatrix& distances,
                                Linkage linkage) {
  const size_t n = distances.size();
  WARP_CHECK(n >= 1);

  // Active clusters, their ids, sizes, and a working copy of pairwise
  // linkage distances indexed by active-slot.
  std::vector<size_t> id(n);
  std::vector<size_t> size(n, 1);
  std::vector<bool> active(n, true);
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    id[i] = i;
    for (size_t j = 0; j < n; ++j) d[i][j] = distances.at(i, j);
  }

  std::vector<MergeStep> merges;
  merges.reserve(n - 1);
  size_t next_id = n;

  for (size_t round = 0; round + 1 < n; ++round) {
    // Find the closest active pair.
    double best = kInf;
    size_t bi = 0;
    size_t bj = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (d[i][j] < best) {
          best = d[i][j];
          bi = i;
          bj = j;
        }
      }
    }
    WARP_CHECK(best < kInf);

    merges.push_back({id[bi], id[bj], best});

    // Lance–Williams update into slot bi; slot bj is retired.
    for (size_t k = 0; k < n; ++k) {
      if (!active[k] || k == bi || k == bj) continue;
      double updated = 0.0;
      switch (linkage) {
        case Linkage::kSingle:
          updated = std::min(d[bi][k], d[bj][k]);
          break;
        case Linkage::kComplete:
          updated = std::max(d[bi][k], d[bj][k]);
          break;
        case Linkage::kAverage: {
          const double wi = static_cast<double>(size[bi]);
          const double wj = static_cast<double>(size[bj]);
          updated = (wi * d[bi][k] + wj * d[bj][k]) / (wi + wj);
          break;
        }
      }
      d[bi][k] = updated;
      d[k][bi] = updated;
    }
    size[bi] += size[bj];
    active[bj] = false;
    id[bi] = next_id++;
  }
  return Dendrogram(n, std::move(merges));
}

}  // namespace warp
