// Unit tests for the deterministic RNG.

#include "warp/common/random.h"

#include <gtest/gtest.h>

namespace warp {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.NextU64() != b.NextU64()) ++differing;
  }
  EXPECT_GT(differing, 15);
}

TEST(RngTest, CopyForksTheStream) {
  Rng a(7);
  a.NextU64();
  Rng b = a;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-1}, int64_t{1});
    EXPECT_GE(v, -1);
    EXPECT_LE(v, 1);
    saw_lo = saw_lo || v == -1;
    saw_hi = saw_hi || v == 1;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(6);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(8);
  int hits = 0;
  const int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.03);
}

TEST(SplitMix64Test, KnownFirstOutputsAreStable) {
  SplitMix64 a(0);
  SplitMix64 b(0);
  EXPECT_EQ(a.Next(), b.Next());
  // Different seeds must not collide on the first output.
  SplitMix64 c(1);
  SplitMix64 d(2);
  EXPECT_NE(c.Next(), d.Next());
}

}  // namespace
}  // namespace warp
