// Invariant oracles for the lower-bound cascade.
//
// Lemire's two-pass bound and the rest of the cascade earn their speed
// from one algebraic fact: every bound B satisfies B(q, c) <= cDTW_w(q, c)
// for the band and cost kind the eventual DTW call uses. A bound that ever
// overshoots silently breaks 1-NN pruning — the classifier discards the
// true nearest neighbor and the "exact" results of the paper reproduction
// stop being exact. These oracles evaluate the whole cascade on a pair and
// machine-check the orderings that are actually theorems:
//
//   LB_Kim      <= cDTW_w                    (endpoints are always aligned)
//   LB_Keogh    <= LB_KeoghSymmetric <= cDTW_w
//   LB_Keogh    <= LB_Improved       <= cDTW_w
//   DTW         <= cDTW_w            <= Euclidean   (equal lengths)
//
// Note LB_Kim and LB_Keogh are *not* mutually ordered (band >= 1 can hide
// the endpoint excursions LB_Kim sees), so the oracle deliberately checks
// each bound against cDTW_w rather than chaining them.

#ifndef WARP_CHECK_BOUND_ORACLE_H_
#define WARP_CHECK_BOUND_ORACLE_H_

#include <cstddef>
#include <span>
#include <string>

#include "warp/common/cost.h"

namespace warp {
namespace check {

// Every quantity of the cascade evaluated on one equal-length pair.
// Split from the check so that tests can tamper with individual fields and
// assert the oracle rejects the forgery (and so callers can log the lot).
struct BoundCascade {
  double lb_kim = 0.0;
  double lb_keogh = 0.0;
  double lb_keogh_symmetric = 0.0;
  double lb_improved = 0.0;
  double cdtw = 0.0;
  double dtw = 0.0;
  double euclidean = 0.0;
  size_t band = 0;
  CostKind cost = CostKind::kSquared;
};

// Evaluates all cascade members on (x, y) at `band`. Lengths must match
// (the 1-NN classification setting every bound assumes).
BoundCascade ComputeBoundCascade(std::span<const double> x,
                                 std::span<const double> y, size_t band,
                                 CostKind cost = CostKind::kSquared);

// Verifies the orderings documented above, with `tolerance` absolute +
// relative slack per comparison. On failure `error` names the violated
// inequality and both values.
bool CheckBoundCascade(const BoundCascade& cascade, double tolerance,
                       std::string* error);

// Convenience: ComputeBoundCascade + CheckBoundCascade.
bool CheckLowerBoundOrdering(std::span<const double> x,
                             std::span<const double> y, size_t band,
                             CostKind cost, double tolerance,
                             std::string* error);

// cDTW_w is monotone non-increasing in w (a wider band minimizes over a
// superset of paths). Verifies the chain over `bands`, which must be
// sorted ascending.
bool CheckCdtwBandMonotone(std::span<const double> x,
                           std::span<const double> y,
                           std::span<const size_t> bands, CostKind cost,
                           double tolerance, std::string* error);

}  // namespace check
}  // namespace warp

#endif  // WARP_CHECK_BOUND_ORACLE_H_
