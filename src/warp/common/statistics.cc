#include "warp/common/statistics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "warp/common/assert.h"

namespace warp {

namespace {

std::vector<double> Sorted(std::span<const double> values) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

double Mean(std::span<const double> values) {
  WARP_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(std::span<const double> values) {
  WARP_CHECK(!values.empty());
  if (values.size() == 1) return 0.0;
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return std::sqrt(sum_sq / static_cast<double>(values.size() - 1));
}

double Median(std::span<const double> values) {
  return Percentile(values, 50.0);
}

double Percentile(std::span<const double> values, double p) {
  WARP_CHECK(!values.empty());
  WARP_CHECK(p >= 0.0 && p <= 100.0);
  const std::vector<double> sorted = Sorted(values);
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

SampleStats ComputeStats(std::span<const double> values) {
  WARP_CHECK(!values.empty());
  SampleStats stats;
  stats.count = values.size();
  stats.mean = Mean(values);
  stats.stddev = StdDev(values);
  stats.min = *std::min_element(values.begin(), values.end());
  stats.max = *std::max_element(values.begin(), values.end());
  stats.median = Median(values);
  return stats;
}

Histogram::Histogram(double lo, double hi, int num_bins) : lo_(lo) {
  WARP_CHECK(hi > lo);
  WARP_CHECK(num_bins > 0);
  width_ = (hi - lo) / num_bins;
  counts_.assign(static_cast<size_t>(num_bins), 0);
}

void Histogram::Add(double value) {
  int bin = static_cast<int>(std::floor((value - lo_) / width_));
  bin = std::clamp(bin, 0, num_bins() - 1);
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

void Histogram::AddAll(std::span<const double> values) {
  for (double v : values) Add(v);
}

std::string Histogram::Render(int max_width) const {
  WARP_CHECK(max_width > 0);
  size_t peak = 1;
  for (size_t c : counts_) peak = std::max(peak, c);

  std::string out;
  char line[160];
  for (int bin = 0; bin < num_bins(); ++bin) {
    const int bar_len = static_cast<int>(
        std::lround(static_cast<double>(counts_[static_cast<size_t>(bin)]) /
                    static_cast<double>(peak) * max_width));
    std::snprintf(line, sizeof(line), "[%8.2f, %8.2f) %6zu |", bin_lo(bin),
                  bin_hi(bin), counts_[static_cast<size_t>(bin)]);
    out += line;
    out.append(static_cast<size_t>(bar_len), '#');
    out += '\n';
  }
  return out;
}

}  // namespace warp
