// Experiment E1 — paper Fig. 1 (Case A: short N, narrow W).
//
// The paper computes all 400,960 pairwise distances of the 896
// UWaveGestureLibraryAll training exemplars (length 945) with FastDTW for
// r = 0..20 and cDTW for w = 0..20%, and shows cDTW is faster at every
// comparable fidelity. This harness reproduces the two curves with
// gesture-like synthetic exemplars of identical count and length (Fig. 1
// measures time, which is data-independent), timing a sampled subset of
// the pairs and extrapolating to the full 400,960.
//
// Two FastDTW implementations are reported:
//   * reference — a literal port of the `fastdtw` package the literature
//     (and the paper) actually ran: this is the headline comparator;
//   * optimized — our re-engineered FastDTW (contiguous windows, flat
//     arrays), showing the conclusion is not an artifact of a slow port.
//
// Flags:
//   --exemplars=N      pairs sampled for cDTW / optimized FastDTW (def 32)
//   --ref-exemplars=N  pairs sampled for reference FastDTW (default 8)
//   --total=N          dataset size used for extrapolation (default 896)
//   --length=N         exemplar length (default 945)
//   --step=N           sweep step for both w and r (default 4)
//   --max=N            sweep upper bound (default 20)
//   --threads=N        if > 1, also report an N-thread all-pairs section
//                      (0 = auto). The sweeps above always run on one
//                      core, matching the paper's single-core timings.
//   --json=PATH        write the warp-bench-v1 report to PATH.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "harness/bench_flags.h"
#include "harness/pairwise.h"
#include "warp/common/stopwatch.h"
#include "warp/common/table_printer.h"
#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/core/fastdtw_reference.h"
#include "warp/gen/gesture.h"
#include "warp/common/metrics.h"
#include "warp/obs/report.h"

namespace warp {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t exemplars = static_cast<size_t>(flags.GetInt("exemplars", 32));
  const size_t ref_exemplars =
      static_cast<size_t>(flags.GetInt("ref-exemplars", 8));
  const size_t total = static_cast<size_t>(flags.GetInt("total", 896));
  const size_t length = static_cast<size_t>(flags.GetInt("length", 945));
  const int step = static_cast<int>(flags.GetInt("step", 4));
  const int max_setting = static_cast<int>(flags.GetInt("max", 20));
  const size_t threads = ThreadsFlag(flags);
  const std::string json_path = JsonFlag(flags);
  SimdFlag(flags);
  flags.Finalize();

  obs::BenchReport report(
      "E1 / Fig. 1",
      "All-pairs time (Case A): FastDTW_r vs cDTW_w, r and w in 0..20");
  report.AddConfig("exemplars", static_cast<int64_t>(exemplars));
  report.AddConfig("ref_exemplars", static_cast<int64_t>(ref_exemplars));
  report.AddConfig("total", static_cast<int64_t>(total));
  report.AddConfig("length", static_cast<int64_t>(length));
  report.AddConfig("step", step);
  report.AddConfig("max", max_setting);
  report.AddConfig("threads", static_cast<int64_t>(threads));

  // Records one all-pairs sweep point: per-comparison timing plus the
  // work-counter deltas accumulated across the sampled pairs.
  const auto record_pairwise = [&report](const std::string& name,
                                         const PairwiseTiming& timing,
                                         const obs::MetricsSnapshot& before) {
    report.AddCase(name,
                   PerOpSummary(timing.seconds,
                                static_cast<int64_t>(timing.pairs_timed)),
                   obs::CountersSince(before));
  };

  PrintBanner("E1 / Fig. 1",
              "All-pairs time, gesture-like data (N=945): FastDTW_r vs "
              "cDTW_w, r and w in 0..20");

  gen::GestureOptions options;
  options.length = length;
  const Dataset dataset = gen::MakeGestureDataset(
      (std::max(exemplars, ref_exemplars) +
       static_cast<size_t>(options.num_classes) - 1) /
          static_cast<size_t>(options.num_classes),
      options);
  const uint64_t full_pairs = TotalPairs(total);
  std::printf("exemplar length N=%zu; extrapolating to %llu comparisons "
              "(the paper's (896 x 895) / 2)\n\n",
              length, static_cast<unsigned long long>(full_pairs));

  // (a) FastDTW sweep over radius r, both implementations.
  TablePrinter fast_table({"r", "reference us/cmp", "reference total (s)",
                           "optimized us/cmp", "optimized total (s)"});
  std::vector<double> ref_extrapolated;
  std::vector<double> opt_extrapolated;
  for (int r = 0; r <= max_setting; r += step) {
    const std::string suffix = "_r" + std::to_string(r);
    obs::MetricsSnapshot before = obs::SnapshotCounters();
    const PairwiseTiming reference = TimeAllPairs(
        dataset, ref_exemplars,
        [r](std::span<const double> a, std::span<const double> b) {
          return ReferenceFastDtw(a, b, static_cast<size_t>(r)).distance;
        });
    record_pairwise("fastdtw_ref" + suffix, reference, before);
    before = obs::SnapshotCounters();
    const PairwiseTiming optimized = TimeAllPairs(
        dataset, exemplars,
        [r](std::span<const double> a, std::span<const double> b) {
          return FastDtwDistance(a, b, static_cast<size_t>(r));
        });
    record_pairwise("fastdtw_opt" + suffix, optimized, before);
    ref_extrapolated.push_back(reference.ExtrapolatedSeconds(full_pairs));
    opt_extrapolated.push_back(optimized.ExtrapolatedSeconds(full_pairs));
    fast_table.AddRow(
        {TablePrinter::FormatDouble(r, 0),
         TablePrinter::FormatDouble(reference.micros_per_pair(), 1),
         TablePrinter::FormatDouble(ref_extrapolated.back(), 1),
         TablePrinter::FormatDouble(optimized.micros_per_pair(), 1),
         TablePrinter::FormatDouble(opt_extrapolated.back(), 1)});
  }
  std::printf("(a) FastDTW_r (reference = fastdtw-package port, the "
              "implementation the literature uses)\n");
  fast_table.Print();

  // (b) cDTW sweep over window w (percent of N).
  TablePrinter cdtw_table(
      {"w (%)", "us/comparison", "extrapolated total (s)"});
  std::vector<double> cdtw_extrapolated;
  for (int w = 0; w <= max_setting; w += step) {
    DtwBuffer buffer;
    const obs::MetricsSnapshot before = obs::SnapshotCounters();
    const PairwiseTiming timing = TimeAllPairs(
        dataset, exemplars,
        [w, &buffer](std::span<const double> a, std::span<const double> b) {
          return CdtwDistanceFraction(a, b, w / 100.0, CostKind::kSquared,
                                      &buffer);
        });
    record_pairwise("cdtw_w" + std::to_string(w), timing, before);
    cdtw_extrapolated.push_back(timing.ExtrapolatedSeconds(full_pairs));
    cdtw_table.AddRow(
        {TablePrinter::FormatDouble(w, 0),
         TablePrinter::FormatDouble(timing.micros_per_pair(), 1),
         TablePrinter::FormatDouble(cdtw_extrapolated.back(), 1)});
  }
  std::printf("\n(b) cDTW_w (vanilla iterative implementation, no lower "
              "bounds / early abandoning)\n");
  cdtw_table.Print();

  // (c) Multi-core all-pairs throughput: the same comparisons fanned out
  // over a thread pool. The checksum equality line verifies the parallel
  // sweep computed bitwise-identical distances.
  if (threads > 1) {
    std::printf("\n(c) parallel all-pairs throughput (--threads=%zu)\n",
                threads);
    TablePrinter par_table({"measure", "1-thread us/cmp",
                            "N-thread us/cmp", "speedup", "checksums"});
    const auto report = [&](const char* name, const auto& factory) {
      const PairwiseTiming serial =
          TimeAllPairsParallel(dataset, exemplars, 1, factory);
      const PairwiseTiming parallel =
          TimeAllPairsParallel(dataset, exemplars, threads, factory);
      par_table.AddRow(
          {name, TablePrinter::FormatDouble(serial.micros_per_pair(), 1),
           TablePrinter::FormatDouble(parallel.micros_per_pair(), 1),
           TablePrinter::FormatDouble(
               parallel.seconds > 0.0 ? serial.seconds / parallel.seconds
                                      : 0.0,
               2),
           serial.checksum == parallel.checksum ? "bitwise-equal"
                                                : "MISMATCH"});
    };
    const std::string cdtw_name = "cDTW_" + std::to_string(max_setting);
    report(cdtw_name.c_str(), [max_setting]() {
             auto buffer = std::make_shared<DtwBuffer>();
             return [max_setting, buffer](std::span<const double> a,
                                          std::span<const double> b) {
               return CdtwDistanceFraction(a, b, max_setting / 100.0,
                                           CostKind::kSquared, buffer.get());
             };
    });
    report("FastDTW_10 (optimized)", []() {
      return [](std::span<const double> a, std::span<const double> b) {
        return FastDtwDistance(a, b, 10);
      };
    });
    par_table.Print();
  }

  // Index of the sweep entry closest to a requested setting, and the
  // setting that entry actually used (step may not divide it).
  auto nearest = [&](const std::vector<double>& v, int setting) {
    const size_t idx = std::min<size_t>(
        static_cast<size_t>((setting + step / 2) / step), v.size() - 1);
    return std::pair<double, int>(v[idx], static_cast<int>(idx) * step);
  };
  const auto [cdtw_4, cdtw_4_w] = nearest(cdtw_extrapolated, 4);
  const double cdtw_20 = cdtw_extrapolated.back();
  const double ref_0 = ref_extrapolated.front();
  const auto [ref_10, ref_10_r] = nearest(ref_extrapolated, 10);
  const auto [opt_10, opt_10_r] = nearest(opt_extrapolated, 10);
  std::printf(
      "\nShape checks (paper's claims for Fig. 1):\n"
      "  cDTW_%d (optimal w) %7.1f s vs FastDTW_0 (coarsest, reference) "
      "%8.1f s -> cDTW %s (%.1fx)\n"
      "  cDTW_%d (max w)    %7.1f s vs FastDTW_%d (reference)          "
      "%8.1f s -> cDTW %s (%.1fx)\n"
      "  cDTW_%d (max w)    %7.1f s vs FastDTW_%d (our optimized)      "
      "%8.1f s -> cDTW %s\n",
      cdtw_4_w, cdtw_4, ref_0,
      cdtw_4 <= ref_0 ? "wins" : "LOSES (unexpected)", ref_0 / cdtw_4,
      max_setting, cdtw_20, ref_10_r, ref_10,
      cdtw_20 <= ref_10 ? "wins" : "LOSES (unexpected)", ref_10 / cdtw_20,
      max_setting, cdtw_20, opt_10_r, opt_10,
      cdtw_20 <= opt_10 ? "wins even against the optimized port"
                        : "is within a small factor of an aggressively "
                          "optimized FastDTW (still approximate!)");
  report.Finish(json_path);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace warp

int main(int argc, char** argv) { return warp::bench::Main(argc, argv); }
