#include "warp/core/wdtw.h"

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "warp/common/assert.h"

namespace warp {

std::vector<double> MakeWdtwWeights(size_t n, double g, double w_max) {
  WARP_CHECK(n > 0);
  WARP_CHECK(w_max > 0.0);
  std::vector<double> weights(n);
  const double mid = static_cast<double>(n) / 2.0;
  for (size_t d = 0; d < n; ++d) {
    weights[d] =
        w_max / (1.0 + std::exp(-g * (static_cast<double>(d) - mid)));
  }
  return weights;
}

double WdtwDistance(std::span<const double> x, std::span<const double> y,
                    double g, size_t band, CostKind cost) {
  WARP_CHECK_MSG(x.size() == y.size(),
                 "WDTW requires equal lengths (phase-difference weights)");
  WARP_CHECK(!x.empty());
  const std::vector<double> weights = MakeWdtwWeights(x.size(), g);

  // The weighted local cost is a per-cell scale on top of the base cost;
  // the DP itself is the standard two-row banded recurrence.
  return WithCost(cost, [&](auto c) {
    struct WeightedCost {
      const double* x;
      const double* y;
      const double* weights;
      decltype(c) base;
      double operator()(size_t i, size_t j) const {
        const size_t phase = i > j ? i - j : j - i;
        return weights[phase] * base(x[i], y[j]);
      }
    };
    const WarpingWindow window =
        WarpingWindow::SakoeChiba(x.size(), y.size(), band);
    const size_t n = x.size();
    const size_t m = y.size();
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> prev(m + 1, kInf);
    std::vector<double> cur(m + 1, kInf);
    prev[0] = 0.0;
    const WeightedCost cell{x.data(), y.data(), weights.data(), c};
    for (size_t i = 0; i < n; ++i) {
      const auto& range = window.range(i);
      cur[range.lo] = kInf;
      double left = kInf;
      double diag = prev[range.lo];
      for (size_t j = range.lo; j <= range.hi; ++j) {
        const double up = prev[j + 1];
        double best = diag;
        if (up < best) best = up;
        if (left < best) best = left;
        const double value = best + cell(i, j);
        cur[j + 1] = value;
        left = value;
        diag = up;
      }
      // Reset the stale tail of this row's output before it becomes the
      // next row's predecessor row.
      if (i + 1 < n) {
        const auto& next = window.range(i + 1);
        for (size_t k = range.hi + 2; k <= next.hi + 1; ++k) cur[k] = kInf;
      }
      std::swap(prev, cur);
    }
    return prev[m];
  });
}

}  // namespace warp
