#include "warp/ts/time_series.h"

#include <algorithm>
#include <cmath>

#include "warp/common/assert.h"

namespace warp {

TimeSeries TimeSeries::Slice(size_t begin, size_t end) const {
  WARP_CHECK(begin <= end && end <= values_.size());
  TimeSeries out(std::vector<double>(values_.begin() + begin,
                                     values_.begin() + end),
                 label_);
  out.set_name(name_);
  return out;
}

double TimeSeries::Min() const {
  WARP_CHECK(!empty());
  return *std::min_element(values_.begin(), values_.end());
}

double TimeSeries::Max() const {
  WARP_CHECK(!empty());
  return *std::max_element(values_.begin(), values_.end());
}

double TimeSeries::Mean() const {
  WARP_CHECK(!empty());
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double TimeSeries::StdDev() const {
  WARP_CHECK(!empty());
  const double mean = Mean();
  double sum_sq = 0.0;
  for (double v : values_) sum_sq += (v - mean) * (v - mean);
  return std::sqrt(sum_sq / static_cast<double>(values_.size()));
}

bool TimeSeries::HasNonFinite() const {
  for (double v : values_) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

}  // namespace warp
