// Dataset and series I/O.
//
// Supports the UCR-archive text format (one exemplar per line, class label
// first, values separated by tabs, commas, or spaces) so users who have the
// real archive can run every experiment on it, and plain CSV for single
// series. All loaders validate that every value parses and is finite.

#ifndef WARP_TS_IO_H_
#define WARP_TS_IO_H_

#include <string>

#include "warp/ts/dataset.h"
#include "warp/ts/time_series.h"

namespace warp {

// Loading failures (missing file, parse error, non-finite value) are
// reported by returning false and filling *error.
bool LoadUcrFile(const std::string& path, Dataset* dataset,
                 std::string* error);

// Writes in tab-separated UCR format. Returns false on I/O failure.
bool SaveUcrFile(const std::string& path, const Dataset& dataset,
                 std::string* error);

// Loads a single unlabeled series: one value per line, or one line of
// comma/whitespace-separated values.
bool LoadSeriesFile(const std::string& path, TimeSeries* series,
                    std::string* error);

bool SaveSeriesFile(const std::string& path, const TimeSeries& series,
                    std::string* error);

// Parses one UCR-format line (label + values). Exposed for testing.
bool ParseUcrLine(const std::string& line, TimeSeries* series,
                  std::string* error);

}  // namespace warp

#endif  // WARP_TS_IO_H_
