// The Appendix-A adversarial construction (paper Table 2, Figs. 7–8).
//
// FastDTW assumes the PAA-coarsened series has the same basic shape as the
// raw data. The paper defeats that assumption with a pair whose coarse
// version warps in the *opposite* direction to the optimum:
//
//   * Each series carries one BIG feature — a period-2 alternating burst.
//     Averaging adjacent pairs (FastDTW's halve-by-two) cancels it to
//     exactly zero, so it is invisible at every coarse resolution.
//   * Each series also carries one TINY smooth bump that survives
//     coarsening and dominates the low-resolution alignment.
//   * The big features are far apart between the two series in one
//     direction; the tiny bumps are offset in the other direction.
//
// Full DTW aligns the big features (paying only the tiny bumps' cost, a
// near-zero distance). FastDTW's coarse pass sees only the bumps, commits
// to warping the wrong way, and its radius-bounded refinement can never
// reach the big-feature alignment — so it pays the full energy of both
// bursts. The resulting relative error is in the thousands of percent.

#ifndef WARP_GEN_ADVERSARIAL_H_
#define WARP_GEN_ADVERSARIAL_H_

#include <cstddef>
#include <vector>

namespace warp {
namespace gen {

struct AdversarialOptions {
  size_t length = 512;

  // Big (PAA-invisible) burst: alternating +/- amplitude, even-aligned.
  double burst_amplitude = 0.5;
  size_t burst_length = 64;       // Must be even.
  size_t burst_center_a = 96;     // Early in A...
  size_t burst_center_b = 416;    // ...late in B: a large rightward warp.

  // Tiny (PAA-visible) bump: smooth Gaussian.
  double bump_amplitude = 0.04;
  double bump_width = 12.0;
  size_t bump_center_a = 288;     // Later in A...
  size_t bump_center_b = 224;     // ...earlier in B: a leftward warp.
};

struct AdversarialTriple {
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> c;
};

// The pair (A, B) described above.
std::vector<double> MakeAdversarialSeries(size_t burst_center,
                                          size_t bump_center,
                                          const AdversarialOptions& options);

// (A, B, C): A and B as above; C is a slow sine, genuinely different from
// both, whose DTW distance to A and B sits between full-DTW(A,B) (near
// zero) and FastDTW(A,B) (large) — so the two dendrograms flip topology.
AdversarialTriple MakeAdversarialTriple(
    const AdversarialOptions& options = AdversarialOptions());

}  // namespace gen
}  // namespace warp

#endif  // WARP_GEN_ADVERSARIAL_H_
