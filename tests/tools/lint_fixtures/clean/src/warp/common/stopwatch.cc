// Fixture: <chrono> is legal here — the Stopwatch implementation is the
// one place in common/ allowed to touch the clock.
#include <chrono>

namespace warp {
long Nanos() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
}  // namespace warp
