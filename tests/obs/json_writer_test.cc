// Unit tests for the bench-report JSON emitter.

#include "warp/obs/json_writer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

namespace warp {
namespace obs {
namespace {

TEST(JsonWriterTest, EmptyObject) {
  JsonWriter writer;
  writer.BeginObject().EndObject();
  EXPECT_EQ(writer.TakeOutput(), "{}");
}

TEST(JsonWriterTest, EmptyArray) {
  JsonWriter writer;
  writer.BeginArray().EndArray();
  EXPECT_EQ(writer.TakeOutput(), "[]");
}

TEST(JsonWriterTest, ScalarDocument) {
  JsonWriter writer;
  writer.Int(-42);
  EXPECT_EQ(writer.TakeOutput(), "-42");
}

TEST(JsonWriterTest, ObjectWithMixedValues) {
  JsonWriter writer;
  writer.BeginObject()
      .Key("a")
      .Int(1)
      .Key("b")
      .String("two")
      .Key("c")
      .Bool(true)
      .Key("d")
      .Null()
      .Key("e")
      .Uint(18446744073709551615ull)
      .EndObject();
  EXPECT_EQ(writer.TakeOutput(),
            "{\"a\":1,\"b\":\"two\",\"c\":true,\"d\":null,"
            "\"e\":18446744073709551615}");
}

TEST(JsonWriterTest, NestedContainersGetCommasRight) {
  JsonWriter writer;
  writer.BeginObject()
      .Key("rows")
      .BeginArray()
      .BeginObject()
      .Key("x")
      .Int(1)
      .EndObject()
      .BeginObject()
      .Key("x")
      .Int(2)
      .EndObject()
      .EndArray()
      .Key("tail")
      .BeginArray()
      .Int(1)
      .Int(2)
      .Int(3)
      .EndArray()
      .EndObject();
  EXPECT_EQ(writer.TakeOutput(),
            "{\"rows\":[{\"x\":1},{\"x\":2}],\"tail\":[1,2,3]}");
}

TEST(JsonWriterTest, RawValueSplicesVerbatim) {
  JsonWriter writer;
  writer.BeginObject().Key("cfg").RawValue("3.25").EndObject();
  EXPECT_EQ(writer.TakeOutput(), "{\"cfg\":3.25}");
}

TEST(JsonWriterTest, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(JsonWriter::Escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonWriter::Escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::Escape("tab\tnewline\n"), "tab\\tnewline\\n");
  EXPECT_EQ(JsonWriter::Escape(std::string("nul\0byte", 8)),
            "nul\\u0000byte");
  EXPECT_EQ(JsonWriter::Escape("\x01\x1f"), "\\u0001\\u001f");
}

TEST(JsonWriterTest, Utf8PassesThroughUnchanged) {
  const std::string utf8 = "caf\xc3\xa9 \xe6\x97\xa5\xe6\x9c\xac";
  EXPECT_EQ(JsonWriter::Escape(utf8), utf8);
}

TEST(JsonWriterTest, StringValueIsQuotedAndEscaped) {
  JsonWriter writer;
  writer.String("line1\nline2");
  EXPECT_EQ(writer.TakeOutput(), "\"line1\\nline2\"");
}

TEST(JsonWriterTest, DoubleRoundTripsExactly) {
  const double cases[] = {0.0,   1.0,     -1.5,        0.1,
                          1e-30, 1e30,    3.141592653589793,
                          1.0 / 3.0,      5e-324,
                          std::numeric_limits<double>::max()};
  for (const double value : cases) {
    const std::string text = JsonWriter::FormatDouble(value);
    const double parsed = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(parsed, value) << text;
  }
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(JsonWriter::FormatDouble(std::nan("")), "null");
  EXPECT_EQ(JsonWriter::FormatDouble(
                std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(JsonWriter::FormatDouble(
                -std::numeric_limits<double>::infinity()),
            "null");
  JsonWriter writer;
  writer.BeginArray().Double(std::nan("")).Double(2.5).EndArray();
  EXPECT_EQ(writer.TakeOutput(), "[null,2.5]");
}

TEST(JsonWriterTest, NegativeZeroSurvives) {
  const std::string text = JsonWriter::FormatDouble(-0.0);
  const double parsed = std::strtod(text.c_str(), nullptr);
  EXPECT_TRUE(std::signbit(parsed));
}

TEST(JsonWriterDeathTest, ValueWithoutKeyInObjectAborts) {
  EXPECT_DEATH(
      {
        JsonWriter writer;
        writer.BeginObject().Int(1);
      },
      "");
}

TEST(JsonWriterDeathTest, KeyInsideArrayAborts) {
  EXPECT_DEATH(
      {
        JsonWriter writer;
        writer.BeginArray().Key("k");
      },
      "");
}

TEST(JsonWriterDeathTest, SecondTopLevelValueAborts) {
  EXPECT_DEATH(
      {
        JsonWriter writer;
        writer.Int(1);
        writer.Int(2);
      },
      "");
}

TEST(JsonWriterDeathTest, UnclosedContainerAbortsOnTakeOutput) {
  EXPECT_DEATH(
      {
        JsonWriter writer;
        writer.BeginObject();
        writer.TakeOutput();
      },
      "");
}

}  // namespace
}  // namespace obs
}  // namespace warp
