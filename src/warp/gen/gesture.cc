#include "warp/gen/gesture.h"

#include <cmath>

#include "warp/common/assert.h"
#include "warp/gen/warping.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace gen {

namespace {

// Mixes the class seed and id so each class gets an independent template
// stream regardless of the dataset seed.
uint64_t TemplateSeed(int class_id, uint64_t seed) {
  SplitMix64 mix(seed ^ (0xabcdef12345678ULL + static_cast<uint64_t>(class_id)));
  mix.Next();
  return mix.Next();
}

}  // namespace

std::vector<double> GestureTemplate(int class_id, size_t length,
                                    uint64_t seed) {
  WARP_CHECK(class_id >= 0);
  WARP_CHECK(length >= 8);
  Rng rng(TemplateSeed(class_id, seed));

  std::vector<double> series(length, 0.0);
  // Low-frequency sinusoid mixture: 3 components with random frequency,
  // phase and weight.
  for (int component = 0; component < 3; ++component) {
    const double freq = rng.Uniform(0.5, 4.0);
    const double phase = rng.Uniform(0.0, 2.0 * M_PI);
    const double weight = rng.Uniform(0.4, 1.0);
    for (size_t t = 0; t < length; ++t) {
      const double u = static_cast<double>(t) / static_cast<double>(length);
      series[t] += weight * std::sin(2.0 * M_PI * freq * u + phase);
    }
  }
  // A few localized bumps make classes more separable (gesture "strokes").
  const int num_bumps = static_cast<int>(2 + rng.UniformInt(3));
  for (int b = 0; b < num_bumps; ++b) {
    const double center = rng.Uniform(0.1, 0.9) * static_cast<double>(length);
    const double width = rng.Uniform(0.02, 0.08) * static_cast<double>(length);
    const double height = rng.Uniform(-1.5, 1.5);
    for (size_t t = 0; t < length; ++t) {
      const double z = (static_cast<double>(t) - center) / width;
      series[t] += height * std::exp(-0.5 * z * z);
    }
  }
  ZNormalizeInPlace(series);
  return series;
}

TimeSeries MakeGesture(int class_id, const GestureOptions& options,
                       Rng& rng) {
  const std::vector<double> base =
      GestureTemplate(class_id, options.length, options.seed);
  std::vector<double> warped =
      options.warp_fraction > 0.0
          ? ApplyRandomWarp(base, options.warp_fraction, rng)
          : base;
  const double amplitude =
      1.0 + rng.Uniform(-options.amplitude_jitter, options.amplitude_jitter);
  for (double& v : warped) {
    v = amplitude * v + rng.Gaussian(0.0, options.noise_stddev);
  }
  ZNormalizeInPlace(warped);
  return TimeSeries(std::move(warped), class_id);
}

Dataset MakeGestureDataset(size_t per_class, const GestureOptions& options) {
  WARP_CHECK(per_class > 0);
  WARP_CHECK(options.num_classes > 0);
  Rng rng(options.seed);
  Dataset dataset;
  dataset.set_name("synthetic_gestures");
  for (int cls = 0; cls < options.num_classes; ++cls) {
    for (size_t i = 0; i < per_class; ++i) {
      dataset.Add(MakeGesture(cls, options, rng));
    }
  }
  return dataset;
}

MultiSeries MakeMultiGesture(int class_id, size_t num_channels,
                             const GestureOptions& options, Rng& rng) {
  WARP_CHECK(num_channels > 0);
  // All channels of one exemplar share the time-warp: a re-performed
  // gesture is faster or slower as a whole, not per body part.
  const std::vector<double> warp_map = MakeSmoothMonotoneWarp(
      options.length, options.warp_fraction, rng);
  std::vector<std::vector<double>> channels;
  channels.reserve(num_channels);
  for (size_t c = 0; c < num_channels; ++c) {
    // Each channel has its own template, derived from (class, channel).
    const std::vector<double> base = GestureTemplate(
        class_id, options.length,
        options.seed + 0x1000003ULL * (c + 1));
    std::vector<double> warped = ApplyWarpMap(base, warp_map);
    const double amplitude = 1.0 + rng.Uniform(-options.amplitude_jitter,
                                               options.amplitude_jitter);
    for (double& v : warped) {
      v = amplitude * v + rng.Gaussian(0.0, options.noise_stddev);
    }
    ZNormalizeInPlace(warped);
    channels.push_back(std::move(warped));
  }
  return MultiSeries(std::move(channels), class_id);
}

std::vector<MultiSeries> MakeMultiGestureDataset(
    size_t per_class, size_t num_channels, const GestureOptions& options) {
  WARP_CHECK(per_class > 0);
  Rng rng(options.seed);
  std::vector<MultiSeries> dataset;
  dataset.reserve(per_class * static_cast<size_t>(options.num_classes));
  for (int cls = 0; cls < options.num_classes; ++cls) {
    for (size_t i = 0; i < per_class; ++i) {
      dataset.push_back(MakeMultiGesture(cls, num_channels, options, rng));
    }
  }
  return dataset;
}

}  // namespace gen
}  // namespace warp
