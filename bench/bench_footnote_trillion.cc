// Experiment E8 — paper Section 3.4, footnote 2 (the trillion-point
// projection).
//
// The paper: "Averaged over a million comparisons, we found FastDTW_10
// takes 0.1845 milliseconds for N = 128, and 10^12 x 0.1845 ms = 5.8
// years" — versus the UCR suite, which searched one *trillion* points
// under cDTW_5 in 1.4 days (2012 hardware), because exact cDTW admits
// lower bounding, early abandoning and just-in-time normalization that
// FastDTW structurally cannot use. This harness measures both sides on
// this machine: per-comparison FastDTW_10 cost at N=128, and the
// accelerated subsequence-search throughput, then extrapolates each to
// 10^12. It also runs the pruning-cascade ablation (naive vs cascaded).
//
// Flags: --reps (2000), --haystack (200000), --query (128),
//        --json=<path>.

#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "harness/bench_flags.h"
#include "warp/common/stopwatch.h"
#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/core/fastdtw_reference.h"
#include "warp/gen/random_walk.h"
#include "warp/mining/similarity_search.h"
#include "warp/common/metrics.h"
#include "warp/obs/report.h"

namespace warp {
namespace bench {
namespace {

constexpr double kSecondsPerYear = 365.25 * 24 * 3600;
constexpr double kSecondsPerDay = 24 * 3600;

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int reps = static_cast<int>(flags.GetInt("reps", 2000));
  const size_t haystack_len =
      static_cast<size_t>(flags.GetInt("haystack", 200000));
  const size_t query_len = static_cast<size_t>(flags.GetInt("query", 128));
  const size_t threads = SingleCoreThreadsFlag(flags);
  const std::string json_path = JsonFlag(flags);
  SimdFlag(flags);
  flags.Finalize();

  obs::BenchReport report(
      "E8 / Section 3.4 footnote 2",
      "Trillion-point projection: FastDTW_10 at N=128 vs cDTW_5 search");
  report.AddConfig("threads", static_cast<int64_t>(threads));
  report.AddConfig("reps", reps);
  report.AddConfig("haystack", static_cast<int64_t>(haystack_len));
  report.AddConfig("query", static_cast<int64_t>(query_len));

  PrintBanner("E8 / Section 3.4 footnote 2",
              "Trillion-point projection: per-comparison FastDTW_10 at "
              "N=128 vs accelerated cDTW_5 subsequence search");

  Rng rng(888);
  const std::vector<double> x = gen::RandomWalk(query_len, rng);
  const std::vector<double> y = gen::RandomWalk(query_len, rng);

  // Side 1: FastDTW_10 per comparison at N = 128 — the paper's anchor
  // measurement (0.1845 ms averaged over a million comparisons). Both
  // implementations are timed; the paper's own number falls between them.
  double checksum = 0.0;
  const TimingSummary fast = report.MeasureCase(
      "fastdtw_opt_n128",
      [&] { checksum += FastDtwDistance(x, y, 10); }, reps, 50);
  const TimingSummary reference = report.MeasureCase(
      "fastdtw_ref_n128",
      [&] { checksum += ReferenceFastDtw(x, y, 10).distance; },
      std::max(1, reps / 10), 5);
  const double fast_years = 1e12 * fast.mean / kSecondsPerYear;
  const double reference_years = 1e12 * reference.mean / kSecondsPerYear;
  std::printf(
      "FastDTW_10, N=128, per comparison (paper: 0.1845 ms):\n"
      "  optimized port: %.4f ms -> 10^12 comparisons = %5.1f years\n"
      "  reference port: %.4f ms -> 10^12 comparisons = %5.1f years\n"
      "  (paper's projection: 5.8 years)\n\n",
      fast.mean * 1e3, fast_years, reference.mean * 1e3, reference_years);

  // Side 2: accelerated subsequence search under cDTW_5 — one window
  // evaluated per haystack position, so throughput is positions/second.
  std::vector<double> haystack = gen::RandomWalk(haystack_len, rng);
  const std::vector<double> query = gen::RandomWalk(query_len, rng);
  const size_t band = query_len * 5 / 100;

  SearchStats cascade_stats;
  obs::MetricsSnapshot before = obs::SnapshotCounters();
  const SubsequenceMatch match =
      FindBestMatch(haystack, query, band, CostKind::kSquared,
                    &cascade_stats);
  report.AddCase("cdtw5_search_cascade",
                 PerOpSummary(cascade_stats.seconds,
                              static_cast<int64_t>(cascade_stats.windows)),
                 obs::CountersSince(before));
  const double positions_per_second =
      static_cast<double>(cascade_stats.windows) / cascade_stats.seconds;
  const double trillion_days =
      1e12 / positions_per_second / kSecondsPerDay;
  std::printf(
      "Accelerated cDTW_5 search (LB_Kim -> LB_Keogh -> early-abandon "
      "DTW):\n"
      "  %zu-point haystack scanned in %.2f s -> %.2e positions/s\n"
      "  -> one trillion points = %.1f days (paper: 1.4 days on 2012 "
      "hardware)\n"
      "  best match at %zu, distance %.3f\n"
      "  cascade: %llu windows | %llu pruned by LB_Kim | %llu by LB_Keogh "
      "| %llu abandoned | %llu full DTW\n\n",
      haystack_len, cascade_stats.seconds, positions_per_second,
      trillion_days, match.position, match.distance,
      static_cast<unsigned long long>(cascade_stats.windows),
      static_cast<unsigned long long>(cascade_stats.pruned_by_kim),
      static_cast<unsigned long long>(cascade_stats.pruned_by_keogh),
      static_cast<unsigned long long>(cascade_stats.abandoned_dtw),
      static_cast<unsigned long long>(cascade_stats.full_dtw));

  // Ablation: the same search without the cascade, on a prefix sized to
  // finish quickly; compare per-position cost.
  const size_t naive_len = std::min<size_t>(haystack_len, 20000);
  SearchStats naive_stats;
  before = obs::SnapshotCounters();
  FindBestMatchNaive(
      std::span<const double>(haystack).subspan(0, naive_len), query, band,
      CostKind::kSquared, &naive_stats);
  report.AddCase("cdtw5_search_naive",
                 PerOpSummary(naive_stats.seconds,
                              static_cast<int64_t>(naive_stats.windows)),
                 obs::CountersSince(before));
  const double naive_positions_per_second =
      static_cast<double>(naive_stats.windows) / naive_stats.seconds;
  std::printf(
      "Ablation (pruning off): %.2e positions/s -> cascade speedup %.0fx\n",
      naive_positions_per_second,
      positions_per_second / naive_positions_per_second);

  std::printf(
      "\nProjection summary: exact search finishes a trillion points %.0fx "
      "sooner than pairwise FastDTW_10 would (optimized port; %.0fx vs the "
      "reference package)\n",
      fast_years * kSecondsPerYear / (trillion_days * kSecondsPerDay),
      reference_years * kSecondsPerYear / (trillion_days * kSecondsPerDay));
  DoNotOptimize(checksum);
  std::printf("\nWork counters:\n%s", report.CounterTable().c_str());
  report.Finish(json_path);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace warp

int main(int argc, char** argv) { return warp::bench::Main(argc, argv); }
