// Deterministic multi-core execution primitives.
//
// The all-pairs sweeps, 1-NN evaluations, and clustering loops in this
// repository are embarrassingly parallel, but the paper's numbers are
// single-core, so parallelism must be (a) strictly opt-in and (b) bitwise
// reproducible. The contract everything here is built around:
//
//   * Work is split into FIXED-SIZE chunks whose boundaries depend only on
//     (begin, end, grain) — never on the thread count or on scheduling.
//   * Each chunk writes results only to its own slots (per-pair, per-query,
//     or per-chunk storage), so no output depends on interleaving.
//   * Floating-point reductions happen on the calling thread, in chunk (or
//     item) order, reproducing the serial summation order exactly.
//
// Under that contract, running with 1, 2, or 64 threads — or serially with
// no pool at all — produces bitwise-identical results; only wall-clock time
// changes. The determinism tests in tests/mining/parallel_determinism_test.cc
// hold every parallelized hot path to it.

#ifndef WARP_COMMON_PARALLEL_H_
#define WARP_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace warp {

// Worker count used when a caller asks for "auto" (threads == 0): the
// WARP_THREADS environment variable if set to a positive integer, else
// std::thread::hardware_concurrency(), else 1.
size_t DefaultThreadCount();

// Maps a requested thread count to an effective one: 0 = auto (see
// DefaultThreadCount), anything else is taken literally.
size_t ResolveThreadCount(size_t requested);

// A fixed-size pool of worker threads draining one task queue.
//
// Tasks never see exceptions escape: the first exception thrown by any
// task is captured and rethrown from the next Wait() on the calling
// thread. One orchestrator at a time: Submit/Wait are not meant to be
// interleaved from multiple client threads (Wait waits for *all* in-flight
// tasks).
class ThreadPool {
 public:
  // threads == 0 means DefaultThreadCount(); the pool always has >= 1
  // worker.
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished, then rethrows the
  // first captured task exception (if any).
  void Wait();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;  // Queued + currently running tasks.
  bool stop_ = false;
  std::exception_ptr first_exception_;
};

// fn(chunk_begin, chunk_end, worker): one contiguous chunk of the index
// range, plus the slot index of the worker running it (for PerThread
// scratch). Chunks are claimed dynamically for load balance, but their
// boundaries are fixed by `grain` alone, so any chunk-indexed output is
// scheduling-independent.
using ChunkFn = std::function<void(size_t, size_t, size_t)>;

// Runs fn over [begin, end) in chunks of `grain` (>= 1; 0 is treated as
// 1). With a null pool, a single-worker pool, or a single chunk, the
// chunks run inline on the calling thread in ascending order with
// worker == 0 — the serial path spawns nothing. Worker slot indices lie
// in [0, max(1, pool->size())). Rethrows the first exception a chunk
// threw once all chunks have completed or been abandoned.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const ChunkFn& fn);

// Number of chunks ParallelFor will use for a range — callers allocating
// one result slot per chunk size their vectors with this.
inline size_t ChunkCount(size_t begin, size_t end, size_t grain) {
  if (begin >= end) return 0;
  if (grain == 0) grain = 1;
  return (end - begin + grain - 1) / grain;
}

// One default-constructed T per worker slot, padded to a cache line so
// two workers' scratch (DtwWorkspace, envelope storage, stat counters) never
// false-share. Index with the worker argument ParallelFor hands each
// chunk.
template <typename T>
class PerThread {
 public:
  explicit PerThread(size_t slots) : slots_(slots == 0 ? 1 : slots) {}
  explicit PerThread(const ThreadPool* pool)
      : PerThread(pool == nullptr ? 1 : pool->size()) {}

  T& operator[](size_t worker) { return slots_[worker].value; }
  const T& operator[](size_t worker) const { return slots_[worker].value; }
  size_t size() const { return slots_.size(); }

 private:
  struct alignas(64) Slot {
    T value{};
  };
  std::vector<Slot> slots_;
};

}  // namespace warp

#endif  // WARP_COMMON_PARALLEL_H_
