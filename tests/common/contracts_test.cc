// Contract (death) tests: WARP_CHECK guards on public APIs must fire on
// misuse rather than corrupt memory or return garbage.

#include <gtest/gtest.h>

#include "warp/core/distance_matrix.h"
#include "warp/core/dtw.h"
#include "warp/core/window.h"
#include "warp/mining/anomaly.h"
#include "warp/mining/hierarchical_clustering.h"
#include "warp/ts/paa.h"

namespace warp {
namespace {

using ContractsDeathTest = ::testing::Test;

TEST(ContractsDeathTest, DtwRejectsEmptySeries) {
  const std::vector<double> empty;
  const std::vector<double> x = {1.0, 2.0};
  EXPECT_DEATH(DtwDistance(empty, x), "CHECK failed");
  EXPECT_DEATH(CdtwDistance(x, empty, 1), "CHECK failed");
}

TEST(ContractsDeathTest, EuclideanRejectsLengthMismatch) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0, 2.0, 3.0};
  EXPECT_DEATH(EuclideanDistance(a, b), "equal lengths");
}

TEST(ContractsDeathTest, WindowedDtwRejectsShapeMismatch) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.0, 2.0, 3.0};
  const WarpingWindow window = WarpingWindow::Full(2, 3);
  EXPECT_DEATH(WindowedDtwDistance(a, b, window), "CHECK failed");
}

TEST(ContractsDeathTest, PaaRejectsUpsampling) {
  const std::vector<double> x = {1.0, 2.0};
  EXPECT_DEATH(Paa(x, 5), "cannot upsample");
}

TEST(ContractsDeathTest, DistanceMatrixRejectsDiagonalWrite) {
  DistanceMatrix matrix(3);
  EXPECT_DEATH(matrix.set(1, 1, 2.0), "diagonal");
}

TEST(ContractsDeathTest, DiscordRejectsTooShortSeries) {
  const std::vector<double> series(30, 0.0);
  EXPECT_DEATH(FindTopDiscord(series, 20, 0), "two non-overlapping");
}

TEST(ContractsDeathTest, WindowRejectsZeroShape) {
  EXPECT_DEATH(WarpingWindow::Full(0, 5), "CHECK failed");
  EXPECT_DEATH(WarpingWindow::SakoeChiba(5, 0, 1), "CHECK failed");
}

TEST(ContractsDeathTest, ItakuraRejectsSlopeBelowOne) {
  EXPECT_DEATH(WarpingWindow::Itakura(10, 10, 0.9), "slope must exceed 1");
}

TEST(ContractsDeathTest, DendrogramRejectsWrongMergeCount) {
  EXPECT_DEATH(Dendrogram(3, {}), "exactly n-1 merges");
}

}  // namespace
}  // namespace warp
