// Helpers shared by the two FastDTW implementations (the library's
// optimized fastdtw.cc and the published-package port in
// fastdtw_reference.cc). Both recursions must agree on exactly two
// things for their cell-count comparisons to be apples-to-apples:
//
//   * the base-case cutoff — recursion bottoms out when either series is
//     shorter than radius + 2, the reference package's min_time_size; and
//   * the coarsening step — PAA by 2 applied per channel.
//
// Keeping them here (and only here) makes any future divergence a
// compile-visible edit rather than a silent drift between the files.

#ifndef WARP_CORE_FASTDTW_COMMON_H_
#define WARP_CORE_FASTDTW_COMMON_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "warp/ts/multi_series.h"
#include "warp/ts/paa.h"

namespace warp {

// True when the recursion must run an exact DP instead of recursing: the
// expanded window at the next level would already cover everything.
inline bool AtFastDtwBaseCase(size_t n, size_t m, size_t radius) {
  return n < radius + 2 || m < radius + 2;
}

// Channel-wise PAA-by-2 coarsening for multivariate series.
inline MultiSeries HalveMultiByTwo(const MultiSeries& series) {
  std::vector<std::vector<double>> channels;
  channels.reserve(series.num_channels());
  for (size_t c = 0; c < series.num_channels(); ++c) {
    channels.push_back(HalveByTwo(series.channel(c)));
  }
  return MultiSeries(std::move(channels), series.label());
}

}  // namespace warp

#endif  // WARP_CORE_FASTDTW_COMMON_H_
