// Shared implementation of the cluster launcher entry point.
//
// `warp_cluster` and `warp_cli cluster` (flags-only form) are the same
// launcher with two front doors; both parse the same flags and call
// ClusterToolMain() from here so the behavior cannot drift. The launcher
// runs the supervisor (N `warp_serve --worker` processes re-fed from the
// snapshot directory) and the router (the client-facing front end) in
// one process; see docs/SERVING.md, "Multi-process cluster".
//
//   --shards=N            worker processes / store shards (default 1)
//   --snapshot-dir=PATH   *.wsnap directory every worker loads; also the
//                         restart handoff medium (required in practice —
//                         without it workers restart empty)
//   --port=N              router listen port (default 0 = auto; the
//                         bound port is printed as "ready port=<P>")
//   --threads=N           scan threads per worker (default 1)
//   --cache=N             result-cache entries per worker (default 256)
//   --max-queue-depth=N   per-worker batcher admission gate (default 1024)
//   --worker-bin=PATH     warp_serve binary to spawn (default: the
//                         warp_serve next to this launcher)
//   --restart-backoff-ms=N      first restart delay (default 200)
//   --restart-backoff-max-ms=N  backoff ceiling (default 5000)
//   --ping-interval-ms=N  worker liveness ping cadence; 0 disables

#ifndef WARP_TOOLS_CLUSTER_MAIN_H_
#define WARP_TOOLS_CLUSTER_MAIN_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "serve_main.h"
#include "warp/cluster/router.h"
#include "warp/cluster/supervisor.h"

namespace warp {
namespace tools {

// The warp_serve build expected to sit next to this launcher binary;
// falls back to PATH resolution when argv0 carries no directory.
inline std::string SiblingWorkerBinary(const char* argv0) {
  const std::string path = argv0 == nullptr ? "" : argv0;
  const size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "warp_serve";
  return path.substr(0, slash + 1) + "warp_serve";
}

// Builds and runs a supervisor + router from parsed tool flags. Returns
// a process exit code.
inline int ClusterToolMain(const ToolFlags& flags,
                           const std::string& default_worker_binary) {
  cluster::SupervisorOptions sup;
  cluster::RouterOptions router_options;
  sup.worker_binary = default_worker_binary;
  for (const auto& [key, value] : flags) {
    if (key == "shards") {
      char* end = nullptr;
      const long n = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0' || n <= 0) {
        std::fprintf(stderr,
                     "warp_cluster: invalid --shards=%s (expected a positive "
                     "integer)\n",
                     value.c_str());
        return 2;
      }
      sup.shards = static_cast<size_t>(n);
    } else if (key == "snapshot-dir") {
      sup.snapshot_dir = value;
    } else if (key == "port") {
      router_options.port =
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (key == "threads") {
      const long n = std::strtol(value.c_str(), nullptr, 10);
      sup.threads = n < 0 ? 0 : static_cast<size_t>(n);
    } else if (key == "cache") {
      const long n = std::strtol(value.c_str(), nullptr, 10);
      sup.cache_capacity = n < 0 ? 0 : static_cast<size_t>(n);
    } else if (key == "max-queue-depth") {
      const long n = std::strtol(value.c_str(), nullptr, 10);
      sup.max_queue_depth = n < 0 ? 0 : static_cast<size_t>(n);
    } else if (key == "worker-bin") {
      sup.worker_binary = value;
    } else if (key == "restart-backoff-ms") {
      sup.restart_backoff_ms =
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (key == "restart-backoff-max-ms") {
      sup.restart_backoff_max_ms =
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (key == "ping-interval-ms") {
      sup.ping_interval_ms =
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (key == "profile") {
      // Tolerated for the warp_cli front door, like `warp_cli serve`.
    } else {
      std::fprintf(stderr, "warp_cluster: unknown flag --%s\n", key.c_str());
      return 1;
    }
  }

  cluster::Supervisor supervisor(sup);
  std::string error;
  if (!supervisor.Start(&error)) {
    std::fprintf(stderr, "warp_cluster: %s\n", error.c_str());
    return 1;
  }
  // One line per worker before the router's ready line, so harnesses can
  // scrape pids for fault injection (scripts/cluster_smoke.sh).
  for (const cluster::WorkerStatus& status : supervisor.StatusAll()) {
    std::printf("worker shard=%zu pid=%ld port=%d\n", status.shard_id,
                status.pid, status.port);
  }
  std::fflush(stdout);

  cluster::Router router(router_options, &supervisor);
  const int status = cluster::RunRouter(&router);
  supervisor.Stop();
  return status;
}

}  // namespace tools
}  // namespace warp

#endif  // WARP_TOOLS_CLUSTER_MAIN_H_
