// Unit tests for open-boundary (subsequence) DTW.

#include "warp/core/subsequence_dtw.h"

#include <gtest/gtest.h>

#include "warp/core/dtw.h"
#include "warp/gen/random_walk.h"
#include "warp/gen/warping.h"

namespace warp {
namespace {

TEST(SubsequenceDtwTest, ExactEmbeddedCopyScoresZero) {
  Rng rng(181);
  std::vector<double> series = gen::RandomWalk(300, rng);
  const std::vector<double> query(series.begin() + 100,
                                  series.begin() + 150);
  const SubsequenceAlignment alignment = SubsequenceDtw(query, series);
  EXPECT_NEAR(alignment.distance, 0.0, 1e-12);
  EXPECT_EQ(alignment.start, 100u);
  EXPECT_EQ(alignment.end, 149u);
}

TEST(SubsequenceDtwTest, DistanceOnlyMatchesFullVariant) {
  Rng rng(182);
  for (int round = 0; round < 10; ++round) {
    const std::vector<double> series = gen::RandomWalk(120, rng);
    const std::vector<double> query = gen::RandomWalk(30, rng);
    EXPECT_NEAR(SubsequenceDtw(query, series).distance,
                SubsequenceDtwDistance(query, series), 1e-9);
  }
}

TEST(SubsequenceDtwTest, NeverAboveFullDtw) {
  // Aligning to any subsequence can only beat (or tie) explaining the
  // whole series.
  Rng rng(183);
  for (int round = 0; round < 10; ++round) {
    const std::vector<double> series = gen::RandomWalk(80, rng);
    const std::vector<double> query = gen::RandomWalk(40, rng);
    EXPECT_LE(SubsequenceDtwDistance(query, series),
              DtwDistance(query, series) + 1e-9);
  }
}

TEST(SubsequenceDtwTest, FindsWarpedEmbeddedCopy) {
  Rng rng(184);
  std::vector<double> series = gen::RandomWalk(400, rng);
  std::vector<double> query = gen::RandomWalk(60, rng);
  for (double& v : query) v += 20.0;  // Keep it distinct from the noise.
  const std::vector<double> warped = gen::ApplyRandomWarp(query, 0.05, rng);
  for (size_t i = 0; i < warped.size(); ++i) series[250 + i] = warped[i];
  const SubsequenceAlignment alignment = SubsequenceDtw(query, series);
  EXPECT_NEAR(static_cast<double>(alignment.start), 250.0, 5.0);
  EXPECT_NEAR(static_cast<double>(alignment.end), 309.0, 5.0);
}

TEST(SubsequenceDtwTest, PathIsMonotoneAndAnchored) {
  Rng rng(185);
  const std::vector<double> series = gen::RandomWalk(100, rng);
  const std::vector<double> query = gen::RandomWalk(25, rng);
  const SubsequenceAlignment alignment = SubsequenceDtw(query, series);
  ASSERT_FALSE(alignment.path.empty());
  EXPECT_EQ(alignment.path.front().i, 0u);
  EXPECT_EQ(alignment.path.front().j, alignment.start);
  EXPECT_EQ(alignment.path.back().i, query.size() - 1);
  EXPECT_EQ(alignment.path.back().j, alignment.end);
  for (size_t k = 1; k < alignment.path.size(); ++k) {
    const auto& prev = alignment.path[k - 1];
    const auto& cur = alignment.path[k];
    EXPECT_GE(cur.i, prev.i);
    EXPECT_GE(cur.j, prev.j);
    EXPECT_LE(cur.i - prev.i, 1u);
    EXPECT_LE(cur.j - prev.j, 1u);
  }
}

TEST(SubsequenceDtwTest, QueryLongerThanSeriesStillWorks) {
  Rng rng(186);
  const std::vector<double> query = gen::RandomWalk(50, rng);
  const std::vector<double> series = gen::RandomWalk(20, rng);
  const SubsequenceAlignment alignment = SubsequenceDtw(query, series);
  EXPECT_GE(alignment.distance, 0.0);
  EXPECT_LT(alignment.end, series.size());
}

TEST(SubsequenceDtwTest, SingletonQueryPicksClosestPoint) {
  const std::vector<double> query = {5.0};
  const std::vector<double> series = {0.0, 4.0, 9.0, 5.5};
  const SubsequenceAlignment alignment = SubsequenceDtw(query, series);
  EXPECT_EQ(alignment.start, 3u);
  EXPECT_EQ(alignment.end, 3u);
  EXPECT_NEAR(alignment.distance, 0.25, 1e-12);
}

}  // namespace
}  // namespace warp
