// Small path/token helpers shared by the token and project rules.

#ifndef WARP_LINTKIT_RULES_UTIL_H_
#define WARP_LINTKIT_RULES_UTIL_H_

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

#include "warp/lintkit/lexer.h"

namespace warp {
namespace lintkit {

inline bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

inline bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

inline bool IsHeaderPath(std::string_view path) {
  return EndsWith(path, ".h");
}

inline bool IsSourcePath(std::string_view path) {
  return EndsWith(path, ".cc") || EndsWith(path, ".cpp");
}

// "src/warp/core/dtw.cc" -> "core"; "" when not under src/warp/.
inline std::string SubsystemOf(std::string_view path) {
  const std::string_view kPrefix = "src/warp/";
  if (!StartsWith(path, kPrefix)) return "";
  std::string_view rest = path.substr(kPrefix.size());
  const size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return "";
  return std::string(rest.substr(0, slash));
}

// Subsystem of an include target written project-style ("warp/core/dtw.h").
inline std::string IncludeSubsystemOf(std::string_view include_path) {
  const std::string_view kPrefix = "warp/";
  if (!StartsWith(include_path, kPrefix)) return "";
  std::string_view rest = include_path.substr(kPrefix.size());
  const size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return "";
  return std::string(rest.substr(0, slash));
}

// The include-guard macro a header at `path` must use: strip a leading
// "src/warp/", then WARP_ + upper(path with [/.] -> _) + _. Matches the
// convention the PR-1 grep enforced (e.g. src/warp/core/dtw.h ->
// WARP_CORE_DTW_H_, bench/harness/bench_flags.h ->
// WARP_BENCH_HARNESS_BENCH_FLAGS_H_).
inline std::string ExpectedGuard(std::string_view path) {
  std::string_view rel = path;
  const std::string_view kPrefix = "src/warp/";
  if (StartsWith(rel, kPrefix)) rel = rel.substr(kPrefix.size());
  std::string guard = "WARP_";
  for (const char c : rel) {
    if (c == '/' || c == '.') {
      guard.push_back('_');
    } else {
      guard.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
  }
  guard.push_back('_');
  return guard;
}

// True when tokens[i] is the identifier `name` immediately followed by an
// opening parenthesis — the shape of a function-style call or macro use.
inline bool IsCallOf(const std::vector<Token>& tokens, size_t i,
                     std::string_view name) {
  return tokens[i].kind == TokenKind::kIdentifier && tokens[i].text == name &&
         i + 1 < tokens.size() && tokens[i + 1].kind == TokenKind::kPunct &&
         tokens[i + 1].text == "(";
}

// True when the file contains identifier `name` followed by "(".
inline bool ContainsCall(const LexedFile& file, std::string_view name) {
  for (size_t i = 0; i < file.tokens.size(); ++i) {
    if (IsCallOf(file.tokens, i, name)) return true;
  }
  return false;
}

}  // namespace lintkit
}  // namespace warp

#endif  // WARP_LINTKIT_RULES_UTIL_H_
