#ifndef WARP_CORE_MEASURE_H_
#define WARP_CORE_MEASURE_H_

namespace warp {
namespace core {

struct MeasureEntry;
const char* RegistryNote();

}  // namespace core
}  // namespace warp

#endif  // WARP_CORE_MEASURE_H_
