#include "warp/lintkit/project_rules.h"

#include <map>
#include <set>
#include <string_view>
#include <utility>

#include "warp/lintkit/rules_util.h"

namespace warp {
namespace lintkit {

namespace {

void Add(std::vector<Finding>* findings, const char* rule, std::string file,
         size_t line, size_t col, std::string message) {
  Finding finding;
  finding.rule = rule;
  finding.file = std::move(file);
  finding.line = line;
  finding.col = col;
  finding.message = std::move(message);
  findings->push_back(std::move(finding));
}

const LexedFile* FindFile(const ProjectContext& context,
                          std::string_view path) {
  for (const LexedFile& file : *context.files) {
    if (file.path == path) return &file;
  }
  return nullptr;
}

// --- module-layering --------------------------------------------------------

// The declared DAG. Rank R may include rank < R (and itself); edges
// within one rank are forbidden unless listed in kIntraLayerEdges.
struct LayerEntry {
  const char* subsystem;
  int rank;
};
constexpr LayerEntry kLayers[] = {
    {"common", 0},
    {"obs", 1}, {"simd", 1}, {"ts", 1},
    {"core", 2},
    {"check", 3}, {"gen", 3}, {"lintkit", 3}, {"mining", 3}, {"ucr", 3},
    {"serve", 4},
    {"cluster", 5},
};
// Declared intra-layer edges: the z-norm pass vectorizes through the
// simd wrapper, and the exactness oracle validates the 1-NN classifier.
constexpr const char* kIntraLayerEdges[][2] = {
    {"ts", "simd"},
    {"check", "mining"},
};

int RankOf(std::string_view subsystem) {
  for (const LayerEntry& entry : kLayers) {
    if (subsystem == entry.subsystem) return entry.rank;
  }
  return -1;
}

bool IsDeclaredIntraLayerEdge(std::string_view from, std::string_view to) {
  for (const auto& edge : kIntraLayerEdges) {
    if (from == edge[0] && to == edge[1]) return true;
  }
  return false;
}

void ModuleLayeringRule(const ProjectContext& context,
                        std::vector<Finding>* findings) {
  constexpr const char* kRule = "module-layering";
  constexpr const char* kSelf = "src/warp/lintkit/project_rules.cc";

  // Self-check: the declared graph must itself be a DAG. Rank edges only
  // ever point downward, so the only possible cycles run through the
  // declared intra-layer edges; reject reversed duplicates and edges
  // that cross ranks (those must come from the rank order instead).
  for (const auto& edge : kIntraLayerEdges) {
    if (RankOf(edge[0]) != RankOf(edge[1])) {
      Add(findings, kRule, kSelf, 0, 0,
          std::string("declared intra-layer edge ") + edge[0] + " -> " +
              edge[1] + " crosses ranks — express it through the rank order");
    }
    if (IsDeclaredIntraLayerEdge(edge[1], edge[0])) {
      Add(findings, kRule, kSelf, 0, 0,
          std::string("declared intra-layer edges form a cycle: ") + edge[0] +
              " <-> " + edge[1]);
    }
  }

  for (const LexedFile& file : *context.files) {
    const std::string from = SubsystemOf(file.path);
    const bool in_src = StartsWith(file.path, "src/");
    if (in_src && from.empty()) {
      Add(findings, kRule, file.path, 0, 0,
          "src/ file outside any src/warp/<subsystem>/ directory");
      continue;
    }
    if (in_src && RankOf(from) < 0) {
      Add(findings, kRule, file.path, 0, 0,
          "subsystem '" + from +
              "' is not declared in the layering DAG "
              "(src/warp/lintkit/project_rules.cc)");
      continue;
    }
    for (const IncludeDirective& include : file.includes) {
      if (include.angled) continue;  // System headers.
      const std::string to = IncludeSubsystemOf(include.path);
      if (to.empty()) {
        // A quoted include that is not project-style ("warp/...").
        // Outside src/ that is fine (test/bench/tool-local headers);
        // inside src/ it would reach above the library layer.
        if (in_src) {
          Add(findings, kRule, file.path, include.line, 1,
              "src/ file includes non-library header \"" + include.path +
                  "\" — library code includes only \"warp/...\" and system "
                  "headers");
        }
        continue;
      }
      if (!in_src) continue;  // tools/tests/bench/examples sit on top.
      if (to == from) continue;
      const int from_rank = RankOf(from);
      const int to_rank = RankOf(to);
      if (to_rank < 0) {
        Add(findings, kRule, file.path, include.line, 1,
            "include of undeclared subsystem '" + to + "' (\"" +
                include.path + "\")");
        continue;
      }
      const bool allowed =
          from_rank > to_rank || IsDeclaredIntraLayerEdge(from, to);
      if (!allowed) {
        Add(findings, kRule, file.path, include.line, 1,
            "layering violation: " + from + " (rank " +
                std::to_string(from_rank) + ") may not include " + to +
                " (rank " + std::to_string(to_rank) + ") — declared DAG: " +
                "common -> {ts, simd, obs} -> core -> {check, gen, lintkit, "
                "mining, ucr} -> serve -> cluster");
      }
    }
  }
}

// --- own-header-first -------------------------------------------------------

void OwnHeaderFirstRule(const ProjectContext& context,
                        std::vector<Finding>* findings) {
  std::set<std::string> paths;
  for (const LexedFile& file : *context.files) paths.insert(file.path);
  for (const LexedFile& file : *context.files) {
    if (!StartsWith(file.path, "src/") || !IsSourcePath(file.path)) continue;
    const size_t dot = file.path.rfind('.');
    const std::string header = file.path.substr(0, dot) + ".h";
    if (paths.count(header) == 0) continue;  // No sibling header.
    const std::string expected = header.substr(std::string_view("src/").size());
    if (file.includes.empty()) {
      Add(findings, "own-header-first", file.path, 1, 1,
          "no includes; a .cc with a sibling header must include \"" +
              expected + "\" first");
      continue;
    }
    const IncludeDirective& first = file.includes.front();
    if (first.angled || first.path != expected) {
      Add(findings, "own-header-first", file.path, first.line, 1,
          "first include must be the file's own header \"" + expected +
              "\" (found \"" + first.path +
              "\") — proves every header is self-contained");
    }
  }
}

// --- obs-counter-xref -------------------------------------------------------

constexpr const char* kMetricsHeader = "src/warp/common/metrics.h";
constexpr const char* kMetricsSource = "src/warp/common/metrics.cc";
constexpr const char* kHistogramHeader = "src/warp/obs/histogram.h";
constexpr const char* kHistogramSource = "src/warp/obs/histogram.cc";

struct DeclaredCounter {
  std::string json_name;
  size_t line = 0;
};

// One X-macro registry to cross-reference: counters, histograms, and
// gauges all follow the same discipline (an X(name, "json_name") list in
// one header, enumerators spelled Scope::kName at every use site), so
// one rule checks all three.
struct ObsRegistry {
  const char* header;    // File holding the X-macro list.
  const char* source;    // Its .cc; both are excluded from the use scan.
  const char* macro;     // The list's #define name.
  const char* scope;     // Enum name spelled at use sites.
  const char* sentinel;  // The kNum... count enumerator (not a use).
  const char* noun;      // For messages: "counter" / "histogram" / "gauge".
};

constexpr ObsRegistry kObsRegistries[] = {
    {kMetricsHeader, kMetricsSource, "WARP_OBS_COUNTER_LIST", "Counter",
     "kNumCounters", "counter"},
    {kHistogramHeader, kHistogramSource, "WARP_OBS_HISTOGRAM_LIST",
     "Histogram", "kNumHistograms", "histogram"},
    {kHistogramHeader, kHistogramSource, "WARP_OBS_GAUGE_LIST", "Gauge",
     "kNumGauges", "gauge"},
};

// Parses the X(name, "json_name") entries out of one X-macro list. The
// #define body is one spliced logical line, so all of its tokens carry
// in_directive.
std::map<std::string, DeclaredCounter> ParseXMacroList(
    const LexedFile& header, const ObsRegistry& registry,
    std::vector<Finding>* findings) {
  std::map<std::string, DeclaredCounter> declared;
  const std::vector<Token>& tokens = header.tokens;
  size_t begin = tokens.size();
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind == TokenKind::kDirective && tokens[i].text == "define" &&
        tokens[i + 1].text == registry.macro) {
      begin = i + 2;
      break;
    }
  }
  if (begin >= tokens.size()) {
    Add(findings, "obs-counter-xref", header.path, 0, 0,
        std::string(registry.macro) + " #define not found — the " +
            registry.noun + " registry anchor moved");
    return declared;
  }
  for (size_t i = begin; i + 5 < tokens.size() && tokens[i].in_directive;
       ++i) {
    // A following #define (the next registry's list) is still
    // in_directive; its leading directive token marks the end of ours.
    if (tokens[i].kind == TokenKind::kDirective) break;
    if (tokens[i].kind == TokenKind::kIdentifier && tokens[i].text == "X" &&
        tokens[i + 1].text == "(" &&
        tokens[i + 2].kind == TokenKind::kIdentifier &&
        tokens[i + 3].text == "," &&
        tokens[i + 4].kind == TokenKind::kString &&
        tokens[i + 5].text == ")") {
      const std::string& name = tokens[i + 2].text;
      const std::string& json_name = tokens[i + 4].text;
      if (declared.count(name) != 0) {
        Add(findings, "obs-counter-xref", header.path, tokens[i + 2].line,
            tokens[i + 2].col,
            std::string("duplicate ") + registry.noun + " enumerator " + name);
      }
      for (const auto& [other, info] : declared) {
        if (info.json_name == json_name) {
          Add(findings, "obs-counter-xref", header.path, tokens[i + 4].line,
              tokens[i + 4].col,
              std::string("duplicate ") + registry.noun + " json name \"" +
                  json_name + "\" (also " + other + ")");
        }
      }
      declared[name] = {json_name, tokens[i + 2].line};
    }
  }
  if (declared.empty()) {
    Add(findings, "obs-counter-xref", header.path, 0, 0,
        std::string("no X(name, \"json_name\") entries parsed from ") +
            registry.macro);
  }
  return declared;
}

// Cross-references one registry: every declared enumerator must be
// spelled somewhere in library code, every spelled enumerator must be
// declared.
void CrossReferenceRegistry(const ProjectContext& context,
                            const ObsRegistry& registry,
                            std::vector<Finding>* findings) {
  const LexedFile* header = FindFile(context, registry.header);
  if (header == nullptr) return;  // Tree without this registry.
  const std::map<std::string, DeclaredCounter> declared =
      ParseXMacroList(*header, registry, findings);
  if (declared.empty()) return;

  // Use sites: Scope::k... anywhere in library code outside the
  // registry's own definition files. WARP_COUNT / WARP_HISTOGRAM_RECORD /
  // WARP_GAUGE_ADD sites, engine wiring, and snapshot reads all spell
  // the enumerator.
  std::map<std::string, const LexedFile*> used;
  std::map<std::string, size_t> used_line;
  for (const LexedFile& file : *context.files) {
    if (!StartsWith(file.path, "src/")) continue;
    if (file.path == registry.header || file.path == registry.source) continue;
    const std::vector<Token>& tokens = file.tokens;
    for (size_t i = 0; i + 2 < tokens.size(); ++i) {
      if (tokens[i].kind == TokenKind::kIdentifier &&
          tokens[i].text == registry.scope && tokens[i + 1].text == "::" &&
          tokens[i + 2].kind == TokenKind::kIdentifier &&
          StartsWith(tokens[i + 2].text, "k")) {
        const std::string& name = tokens[i + 2].text;
        if (name == registry.sentinel) continue;
        if (used.count(name) == 0) {
          used[name] = &file;
          used_line[name] = tokens[i + 2].line;
        }
      }
    }
  }

  for (const auto& [name, info] : declared) {
    if (used.count(name) == 0) {
      Add(findings, "obs-counter-xref", registry.header, info.line, 1,
          std::string(registry.noun) + " " + name + " (\"" + info.json_name +
              "\") is declared but never bumped anywhere in src/");
    }
  }
  for (const auto& [name, file] : used) {
    if (declared.count(name) == 0) {
      Add(findings, "obs-counter-xref", file->path, used_line[name], 1,
          std::string(registry.scope) + "::" + name +
              " is used but not declared in " + registry.macro);
    }
  }
}

void ObsCounterXrefRule(const ProjectContext& context,
                        std::vector<Finding>* findings) {
  for (const ObsRegistry& registry : kObsRegistries) {
    CrossReferenceRegistry(context, registry, findings);
  }
}

// --- measure-coverage -------------------------------------------------------

constexpr const char* kMeasureRegistry = "src/warp/core/measure.cc";

// Registry entries look like {{"name", "summary", true}, ...}.
std::map<std::string, size_t> ParseMeasureNames(const LexedFile& registry) {
  std::map<std::string, size_t> names;
  const std::vector<Token>& tokens = registry.tokens;
  for (size_t i = 0; i + 7 < tokens.size(); ++i) {
    if (tokens[i].text == "{" && tokens[i + 1].text == "{" &&
        tokens[i + 2].kind == TokenKind::kString &&
        tokens[i + 3].text == "," &&
        tokens[i + 4].kind == TokenKind::kString &&
        tokens[i + 5].text == "," &&
        tokens[i + 6].kind == TokenKind::kIdentifier &&
        (tokens[i + 6].text == "true" || tokens[i + 6].text == "false") &&
        tokens[i + 7].text == "}") {
      names.emplace(tokens[i + 2].text, tokens[i + 2].line);
    }
  }
  return names;
}

bool ContainsStringLiteral(const LexedFile& file, std::string_view text) {
  for (const Token& token : file.tokens) {
    if (token.kind == TokenKind::kString && token.text == text) return true;
  }
  return false;
}

bool ContainsIdentifier(const LexedFile& file, std::string_view text) {
  for (const Token& token : file.tokens) {
    if (token.kind == TokenKind::kIdentifier && token.text == text) {
      return true;
    }
  }
  return false;
}

void MeasureCoverageRule(const ProjectContext& context,
                         std::vector<Finding>* findings) {
  const LexedFile* registry = FindFile(context, kMeasureRegistry);
  if (registry == nullptr) return;  // Tree without the measure registry.
  const std::map<std::string, size_t> names = ParseMeasureNames(*registry);
  if (names.empty()) {
    Add(findings, "measure-coverage", kMeasureRegistry, 0, 0,
        "no {{\"name\", \"summary\", exact}} registry entries parsed — the "
        "registry anchor moved");
    return;
  }

  struct CoverageTarget {
    const char* path;
    const char* what;
    bool enumeration_suffices;
  };
  // The golden test pins one value per measure, so it must spell every
  // name; the bake-off and SIMD parity suites may instead prove they
  // enumerate the registry (RegisteredMeasures()).
  constexpr CoverageTarget kTargets[] = {
      {"tests/core/golden_measures_test.cc", "golden pin", false},
      {"bench/bench_measures_bakeoff.cc", "bake-off", true},
      {"tests/core/simd_test.cc", "SIMD parity", true},
  };
  for (const CoverageTarget& target : kTargets) {
    const LexedFile* file = FindFile(context, target.path);
    if (file == nullptr) {
      Add(findings, "measure-coverage", target.path, 0, 0,
          std::string("registry coverage target missing: every measure "
                      "needs a ") +
              target.what + " entry");
      continue;
    }
    if (target.enumeration_suffices &&
        ContainsIdentifier(*file, "RegisteredMeasures")) {
      continue;
    }
    for (const auto& [name, line] : names) {
      if (!ContainsStringLiteral(*file, name)) {
        Add(findings, "measure-coverage", file->path, 0, 0,
            "measure \"" + name + "\" (registered at " + kMeasureRegistry +
                ":" + std::to_string(line) + ") has no " + target.what +
                " coverage in this file");
      }
    }
  }
}

// --- bench-flag-wiring ------------------------------------------------------

void BenchFlagWiringRule(const ProjectContext& context,
                         std::vector<Finding>* findings) {
  for (const LexedFile& file : *context.files) {
    if (!StartsWith(file.path, "bench/") || !IsSourcePath(file.path)) {
      continue;
    }
    size_t harness_line = 0;
    for (const IncludeDirective& include : file.includes) {
      if (include.path == "harness/bench_flags.h") {
        harness_line = include.line;
        break;
      }
    }
    if (harness_line == 0) continue;  // Not on the shared flag harness.

    // --threads may be consumed via the shared helpers or, for harnesses
    // with a documented non-default default, a direct GetInt("threads").
    bool threads = ContainsCall(file, "ThreadsFlag") ||
                   ContainsCall(file, "SingleCoreThreadsFlag");
    const std::vector<Token>& tokens = file.tokens;
    for (size_t i = 0; !threads && i + 2 < tokens.size(); ++i) {
      if (IsCallOf(tokens, i, "GetInt") &&
          tokens[i + 2].kind == TokenKind::kString &&
          tokens[i + 2].text == "threads") {
        threads = true;
      }
    }
    if (!threads) {
      Add(findings, "bench-flag-wiring", file.path, harness_line, 1,
          "bench binary does not wire --threads (ThreadsFlag / "
          "SingleCoreThreadsFlag / GetInt(\"threads\", ...))");
    }
    if (!ContainsCall(file, "JsonFlag")) {
      Add(findings, "bench-flag-wiring", file.path, harness_line, 1,
          "bench binary does not wire --json (JsonFlag)");
    }
    if (!ContainsCall(file, "SimdFlag")) {
      Add(findings, "bench-flag-wiring", file.path, harness_line, 1,
          "bench binary does not wire --simd (SimdFlag)");
    }
    if (!ContainsCall(file, "Finalize")) {
      Add(findings, "bench-flag-wiring", file.path, harness_line, 1,
          "bench binary never calls Finalize() — unknown flags would not "
          "fail fast");
    }
  }
}

// --- test-registration ------------------------------------------------------

void TestRegistrationRule(const ProjectContext& context,
                          std::vector<Finding>* findings) {
  for (const LexedFile& file : *context.files) {
    if (!StartsWith(file.path, "tests/") || !EndsWith(file.path, "_test.cc")) {
      continue;
    }
    const std::string rel =
        file.path.substr(std::string_view("tests/").size());
    if (context.tests_cmake.find(rel) == std::string::npos) {
      Add(findings, "test-registration", file.path, 1, 1,
          "test file is not registered in tests/CMakeLists.txt — the suite "
          "would silently never run");
    }
  }
}

const std::vector<ProjectRule> kProjectRules = {
    {"module-layering",
     "the actual include graph matches the declared subsystem DAG",
     ModuleLayeringRule},
    {"own-header-first",
     "every src/ .cc includes its own header first",
     OwnHeaderFirstRule},
    {"obs-counter-xref",
     "obs registries (counters, histograms, gauges) and their enumerator "
     "use sites cross-reference exactly",
     ObsCounterXrefRule},
    {"measure-coverage",
     "every registered measure is covered by golden, bake-off, and SIMD "
     "parity suites",
     MeasureCoverageRule},
    {"bench-flag-wiring",
     "every bench on the shared harness wires --threads/--json/--simd and "
     "finalizes flags",
     BenchFlagWiringRule},
    {"test-registration",
     "every tests/**/*_test.cc is registered in tests/CMakeLists.txt",
     TestRegistrationRule},
};

}  // namespace

const std::vector<ProjectRule>& ProjectRules() { return kProjectRules; }

}  // namespace lintkit
}  // namespace warp
