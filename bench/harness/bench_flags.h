// Minimal --key=value flag parsing for the experiment harnesses.
//
// Every bench binary accepts scaling flags (sample sizes, repetition
// counts) so the full paper-scale sweeps can be run on bigger hardware
// while the defaults finish in seconds on a laptop. Unknown flags abort
// with a message listing what was seen, so typos don't silently run the
// default configuration.

#ifndef WARP_BENCH_HARNESS_BENCH_FLAGS_H_
#define WARP_BENCH_HARNESS_BENCH_FLAGS_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include "warp/common/parallel.h"

namespace warp {
namespace bench {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
        std::exit(2);
      }
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "true";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  ~Flags() {
    // Catch typos: every provided flag must have been consumed.
    for (const auto& [key, value] : values_) {
      if (consumed_.count(key) == 0) {
        std::fprintf(stderr, "warning: unknown flag --%s=%s ignored\n",
                     key.c_str(), value.c_str());
      }
    }
  }

  int64_t GetInt(const std::string& name, int64_t default_value) {
    consumed_.insert(name);
    const auto it = values_.find(name);
    return it == values_.end() ? default_value
                               : std::strtoll(it->second.c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& name, double default_value) {
    consumed_.insert(name);
    const auto it = values_.find(name);
    return it == values_.end() ? default_value
                               : std::strtod(it->second.c_str(), nullptr);
  }

  bool GetBool(const std::string& name, bool default_value) {
    consumed_.insert(name);
    const auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    return it->second != "false" && it->second != "0";
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> consumed_;
};

// Shared --threads flag. Default 1 keeps every harness paper-faithful
// (single core); --threads=0 means auto (WARP_THREADS env, else
// hardware_concurrency); --threads=N uses N pool workers.
inline size_t ThreadsFlag(Flags& flags) {
  const int64_t value = flags.GetInt("threads", 1);
  return value <= 0 ? DefaultThreadCount() : static_cast<size_t>(value);
}

// Standard experiment banner so every harness's output is self-describing.
inline void PrintBanner(const char* experiment_id, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", experiment_id, description);
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace warp

#endif  // WARP_BENCH_HARNESS_BENCH_FLAGS_H_
