// Exactness oracles: the optimized never disagrees with the naive.
//
// Every acceleration in this library (early abandoning, PrunedDTW, the
// lower-bound cascade inside the 1-NN classifier) is *exact*: it must
// return bit-for-bit the decision — and numerically the distance — of the
// naive computation it replaces. FastDTW is the deliberate exception: it
// is admissible-from-above (its path cost can only overshoot the true DTW
// distance). These oracles machine-check both sides of that contract plus
// the metric-style sanity identities (self-distance zero, symmetry).
//
// All oracles return false and explain the violation through `error`
// (never null); the property-fuzz harness in tests/check/ drives them
// across randomized inputs, bands, thresholds, and thread counts.

#ifndef WARP_CHECK_EXACTNESS_ORACLE_H_
#define WARP_CHECK_EXACTNESS_ORACLE_H_

#include <cstddef>
#include <span>
#include <string>

#include "warp/common/cost.h"
#include "warp/ts/dataset.h"

namespace warp {
namespace check {

// CdtwDistanceAbandoning(x, y, band, threshold) must either return the
// exact cDTW_w distance, or +infinity — and then only when the exact
// distance really exceeds `threshold`.
bool CheckAbandoningExact(std::span<const double> x,
                          std::span<const double> y, size_t band,
                          double threshold, CostKind cost, double tolerance,
                          std::string* error);

// PrunedCdtwDistance must equal CdtwDistance for any admissible upper
// bound (pass a negative `upper_bound` for the default Euclidean bound).
bool CheckPrunedExact(std::span<const double> x, std::span<const double> y,
                      size_t band, CostKind cost, double upper_bound,
                      double tolerance, std::string* error);

// FastDTW's contract: its distance is >= the exact DTW distance, its path
// is a valid warping path for (|x|, |y|), and the path's summed cost
// equals the distance it reports.
bool CheckFastDtwAdmissible(std::span<const double> x,
                            std::span<const double> y, size_t radius,
                            CostKind cost, double tolerance,
                            std::string* error);

// DTW(a, a) and cDTW_w(a, a) are exactly zero (the diagonal path costs
// nothing and no path costs less).
bool CheckSelfDistanceZero(std::span<const double> x, size_t band,
                           CostKind cost, double tolerance,
                           std::string* error);

// cDTW_w(x, y) == cDTW_w(y, x) for equal lengths (the DP is symmetric in
// its arguments up to summation order).
bool CheckSymmetry(std::span<const double> x, std::span<const double> y,
                   size_t band, CostKind cost, double tolerance,
                   std::string* error);

// The accelerated 1-NN classifier (LB_Kim -> LB_Keogh -> early-abandoning
// cDTW cascade) must agree with brute-force 1-NN over plain CdtwDistance
// on every query: same nearest-neighbor distance and same label. `threads`
// is forwarded to the accelerated engine's Evaluate to cross-check its
// aggregate accuracy at that thread count as well.
bool CheckCascadeExact(const Dataset& train, const Dataset& test,
                       size_t band, CostKind cost, size_t threads,
                       double tolerance, std::string* error);

}  // namespace check
}  // namespace warp

#endif  // WARP_CHECK_EXACTNESS_ORACLE_H_
