// Shared machinery for the all-pairs timing experiments (Figs. 1 and 4).
//
// The paper times *every* pairwise comparison of a dataset (400,960 pairs
// for Fig. 1). On one laptop core that sweep takes days, so the harness
// times a uniformly-sampled subset of the pairs and reports both the
// measured per-comparison cost and the extrapolated total — the paper's
// claims are about which curve is lower, which sampling preserves.

#ifndef WARP_BENCH_HARNESS_PAIRWISE_H_
#define WARP_BENCH_HARNESS_PAIRWISE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "warp/common/stopwatch.h"
#include "warp/ts/dataset.h"

namespace warp {
namespace bench {

struct PairwiseTiming {
  uint64_t pairs_timed = 0;
  double seconds = 0.0;
  double checksum = 0.0;  // Sum of distances: defeats dead-code elimination
                          // and doubles as a cross-run sanity check.

  double micros_per_pair() const {
    return pairs_timed > 0 ? seconds * 1e6 / static_cast<double>(pairs_timed)
                           : 0.0;
  }

  double ExtrapolatedSeconds(uint64_t total_pairs) const {
    return micros_per_pair() * 1e-6 * static_cast<double>(total_pairs);
  }
};

// Times `measure` over all pairs (i, j), i < j, of the first
// `sample_count` series of `dataset`.
inline PairwiseTiming TimeAllPairs(const Dataset& dataset,
                                   size_t sample_count,
                                   const std::function<double(
                                       std::span<const double>,
                                       std::span<const double>)>& measure) {
  const size_t n = std::min(sample_count, dataset.size());
  PairwiseTiming timing;
  Stopwatch watch;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      timing.checksum += measure(dataset[i].view(), dataset[j].view());
      ++timing.pairs_timed;
    }
  }
  timing.seconds = watch.ElapsedSeconds();
  return timing;
}

inline uint64_t TotalPairs(uint64_t count) { return count * (count - 1) / 2; }

}  // namespace bench
}  // namespace warp

#endif  // WARP_BENCH_HARNESS_PAIRWISE_H_
