// Pairwise distance matrices.
//
// Every all-pairs experiment in the paper (Figs. 1, 4; Table 2) reduces to
// filling a symmetric matrix with some measure. The measure is a
// std::function so exact DTW, cDTW, FastDTW, and Euclidean plug in
// uniformly; hierarchical clustering consumes the result.

#ifndef WARP_CORE_DISTANCE_MATRIX_H_
#define WARP_CORE_DISTANCE_MATRIX_H_

#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace warp {

using SeriesMeasure =
    std::function<double(std::span<const double>, std::span<const double>)>;

// Symmetric n x n matrix with zero diagonal.
class DistanceMatrix {
 public:
  explicit DistanceMatrix(size_t n);

  size_t size() const { return n_; }

  double at(size_t i, size_t j) const;
  void set(size_t i, size_t j, double value);  // Sets (i,j) and (j,i).

  // Renders the upper triangle as an aligned table (Table 2 style).
  std::string ToString(std::span<const std::string> labels,
                       int precision = 3) const;

 private:
  size_t n_;
  // Condensed upper-triangle storage, row-major, excluding the diagonal.
  size_t CondensedIndex(size_t i, size_t j) const;
  std::vector<double> values_;
};

// Condensed upper-triangle geometry shared by the parallel all-pairs
// loops here and in bench/harness/pairwise.h: pairs (i, j), i < j, of an
// n x n matrix are numbered row-major 0 .. n(n-1)/2 - 1.

// First condensed index of row i.
inline size_t CondensedRowStart(size_t i, size_t n) {
  return i * (2 * n - i - 1) / 2;
}

// Inverse mapping: condensed index -> (i, j). O(1) via the row quadratic,
// with an integer fix-up so float rounding can never misplace a pair.
std::pair<size_t, size_t> CondensedPairFromIndex(size_t index, size_t n);

// Fills the matrix by evaluating `measure` on each unordered pair.
//
// With threads > 1 the condensed pair range is partitioned into fixed
// chunks filled by a ThreadPool; each pair writes only its own matrix
// slot, so the result is bitwise-identical to the serial fill at any
// thread count. `measure` is invoked concurrently and must be safe to
// call from multiple threads (the library's distance kernels are, as
// long as no shared mutable DtwWorkspace is captured). threads == 0 means
// DefaultThreadCount().
DistanceMatrix ComputePairwiseMatrix(
    const std::vector<std::vector<double>>& series,
    const SeriesMeasure& measure, size_t threads = 1);

}  // namespace warp

#endif  // WARP_CORE_DISTANCE_MATRIX_H_
