#ifndef WARP_COMMON_METRICS_H_
#define WARP_COMMON_METRICS_H_

#include <cstdint>

#define WARP_OBS_COUNTER_LIST(X) \
  X(kUsed, "used")

namespace warp {
namespace obs {

enum class Counter : uint32_t {
#define X(name, json_name) name,
  WARP_OBS_COUNTER_LIST(X)
#undef X
      kNumCounters,
};

void Bump(Counter counter);

}  // namespace obs
}  // namespace warp

#endif  // WARP_COMMON_METRICS_H_
