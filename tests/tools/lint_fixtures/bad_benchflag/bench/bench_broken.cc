#include "harness/bench_flags.h"

int main(int argc, char** argv) {
  warp::bench::Flags flags(argc, argv);
  const bool json = JsonFlag(flags);
  (void)json;
  flags.Finalize();
  return 0;
}
