#include "warp/ts/paa.h"

#include <cmath>

#include "warp/common/assert.h"

namespace warp {

std::vector<double> Paa(std::span<const double> values, size_t num_segments) {
  WARP_CHECK(num_segments > 0);
  WARP_CHECK_MSG(num_segments <= values.size(),
                 "PAA cannot upsample; use ResampleLinear");
  const size_t n = values.size();
  if (num_segments == n) return {values.begin(), values.end()};

  // Each output segment covers n / num_segments input samples; fractional
  // boundary samples contribute proportionally to both adjacent segments.
  std::vector<double> out(num_segments, 0.0);
  const double span_width = static_cast<double>(n) / static_cast<double>(num_segments);
  for (size_t s = 0; s < num_segments; ++s) {
    const double lo = static_cast<double>(s) * span_width;
    const double hi = lo + span_width;
    double acc = 0.0;
    size_t first = static_cast<size_t>(lo);
    for (size_t i = first; static_cast<double>(i) < hi && i < n; ++i) {
      const double seg_lo = std::max(lo, static_cast<double>(i));
      const double seg_hi = std::min(hi, static_cast<double>(i + 1));
      acc += values[i] * (seg_hi - seg_lo);
    }
    out[s] = acc / span_width;
  }
  return out;
}

std::vector<double> HalveByTwo(std::span<const double> values) {
  const size_t half = values.size() / 2;
  std::vector<double> out(half);
  for (size_t i = 0; i < half; ++i) {
    out[i] = 0.5 * (values[2 * i] + values[2 * i + 1]);
  }
  return out;
}

std::vector<double> ResampleLinear(std::span<const double> values,
                                   size_t new_length) {
  WARP_CHECK(!values.empty());
  WARP_CHECK(new_length > 0);
  const size_t n = values.size();
  std::vector<double> out(new_length);
  if (new_length == 1) {
    out[0] = values[0];
    return out;
  }
  if (n == 1) {
    out.assign(new_length, values[0]);
    return out;
  }
  const double step =
      static_cast<double>(n - 1) / static_cast<double>(new_length - 1);
  for (size_t i = 0; i < new_length; ++i) {
    const double pos = static_cast<double>(i) * step;
    size_t lo = static_cast<size_t>(pos);
    if (lo >= n - 1) lo = n - 2;
    const double frac = pos - static_cast<double>(lo);
    out[i] = values[lo] * (1.0 - frac) + values[lo + 1] * frac;
  }
  return out;
}

std::vector<double> Downsample(std::span<const double> values, size_t factor) {
  WARP_CHECK(factor > 0);
  std::vector<double> out;
  out.reserve((values.size() + factor - 1) / factor);
  for (size_t i = 0; i < values.size(); i += factor) out.push_back(values[i]);
  return out;
}

}  // namespace warp
