// Clustering residential power-demand nights (the paper's Case C domain).
//
// Builds a month of midnight-1AM power traces (some with the dishwasher
// program at varying start times), clusters them with hierarchical
// agglomerative clustering under wide-window cDTW, and computes a DBA
// (DTW Barycenter Averaging) prototype per cluster. Shows that the wide
// window groups the shifted dishwasher nights together while Euclidean
// scatters them.
//
// Build & run:  ./build/examples/power_clustering

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "warp/core/distance_matrix.h"
#include "warp/core/dtw.h"
#include "warp/gen/power_demand.h"
#include "warp/mining/dba.h"
#include "warp/mining/evaluation.h"
#include "warp/mining/hierarchical_clustering.h"

int main() {
  const size_t kNights = 30;
  const size_t kLength = 450;  // One hour at one sample per 8 seconds.
  const warp::Dataset month =
      warp::gen::MakePowerDemandDataset(kNights, kLength, 0.4, 99);

  std::vector<std::vector<double>> traces;
  std::vector<int> labels;
  for (const auto& night : month.series()) {
    traces.push_back(night.values());
    labels.push_back(night.label());
  }
  const auto counts = month.ClassCounts();
  std::printf("%zu nights: %zu quiet, %zu with the dishwasher program\n\n",
              month.size(),
              counts.count(warp::gen::kQuietNightLabel)
                  ? counts.at(warp::gen::kQuietNightLabel)
                  : 0,
              counts.count(warp::gen::kDishwasherNightLabel)
                  ? counts.at(warp::gen::kDishwasherNightLabel)
                  : 0);

  // Wide-window cDTW (the Case-C estimate: W = 40%) vs Euclidean.
  const warp::DistanceMatrix wide = warp::ComputePairwiseMatrix(
      traces, [](std::span<const double> a, std::span<const double> b) {
        return warp::CdtwDistanceFraction(a, b, 0.40);
      });
  const warp::DistanceMatrix euclid = warp::ComputePairwiseMatrix(
      traces, [](std::span<const double> a, std::span<const double> b) {
        return warp::EuclideanDistance(a, b);
      });

  const warp::Dendrogram wide_tree =
      warp::AgglomerativeCluster(wide, warp::Linkage::kAverage);
  const warp::Dendrogram euclid_tree =
      warp::AgglomerativeCluster(euclid, warp::Linkage::kAverage);

  const std::vector<int> wide_clusters = wide_tree.CutIntoClusters(2);
  const std::vector<int> euclid_clusters = euclid_tree.CutIntoClusters(2);
  std::printf("2-cluster quality vs ground truth (Rand / adjusted Rand / "
              "purity):\n");
  std::printf("  cDTW_40%% : %.2f / %.2f / %.2f\n",
              warp::RandIndex(wide_clusters, labels),
              warp::AdjustedRandIndex(wide_clusters, labels),
              warp::Purity(wide_clusters, labels));
  std::printf("  Euclidean: %.2f / %.2f / %.2f   <- misses time-shifted "
              "programs\n\n",
              warp::RandIndex(euclid_clusters, labels),
              warp::AdjustedRandIndex(euclid_clusters, labels),
              warp::Purity(euclid_clusters, labels));

  // DBA prototype of the dishwasher cluster.
  std::map<int, std::vector<std::vector<double>>> by_cluster;
  for (size_t i = 0; i < traces.size(); ++i) {
    by_cluster[wide_clusters[i]].push_back(traces[i]);
  }
  for (const auto& [cluster, members] : by_cluster) {
    warp::DbaOptions dba_options;
    dba_options.iterations = 5;
    dba_options.band = kLength * 40 / 100;
    const warp::DbaResult prototype =
        warp::DtwBarycenterAverage(members, dba_options);
    double peak = 0.0;
    for (double v : prototype.barycenter) peak = std::max(peak, v);
    std::printf("cluster %d: %zu nights, DBA prototype peak %.2f kW "
                "(%s)\n",
                cluster, members.size(), peak,
                peak > 1.0 ? "dishwasher-like" : "quiet baseline");
  }
  return 0;
}
