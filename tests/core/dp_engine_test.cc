// Engine-level regression tests for warp/core/dp_engine.h: the stale
// row-tail reset contract and the workspace_allocs steady-state
// guarantee.

#include "warp/core/dp_engine.h"

#include <vector>

#include <gtest/gtest.h>

#include "warp/common/random.h"
#include "warp/core/dtw.h"
#include "warp/gen/gesture.h"
#include "warp/gen/random_walk.h"
#include "warp/mining/nn_classifier.h"
#include "warp/common/metrics.h"

namespace warp {
namespace {

// --------------------------------------------------------------------------
// Stale row-tail reset.
//
// The two-row engine reuses its scratch rows across rows and across calls,
// so any cell the previous row did NOT explore still holds a finite value
// from two rows back (or from an earlier call on the same workspace). The
// engine owns resetting that tail to +inf before each row; every kernel
// that narrows or re-widens its explored range per row depends on it.

// PrunedDTW is the harshest consumer: with a tight upper bound, each row's
// explored range shrinks below the band, so the next row reads cells past
// the previous row's last explored column on almost every row. If the
// engine's pre-row tail reset regresses, those reads pick up stale finite
// costs from two rows back and the "exact" pruned distance silently
// diverges from plain cDTW.
TEST(DpEngineStaleTailTest, PrunedMatchesPlainUnderTightBound) {
  DtwWorkspace workspace;  // Shared across all calls: maximally stale.
  uint64_t total_pruned_cells = 0;
  uint64_t total_plain_cells = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    const std::vector<double> x = gen::RandomWalk(128, rng);
    const std::vector<double> y = gen::RandomWalk(128, rng);
    for (const size_t band : {size_t{4}, size_t{13}, size_t{128}}) {
      uint64_t plain_cells = 0;
      const double plain = CdtwDistance(x, y, band, CostKind::kSquared,
                                        &workspace, &plain_cells);
      // The exact distance as the upper bound prunes as hard as an exact
      // bound can while still being admissible.
      uint64_t pruned_cells = 0;
      const double pruned =
          PrunedCdtwDistance(x, y, band, CostKind::kSquared, plain,
                             &workspace, &pruned_cells);
      EXPECT_EQ(pruned, plain) << "seed=" << seed << " band=" << band;
      total_pruned_cells += pruned_cells;
      total_plain_cells += plain_cells;
    }
  }
  // The test only has teeth if pruning actually narrowed rows.
  EXPECT_LT(total_pruned_cells, total_plain_cells);
}

// Direct re-widening pattern: a window whose rows are narrow, then wide.
// The wide row's right tail reads prev-row cells the narrow row never
// wrote; with a workspace deliberately poisoned by a larger earlier call,
// a missing reset would read the earlier call's finite values.
TEST(DpEngineStaleTailTest, NarrowThenWideWindowIgnoresPoisonedWorkspace) {
  Rng rng(7);
  const std::vector<double> x = gen::RandomWalk(64, rng);
  const std::vector<double> y = gen::RandomWalk(64, rng);

  DtwWorkspace poisoned;
  {
    // Fill the workspace with small finite values: a self-comparison
    // leaves near-zero cumulative costs in both rows.
    Rng rng2(8);
    const std::vector<double> big = gen::RandomWalk(256, rng2);
    (void)CdtwDistance(big, big, 256, CostKind::kSquared, &poisoned);
  }

  // Itakura: one cell in the first row, widening toward the middle. Every
  // widening step reads a prev-row cell outside the previous range.
  const WarpingWindow window = WarpingWindow::Itakura(64, 64, 2.0);
  const double fresh = WindowedDtwDistance(x, y, window);
  const double reused =
      WindowedDtwDistance(x, y, window, CostKind::kSquared, &poisoned);
  EXPECT_EQ(reused, fresh);

  // Same property for the banded kernel at a narrow band.
  const double fresh_band = CdtwDistance(x, y, 3);
  const double reused_band =
      CdtwDistance(x, y, 3, CostKind::kSquared, &poisoned);
  EXPECT_EQ(reused_band, fresh_band);
}

// --------------------------------------------------------------------------
// workspace_allocs: every row (re)allocation bumps the counter, and
// steady-state loops over a reused workspace must be allocation-free.

TEST(DpEngineWorkspaceTest, AllocsFlatAcrossRepeatedCallsOnOneWorkspace) {
  if (!obs::kProfilingEnabled) GTEST_SKIP() << "profiling disabled";
  Rng rng(11);
  const std::vector<double> x = gen::RandomWalk(96, rng);
  const std::vector<double> y = gen::RandomWalk(96, rng);

  // Warm up every scratch path the loop exercises: the banded and full
  // calls may run the SIMD wavefront (wave buffers), the pruned call
  // always runs the row engine (row buffers).
  DtwWorkspace workspace;
  (void)CdtwDistance(x, y, 10, CostKind::kSquared, &workspace);
  (void)DtwDistance(x, y, CostKind::kSquared, nullptr, &workspace);
  (void)PrunedCdtwDistance(x, y, 10, CostKind::kSquared, -1.0, &workspace);

  const obs::MetricsSnapshot before = obs::SnapshotCounters();
  for (int i = 0; i < 50; ++i) {
    (void)CdtwDistance(x, y, 10, CostKind::kSquared, &workspace);
    (void)DtwDistance(x, y, CostKind::kSquared, nullptr, &workspace);
    (void)PrunedCdtwDistance(x, y, 10, CostKind::kSquared, -1.0, &workspace);
  }
  const obs::MetricsSnapshot delta = obs::CountersSince(before);
  EXPECT_EQ(delta.values[static_cast<size_t>(
                obs::Counter::kWorkspaceAllocs)],
            0u)
      << "steady-state distance calls must not reallocate";
}

TEST(DpEngineWorkspaceTest, GrowthBumpsTheCounterOnce) {
  if (!obs::kProfilingEnabled) GTEST_SKIP() << "profiling disabled";
  DtwWorkspace workspace;
  const obs::MetricsSnapshot before = obs::SnapshotCounters();
  workspace.PrepareRows(64);
  workspace.PrepareRows(32);   // Shrink: reuse, no allocation.
  workspace.PrepareRows(64);   // Back within capacity: no allocation.
  workspace.PrepareRows(128);  // Growth: one more allocation.
  const obs::MetricsSnapshot delta = obs::CountersSince(before);
  EXPECT_EQ(delta.values[static_cast<size_t>(
                obs::Counter::kWorkspaceAllocs)],
            2u);
}

// Repeated 1-NN queries are the flagship steady-state loop: after the
// first query warms the classifier's thread-local workspace, further
// queries must not touch the allocator through the DP engine.
TEST(DpEngineWorkspaceTest, RepeatedNnQueriesStayFlat) {
  if (!obs::kProfilingEnabled) GTEST_SKIP() << "profiling disabled";
  gen::GestureOptions options;
  options.length = 96;
  options.num_classes = 3;
  options.seed = 23;
  const Dataset data = gen::MakeGestureDataset(6, options);
  const auto [train, test] = data.StratifiedSplit(0.5);
  const AcceleratedNnClassifier classifier(train, 5);

  for (const TimeSeries& query : test.series()) {
    (void)classifier.Classify(query.view());  // Warm up.
  }
  const obs::MetricsSnapshot before = obs::SnapshotCounters();
  for (int round = 0; round < 5; ++round) {
    for (const TimeSeries& query : test.series()) {
      (void)classifier.Classify(query.view());
    }
  }
  const obs::MetricsSnapshot delta = obs::CountersSince(before);
  EXPECT_EQ(delta.values[static_cast<size_t>(
                obs::Counter::kWorkspaceAllocs)],
            0u)
      << "steady-state 1-NN queries must be allocation-free in the engine";
}

}  // namespace
}  // namespace warp
