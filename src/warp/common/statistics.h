// Descriptive statistics and histogram construction.
//
// Used by the benchmark harnesses (timing summaries) and by the Fig. 2
// reproduction, which histograms best-warping-window and series-length
// distributions over the UCR archive metadata.

#ifndef WARP_COMMON_STATISTICS_H_
#define WARP_COMMON_STATISTICS_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace warp {

// Basic moments and order statistics of a sample.
struct SampleStats {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // Sample standard deviation (n-1 denominator).
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

SampleStats ComputeStats(std::span<const double> values);

double Mean(std::span<const double> values);
double StdDev(std::span<const double> values);
double Median(std::span<const double> values);

// Linear-interpolated percentile, p in [0, 100].
double Percentile(std::span<const double> values, double p);

// A fixed-width histogram over [lo, hi); values outside the range are
// clamped into the first/last bin so every sample is counted.
class Histogram {
 public:
  Histogram(double lo, double hi, int num_bins);

  void Add(double value);
  void AddAll(std::span<const double> values);

  int num_bins() const { return static_cast<int>(counts_.size()); }
  size_t count(int bin) const { return counts_[bin]; }
  size_t total() const { return total_; }
  double bin_lo(int bin) const { return lo_ + bin * width_; }
  double bin_hi(int bin) const { return lo_ + (bin + 1) * width_; }

  // Renders an ASCII bar chart, one row per bin, scaled to `max_width`
  // characters. Suitable for reproducing the paper's histogram figures in
  // console output.
  std::string Render(int max_width = 50) const;

 private:
  double lo_;
  double width_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace warp

#endif  // WARP_COMMON_STATISTICS_H_
