#include "warp/common/stopwatch.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "warp/common/assert.h"
#include "warp/common/statistics.h"

namespace warp {

std::string TimingSummary::ToString() const {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "%.3f ms (std %.3f, min %.3f, med %.3f, p95 %.3f, p99 %.3f, "
                "max %.3f, n=%d)",
                mean * 1e3, stddev * 1e3, min * 1e3, median * 1e3, p95 * 1e3,
                p99 * 1e3, max * 1e3, repetitions);
  return buffer;
}

TimingSummary SummarizeSamples(const std::vector<double>& samples) {
  WARP_CHECK(!samples.empty());
  TimingSummary summary;
  summary.repetitions = static_cast<int>(samples.size());
  summary.samples = samples;
  summary.min = std::numeric_limits<double>::infinity();
  summary.max = 0.0;

  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double elapsed : samples) {
    sum += elapsed;
    sum_sq += elapsed * elapsed;
    if (elapsed < summary.min) summary.min = elapsed;
    if (elapsed > summary.max) summary.max = elapsed;
  }
  const int repetitions = summary.repetitions;
  summary.total = sum;
  summary.mean = sum / repetitions;
  const double variance =
      repetitions > 1
          ? std::max(0.0, (sum_sq - sum * sum / repetitions) /
                              (repetitions - 1))
          : 0.0;
  summary.stddev = std::sqrt(variance);
  summary.median = Median(samples);
  summary.p95 = Percentile(samples, 95.0);
  summary.p99 = Percentile(samples, 99.0);
  return summary;
}

TimingSummary PerOpSummary(double total_seconds, int64_t ops) {
  WARP_CHECK(ops > 0);
  TimingSummary summary;
  summary.repetitions = ops > std::numeric_limits<int>::max()
                            ? std::numeric_limits<int>::max()
                            : static_cast<int>(ops);
  const double per_op = total_seconds / static_cast<double>(ops);
  summary.mean = per_op;
  summary.min = per_op;
  summary.max = per_op;
  summary.median = per_op;
  summary.p95 = per_op;
  summary.p99 = per_op;
  summary.total = total_seconds;
  return summary;
}

TimingSummary MeasureRepeated(const std::function<void()>& fn,
                              int repetitions, int warmup) {
  WARP_CHECK(repetitions > 0);
  for (int i = 0; i < warmup; ++i) fn();

  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(repetitions));
  for (int i = 0; i < repetitions; ++i) {
    Stopwatch watch;
    fn();
    samples.push_back(watch.ElapsedSeconds());
  }
  return SummarizeSamples(samples);
}

}  // namespace warp
