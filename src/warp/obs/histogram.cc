#include "warp/obs/histogram.h"

#include <mutex>
#include <vector>

namespace warp {
namespace obs {

const char* HistogramName(Histogram histogram) {
  static constexpr const char* kNames[kNumHistograms] = {
#define WARP_OBS_DECLARE_NAME(name, json_name) json_name,
      WARP_OBS_HISTOGRAM_LIST(WARP_OBS_DECLARE_NAME)
#undef WARP_OBS_DECLARE_NAME
  };
  const size_t index = static_cast<size_t>(histogram);
  return index < kNumHistograms ? kNames[index] : "invalid_histogram";
}

const char* GaugeName(Gauge gauge) {
  static constexpr const char* kNames[kNumGauges] = {
#define WARP_OBS_DECLARE_NAME(name, json_name) json_name,
      WARP_OBS_GAUGE_LIST(WARP_OBS_DECLARE_NAME)
#undef WARP_OBS_DECLARE_NAME
  };
  const size_t index = static_cast<size_t>(gauge);
  return index < kNumGauges ? kNames[index] : "invalid_gauge";
}

namespace {

// Global histogram-slab registry, leaked for the same teardown-safety
// reasons as the counter registry in warp/common/metrics.cc.
struct Registry {
  std::mutex mutex;
  std::vector<HistogramSlab*> slabs;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace

namespace internal {

thread_local HistogramSlab* local_histogram_slab = nullptr;

HistogramSlab* RegisterLocalHistogramSlab() {
  // Leaked on purpose: snapshots taken after this thread exits must
  // still see its contribution.
  HistogramSlab* slab = new HistogramSlab();
  Registry& registry = GlobalRegistry();
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.slabs.push_back(slab);
  }
  local_histogram_slab = slab;
  return slab;
}

std::atomic<int64_t>& GaugeCell(Gauge gauge) {
  static std::array<std::atomic<int64_t>, kNumGauges>* cells =
      new std::array<std::atomic<int64_t>, kNumGauges>();
  return (*cells)[static_cast<size_t>(gauge)];
}

}  // namespace internal

uint64_t HistogramData::Percentile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // 1-based rank of the requested quantile, clamped into [1, count].
  const double exact_rank = q * static_cast<double>(count);
  uint64_t rank = static_cast<uint64_t>(exact_rank);
  if (static_cast<double>(rank) < exact_rank) ++rank;  // ceil
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return HistogramBucketBound(i);
  }
  return HistogramBucketBound(kHistogramBuckets - 1);
}

bool HistogramSnapshot::AllEmpty() const {
  for (const HistogramData& data : series) {
    if (!data.Empty()) return false;
  }
  return true;
}

HistogramSnapshot operator-(const HistogramSnapshot& a,
                            const HistogramSnapshot& b) {
  auto saturating = [](uint64_t x, uint64_t y) {
    return x >= y ? x - y : uint64_t{0};
  };
  HistogramSnapshot delta;
  for (size_t h = 0; h < kNumHistograms; ++h) {
    delta.series[h].count = saturating(a.series[h].count, b.series[h].count);
    delta.series[h].sum = saturating(a.series[h].sum, b.series[h].sum);
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      delta.series[h].buckets[i] =
          saturating(a.series[h].buckets[i], b.series[h].buckets[i]);
    }
  }
  return delta;
}

HistogramSnapshot SnapshotHistograms() {
  HistogramSnapshot snapshot;
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const HistogramSlab* slab : registry.slabs) {
    for (size_t h = 0; h < kNumHistograms; ++h) {
      const HistogramSlab::Series& series = slab->series[h];
      HistogramData& data = snapshot.series[h];
      data.count += series.count.load(std::memory_order_relaxed);
      data.sum += series.sum.load(std::memory_order_relaxed);
      for (size_t i = 0; i < kHistogramBuckets; ++i) {
        data.buckets[i] += series.buckets[i].load(std::memory_order_relaxed);
      }
    }
  }
  return snapshot;
}

HistogramSnapshot HistogramsSince(const HistogramSnapshot& before) {
  return SnapshotHistograms() - before;
}

void ResetHistograms() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (HistogramSlab* slab : registry.slabs) {
    for (size_t h = 0; h < kNumHistograms; ++h) {
      HistogramSlab::Series& series = slab->series[h];
      series.count.store(0, std::memory_order_relaxed);
      series.sum.store(0, std::memory_order_relaxed);
      for (size_t i = 0; i < kHistogramBuckets; ++i) {
        series.buckets[i].store(0, std::memory_order_relaxed);
      }
    }
  }
}

GaugeSnapshot SnapshotGauges() {
  GaugeSnapshot snapshot;
  for (size_t g = 0; g < kNumGauges; ++g) {
    snapshot.values[g] = GaugeValue(static_cast<Gauge>(g));
  }
  return snapshot;
}

}  // namespace obs
}  // namespace warp
