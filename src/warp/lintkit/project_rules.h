// Cross-file project invariants — the checks no per-TU tool can do.
//
// Six rules, each verifying one whole-repo property against the actual
// source tree (docs/STATIC_ANALYSIS.md documents every one):
//
//   module-layering     the declared subsystem DAG
//                           common -> {ts, simd, obs} -> core
//                                  -> {check, gen, lintkit, mining, ucr}
//                                  -> serve
//                       (plus the declared intra-layer edges ts->simd and
//                       check->mining) matches the actual include graph,
//                       and src/ never includes tool/test/bench headers.
//   own-header-first    every src/ .cc file's first #include is its own
//                       header, so every header is proven self-contained.
//   obs-counter-xref    the WARP_OBS_COUNTER_LIST X-macro and the
//                       Counter::k... use sites cross-reference exactly:
//                       declared-but-never-bumped and bumped-but-
//                       undeclared both fail, as do duplicate names.
//   measure-coverage    every measure registered in warp/core/measure.cc
//                       is covered by the golden pin test, the bake-off
//                       bench, and the SIMD parity test (each either
//                       enumerates RegisteredMeasures() or names every
//                       measure explicitly).
//   bench-flag-wiring   every bench binary on the shared flag harness
//                       wires --threads, --json, and --simd, and calls
//                       Finalize() so typos fail fast.
//   test-registration   every tests/**/*_test.cc is registered in
//                       tests/CMakeLists.txt (no orphan suites).

#ifndef WARP_LINTKIT_PROJECT_RULES_H_
#define WARP_LINTKIT_PROJECT_RULES_H_

#include <string>
#include <vector>

#include "warp/lintkit/diagnostics.h"
#include "warp/lintkit/lexer.h"

namespace warp {
namespace lintkit {

// Everything the project rules see: the lexed tree plus the raw text of
// the non-C++ files individual rules cross-reference.
struct ProjectContext {
  const std::vector<LexedFile>* files = nullptr;
  std::string tests_cmake;  // tests/CMakeLists.txt contents ("" if absent).
};

struct ProjectRule {
  const char* id;
  const char* summary;
  void (*run)(const ProjectContext& context, std::vector<Finding>* findings);
};

// All project rules, in canonical order.
const std::vector<ProjectRule>& ProjectRules();

}  // namespace lintkit
}  // namespace warp

#endif  // WARP_LINTKIT_PROJECT_RULES_H_
