// Bounded LRU cache of fully computed query answers.
//
// Keyed on everything that determines an answer: dataset epoch, operation,
// measure + every parameter, and a hash of the query values (plus the raw
// lengths, so hash collisions across different shapes are impossible to
// confuse; a 64-bit FNV-1a collision within one shape is accepted as
// negligible against the cost of storing full queries). Because the engine
// is deterministic at any thread count, a hit is bitwise-identical to
// recomputation — tests/serve/result_cache_test.cc holds it to that.
//
// Partial (deadline-clipped) responses are never inserted: they are not a
// function of the request alone.
//
// Thread-safe; hit/miss/evict totals go to the obs registry
// (serve_cache_hits / serve_cache_misses / serve_cache_evictions).

#ifndef WARP_SERVE_RESULT_CACHE_H_
#define WARP_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "warp/serve/request.h"

namespace warp {
namespace serve {

// The canonical cache key for `request` against dataset `epoch`.
// Deliberately includes every MeasureParams field (measures ignore the
// ones they do not read, so two requests differing only in an ignored
// field cache separately — a small redundancy traded for the guarantee
// that the key can never alias two different answers).
// Deliberately excludes `request.trace`: asking for stage timings must
// not change what is looked up or stored (docs/SERVING.md).
std::string CacheKey(const ServeRequest& request, uint64_t epoch);

class ResultCache {
 public:
  // capacity == 0 disables caching (every lookup is a miss, nothing is
  // stored).
  explicit ResultCache(size_t capacity);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // On hit, copies the cached answer into *response (the caller re-stamps
  // the response id) and refreshes recency.
  bool Lookup(const std::string& key, ServeResponse* response);

  // Inserts (or refreshes) `response` under `key`, evicting the least
  // recently used entries above capacity. Partial or failed responses are
  // ignored.
  void Insert(const std::string& key, const ServeResponse& response);

  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }

  // Process-lifetime totals for this cache instance (the obs registry
  // aggregates across instances).
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

 private:
  struct Entry {
    std::string key;
    ServeResponse response;
  };

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // Front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace serve
}  // namespace warp

#endif  // WARP_SERVE_RESULT_CACHE_H_
