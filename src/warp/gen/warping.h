// Smooth monotone time-warps.
//
// Several generators need "the same shape, performed a little faster here
// and slower there" — a gesture re-performed, a live rendition of a song.
// This module builds random smooth monotone index maps with a bounded
// deviation from the identity and resamples series along them. The bound
// is exactly the paper's W: the natural amount of warping in a domain,
// expressed as a fraction of the series length.

#ifndef WARP_GEN_WARPING_H_
#define WARP_GEN_WARPING_H_

#include <cstddef>
#include <span>
#include <vector>

#include "warp/common/random.h"

namespace warp {
namespace gen {

// A monotone map from output index to (fractional) input position:
// map[0] == 0, map[n-1] == n-1, map strictly non-decreasing, and
// |map[i] - i| <= max_warp_fraction * n for all i.
std::vector<double> MakeSmoothMonotoneWarp(size_t n, double max_warp_fraction,
                                           Rng& rng, int num_knots = 8);

// Samples `values` at the (fractional) positions of `warp_map` with linear
// interpolation. warp_map values must lie in [0, values.size() - 1].
std::vector<double> ApplyWarpMap(std::span<const double> values,
                                 std::span<const double> warp_map);

// Convenience: MakeSmoothMonotoneWarp + ApplyWarpMap.
std::vector<double> ApplyRandomWarp(std::span<const double> values,
                                    double max_warp_fraction, Rng& rng);

}  // namespace gen
}  // namespace warp

#endif  // WARP_GEN_WARPING_H_
