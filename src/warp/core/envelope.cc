#include "warp/core/envelope.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "warp/common/assert.h"
#include "warp/common/metrics.h"
#include "warp/simd/dispatch.h"
#include "warp/simd/vdouble.h"

namespace warp {

namespace {

// Sliding-window extrema by doubling: B_{p+1}[i] = op(B_p[i], B_p[i+2^p])
// covers a window twice as wide, and a k-wide window is op of two
// (possibly overlapping) 2^P-wide windows, so the whole envelope is
// log2(k) branch-free elementwise passes — vector-friendly where the
// monotonic deque is serial and branchy. Max/min are idempotent, so the
// overlap is exact, and they are selections (no arithmetic), so every
// output equals an input element — the same value the deque produces.
// The one divergence: a window holding both +0.0 and -0.0 may select
// either; they compare equal, which is all downstream LB sums observe.
//
// The input sits in a scratch array padded by `band` identity elements
// (-inf for max, +inf for min) per side, which makes the clamped edge
// windows fall out of the same unclamped formula, plus kLanes slack so
// every intermediate pass can run full overhanging vectors (garbage
// propagates only into slots no valid output ever reads).
template <bool kIsMax>
void SlidingExtrema(const double* values, size_t n, size_t band,
                    std::vector<double>& scratch_a,
                    std::vector<double>& scratch_b, double* out) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const double identity = kIsMax ? -kInf : kInf;
  const size_t k = 2 * band + 1;
  const size_t padded = n + 2 * band;
  scratch_a.assign(padded + simd::kLanes, identity);
  scratch_b.assign(padded + simd::kLanes, identity);
  std::copy(values, values + n, scratch_a.data() + band);

  const auto op = [](simd::vdouble a, simd::vdouble b) {
    if constexpr (kIsMax) {
      return MaxPreferFirst(a, b);
    } else {
      return MinPreferFirst(a, b);
    }
  };

  double* src = scratch_a.data();
  double* dst = scratch_b.data();
  size_t width = 1;
  while (2 * width <= k) {
    const size_t count = padded - 2 * width + 1;
    for (size_t i = 0; i < count; i += simd::kLanes) {
      op(simd::vdouble::Load(src + i), simd::vdouble::Load(src + i + width))
          .Store(dst + i);
      WARP_COUNT(obs::Counter::kSimdBlocks);
    }
    std::swap(src, dst);
    width *= 2;
  }
  // src[i] now covers [i, i + width); out[i] is the window [i, i + k) of
  // the padded array, i.e. the clamped [i - band, i + band] of values.
  const size_t shift = k - width;
  size_t i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    op(simd::vdouble::Load(src + i), simd::vdouble::Load(src + i + shift))
        .Store(out + i);
    WARP_COUNT(obs::Counter::kSimdBlocks);
  }
  if (i < n) {
    const size_t rest = n - i;
    op(simd::vdouble::Load(src + i), simd::vdouble::Load(src + i + shift))
        .StoreMasked(out + i, rest);
    WARP_COUNT_ADD(obs::Counter::kSimdScalarTail, rest);
  }
}

}  // namespace

Envelope ComputeEnvelope(std::span<const double> values, size_t band) {
  WARP_CHECK(!values.empty());
  const size_t n = values.size();
  WARP_COUNT(obs::Counter::kEnvelopeBuilds);
  WARP_COUNT_ADD(obs::Counter::kEnvelopePoints, n);
  Envelope env;
  env.upper.resize(n);
  env.lower.resize(n);

  // A band beyond n-1 clamps to the same all-of-array windows; capping
  // it keeps the scratch arrays O(n).
  const size_t eff_band = std::min(band, n - 1);
  if (simd::EnvelopeEligible(eff_band)) {
    std::vector<double> scratch_a;
    std::vector<double> scratch_b;
    SlidingExtrema<true>(values.data(), n, eff_band, scratch_a, scratch_b,
                         env.upper.data());
    SlidingExtrema<false>(values.data(), n, eff_band, scratch_a, scratch_b,
                          env.lower.data());
  } else {
    // Monotonic deques of indices: max_deque's values are decreasing,
    // min_deque's increasing. Each index enters and leaves each deque at
    // most once, so the whole pass is O(n).
    std::vector<size_t> max_deque;
    std::vector<size_t> min_deque;
    size_t max_head = 0;
    size_t min_head = 0;

    auto push = [&](size_t idx) {
      while (max_deque.size() > max_head &&
             values[max_deque.back()] <= values[idx]) {
        max_deque.pop_back();
      }
      max_deque.push_back(idx);
      while (min_deque.size() > min_head &&
             values[min_deque.back()] >= values[idx]) {
        min_deque.pop_back();
      }
      min_deque.push_back(idx);
    };

    // The window for output i is [i - band, i + band] clamped; indices
    // are pushed as they come into reach and heads advance as they fall
    // out.
    size_t next_to_push = 0;
    for (size_t i = 0; i < n; ++i) {
      const size_t window_end = std::min(n - 1, i + band);
      while (next_to_push <= window_end) push(next_to_push++);
      const size_t window_start = i > band ? i - band : 0;
      while (max_deque[max_head] < window_start) ++max_head;
      while (min_deque[min_head] < window_start) ++min_head;
      env.upper[i] = values[max_deque[max_head]];
      env.lower[i] = values[min_deque[min_head]];
    }
  }
#ifndef NDEBUG
  // Debug-build oracle hook: the tube must contain the series itself —
  // LB_Keogh silently stops lower-bounding if it does not.
  for (size_t i = 0; i < n; ++i) {
    WARP_DCHECK(env.lower[i] <= values[i] && values[i] <= env.upper[i]);
  }
#endif
  return env;
}

Envelope ComputeEnvelopeNaive(std::span<const double> values, size_t band) {
  WARP_CHECK(!values.empty());
  const size_t n = values.size();
  WARP_COUNT(obs::Counter::kEnvelopeBuilds);
  WARP_COUNT_ADD(obs::Counter::kEnvelopePoints, n);
  Envelope env;
  env.upper.resize(n);
  env.lower.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i > band ? i - band : 0;
    const size_t hi = std::min(n - 1, i + band);
    double upper = values[lo];
    double lower = values[lo];
    for (size_t k = lo + 1; k <= hi; ++k) {
      upper = std::max(upper, values[k]);
      lower = std::min(lower, values[k]);
    }
    env.upper[i] = upper;
    env.lower[i] = lower;
  }
  return env;
}

}  // namespace warp
