// Matrix profile (self-join) via a STOMP-style diagonal computation.
//
// For every window of length m, the matrix profile stores the squared
// z-normalized Euclidean distance to its nearest non-trivial-match
// neighbor, and the profile index stores where that neighbor is. Motifs
// are the profile's minima, discords its maxima — the O(n^2)-total,
// O(1)-per-cell upgrade of the brute-force discovery in
// warp/mining/anomaly.h (which remains as the DTW-capable reference).
//
// Implementation: running dot products along matrix diagonals
// (QT(i+1, j+1) = QT(i, j) - t[i]t[j] + t[i+m]t[j+m]) with distances via
// the Pearson identity d^2 = 2m(1 - corr). An exclusion zone of m/2
// around the diagonal suppresses trivial self-matches. Constant windows
// (zero variance) are handled with the usual convention: two constants
// match perfectly, a constant against anything else is maximally distant.

#ifndef WARP_MINING_MATRIX_PROFILE_H_
#define WARP_MINING_MATRIX_PROFILE_H_

#include <cstddef>
#include <span>
#include <vector>

namespace warp {

struct MatrixProfile {
  size_t window = 0;              // m.
  std::vector<double> profile;    // Squared z-normalized ED to the NN.
  std::vector<size_t> index;      // Position of that nearest neighbor.

  size_t size() const { return profile.size(); }
};

// Self-join matrix profile; series must have at least m + m/2 + 1 points
// so at least one non-excluded pair exists.
MatrixProfile ComputeMatrixProfile(std::span<const double> series, size_t m);

// Convenience extractors. Positions are window starts.
struct ProfileMotif {
  size_t position_a = 0;
  size_t position_b = 0;
  double distance = 0.0;  // Squared z-normalized ED.
};

struct ProfileDiscord {
  size_t position = 0;
  double nn_distance = 0.0;
};

ProfileMotif TopMotif(const MatrixProfile& profile);
ProfileDiscord TopDiscord(const MatrixProfile& profile);

}  // namespace warp

#endif  // WARP_MINING_MATRIX_PROFILE_H_
