// Tests for the warp_lint analyzer (src/warp/lintkit/).
//
// Three layers:
//  1. Lexer unit tests on inline sources: comments, strings, raw
//     strings, and line splices must tokenize the way the rules assume.
//  2. Fixture-corpus tests: tests/tools/lint_fixtures/ holds one
//     mini-repo per rule with a deliberate violation (plus one fully
//     clean tree). Each rule must fire on its fixture, stay silent on
//     the clean tree, and go quiet when disabled — proving every
//     finding is attributable to exactly one rule.
//  3. Self-check + CLI: the analyzer must run clean over this very
//     repository, and the warp_lint binary must honor its exit-code
//     and JSON contracts.
//
// Fixture trees are never compiled; the analyzer only lexes them. The
// real-repo scan skips any directory named lint_fixtures, so the
// deliberate violations below never pollute the repository's own run.
//
// Note on self-scanning: this file is part of the repository scan, so
// suppression-pragma syntax and banned identifiers appear only inside
// string literals, which the lexer treats as opaque.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "warp/lintkit/analyzer.h"
#include "warp/lintkit/lexer.h"

namespace warp {
namespace lintkit {
namespace {

std::string FixturePath(const std::string& tree) {
  return std::string(WARP_LINT_FIXTURES_DIR) + "/" + tree;
}

AnalyzerResult RunFixture(const std::string& tree,
                   std::vector<std::string> disabled = {}) {
  AnalyzerConfig config;
  config.root = FixturePath(tree);
  config.disabled_rules = std::move(disabled);
  return RunAnalyzer(config);
}

size_t CountRule(const AnalyzerResult& result, const std::string& rule) {
  size_t n = 0;
  for (const Finding& finding : result.findings) {
    if (finding.rule == rule) ++n;
  }
  return n;
}

// --- 1. Lexer ---------------------------------------------------------------

TEST(LexerTest, CommentsAndStringsProduceNoTokens) {
  const std::string source =
      "int a = 1;  // trailing mention of rand() and srand(1)\n"
      "/* block mention of socket(2, 1, 0) */\n"
      "const char* s = \"assert(true) mt19937\";\n";
  const LexedFile file = LexFile("src/warp/gen/x.cc", source);
  for (const Token& token : file.tokens) {
    if (token.kind != TokenKind::kIdentifier) continue;
    EXPECT_NE(token.text, "rand");
    EXPECT_NE(token.text, "srand");
    EXPECT_NE(token.text, "socket");
    EXPECT_NE(token.text, "assert");
    EXPECT_NE(token.text, "mt19937");
  }
  // The string literal itself survives as one opaque token.
  bool saw_string = false;
  for (const Token& token : file.tokens) {
    if (token.kind == TokenKind::kString) {
      saw_string = true;
      EXPECT_EQ(token.text, "assert(true) mt19937");
    }
  }
  EXPECT_TRUE(saw_string);
}

TEST(LexerTest, RawStringContentsAreOpaque) {
  const std::string source =
      "const char* r = R\"x(assert(1) )quote\" still inside )x\";\n"
      "int tail = 2;\n";
  const LexedFile file = LexFile("src/warp/gen/raw.cc", source);
  bool saw_raw = false;
  for (const Token& token : file.tokens) {
    EXPECT_NE(token.text, "assert");
    if (token.kind == TokenKind::kString &&
        token.text.find("still inside") != std::string::npos) {
      saw_raw = true;
    }
  }
  EXPECT_TRUE(saw_raw);
  // Lexing resumed correctly after the raw delimiter.
  bool saw_tail = false;
  for (const Token& token : file.tokens) {
    if (token.kind == TokenKind::kIdentifier && token.text == "tail") {
      saw_tail = true;
    }
  }
  EXPECT_TRUE(saw_tail);
}

TEST(LexerTest, LineSpliceIsTransparentInsideIdentifiers) {
  // A banned call split across a splice must still produce one token,
  // otherwise a violation could hide behind a backslash-newline.
  const std::string source = "void f() { as\\\nsert(1); }\n";
  const LexedFile file = LexFile("src/warp/core/s.cc", source);
  bool saw = false;
  for (size_t i = 0; i + 1 < file.tokens.size(); ++i) {
    if (file.tokens[i].kind == TokenKind::kIdentifier &&
        file.tokens[i].text == "assert" &&
        file.tokens[i + 1].text == "(") {
      saw = true;
      EXPECT_EQ(file.tokens[i].line, 1u);
    }
  }
  EXPECT_TRUE(saw);
}

TEST(LexerTest, IncludesAreRecordedInOrder) {
  const std::string source =
      "#include \"warp/core/align.h\"\n"
      "#include <vector>\n"
      "#include \"warp/common/metrics.h\"\n";
  const LexedFile file = LexFile("src/warp/core/align.cc", source);
  ASSERT_EQ(file.includes.size(), 3u);
  EXPECT_EQ(file.includes[0].path, "warp/core/align.h");
  EXPECT_FALSE(file.includes[0].angled);
  EXPECT_EQ(file.includes[0].line, 1u);
  EXPECT_EQ(file.includes[1].path, "vector");
  EXPECT_TRUE(file.includes[1].angled);
  EXPECT_EQ(file.includes[2].path, "warp/common/metrics.h");
}

TEST(LexerTest, AllowPragmaParses) {
  const std::string source =
      std::string("int y = 0;  // warp-lint") +
      ": allow(raw-assert, platform-rng): both justified here\n";
  const LexedFile file = LexFile("src/warp/gen/p.cc", source);
  ASSERT_EQ(file.pragmas.size(), 1u);
  const AllowPragma& pragma = file.pragmas[0];
  EXPECT_FALSE(pragma.malformed);
  ASSERT_EQ(pragma.rules.size(), 2u);
  EXPECT_EQ(pragma.rules[0], "raw-assert");
  EXPECT_EQ(pragma.rules[1], "platform-rng");
  EXPECT_EQ(pragma.reason, "both justified here");
  EXPECT_EQ(pragma.line, 1u);
  EXPECT_FALSE(pragma.covers_next);
}

TEST(LexerTest, StandalonePragmaCoversNextLine) {
  const std::string source =
      std::string("// warp-lint") + ": allow(raw-assert): covers below\n" +
      "int z = 0;\n";
  const LexedFile file = LexFile("src/warp/gen/q.cc", source);
  ASSERT_EQ(file.pragmas.size(), 1u);
  EXPECT_TRUE(file.pragmas[0].covers_next);
}

TEST(LexerTest, MarkerWithoutAllowIsMalformed) {
  const std::string source =
      std::string("// warp-lint") + ": disable everything\n";
  const LexedFile file = LexFile("src/warp/gen/m.cc", source);
  ASSERT_EQ(file.pragmas.size(), 1u);
  EXPECT_TRUE(file.pragmas[0].malformed);
}

// --- 2. Fixture corpus ------------------------------------------------------

struct RuleFixture {
  const char* tree;
  const char* rule;
  size_t expected;  // Findings attributed to `rule`.
  size_t total;     // All findings in the tree.
};

// One mini-repo per rule. `expected == total` everywhere except the
// pragma tree, where the undisciplined pragmas coexist with the
// violation they fail to suppress.
const RuleFixture kRuleFixtures[] = {
    {"bad_raw_assert", "raw-assert", 1, 1},
    {"bad_platform_rng", "platform-rng", 2, 2},
    {"bad_chrono", "chrono-containment", 2, 2},
    {"bad_dp_engine", "dp-engine-only", 1, 1},
    {"bad_socket", "socket-containment", 2, 2},
    {"bad_cluster_proc", "proc-containment", 3, 3},
    {"bad_serve_io", "serve-io-containment", 2, 2},
    {"bad_intrinsics", "intrinsics-containment", 1, 1},
    {"bad_include_guards", "include-guards", 3, 3},
    {"bad_layering", "module-layering", 2, 2},
    {"bad_order", "own-header-first", 1, 1},
    {"bad_counter", "obs-counter-xref", 2, 2},
    {"bad_histogram", "obs-counter-xref", 4, 4},
    {"bad_measure", "measure-coverage", 3, 3},
    {"bad_benchflag", "bench-flag-wiring", 2, 2},
    {"bad_testreg", "test-registration", 1, 1},
    {"bad_pragma", "pragma-hygiene", 5, 6},
};

TEST(LintFixtureTest, EveryRuleFiresOnItsFixture) {
  for (const RuleFixture& fixture : kRuleFixtures) {
    SCOPED_TRACE(fixture.tree);
    const AnalyzerResult result = RunFixture(fixture.tree);
    EXPECT_TRUE(result.errors.empty());
    EXPECT_EQ(CountRule(result, fixture.rule), fixture.expected);
    EXPECT_EQ(result.findings.size(), fixture.total);
  }
}

TEST(LintFixtureTest, DisablingTheRuleSilencesItsFixture) {
  for (const RuleFixture& fixture : kRuleFixtures) {
    SCOPED_TRACE(fixture.tree);
    const AnalyzerResult result = RunFixture(fixture.tree, {fixture.rule});
    EXPECT_EQ(CountRule(result, fixture.rule), 0u);
    EXPECT_EQ(result.findings.size(), fixture.total - fixture.expected);
  }
}

TEST(LintFixtureTest, EveryRuleHasAFixture) {
  // Guards the table above against rot when rules are added.
  for (const RuleStatus& rule : AllRules()) {
    bool covered = false;
    for (const RuleFixture& fixture : kRuleFixtures) {
      if (rule.id == fixture.rule) covered = true;
    }
    EXPECT_TRUE(covered) << "rule without a fixture: " << rule.id;
  }
}

TEST(LintFixtureTest, CleanTreeIsClean) {
  const AnalyzerResult result = RunFixture("clean");
  EXPECT_TRUE(result.errors.empty());
  for (const Finding& finding : result.findings) {
    ADD_FAILURE() << FormatFinding(finding);
  }
  EXPECT_EQ(result.files_scanned, 12u);
  // The clean tree carries exactly one justified suppression.
  ASSERT_EQ(result.suppressed.size(), 1u);
  EXPECT_EQ(result.suppressed[0].finding.rule, "chrono-containment");
  EXPECT_EQ(result.suppressed[0].finding.file, "src/warp/mining/timed.cc");
  EXPECT_FALSE(result.suppressed[0].reason.empty());
}

TEST(LintFixtureTest, PragmaTreeDetails) {
  const AnalyzerResult result = RunFixture("bad_pragma");
  // The reason-less pragma must NOT suppress the violation on its line.
  EXPECT_EQ(CountRule(result, "chrono-containment"), 1u);
  EXPECT_TRUE(result.suppressed.empty());
  // Unexplained, unused, malformed, unknown-rule, unknown-rule-unused.
  EXPECT_EQ(CountRule(result, "pragma-hygiene"), 5u);
}

TEST(LintFixtureTest, CounterForgeryFindsBothDirections) {
  const AnalyzerResult result = RunFixture("bad_counter");
  bool ghost = false;
  bool phantom = false;
  for (const Finding& finding : result.findings) {
    if (finding.message.find("kGhost") != std::string::npos) ghost = true;
    if (finding.message.find("kPhantom") != std::string::npos) phantom = true;
  }
  EXPECT_TRUE(ghost) << "declared-but-never-bumped counter not reported";
  EXPECT_TRUE(phantom) << "bumped-but-never-declared counter not reported";
}

TEST(LintFixtureTest, HistogramAndGaugeRegistriesCrossReferenceToo) {
  // Same rule, other registries: the histogram and gauge X-macro lists
  // in obs/histogram.h get the exact cross-reference discipline counters
  // do, in both directions each.
  const AnalyzerResult result = RunFixture("bad_histogram");
  bool ghost_hist = false;
  bool phantom_hist = false;
  bool ghost_gauge = false;
  bool phantom_gauge = false;
  for (const Finding& finding : result.findings) {
    EXPECT_EQ(finding.rule, "obs-counter-xref") << FormatFinding(finding);
    const std::string& m = finding.message;
    if (m.find("kGhostHist") != std::string::npos) ghost_hist = true;
    if (m.find("kPhantomHist") != std::string::npos) phantom_hist = true;
    if (m.find("kGhostGauge") != std::string::npos) ghost_gauge = true;
    if (m.find("kPhantomGauge") != std::string::npos) phantom_gauge = true;
  }
  EXPECT_TRUE(ghost_hist) << "declared-but-never-recorded histogram missed";
  EXPECT_TRUE(phantom_hist) << "recorded-but-never-declared histogram missed";
  EXPECT_TRUE(ghost_gauge) << "declared-but-never-bumped gauge missed";
  EXPECT_TRUE(phantom_gauge) << "bumped-but-never-declared gauge missed";
}

TEST(LintFixtureTest, LayeringForgeryNamesTheInvertedEdge) {
  const AnalyzerResult result = RunFixture("bad_layering");
  bool inverted = false;
  for (const Finding& finding : result.findings) {
    if (finding.file == "src/warp/common/pool.cc" &&
        finding.message.find("common") != std::string::npos &&
        finding.message.find("obs") != std::string::npos) {
      inverted = true;
    }
  }
  EXPECT_TRUE(inverted);
}

TEST(LintFixtureTest, UnknownDisabledRuleIsAnError) {
  const AnalyzerResult result = RunFixture("clean", {"no-such-rule"});
  ASSERT_FALSE(result.errors.empty());
  EXPECT_FALSE(result.clean());
}

TEST(LintFixtureTest, MissingRootIsAnError) {
  const AnalyzerResult result = RunFixture("does_not_exist");
  EXPECT_FALSE(result.clean());
  ASSERT_FALSE(result.errors.empty());
}

// --- 3. Self-check and CLI --------------------------------------------------

TEST(LintSelfCheckTest, AnalyzerRunsCleanOverThisRepository) {
  AnalyzerConfig config;
  config.root = WARP_SOURCE_ROOT_DIR;
  const AnalyzerResult result = RunAnalyzer(config);
  for (const std::string& error : result.errors) ADD_FAILURE() << error;
  for (const Finding& finding : result.findings) {
    ADD_FAILURE() << FormatFinding(finding);
  }
  EXPECT_GT(result.files_scanned, 200u);
}

TEST(LintSelfCheckTest, AtLeastTwelveRules) {
  EXPECT_GE(AllRules().size(), 12u);
}

TEST(LintSelfCheckTest, JsonDocumentHasSchemaAndVerdict) {
  AnalyzerConfig config;
  config.root = FixturePath("clean");
  const std::string json = ResultToJson(config, RunAnalyzer(config));
  EXPECT_NE(json.find("warp-lint-v1"), std::string::npos);
  EXPECT_NE(json.find("\"clean\""), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\""), std::string::npos);
  EXPECT_NE(json.find("chrono-containment"), std::string::npos);
}

int RunTool(const std::string& arguments) {
  const std::string command =
      std::string(WARP_LINT_PATH) + " " + arguments + " > /dev/null 2>&1";
  const int status = std::system(command.c_str());
  return WEXITSTATUS(status);
}

TEST(LintCliTest, CleanRepositoryExitsZero) {
  EXPECT_EQ(RunTool("--root=" + std::string(WARP_SOURCE_ROOT_DIR)), 0);
}

TEST(LintCliTest, FindingsExitOne) {
  EXPECT_EQ(RunTool("--root=" + FixturePath("bad_chrono")), 1);
}

TEST(LintCliTest, UnknownFlagExitsTwo) {
  EXPECT_EQ(RunTool("--bogus"), 2);
}

TEST(LintCliTest, DisableSilencesFixtureViolation) {
  EXPECT_EQ(RunTool("--root=" + FixturePath("bad_chrono") +
                    " --disable=chrono-containment"),
            0);
}

TEST(LintCliTest, JsonFileIsWritten) {
  const std::string path = ::testing::TempDir() + "/warp_lint_out.json";
  std::remove(path.c_str());
  EXPECT_EQ(RunTool("--root=" + FixturePath("clean") + " --json=" + path), 0);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("warp-lint-v1"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lintkit
}  // namespace warp
