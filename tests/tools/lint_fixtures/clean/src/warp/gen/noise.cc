namespace warp {
// The PR-7 regression case: the grep rules' comment filter only skipped
// full-line comments, so the trailing mention below used to trip the
// platform-rng check. The tokenizer never sees comment text.
int NoiseSeed() {
  int seed = 7;  // deterministic; e.g. rand() or std::mt19937 would be wrong
  return seed;   /* srand(1) is also only mentioned, never called */
}
}  // namespace warp
