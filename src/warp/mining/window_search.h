// Brute-force search for the best warping window (the UCR archive method).
//
// The "optimal w" values the paper histograms in Fig. 2 were produced by
// leave-one-out cross-validated 1-NN accuracy over every candidate window.
// This module reimplements that procedure (with lower-bound pruning and
// early abandoning so it stays tractable), both to let users find the W of
// their own domains and to regenerate Fig. 2-style data from raw datasets.

#ifndef WARP_MINING_WINDOW_SEARCH_H_
#define WARP_MINING_WINDOW_SEARCH_H_

#include <cstddef>
#include <vector>

#include "warp/common/cost.h"
#include "warp/ts/dataset.h"

namespace warp {

struct WindowSearchResult {
  size_t best_band = 0;        // In cells.
  double best_accuracy = 0.0;  // LOOCV accuracy at best_band.
  // accuracy_by_band[k] is the LOOCV accuracy for band = bands[k].
  std::vector<size_t> bands;
  std::vector<double> accuracy_by_band;

  double best_window_percent(size_t series_length) const {
    return 100.0 * static_cast<double>(best_band) /
           static_cast<double>(series_length);
  }
};

// Evaluates every band in {0, step, 2*step, ..., <= max_band} by
// leave-one-out 1-NN over `dataset` (uniform length required) and returns
// the band maximizing accuracy; ties prefer the smaller band, matching the
// UCR archive convention.
WindowSearchResult FindBestWindowLoocv(const Dataset& dataset,
                                       size_t max_band, size_t step = 1,
                                       CostKind cost = CostKind::kSquared);

// LOOCV accuracy of 1-NN cDTW at a single band.
double LoocvAccuracy(const Dataset& dataset, size_t band,
                     CostKind cost = CostKind::kSquared);

}  // namespace warp

#endif  // WARP_MINING_WINDOW_SEARCH_H_
