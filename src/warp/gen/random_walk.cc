#include "warp/gen/random_walk.h"

#include "warp/common/assert.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace gen {

std::vector<double> RandomWalk(size_t n, Rng& rng, double step_stddev) {
  WARP_CHECK(n > 0);
  std::vector<double> walk(n);
  double value = 0.0;
  for (size_t t = 0; t < n; ++t) {
    value += rng.Gaussian(0.0, step_stddev);
    walk[t] = value;
  }
  return walk;
}

Dataset RandomWalkDataset(size_t count, size_t n, uint64_t seed,
                          double step_stddev) {
  WARP_CHECK(count > 0);
  Rng rng(seed);
  Dataset dataset;
  dataset.set_name("random_walk");
  for (size_t i = 0; i < count; ++i) {
    std::vector<double> walk = RandomWalk(n, rng, step_stddev);
    ZNormalizeInPlace(walk);
    dataset.Add(TimeSeries(std::move(walk), /*label=*/0));
  }
  return dataset;
}

}  // namespace gen
}  // namespace warp
