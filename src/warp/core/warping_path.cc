#include "warp/core/warping_path.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "warp/common/assert.h"

namespace warp {

void WarpingPath::Reverse() { std::reverse(points_.begin(), points_.end()); }

bool WarpingPath::IsValid(size_t n, size_t m) const {
  std::string unused;
  return Validate(n, m, &unused);
}

bool WarpingPath::Validate(size_t n, size_t m, std::string* error) const {
  if (n == 0 || m == 0) {
    *error = "series lengths must be positive";
    return false;
  }
  if (points_.empty()) {
    *error = "path is empty";
    return false;
  }
  if (points_.front() != PathPoint{0, 0}) {
    *error = "path does not start at (0, 0)";
    return false;
  }
  const PathPoint expected_end{static_cast<uint32_t>(n - 1),
                               static_cast<uint32_t>(m - 1)};
  if (points_.back() != expected_end) {
    *error = "path does not end at (n-1, m-1)";
    return false;
  }
  for (size_t k = 1; k < points_.size(); ++k) {
    const uint32_t di = points_[k].i - points_[k - 1].i;
    const uint32_t dj = points_[k].j - points_[k - 1].j;
    // Unsigned wraparound makes any backwards step a huge value, so the
    // check below also catches non-monotone paths.
    if (di > 1 || dj > 1 || (di == 0 && dj == 0)) {
      char buffer[96];
      std::snprintf(buffer, sizeof(buffer),
                    "illegal step at index %zu: (%u,%u) -> (%u,%u)", k,
                    points_[k - 1].i, points_[k - 1].j, points_[k].i,
                    points_[k].j);
      *error = buffer;
      return false;
    }
  }
  for (const PathPoint& p : points_) {
    if (p.i >= n || p.j >= m) {
      *error = "path leaves the matrix";
      return false;
    }
  }
  return true;
}

double WarpingPath::CostAlong(std::span<const double> x,
                              std::span<const double> y,
                              CostKind cost) const {
  WARP_CHECK(!points_.empty());
  return WithCost(cost, [&](auto c) {
    double total = 0.0;
    for (const PathPoint& p : points_) {
      WARP_DCHECK(p.i < x.size() && p.j < y.size());
      total += c(x[p.i], y[p.j]);
    }
    return total;
  });
}

std::vector<std::pair<uint32_t, uint32_t>> WarpingPath::PerRowColumnRanges(
    size_t n) const {
  WARP_CHECK(!points_.empty());
  std::vector<std::pair<uint32_t, uint32_t>> ranges(
      n, {std::numeric_limits<uint32_t>::max(), 0});
  for (const PathPoint& p : points_) {
    WARP_CHECK(p.i < n);
    auto& [lo, hi] = ranges[p.i];
    lo = std::min(lo, p.j);
    hi = std::max(hi, p.j);
  }
  for (size_t i = 0; i < n; ++i) {
    WARP_CHECK_MSG(ranges[i].first <= ranges[i].second,
                   "path must touch every row");
  }
  return ranges;
}

uint32_t WarpingPath::MaxDiagonalDeviation() const {
  uint32_t max_dev = 0;
  for (const PathPoint& p : points_) {
    const uint32_t dev = p.i > p.j ? p.i - p.j : p.j - p.i;
    max_dev = std::max(max_dev, dev);
  }
  return max_dev;
}

}  // namespace warp
