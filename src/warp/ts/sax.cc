#include "warp/ts/sax.h"

#include <algorithm>

#include "warp/common/assert.h"
#include "warp/ts/paa.h"
#include "warp/ts/znorm.h"

namespace warp {

namespace {

// Standard-normal quantiles at k/a for k = 1..a-1, per alphabet size.
constexpr double kBreakpoints3[] = {-0.4307, 0.4307};
constexpr double kBreakpoints2[] = {0.0};
constexpr double kBreakpoints4[] = {-0.6745, 0.0, 0.6745};
constexpr double kBreakpoints5[] = {-0.8416, -0.2533, 0.2533, 0.8416};
constexpr double kBreakpoints6[] = {-0.9674, -0.4307, 0.0, 0.4307, 0.9674};
constexpr double kBreakpoints7[] = {-1.0676, -0.5659, -0.1800,
                                    0.1800,  0.5659,  1.0676};
constexpr double kBreakpoints8[] = {-1.1503, -0.6745, -0.3186, 0.0,
                                    0.3186,  0.6745,  1.1503};
constexpr double kBreakpoints9[] = {-1.2206, -0.7647, -0.4307, -0.1397,
                                    0.1397,  0.4307,  0.7647,  1.2206};
constexpr double kBreakpoints10[] = {-1.2816, -0.8416, -0.5244,
                                     -0.2533, 0.0,     0.2533,
                                     0.5244,  0.8416,  1.2816};

}  // namespace

std::span<const double> SaxBreakpoints(size_t alphabet_size) {
  switch (alphabet_size) {
    case 2:
      return kBreakpoints2;
    case 3:
      return kBreakpoints3;
    case 4:
      return kBreakpoints4;
    case 5:
      return kBreakpoints5;
    case 6:
      return kBreakpoints6;
    case 7:
      return kBreakpoints7;
    case 8:
      return kBreakpoints8;
    case 9:
      return kBreakpoints9;
    case 10:
      return kBreakpoints10;
    default:
      WARP_CHECK_MSG(false, "SAX alphabet size must be in [2, 10]");
  }
}

std::vector<uint8_t> SaxWord(std::span<const double> values,
                             size_t word_length, size_t alphabet_size) {
  WARP_CHECK(word_length > 0);
  WARP_CHECK(!values.empty());
  const std::span<const double> breakpoints = SaxBreakpoints(alphabet_size);

  const std::vector<double> normalized = ZNormalized(values);
  const std::vector<double> paa =
      Paa(normalized, std::min(word_length, normalized.size()));

  std::vector<uint8_t> word(paa.size());
  for (size_t s = 0; s < paa.size(); ++s) {
    // Symbol = number of breakpoints below the segment mean.
    const auto it =
        std::upper_bound(breakpoints.begin(), breakpoints.end(), paa[s]);
    word[s] = static_cast<uint8_t>(it - breakpoints.begin());
  }
  return word;
}

std::string SaxWordToString(std::span<const uint8_t> word) {
  std::string out;
  out.reserve(word.size());
  for (uint8_t symbol : word) out += static_cast<char>('a' + symbol);
  return out;
}

double SaxMinDistSquared(std::span<const uint8_t> a,
                         std::span<const uint8_t> b, size_t original_length,
                         size_t alphabet_size) {
  WARP_CHECK_MSG(a.size() == b.size(), "SAX words must have equal length");
  WARP_CHECK(!a.empty());
  const std::span<const double> breakpoints = SaxBreakpoints(alphabet_size);

  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const uint8_t lo = std::min(a[i], b[i]);
    const uint8_t hi = std::max(a[i], b[i]);
    WARP_DCHECK(hi < alphabet_size);
    if (hi - lo <= 1) continue;  // Adjacent regions: gap can be zero.
    const double gap = breakpoints[hi - 1] - breakpoints[lo];
    sum += gap * gap;
  }
  return static_cast<double>(original_length) /
         static_cast<double>(a.size()) * sum;
}

}  // namespace warp
