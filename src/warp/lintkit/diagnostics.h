// Findings, suppression records, and the warp-lint-v1 JSON document.
//
// A Finding is one rule violation at one source location. The analyzer
// collects raw findings from every rule, applies the allow-pragma
// suppressions recorded by the lexer, and keeps both sides: surviving
// findings (what fails the build) and suppressed ones (auditable in the
// JSON document, so an allow() can never hide a class of violations
// silently). docs/STATIC_ANALYSIS.md documents the JSON schema.

#ifndef WARP_LINTKIT_DIAGNOSTICS_H_
#define WARP_LINTKIT_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace warp {
namespace lintkit {

struct Finding {
  std::string rule;
  std::string file;
  size_t line = 0;  // 0 = whole-file / cross-file finding with no anchor.
  size_t col = 0;
  std::string message;
};

struct SuppressedFinding {
  Finding finding;
  std::string reason;       // The pragma's stated justification.
  size_t pragma_line = 0;   // Where the allow() pragma sits.
};

// Deterministic presentation order: file, line, col, rule, message.
void SortFindings(std::vector<Finding>* findings);

// "file:line:col: [rule] message" (line/col omitted when 0).
std::string FormatFinding(const Finding& finding);

// One rule's identity in the JSON document.
struct RuleStatus {
  std::string id;
  std::string summary;
  bool cross_file = false;
  bool enabled = true;
};

// The complete warp-lint-v1 document.
struct LintDocument {
  std::string root;
  size_t files_scanned = 0;
  std::vector<RuleStatus> rules;
  std::vector<Finding> findings;
  std::vector<SuppressedFinding> suppressed;
  std::vector<std::string> errors;
};

// Serializes the document (schema "warp-lint-v1") via obs::JsonWriter.
std::string ToJson(const LintDocument& doc);

}  // namespace lintkit
}  // namespace warp

#endif  // WARP_LINTKIT_DIAGNOSTICS_H_
