#include "warp/common/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "warp/common/assert.h"

namespace warp {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  WARP_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  WARP_CHECK_MSG(cells.size() == headers_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddRow(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double value : cells) formatted.push_back(FormatDouble(value, precision));
  AddRow(std::move(formatted));
}

std::string TablePrinter::FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto append_row = [&](std::string& out,
                        const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      out += (i == 0) ? "| " : " | ";
      out += cells[i];
      out.append(widths[i] - cells[i].size(), ' ');
    }
    out += " |\n";
  };

  std::string out;
  append_row(out, headers_);
  out += '|';
  for (size_t width : widths) out += std::string(width + 2, '-') + '|';
  out += '\n';
  for (const auto& row : rows_) append_row(out, row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace warp
