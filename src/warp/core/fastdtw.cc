#include "warp/core/fastdtw.h"

#include <vector>

#include "warp/common/assert.h"
#include "warp/core/fastdtw_common.h"
#include "warp/common/metrics.h"
#include "warp/ts/paa.h"

namespace warp {

namespace {

DtwResult FastDtwRecursive(std::span<const double> x,
                           std::span<const double> y, size_t radius,
                           CostKind cost) {
  WARP_COUNT(obs::Counter::kFastDtwLevels);
  if (AtFastDtwBaseCase(x.size(), y.size(), radius)) {
    WARP_COUNT(obs::Counter::kFastDtwBaseCases);
    return Dtw(x, y, cost);
  }
  const std::vector<double> shrunk_x = HalveByTwo(x);
  const std::vector<double> shrunk_y = HalveByTwo(y);
  const DtwResult low_res =
      FastDtwRecursive(shrunk_x, shrunk_y, radius, cost);
  const WarpingWindow window = WarpingWindow::FromLowResPath(
      low_res.path, x.size(), y.size(), radius);
  DtwResult refined = WindowedDtw(x, y, window, cost);
  refined.cells_visited += low_res.cells_visited;
  return refined;
}

DtwResult MultiFastDtwRecursive(const MultiSeries& x, const MultiSeries& y,
                                size_t radius, CostKind cost) {
  WARP_COUNT(obs::Counter::kFastDtwLevels);
  if (AtFastDtwBaseCase(x.length(), y.length(), radius)) {
    WARP_COUNT(obs::Counter::kFastDtwBaseCases);
    return MultiWindowedDtw(x, y, WarpingWindow::Full(x.length(), y.length()),
                            cost);
  }
  const MultiSeries shrunk_x = HalveMultiByTwo(x);
  const MultiSeries shrunk_y = HalveMultiByTwo(y);
  const DtwResult low_res =
      MultiFastDtwRecursive(shrunk_x, shrunk_y, radius, cost);
  const WarpingWindow window = WarpingWindow::FromLowResPath(
      low_res.path, x.length(), y.length(), radius);
  DtwResult refined = MultiWindowedDtw(x, y, window, cost);
  refined.cells_visited += low_res.cells_visited;
  return refined;
}

}  // namespace

DtwResult FastDtw(std::span<const double> x, std::span<const double> y,
                  size_t radius, CostKind cost) {
  WARP_CHECK(!x.empty() && !y.empty());
  DtwResult result = FastDtwRecursive(x, y, radius, cost);
  WARP_COUNT_ADD(obs::Counter::kFastDtwCells, result.cells_visited);
  // Debug-build oracle hook: whatever the recursion produced must still be
  // a legal full-resolution warping path (admissibility — never beating
  // exact DTW — is checked by check::CheckFastDtwAdmissible in tests).
  WARP_DCHECK(result.path.IsValid(x.size(), y.size()));
  return result;
}

double FastDtwDistance(std::span<const double> x, std::span<const double> y,
                       size_t radius, CostKind cost) {
  return FastDtw(x, y, radius, cost).distance;
}

DtwResult MultiFastDtw(const MultiSeries& x, const MultiSeries& y,
                       size_t radius, CostKind cost) {
  WARP_CHECK(!x.empty() && !y.empty());
  WARP_CHECK(x.num_channels() == y.num_channels());
  DtwResult result = MultiFastDtwRecursive(x, y, radius, cost);
  WARP_COUNT_ADD(obs::Counter::kFastDtwCells, result.cells_visited);
  return result;
}

}  // namespace warp
