#include "warp/core/lower_bounds.h"

#include <algorithm>

#include "warp/common/assert.h"
#include "warp/obs/metrics.h"

namespace warp {

double LbKimFl(std::span<const double> x, std::span<const double> y,
               CostKind cost) {
  WARP_CHECK(!x.empty() && !y.empty());
  WARP_COUNT(obs::Counter::kLbKimCalls);
  return WithCost(cost, [&](auto c) {
    // On a 1x1 matrix the first and last aligned cells coincide; counting
    // the cell twice would overshoot cDTW and break pruning soundness
    // (caught by check::CheckBoundCascade on length-1 inputs).
    if (x.size() == 1 && y.size() == 1) return c(x.front(), y.front());
    return c(x.front(), y.front()) + c(x.back(), y.back());
  });
}

double LbKeogh(const Envelope& query_envelope,
               std::span<const double> candidate, CostKind cost,
               double abandon_above) {
  WARP_CHECK_MSG(query_envelope.upper.size() == candidate.size(),
                 "envelope and candidate lengths must match");
  WARP_CHECK_MSG(query_envelope.lower.size() == query_envelope.upper.size(),
                 "envelope upper/lower lengths must match");
  WARP_COUNT(obs::Counter::kLbKeoghCalls);
  return WithCost(cost, [&](auto c) {
    double sum = 0.0;
    for (size_t i = 0; i < candidate.size(); ++i) {
      const double v = candidate[i];
      WARP_DCHECK(query_envelope.lower[i] <= query_envelope.upper[i]);
      if (v > query_envelope.upper[i]) {
        sum += c(v, query_envelope.upper[i]);
      } else if (v < query_envelope.lower[i]) {
        sum += c(v, query_envelope.lower[i]);
      }
      if (sum > abandon_above) return sum;
    }
    return sum;
  });
}

double LbKeoghSymmetric(const Envelope& query_envelope,
                        std::span<const double> query,
                        const Envelope& candidate_envelope,
                        std::span<const double> candidate, CostKind cost) {
  return std::max(LbKeogh(query_envelope, candidate, cost),
                  LbKeogh(candidate_envelope, query, cost));
}

double LbImproved(const Envelope& query_envelope,
                  std::span<const double> query,
                  std::span<const double> candidate, size_t band,
                  CostKind cost) {
  WARP_CHECK(query.size() == candidate.size());
  WARP_COUNT(obs::Counter::kLbImprovedCalls);
  const double first = LbKeogh(query_envelope, candidate, cost);

  // Projection of the candidate onto the query's envelope tube.
  std::vector<double> projection(candidate.size());
  for (size_t i = 0; i < candidate.size(); ++i) {
    projection[i] = std::clamp(candidate[i], query_envelope.lower[i],
                               query_envelope.upper[i]);
  }
  const Envelope projection_envelope = ComputeEnvelope(projection, band);
  const double second = LbKeogh(projection_envelope, query, cost);
  // Both passes are sums of non-negative excursions, which is exactly why
  // LB_Improved >= LB_Keogh while remaining a valid lower bound.
  WARP_DCHECK(first >= 0.0 && second >= 0.0);
  return first + second;
}

}  // namespace warp
