// Ablation benchmarks for the design choices DESIGN.md calls out.
//
// Four questions, each answered with a measured table:
//   A. What does each rung of the exact-1-NN cascade buy?
//      (plain cDTW -> +early abandon -> +LB_Kim -> +LB_Keogh -> +both
//      directions)
//   B. LB_Keogh vs LB_Improved: tightness vs cost per candidate.
//   C. Does DtwBuffer reuse matter in tight loops?
//   D. What does the square-band integer fast path buy over the
//      generalized scaled-diagonal ranges?
//
// Flags: --length (315), --train (64), --test (32), --band-percent (10),
//        --reps (200), --json=<path>.

#include <cstdio>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "harness/bench_flags.h"
#include "warp/common/stopwatch.h"
#include "warp/common/table_printer.h"
#include "warp/core/dtw.h"
#include "warp/core/envelope.h"
#include "warp/core/lower_bounds.h"
#include "warp/gen/gesture.h"
#include "warp/gen/random_walk.h"
#include "warp/common/metrics.h"
#include "warp/obs/report.h"

namespace warp {
namespace bench {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct CascadeConfig {
  const char* name;
  bool abandon = false;
  bool kim = false;
  bool keogh = false;
  bool keogh_reversed = false;
  bool pruned = false;  // PrunedDTW with the best-so-far as upper bound.
};

// Runs 1-NN for every test series against the train set under one
// cascade configuration; returns elapsed seconds and checks the
// predictions against the brute-force labels.
double RunCascade(const Dataset& train, const Dataset& test, size_t band,
                  const CascadeConfig& config,
                  const std::vector<int>& expected_labels) {
  std::vector<Envelope> train_envelopes;
  std::vector<Envelope> test_envelopes;
  if (config.keogh_reversed) {
    for (const auto& s : train.series()) {
      train_envelopes.push_back(ComputeEnvelope(s.view(), band));
    }
  }
  if (config.keogh) {
    for (const auto& s : test.series()) {
      test_envelopes.push_back(ComputeEnvelope(s.view(), band));
    }
  }

  Stopwatch watch;
  DtwBuffer buffer;
  for (size_t q = 0; q < test.size(); ++q) {
    const std::span<const double> query = test[q].view();
    double best = kInf;
    int best_label = -1;
    for (size_t i = 0; i < train.size(); ++i) {
      const std::span<const double> candidate = train[i].view();
      if (config.kim && LbKimFl(query, candidate) >= best) continue;
      if (config.keogh &&
          LbKeogh(test_envelopes[q], candidate, CostKind::kSquared, best) >=
              best) {
        continue;
      }
      if (config.keogh_reversed &&
          LbKeogh(train_envelopes[i], query, CostKind::kSquared, best) >=
              best) {
        continue;
      }
      double d;
      if (config.pruned) {
        d = PrunedCdtwDistance(query, candidate, band, CostKind::kSquared,
                               best, &buffer);
      } else if (config.abandon) {
        d = CdtwDistanceAbandoning(query, candidate, band, best,
                                   CostKind::kSquared, &buffer);
      } else {
        d = CdtwDistance(query, candidate, band, CostKind::kSquared,
                         &buffer);
      }
      if (d < best) {
        best = d;
        best_label = train[i].label();
      }
    }
    if (best_label != expected_labels[q]) {
      std::fprintf(stderr, "ablation %s changed a prediction!\n",
                   config.name);
      std::exit(1);
    }
  }
  return watch.ElapsedSeconds();
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t length = static_cast<size_t>(flags.GetInt("length", 315));
  const size_t train_size = static_cast<size_t>(flags.GetInt("train", 64));
  const size_t test_size = static_cast<size_t>(flags.GetInt("test", 32));
  const size_t band_percent =
      static_cast<size_t>(flags.GetInt("band-percent", 10));
  const int reps = static_cast<int>(flags.GetInt("reps", 200));
  const size_t threads = SingleCoreThreadsFlag(flags);
  const std::string json_path = JsonFlag(flags);
  SimdFlag(flags);
  flags.Finalize();

  obs::BenchReport report(
      "Ablations",
      "Cascade rungs, bound tightness, buffer reuse, band fast path");
  report.AddConfig("threads", static_cast<int64_t>(threads));
  report.AddConfig("length", static_cast<int64_t>(length));
  report.AddConfig("train", static_cast<int64_t>(train_size));
  report.AddConfig("test", static_cast<int64_t>(test_size));
  report.AddConfig("band_percent", static_cast<int64_t>(band_percent));
  report.AddConfig("reps", reps);

  PrintBanner("Ablations",
              "What each engineering choice buys: cascade rungs, bound "
              "tightness, buffer reuse, band fast path");

  gen::GestureOptions options;
  options.length = length;
  options.warp_fraction = 0.1;
  options.noise_stddev = 0.4;
  options.seed = 314;
  const Dataset pool = gen::MakeGestureDataset(
      (train_size + test_size + 7) / 8 + 1, options);
  Dataset train;
  Dataset test;
  for (size_t i = 0; i < pool.size() && train.size() < train_size; ++i) {
    if (i % 3 != 0) train.Add(pool[i]);
  }
  for (size_t i = 0; i < pool.size() && test.size() < test_size; ++i) {
    if (i % 3 == 0) test.Add(pool[i]);
  }
  const size_t band = length * band_percent / 100;

  // Ground-truth predictions from the plain configuration.
  std::vector<int> expected;
  for (size_t q = 0; q < test.size(); ++q) {
    double best = kInf;
    int label = -1;
    for (size_t i = 0; i < train.size(); ++i) {
      const double d = CdtwDistance(test[q].view(), train[i].view(), band);
      if (d < best) {
        best = d;
        label = train[i].label();
      }
    }
    expected.push_back(label);
  }

  // --- A: cascade rungs ----------------------------------------------------
  const CascadeConfig configs[] = {
      {"plain cDTW", false, false, false, false},
      {"+ early abandon", true, false, false, false},
      {"+ LB_Kim", true, true, false, false},
      {"+ LB_Keogh", true, true, true, false},
      {"+ LB_Keogh reversed", true, true, true, true},
      {"PrunedDTW instead of abandon", false, true, true, true, true},
  };
  std::printf("A. exact 1-NN cascade (%zu train x %zu test, N=%zu, "
              "w=%zu%%):\n",
              train.size(), test.size(), length, band_percent);
  TablePrinter cascade_table({"configuration", "seconds", "speedup"});
  double baseline = -1.0;
  for (const CascadeConfig& config : configs) {
    const obs::MetricsSnapshot before = obs::SnapshotCounters();
    const double seconds = RunCascade(train, test, band, config, expected);
    report.AddCase(std::string("cascade: ") + config.name,
                   SummarizeSamples({seconds}), obs::CountersSince(before));
    if (baseline < 0) baseline = seconds;
    cascade_table.AddRow({config.name,
                          TablePrinter::FormatDouble(seconds, 3),
                          TablePrinter::FormatDouble(baseline / seconds, 1) +
                              "x"});
  }
  cascade_table.Print();

  // --- B: LB_Keogh vs LB_Improved -------------------------------------------
  Rng rng(111);
  const size_t lb_trials = 2000;
  std::vector<std::vector<double>> pairs_q;
  std::vector<std::vector<double>> pairs_c;
  for (size_t t = 0; t < lb_trials; ++t) {
    pairs_q.push_back(gen::RandomWalk(length, rng));
    pairs_c.push_back(gen::RandomWalk(length, rng));
  }
  double keogh_total = 0.0;
  double improved_total = 0.0;
  double dtw_total = 0.0;
  obs::MetricsSnapshot before = obs::SnapshotCounters();
  Stopwatch keogh_watch;
  for (size_t t = 0; t < lb_trials; ++t) {
    const Envelope env = ComputeEnvelope(pairs_q[t], band);
    keogh_total += LbKeogh(env, pairs_c[t]);
  }
  const double keogh_seconds = keogh_watch.ElapsedSeconds();
  report.AddCase("lb_keogh", SummarizeSamples({keogh_seconds}),
                 obs::CountersSince(before));
  before = obs::SnapshotCounters();
  Stopwatch improved_watch;
  for (size_t t = 0; t < lb_trials; ++t) {
    const Envelope env = ComputeEnvelope(pairs_q[t], band);
    improved_total += LbImproved(env, pairs_q[t], pairs_c[t], band);
  }
  const double improved_seconds = improved_watch.ElapsedSeconds();
  report.AddCase("lb_improved", SummarizeSamples({improved_seconds}),
                 obs::CountersSince(before));
  DtwBuffer buffer;
  for (size_t t = 0; t < lb_trials; ++t) {
    dtw_total += CdtwDistance(pairs_q[t], pairs_c[t], band,
                              CostKind::kSquared, &buffer);
  }
  std::printf("\nB. bound tightness over %zu random pairs (share of the "
              "true cDTW distance captured):\n", lb_trials);
  std::printf("   LB_Keogh    %5.1f%% tight, %6.1f us/pair\n",
              100.0 * keogh_total / dtw_total,
              keogh_seconds * 1e6 / static_cast<double>(lb_trials));
  std::printf("   LB_Improved %5.1f%% tight, %6.1f us/pair\n",
              100.0 * improved_total / dtw_total,
              improved_seconds * 1e6 / static_cast<double>(lb_trials));

  // --- C: buffer reuse -------------------------------------------------------
  const std::vector<double> x = gen::RandomWalk(945, rng);
  const std::vector<double> y = gen::RandomWalk(945, rng);
  double checksum = 0.0;
  before = obs::SnapshotCounters();
  Stopwatch no_reuse;
  for (int r = 0; r < reps; ++r) checksum += CdtwDistance(x, y, 38);
  const double no_reuse_seconds = no_reuse.ElapsedSeconds();
  report.AddCase("buffer_fresh", SummarizeSamples({no_reuse_seconds}),
                 obs::CountersSince(before));
  before = obs::SnapshotCounters();
  Stopwatch reuse;
  for (int r = 0; r < reps; ++r) {
    checksum += CdtwDistance(x, y, 38, CostKind::kSquared, &buffer);
  }
  const double reuse_seconds = reuse.ElapsedSeconds();
  report.AddCase("buffer_reused", SummarizeSamples({reuse_seconds}),
                 obs::CountersSince(before));
  DoNotOptimize(checksum);
  std::printf("\nC. DtwBuffer reuse at N=945, w=4%% (%d calls): fresh "
              "allocations %.1f ms vs reused %.1f ms (%.0f%% saved)\n",
              reps, no_reuse_seconds * 1e3, reuse_seconds * 1e3,
              100.0 * (no_reuse_seconds - reuse_seconds) / no_reuse_seconds);

  // --- D: square fast path ----------------------------------------------------
  const std::vector<double> y_off = gen::RandomWalk(944, rng);
  before = obs::SnapshotCounters();
  Stopwatch square;
  for (int r = 0; r < reps; ++r) {
    checksum += CdtwDistance(x, y, 94, CostKind::kSquared, &buffer);
  }
  const double square_seconds = square.ElapsedSeconds();
  report.AddCase("band_square", SummarizeSamples({square_seconds}),
                 obs::CountersSince(before));
  before = obs::SnapshotCounters();
  Stopwatch general;
  for (int r = 0; r < reps; ++r) {
    checksum += CdtwDistance(x, y_off, 94, CostKind::kSquared, &buffer);
  }
  const double general_seconds = general.ElapsedSeconds();
  report.AddCase("band_general", SummarizeSamples({general_seconds}),
                 obs::CountersSince(before));
  DoNotOptimize(checksum);
  std::printf("D. band ranges at N=945, w=10%% (%d calls): square integer "
              "fast path %.1f ms vs generalized scaled-diagonal %.1f ms "
              "(%+.0f%%)\n",
              reps, square_seconds * 1e3, general_seconds * 1e3,
              100.0 * (general_seconds - square_seconds) / square_seconds);
  report.Finish(json_path);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace warp

int main(int argc, char** argv) { return warp::bench::Main(argc, argv); }
