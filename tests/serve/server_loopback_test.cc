// End-to-end loopback golden test: a query's answer over the wire must be
// bitwise-identical to a direct library call — at 1 and 4 worker threads,
// cold and from the result cache — plus control-op and shutdown behavior.

#include "warp/serve/server.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "warp/core/measure.h"
#include "warp/gen/random_walk.h"
#include "warp/obs/json_writer.h"
#include "warp/serve/net.h"
#include "warp/serve/wire.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace serve {
namespace {

constexpr size_t kSeries = 30;
constexpr size_t kLength = 48;

// A running in-process server plus one connected client.
class LiveServer {
 public:
  explicit LiveServer(size_t threads) {
    ServerOptions options;
    options.threads = threads;
    options.cache_capacity = 64;
    options.band_fractions = {0.1};
    server_ = std::make_unique<Server>(std::move(options));
    server_->RegisterDataset("d", gen::RandomWalkDataset(kSeries, kLength, 3));
    std::string error;
    EXPECT_TRUE(server_->Start(&error)) << error;
    serve_thread_ = std::thread([this] { server_->Serve(); });
    conn_ = ConnectLoopback(server_->port(), &error);
    EXPECT_TRUE(conn_.valid()) << error;
  }

  ~LiveServer() {
    server_->RequestShutdown();
    serve_thread_.join();
  }

  // Sends `lines` as one pipelined write and reads one response per line.
  std::vector<JsonValue> RoundTrip(const std::vector<std::string>& lines) {
    std::string payload;
    for (const std::string& line : lines) payload += line + "\n";
    EXPECT_TRUE(conn_.WriteAll(payload));
    std::vector<JsonValue> responses;
    for (size_t i = 0; i < lines.size(); ++i) {
      std::string line;
      if (!conn_.ReadLine(&line)) {
        ADD_FAILURE() << "connection closed after " << i << " responses";
        break;
      }
      JsonValue value;
      std::string error;
      EXPECT_TRUE(ParseJson(line, &value, &error)) << error << ": " << line;
      responses.push_back(std::move(value));
    }
    return responses;
  }

  Server& server() { return *server_; }

 private:
  std::unique_ptr<Server> server_;
  std::thread serve_thread_;
  TcpConn conn_;
};

std::string OneNnLine(int64_t id, const std::vector<double>& query) {
  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("id").Int(id)
      .Key("op").String("1nn")
      .Key("dataset").String("d")
      .Key("query").BeginArray();
  for (double v : query) writer.Double(v);
  writer.EndArray().EndObject();
  return writer.TakeOutput();
}

// The acceptance criterion: the wire answer equals the direct library
// computation bit for bit, cold and cached, at 1 and 4 threads.
TEST(ServerLoopbackTest, GoldenRoundTripMatchesDirectLibraryCall) {
  const Dataset queries = gen::RandomWalkDataset(4, kLength, 71);
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    LiveServer live(threads);

    // Direct library reference over the server's own stored snapshot.
    const auto snapshot = live.server().store().Get("d");
    ASSERT_NE(snapshot, nullptr);
    const SeriesMeasure measure = MakeMeasure("cdtw", MeasureParams{});
    const auto reference = [&](const std::vector<double>& query) {
      const std::vector<double> z = ZNormalized(query);
      size_t best = 0;
      double best_distance = measure(z, snapshot->SeriesAt(0).view());
      for (size_t i = 1; i < snapshot->size(); ++i) {
        const double d = measure(z, snapshot->SeriesAt(i).view());
        if (d < best_distance) {
          best = i;
          best_distance = d;
        }
      }
      return std::pair<size_t, double>(best, best_distance);
    };

    std::vector<std::string> lines;
    for (size_t q = 0; q < queries.size(); ++q) {
      lines.push_back(OneNnLine(static_cast<int64_t>(q),
                                queries[q].values()));
    }
    // Cold pass, then an identical pass answered from the result cache.
    for (const char* pass : {"cold", "cached"}) {
      SCOPED_TRACE(pass);
      const std::vector<JsonValue> responses = live.RoundTrip(lines);
      ASSERT_EQ(responses.size(), queries.size());
      for (size_t q = 0; q < queries.size(); ++q) {
        SCOPED_TRACE("query " + std::to_string(q));
        const JsonValue& response = responses[q];
        EXPECT_EQ(response.NumberOr("id", -1), static_cast<double>(q));
        ASSERT_TRUE(response.BoolOr("ok", false))
            << response.StringOr("error", "");
        const JsonValue* neighbors = response.Find("neighbors");
        ASSERT_NE(neighbors, nullptr);
        ASSERT_EQ(neighbors->AsArray().size(), 1u);
        const auto [index, distance] = reference(queries[q].values());
        EXPECT_EQ(neighbors->AsArray()[0].NumberOr("index", -1),
                  static_cast<double>(index));
        // Bitwise: JsonWriter emits shortest-round-trip doubles and the
        // parser reads them back with strtod.
        EXPECT_EQ(neighbors->AsArray()[0].NumberOr("distance", -1), distance);
      }
    }
  }
}

TEST(ServerLoopbackTest, ControlOpsAnswerInline) {
  LiveServer live(1);
  const std::vector<JsonValue> responses = live.RoundTrip({
      R"({"id": 1, "op": "ping"})",
      R"({"id": 2, "op": "info", "dataset": "d"})",
      R"({"id": 3, "op": "info", "dataset": "missing"})",
      R"({"id": 4, "op": "stats"})",
  });
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_TRUE(responses[0].BoolOr("ok", false));
  EXPECT_TRUE(responses[1].BoolOr("ok", false));
  EXPECT_EQ(responses[1].NumberOr("size", -1),
            static_cast<double>(kSeries));
  EXPECT_EQ(responses[1].NumberOr("length", -1),
            static_cast<double>(kLength));
  EXPECT_FALSE(responses[2].BoolOr("ok", true));
  EXPECT_TRUE(responses[3].BoolOr("ok", false));
  EXPECT_NE(responses[3].Find("counters"), nullptr);
}

// Pipelined queries followed by `stats` on the same connection: the
// stats answer must reflect the queries before it (strict in-order
// semantics), including the cache hit from a duplicated query.
TEST(ServerLoopbackTest, PipelinedStatsSeesPrecedingQueries) {
  LiveServer live(2);
  const std::vector<double> query =
      gen::RandomWalkDataset(1, kLength, 5)[0].values();
  const std::vector<JsonValue> cold = live.RoundTrip({OneNnLine(1, query)});
  ASSERT_EQ(cold.size(), 1u);
  ASSERT_TRUE(cold[0].BoolOr("ok", false));

  // The duplicate arrives after the first answer is cached; the stats op
  // pipelined behind it must observe its hit (strict in-order semantics).
  const std::vector<JsonValue> responses = live.RoundTrip({
      OneNnLine(2, query),
      R"({"id": 3, "op": "stats"})",
  });
  ASSERT_EQ(responses.size(), 2u);
  ASSERT_TRUE(responses[0].BoolOr("ok", false));
  const double d1 =
      cold[0].Find("neighbors")->AsArray()[0].NumberOr("distance", -1);
  const double d2 =
      responses[0].Find("neighbors")->AsArray()[0].NumberOr("distance", -2);
  EXPECT_EQ(d1, d2);  // The cache hit is bitwise-identical.

  const JsonValue* cache = responses[1].Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_GE(cache->NumberOr("hits", 0), 1.0);
}

TEST(ServerLoopbackTest, MalformedLinesGetErrorResponses) {
  LiveServer live(1);
  const std::vector<JsonValue> responses = live.RoundTrip({
      "this is not json",
      R"({"id": 9, "op": "1nn", "dataset": "nope", "query": [1.0, 2.0]})",
  });
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_FALSE(responses[0].BoolOr("ok", true));
  EXPECT_FALSE(responses[1].BoolOr("ok", true));
  EXPECT_EQ(responses[1].NumberOr("id", -1), 9.0);
  EXPECT_NE(responses[1].StringOr("error", "").find("unknown dataset"),
            std::string::npos);
}

TEST(ServerLoopbackTest, ShutdownOpStopsTheServeLoop) {
  ServerOptions options;
  options.threads = 1;
  Server server(std::move(options));
  server.RegisterDataset("d", gen::RandomWalkDataset(4, 16, 1));
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  std::thread serve_thread([&] { server.Serve(); });

  TcpConn conn = ConnectLoopback(server.port(), &error);
  ASSERT_TRUE(conn.valid()) << error;
  ASSERT_TRUE(conn.WriteAll(R"({"id": 1, "op": "shutdown"})" "\n"));
  std::string line;
  ASSERT_TRUE(conn.ReadLine(&line));  // The shutdown ack.
  serve_thread.join();  // Serve() returns without RequestShutdown().
  SUCCEED();
}

}  // namespace
}  // namespace serve
}  // namespace warp
