// Independent reference implementations for differential testing.
//
// These are deliberately naive (full O(n*m) matrices, no rolling arrays,
// no window tricks) so they share no code — and therefore no bugs — with
// the optimized kernels in warp/core.

#ifndef WARP_TESTS_TESTING_REFERENCE_IMPLS_H_
#define WARP_TESTS_TESTING_REFERENCE_IMPLS_H_

#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "warp/common/cost.h"
#include "warp/core/window.h"

namespace warp {
namespace testing {

inline double RefCost(double a, double b, CostKind kind) {
  return kind == CostKind::kAbsolute ? std::fabs(a - b) : (a - b) * (a - b);
}

// Full-matrix DTW restricted to an arbitrary window.
inline double RefWindowedDtw(std::span<const double> x,
                             std::span<const double> y,
                             const WarpingWindow& window,
                             CostKind kind = CostKind::kSquared) {
  const size_t n = x.size();
  const size_t m = y.size();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> d(n + 1, std::vector<double>(m + 1, inf));
  d[0][0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      if (!window.Contains(i - 1, j - 1)) continue;
      const double best =
          std::min({d[i - 1][j - 1], d[i - 1][j], d[i][j - 1]});
      d[i][j] = best + RefCost(x[i - 1], y[j - 1], kind);
    }
  }
  return d[n][m];
}

inline double RefDtw(std::span<const double> x, std::span<const double> y,
                     CostKind kind = CostKind::kSquared) {
  return RefWindowedDtw(x, y, WarpingWindow::Full(x.size(), y.size()), kind);
}

inline double RefCdtw(std::span<const double> x, std::span<const double> y,
                      size_t band, CostKind kind = CostKind::kSquared) {
  return RefWindowedDtw(
      x, y, WarpingWindow::SakoeChiba(x.size(), y.size(), band), kind);
}

}  // namespace testing
}  // namespace warp

#endif  // WARP_TESTS_TESTING_REFERENCE_IMPLS_H_
