#include "warp/mining/window_search.h"

#include <limits>

#include "warp/common/assert.h"
#include "warp/core/dtw.h"
#include "warp/core/envelope.h"
#include "warp/core/lower_bounds.h"

namespace warp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

double LoocvAccuracy(const Dataset& dataset, size_t band, CostKind cost) {
  WARP_CHECK(dataset.size() >= 2);
  WARP_CHECK_MSG(dataset.UniformLength() > 0,
                 "window search requires uniform-length series");

  // Precompute envelopes once per band.
  std::vector<Envelope> envelopes;
  envelopes.reserve(dataset.size());
  for (const TimeSeries& series : dataset.series()) {
    envelopes.push_back(ComputeEnvelope(series.view(), band));
  }

  size_t correct = 0;
  DtwWorkspace buffer;
  for (size_t q = 0; q < dataset.size(); ++q) {
    const std::span<const double> query = dataset[q].view();
    double best = kInf;
    int best_label = TimeSeries::kUnlabeled;
    for (size_t i = 0; i < dataset.size(); ++i) {
      if (i == q) continue;
      const std::span<const double> candidate = dataset[i].view();
      if (LbKimFl(query, candidate, cost) >= best) continue;
      if (LbKeogh(envelopes[q], candidate, cost, best) >= best) continue;
      if (LbKeogh(envelopes[i], query, cost, best) >= best) continue;
      const double d =
          CdtwDistanceAbandoning(query, candidate, band, best, cost, &buffer);
      if (d < best) {
        best = d;
        best_label = dataset[i].label();
      }
    }
    if (best_label == dataset[q].label()) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

WindowSearchResult FindBestWindowLoocv(const Dataset& dataset,
                                       size_t max_band, size_t step,
                                       CostKind cost) {
  WARP_CHECK(step > 0);
  WindowSearchResult result;
  result.best_accuracy = -1.0;
  for (size_t band = 0; band <= max_band; band += step) {
    const double accuracy = LoocvAccuracy(dataset, band, cost);
    result.bands.push_back(band);
    result.accuracy_by_band.push_back(accuracy);
    // Strictly-greater keeps the smallest band on ties (UCR convention).
    if (accuracy > result.best_accuracy) {
      result.best_accuracy = accuracy;
      result.best_band = band;
    }
  }
  return result;
}

}  // namespace warp
