// Property-based randomized fuzzing of the warp/check invariant oracles.
//
// One seeded Rng drives hundreds of generated cases — random walks, noisy
// sines, constants, near-duplicates, and the paper's Appendix-A
// adversarial pairs — across a spread of lengths, bands, cost kinds,
// abandon thresholds, FastDTW radii, and thread counts. Every oracle in
// src/warp/check is exercised on every eligible case; the suite fails if
// fewer than 500 oracle evaluations ran, so the coverage floor is itself
// machine-checked. Negative tests then tamper with paths and cascade
// values and assert the oracles reject the forgeries.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "warp/check/bound_oracle.h"
#include "warp/check/exactness_oracle.h"
#include "warp/check/path_oracle.h"
#include "warp/common/random.h"
#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/gen/adversarial.h"
#include "warp/gen/random_walk.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace {

constexpr double kTol = 1e-9;

// A generated equal-length pair plus the knobs the oracles take.
struct FuzzCase {
  std::vector<double> x;
  std::vector<double> y;
  size_t band = 0;
  CostKind cost = CostKind::kSquared;
  std::string description;
};

std::vector<double> NoisySine(size_t n, double period, Rng& rng) {
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = std::sin(2.0 * 3.14159265358979 * static_cast<double>(i) /
                         period) +
                rng.Gaussian(0.0, 0.05);
  }
  return values;
}

FuzzCase DrawCase(Rng& rng, int round) {
  static constexpr size_t kLengths[] = {1, 2, 3, 5, 16, 33, 64, 128};
  FuzzCase c;
  const size_t n = kLengths[rng.UniformInt(uint64_t{8})];
  const uint64_t band_pick = rng.UniformInt(uint64_t{4});
  c.band = band_pick == 0   ? 0
           : band_pick == 1 ? 1
           : band_pick == 2 ? std::max<size_t>(1, n / 8)
                            : n;  // Band >= n degenerates to full DTW.
  c.cost = rng.Bernoulli(0.5) ? CostKind::kSquared : CostKind::kAbsolute;

  const uint64_t kind = rng.UniformInt(uint64_t{5});
  switch (kind) {
    case 0:  // Independent random walks.
      c.x = gen::RandomWalk(n, rng);
      c.y = gen::RandomWalk(n, rng);
      c.description = "random walks";
      break;
    case 1:  // Z-normalized walks (the classification setting).
      c.x = ZNormalized(gen::RandomWalk(n, rng));
      c.y = ZNormalized(gen::RandomWalk(n, rng));
      c.description = "z-normalized walks";
      break;
    case 2:  // Constant vs. constant — degenerate flat series.
      c.x.assign(n, rng.Uniform(-2.0, 2.0));
      c.y.assign(n, rng.Uniform(-2.0, 2.0));
      c.description = "constant series";
      break;
    case 3: {  // Near-duplicates: distances near zero stress tolerances.
      c.x = gen::RandomWalk(n, rng);
      c.y = c.x;
      for (double& v : c.y) v += rng.Gaussian(0.0, 1e-6);
      c.description = "near-duplicate walks";
      break;
    }
    default:  // Noisy sines with different periods.
      c.x = NoisySine(n, 8.0 + static_cast<double>(round % 17), rng);
      c.y = NoisySine(n, 5.0 + static_cast<double>(round % 11), rng);
      c.description = "noisy sines";
      break;
  }
  return c;
}

// Runs every applicable oracle on one case, incrementing `evaluations`
// per oracle invocation. Failures carry the case description and seed.
void RunOracles(const FuzzCase& c, Rng& rng, int round, int* evaluations) {
  std::string error;
  const std::string context =
      c.description + " (round " + std::to_string(round) +
      ", n=" + std::to_string(c.x.size()) +
      ", band=" + std::to_string(c.band) + ")";

  EXPECT_TRUE(check::CheckLowerBoundOrdering(c.x, c.y, c.band, c.cost, kTol,
                                             &error))
      << context << ": " << error;
  ++*evaluations;

  const size_t n = c.x.size();
  std::vector<size_t> bands = {0, 1, std::max<size_t>(2, n / 4), n};
  std::sort(bands.begin(), bands.end());
  EXPECT_TRUE(
      check::CheckCdtwBandMonotone(c.x, c.y, bands, c.cost, kTol, &error))
      << context << ": " << error;
  ++*evaluations;

  // Abandon thresholds below, at, and above the true distance.
  const double exact = CdtwDistance(c.x, c.y, c.band, c.cost);
  for (const double scale : {0.3, 1.0, 1.7}) {
    EXPECT_TRUE(check::CheckAbandoningExact(c.x, c.y, c.band, exact * scale,
                                            c.cost, kTol, &error))
        << context << " (threshold x" << scale << "): " << error;
    ++*evaluations;
  }

  // PrunedDTW with the default Euclidean bound and a caller-supplied
  // loose bound.
  EXPECT_TRUE(
      check::CheckPrunedExact(c.x, c.y, c.band, c.cost, -1.0, kTol, &error))
      << context << ": " << error;
  ++*evaluations;
  EXPECT_TRUE(check::CheckPrunedExact(c.x, c.y, c.band, c.cost, exact * 4 + 1,
                                      kTol, &error))
      << context << " (loose bound): " << error;
  ++*evaluations;

  const size_t radius = static_cast<size_t>(rng.UniformInt(uint64_t{6}));
  EXPECT_TRUE(check::CheckFastDtwAdmissible(c.x, c.y, radius, c.cost, kTol,
                                            &error))
      << context << " (radius " << radius << "): " << error;
  ++*evaluations;

  EXPECT_TRUE(
      check::CheckSelfDistanceZero(c.x, c.band, c.cost, kTol, &error))
      << context << ": " << error;
  ++*evaluations;

  EXPECT_TRUE(check::CheckSymmetry(c.x, c.y, c.band, c.cost, kTol, &error))
      << context << ": " << error;
  ++*evaluations;

  // Path oracles on the exact banded alignment: valid, in-window, and
  // cost-consistent.
  const WarpingWindow window = WarpingWindow::SakoeChiba(n, n, c.band);
  const DtwResult banded = WindowedDtw(c.x, c.y, window, c.cost);
  EXPECT_TRUE(check::CheckPath(banded.path, n, n, &error))
      << context << ": " << error;
  ++*evaluations;
  EXPECT_TRUE(check::CheckPathInWindow(banded.path, window, &error))
      << context << ": " << error;
  ++*evaluations;
  EXPECT_TRUE(check::CheckPathCost(banded.path, c.x, c.y, c.cost,
                                   banded.distance, kTol, &error))
      << context << ": " << error;
  ++*evaluations;
}

TEST(CheckPropertyFuzz, OraclesHoldOverSeededRandomCases) {
  Rng rng(0xC0FFEE5EED);
  int evaluations = 0;
  for (int round = 0; round < 48; ++round) {
    const FuzzCase c = DrawCase(rng, round);
    RunOracles(c, rng, round, &evaluations);
    if (::testing::Test::HasFailure()) break;  // First failure explains most.
  }
  // The acceptance floor: at least 500 oracle evaluations actually ran.
  EXPECT_GE(evaluations, 500);
}

TEST(CheckPropertyFuzz, OraclesHoldOnAdversarialPairs) {
  // The paper's Appendix-A construction is the hardest known input for
  // FastDTW; the exactness and bound oracles must hold on it regardless.
  int evaluations = 0;
  Rng rng(0xADA9);
  for (const size_t length : {64, 128, 256}) {
    gen::AdversarialOptions options;
    options.length = length;
    options.burst_length = length / 8;
    options.burst_center_a = length / 5;
    options.burst_center_b = length - length / 5;
    options.bump_center_a = length / 2 + length / 16;
    options.bump_center_b = length / 2 - length / 16;
    const gen::AdversarialTriple triple = gen::MakeAdversarialTriple(options);
    FuzzCase c;
    c.x = triple.a;
    c.y = triple.b;
    c.band = length / 10;
    c.cost = CostKind::kSquared;
    c.description = "adversarial pair";
    RunOracles(c, rng, static_cast<int>(length), &evaluations);
  }
  EXPECT_GE(evaluations, 3 * 13);
}

TEST(CheckPropertyFuzz, CascadeClassifierExactAcrossThreadCounts) {
  // The accelerated 1-NN cascade must match brute force at every thread
  // count the parallel layer supports (and the three runs must agree with
  // each other, which CheckCascadeExact enforces via the shared brute-
  // force reference).
  std::string error;
  for (const uint64_t seed : {11u, 22u, 33u}) {
    Dataset train = gen::RandomWalkDataset(16, 48, seed);
    Dataset test = gen::RandomWalkDataset(8, 48, seed + 1000);
    for (size_t i = 0; i < train.size(); ++i) {
      train[i].set_label(static_cast<int>(i % 3));
    }
    for (size_t i = 0; i < test.size(); ++i) {
      test[i].set_label(static_cast<int>(i % 3));
    }
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      EXPECT_TRUE(check::CheckCascadeExact(train, test, 5,
                                           CostKind::kSquared, threads, kTol,
                                           &error))
          << "seed " << seed << ", threads " << threads << ": " << error;
    }
  }
}

// ---------------------------------------------------------------------------
// Negative tests: the oracles must catch deliberately broken inputs.

TEST(CheckOracleNegative, TamperedCascadeIsRejected) {
  Rng rng(0xBAD);
  const std::vector<double> x = gen::RandomWalk(64, rng);
  const std::vector<double> y = gen::RandomWalk(64, rng);
  const check::BoundCascade honest =
      check::ComputeBoundCascade(x, y, 5, CostKind::kSquared);
  std::string error;
  ASSERT_TRUE(check::CheckBoundCascade(honest, kTol, &error)) << error;

  // A lower bound that overshoots the exact distance — the forgery that
  // would silently corrupt 1-NN pruning.
  check::BoundCascade broken_lb = honest;
  broken_lb.lb_keogh = honest.cdtw * 1.5 + 1.0;
  EXPECT_FALSE(check::CheckBoundCascade(broken_lb, kTol, &error));
  EXPECT_NE(error.find("LB_Keogh"), std::string::npos) << error;

  // An "exact" banded distance below the unconstrained optimum.
  check::BoundCascade broken_cdtw = honest;
  broken_cdtw.cdtw = honest.dtw - 1.0 - honest.dtw * 0.5;
  EXPECT_FALSE(check::CheckBoundCascade(broken_cdtw, kTol, &error));

  // LB_Improved forged below LB_Keogh (violates the two-pass refinement).
  check::BoundCascade broken_improved = honest;
  broken_improved.lb_improved = honest.lb_keogh - 1.0;
  EXPECT_FALSE(check::CheckBoundCascade(broken_improved, kTol, &error));
  EXPECT_NE(error.find("LB_Improved"), std::string::npos) << error;
}

TEST(CheckOracleNegative, BrokenPathsAreRejected) {
  Rng rng(0xBADBAD);
  const std::vector<double> x = gen::RandomWalk(16, rng);
  const std::vector<double> y = gen::RandomWalk(16, rng);
  const DtwResult honest = Dtw(x, y);
  std::string error;
  ASSERT_TRUE(check::CheckPath(honest.path, 16, 16, &error)) << error;

  {  // Wrong start.
    std::vector<PathPoint> points = honest.path.points();
    points.front() = {1, 0};
    EXPECT_FALSE(check::CheckPath(WarpingPath(std::move(points)), 16, 16,
                                  &error));
  }
  {  // Wrong end.
    std::vector<PathPoint> points = honest.path.points();
    points.back() = {15, 14};
    EXPECT_FALSE(check::CheckPath(WarpingPath(std::move(points)), 16, 16,
                                  &error));
  }
  {  // A teleporting (discontinuous) step.
    std::vector<PathPoint> points = honest.path.points();
    points[points.size() / 2].j += 3;
    EXPECT_FALSE(check::CheckPath(WarpingPath(std::move(points)), 16, 16,
                                  &error));
  }
  {  // A backwards (non-monotone) step.
    std::vector<PathPoint> points = honest.path.points();
    std::swap(points[3], points[4]);
    EXPECT_FALSE(check::CheckPath(WarpingPath(std::move(points)), 16, 16,
                                  &error));
  }
  {  // Lying about the distance.
    EXPECT_FALSE(check::CheckPathCost(honest.path, x, y, CostKind::kSquared,
                                      honest.distance + 1.0, kTol, &error));
    EXPECT_NE(error.find("disagrees"), std::string::npos) << error;
  }
}

TEST(CheckOracleNegative, OutOfWindowPathIsRejected) {
  // A diagonal-only (band 0) window; the path detours off the diagonal.
  const WarpingWindow window = WarpingWindow::SakoeChiba(4, 4, 0);
  WarpingPath detour(std::vector<PathPoint>{
      {0, 0}, {0, 1}, {1, 1}, {2, 2}, {3, 3}});
  std::string error;
  EXPECT_FALSE(check::CheckPathInWindow(detour, window, &error));
  EXPECT_NE(error.find("escapes"), std::string::npos) << error;

  WarpingPath diagonal(std::vector<PathPoint>{
      {0, 0}, {1, 1}, {2, 2}, {3, 3}});
  EXPECT_TRUE(check::CheckPathInWindow(diagonal, window, &error)) << error;
}

}  // namespace
}  // namespace warp
