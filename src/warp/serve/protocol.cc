#include "warp/serve/protocol.h"

#include <cmath>

#include "warp/common/stopwatch.h"
#include "warp/obs/histogram.h"
#include "warp/obs/json_writer.h"
#include "warp/serve/wire.h"

namespace warp {
namespace serve {

namespace {

bool ReadSizeT(const JsonValue& object, const std::string& key,
               size_t* value, std::string* error) {
  const JsonValue* member = object.Find(key);
  if (member == nullptr) return true;  // Optional; keep default.
  if (!member->is_number() || member->AsNumber() < 0 ||
      std::floor(member->AsNumber()) != member->AsNumber()) {
    *error = "'" + key + "' must be a non-negative integer";
    return false;
  }
  *value = static_cast<size_t>(member->AsNumber());
  return true;
}

}  // namespace

bool ParseRequestLine(const std::string& line, ParsedLine* out,
                      std::string* error) {
  JsonValue root;
  if (!ParseJson(line, &root, error)) {
    *error = "malformed JSON: " + *error;
    return false;
  }
  if (!root.is_object()) {
    *error = "request must be a JSON object";
    return false;
  }
  out->id = static_cast<int64_t>(root.NumberOr("id", 0.0));
  out->request.id = out->id;

  const std::string op = root.StringOr("op", "");
  if (op.empty()) {
    *error = "request missing 'op'";
    return false;
  }

  // Control operations.
  if (op == "ping") { out->control = ControlOp::kPing; return true; }
  if (op == "stats") { out->control = ControlOp::kStats; return true; }
  if (op == "metrics") { out->control = ControlOp::kMetrics; return true; }
  if (op == "slowlog") { out->control = ControlOp::kSlowlog; return true; }
  if (op == "shutdown") { out->control = ControlOp::kShutdown; return true; }
  if (op == "save_snapshot") {
    out->control = ControlOp::kSaveSnapshot;
    out->dataset = root.StringOr("dataset", "");
    out->path = root.StringOr("path", "");
    if (out->dataset.empty()) {
      *error = "'save_snapshot' requires 'dataset'";
      return false;
    }
    if (out->path.empty()) {
      *error = "'save_snapshot' requires 'path'";
      return false;
    }
    return true;
  }
  if (op == "load_snapshot") {
    out->control = ControlOp::kLoadSnapshot;
    out->dataset = root.StringOr("dataset", "");  // Optional rename.
    out->path = root.StringOr("path", "");
    if (out->path.empty()) {
      *error = "'load_snapshot' requires 'path'";
      return false;
    }
    return true;
  }
  if (op == "info" || op == "load") {
    out->control = op == "info" ? ControlOp::kInfo : ControlOp::kLoad;
    out->dataset = root.StringOr("dataset", "");
    if (out->dataset.empty()) {
      *error = "'" + op + "' requires 'dataset'";
      return false;
    }
    if (op == "load") {
      out->path = root.StringOr("path", "");
      if (out->path.empty()) {
        *error = "'load' requires 'path'";
        return false;
      }
      if (const JsonValue* bands = root.Find("bands")) {
        if (!bands->is_array()) {
          *error = "'bands' must be an array of window fractions";
          return false;
        }
        for (const JsonValue& band : bands->AsArray()) {
          if (!band.is_number() || band.AsNumber() < 0) {
            *error = "'bands' entries must be non-negative numbers";
            return false;
          }
          out->band_fractions.push_back(band.AsNumber());
        }
      }
    }
    return true;
  }

  // Engine queries.
  out->control = ControlOp::kNone;
  ServeRequest& request = out->request;
  if (!ParseQueryOp(op, &request.op)) {
    *error = "unknown op: '" + op + "'";
    return false;
  }
  request.dataset = root.StringOr("dataset", "");
  if (request.dataset.empty()) {
    *error = "query missing 'dataset'";
    return false;
  }
  request.measure = root.StringOr("measure", "cdtw");

  MeasureParams& params = request.params;
  params.window_fraction = root.NumberOr("window", params.window_fraction);
  if (const JsonValue* band = root.Find("band")) {
    if (!band->is_number() || band->AsNumber() < 0) {
      *error = "'band' must be a non-negative cell count";
      return false;
    }
    params.band_cells = static_cast<long>(band->AsNumber());
  }
  const std::string cost = root.StringOr("cost", "squared");
  if (cost == "squared") {
    params.cost = CostKind::kSquared;
  } else if (cost == "absolute") {
    params.cost = CostKind::kAbsolute;
  } else {
    *error = "unknown cost: '" + cost + "'";
    return false;
  }
  params.wdtw_g = root.NumberOr("g", params.wdtw_g);
  params.wdtw_full_band = root.BoolOr("full_band", params.wdtw_full_band);
  params.adtw_omega = root.NumberOr("omega", params.adtw_omega);
  params.adtw_ratio = root.NumberOr("ratio", params.adtw_ratio);
  params.lcss_epsilon = root.NumberOr("epsilon", params.lcss_epsilon);
  params.erp_gap = root.NumberOr("gap", params.erp_gap);
  params.msm_cost = root.NumberOr("c", params.msm_cost);
  if (!ReadSizeT(root, "radius", &params.fastdtw_radius, error)) return false;

  if (!ReadSizeT(root, "k", &request.k, error)) return false;
  if (!ReadSizeT(root, "index", &request.index, error)) return false;
  request.threshold = root.NumberOr("threshold", request.threshold);
  request.deadline_ms = root.NumberOr("deadline_ms", request.deadline_ms);
  request.znormalize = root.BoolOr("znorm", request.znormalize);
  request.trace = root.BoolOr("trace", request.trace);

  const JsonValue* query = root.Find("query");
  if (query == nullptr || !query->is_array()) {
    *error = "query ops require a 'query' array of numbers";
    return false;
  }
  request.query.reserve(query->AsArray().size());
  for (const JsonValue& v : query->AsArray()) {
    if (!v.is_number()) {
      *error = "'query' entries must be numbers";
      return false;
    }
    request.query.push_back(v.AsNumber());
  }
  return true;
}

std::string FormatResponse(const ServeResponse& response) {
  // Serialization is the one stage that cannot time itself from outside
  // (the caller would have to re-serialize to measure it), so the clock
  // runs here: body first, then — only when the request asked for a
  // trace — the trace object goes last with the just-measured value.
  const Stopwatch serialize_watch;
  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("id").Int(response.id)
      .Key("ok").Bool(response.ok);
  if (!response.ok) {
    writer.Key("error").String(response.error).EndObject();
    return writer.TakeOutput();
  }
  writer.Key("op").String(QueryOpName(response.op));
  writer.Key("partial").Bool(response.partial);
  writer.Key("scanned").Uint(response.scanned);
  writer.Key("total").Uint(response.total);
  switch (response.op) {
    case QueryOp::k1Nn:
    case QueryOp::kKnn:
    case QueryOp::kRange:
      writer.Key("neighbors").BeginArray();
      for (const Neighbor& n : response.neighbors) {
        writer.BeginObject()
            .Key("index").Uint(n.index)
            .Key("label").Int(n.label)
            .Key("distance").Double(n.distance)
            .EndObject();
      }
      writer.EndArray();
      break;
    case QueryOp::kDist:
      writer.Key("distance").Double(response.distance);
      break;
    case QueryOp::kSubsequence:
      writer.Key("position").Uint(response.position);
      writer.Key("distance").Double(response.distance);
      break;
  }
  const double serialize_us = serialize_watch.ElapsedMicros();
  WARP_HISTOGRAM_RECORD_US(obs::Histogram::kServeStageSerialize,
                           serialize_us);
  if (response.trace.requested) {
    // Wall-clock echo; never part of goldens or the cache key. `cells`
    // is the one deterministic member (DP work, 0 on cache hits).
    const StageTrace& t = response.trace;
    writer.Key("trace").BeginObject()
        .Key("cached").Bool(t.from_cache)
        .Key("parse_us").Double(t.parse_us)
        .Key("cache_us").Double(t.cache_us)
        .Key("queue_us").Double(t.queue_us)
        .Key("engine_us").Double(t.engine_us)
        .Key("merge_us").Double(t.merge_us)
        .Key("serialize_us").Double(serialize_us)
        .Key("cells").Uint(t.cells)
        .EndObject();
  }
  writer.EndObject();
  return writer.TakeOutput();
}

std::string FormatErrorLine(int64_t id, const std::string& error) {
  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("id").Int(id)
      .Key("ok").Bool(false)
      .Key("error").String(error)
      .EndObject();
  return writer.TakeOutput();
}

}  // namespace serve
}  // namespace warp
