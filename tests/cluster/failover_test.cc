// Fault-injection coverage for the cluster (docs/SERVING.md,
// "Multi-process cluster"): SIGKILL a shard worker mid-query-stream and
// assert the router (a) keeps answering scans with `partial:true` +
// `shards_missing` instead of hanging or crashing, (b) fails
// dist/subsequence queries whose owning shard is the dead one with a
// clear error, and (c) returns to answers bitwise-identical to the
// single-process golden once the supervisor restarts the worker.

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "warp/cluster/proc.h"
#include "warp/cluster/router.h"
#include "warp/common/stopwatch.h"
#include "warp/cluster/supervisor.h"
#include "warp/gen/random_walk.h"
#include "warp/obs/json_writer.h"
#include "warp/serve/dataset_store.h"
#include "warp/serve/net.h"
#include "warp/serve/server.h"
#include "warp/serve/snapshot.h"

namespace warp {
namespace cluster {
namespace {

constexpr size_t kShards = 3;
constexpr size_t kSeries = 36;
constexpr size_t kLength = 40;
constexpr uint64_t kSeed = 11;
// The snapshot is the first (and only) registration every loader makes,
// so it lands on epoch 1 everywhere — which pins the partition function
// used to pick per-shard victim indices below.
constexpr uint64_t kEpoch = 1;

std::string SnapshotDirOnce() {
  static const std::string dir = [] {
    const std::string path = ::testing::TempDir() + "/failover_snaps";
    std::filesystem::create_directories(path);
    serve::DatasetStore store(1);
    const auto stored = store.Register(
        "d", gen::RandomWalkDataset(kSeries, kLength, kSeed), {5});
    std::string error;
    EXPECT_TRUE(serve::SaveSnapshot(*stored, path + "/d.wsnap", &error))
        << error;
    return path;
  }();
  return dir;
}

// The smallest global index owned by `shard` under the test partition.
size_t IndexOwnedBy(size_t shard) {
  for (size_t i = 0; i < kSeries; ++i) {
    if (serve::ShardRouter::Partition(i, kEpoch, kShards) == shard) return i;
  }
  ADD_FAILURE() << "no series lands on shard " << shard;
  return 0;
}

std::string ScanLine(int64_t id, const std::string& op,
                     const std::vector<double>& query) {
  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("id").Int(id)
      .Key("op").String(op)
      .Key("dataset").String("d");
  if (op == "knn") writer.Key("k").Uint(4);
  if (op == "range") writer.Key("threshold").Double(55.0);
  writer.Key("query").BeginArray();
  for (double v : query) writer.Double(v);
  writer.EndArray().EndObject();
  return writer.TakeOutput();
}

std::string DistLine(int64_t id, size_t index,
                     const std::vector<double>& query) {
  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("id").Int(id)
      .Key("op").String("dist")
      .Key("dataset").String("d")
      .Key("index").Uint(index)
      .Key("query").BeginArray();
  for (double v : query) writer.Double(v);
  writer.EndArray().EndObject();
  return writer.TakeOutput();
}

std::vector<std::string> RoundTrip(serve::TcpConn& conn,
                                   const std::vector<std::string>& lines) {
  std::string payload;
  for (const std::string& line : lines) payload += line + "\n";
  EXPECT_TRUE(conn.WriteAll(payload));
  std::vector<std::string> responses;
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string line;
    if (!conn.ReadLine(&line)) {
      ADD_FAILURE() << "connection closed after " << i << " responses";
      break;
    }
    responses.push_back(std::move(line));
  }
  return responses;
}

TEST(FailoverTest, KilledWorkerDegradesThenRecoversBitwise) {
  const Dataset queries = gen::RandomWalkDataset(1, kLength, 77);
  const std::vector<double> q = queries[0].values();
  const size_t victim_shard = 1;
  const size_t dead_index = IndexOwnedBy(victim_shard);
  const size_t live_index = IndexOwnedBy(2);

  const std::vector<std::string> lines = {
      ScanLine(1, "1nn", q),
      ScanLine(2, "knn", q),
      ScanLine(3, "range", q),
      DistLine(4, dead_index, q),
      DistLine(5, live_index, q),
  };

  // Single-process golden at the same shard count.
  std::vector<std::string> golden;
  {
    serve::ServerOptions options;
    options.shards = kShards;
    serve::Server server(std::move(options));
    std::string error;
    ASSERT_TRUE(server.LoadSnapshotDir(SnapshotDirOnce(), &error)) << error;
    ASSERT_TRUE(server.Start(&error)) << error;
    std::thread serve_thread([&server] { server.Serve(); });
    serve::TcpConn conn = serve::ConnectLoopback(server.port(), &error);
    ASSERT_TRUE(conn.valid()) << error;
    golden = RoundTrip(conn, lines);
    conn.Close();
    server.RequestShutdown();
    serve_thread.join();
  }
  ASSERT_EQ(golden.size(), lines.size());

  SupervisorOptions sup;
  sup.shards = kShards;
  sup.worker_binary = WARP_SERVE_PATH;
  sup.snapshot_dir = SnapshotDirOnce();
  // A long first-retry backoff keeps the degraded window open long
  // enough to observe deterministically; pings are off so the only
  // down-detection is the reap of our SIGKILL.
  sup.restart_backoff_ms = 1500;
  sup.ping_interval_ms = 0;
  Supervisor supervisor(sup);
  std::string error;
  ASSERT_TRUE(supervisor.Start(&error)) << error;

  Router router(RouterOptions{}, &supervisor);
  ASSERT_TRUE(router.Start(&error)) << error;
  std::thread router_thread([&router] { router.Serve(); });
  serve::TcpConn conn = serve::ConnectLoopback(router.port(), &error);
  ASSERT_TRUE(conn.valid()) << error;

  // Healthy cluster answers == golden, byte for byte.
  {
    const std::vector<std::string> healthy = RoundTrip(conn, lines);
    ASSERT_EQ(healthy.size(), golden.size());
    for (size_t i = 0; i < golden.size(); ++i) {
      EXPECT_EQ(healthy[i], golden[i]) << "healthy response " << i;
    }
  }

  // Kill the victim worker mid-stream and wait for the supervisor to
  // notice (reap) the death.
  const long victim_pid = supervisor.worker_pid(victim_shard);
  ASSERT_GT(victim_pid, 0);
  ASSERT_TRUE(SendSignal(victim_pid, SIGKILL));
  {
    Stopwatch waited;
    while (supervisor.Status(victim_shard).up &&
           waited.ElapsedMillis() < 5000) {
      SleepMillis(10);
    }
  }
  ASSERT_FALSE(supervisor.Status(victim_shard).up)
      << "supervisor never noticed the SIGKILL";

  // Degraded window: scans answer partial with the missing shard named;
  // a dist to a series owned by the dead shard fails fast; a dist to a
  // live shard's series still answers exactly the golden bytes.
  {
    const std::vector<std::string> degraded = RoundTrip(conn, lines);
    ASSERT_EQ(degraded.size(), lines.size());
    for (size_t i = 0; i < 3; ++i) {
      SCOPED_TRACE("degraded scan " + std::to_string(i));
      EXPECT_NE(degraded[i].find("\"ok\":true"), std::string::npos)
          << degraded[i];
      EXPECT_NE(degraded[i].find("\"partial\":true"), std::string::npos)
          << degraded[i];
      EXPECT_NE(degraded[i].find("\"shards_missing\":[1]"), std::string::npos)
          << degraded[i];
    }
    EXPECT_NE(degraded[3].find("\"ok\":false"), std::string::npos)
        << degraded[3];
    EXPECT_NE(degraded[3].find("shard 1 is down"), std::string::npos)
        << degraded[3];
    EXPECT_EQ(degraded[4], golden[4]) << "live-shard dist changed bytes";
  }

  // Recovery: wait for the restarted worker (generation bump), then the
  // full mix must again be bitwise-identical to the golden — including
  // the scans that were partial a moment ago (partial answers are never
  // cached).
  {
    Stopwatch waited;
    while (waited.ElapsedMillis() < 15000) {
      const WorkerStatus status = supervisor.Status(victim_shard);
      if (status.up && status.generation >= 2) break;
      SleepMillis(20);
    }
  }
  {
    const WorkerStatus status = supervisor.Status(victim_shard);
    ASSERT_TRUE(status.up) << "worker never restarted";
    ASSERT_GE(status.generation, 2u);
    ASSERT_GE(status.restarts, 1u);
  }
  {
    const std::vector<std::string> recovered = RoundTrip(conn, lines);
    ASSERT_EQ(recovered.size(), golden.size());
    for (size_t i = 0; i < golden.size(); ++i) {
      EXPECT_EQ(recovered[i], golden[i]) << "post-restart response " << i;
    }
  }

  conn.Close();
  router.RequestShutdown();
  router_thread.join();
  supervisor.Stop();
}

}  // namespace
}  // namespace cluster
}  // namespace warp
