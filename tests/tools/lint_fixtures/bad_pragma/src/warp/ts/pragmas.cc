#include <chrono>  // warp-lint: allow(chrono-containment)

// warp-lint: allow(raw-assert): nothing here to suppress

// warp-lint: this is not the allow syntax

int x = 0;  // warp-lint: allow(no-such-rule): typo fixture
