// DatasetStore tests: the precomputed LB index must match what a query
// would compute from scratch, epoch/snapshot semantics must hold, and
// the sharded layout must be a pure re-arrangement of the logical
// dataset (same series, envelopes, and endpoint caches at any shard
// count).

#include "warp/serve/dataset_store.h"

#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "warp/core/envelope.h"
#include "warp/gen/random_walk.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace serve {
namespace {

TEST(DatasetStoreTest, RegisterZNormalizesEverySeries) {
  const Dataset raw = gen::RandomWalkDataset(6, 32, 7);
  DatasetStore store;
  const auto stored = store.Register("d", raw, {});
  ASSERT_EQ(stored->size(), raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(stored->SeriesAt(i).values(), ZNormalized(raw[i].values()))
        << "series " << i;
  }
  EXPECT_EQ(stored->uniform_length, 32u);
}

// The index exists so queries skip per-candidate envelope builds; it is
// only sound if it equals ComputeEnvelope on the z-normalized series.
TEST(DatasetStoreTest, EnvelopeIndexMatchesComputeEnvelope) {
  const Dataset raw = gen::RandomWalkDataset(5, 40, 13);
  DatasetStore store;
  const auto stored = store.Register("d", raw, {2, 8});
  ASSERT_EQ(stored->bands, (std::vector<size_t>{2, 8}));
  for (size_t b = 0; b < stored->bands.size(); ++b) {
    for (size_t i = 0; i < raw.size(); ++i) {
      const SeriesRef ref = stored->locate[i];
      const Envelope& actual = stored->shards[ref.shard].envelopes[b][ref.local];
      const Envelope expected =
          ComputeEnvelope(stored->SeriesAt(i).values(), stored->bands[b]);
      EXPECT_EQ(actual.upper, expected.upper);
      EXPECT_EQ(actual.lower, expected.lower);
    }
  }
}

TEST(DatasetStoreTest, HeadTailCachesMatchEndpoints) {
  const Dataset raw = gen::RandomWalkDataset(4, 16, 3);
  DatasetStore store;
  const auto stored = store.Register("d", raw, {1});
  for (size_t i = 0; i < raw.size(); ++i) {
    const SeriesRef ref = stored->locate[i];
    EXPECT_EQ(stored->shards[ref.shard].head[ref.local],
              stored->SeriesAt(i).values().front());
    EXPECT_EQ(stored->shards[ref.shard].tail[ref.local],
              stored->SeriesAt(i).values().back());
  }
}

TEST(DatasetStoreTest, BandSlotLookup) {
  DatasetStore store;
  const auto stored =
      store.Register("d", gen::RandomWalkDataset(3, 20, 1), {4, 4, 9});
  EXPECT_EQ(stored->bands, (std::vector<size_t>{4, 9}));  // Deduplicated.
  EXPECT_EQ(stored->BandSlot(4), 0u);
  EXPECT_EQ(stored->BandSlot(9), 1u);
  EXPECT_EQ(stored->BandSlot(5), StoredDataset::kNoBand);
}

TEST(DatasetStoreTest, NonUniformDatasetsSkipTheIndex) {
  Dataset ragged;
  ragged.Add(TimeSeries({1.0, 2.0, 3.0}, 0));
  ragged.Add(TimeSeries({1.0, 2.0}, 1));
  DatasetStore store;
  const auto stored = store.Register("r", ragged, {1});
  EXPECT_EQ(stored->uniform_length, 0u);
  EXPECT_TRUE(stored->bands.empty());
  // Endpoint caches are length-independent and still present.
  EXPECT_EQ(stored->size(), 2u);
  size_t cached = 0;
  for (const ShardedDataset& shard : stored->shards) {
    cached += shard.head.size();
  }
  EXPECT_EQ(cached, 2u);
}

TEST(DatasetStoreTest, EveryRegistrationBumpsTheEpoch) {
  DatasetStore store;
  EXPECT_EQ(store.CurrentEpoch(), 1u);
  const auto first = store.Register("a", gen::RandomWalkDataset(2, 8, 1), {});
  const auto second = store.Register("b", gen::RandomWalkDataset(2, 8, 2), {});
  EXPECT_EQ(first->epoch, 1u);
  EXPECT_EQ(second->epoch, 2u);
  // Replacing a name gets a fresh epoch, never a reused one.
  const auto replaced =
      store.Register("a", gen::RandomWalkDataset(2, 8, 3), {});
  EXPECT_EQ(replaced->epoch, 3u);
  EXPECT_EQ(store.CurrentEpoch(), 4u);
  EXPECT_EQ(store.Get("a")->epoch, 3u);
}

TEST(DatasetStoreTest, OutstandingSnapshotsSurviveReplacementAndDrop) {
  DatasetStore store;
  const auto old = store.Register("d", gen::RandomWalkDataset(2, 8, 1), {});
  store.Register("d", gen::RandomWalkDataset(5, 8, 2), {});
  EXPECT_EQ(old->size(), 2u);  // The old snapshot is untouched.
  EXPECT_EQ(store.Get("d")->size(), 5u);

  const auto current = store.Get("d");
  EXPECT_TRUE(store.Drop("d"));
  EXPECT_FALSE(store.Drop("d"));
  EXPECT_EQ(store.Get("d"), nullptr);
  EXPECT_EQ(current->size(), 5u);
}

TEST(DatasetStoreTest, NamesAreSorted) {
  DatasetStore store;
  store.Register("zeta", gen::RandomWalkDataset(1, 4, 1), {});
  store.Register("alpha", gen::RandomWalkDataset(1, 4, 2), {});
  store.Register("mid", gen::RandomWalkDataset(1, 4, 3), {});
  EXPECT_EQ(store.Names(),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
  EXPECT_EQ(store.Get("nope"), nullptr);
}

// ---- Sharding.

// The partition function is a pure function of (index, epoch, shards):
// pinned here because the snapshot format's any-shard-count promise (and
// any future multi-process deployment) depends on its stability.
TEST(DatasetStoreTest, PartitionIsPureAndPinned) {
  for (size_t index : {0u, 1u, 17u, 1000u}) {
    for (uint64_t epoch : {1u, 2u, 9u}) {
      for (size_t shards : {1u, 2u, 4u, 7u}) {
        const size_t assigned = ShardRouter::Partition(index, epoch, shards);
        EXPECT_LT(assigned, shards);
        EXPECT_EQ(assigned, ShardRouter::Partition(index, epoch, shards));
      }
    }
  }
  // Every index maps to shard 0 when there is only one shard.
  EXPECT_EQ(ShardRouter::Partition(123, 5, 1), 0u);
  // Fixed spot values: a silent change to the mix would strand every
  // process that persisted or agreed on a layout.
  EXPECT_EQ(ShardRouter::Partition(0, 1, 4), 0u);
  EXPECT_EQ(ShardRouter::Partition(1, 1, 4), 3u);
  EXPECT_EQ(ShardRouter::Partition(2, 1, 4), 2u);
  EXPECT_EQ(ShardRouter::Partition(3, 1, 4), 1u);
  EXPECT_EQ(ShardRouter::Partition(0, 2, 4), 3u);
}

// The sharded layout must cover every series exactly once, keep local
// order ascending in global index, and agree with `locate`.
TEST(DatasetStoreTest, ShardedLayoutIsAPartition) {
  const Dataset raw = gen::RandomWalkDataset(29, 24, 11);
  for (size_t shard_count : {1u, 2u, 4u, 7u}) {
    DatasetStore store(shard_count);
    const auto stored = store.Register("d", raw, {3});
    EXPECT_EQ(stored->shard_count(), shard_count);
    EXPECT_EQ(stored->size(), raw.size());
    std::set<size_t> seen;
    for (const ShardedDataset& shard : stored->shards) {
      ASSERT_EQ(shard.global_index.size(), shard.data.size());
      ASSERT_EQ(shard.head.size(), shard.data.size());
      ASSERT_EQ(shard.tail.size(), shard.data.size());
      for (size_t local = 0; local < shard.global_index.size(); ++local) {
        const size_t global = shard.global_index[local];
        EXPECT_TRUE(seen.insert(global).second) << "duplicate " << global;
        EXPECT_EQ(stored->router.ShardOf(global), shard.shard_id);
        EXPECT_EQ(stored->locate[global].shard, shard.shard_id);
        EXPECT_EQ(stored->locate[global].local, local);
        if (local > 0) {
          EXPECT_LT(shard.global_index[local - 1], global);
        }
      }
    }
    EXPECT_EQ(seen.size(), raw.size());
  }
}

// Sharding must not change any stored value: series, endpoint caches,
// and envelopes at 7 shards are bitwise-equal to the 1-shard layout.
TEST(DatasetStoreTest, ShardingIsAPureRearrangement) {
  const Dataset raw = gen::RandomWalkDataset(23, 30, 5);
  DatasetStore single(1);
  DatasetStore sharded(7);
  const auto base = single.Register("d", raw, {2, 6});
  const auto split = sharded.Register("d", raw, {2, 6});
  ASSERT_EQ(base->size(), split->size());
  ASSERT_EQ(base->bands, split->bands);
  for (size_t i = 0; i < base->size(); ++i) {
    EXPECT_EQ(base->SeriesAt(i).values(), split->SeriesAt(i).values());
    EXPECT_EQ(base->SeriesAt(i).label(), split->SeriesAt(i).label());
    const SeriesRef b = base->locate[i];
    const SeriesRef s = split->locate[i];
    EXPECT_EQ(base->shards[b.shard].head[b.local],
              split->shards[s.shard].head[s.local]);
    EXPECT_EQ(base->shards[b.shard].tail[b.local],
              split->shards[s.shard].tail[s.local]);
    for (size_t slot = 0; slot < base->bands.size(); ++slot) {
      EXPECT_EQ(base->shards[b.shard].envelopes[slot][b.local].upper,
                split->shards[s.shard].envelopes[slot][s.local].upper);
      EXPECT_EQ(base->shards[b.shard].envelopes[slot][b.local].lower,
                split->shards[s.shard].envelopes[slot][s.local].lower);
    }
  }
}

// RegisterIndex must be equivalent to Register when handed the same
// built index (the snapshot-restore entry point).
TEST(DatasetStoreTest, RegisterIndexMatchesRegister) {
  const Dataset raw = gen::RandomWalkDataset(12, 20, 9);
  DatasetIndex index = BuildDatasetIndex(raw, {2});
  DatasetStore direct(4);
  DatasetStore via_index(4);
  const auto a = direct.Register("d", raw, {2});
  const auto b = via_index.RegisterIndex("d", std::move(index));
  ASSERT_EQ(a->epoch, b->epoch);  // Both are each store's first epoch.
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->SeriesAt(i).values(), b->SeriesAt(i).values());
    EXPECT_EQ(a->locate[i].shard, b->locate[i].shard);
    EXPECT_EQ(a->locate[i].local, b->locate[i].local);
  }
}

}  // namespace
}  // namespace serve
}  // namespace warp
