// Unit tests for agglomerative clustering and dendrograms, including the
// paper's Fig. 7 topology-flip scenario.

#include "warp/mining/hierarchical_clustering.h"

#include <gtest/gtest.h>

#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/gen/adversarial.h"

namespace warp {
namespace {

DistanceMatrix ToyMatrix() {
  // Three points on a line: 0, 1, 10.
  DistanceMatrix matrix(3);
  matrix.set(0, 1, 1.0);
  matrix.set(0, 2, 10.0);
  matrix.set(1, 2, 9.0);
  return matrix;
}

TEST(ClusteringTest, MergesClosestPairFirst) {
  const Dendrogram dendrogram =
      AgglomerativeCluster(ToyMatrix(), Linkage::kSingle);
  ASSERT_EQ(dendrogram.merges().size(), 2u);
  const MergeStep& first = dendrogram.merges()[0];
  EXPECT_EQ(std::min(first.left, first.right), 0u);
  EXPECT_EQ(std::max(first.left, first.right), 1u);
  EXPECT_DOUBLE_EQ(first.height, 1.0);
}

TEST(ClusteringTest, LinkageHeightsDiffer) {
  const Dendrogram single =
      AgglomerativeCluster(ToyMatrix(), Linkage::kSingle);
  const Dendrogram complete =
      AgglomerativeCluster(ToyMatrix(), Linkage::kComplete);
  const Dendrogram average =
      AgglomerativeCluster(ToyMatrix(), Linkage::kAverage);
  EXPECT_DOUBLE_EQ(single.merges()[1].height, 9.0);
  EXPECT_DOUBLE_EQ(complete.merges()[1].height, 10.0);
  EXPECT_DOUBLE_EQ(average.merges()[1].height, 9.5);
}

TEST(ClusteringTest, CutIntoClusters) {
  const Dendrogram dendrogram =
      AgglomerativeCluster(ToyMatrix(), Linkage::kAverage);
  const std::vector<int> two = dendrogram.CutIntoClusters(2);
  EXPECT_EQ(two[0], two[1]);
  EXPECT_NE(two[0], two[2]);
  const std::vector<int> one = dendrogram.CutIntoClusters(1);
  EXPECT_EQ(one[0], one[1]);
  EXPECT_EQ(one[1], one[2]);
  const std::vector<int> three = dendrogram.CutIntoClusters(3);
  EXPECT_NE(three[0], three[1]);
  EXPECT_NE(three[1], three[2]);
}

TEST(ClusteringTest, LeavesOfRootCoversAll) {
  const Dendrogram dendrogram =
      AgglomerativeCluster(ToyMatrix(), Linkage::kSingle);
  std::vector<size_t> leaves = dendrogram.LeavesOf(4);  // Root id = 3+1.
  std::sort(leaves.begin(), leaves.end());
  EXPECT_EQ(leaves, (std::vector<size_t>{0, 1, 2}));
}

TEST(ClusteringTest, NewickOutputWellFormed) {
  const Dendrogram dendrogram =
      AgglomerativeCluster(ToyMatrix(), Linkage::kSingle);
  const std::vector<std::string> labels = {"A", "B", "C"};
  const std::string newick = dendrogram.ToNewick(labels);
  EXPECT_EQ(newick.back(), ';');
  EXPECT_NE(newick.find("(A:"), std::string::npos);
  EXPECT_NE(newick.find("C:"), std::string::npos);
  // Balanced parentheses.
  int depth = 0;
  for (char c : newick) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ClusteringTest, AsciiRenderingMentionsAllLabels) {
  const Dendrogram dendrogram =
      AgglomerativeCluster(ToyMatrix(), Linkage::kComplete);
  const std::vector<std::string> labels = {"A", "B", "C"};
  const std::string ascii = dendrogram.RenderAscii(labels);
  for (const auto& label : labels) {
    EXPECT_NE(ascii.find(label), std::string::npos) << ascii;
  }
}

TEST(ClusteringTest, SingleLeafDendrogram) {
  DistanceMatrix matrix(1);
  const Dendrogram dendrogram =
      AgglomerativeCluster(matrix, Linkage::kSingle);
  EXPECT_EQ(dendrogram.num_leaves(), 1u);
  EXPECT_TRUE(dendrogram.merges().empty());
  EXPECT_EQ(dendrogram.CutIntoClusters(1), (std::vector<int>{0}));
}

TEST(ClusteringTest, Fig7TopologyFlip) {
  // Under Full DTW, {A, B} merge first; under FastDTW_20 they must not —
  // the paper's headline clustering failure.
  const gen::AdversarialTriple triple = gen::MakeAdversarialTriple();
  const std::vector<std::vector<double>> series = {triple.a, triple.b,
                                                   triple.c};
  const DistanceMatrix exact = ComputePairwiseMatrix(
      series, [](std::span<const double> a, std::span<const double> b) {
        return DtwDistance(a, b);
      });
  const DistanceMatrix approx = ComputePairwiseMatrix(
      series, [](std::span<const double> a, std::span<const double> b) {
        return FastDtwDistance(a, b, 20);
      });

  const Dendrogram exact_tree = AgglomerativeCluster(exact, Linkage::kSingle);
  const Dendrogram approx_tree =
      AgglomerativeCluster(approx, Linkage::kSingle);

  const MergeStep& exact_first = exact_tree.merges()[0];
  EXPECT_EQ(std::min(exact_first.left, exact_first.right), 0u);  // A
  EXPECT_EQ(std::max(exact_first.left, exact_first.right), 1u);  // B

  const MergeStep& approx_first = approx_tree.merges()[0];
  EXPECT_TRUE(approx_first.left == 2 || approx_first.right == 2)
      << "FastDTW dendrogram should merge C with A or B first";
}

}  // namespace
}  // namespace warp
