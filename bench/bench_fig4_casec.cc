// Experiment E5 — paper Fig. 4 (Case C: short N, wide W).
//
// The paper repeats the Fig. 1 experiment with random walks of length 450
// (the electrical-power-demand setting) and warping windows up to 40%,
// over all 499,500 pairs of 1,000 examples. Random walks are used
// verbatim ("the timing for both algorithms does not depend on the data
// itself"). Same sampling/extrapolation scheme as bench_fig1_uwave, and
// the same two FastDTW implementations (reference-package port as the
// headline comparator, our optimized port as the stress test).
//
// Flags: --exemplars (default 40), --ref-exemplars (10), --total (1000),
//        --length (450), --step (8), --max (40), --json=<path>.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_flags.h"
#include "harness/pairwise.h"
#include "warp/common/stopwatch.h"
#include "warp/common/table_printer.h"
#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/core/fastdtw_reference.h"
#include "warp/gen/random_walk.h"
#include "warp/common/metrics.h"
#include "warp/obs/report.h"

namespace warp {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t exemplars = static_cast<size_t>(flags.GetInt("exemplars", 40));
  const size_t ref_exemplars =
      static_cast<size_t>(flags.GetInt("ref-exemplars", 10));
  const size_t total = static_cast<size_t>(flags.GetInt("total", 1000));
  const size_t length = static_cast<size_t>(flags.GetInt("length", 450));
  const int step = static_cast<int>(flags.GetInt("step", 8));
  const int max_setting = static_cast<int>(flags.GetInt("max", 40));
  const size_t threads = SingleCoreThreadsFlag(flags);
  const std::string json_path = JsonFlag(flags);
  SimdFlag(flags);
  flags.Finalize();

  obs::BenchReport report(
      "E5 / Fig. 4",
      "All-pairs time (Case C): FastDTW_r vs cDTW_w, r and w in 0..40");
  report.AddConfig("threads", static_cast<int64_t>(threads));
  report.AddConfig("exemplars", static_cast<int64_t>(exemplars));
  report.AddConfig("ref_exemplars", static_cast<int64_t>(ref_exemplars));
  report.AddConfig("total", static_cast<int64_t>(total));
  report.AddConfig("length", static_cast<int64_t>(length));
  report.AddConfig("step", step);
  report.AddConfig("max", max_setting);

  const auto record_pairwise = [&report](const std::string& name,
                                         const PairwiseTiming& timing,
                                         const obs::MetricsSnapshot& before) {
    report.AddCase(name,
                   PerOpSummary(timing.seconds,
                                static_cast<int64_t>(timing.pairs_timed)),
                   obs::CountersSince(before));
  };

  PrintBanner("E5 / Fig. 4",
              "All-pairs time, random walks (N=450): FastDTW_r vs cDTW_w, "
              "r and w in 0..40");

  const Dataset dataset =
      gen::RandomWalkDataset(std::max(exemplars, ref_exemplars), length,
                             2024);
  const uint64_t full_pairs = TotalPairs(total);
  std::printf("length N=%zu; extrapolating to %llu comparisons (the "
              "paper's 1,000-example dataset)\n\n",
              length, static_cast<unsigned long long>(full_pairs));

  TablePrinter fast_table({"r", "reference us/cmp", "reference total (s)",
                           "optimized us/cmp", "optimized total (s)"});
  std::vector<double> ref_extrapolated;
  std::vector<double> opt_extrapolated;
  for (int r = 0; r <= max_setting; r += step) {
    const std::string suffix = "_r" + std::to_string(r);
    obs::MetricsSnapshot before = obs::SnapshotCounters();
    const PairwiseTiming reference = TimeAllPairs(
        dataset, ref_exemplars,
        [r](std::span<const double> a, std::span<const double> b) {
          return ReferenceFastDtw(a, b, static_cast<size_t>(r)).distance;
        });
    record_pairwise("fastdtw_ref" + suffix, reference, before);
    before = obs::SnapshotCounters();
    const PairwiseTiming optimized = TimeAllPairs(
        dataset, exemplars,
        [r](std::span<const double> a, std::span<const double> b) {
          return FastDtwDistance(a, b, static_cast<size_t>(r));
        });
    record_pairwise("fastdtw_opt" + suffix, optimized, before);
    ref_extrapolated.push_back(reference.ExtrapolatedSeconds(full_pairs));
    opt_extrapolated.push_back(optimized.ExtrapolatedSeconds(full_pairs));
    fast_table.AddRow(
        {TablePrinter::FormatDouble(r, 0),
         TablePrinter::FormatDouble(reference.micros_per_pair(), 1),
         TablePrinter::FormatDouble(ref_extrapolated.back(), 1),
         TablePrinter::FormatDouble(optimized.micros_per_pair(), 1),
         TablePrinter::FormatDouble(opt_extrapolated.back(), 1)});
  }
  std::printf("(a) FastDTW_r\n");
  fast_table.Print();

  TablePrinter cdtw_table(
      {"w (%)", "us/comparison", "extrapolated total (s)"});
  std::vector<double> cdtw_extrapolated;
  for (int w = 0; w <= max_setting; w += step) {
    DtwBuffer buffer;
    const obs::MetricsSnapshot before = obs::SnapshotCounters();
    const PairwiseTiming timing = TimeAllPairs(
        dataset, exemplars,
        [w, &buffer](std::span<const double> a, std::span<const double> b) {
          return CdtwDistanceFraction(a, b, w / 100.0, CostKind::kSquared,
                                      &buffer);
        });
    record_pairwise("cdtw_w" + std::to_string(w), timing, before);
    cdtw_extrapolated.push_back(timing.ExtrapolatedSeconds(full_pairs));
    cdtw_table.AddRow(
        {TablePrinter::FormatDouble(w, 0),
         TablePrinter::FormatDouble(timing.micros_per_pair(), 1),
         TablePrinter::FormatDouble(cdtw_extrapolated.back(), 1)});
  }
  std::printf("\n(b) cDTW_w\n");
  cdtw_table.Print();

  // Paper's claim for Case C: even at the maximal window the exact cDTW
  // curve sits below FastDTW's coarsest setting.
  std::printf(
      "\nShape checks:\n"
      "  cDTW_%d %7.1f s vs FastDTW_0 (reference) %7.1f s -> cDTW %s\n"
      "  cDTW_%d %7.1f s vs FastDTW_0 (optimized) %7.1f s -> %s\n",
      max_setting, cdtw_extrapolated.back(), ref_extrapolated.front(),
      cdtw_extrapolated.back() <= ref_extrapolated.front()
          ? "wins across the whole sweep"
          : "LOSES at the widest window (unexpected)",
      max_setting, cdtw_extrapolated.back(), opt_extrapolated.front(),
      cdtw_extrapolated.back() <= opt_extrapolated.front()
          ? "cDTW wins even against the optimized port"
          : "the optimized FastDTW_0 edge exists only because it computes "
            "a far coarser (approximate!) answer");
  report.Finish(json_path);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace warp

int main(int argc, char** argv) { return warp::bench::Main(argc, argv); }
