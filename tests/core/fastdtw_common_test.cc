// Tests for the helpers shared by the two FastDTW implementations
// (warp/core/fastdtw_common.h), plus the admissibility oracle run over
// BOTH implementations — the optimized recursion and the reference port
// must each respect FastDTW's contract on the same inputs.

#include "warp/core/fastdtw_common.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "warp/check/exactness_oracle.h"
#include "warp/common/random.h"
#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/core/fastdtw_reference.h"
#include "warp/gen/random_walk.h"
#include "warp/ts/paa.h"

namespace warp {
namespace {

constexpr double kTol = 1e-9;

TEST(FastDtwCommonTest, BaseCaseCutoffMatchesReferenceRule) {
  // The reference package bottoms out when either series is shorter than
  // radius + 2.
  EXPECT_TRUE(AtFastDtwBaseCase(1, 100, 0));
  EXPECT_FALSE(AtFastDtwBaseCase(2, 100, 0));
  EXPECT_TRUE(AtFastDtwBaseCase(100, 11, 10));
  EXPECT_FALSE(AtFastDtwBaseCase(100, 12, 10));
  EXPECT_TRUE(AtFastDtwBaseCase(11, 100, 10));
  EXPECT_FALSE(AtFastDtwBaseCase(12, 12, 10));
}

TEST(FastDtwCommonTest, HalveMultiByTwoHalvesEveryChannel) {
  Rng rng(31);
  const std::vector<double> c0 = gen::RandomWalk(10, rng);
  const std::vector<double> c1 = gen::RandomWalk(10, rng);
  const MultiSeries series({c0, c1}, 3);
  const MultiSeries halved = HalveMultiByTwo(series);
  EXPECT_EQ(halved.num_channels(), 2u);
  EXPECT_EQ(halved.length(), 5u);
  EXPECT_EQ(halved.label(), 3);
  // Channel-wise PAA by 2, same as the univariate helper.
  const std::vector<double> expected0 = HalveByTwo(c0);
  for (size_t i = 0; i < expected0.size(); ++i) {
    EXPECT_DOUBLE_EQ(halved.at(0, i), expected0[i]);
  }
}

// The admissibility contract, checked for both implementations: the
// approximation never beats exact DTW, returns a valid full-resolution
// path, and reports the distance its own path actually costs.
TEST(FastDtwCommonTest, BothImplementationsAreAdmissible) {
  for (uint64_t seed = 50; seed < 62; ++seed) {
    Rng rng(seed);
    const size_t n = 40 + static_cast<size_t>(seed % 5) * 17;
    const std::vector<double> x = gen::RandomWalk(n, rng);
    const std::vector<double> y = gen::RandomWalk(n + seed % 3, rng);
    const double exact = DtwDistance(x, y);

    for (const size_t radius : {size_t{0}, size_t{1}, size_t{4}}) {
      // Optimized implementation: the library's oracle.
      std::string error;
      EXPECT_TRUE(check::CheckFastDtwAdmissible(x, y, radius,
                                                CostKind::kSquared, kTol,
                                                &error))
          << "seed=" << seed << " radius=" << radius << ": " << error;

      // Reference port: the same three properties, checked directly.
      const DtwResult ref = ReferenceFastDtw(x, y, radius);
      EXPECT_GE(ref.distance, exact - kTol)
          << "reference beat exact DTW: seed=" << seed
          << " radius=" << radius;
      EXPECT_TRUE(ref.path.IsValid(x.size(), y.size()))
          << "seed=" << seed << " radius=" << radius;
      EXPECT_NEAR(ref.path.CostAlong(x, y, CostKind::kSquared),
                  ref.distance, kTol * (1.0 + ref.distance))
          << "seed=" << seed << " radius=" << radius;
    }
  }
}

}  // namespace
}  // namespace warp
