// Unit and property tests for the lower-bound cascade. The indispensable
// property: every bound really is a lower bound of the cDTW distance it
// prunes for — otherwise the "exact" accelerated search would be wrong.

#include "warp/core/lower_bounds.h"

#include <gtest/gtest.h>

#include "warp/core/dtw.h"
#include "warp/gen/random_walk.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace {

TEST(LbKimTest, EndpointCosts) {
  const std::vector<double> x = {1.0, 9.0, 2.0};
  const std::vector<double> y = {2.0, 7.0, 4.0};
  EXPECT_DOUBLE_EQ(LbKimFl(x, y), 1.0 + 4.0);
  EXPECT_DOUBLE_EQ(LbKimFl(x, y, CostKind::kAbsolute), 1.0 + 2.0);
}

TEST(LbKimTest, LowerBoundsFullDtw) {
  Rng rng(51);
  for (int round = 0; round < 50; ++round) {
    const std::vector<double> x = gen::RandomWalk(40, rng);
    const std::vector<double> y = gen::RandomWalk(40, rng);
    EXPECT_LE(LbKimFl(x, y), DtwDistance(x, y) + 1e-12);
  }
}

TEST(LbKeoghTest, ZeroForSeriesInsideEnvelope) {
  const std::vector<double> q = {0.0, 1.0, 0.0, -1.0, 0.0};
  const Envelope env = ComputeEnvelope(q, 2);
  // q itself is always inside its own envelope.
  EXPECT_DOUBLE_EQ(LbKeogh(env, q), 0.0);
}

TEST(LbKeoghTest, CountsOnlyExcursions) {
  const std::vector<double> q = {0.0, 0.0, 0.0};
  const Envelope env = ComputeEnvelope(q, 0);  // upper = lower = 0.
  const std::vector<double> c = {1.0, -2.0, 0.0};
  EXPECT_DOUBLE_EQ(LbKeogh(env, c), 1.0 + 4.0);
  EXPECT_DOUBLE_EQ(LbKeogh(env, c, CostKind::kAbsolute), 3.0);
}

TEST(LbKeoghTest, LowerBoundsCdtwAtMatchingBand) {
  Rng rng(52);
  for (int round = 0; round < 50; ++round) {
    const size_t n = 8 + rng.UniformInt(60);
    const std::vector<double> q =
        ZNormalized(gen::RandomWalk(n, rng));
    const std::vector<double> c =
        ZNormalized(gen::RandomWalk(n, rng));
    for (size_t band : {0u, 1u, 3u, 10u}) {
      const Envelope env = ComputeEnvelope(q, band);
      const double lb = LbKeogh(env, c);
      const double d = CdtwDistance(q, c, band);
      EXPECT_LE(lb, d + 1e-9) << "n=" << n << " band=" << band;
    }
  }
}

TEST(LbKeoghTest, SymmetricBoundIsTighterAndStillValid) {
  Rng rng(53);
  for (int round = 0; round < 30; ++round) {
    const size_t n = 16 + rng.UniformInt(50);
    const std::vector<double> q = ZNormalized(gen::RandomWalk(n, rng));
    const std::vector<double> c = ZNormalized(gen::RandomWalk(n, rng));
    const size_t band = 4;
    const Envelope eq = ComputeEnvelope(q, band);
    const Envelope ec = ComputeEnvelope(c, band);
    const double one_sided = LbKeogh(eq, c);
    const double symmetric = LbKeoghSymmetric(eq, q, ec, c);
    const double d = CdtwDistance(q, c, band);
    EXPECT_GE(symmetric, one_sided - 1e-12);
    EXPECT_LE(symmetric, d + 1e-9);
  }
}

TEST(LbKeoghTest, EarlyAbandonReturnsValueAboveThreshold) {
  const std::vector<double> q(100, 0.0);
  const Envelope env = ComputeEnvelope(q, 2);
  std::vector<double> c(100, 5.0);  // Every point is an excursion of 25.
  const double bound = LbKeogh(env, c, CostKind::kSquared, 50.0);
  EXPECT_GT(bound, 50.0);
  // And the abandoned value never exceeds the exact bound.
  EXPECT_LE(bound, LbKeogh(env, c) + 1e-12);
}

TEST(LbImprovedTest, AtLeastLbKeoghAndStillALowerBound) {
  Rng rng(55);
  for (int round = 0; round < 40; ++round) {
    const size_t n = 16 + rng.UniformInt(60);
    const std::vector<double> q = ZNormalized(gen::RandomWalk(n, rng));
    const std::vector<double> c = ZNormalized(gen::RandomWalk(n, rng));
    for (size_t band : {1u, 4u, 10u}) {
      const Envelope env = ComputeEnvelope(q, band);
      const double keogh = LbKeogh(env, c);
      const double improved = LbImproved(env, q, c, band);
      const double d = CdtwDistance(q, c, band);
      EXPECT_GE(improved, keogh - 1e-12) << "n=" << n << " band=" << band;
      EXPECT_LE(improved, d + 1e-9) << "n=" << n << " band=" << band;
    }
  }
}

TEST(LbImprovedTest, ZeroWhenCandidateInsideEnvelope) {
  const std::vector<double> q = {0.0, 1.0, 0.0, -1.0, 0.0};
  const Envelope env = ComputeEnvelope(q, 2);
  EXPECT_DOUBLE_EQ(LbImproved(env, q, q, 2), 0.0);
}

TEST(LbKeoghTest, WiderBandWeakensBound) {
  Rng rng(54);
  const std::vector<double> q = ZNormalized(gen::RandomWalk(64, rng));
  const std::vector<double> c = ZNormalized(gen::RandomWalk(64, rng));
  double previous = LbKeogh(ComputeEnvelope(q, 0), c);
  for (size_t band : {1u, 2u, 4u, 8u, 16u}) {
    const double lb = LbKeogh(ComputeEnvelope(q, band), c);
    EXPECT_LE(lb, previous + 1e-12);
    previous = lb;
  }
}

}  // namespace
}  // namespace warp
