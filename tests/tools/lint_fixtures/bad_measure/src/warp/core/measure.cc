namespace warp {
namespace core {

const char* RegistryNote() {
  static const MeasureEntry kEntries[] = {
      {{"dtw", "unconstrained DTW", true}, nullptr},
      {{"mystery", "a measure nobody tests", false}, nullptr},
  };
  (void)kEntries;
  return "registry";
}

}  // namespace core
}  // namespace warp
