// Sharding golden tests: every query op must produce bitwise-identical
// answers at any shard count and any thread count. Each response is
// reduced to a hexfloat digest ("%a" never rounds a double) and compared
// against the 1-shard/1-thread baseline — so a scheduling- or
// partition-dependent merge shows up as a digest diff, not a flaky
// tolerance failure. Also holds the ResultCache contract: the key
// excludes shard count, so a hit recorded at 1 shard answers a 4-shard
// engine bitwise-identically.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "warp/gen/random_walk.h"
#include "warp/serve/dataset_store.h"
#include "warp/serve/query_engine.h"
#include "warp/serve/result_cache.h"

namespace warp {
namespace serve {
namespace {

constexpr size_t kSeries = 50;
constexpr size_t kLength = 64;

std::string Hex(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", v);
  return buffer;
}

// Everything answer-bearing in a response, bit-exact. Timings (trace) are
// deliberately excluded: they are the one legitimately nondeterministic
// part of a response.
std::string Digest(const ServeResponse& response) {
  std::string d = response.ok ? "ok" : "err:" + response.error;
  d += response.partial ? " partial" : " full";
  d += " scanned=" + std::to_string(response.scanned);
  d += " total=" + std::to_string(response.total);
  for (const Neighbor& n : response.neighbors) {
    d += " (" + std::to_string(n.index) + "," + std::to_string(n.label) +
         "," + Hex(n.distance) + ")";
  }
  d += " dist=" + Hex(response.distance);
  d += " pos=" + std::to_string(response.position);
  return d;
}

class ShardGoldenTest : public ::testing::Test {
 protected:
  // Registers the fixture datasets into a store of the given width.
  static void Fill(DatasetStore* store) {
    store->Register("train", gen::RandomWalkDataset(kSeries, kLength, 21),
                    {6});
    store->Register("long", gen::RandomWalkDataset(2, 256, 5), {});
  }

  // The five query ops. `threshold` parameterizes range (derived once
  // from the baseline 1nn distance, so it is itself deterministic).
  static std::vector<ServeRequest> Requests(double threshold) {
    const std::vector<double> query =
        gen::RandomWalkDataset(1, kLength, 77)[0].values();
    std::vector<ServeRequest> requests;

    ServeRequest r;
    r.dataset = "train";
    r.query = query;

    r.op = QueryOp::k1Nn;
    requests.push_back(r);

    r.op = QueryOp::kKnn;
    r.k = 5;
    requests.push_back(r);

    r.op = QueryOp::kRange;
    r.threshold = threshold;
    requests.push_back(r);

    r = requests[0];
    r.op = QueryOp::kDist;
    r.index = 13;
    requests.push_back(r);

    r.op = QueryOp::kSubsequence;
    r.dataset = "long";
    r.index = 1;
    r.query = gen::RandomWalkDataset(1, 32, 9)[0].values();
    requests.push_back(r);
    return requests;
  }
};

TEST_F(ShardGoldenTest, EveryOpIsBitwiseIdenticalAtAnyShardAndThreadCount) {
  // Baseline: one shard, one thread.
  DatasetStore baseline_store(1);
  Fill(&baseline_store);
  QueryEngine baseline(&baseline_store, nullptr, 1);

  ServeRequest probe;
  probe.op = QueryOp::k1Nn;
  probe.dataset = "train";
  probe.query = gen::RandomWalkDataset(1, kLength, 77)[0].values();
  const ServeResponse nearest = baseline.Run(probe);
  ASSERT_TRUE(nearest.ok) << nearest.error;
  // Wide enough for several hits, derived bitwise-deterministically.
  const double threshold = nearest.neighbors[0].distance * 1.5;

  const std::vector<ServeRequest> requests = Requests(threshold);
  std::vector<std::string> golden;
  for (const ServeRequest& request : requests) {
    const ServeResponse response = baseline.Run(request);
    ASSERT_TRUE(response.ok) << response.error;
    golden.push_back(Digest(response));
  }
  // The range threshold really selects more than one neighbor; otherwise
  // the merge order under test is vacuous.
  EXPECT_GT(golden[2].size(), golden[0].size());

  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{7}}) {
    DatasetStore store(shards);
    Fill(&store);
    for (const size_t threads : {size_t{1}, size_t{8}}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      QueryEngine engine(&store, nullptr, threads);
      for (size_t i = 0; i < requests.size(); ++i) {
        SCOPED_TRACE("op " + std::to_string(i));
        EXPECT_EQ(Digest(engine.Run(requests[i])), golden[i]);
      }
      // The batch path scatters all plans' units into one pool run; it
      // must land on the same bits.
      std::vector<ServeResponse> responses;
      engine.RunBatch(requests, &responses);
      ASSERT_EQ(responses.size(), requests.size());
      for (size_t i = 0; i < requests.size(); ++i) {
        SCOPED_TRACE("batched op " + std::to_string(i));
        EXPECT_EQ(Digest(responses[i]), golden[i]);
      }
    }
  }
}

// The cache key includes the dataset epoch but deliberately not the shard
// count: sharding is an execution detail, not part of the answer. A hit
// recorded by a 1-shard engine must satisfy a 4-shard engine bitwise.
TEST_F(ShardGoldenTest, CacheHitsCrossShardCounts) {
  DatasetStore narrow(1);
  DatasetStore wide(4);
  const Dataset raw = gen::RandomWalkDataset(kSeries, kLength, 21);
  narrow.Register("train", raw, {6});
  wide.Register("train", raw, {6});  // Same first epoch in both stores.

  ResultCache cache(8);
  QueryEngine narrow_engine(&narrow, &cache, 1);
  QueryEngine wide_engine(&wide, &cache, 2);

  ServeRequest request;
  request.op = QueryOp::kKnn;
  request.k = 4;
  request.dataset = "train";
  request.query = gen::RandomWalkDataset(1, kLength, 77)[0].values();
  request.trace = true;  // Excluded from the key; exposes from_cache.

  const ServeResponse computed = narrow_engine.Run(request);
  ASSERT_TRUE(computed.ok) << computed.error;
  EXPECT_FALSE(computed.trace.from_cache);
  ASSERT_EQ(cache.size(), 1u);

  const ServeResponse hit = wide_engine.Run(request);
  ASSERT_TRUE(hit.ok) << hit.error;
  EXPECT_TRUE(hit.trace.from_cache);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(Digest(hit), Digest(computed));

  // And the wide engine would have computed those same bits itself.
  QueryEngine uncached(&wide, nullptr, 2);
  EXPECT_EQ(Digest(uncached.Run(request)), Digest(computed));
}

}  // namespace
}  // namespace serve
}  // namespace warp
