// Degenerate inputs pushed through the oracle layer.
//
// The corners that historically break DP kernels: length-1 series,
// constant series, the w=0 band (pure Euclidean), the w=n band (pure full
// DTW), and malformed paths (empty, truncated, out-of-matrix,
// out-of-window) that the validators must reject rather than accept or
// crash on.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "warp/check/bound_oracle.h"
#include "warp/check/exactness_oracle.h"
#include "warp/check/path_oracle.h"
#include "warp/common/random.h"
#include "warp/core/dtw.h"
#include "warp/gen/random_walk.h"

namespace warp {
namespace {

constexpr double kTol = 1e-9;

TEST(CheckDegenerate, LengthOneSeries) {
  const std::vector<double> x = {2.0};
  const std::vector<double> y = {-1.5};
  std::string error;
  // DTW of two points is just their local cost, and every oracle must
  // hold on the 1x1 matrix.
  EXPECT_DOUBLE_EQ(DtwDistance(x, y), 3.5 * 3.5);
  EXPECT_TRUE(check::CheckLowerBoundOrdering(x, y, 0, CostKind::kSquared,
                                             kTol, &error))
      << error;
  EXPECT_TRUE(check::CheckFastDtwAdmissible(x, y, 1, CostKind::kSquared,
                                            kTol, &error))
      << error;
  EXPECT_TRUE(
      check::CheckSelfDistanceZero(x, 0, CostKind::kSquared, kTol, &error))
      << error;

  const DtwResult result = Dtw(x, y);
  ASSERT_EQ(result.path.size(), 1u);
  EXPECT_TRUE(check::CheckPath(result.path, 1, 1, &error)) << error;
  EXPECT_TRUE(check::CheckPathCost(result.path, x, y, CostKind::kSquared,
                                   result.distance, kTol, &error))
      << error;
}

TEST(CheckDegenerate, ConstantSeries) {
  const std::vector<double> x(32, 1.25);
  const std::vector<double> y(32, 1.25);
  const std::vector<double> z(32, -0.5);
  std::string error;
  EXPECT_DOUBLE_EQ(CdtwDistance(x, y, 4), 0.0);
  EXPECT_TRUE(check::CheckLowerBoundOrdering(x, z, 4, CostKind::kAbsolute,
                                             kTol, &error))
      << error;
  EXPECT_TRUE(
      check::CheckSymmetry(x, z, 4, CostKind::kAbsolute, kTol, &error))
      << error;
  EXPECT_TRUE(
      check::CheckSelfDistanceZero(x, 4, CostKind::kSquared, kTol, &error))
      << error;
  // Constant-vs-constant distance is n * cost(a, b) at any band: every
  // extra warping step only adds identical positive cells.
  const std::vector<size_t> bands = {0, 1, 8, 32};
  EXPECT_TRUE(check::CheckCdtwBandMonotone(x, z, bands, CostKind::kSquared,
                                           kTol, &error))
      << error;
}

TEST(CheckDegenerate, ZeroBandEqualsEuclidean) {
  Rng rng(7);
  const std::vector<double> x = gen::RandomWalk(40, rng);
  const std::vector<double> y = gen::RandomWalk(40, rng);
  EXPECT_NEAR(CdtwDistance(x, y, 0), EuclideanDistance(x, y), 1e-9);
  std::string error;
  EXPECT_TRUE(check::CheckLowerBoundOrdering(x, y, 0, CostKind::kSquared,
                                             kTol, &error))
      << error;
  // At band 0 the cascade collapses: cDTW_0 == Euclidean, and LB_Keogh's
  // envelope is the series itself.
  const check::BoundCascade cascade =
      check::ComputeBoundCascade(x, y, 0, CostKind::kSquared);
  EXPECT_NEAR(cascade.cdtw, cascade.euclidean, 1e-9);
  EXPECT_NEAR(cascade.lb_keogh, cascade.euclidean, 1e-9);
}

TEST(CheckDegenerate, FullBandEqualsUnconstrainedDtw) {
  Rng rng(8);
  const std::vector<double> x = gen::RandomWalk(40, rng);
  const std::vector<double> y = gen::RandomWalk(40, rng);
  EXPECT_NEAR(CdtwDistance(x, y, 40), DtwDistance(x, y), 1e-9);
  std::string error;
  EXPECT_TRUE(check::CheckLowerBoundOrdering(x, y, 40, CostKind::kSquared,
                                             kTol, &error))
      << error;
  const check::BoundCascade cascade =
      check::ComputeBoundCascade(x, y, 40, CostKind::kSquared);
  EXPECT_NEAR(cascade.cdtw, cascade.dtw, 1e-9);
}

TEST(CheckDegenerate, ValidatorRejectsMalformedPaths) {
  std::string error;
  // Empty path — the "empty window" of path space.
  EXPECT_FALSE(check::CheckPath(WarpingPath(), 4, 4, &error));
  EXPECT_NE(error.find("empty"), std::string::npos) << error;

  // Zero-length series reject every path.
  WarpingPath trivial(std::vector<PathPoint>{{0, 0}});
  EXPECT_FALSE(check::CheckPath(trivial, 0, 4, &error));
  EXPECT_FALSE(check::CheckPath(trivial, 4, 0, &error));

  // A single-point path only covers the 1x1 matrix.
  EXPECT_TRUE(check::CheckPath(trivial, 1, 1, &error)) << error;
  EXPECT_FALSE(check::CheckPath(trivial, 2, 2, &error));

  // A path that leaves the matrix.
  WarpingPath escaping(std::vector<PathPoint>{{0, 0}, {1, 1}, {1, 2}});
  EXPECT_FALSE(check::CheckPath(escaping, 2, 2, &error));

  // Stationary (repeated) points are neither monotone nor continuous.
  WarpingPath stuck(std::vector<PathPoint>{{0, 0}, {0, 0}, {1, 1}});
  EXPECT_FALSE(check::CheckPath(stuck, 2, 2, &error));
  EXPECT_NE(error.find("illegal step"), std::string::npos) << error;
}

TEST(CheckDegenerate, WindowMembershipOnDegenerateWindows) {
  std::string error;
  // The 1x1 window accepts exactly the single-point path.
  const WarpingWindow unit = WarpingWindow::Full(1, 1);
  WarpingPath trivial(std::vector<PathPoint>{{0, 0}});
  EXPECT_TRUE(check::CheckPathInWindow(trivial, unit, &error)) << error;

  // A band-0 window rejects any off-diagonal cell (degenerate "empty"
  // off-diagonal coverage), including paths that are otherwise valid.
  const WarpingWindow diagonal = WarpingWindow::SakoeChiba(3, 3, 0);
  WarpingPath off(std::vector<PathPoint>{{0, 0}, {1, 0}, {1, 1}, {2, 2}});
  EXPECT_FALSE(check::CheckPathInWindow(off, diagonal, &error));
  EXPECT_NE(error.find("escapes"), std::string::npos) << error;

  // The same path is accepted once the window is wide enough to hold it.
  const WarpingWindow wide = WarpingWindow::SakoeChiba(3, 3, 3);
  EXPECT_TRUE(check::CheckPathInWindow(off, wide, &error)) << error;
}

}  // namespace
}  // namespace warp
