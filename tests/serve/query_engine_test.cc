// QueryEngine golden tests: every operation must equal a direct call into
// the library — bitwise, at 1, 2, and 8 threads — plus deadline, batch,
// and validation semantics.

#include "warp/serve/query_engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "warp/core/measure.h"
#include "warp/gen/random_walk.h"
#include "warp/mining/similarity_search.h"
#include "warp/serve/dataset_store.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace serve {
namespace {

constexpr size_t kSeries = 50;
constexpr size_t kLength = 64;

// Brute-force reference: distances from the z-normalized query to every
// stored (already z-normalized) series through the same measure registry
// closure the engine resolves.
std::vector<double> ReferenceDistances(const StoredDataset& stored,
                                       const ServeRequest& request) {
  const std::vector<double> query =
      request.znormalize ? ZNormalized(request.query) : request.query;
  const SeriesMeasure measure = MakeMeasure(request.measure, request.params);
  std::vector<double> distances(stored.size());
  for (size_t i = 0; i < stored.size(); ++i) {
    distances[i] = measure(query, stored.SeriesAt(i).view());
  }
  return distances;
}

// Indices sorted by the engine's total order (distance, index).
std::vector<size_t> RankedIndices(const std::vector<double>& distances) {
  std::vector<size_t> order(distances.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (distances[a] != distances[b]) return distances[a] < distances[b];
    return a < b;
  });
  return order;
}

class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_.Register("train", gen::RandomWalkDataset(kSeries, kLength, 21),
                    {6});  // 6 == lround(0.1 * 64): the default window.
    query_ = gen::RandomWalkDataset(1, kLength, 77)[0].values();
  }

  ServeRequest Request(QueryOp op) {
    ServeRequest request;
    request.op = op;
    request.dataset = "train";
    request.query = query_;
    return request;
  }

  // Runs `request` at several thread counts and checks every response
  // against `check`; also cross-checks serial Run vs RunBatch.
  void RunAllWays(const ServeRequest& request,
                  const std::function<void(const ServeResponse&)>& check) {
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      QueryEngine engine(&store_, nullptr, threads);
      check(engine.Run(request));
      std::vector<ServeResponse> responses;
      engine.RunBatch({request, request}, &responses);
      ASSERT_EQ(responses.size(), 2u);
      check(responses[0]);
      check(responses[1]);
    }
  }

  DatasetStore store_;
  std::vector<double> query_;
};

TEST_F(QueryEngineTest, OneNnMatchesBruteForceBitwise) {
  const ServeRequest request = Request(QueryOp::k1Nn);
  const auto snapshot = store_.Get("train");
  const std::vector<double> reference =
      ReferenceDistances(*snapshot, request);
  const size_t best = RankedIndices(reference)[0];

  RunAllWays(request, [&](const ServeResponse& response) {
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_FALSE(response.partial);
    EXPECT_EQ(response.scanned, kSeries);
    EXPECT_EQ(response.total, kSeries);
    ASSERT_EQ(response.neighbors.size(), 1u);
    EXPECT_EQ(response.neighbors[0].index, best);
    EXPECT_EQ(response.neighbors[0].distance, reference[best]);
    EXPECT_EQ(response.neighbors[0].label, snapshot->SeriesAt(best).label());
  });
}

TEST_F(QueryEngineTest, KnnMatchesBruteForceOrderAndBits) {
  ServeRequest request = Request(QueryOp::kKnn);
  request.k = 5;
  const auto snapshot = store_.Get("train");
  const std::vector<double> reference =
      ReferenceDistances(*snapshot, request);
  const std::vector<size_t> ranked = RankedIndices(reference);

  RunAllWays(request, [&](const ServeResponse& response) {
    ASSERT_TRUE(response.ok) << response.error;
    ASSERT_EQ(response.neighbors.size(), 5u);
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(response.neighbors[i].index, ranked[i]) << i;
      EXPECT_EQ(response.neighbors[i].distance, reference[ranked[i]]) << i;
    }
  });
}

TEST_F(QueryEngineTest, RangeMatchesBruteForceFilter) {
  ServeRequest request = Request(QueryOp::kRange);
  const auto snapshot = store_.Get("train");
  const std::vector<double> reference =
      ReferenceDistances(*snapshot, request);
  // A threshold between the 10th and 11th distances: exactly 10 hits.
  std::vector<double> sorted = reference;
  std::sort(sorted.begin(), sorted.end());
  request.threshold = (sorted[9] + sorted[10]) / 2.0;

  RunAllWays(request, [&](const ServeResponse& response) {
    ASSERT_TRUE(response.ok) << response.error;
    ASSERT_EQ(response.neighbors.size(), 10u);
    size_t previous = 0;
    for (const Neighbor& n : response.neighbors) {
      EXPECT_LE(n.distance, request.threshold);
      EXPECT_EQ(n.distance, reference[n.index]);
      if (&n != &response.neighbors.front()) {
        EXPECT_GT(n.index, previous);
      }
      previous = n.index;
    }
  });
}

// A non-cdtw measure exercises the brute-force registry path instead of
// the cascade; answers must still match a direct library call.
TEST_F(QueryEngineTest, NonCascadeMeasureMatchesRegistryClosure) {
  ServeRequest request = Request(QueryOp::k1Nn);
  request.measure = "msm";
  const auto snapshot = store_.Get("train");
  const std::vector<double> reference =
      ReferenceDistances(*snapshot, request);
  const size_t best = RankedIndices(reference)[0];

  RunAllWays(request, [&](const ServeResponse& response) {
    ASSERT_TRUE(response.ok) << response.error;
    ASSERT_EQ(response.neighbors.size(), 1u);
    EXPECT_EQ(response.neighbors[0].index, best);
    EXPECT_EQ(response.neighbors[0].distance, reference[best]);
  });
}

TEST_F(QueryEngineTest, DistMatchesDirectMeasureCall) {
  ServeRequest request = Request(QueryOp::kDist);
  request.index = 13;
  const auto snapshot = store_.Get("train");
  const double expected =
      MakeMeasure(request.measure, request.params)(
          ZNormalized(request.query), snapshot->SeriesAt(13).view());

  RunAllWays(request, [&](const ServeResponse& response) {
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.distance, expected);
  });
}

TEST_F(QueryEngineTest, SubsequenceMatchesFindBestMatch) {
  // A short query against a long stored series.
  store_.Register("long", gen::RandomWalkDataset(2, 256, 5), {});
  ServeRequest request = Request(QueryOp::kSubsequence);
  request.dataset = "long";
  request.index = 1;
  request.query = gen::RandomWalkDataset(1, 32, 9)[0].values();

  const auto snapshot = store_.Get("long");
  const size_t band = static_cast<size_t>(
      std::lround(request.params.window_fraction * 32.0));
  const SubsequenceMatch expected =
      FindBestMatch(snapshot->SeriesAt(1).view(), ZNormalized(request.query),
                    band, request.params.cost, nullptr);

  RunAllWays(request, [&](const ServeResponse& response) {
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.position, expected.position);
    EXPECT_EQ(response.distance, expected.distance);
    EXPECT_EQ(response.total, 256u - 32u + 1u);
  });
}

TEST_F(QueryEngineTest, ZnormFalseMatchesRawQuery) {
  ServeRequest request = Request(QueryOp::k1Nn);
  request.znormalize = false;
  const auto snapshot = store_.Get("train");
  const std::vector<double> reference =
      ReferenceDistances(*snapshot, request);
  const size_t best = RankedIndices(reference)[0];

  RunAllWays(request, [&](const ServeResponse& response) {
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.neighbors[0].index, best);
    EXPECT_EQ(response.neighbors[0].distance, reference[best]);
  });
}

TEST_F(QueryEngineTest, MixedBatchEqualsSerialRuns) {
  std::vector<ServeRequest> batch;
  batch.push_back(Request(QueryOp::k1Nn));
  ServeRequest knn = Request(QueryOp::kKnn);
  knn.k = 3;
  batch.push_back(knn);
  ServeRequest dist = Request(QueryOp::kDist);
  dist.index = 7;
  batch.push_back(dist);
  ServeRequest bad = Request(QueryOp::k1Nn);
  bad.dataset = "missing";
  batch.push_back(bad);
  batch.push_back(Request(QueryOp::k1Nn));  // Duplicate of [0].
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].id = static_cast<int64_t>(100 + i);
  }

  QueryEngine serial(&store_, nullptr, 1);
  std::vector<ServeResponse> expected;
  for (const ServeRequest& request : batch) {
    expected.push_back(serial.Run(request));
  }

  for (const size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    QueryEngine engine(&store_, nullptr, threads);
    std::vector<ServeResponse> responses;
    engine.RunBatch(batch, &responses);
    ASSERT_EQ(responses.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      SCOPED_TRACE("request " + std::to_string(i));
      EXPECT_EQ(responses[i].id, batch[i].id);
      EXPECT_EQ(responses[i].ok, expected[i].ok);
      EXPECT_EQ(responses[i].error, expected[i].error);
      ASSERT_EQ(responses[i].neighbors.size(), expected[i].neighbors.size());
      for (size_t n = 0; n < expected[i].neighbors.size(); ++n) {
        EXPECT_EQ(responses[i].neighbors[n].index,
                  expected[i].neighbors[n].index);
        EXPECT_EQ(responses[i].neighbors[n].distance,
                  expected[i].neighbors[n].distance);
      }
      EXPECT_EQ(responses[i].distance, expected[i].distance);
    }
  }
}

// A request with an expired budget degrades to a flagged partial answer
// instead of blocking — and that answer is exact over what was scanned.
TEST_F(QueryEngineTest, ExpiredDeadlineYieldsFlaggedPartialResult) {
  ServeRequest request = Request(QueryOp::k1Nn);
  request.deadline_ms = 1e-7;  // Expired before the first candidate.
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    QueryEngine engine(&store_, nullptr, threads);
    const ServeResponse response = engine.Run(request);
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_TRUE(response.partial);
    EXPECT_LT(response.scanned, response.total);
    EXPECT_EQ(response.total, kSeries);
  }
}

TEST_F(QueryEngineTest, PartialResultsAreNeverCached) {
  ResultCache cache(8);
  QueryEngine engine(&store_, &cache, 1);
  ServeRequest request = Request(QueryOp::k1Nn);
  request.deadline_ms = 1e-7;
  const ServeResponse partial = engine.Run(request);
  ASSERT_TRUE(partial.partial);
  EXPECT_EQ(cache.size(), 0u);

  // The same request with a generous budget computes the full answer —
  // a stale partial must not shadow it.
  request.deadline_ms = 60000.0;
  const ServeResponse full = engine.Run(request);
  ASSERT_TRUE(full.ok);
  EXPECT_FALSE(full.partial);
  EXPECT_EQ(full.scanned, kSeries);
}

TEST_F(QueryEngineTest, ValidationErrorsAreDiagnosable) {
  QueryEngine engine(&store_, nullptr, 1);

  ServeRequest request = Request(QueryOp::k1Nn);
  request.dataset = "missing";
  ServeResponse response = engine.Run(request);
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("unknown dataset"), std::string::npos);

  request = Request(QueryOp::k1Nn);
  request.measure = "frobnicate";
  response = engine.Run(request);
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("unknown measure"), std::string::npos);

  request = Request(QueryOp::k1Nn);
  request.query.clear();
  EXPECT_FALSE(engine.Run(request).ok);

  request = Request(QueryOp::k1Nn);
  request.query[3] = std::numeric_limits<double>::quiet_NaN();
  response = engine.Run(request);
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("non-finite"), std::string::npos);

  request = Request(QueryOp::kDist);
  request.index = kSeries;
  response = engine.Run(request);
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("out of range"), std::string::npos);

  request = Request(QueryOp::kKnn);
  request.k = 0;
  EXPECT_FALSE(engine.Run(request).ok);

  request = Request(QueryOp::kRange);
  request.threshold = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(engine.Run(request).ok);

  request = Request(QueryOp::kSubsequence);
  request.index = 0;
  request.query.assign(kLength + 1, 0.5);  // Longer than the target.
  EXPECT_FALSE(engine.Run(request).ok);
}

}  // namespace
}  // namespace serve
}  // namespace warp
