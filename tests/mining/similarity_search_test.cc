// Unit tests for UCR-suite-style subsequence search.

#include "warp/mining/similarity_search.h"

#include <gtest/gtest.h>

#include "warp/gen/random_walk.h"
#include "warp/gen/warping.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace {

TEST(SimilaritySearchTest, FindsPlantedExactMatch) {
  Rng rng(111);
  std::vector<double> haystack = gen::RandomWalk(2000, rng);
  const size_t planted_at = 700;
  const size_t m = 64;
  const std::vector<double> query(haystack.begin() + planted_at,
                                  haystack.begin() + planted_at + m);
  SearchStats stats;
  const SubsequenceMatch match = FindBestMatch(haystack, query, 5,
                                               CostKind::kSquared, &stats);
  EXPECT_EQ(match.position, planted_at);
  EXPECT_NEAR(match.distance, 0.0, 1e-9);
  EXPECT_EQ(stats.windows, haystack.size() - m + 1);
}

TEST(SimilaritySearchTest, FindsWarpedPlantedMatch) {
  Rng rng(112);
  std::vector<double> haystack = gen::RandomWalk(1500, rng);
  const size_t m = 100;
  const size_t planted_at = 900;
  // Plant a time-warped, scaled copy of a pattern.
  std::vector<double> pattern = gen::RandomWalk(m, rng);
  const std::vector<double> warped = gen::ApplyRandomWarp(pattern, 0.04, rng);
  for (size_t i = 0; i < m; ++i) {
    haystack[planted_at + i] = 3.0 * warped[i] + 2.0;  // Scale + offset.
  }
  const SubsequenceMatch match = FindBestMatch(haystack, pattern, 8);
  // Z-normalization must neutralize scale/offset; DTW the warp.
  EXPECT_NEAR(static_cast<double>(match.position),
              static_cast<double>(planted_at), 4.0);
}

TEST(SimilaritySearchTest, AgreesWithNaiveReference) {
  Rng rng(113);
  for (int round = 0; round < 5; ++round) {
    const std::vector<double> haystack = gen::RandomWalk(400, rng);
    const std::vector<double> query = gen::RandomWalk(50, rng);
    for (size_t band : {0u, 3u, 10u}) {
      const SubsequenceMatch fast = FindBestMatch(haystack, query, band);
      const SubsequenceMatch naive =
          FindBestMatchNaive(haystack, query, band);
      EXPECT_NEAR(fast.distance, naive.distance, 1e-6)
          << "band=" << band << " round=" << round;
    }
  }
}

TEST(SimilaritySearchTest, PruningActuallyHappens) {
  Rng rng(114);
  const std::vector<double> haystack = gen::RandomWalk(3000, rng);
  const std::vector<double> query = gen::RandomWalk(80, rng);
  SearchStats stats;
  FindBestMatch(haystack, query, 8, CostKind::kSquared, &stats);
  const uint64_t skipped_dtw =
      stats.pruned_by_kim + stats.pruned_by_keogh + stats.abandoned_dtw;
  // The cascade should remove the overwhelming majority of full DTWs.
  EXPECT_GT(skipped_dtw, stats.windows / 2);
  EXPECT_EQ(stats.windows,
            skipped_dtw + stats.full_dtw);
}

TEST(SimilaritySearchTest, QueryEqualToHaystackLength) {
  Rng rng(115);
  const std::vector<double> series = gen::RandomWalk(64, rng);
  const SubsequenceMatch match = FindBestMatch(series, series, 4);
  EXPECT_EQ(match.position, 0u);
  EXPECT_NEAR(match.distance, 0.0, 1e-9);
}

}  // namespace
}  // namespace warp
