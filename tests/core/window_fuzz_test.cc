// Fuzz-style property tests for window construction and the windowed DTW
// engine: random monotone paths, random shapes, random radii — the
// invariants must hold for all of them, and the optimized engine must
// agree with the naive full-matrix reference on every window it accepts.

#include <gtest/gtest.h>

#include "testing/reference_impls.h"
#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/core/window.h"
#include "warp/gen/random_walk.h"

namespace warp {
namespace {

// A uniformly random valid warping path on an (n, m) grid.
WarpingPath RandomPath(size_t n, size_t m, Rng& rng) {
  WarpingPath path;
  uint32_t i = 0;
  uint32_t j = 0;
  path.Append(0, 0);
  while (i + 1 < n || j + 1 < m) {
    const bool can_down = i + 1 < n;
    const bool can_right = j + 1 < m;
    if (can_down && can_right) {
      switch (rng.UniformInt(3)) {
        case 0:
          ++i;
          break;
        case 1:
          ++j;
          break;
        default:
          ++i;
          ++j;
          break;
      }
    } else if (can_down) {
      ++i;
    } else {
      ++j;
    }
    path.Append(i, j);
  }
  return path;
}

TEST(WindowFuzzTest, RandomPathsAreValid) {
  Rng rng(211);
  for (int round = 0; round < 50; ++round) {
    const size_t n = 1 + rng.UniformInt(40);
    const size_t m = 1 + rng.UniformInt(40);
    const WarpingPath path = RandomPath(n, m, rng);
    std::string error;
    ASSERT_TRUE(path.Validate(n, m, &error))
        << "n=" << n << " m=" << m << ": " << error;
  }
}

TEST(WindowFuzzTest, FromLowResPathAlwaysValid) {
  Rng rng(212);
  for (int round = 0; round < 100; ++round) {
    // High-res shape; low-res is the floor-half (as in FastDTW).
    const size_t n = 2 + rng.UniformInt(60);
    const size_t m = 2 + rng.UniformInt(60);
    const size_t radius = rng.UniformInt(6);
    const WarpingPath low = RandomPath(n / 2, m / 2, rng);
    const WarpingWindow window =
        WarpingWindow::FromLowResPath(low, n, m, radius);
    std::string error;
    ASSERT_TRUE(window.Validate(&error))
        << "n=" << n << " m=" << m << " r=" << radius << ": " << error;

    // The projected 2x2 block of every low-res cell is covered.
    for (const PathPoint& p : low.points()) {
      for (uint32_t di = 0; di < 2; ++di) {
        for (uint32_t dj = 0; dj < 2; ++dj) {
          const size_t hi = 2 * p.i + di;
          const size_t hj = 2 * p.j + dj;
          if (hi < n && hj < m) {
            EXPECT_TRUE(window.Contains(hi, hj))
                << "cell (" << hi << "," << hj << ") missing";
          }
        }
      }
    }
  }
}

TEST(WindowFuzzTest, WindowedEngineMatchesNaiveReference) {
  Rng rng(213);
  for (int round = 0; round < 60; ++round) {
    const size_t n = 2 + rng.UniformInt(30);
    const size_t m = 2 + rng.UniformInt(30);
    const size_t radius = rng.UniformInt(4);
    const WarpingPath low = RandomPath(n / 2, m / 2, rng);
    const WarpingWindow window =
        WarpingWindow::FromLowResPath(low, n, m, radius);

    const std::vector<double> x = gen::RandomWalk(n, rng);
    const std::vector<double> y = gen::RandomWalk(m, rng);
    const double engine = WindowedDtwDistance(x, y, window);
    const double reference = testing::RefWindowedDtw(x, y, window);
    ASSERT_NEAR(engine, reference, 1e-9)
        << "n=" << n << " m=" << m << " r=" << radius;

    // Path engine agrees too, and its path respects the window.
    const DtwResult with_path = WindowedDtw(x, y, window);
    ASSERT_NEAR(with_path.distance, reference, 1e-9);
    for (const PathPoint& p : with_path.path.points()) {
      ASSERT_TRUE(window.Contains(p.i, p.j));
    }
  }
}

TEST(WindowFuzzTest, FastDtwOnRandomShapesNeverCrashesNorUndershoots) {
  Rng rng(214);
  for (int round = 0; round < 40; ++round) {
    const size_t n = 2 + rng.UniformInt(120);
    const size_t m = 2 + rng.UniformInt(120);
    const size_t radius = rng.UniformInt(8);
    const std::vector<double> x = gen::RandomWalk(n, rng);
    const std::vector<double> y = gen::RandomWalk(m, rng);
    const DtwResult fast = FastDtw(x, y, radius);
    ASSERT_TRUE(fast.path.IsValid(n, m))
        << "n=" << n << " m=" << m << " r=" << radius;
    ASSERT_GE(fast.distance, DtwDistance(x, y) - 1e-9);
  }
}

TEST(WindowFuzzTest, SakoeChibaRandomShapesMatchWindowedEngine) {
  Rng rng(215);
  for (int round = 0; round < 60; ++round) {
    const size_t n = 1 + rng.UniformInt(50);
    const size_t m = 1 + rng.UniformInt(50);
    const size_t band = rng.UniformInt(12);
    const std::vector<double> x = gen::RandomWalk(n, rng);
    const std::vector<double> y = gen::RandomWalk(m, rng);
    const WarpingWindow window = WarpingWindow::SakoeChiba(n, m, band);
    ASSERT_NEAR(CdtwDistance(x, y, band),
                testing::RefWindowedDtw(x, y, window), 1e-9)
        << "n=" << n << " m=" << m << " band=" << band;
  }
}

}  // namespace
}  // namespace warp
