#include "warp/mining/nn_classifier.h"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>

#include "warp/common/assert.h"
#include "warp/common/stopwatch.h"
#include "warp/core/dtw.h"
#include "warp/core/lower_bounds.h"

namespace warp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void Finalize(ClassificationStats* stats) {
  stats->accuracy = stats->total > 0 ? static_cast<double>(stats->correct) /
                                           static_cast<double>(stats->total)
                                     : 0.0;
  stats->error_rate = 1.0 - stats->accuracy;
}

}  // namespace

Prediction Classify1Nn(const Dataset& train, std::span<const double> query,
                       const SeriesMeasure& measure) {
  WARP_CHECK(!train.empty());
  Prediction best;
  best.distance = kInf;
  for (size_t i = 0; i < train.size(); ++i) {
    const double d = measure(train[i].view(), query);
    if (d < best.distance) {
      best.distance = d;
      best.nn_index = i;
      best.label = train[i].label();
    }
  }
  return best;
}

ClassificationStats Evaluate1Nn(const Dataset& train, const Dataset& test,
                                const SeriesMeasure& measure) {
  WARP_CHECK(!train.empty() && !test.empty());
  ClassificationStats stats;
  Stopwatch watch;
  for (const TimeSeries& query : test.series()) {
    const Prediction prediction = Classify1Nn(train, query.view(), measure);
    ++stats.total;
    if (prediction.label == query.label()) ++stats.correct;
  }
  stats.seconds = watch.ElapsedSeconds();
  Finalize(&stats);
  return stats;
}

namespace {

// A bounded set of the k nearest (distance, index) pairs, kept sorted
// ascending; worst() is the pruning threshold once full.
class KBest {
 public:
  explicit KBest(size_t k) : k_(k) {}

  void Offer(double distance, size_t index) {
    if (entries_.size() == k_ && distance >= worst()) return;
    const std::pair<double, size_t> entry{distance, index};
    const auto at = std::upper_bound(entries_.begin(), entries_.end(), entry);
    entries_.insert(at, entry);
    if (entries_.size() > k_) entries_.pop_back();
  }

  bool full() const { return entries_.size() == k_; }
  double worst() const {
    return entries_.empty() ? std::numeric_limits<double>::infinity()
                            : entries_.back().first;
  }
  double PruneThreshold() const {
    return full() ? worst() : std::numeric_limits<double>::infinity();
  }
  const std::vector<std::pair<double, size_t>>& entries() const {
    return entries_;
  }

 private:
  size_t k_;
  std::vector<std::pair<double, size_t>> entries_;
};

// Majority vote over the k nearest; ties resolved toward the class whose
// nearest member is closest (entries are sorted, so first-seen wins).
Prediction VoteFromKBest(const Dataset& train, const KBest& kbest) {
  WARP_CHECK(!kbest.entries().empty());
  std::map<int, size_t> votes;
  for (const auto& [distance, index] : kbest.entries()) {
    ++votes[train[index].label()];
  }
  size_t best_votes = 0;
  for (const auto& [label, n] : votes) best_votes = std::max(best_votes, n);

  Prediction prediction;
  prediction.nn_index = kbest.entries().front().second;
  prediction.distance = kbest.entries().front().first;
  for (const auto& [distance, index] : kbest.entries()) {
    if (votes[train[index].label()] == best_votes) {
      prediction.label = train[index].label();
      break;
    }
  }
  return prediction;
}

}  // namespace

Prediction ClassifyKnn(const Dataset& train, std::span<const double> query,
                       size_t k, const SeriesMeasure& measure) {
  WARP_CHECK(!train.empty());
  WARP_CHECK(k >= 1 && k <= train.size());
  KBest kbest(k);
  for (size_t i = 0; i < train.size(); ++i) {
    kbest.Offer(measure(train[i].view(), query), i);
  }
  return VoteFromKBest(train, kbest);
}

ClassificationStats EvaluateKnn(const Dataset& train, const Dataset& test,
                                size_t k, const SeriesMeasure& measure) {
  WARP_CHECK(!train.empty() && !test.empty());
  ClassificationStats stats;
  Stopwatch watch;
  for (const TimeSeries& query : test.series()) {
    const Prediction prediction =
        ClassifyKnn(train, query.view(), k, measure);
    ++stats.total;
    if (prediction.label == query.label()) ++stats.correct;
  }
  stats.seconds = watch.ElapsedSeconds();
  Finalize(&stats);
  return stats;
}

Prediction Classify1NnMulti(const std::vector<MultiSeries>& train,
                            const MultiSeries& query,
                            const MultiMeasure& measure) {
  WARP_CHECK(!train.empty());
  Prediction best;
  best.distance = kInf;
  for (size_t i = 0; i < train.size(); ++i) {
    const double d = measure(train[i], query);
    if (d < best.distance) {
      best.distance = d;
      best.nn_index = i;
      best.label = train[i].label();
    }
  }
  return best;
}

ClassificationStats Evaluate1NnMulti(const std::vector<MultiSeries>& train,
                                     const std::vector<MultiSeries>& test,
                                     const MultiMeasure& measure) {
  WARP_CHECK(!train.empty() && !test.empty());
  ClassificationStats stats;
  Stopwatch watch;
  for (const MultiSeries& query : test) {
    const Prediction prediction = Classify1NnMulti(train, query, measure);
    ++stats.total;
    if (prediction.label == query.label()) ++stats.correct;
  }
  stats.seconds = watch.ElapsedSeconds();
  Finalize(&stats);
  return stats;
}

// ---------------------------------------------------------------------------

AcceleratedNnClassifier::AcceleratedNnClassifier(const Dataset& train,
                                                 size_t band, CostKind cost)
    : train_(train), band_(band), cost_(cost) {
  WARP_CHECK(!train_.empty());
  length_ = train_.UniformLength();
  WARP_CHECK_MSG(length_ > 0,
                 "accelerated classifier requires uniform-length series");
  train_envelopes_.reserve(train_.size());
  for (const TimeSeries& series : train_.series()) {
    train_envelopes_.push_back(ComputeEnvelope(series.view(), band_));
  }
}

Prediction AcceleratedNnClassifier::Classify(
    std::span<const double> query, ClassificationStats* stats) const {
  WARP_CHECK_MSG(query.size() == length_,
                 "query length must match the training set");
  const Envelope query_envelope = ComputeEnvelope(query, band_);

  Prediction best;
  best.distance = kInf;
  DtwBuffer buffer;
  for (size_t i = 0; i < train_.size(); ++i) {
    if (stats != nullptr) ++stats->candidates;
    const std::span<const double> candidate = train_[i].view();

    // Rung 1: constant-time LB_Kim.
    if (LbKimFl(query, candidate, cost_) >= best.distance) {
      if (stats != nullptr) ++stats->pruned_by_kim;
      continue;
    }
    // Rung 2: LB_Keogh with the query envelope, early-abandoning at the
    // best-so-far, then the (tighter on some pairs) reversed direction.
    if (LbKeogh(query_envelope, candidate, cost_, best.distance) >=
            best.distance ||
        LbKeogh(train_envelopes_[i], query, cost_, best.distance) >=
            best.distance) {
      if (stats != nullptr) ++stats->pruned_by_keogh;
      continue;
    }
    // Rung 3: exact cDTW with early abandoning.
    const double d = CdtwDistanceAbandoning(query, candidate, band_,
                                            best.distance, cost_, &buffer);
    if (stats != nullptr) {
      if (d == kInf) {
        ++stats->abandoned_dtw;
      } else {
        ++stats->full_dtw;
      }
    }
    if (d < best.distance) {
      best.distance = d;
      best.nn_index = i;
      best.label = train_[i].label();
    }
  }
  return best;
}

Prediction AcceleratedNnClassifier::ClassifyKnn(
    std::span<const double> query, size_t k,
    ClassificationStats* stats) const {
  WARP_CHECK_MSG(query.size() == length_,
                 "query length must match the training set");
  WARP_CHECK(k >= 1 && k <= train_.size());
  const Envelope query_envelope = ComputeEnvelope(query, band_);

  KBest kbest(k);
  DtwBuffer buffer;
  for (size_t i = 0; i < train_.size(); ++i) {
    if (stats != nullptr) ++stats->candidates;
    const std::span<const double> candidate = train_[i].view();
    const double threshold = kbest.PruneThreshold();

    if (LbKimFl(query, candidate, cost_) >= threshold) {
      if (stats != nullptr) ++stats->pruned_by_kim;
      continue;
    }
    if (LbKeogh(query_envelope, candidate, cost_, threshold) >= threshold ||
        LbKeogh(train_envelopes_[i], query, cost_, threshold) >= threshold) {
      if (stats != nullptr) ++stats->pruned_by_keogh;
      continue;
    }
    const double d = CdtwDistanceAbandoning(query, candidate, band_,
                                            threshold, cost_, &buffer);
    if (stats != nullptr) {
      if (d == kInf) {
        ++stats->abandoned_dtw;
      } else {
        ++stats->full_dtw;
      }
    }
    if (d < kInf) kbest.Offer(d, i);
  }
  return VoteFromKBest(train_, kbest);
}

ClassificationStats AcceleratedNnClassifier::Evaluate(
    const Dataset& test) const {
  WARP_CHECK(!test.empty());
  ClassificationStats stats;
  Stopwatch watch;
  for (const TimeSeries& query : test.series()) {
    const Prediction prediction = Classify(query.view(), &stats);
    ++stats.total;
    if (prediction.label == query.label()) ++stats.correct;
  }
  stats.seconds = watch.ElapsedSeconds();
  stats.accuracy = static_cast<double>(stats.correct) /
                   static_cast<double>(stats.total);
  stats.error_rate = 1.0 - stats.accuracy;
  return stats;
}

}  // namespace warp
