// Shared machinery for the all-pairs timing experiments (Figs. 1 and 4).
//
// The paper times *every* pairwise comparison of a dataset (400,960 pairs
// for Fig. 1). On one laptop core that sweep takes days, so the harness
// times a uniformly-sampled subset of the pairs and reports both the
// measured per-comparison cost and the extrapolated total — the paper's
// claims are about which curve is lower, which sampling preserves.
//
// TimeAllPairs is templated on the measure callable so the comparison
// lands as a direct (inlinable) call: at microseconds per pair, a
// std::function indirection is measurable. A std::function overload
// remains for callers that already hold one.
//
// TimeAllPairsParallel is the multi-core variant. It preserves the serial
// checksum bit-for-bit at any thread count: every pair's distance is
// written to its own slot and the checksum is reduced in pair order on
// the calling thread afterwards — the exact summation order of the serial
// loop. Paper-faithful timings use 1 thread; N-thread runs measure what
// the same sweep costs when the hardware is actually used.

#ifndef WARP_BENCH_HARNESS_PAIRWISE_H_
#define WARP_BENCH_HARNESS_PAIRWISE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

#include "warp/common/parallel.h"
#include "warp/common/stopwatch.h"
#include "warp/core/distance_matrix.h"
#include "warp/ts/dataset.h"

namespace warp {
namespace bench {

struct PairwiseTiming {
  uint64_t pairs_timed = 0;
  double seconds = 0.0;
  double checksum = 0.0;  // Sum of distances: defeats dead-code elimination
                          // and doubles as a cross-run sanity check.

  double micros_per_pair() const {
    return pairs_timed > 0 ? seconds * 1e6 / static_cast<double>(pairs_timed)
                           : 0.0;
  }

  double ExtrapolatedSeconds(uint64_t total_pairs) const {
    return micros_per_pair() * 1e-6 * static_cast<double>(total_pairs);
  }
};

// Times `measure` over all pairs (i, j), i < j, of the first
// `sample_count` series of `dataset`.
template <typename Measure>
PairwiseTiming TimeAllPairs(const Dataset& dataset, size_t sample_count,
                            Measure&& measure) {
  const size_t n = std::min(sample_count, dataset.size());
  PairwiseTiming timing;
  Stopwatch watch;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      timing.checksum += measure(dataset[i].view(), dataset[j].view());
      ++timing.pairs_timed;
    }
  }
  timing.seconds = watch.ElapsedSeconds();
  return timing;
}

// Thin non-template overload for callers that already hold a
// std::function (exact-match preferred by overload resolution; lambdas
// bind to the template above without wrapping).
inline PairwiseTiming TimeAllPairs(const Dataset& dataset,
                                   size_t sample_count,
                                   const std::function<double(
                                       std::span<const double>,
                                       std::span<const double>)>& measure) {
  return TimeAllPairs(dataset, sample_count,
                      [&measure](std::span<const double> a,
                                 std::span<const double> b) {
                        return measure(a, b);
                      });
}

// Multi-core all-pairs timing. `make_measure` is a factory invoked once
// per worker slot, so each worker owns private scratch (a captured
// DtwBuffer, envelopes, ...) — pass a factory returning a fresh closure,
// not a shared stateful one. threads == 1 runs the chunks inline on the
// calling thread (no pool, no distances-slot contention); threads == 0
// means DefaultThreadCount(). The checksum is bitwise-equal to
// TimeAllPairs' for the same pairs at every thread count.
template <typename MeasureFactory>
PairwiseTiming TimeAllPairsParallel(const Dataset& dataset,
                                    size_t sample_count, size_t threads,
                                    MeasureFactory&& make_measure) {
  const size_t n = std::min(sample_count, dataset.size());
  PairwiseTiming timing;
  if (n < 2) return timing;
  const size_t total_pairs = n * (n - 1) / 2;
  threads = ResolveThreadCount(threads);

  std::vector<double> distances(total_pairs);
  Stopwatch watch;
  if (threads <= 1) {
    auto measure = make_measure();
    size_t p = 0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        distances[p++] = measure(dataset[i].view(), dataset[j].view());
      }
    }
  } else {
    ThreadPool pool(threads);
    using Measure = std::decay_t<decltype(make_measure())>;
    std::vector<Measure> measures;
    measures.reserve(pool.size());
    for (size_t w = 0; w < pool.size(); ++w) {
      measures.push_back(make_measure());
    }
    constexpr size_t kPairGrain = 32;
    ParallelFor(&pool, 0, total_pairs, kPairGrain,
                [&](size_t chunk_begin, size_t chunk_end, size_t worker) {
                  auto [i, j] = CondensedPairFromIndex(chunk_begin, n);
                  Measure& measure = measures[worker];
                  for (size_t p = chunk_begin; p < chunk_end; ++p) {
                    distances[p] =
                        measure(dataset[i].view(), dataset[j].view());
                    if (++j == n) {
                      ++i;
                      j = i + 1;
                    }
                  }
                });
  }
  timing.seconds = watch.ElapsedSeconds();
  timing.pairs_timed = total_pairs;
  for (const double d : distances) timing.checksum += d;
  return timing;
}

inline uint64_t TotalPairs(uint64_t count) { return count * (count - 1) / 2; }

}  // namespace bench
}  // namespace warp

#endif  // WARP_BENCH_HARNESS_PAIRWISE_H_
