// warp-metrics-v1: Prometheus-style text exposition of the counter,
// histogram, and gauge registries.
//
// The serving `metrics` control op returns this text (embedded as a JSON
// string in the usual one-line response envelope) so an external scraper
// gets every registry in one round trip without speaking any op-specific
// schema. The format is the conventional text exposition shape:
//
//   # warp-metrics-v1
//   # TYPE warp_serve_requests counter
//   warp_serve_requests_total 42
//   # TYPE warp_serve_queue_depth gauge
//   warp_serve_queue_depth 0
//   # TYPE warp_serve_latency_1nn_us histogram
//   warp_serve_latency_1nn_us_bucket{le="1"} 0
//   warp_serve_latency_1nn_us_bucket{le="3"} 2
//   warp_serve_latency_1nn_us_bucket{le="+Inf"} 5
//   warp_serve_latency_1nn_us_sum 1234
//   warp_serve_latency_1nn_us_count 5
//
// Contract (validated by scripts/serve_smoke.sh and the golden test):
//   * first line is exactly "# warp-metrics-v1";
//   * every metric name is prefixed "warp_" and counters end in "_total";
//   * histogram buckets are cumulative, le bounds are the inclusive
//     power-of-two bucket bounds in increasing order, emitted up to the
//     highest occupied bucket, and the "+Inf" bucket always equals
//     <name>_count;
//   * values are non-negative integers except gauges, which may be
//     negative.

#ifndef WARP_OBS_EXPOSITION_H_
#define WARP_OBS_EXPOSITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "warp/common/metrics.h"
#include "warp/obs/histogram.h"

namespace warp {
namespace obs {

// An extra single-valued metric owned by the caller rather than a
// registry (e.g. the result cache's size/hits, which live on the cache
// object — see the single-source-of-truth note in docs/SERVING.md).
// `name` is the full metric name without the "warp_" prefix or "_total"
// suffix; the renderer adds both as appropriate.
struct ExpositionExtra {
  std::string name;
  bool is_counter = false;  // counters get "_total", gauges do not
  int64_t value = 0;
};

// Renders the warp-metrics-v1 text document from the given snapshots.
// Counters and gauges are emitted exhaustively (zero values included —
// scrapers want stable series); histograms with no samples emit only
// their "+Inf" bucket, sum, and count.
std::string RenderMetricsText(const MetricsSnapshot& counters,
                              const HistogramSnapshot& histograms,
                              const GaugeSnapshot& gauges,
                              const std::vector<ExpositionExtra>& extras);

}  // namespace obs
}  // namespace warp

#endif  // WARP_OBS_EXPOSITION_H_
