#include "warp/gen/ecg.h"

#include <cmath>

#include "warp/common/assert.h"
#include "warp/ts/paa.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace gen {

namespace {

// One wave component: a Gaussian bump at a fractional position.
struct Wave {
  double center;     // Fraction of the beat.
  double width;      // Fraction of the beat.
  double amplitude;  // mV-ish units.
};

// Canonical normal-beat morphology (P, Q, R, S, T).
constexpr Wave kNormalBeat[] = {
    {0.18, 0.025, 0.15},   // P
    {0.38, 0.010, -0.12},  // Q
    {0.42, 0.012, 1.00},   // R
    {0.46, 0.010, -0.25},  // S
    {0.70, 0.060, 0.30},   // T
};

// PVC-like morphology: no P wave, wide and inverted-ish QRS, tall T.
constexpr Wave kPvcBeat[] = {
    {0.35, 0.040, -0.60},  // Wide deep initial deflection.
    {0.45, 0.050, 1.10},   // Broad R'.
    {0.72, 0.080, -0.45},  // Discordant T.
};

void AddWaves(std::span<const Wave> waves, double timing_jitter,
              std::vector<double>* beat, Rng& rng) {
  const size_t n = beat->size();
  for (const Wave& wave : waves) {
    const double center =
        (wave.center + rng.Uniform(-timing_jitter, timing_jitter)) *
        static_cast<double>(n);
    const double width =
        wave.width * static_cast<double>(n) * rng.Uniform(0.9, 1.1);
    const double amplitude = wave.amplitude * rng.Uniform(0.9, 1.1);
    for (size_t t = 0; t < n; ++t) {
      const double z = (static_cast<double>(t) - center) / width;
      (*beat)[t] += amplitude * std::exp(-0.5 * z * z);
    }
  }
}

}  // namespace

std::vector<double> MakeBeat(int label, const EcgOptions& options, Rng& rng) {
  WARP_CHECK(options.beat_length >= 16);
  std::vector<double> beat(options.beat_length, 0.0);

  // Wave timing jitter is the domain's natural warping: a couple percent.
  const double timing_jitter = 0.02;
  if (label == kPvcBeatLabel) {
    AddWaves(kPvcBeat, timing_jitter, &beat, rng);
  } else {
    AddWaves(kNormalBeat, timing_jitter, &beat, rng);
  }
  // Respiration-like baseline wander plus sensor noise.
  const double wander_phase = rng.Uniform(0.0, 2.0 * M_PI);
  for (size_t t = 0; t < beat.size(); ++t) {
    const double u = static_cast<double>(t) / static_cast<double>(beat.size());
    beat[t] += 0.03 * std::sin(2.0 * M_PI * u + wander_phase) +
               rng.Gaussian(0.0, options.noise_stddev);
  }
  return beat;
}

Dataset MakeBeatDataset(size_t per_class, const EcgOptions& options) {
  WARP_CHECK(per_class > 0);
  Rng rng(options.seed);
  Dataset dataset;
  dataset.set_name("synthetic_ecg_beats");
  for (int label : {kNormalBeatLabel, kPvcBeatLabel}) {
    for (size_t i = 0; i < per_class; ++i) {
      std::vector<double> beat = MakeBeat(label, options, rng);
      ZNormalizeInPlace(beat);
      TimeSeries series(std::move(beat), label);
      dataset.Add(std::move(series));
    }
  }
  return dataset;
}

std::vector<double> MakeRhythm(size_t num_beats, const EcgOptions& options,
                               std::vector<size_t>* beat_starts,
                               std::vector<int>* beat_labels) {
  WARP_CHECK(num_beats > 0);
  Rng rng(options.seed);
  std::vector<double> rhythm;
  rhythm.reserve(num_beats * options.beat_length);
  for (size_t b = 0; b < num_beats; ++b) {
    const int label = rng.Bernoulli(options.pvc_probability)
                          ? kPvcBeatLabel
                          : kNormalBeatLabel;
    if (beat_starts != nullptr) beat_starts->push_back(rhythm.size());
    if (beat_labels != nullptr) beat_labels->push_back(label);
    std::vector<double> beat = MakeBeat(label, options, rng);
    // Heart-rate variability: resample the beat to a jittered length.
    const double scale =
        1.0 + rng.Uniform(-options.rate_jitter, options.rate_jitter);
    const size_t target = std::max<size_t>(
        16, static_cast<size_t>(scale *
                                static_cast<double>(options.beat_length)));
    const std::vector<double> stretched = ResampleLinear(beat, target);
    rhythm.insert(rhythm.end(), stretched.begin(), stretched.end());
  }
  return rhythm;
}

}  // namespace gen
}  // namespace warp
