// Unit tests for Weighted DTW.

#include "warp/core/wdtw.h"

#include <gtest/gtest.h>

#include "warp/gen/random_walk.h"

namespace warp {
namespace {

TEST(WdtwWeightsTest, MonotoneNonDecreasingInPhase) {
  const std::vector<double> weights = MakeWdtwWeights(100, 0.1);
  for (size_t d = 1; d < weights.size(); ++d) {
    EXPECT_GE(weights[d], weights[d - 1]);
  }
  EXPECT_GT(weights.front(), 0.0);
  EXPECT_LE(weights.back(), 1.0 + 1e-12);
}

TEST(WdtwWeightsTest, SteepnessControlsSpread) {
  const std::vector<double> gentle = MakeWdtwWeights(100, 0.01);
  const std::vector<double> steep = MakeWdtwWeights(100, 1.0);
  // A steep g suppresses near-diagonal weights more and saturates faster.
  EXPECT_LT(steep[10], gentle[10]);
  EXPECT_GT(steep[90], gentle[90]);
}

TEST(WdtwTest, SelfDistanceIsZero) {
  Rng rng(171);
  const std::vector<double> x = gen::RandomWalk(60, rng);
  EXPECT_NEAR(WdtwDistance(x, x, 0.1, x.size()), 0.0, 1e-12);
}

TEST(WdtwTest, SymmetricInArguments) {
  Rng rng(172);
  const std::vector<double> x = gen::RandomWalk(50, rng);
  const std::vector<double> y = gen::RandomWalk(50, rng);
  EXPECT_NEAR(WdtwDistance(x, y, 0.1, 50), WdtwDistance(y, x, 0.1, 50),
              1e-9);
}

TEST(WdtwTest, HalfMaxWeightScalesDiagonalCost) {
  // Two constant series at different levels: every alignment cell costs
  // the same base amount; the diagonal path has n cells at phase 0, so
  // WDTW = n * weight[0] * (a-b)^2.
  const size_t n = 32;
  std::vector<double> a(n, 0.0);
  std::vector<double> b(n, 1.0);
  const std::vector<double> weights = MakeWdtwWeights(n, 0.25);
  const double expected = static_cast<double>(n) * weights[0] * 1.0;
  EXPECT_NEAR(WdtwDistance(a, b, 0.25, n), expected, 1e-9);
}

TEST(WdtwTest, HandComputedTwoPointExample) {
  // x = {0, 1}, y = {1, 0}: cells (0,1) and (1,0) cost zero (matched
  // values), so every path pays exactly the two phase-0 corners:
  // WDTW = 2 * weight[0].
  const std::vector<double> x = {0.0, 1.0};
  const std::vector<double> y = {1.0, 0.0};
  for (double g : {0.01, 0.25, 1.0}) {
    const std::vector<double> weights = MakeWdtwWeights(2, g);
    EXPECT_NEAR(WdtwDistance(x, y, g, 2), 2.0 * weights[0], 1e-12)
        << "g=" << g;
  }
}

TEST(WdtwTest, WeightsBiasTowardLowPhaseResiduals) {
  // A forced choice between equal value-mismatches at phase 0 vs phase
  // ~n/2: the weighted cost of a residual grows with its phase, so WDTW
  // distances of a far-phase mismatch exceed those of a near-phase one.
  const size_t n = 64;
  const std::vector<double> weights = MakeWdtwWeights(n, 0.3);
  // Direct statement about the weight function the DP consumes.
  EXPECT_GT(weights[n / 2] * 1.0, weights[0] * 1.0);
  // And end-to-end: a constant-offset pair (every path cell has the same
  // local cost) is cheapest along the diagonal, where phases are 0 — so
  // WDTW equals n * weight[0] * offset^2, strictly below the same path
  // priced at mid-phase weights.
  std::vector<double> a(n, 0.0);
  std::vector<double> b(n, 2.0);
  const double d = WdtwDistance(a, b, 0.3, n);
  EXPECT_NEAR(d, static_cast<double>(n) * weights[0] * 4.0, 1e-9);
  EXPECT_LT(d, static_cast<double>(n) * weights[n / 2] * 4.0);
}

TEST(WdtwTest, BandRestrictsLikeCdtw) {
  Rng rng(173);
  const std::vector<double> x = gen::RandomWalk(64, rng);
  const std::vector<double> y = gen::RandomWalk(64, rng);
  // Banded WDTW can only be >= unconstrained WDTW.
  EXPECT_GE(WdtwDistance(x, y, 0.05, 4),
            WdtwDistance(x, y, 0.05, 64) - 1e-9);
}

TEST(WdtwTest, ZeroSteepnessIsHalfWeightedDtw) {
  // g = 0 makes every weight exactly w_max / 2, so WDTW = DTW / 2.
  Rng rng(174);
  const std::vector<double> x = gen::RandomWalk(40, rng);
  const std::vector<double> y = gen::RandomWalk(40, rng);
  EXPECT_NEAR(WdtwDistance(x, y, 0.0, 40), 0.5 * CdtwDistance(x, y, 40),
              1e-9);
}

}  // namespace
}  // namespace warp
