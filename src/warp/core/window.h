// Warping windows: the set of matrix cells a constrained DTW may explore.
//
// A window is stored as one inclusive column range per row. This covers
// every constraint the paper discusses:
//   * the Sakoe–Chiba band (cDTW_w) — the constraint the paper advocates,
//   * the Itakura parallelogram (classic alternative, provided as an
//     extension),
//   * FastDTW's projected-path neighborhood (ExpandedResWindow).
//
// Invariants of a usable window (established by Canonicalize, verified by
// IsValid):
//   * every row has a non-empty range,
//   * ranges are monotone: lo and hi are non-decreasing in the row index,
//   * (0,0) and (n-1,m-1) are inside,
//   * DP-reachability: row i's range starts no later than one past row
//     i-1's end (lo[i] <= hi[i-1] + 1), so some admissible step connects
//     consecutive rows.

#ifndef WARP_CORE_WINDOW_H_
#define WARP_CORE_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "warp/common/assert.h"
#include "warp/core/warping_path.h"

namespace warp {

class WarpingWindow {
 public:
  struct ColRange {
    uint32_t lo = 0;
    uint32_t hi = 0;  // Inclusive.
    friend bool operator==(const ColRange&, const ColRange&) = default;
  };

  // The unconstrained window: every cell of the n x m matrix.
  static WarpingWindow Full(size_t n, size_t m);

  // Sakoe–Chiba band of half-width `band` cells around the (scaled)
  // diagonal. For n == m this is the textbook |i - j| <= band; for unequal
  // lengths the band is centered on the straight line from (0,0) to
  // (n-1,m-1) and automatically widened enough to stay connected.
  static WarpingWindow SakoeChiba(size_t n, size_t m, size_t band);

  // Band given as a fraction of the longer series length (the paper's w%).
  static WarpingWindow SakoeChibaFraction(size_t n, size_t m,
                                          double fraction);

  // Itakura parallelogram with maximum local slope `max_slope` (> 1).
  static WarpingWindow Itakura(size_t n, size_t m, double max_slope = 2.0);

  // FastDTW's ExpandedResWindow: projects a low-resolution warping path
  // (computed on the half-length series) up to full resolution, then
  // expands it by `radius` cells in every direction — the semantics of the
  // reference implementation, expressed with contiguous per-row ranges.
  // (n, m) are the *high-resolution* lengths; the path lives on
  // (floor(n/2), floor(m/2)).
  static WarpingWindow FromLowResPath(const WarpingPath& low_res_path,
                                      size_t n, size_t m, size_t radius);

  size_t rows() const { return ranges_.size(); }
  size_t cols() const { return cols_; }

  const ColRange& range(size_t i) const {
    WARP_DCHECK(i < ranges_.size());
    return ranges_[i];
  }

  bool Contains(size_t i, size_t j) const {
    return i < ranges_.size() && j >= ranges_[i].lo && j <= ranges_[i].hi;
  }

  // Total number of cells in the window — the work a windowed DTW does.
  uint64_t CellCount() const;

  bool IsValid() const;
  bool Validate(std::string* error) const;

  // The smallest Sakoe–Chiba band (for the same shape) containing this
  // window; used in tests and diagnostics.
  size_t MaxDiagonalDeviation() const;

 private:
  WarpingWindow(size_t cols, std::vector<ColRange> ranges)
      : cols_(cols), ranges_(std::move(ranges)) {}

  // Repairs a freshly built window to satisfy the class invariants:
  // clamps, forces the two corner cells in, makes lo/hi monotone, and
  // patches reachability gaps.
  void Canonicalize();

  size_t cols_ = 0;
  std::vector<ColRange> ranges_;
};

}  // namespace warp

#endif  // WARP_CORE_WINDOW_H_
