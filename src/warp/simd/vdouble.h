// The one wrap-or-fallback vector type behind every SIMD kernel.
//
// `vdouble` is a fixed-width pack of doubles: AVX2 (4 lanes) on x86,
// NEON (2 lanes) on arm64, and a plain array fallback (4 lanes)
// everywhere else or when the build opts out via WARP_SIMD=OFF. All
// three backends implement the same operation set with the same
// per-lane semantics, so a kernel written against vdouble computes
// bit-identical results on every backend — the fallback is not an
// approximation, it is the same arithmetic run one lane at a time.
//
// This header is the only file in the repository allowed to include
// <immintrin.h> / <arm_neon.h> (enforced by scripts/lint.sh); every
// other SIMD consumer goes through this type.
//
// Determinism notes (docs/SIMD.md):
//   * MinPreferFirst/MaxPreferFirst mirror the scalar tie idiom
//     `if (b < a) a = b;` — the FIRST argument survives ties, matching
//     the engine's first-minimal-candidate rule exactly.
//   * Abs clears the sign bit, which is precisely std::fabs.
//   * No fused multiply-add is ever emitted from these wrappers: each
//     named operation maps to one rounding, the same rounding the
//     scalar expression performs.

#ifndef WARP_SIMD_VDOUBLE_H_
#define WARP_SIMD_VDOUBLE_H_

#include <cstddef>
#include <cstdint>

// Defined (to 0 or 1) by CMake via the WARP_SIMD option; default on for
// builds that bypass CMake, mirroring WARP_PROFILE_ENABLED.
#ifndef WARP_SIMD_ENABLED
#define WARP_SIMD_ENABLED 1
#endif

#if WARP_SIMD_ENABLED && defined(__AVX2__)
#define WARP_SIMD_BACKEND_AVX2 1
#include <immintrin.h>
#elif WARP_SIMD_ENABLED && defined(__aarch64__)
#define WARP_SIMD_BACKEND_NEON 1
#include <arm_neon.h>
#else
#define WARP_SIMD_BACKEND_SCALAR 1
#include <cmath>
#endif

namespace warp {
namespace simd {

#if defined(WARP_SIMD_BACKEND_AVX2)

inline constexpr size_t kLanes = 4;
inline constexpr const char* kBackendName = "avx2";
inline constexpr bool kVectorBackend = true;

struct vdouble {
  __m256d v;

  static vdouble Load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static vdouble Broadcast(double x) { return {_mm256_set1_pd(x)}; }

  // Loads the first `count` lanes (count in [0, kLanes]); the rest read
  // as +0.0. Never touches memory past p[count - 1].
  static vdouble LoadMasked(const double* p, size_t count) {
    return {_mm256_maskload_pd(p, TailMask(count))};
  }

  void Store(double* p) const { _mm256_storeu_pd(p, v); }

  // Stores the first `count` lanes; memory past p[count - 1] untouched.
  void StoreMasked(double* p, size_t count) const {
    _mm256_maskstore_pd(p, TailMask(count), v);
  }

  double Lane(size_t i) const {
    alignas(32) double lanes[kLanes];
    _mm256_store_pd(lanes, v);
    return lanes[i];
  }

  friend vdouble operator+(vdouble a, vdouble b) {
    return {_mm256_add_pd(a.v, b.v)};
  }
  friend vdouble operator-(vdouble a, vdouble b) {
    return {_mm256_sub_pd(a.v, b.v)};
  }
  friend vdouble operator*(vdouble a, vdouble b) {
    return {_mm256_mul_pd(a.v, b.v)};
  }

  // Lanewise `if (b < a) a = b;` — the first operand survives ties.
  friend vdouble MinPreferFirst(vdouble a, vdouble b) {
    return {_mm256_blendv_pd(a.v, b.v, _mm256_cmp_pd(b.v, a.v, _CMP_LT_OQ))};
  }
  friend vdouble MaxPreferFirst(vdouble a, vdouble b) {
    return {_mm256_blendv_pd(a.v, b.v, _mm256_cmp_pd(b.v, a.v, _CMP_GT_OQ))};
  }

  friend vdouble Abs(vdouble a) {
    const __m256d sign = _mm256_set1_pd(-0.0);
    return {_mm256_andnot_pd(sign, a.v)};
  }

  // True when any lane of v lies strictly outside [lo, hi].
  friend bool AnyOutside(vdouble val, vdouble lo, vdouble hi) {
    const __m256d above = _mm256_cmp_pd(val.v, hi.v, _CMP_GT_OQ);
    const __m256d below = _mm256_cmp_pd(val.v, lo.v, _CMP_LT_OQ);
    return _mm256_movemask_pd(_mm256_or_pd(above, below)) != 0;
  }

 private:
  static __m256i TailMask(size_t count) {
    // Lane l is loaded/stored when its 64-bit mask value is negative.
    const __m256i lane = _mm256_set_epi64x(3, 2, 1, 0);
    return _mm256_cmpgt_epi64(_mm256_set1_epi64x(static_cast<int64_t>(count)),
                              lane);
  }
};

#elif defined(WARP_SIMD_BACKEND_NEON)

inline constexpr size_t kLanes = 2;
inline constexpr const char* kBackendName = "neon";
inline constexpr bool kVectorBackend = true;

struct vdouble {
  float64x2_t v;

  static vdouble Load(const double* p) { return {vld1q_f64(p)}; }
  static vdouble Broadcast(double x) { return {vdupq_n_f64(x)}; }

  static vdouble LoadMasked(const double* p, size_t count) {
    float64x2_t r = vdupq_n_f64(0.0);
    if (count >= 1) r = vsetq_lane_f64(p[0], r, 0);
    if (count >= 2) r = vsetq_lane_f64(p[1], r, 1);
    return {r};
  }

  void Store(double* p) const { vst1q_f64(p, v); }

  void StoreMasked(double* p, size_t count) const {
    if (count >= 1) p[0] = vgetq_lane_f64(v, 0);
    if (count >= 2) p[1] = vgetq_lane_f64(v, 1);
  }

  double Lane(size_t i) const {
    return i == 0 ? vgetq_lane_f64(v, 0) : vgetq_lane_f64(v, 1);
  }

  friend vdouble operator+(vdouble a, vdouble b) {
    return {vaddq_f64(a.v, b.v)};
  }
  friend vdouble operator-(vdouble a, vdouble b) {
    return {vsubq_f64(a.v, b.v)};
  }
  friend vdouble operator*(vdouble a, vdouble b) {
    return {vmulq_f64(a.v, b.v)};
  }

  friend vdouble MinPreferFirst(vdouble a, vdouble b) {
    return {vbslq_f64(vcltq_f64(b.v, a.v), b.v, a.v)};
  }
  friend vdouble MaxPreferFirst(vdouble a, vdouble b) {
    return {vbslq_f64(vcgtq_f64(b.v, a.v), b.v, a.v)};
  }

  friend vdouble Abs(vdouble a) { return {vabsq_f64(a.v)}; }

  friend bool AnyOutside(vdouble val, vdouble lo, vdouble hi) {
    const uint64x2_t above = vcgtq_f64(val.v, hi.v);
    const uint64x2_t below = vcltq_f64(val.v, lo.v);
    const uint64x2_t either = vorrq_u64(above, below);
    return (vgetq_lane_u64(either, 0) | vgetq_lane_u64(either, 1)) != 0;
  }
};

#else  // scalar fallback

inline constexpr size_t kLanes = 4;
inline constexpr const char* kBackendName = "scalar";
inline constexpr bool kVectorBackend = false;

struct vdouble {
  double v[kLanes];

  static vdouble Load(const double* p) {
    vdouble r;
    for (size_t l = 0; l < kLanes; ++l) r.v[l] = p[l];
    return r;
  }
  static vdouble Broadcast(double x) {
    vdouble r;
    for (size_t l = 0; l < kLanes; ++l) r.v[l] = x;
    return r;
  }
  static vdouble LoadMasked(const double* p, size_t count) {
    vdouble r;
    for (size_t l = 0; l < kLanes; ++l) r.v[l] = l < count ? p[l] : 0.0;
    return r;
  }

  void Store(double* p) const {
    for (size_t l = 0; l < kLanes; ++l) p[l] = v[l];
  }
  void StoreMasked(double* p, size_t count) const {
    for (size_t l = 0; l < kLanes && l < count; ++l) p[l] = v[l];
  }

  double Lane(size_t i) const { return v[i]; }

  friend vdouble operator+(vdouble a, vdouble b) {
    vdouble r;
    for (size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] + b.v[l];
    return r;
  }
  friend vdouble operator-(vdouble a, vdouble b) {
    vdouble r;
    for (size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] - b.v[l];
    return r;
  }
  friend vdouble operator*(vdouble a, vdouble b) {
    vdouble r;
    for (size_t l = 0; l < kLanes; ++l) r.v[l] = a.v[l] * b.v[l];
    return r;
  }

  friend vdouble MinPreferFirst(vdouble a, vdouble b) {
    vdouble r;
    for (size_t l = 0; l < kLanes; ++l) r.v[l] = b.v[l] < a.v[l] ? b.v[l] : a.v[l];
    return r;
  }
  friend vdouble MaxPreferFirst(vdouble a, vdouble b) {
    vdouble r;
    for (size_t l = 0; l < kLanes; ++l) r.v[l] = b.v[l] > a.v[l] ? b.v[l] : a.v[l];
    return r;
  }

  friend vdouble Abs(vdouble a) {
    vdouble r;
    for (size_t l = 0; l < kLanes; ++l) r.v[l] = std::fabs(a.v[l]);
    return r;
  }

  friend bool AnyOutside(vdouble val, vdouble lo, vdouble hi) {
    for (size_t l = 0; l < kLanes; ++l) {
      if (val.v[l] > hi.v[l] || val.v[l] < lo.v[l]) return true;
    }
    return false;
  }
};

#endif

}  // namespace simd
}  // namespace warp

#endif  // WARP_SIMD_VDOUBLE_H_
