#ifndef WARP_SERVE_NET_H_
#define WARP_SERVE_NET_H_

#include <sys/socket.h>

namespace warp {
namespace serve {
inline int OpenSocket() { return socket(2, 1, 0); }
}  // namespace serve
}  // namespace warp

#endif  // WARP_SERVE_NET_H_
