#!/usr/bin/env bash
# Repository lint driver.
#
# The convention checks that used to live here as grep pipelines are now
# compiled rules in the warp_lint analyzer (src/warp/lintkit/, CLI in
# tools/warp_lint.cc): token-level rules that a trailing comment or a
# string literal can no longer trip, plus cross-file project invariants
# (module layering DAG, include order, counter/measure registry
# cross-references, bench flag wiring, test registration). The full rule
# list, suppression-pragma syntax, and JSON schema are documented in
# docs/STATIC_ANALYSIS.md; `warp_lint --list-rules` prints the rules.
#
# This script:
#   1. builds warp_lint (Release) if no binary is available,
#   2. runs it over the repository, writing a warp-lint-v1 JSON report,
#   3. runs clang-format and clang-tidy when the tools are installed.
#
# Missing clang tools are reported loudly and skipped, because the
# analysis container ships only g++; set LINT_STRICT=1 (CI does) to turn
# a missing tool into a failure instead. warp_lint itself has no
# dependencies beyond the toolchain, so it always runs.
#
# Environment:
#   WARP_LINT_BIN   use this warp_lint binary instead of building one
#   LINT_BUILD_DIR  build directory for warp_lint (default: build-lint)
#   LINT_JSON       where to write the JSON report
#                   (default: $LINT_BUILD_DIR/warp_lint_report.json)
#   LINT_STRICT     1 = missing clang tools fail the run (CI sets this)
#
# Usage: scripts/lint.sh [--fix]   (--fix lets clang-format rewrite files)
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

FIX=0
[ "${1:-}" = "--fix" ] && FIX=1
STRICT="${LINT_STRICT:-0}"
LINT_BUILD_DIR="${LINT_BUILD_DIR:-build-lint}"
LINT_JSON="${LINT_JSON:-$LINT_BUILD_DIR/warp_lint_report.json}"
failures=0

fail() {
  echo "LINT FAIL: $*" >&2
  failures=$((failures + 1))
}

skip_tool() {
  local tool="$1"
  if [ "$STRICT" = "1" ]; then
    fail "required tool '$tool' is not installed (LINT_STRICT=1)"
  else
    echo "LINT SKIP: '$tool' not installed — install it or run in CI for full coverage" >&2
  fi
}

cpp_sources() {
  git ls-files '*.cc' '*.h' | grep -v '/lint_fixtures/'
}

# --- warp_lint: convention + project-invariant analyzer ---------------------
WARP_LINT="${WARP_LINT_BIN:-}"
if [ -z "$WARP_LINT" ]; then
  # Reuse an existing build of the tool when one is lying around.
  for candidate in "$LINT_BUILD_DIR/tools/warp_lint" build/tools/warp_lint; do
    if [ -x "$candidate" ]; then
      WARP_LINT="$candidate"
      break
    fi
  done
fi
if [ -z "$WARP_LINT" ]; then
  echo "lint: building warp_lint in $LINT_BUILD_DIR ..." >&2
  cmake -B "$LINT_BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
        -DWARP_BUILD_BENCHMARKS=OFF -DWARP_BUILD_EXAMPLES=OFF > /dev/null \
    || fail "could not configure $LINT_BUILD_DIR for warp_lint"
  cmake --build "$LINT_BUILD_DIR" --target warp_lint -j"$(nproc)" > /dev/null \
    || fail "could not build warp_lint"
  WARP_LINT="$LINT_BUILD_DIR/tools/warp_lint"
fi

if [ -x "$WARP_LINT" ]; then
  mkdir -p "$(dirname "$LINT_JSON")"
  if ! "$WARP_LINT" --root="$ROOT" --json="$LINT_JSON"; then
    fail "warp_lint reported findings (see above; JSON report: $LINT_JSON)"
  fi
else
  fail "no warp_lint binary available"
fi

# --- clang-format ----------------------------------------------------------
if command -v clang-format > /dev/null 2>&1; then
  if [ "$FIX" = "1" ]; then
    cpp_sources | xargs clang-format -i
    echo "clang-format: rewrote files in place (--fix)"
  elif ! cpp_sources | xargs clang-format --dry-run -Werror 2>&1 | tail -40; then
    fail "clang-format found formatting violations (run scripts/lint.sh --fix)"
  fi
else
  skip_tool clang-format
fi

# --- clang-tidy over src/warp ----------------------------------------------
if command -v clang-tidy > /dev/null 2>&1; then
  TIDY_BUILD_DIR="${TIDY_BUILD_DIR:-build-tidy}"
  if [ ! -f "$TIDY_BUILD_DIR/compile_commands.json" ]; then
    cmake -B "$TIDY_BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
          -DWARP_BUILD_BENCHMARKS=OFF -DWARP_BUILD_EXAMPLES=OFF \
          > /dev/null || fail "could not configure $TIDY_BUILD_DIR for clang-tidy"
  fi
  if [ -f "$TIDY_BUILD_DIR/compile_commands.json" ]; then
    if ! git ls-files 'src/warp/*.cc' | \
        xargs clang-tidy -p "$TIDY_BUILD_DIR" -warnings-as-errors='*' -quiet; then
      fail "clang-tidy reported findings on src/warp"
    fi
  fi
else
  skip_tool clang-tidy
fi

if [ $failures -eq 0 ]; then
  echo "lint: all checks passed"
  exit 0
fi
echo "lint: $failures check(s) failed" >&2
exit 1
