// Process-control primitives for the cluster subsystem.
//
// The ONLY file in the repository allowed to issue raw process syscalls
// (fork/exec, kill, waitpid — enforced by warp_lint's proc-containment
// rule): the supervisor, tools, and tests go through ChildProcess /
// SendSignal / SleepMillis so stdout piping, EINTR handling, and pid
// bookkeeping live in one place.

#ifndef WARP_CLUSTER_PROC_H_
#define WARP_CLUSTER_PROC_H_

#include <string>
#include <vector>

namespace warp {
namespace cluster {

// One spawned child with its stdout captured through a pipe (stderr
// passes through to the parent's). Movable, not copyable. Destruction
// closes the pipe but neither kills nor reaps the child — lifecycle
// decisions belong to the supervisor, not to scope exits.
class ChildProcess {
 public:
  ChildProcess() = default;
  ~ChildProcess();

  ChildProcess(ChildProcess&& other) noexcept;
  ChildProcess& operator=(ChildProcess&& other) noexcept;
  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;

  // fork()+execvp(): argv[0] is the binary (PATH-resolved), the rest its
  // arguments. The child's stdout is piped back to the parent. Returns
  // false and fills *error on failure; an exec failure surfaces as the
  // child exiting 127.
  bool Spawn(const std::vector<std::string>& argv, std::string* error);

  // Valid between a successful Spawn and a successful reap.
  bool running() const { return pid_ > 0; }
  long pid() const { return pid_; }

  // Reads the child's stdout until a line starting with `prefix`
  // arrives; fills *line with it (terminator stripped). Lines before the
  // match are discarded. Returns false on timeout, EOF (child closed
  // stdout), or when no child is running. The supervisor uses this to
  // scrape a worker's "ready port=<P>" line.
  bool WaitForLinePrefix(const std::string& prefix, int timeout_ms,
                         std::string* line);

  // Sends `signum` to the child (no-op when not running).
  void Kill(int signum);

  // Non-blocking reap: returns true when the child has exited and was
  // collected (raw wait status in *status when non-null); the pid is
  // released. Returns false while the child is still running.
  bool TryReap(int* status);

  // Blocking reap; returns the raw wait status (0 when no child).
  int Reap();

 private:
  void CloseStdout();

  long pid_ = -1;
  int stdout_fd_ = -1;
  std::string pending_;  // Buffered but not-yet-consumed stdout bytes.
};

// kill(pid, signum) for processes not owned by a ChildProcess — fault
// injection in tests and smoke scripts. Returns false when the signal
// could not be delivered.
bool SendSignal(long pid, int signum);

// nanosleep wrapper: the cluster's only time-delay primitive. (The repo
// confines <chrono> to the Stopwatch implementation; backoff and polling
// loops combine this with warp::Stopwatch for elapsed time.)
void SleepMillis(int ms);

}  // namespace cluster
}  // namespace warp

#endif  // WARP_CLUSTER_PROC_H_
