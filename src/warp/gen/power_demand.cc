#include "warp/gen/power_demand.h"

#include <algorithm>
#include <cmath>

#include "warp/common/assert.h"

namespace warp {
namespace gen {

namespace {

// Program geometry as fractions of the trace length: two wash peaks and a
// drying peak, mirroring the three conserved peaks in the paper's Fig. 3.
struct Peak {
  double start;     // Offset from program start, fraction of n.
  double duration;  // Fraction of n.
  double height;    // kW above baseline.
};

constexpr Peak kProgram[] = {
    {0.00, 0.08, 2.0},  // First wash heating.
    {0.14, 0.07, 1.9},  // Second wash heating.
    {0.30, 0.10, 1.5},  // Drying.
};

constexpr double kProgramSpan = 0.40;  // Total program span, fraction of n.

double BaselineAt(size_t t, size_t n, Rng& rng) {
  // Fridge compressor cycling: a soft square wave around 0.1 kW.
  const double phase =
      std::sin(2.0 * M_PI * 6.0 * static_cast<double>(t) /
               static_cast<double>(n));
  const double fridge = phase > 0.3 ? 0.12 : 0.06;
  return fridge + std::fabs(rng.Gaussian(0.0, 0.01));
}

}  // namespace

TimeSeries MakeQuietNight(size_t n, Rng& rng) {
  WARP_CHECK(n > 0);
  std::vector<double> values(n);
  for (size_t t = 0; t < n; ++t) values[t] = BaselineAt(t, n, rng);
  return TimeSeries(std::move(values), kQuietNightLabel);
}

size_t MaxProgramStart(size_t n) {
  const double span = kProgramSpan * static_cast<double>(n);
  return n > static_cast<size_t>(span) + 1
             ? n - static_cast<size_t>(span) - 1
             : 0;
}

TimeSeries MakeDishwasherNight(size_t n, size_t program_start, Rng& rng) {
  WARP_CHECK(n > 0);
  WARP_CHECK_MSG(program_start <= MaxProgramStart(n),
                 "dishwasher program must fit in the trace");
  TimeSeries night = MakeQuietNight(n, rng);
  night.set_label(kDishwasherNightLabel);
  for (const Peak& peak : kProgram) {
    const size_t start =
        program_start +
        static_cast<size_t>(peak.start * static_cast<double>(n));
    const size_t duration = std::max<size_t>(
        1, static_cast<size_t>(peak.duration * static_cast<double>(n)));
    for (size_t k = 0; k < duration && start + k < n; ++k) {
      // Rounded shoulders so the peaks look like heater duty cycles.
      const double u = static_cast<double>(k) / static_cast<double>(duration);
      const double shape = std::clamp(8.0 * std::min(u, 1.0 - u), 0.0, 1.0);
      night[start + k] += peak.height * shape * (1.0 + rng.Gaussian(0.0, 0.02));
    }
  }
  return night;
}

Dataset MakePowerDemandDataset(size_t count, size_t n,
                               double dishwasher_probability, uint64_t seed) {
  WARP_CHECK(count > 0);
  WARP_CHECK(dishwasher_probability >= 0.0 && dishwasher_probability <= 1.0);
  Rng rng(seed);
  Dataset dataset;
  dataset.set_name("power_demand");
  const size_t max_start = MaxProgramStart(n);
  for (size_t i = 0; i < count; ++i) {
    if (rng.Bernoulli(dishwasher_probability) && max_start > 0) {
      const size_t start = rng.UniformInt(max_start + 1);
      dataset.Add(MakeDishwasherNight(n, start, rng));
    } else {
      dataset.Add(MakeQuietNight(n, rng));
    }
  }
  return dataset;
}

}  // namespace gen
}  // namespace warp
