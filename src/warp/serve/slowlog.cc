#include "warp/serve/slowlog.h"

#include <algorithm>
#include <utility>

namespace warp {
namespace serve {

void SlowQueryLog::Record(SlowQueryRecord record) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  record.seq = next_seq_++;
  if (entries_.size() < capacity_) {
    entries_.push_back(std::move(record));
    return;
  }
  // Full: find the current minimum (ties broken toward the later
  // admission, so the earliest-admitted tied record is the survivor).
  size_t min_index = 0;
  for (size_t i = 1; i < entries_.size(); ++i) {
    const SlowQueryRecord& candidate = entries_[i];
    const SlowQueryRecord& current = entries_[min_index];
    if (candidate.engine_us < current.engine_us ||
        (candidate.engine_us == current.engine_us &&
         candidate.seq > current.seq)) {
      min_index = i;
    }
  }
  if (record.engine_us > entries_[min_index].engine_us) {
    entries_[min_index] = std::move(record);
  }
}

std::vector<SlowQueryRecord> SlowQueryLog::Drain() {
  std::vector<SlowQueryRecord> drained;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    drained.swap(entries_);
  }
  std::sort(drained.begin(), drained.end(),
            [](const SlowQueryRecord& a, const SlowQueryRecord& b) {
              if (a.engine_us != b.engine_us) return a.engine_us > b.engine_us;
              return a.seq < b.seq;
            });
  return drained;
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace serve
}  // namespace warp
