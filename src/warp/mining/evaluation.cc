#include "warp/mining/evaluation.h"

#include <algorithm>
#include <set>

#include "warp/common/assert.h"
#include "warp/common/table_printer.h"

namespace warp {

void ConfusionMatrix::Add(int actual, int predicted) {
  ++counts_[{actual, predicted}];
  ++actual_totals_[actual];
  ++predicted_totals_[predicted];
  ++total_;
}

size_t ConfusionMatrix::count(int actual, int predicted) const {
  const auto it = counts_.find({actual, predicted});
  return it == counts_.end() ? 0 : it->second;
}

double ConfusionMatrix::Accuracy() const {
  WARP_CHECK(total_ > 0);
  size_t correct = 0;
  for (const auto& [key, n] : counts_) {
    if (key.first == key.second) correct += n;
  }
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::Precision(int label) const {
  const auto it = predicted_totals_.find(label);
  if (it == predicted_totals_.end() || it->second == 0) return 0.0;
  return static_cast<double>(count(label, label)) /
         static_cast<double>(it->second);
}

double ConfusionMatrix::Recall(int label) const {
  const auto it = actual_totals_.find(label);
  if (it == actual_totals_.end() || it->second == 0) return 0.0;
  return static_cast<double>(count(label, label)) /
         static_cast<double>(it->second);
}

double ConfusionMatrix::F1(int label) const {
  const double p = Precision(label);
  const double r = Recall(label);
  return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

double ConfusionMatrix::MacroF1() const {
  const std::vector<int> labels = Labels();
  WARP_CHECK(!labels.empty());
  double sum = 0.0;
  for (int label : labels) sum += F1(label);
  return sum / static_cast<double>(labels.size());
}

std::vector<int> ConfusionMatrix::Labels() const {
  std::set<int> labels;
  for (const auto& [label, n] : actual_totals_) labels.insert(label);
  for (const auto& [label, n] : predicted_totals_) labels.insert(label);
  return {labels.begin(), labels.end()};
}

std::string ConfusionMatrix::ToString() const {
  const std::vector<int> labels = Labels();
  std::vector<std::string> headers;
  headers.push_back("actual\\pred");
  for (int label : labels) headers.push_back(std::to_string(label));
  headers.push_back("recall");
  TablePrinter table(std::move(headers));
  for (int actual : labels) {
    std::vector<std::string> row;
    row.push_back(std::to_string(actual));
    for (int predicted : labels) {
      row.push_back(std::to_string(count(actual, predicted)));
    }
    row.push_back(TablePrinter::FormatDouble(Recall(actual), 3));
    table.AddRow(std::move(row));
  }
  std::vector<std::string> precision_row;
  precision_row.push_back("precision");
  for (int label : labels) {
    precision_row.push_back(TablePrinter::FormatDouble(Precision(label), 3));
  }
  precision_row.push_back(TablePrinter::FormatDouble(Accuracy(), 3));
  table.AddRow(std::move(precision_row));
  return table.ToString();
}

namespace {

// Pair-counting contingency sums shared by the Rand variants.
struct PairCounts {
  double same_both = 0.0;   // Pairs together in both partitions.
  double same_a = 0.0;      // Pairs together in a.
  double same_b = 0.0;      // Pairs together in b.
  double total_pairs = 0.0;
};

PairCounts CountPairs(std::span<const int> a, std::span<const int> b) {
  WARP_CHECK(a.size() == b.size());
  WARP_CHECK(a.size() >= 2);
  // Contingency table.
  std::map<std::pair<int, int>, size_t> cells;
  std::map<int, size_t> a_sizes;
  std::map<int, size_t> b_sizes;
  for (size_t i = 0; i < a.size(); ++i) {
    ++cells[{a[i], b[i]}];
    ++a_sizes[a[i]];
    ++b_sizes[b[i]];
  }
  auto choose2 = [](size_t n) {
    return static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  };
  PairCounts counts;
  for (const auto& [key, n] : cells) counts.same_both += choose2(n);
  for (const auto& [key, n] : a_sizes) counts.same_a += choose2(n);
  for (const auto& [key, n] : b_sizes) counts.same_b += choose2(n);
  counts.total_pairs = choose2(a.size());
  return counts;
}

}  // namespace

double RandIndex(std::span<const int> a, std::span<const int> b) {
  const PairCounts counts = CountPairs(a, b);
  // Agreements = together-in-both + apart-in-both.
  const double apart_both = counts.total_pairs - counts.same_a -
                            counts.same_b + counts.same_both;
  return (counts.same_both + apart_both) / counts.total_pairs;
}

double AdjustedRandIndex(std::span<const int> a, std::span<const int> b) {
  const PairCounts counts = CountPairs(a, b);
  const double expected =
      counts.same_a * counts.same_b / counts.total_pairs;
  const double maximum = 0.5 * (counts.same_a + counts.same_b);
  if (maximum == expected) return 1.0;  // Degenerate: single clusters.
  return (counts.same_both - expected) / (maximum - expected);
}

double Purity(std::span<const int> clusters, std::span<const int> labels) {
  WARP_CHECK(clusters.size() == labels.size());
  WARP_CHECK(!clusters.empty());
  std::map<int, std::map<int, size_t>> by_cluster;
  for (size_t i = 0; i < clusters.size(); ++i) {
    ++by_cluster[clusters[i]][labels[i]];
  }
  size_t majority_total = 0;
  for (const auto& [cluster, label_counts] : by_cluster) {
    size_t best = 0;
    for (const auto& [label, n] : label_counts) best = std::max(best, n);
    majority_total += best;
  }
  return static_cast<double>(majority_total) /
         static_cast<double>(clusters.size());
}

}  // namespace warp
