// Unit and property tests for SAX.

#include "warp/ts/sax.h"

#include <gtest/gtest.h>

#include "warp/core/dtw.h"
#include "warp/gen/random_walk.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace {

TEST(SaxBreakpointsTest, AscendingAndSymmetric) {
  for (size_t a = kMinSaxAlphabet; a <= kMaxSaxAlphabet; ++a) {
    const auto breakpoints = SaxBreakpoints(a);
    ASSERT_EQ(breakpoints.size(), a - 1);
    for (size_t k = 1; k < breakpoints.size(); ++k) {
      EXPECT_LT(breakpoints[k - 1], breakpoints[k]);
    }
    // Gaussian quantiles are symmetric around zero.
    for (size_t k = 0; k < breakpoints.size(); ++k) {
      EXPECT_NEAR(breakpoints[k],
                  -breakpoints[breakpoints.size() - 1 - k], 1e-9);
    }
  }
}

TEST(SaxWordTest, MonotoneRampCoversAlphabet) {
  std::vector<double> ramp;
  for (int t = 0; t < 64; ++t) ramp.push_back(static_cast<double>(t));
  const std::vector<uint8_t> word = SaxWord(ramp, 8, 4);
  ASSERT_EQ(word.size(), 8u);
  // Non-decreasing symbols, starting low and ending high.
  for (size_t s = 1; s < word.size(); ++s) EXPECT_GE(word[s], word[s - 1]);
  EXPECT_EQ(word.front(), 0);
  EXPECT_EQ(word.back(), 3);
}

TEST(SaxWordTest, ScaleAndOffsetInvariant) {
  Rng rng(221);
  const std::vector<double> x = gen::RandomWalk(128, rng);
  std::vector<double> scaled = x;
  for (double& v : scaled) v = 5.0 * v - 100.0;
  EXPECT_EQ(SaxWord(x, 8, 6), SaxWord(scaled, 8, 6));
}

TEST(SaxWordTest, StringRendering) {
  const std::vector<uint8_t> word = {0, 1, 2, 3};
  EXPECT_EQ(SaxWordToString(word), "abcd");
}

TEST(SaxMinDistTest, ZeroForIdenticalAndAdjacentWords) {
  const std::vector<uint8_t> a = {0, 1, 2, 3};
  const std::vector<uint8_t> b = {1, 2, 3, 3};  // All adjacent or equal.
  EXPECT_DOUBLE_EQ(SaxMinDistSquared(a, a, 64, 4), 0.0);
  EXPECT_DOUBLE_EQ(SaxMinDistSquared(a, b, 64, 4), 0.0);
}

TEST(SaxMinDistTest, SymmetricInWords) {
  const std::vector<uint8_t> a = {0, 3, 1, 2};
  const std::vector<uint8_t> b = {3, 0, 2, 0};
  EXPECT_DOUBLE_EQ(SaxMinDistSquared(a, b, 32, 4),
                   SaxMinDistSquared(b, a, 32, 4));
}

TEST(SaxMinDistTest, LowerBoundsZNormalizedEuclidean) {
  // The load-bearing SAX property, over many random pairs, word lengths,
  // and alphabets.
  Rng rng(222);
  for (int round = 0; round < 60; ++round) {
    const size_t n = 32 + rng.UniformInt(100);
    const std::vector<double> x = gen::RandomWalk(n, rng);
    const std::vector<double> y = gen::RandomWalk(n, rng);
    const double ed =
        EuclideanDistance(ZNormalized(x), ZNormalized(y));
    for (size_t w : {4u, 8u, 16u}) {
      for (size_t a : {3u, 5u, 8u}) {
        const double mindist = SaxMinDistSquared(SaxWord(x, w, a),
                                                 SaxWord(y, w, a), n, a);
        EXPECT_LE(mindist, ed + 1e-9)
            << "n=" << n << " w=" << w << " a=" << a;
      }
    }
  }
}

TEST(SaxMinDistTest, TighterWithBiggerAlphabet) {
  // Averaged over pairs, a finer alphabet cannot loosen the bound by
  // much; check the aggregate trend.
  Rng rng(223);
  double coarse_total = 0.0;
  double fine_total = 0.0;
  for (int round = 0; round < 40; ++round) {
    const std::vector<double> x = gen::RandomWalk(64, rng);
    const std::vector<double> y = gen::RandomWalk(64, rng);
    coarse_total +=
        SaxMinDistSquared(SaxWord(x, 8, 3), SaxWord(y, 8, 3), 64, 3);
    fine_total +=
        SaxMinDistSquared(SaxWord(x, 8, 10), SaxWord(y, 8, 10), 64, 10);
  }
  EXPECT_GE(fine_total, coarse_total);
}

}  // namespace
}  // namespace warp
