#include <fstream>

namespace warp {
namespace serve {
void* Leak(const char* path) {
  return fopen(path, "wb");
}
}  // namespace serve
}  // namespace warp
