#include "warp/serve/protocol.h"

#include <cmath>

#include "warp/common/stopwatch.h"
#include "warp/obs/histogram.h"
#include "warp/obs/json_writer.h"
#include "warp/serve/wire.h"

namespace warp {
namespace serve {

namespace {

bool ReadSizeT(const JsonValue& object, const std::string& key,
               size_t* value, std::string* error) {
  const JsonValue* member = object.Find(key);
  if (member == nullptr) return true;  // Optional; keep default.
  if (!member->is_number() || member->AsNumber() < 0 ||
      std::floor(member->AsNumber()) != member->AsNumber()) {
    *error = "'" + key + "' must be a non-negative integer";
    return false;
  }
  *value = static_cast<size_t>(member->AsNumber());
  return true;
}

}  // namespace

bool ParseRequestLine(const std::string& line, ParsedLine* out,
                      std::string* error) {
  JsonValue root;
  if (!ParseJson(line, &root, error)) {
    *error = "malformed JSON: " + *error;
    return false;
  }
  if (!root.is_object()) {
    *error = "request must be a JSON object";
    return false;
  }
  out->id = static_cast<int64_t>(root.NumberOr("id", 0.0));
  out->request.id = out->id;

  const std::string op = root.StringOr("op", "");
  if (op.empty()) {
    *error = "request missing 'op'";
    return false;
  }

  // Control operations.
  if (op == "ping") { out->control = ControlOp::kPing; return true; }
  if (op == "stats") { out->control = ControlOp::kStats; return true; }
  if (op == "metrics") { out->control = ControlOp::kMetrics; return true; }
  if (op == "slowlog") { out->control = ControlOp::kSlowlog; return true; }
  if (op == "shutdown") { out->control = ControlOp::kShutdown; return true; }
  if (op == "save_snapshot") {
    out->control = ControlOp::kSaveSnapshot;
    out->dataset = root.StringOr("dataset", "");
    out->path = root.StringOr("path", "");
    if (out->dataset.empty()) {
      *error = "'save_snapshot' requires 'dataset'";
      return false;
    }
    if (out->path.empty()) {
      *error = "'save_snapshot' requires 'path'";
      return false;
    }
    return true;
  }
  if (op == "load_snapshot") {
    out->control = ControlOp::kLoadSnapshot;
    out->dataset = root.StringOr("dataset", "");  // Optional rename.
    out->path = root.StringOr("path", "");
    if (out->path.empty()) {
      *error = "'load_snapshot' requires 'path'";
      return false;
    }
    return true;
  }
  if (op == "info" || op == "load") {
    out->control = op == "info" ? ControlOp::kInfo : ControlOp::kLoad;
    out->dataset = root.StringOr("dataset", "");
    if (out->dataset.empty()) {
      *error = "'" + op + "' requires 'dataset'";
      return false;
    }
    if (op == "load") {
      out->path = root.StringOr("path", "");
      if (out->path.empty()) {
        *error = "'load' requires 'path'";
        return false;
      }
      if (const JsonValue* bands = root.Find("bands")) {
        if (!bands->is_array()) {
          *error = "'bands' must be an array of window fractions";
          return false;
        }
        for (const JsonValue& band : bands->AsArray()) {
          if (!band.is_number() || band.AsNumber() < 0) {
            *error = "'bands' entries must be non-negative numbers";
            return false;
          }
          out->band_fractions.push_back(band.AsNumber());
        }
      }
    }
    return true;
  }

  // Engine queries.
  out->control = ControlOp::kNone;
  ServeRequest& request = out->request;
  if (!ParseQueryOp(op, &request.op)) {
    *error = "unknown op: '" + op + "'";
    return false;
  }
  request.dataset = root.StringOr("dataset", "");
  if (request.dataset.empty()) {
    *error = "query missing 'dataset'";
    return false;
  }
  request.measure = root.StringOr("measure", "cdtw");

  MeasureParams& params = request.params;
  params.window_fraction = root.NumberOr("window", params.window_fraction);
  if (const JsonValue* band = root.Find("band")) {
    if (!band->is_number() || band->AsNumber() < 0) {
      *error = "'band' must be a non-negative cell count";
      return false;
    }
    params.band_cells = static_cast<long>(band->AsNumber());
  }
  const std::string cost = root.StringOr("cost", "squared");
  if (cost == "squared") {
    params.cost = CostKind::kSquared;
  } else if (cost == "absolute") {
    params.cost = CostKind::kAbsolute;
  } else {
    *error = "unknown cost: '" + cost + "'";
    return false;
  }
  params.wdtw_g = root.NumberOr("g", params.wdtw_g);
  params.wdtw_full_band = root.BoolOr("full_band", params.wdtw_full_band);
  params.adtw_omega = root.NumberOr("omega", params.adtw_omega);
  params.adtw_ratio = root.NumberOr("ratio", params.adtw_ratio);
  params.lcss_epsilon = root.NumberOr("epsilon", params.lcss_epsilon);
  params.erp_gap = root.NumberOr("gap", params.erp_gap);
  params.msm_cost = root.NumberOr("c", params.msm_cost);
  if (!ReadSizeT(root, "radius", &params.fastdtw_radius, error)) return false;

  if (!ReadSizeT(root, "k", &request.k, error)) return false;
  if (!ReadSizeT(root, "index", &request.index, error)) return false;
  request.threshold = root.NumberOr("threshold", request.threshold);
  request.deadline_ms = root.NumberOr("deadline_ms", request.deadline_ms);
  request.znormalize = root.BoolOr("znorm", request.znormalize);
  request.trace = root.BoolOr("trace", request.trace);

  // Cluster scatter stamp: a router targets one worker's shard at one
  // dataset epoch; the worker refuses anything else (query_engine.cc).
  if (const JsonValue* shard = root.Find("shard")) {
    if (!shard->is_number() || shard->AsNumber() < 0 ||
        std::floor(shard->AsNumber()) != shard->AsNumber()) {
      *error = "'shard' must be a non-negative integer";
      return false;
    }
    request.shard_filter = static_cast<long>(shard->AsNumber());
  }
  size_t epoch = 0;
  if (!ReadSizeT(root, "shard_epoch", &epoch, error)) return false;
  request.require_epoch = epoch;

  const JsonValue* query = root.Find("query");
  if (query == nullptr || !query->is_array()) {
    *error = "query ops require a 'query' array of numbers";
    return false;
  }
  request.query.reserve(query->AsArray().size());
  for (const JsonValue& v : query->AsArray()) {
    if (!v.is_number()) {
      *error = "'query' entries must be numbers";
      return false;
    }
    request.query.push_back(v.AsNumber());
  }
  return true;
}

std::string FormatResponse(const ServeResponse& response) {
  // Serialization is the one stage that cannot time itself from outside
  // (the caller would have to re-serialize to measure it), so the clock
  // runs here: body first, then — only when the request asked for a
  // trace — the trace object goes last with the just-measured value.
  const Stopwatch serialize_watch;
  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("id").Int(response.id)
      .Key("ok").Bool(response.ok);
  if (!response.ok) {
    writer.Key("error").String(response.error).EndObject();
    return writer.TakeOutput();
  }
  writer.Key("op").String(QueryOpName(response.op));
  writer.Key("partial").Bool(response.partial);
  writer.Key("scanned").Uint(response.scanned);
  writer.Key("total").Uint(response.total);
  switch (response.op) {
    case QueryOp::k1Nn:
    case QueryOp::kKnn:
    case QueryOp::kRange:
      writer.Key("neighbors").BeginArray();
      for (const Neighbor& n : response.neighbors) {
        writer.BeginObject()
            .Key("index").Uint(n.index)
            .Key("label").Int(n.label)
            .Key("distance").Double(n.distance)
            .EndObject();
      }
      writer.EndArray();
      break;
    case QueryOp::kDist:
      writer.Key("distance").Double(response.distance);
      break;
    case QueryOp::kSubsequence:
      writer.Key("position").Uint(response.position);
      writer.Key("distance").Double(response.distance);
      break;
  }
  if (!response.shards_missing.empty()) {
    // Cluster degradation marker; absent from single-process servers,
    // so the pre-cluster response shape (and its goldens) is unchanged.
    writer.Key("shards_missing").BeginArray();
    for (const size_t shard : response.shards_missing) writer.Uint(shard);
    writer.EndArray();
  }
  const double serialize_us = serialize_watch.ElapsedMicros();
  WARP_HISTOGRAM_RECORD_US(obs::Histogram::kServeStageSerialize,
                           serialize_us);
  if (response.trace.requested) {
    // Wall-clock echo; never part of goldens or the cache key. `cells`
    // is the one deterministic member (DP work, 0 on cache hits).
    const StageTrace& t = response.trace;
    writer.Key("trace").BeginObject()
        .Key("cached").Bool(t.from_cache)
        .Key("parse_us").Double(t.parse_us)
        .Key("cache_us").Double(t.cache_us)
        .Key("queue_us").Double(t.queue_us)
        .Key("engine_us").Double(t.engine_us)
        .Key("merge_us").Double(t.merge_us)
        .Key("serialize_us").Double(serialize_us)
        .Key("cells").Uint(t.cells)
        .EndObject();
  }
  writer.EndObject();
  return writer.TakeOutput();
}

std::string FormatErrorLine(int64_t id, const std::string& error) {
  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("id").Int(id)
      .Key("ok").Bool(false)
      .Key("error").String(error)
      .EndObject();
  return writer.TakeOutput();
}

std::string FormatRequest(const ServeRequest& request) {
  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("id").Int(request.id)
      .Key("op").String(QueryOpName(request.op))
      .Key("dataset").String(request.dataset)
      .Key("measure").String(request.measure);
  const MeasureParams& params = request.params;
  writer.Key("window").Double(params.window_fraction);
  if (params.band_cells >= 0) {
    writer.Key("band").Uint(static_cast<uint64_t>(params.band_cells));
  }
  writer.Key("cost").String(
      params.cost == CostKind::kSquared ? "squared" : "absolute");
  writer.Key("g").Double(params.wdtw_g);
  writer.Key("full_band").Bool(params.wdtw_full_band);
  writer.Key("omega").Double(params.adtw_omega);
  writer.Key("ratio").Double(params.adtw_ratio);
  writer.Key("epsilon").Double(params.lcss_epsilon);
  writer.Key("gap").Double(params.erp_gap);
  writer.Key("c").Double(params.msm_cost);
  writer.Key("radius").Uint(params.fastdtw_radius);
  writer.Key("k").Uint(request.k);
  writer.Key("index").Uint(request.index);
  writer.Key("threshold").Double(request.threshold);
  writer.Key("deadline_ms").Double(request.deadline_ms);
  writer.Key("znorm").Bool(request.znormalize);
  writer.Key("trace").Bool(request.trace);
  if (request.shard_filter >= 0) {
    writer.Key("shard").Uint(static_cast<uint64_t>(request.shard_filter));
  }
  if (request.require_epoch != 0) {
    writer.Key("shard_epoch").Uint(request.require_epoch);
  }
  writer.Key("query").BeginArray();
  for (const double value : request.query) writer.Double(value);
  writer.EndArray().EndObject();
  return writer.TakeOutput();
}

bool ParseResponseLine(const std::string& line, ServeResponse* out,
                       std::string* error) {
  JsonValue root;
  if (!ParseJson(line, &root, error)) {
    *error = "malformed response JSON: " + *error;
    return false;
  }
  if (!root.is_object()) {
    *error = "response must be a JSON object";
    return false;
  }
  out->id = static_cast<int64_t>(root.NumberOr("id", 0.0));
  out->ok = root.BoolOr("ok", false);
  if (!out->ok) {
    out->error = root.StringOr("error", "unknown error");
    return true;
  }
  const std::string op = root.StringOr("op", "");
  if (!ParseQueryOp(op, &out->op)) {
    *error = "response has unknown op: '" + op + "'";
    return false;
  }
  out->partial = root.BoolOr("partial", false);
  out->scanned = static_cast<uint64_t>(root.NumberOr("scanned", 0.0));
  out->total = static_cast<uint64_t>(root.NumberOr("total", 0.0));
  if (const JsonValue* neighbors = root.Find("neighbors")) {
    if (!neighbors->is_array()) {
      *error = "'neighbors' must be an array";
      return false;
    }
    out->neighbors.reserve(neighbors->AsArray().size());
    for (const JsonValue& entry : neighbors->AsArray()) {
      if (!entry.is_object()) {
        *error = "'neighbors' entries must be objects";
        return false;
      }
      Neighbor neighbor;
      neighbor.index = static_cast<size_t>(entry.NumberOr("index", 0.0));
      neighbor.label = static_cast<int>(entry.NumberOr("label", 0.0));
      neighbor.distance = entry.NumberOr("distance", 0.0);
      out->neighbors.push_back(neighbor);
    }
  }
  out->distance = root.NumberOr("distance", 0.0);
  out->position = static_cast<size_t>(root.NumberOr("position", 0.0));
  if (const JsonValue* missing = root.Find("shards_missing")) {
    if (!missing->is_array()) {
      *error = "'shards_missing' must be an array";
      return false;
    }
    for (const JsonValue& shard : missing->AsArray()) {
      if (!shard.is_number()) {
        *error = "'shards_missing' entries must be numbers";
        return false;
      }
      out->shards_missing.push_back(static_cast<size_t>(shard.AsNumber()));
    }
  }
  return true;
}

}  // namespace serve
}  // namespace warp
