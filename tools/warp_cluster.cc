// warp_cluster — multi-process sharded serving launcher.
//
//   warp_cluster --shards=3 --snapshot-dir=snapshots --port=7070
//
// Spawns one `warp_serve --worker` process per shard (supervised:
// liveness pings, bounded-backoff restarts re-fed from the snapshot
// directory), then serves the ordinary JSON-lines protocol on the
// router port. Answers are bitwise-identical to a single
// `warp_serve --shards=N` process; while a worker is down, scan queries
// degrade to partial:true + shards_missing. Protocol and topology:
// docs/SERVING.md, "Multi-process cluster". Flags: tools/cluster_main.h
// (shared with `warp_cli cluster`).

#include <cstdio>
#include <cstring>

#include "cluster_main.h"

int main(int argc, char** argv) {
  if (argc > 1 && (std::strcmp(argv[1], "help") == 0 ||
                   std::strcmp(argv[1], "--help") == 0)) {
    std::fputs(
        "warp_cluster — multi-process sharded DTW serving (docs/SERVING.md)\n"
        "  --shards=N                 worker processes (default 1)\n"
        "  --snapshot-dir=PATH        *.wsnap dir loaded by every worker and\n"
        "                             re-fed on restart\n"
        "  --port=N                   router port (default 0 = auto)\n"
        "  --threads=N                scan threads per worker (default 1)\n"
        "  --cache=N                  result-cache entries per worker\n"
        "  --max-queue-depth=N        per-worker admission gate (default 1024)\n"
        "  --worker-bin=PATH          warp_serve binary (default: sibling)\n"
        "  --restart-backoff-ms=N     first restart delay (default 200)\n"
        "  --restart-backoff-max-ms=N backoff ceiling (default 5000)\n"
        "  --ping-interval-ms=N       liveness ping cadence; 0 disables\n",
        stdout);
    return 0;
  }
  const warp::tools::ToolFlags flags =
      warp::tools::ParseToolFlags(argc, argv, 1);
  return warp::tools::ClusterToolMain(
      flags, warp::tools::SiblingWorkerBinary(argv[0]));
}
