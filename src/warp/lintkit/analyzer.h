// The analyzer: file discovery, rule execution, pragma suppression, and
// assembly of the warp-lint-v1 document.
//
// RunAnalyzer walks the five source roots (src, tools, tests, bench,
// examples) under config.root, lexes every .cc/.h/.cpp file, runs the
// enabled token rules per file and the project rules over the whole
// tree, then applies the allow() suppression pragmas collected by the
// lexer (syntax in docs/STATIC_ANALYSIS.md).
// Directories named "lint_fixtures" are skipped: fixture corpora are
// deliberately-broken mini-repos that only the lint unit test analyzes,
// by pointing a second analyzer run at the fixture directory as root.
//
// Pragma hygiene is itself a rule ("pragma-hygiene"): malformed pragmas,
// pragmas naming unknown rules, pragmas with no reason ("unexplained"),
// and pragmas that suppress nothing are all findings — an allow() can
// never rot silently.

#ifndef WARP_LINTKIT_ANALYZER_H_
#define WARP_LINTKIT_ANALYZER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "warp/lintkit/diagnostics.h"

namespace warp {
namespace lintkit {

struct AnalyzerConfig {
  std::string root = ".";  // Repository root.
  std::vector<std::string> disabled_rules;
};

// Identity of every rule the analyzer knows (token + project +
// pragma-hygiene), in canonical order.
const std::vector<RuleStatus>& AllRules();
bool IsKnownRule(const std::string& id);

struct AnalyzerResult {
  std::vector<Finding> findings;  // Post-suppression, sorted.
  std::vector<SuppressedFinding> suppressed;
  std::vector<std::string> errors;  // Configuration / IO failures.
  size_t files_scanned = 0;

  bool clean() const { return findings.empty() && errors.empty(); }
};

AnalyzerResult RunAnalyzer(const AnalyzerConfig& config);

// The warp-lint-v1 JSON document for one run.
std::string ResultToJson(const AnalyzerConfig& config,
                         const AnalyzerResult& result);

}  // namespace lintkit
}  // namespace warp

#endif  // WARP_LINTKIT_ANALYZER_H_
