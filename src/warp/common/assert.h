// Invariant-checking macros used throughout the warp library.
//
// WARP_CHECK is always on: it guards API contracts (caller-visible
// preconditions) and aborts with a diagnostic on violation. WARP_DCHECK is
// compiled out in release builds and guards internal invariants that are
// too hot to verify in production (e.g. per-cell conditions inside the DTW
// inner loop).

#ifndef WARP_COMMON_ASSERT_H_
#define WARP_COMMON_ASSERT_H_

#include <cstdio>
#include <cstdlib>

namespace warp {
namespace internal_assert {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition,
                                     const char* message) {
  std::fprintf(stderr, "warp: CHECK failed at %s:%d: %s%s%s\n", file, line,
               condition, message[0] != '\0' ? " — " : "", message);
  std::abort();
}

}  // namespace internal_assert
}  // namespace warp

#define WARP_CHECK(condition)                                             \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::warp::internal_assert::CheckFailed(__FILE__, __LINE__,            \
                                           #condition, "");               \
    }                                                                     \
  } while (false)

#define WARP_CHECK_MSG(condition, message)                                \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::warp::internal_assert::CheckFailed(__FILE__, __LINE__,            \
                                           #condition, message);          \
    }                                                                     \
  } while (false)

#ifdef NDEBUG
#define WARP_DCHECK(condition) \
  do {                         \
  } while (false)
#else
#define WARP_DCHECK(condition) WARP_CHECK(condition)
#endif

#endif  // WARP_COMMON_ASSERT_H_
