// Monotonic wall-clock timing utilities for the benchmark harnesses.

#ifndef WARP_COMMON_STOPWATCH_H_
#define WARP_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace warp {

// A simple monotonic stopwatch. Construction starts it.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Summary of a repeated timing measurement, all in seconds. Per-run
// samples are retained so order statistics (median, p95, p99) survive —
// means alone hide the scheduler-noise tail that dominates close
// comparisons and serving-latency SLOs.
struct TimingSummary {
  int repetitions = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double total = 0.0;
  std::vector<double> samples;  // One entry per repetition, run order.

  double mean_millis() const { return mean * 1e3; }
  double min_millis() const { return min * 1e3; }
  double median_millis() const { return median * 1e3; }
  double p95_millis() const { return p95 * 1e3; }
  double p99_millis() const { return p99 * 1e3; }
  std::string ToString() const;
};

// Builds a TimingSummary (including median/p95/p99) from per-run samples.
TimingSummary SummarizeSamples(const std::vector<double>& samples);

// Summary for a measurement that timed `ops` operations in one aggregate
// run of `total_seconds` (e.g. an all-pairs sweep): per-op mean with no
// spread information. `ops` must be positive.
TimingSummary PerOpSummary(double total_seconds, int64_t ops);

// Runs `fn` `repetitions` times (after `warmup` untimed runs) and reports
// per-run statistics. `fn` must be self-contained; anything it returns is
// discarded, so callers should accumulate a side effect (e.g. a checksum)
// themselves if they need to defeat dead-code elimination.
TimingSummary MeasureRepeated(const std::function<void()>& fn,
                              int repetitions, int warmup = 1);

// Prevents the compiler from optimizing away a computed value.
inline void DoNotOptimize(double value) {
  asm volatile("" : : "g"(value) : "memory");
}

}  // namespace warp

#endif  // WARP_COMMON_STOPWATCH_H_
