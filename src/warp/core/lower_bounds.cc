#include "warp/core/lower_bounds.h"

#include <algorithm>

#include "warp/common/assert.h"
#include "warp/common/metrics.h"
#include "warp/simd/dispatch.h"
#include "warp/simd/vdouble.h"

namespace warp {

double LbKimFl(std::span<const double> x, std::span<const double> y,
               CostKind cost) {
  WARP_CHECK(!x.empty() && !y.empty());
  WARP_COUNT(obs::Counter::kLbKimCalls);
  return WithCost(cost, [&](auto c) {
    // On a 1x1 matrix the first and last aligned cells coincide; counting
    // the cell twice would overshoot cDTW and break pruning soundness
    // (caught by check::CheckBoundCascade on length-1 inputs).
    if (x.size() == 1 && y.size() == 1) return c(x.front(), y.front());
    return c(x.front(), y.front()) + c(x.back(), y.back());
  });
}

double LbKeogh(const Envelope& query_envelope,
               std::span<const double> candidate, CostKind cost,
               double abandon_above) {
  WARP_CHECK_MSG(query_envelope.upper.size() == candidate.size(),
                 "envelope and candidate lengths must match");
  WARP_CHECK_MSG(query_envelope.lower.size() == query_envelope.upper.size(),
                 "envelope upper/lower lengths must match");
  WARP_COUNT(obs::Counter::kLbKeoghCalls);
  return WithCost(cost, [&](auto c) {
    const double* values = candidate.data();
    const double* upper = query_envelope.upper.data();
    const double* lower = query_envelope.lower.data();
    const size_t n = candidate.size();
    double sum = 0.0;
    size_t i = 0;
    // One scalar step, shared by the in-block excursion sweep and the
    // tail so every sum update keeps its immediate abandon check.
    const auto step = [&](size_t idx) {
      const double v = values[idx];
      WARP_DCHECK(lower[idx] <= upper[idx]);
      if (v > upper[idx]) {
        sum += c(v, upper[idx]);
      } else if (v < lower[idx]) {
        sum += c(v, lower[idx]);
      }
      return sum > abandon_above;
    };
    // Vector skip: a block whose elements all sit inside the tube adds
    // nothing, so one AnyOutside test replaces kLanes element branches.
    // Skipping its abandon checks is exact — sum only changes at
    // excursion elements, and those always run the scalar step (with its
    // check), so sum <= abandon_above holds on entry to any clean block.
    // The >= 0 guard keeps the degenerate bound-below-zero case (scalar
    // returns at element 0) on the reference path.
    if (simd::SimdActive() && abandon_above >= 0.0) {
      // A candidate that keeps leaving the tube pays the vector probe on
      // every block and still does all the scalar work, so a run of
      // consecutive dirty blocks drops the rest of the series to the
      // plain scalar loop (a clean block resets the run). The probe only
      // affects which loop runs, never a value, so this stays bitwise.
      constexpr int kDirtyStreakBail = 8;
      int dirty_streak = 0;
      while (i + simd::kLanes <= n && dirty_streak < kDirtyStreakBail) {
        const simd::vdouble v = simd::vdouble::Load(values + i);
        const simd::vdouble lo = simd::vdouble::Load(lower + i);
        const simd::vdouble hi = simd::vdouble::Load(upper + i);
        if (!AnyOutside(v, lo, hi)) {
          WARP_COUNT(obs::Counter::kSimdBlocks);
          dirty_streak = 0;
          i += simd::kLanes;
          continue;
        }
        ++dirty_streak;
        const size_t end = i + simd::kLanes;
        for (; i < end; ++i) {
          if (step(i)) return sum;
        }
      }
      WARP_COUNT_ADD(obs::Counter::kSimdScalarTail, n - i);
    }
    for (; i < n; ++i) {
      if (step(i)) return sum;
    }
    return sum;
  });
}

double LbKeoghSymmetric(const Envelope& query_envelope,
                        std::span<const double> query,
                        const Envelope& candidate_envelope,
                        std::span<const double> candidate, CostKind cost) {
  return std::max(LbKeogh(query_envelope, candidate, cost),
                  LbKeogh(candidate_envelope, query, cost));
}

double LbImproved(const Envelope& query_envelope,
                  std::span<const double> query,
                  std::span<const double> candidate, size_t band,
                  CostKind cost) {
  WARP_CHECK(query.size() == candidate.size());
  WARP_COUNT(obs::Counter::kLbImprovedCalls);
  const double first = LbKeogh(query_envelope, candidate, cost);

  // Projection of the candidate onto the query's envelope tube.
  std::vector<double> projection(candidate.size());
  for (size_t i = 0; i < candidate.size(); ++i) {
    projection[i] = std::clamp(candidate[i], query_envelope.lower[i],
                               query_envelope.upper[i]);
  }
  const Envelope projection_envelope = ComputeEnvelope(projection, band);
  const double second = LbKeogh(projection_envelope, query, cost);
  // Both passes are sums of non-negative excursions, which is exactly why
  // LB_Improved >= LB_Keogh while remaining a valid lower bound.
  WARP_DCHECK(first >= 0.0 && second >= 0.0);
  return first + second;
}

}  // namespace warp
