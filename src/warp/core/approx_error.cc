#include "warp/core/approx_error.h"

#include <limits>

#include "warp/common/assert.h"

namespace warp {

double ApproxErrorPercent(double approx, double exact) {
  WARP_CHECK(exact >= 0.0);
  if (exact == 0.0) {
    return approx == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return (approx - exact) / exact * 100.0;
}

}  // namespace warp
