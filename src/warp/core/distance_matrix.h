// Pairwise distance matrices.
//
// Every all-pairs experiment in the paper (Figs. 1, 4; Table 2) reduces to
// filling a symmetric matrix with some measure. The measure is a
// std::function so exact DTW, cDTW, FastDTW, and Euclidean plug in
// uniformly; hierarchical clustering consumes the result.

#ifndef WARP_CORE_DISTANCE_MATRIX_H_
#define WARP_CORE_DISTANCE_MATRIX_H_

#include <functional>
#include <span>
#include <string>
#include <vector>

namespace warp {

using SeriesMeasure =
    std::function<double(std::span<const double>, std::span<const double>)>;

// Symmetric n x n matrix with zero diagonal.
class DistanceMatrix {
 public:
  explicit DistanceMatrix(size_t n);

  size_t size() const { return n_; }

  double at(size_t i, size_t j) const;
  void set(size_t i, size_t j, double value);  // Sets (i,j) and (j,i).

  // Renders the upper triangle as an aligned table (Table 2 style).
  std::string ToString(std::span<const std::string> labels,
                       int precision = 3) const;

 private:
  size_t n_;
  // Condensed upper-triangle storage, row-major, excluding the diagonal.
  size_t CondensedIndex(size_t i, size_t j) const;
  std::vector<double> values_;
};

// Fills the matrix by evaluating `measure` on each unordered pair.
DistanceMatrix ComputePairwiseMatrix(
    const std::vector<std::vector<double>>& series,
    const SeriesMeasure& measure);

}  // namespace warp

#endif  // WARP_CORE_DISTANCE_MATRIX_H_
