#include "warp/obs/counters.h"

namespace warp {
void PoolTick() {
  obs::BumpSomething();
}
}  // namespace warp
