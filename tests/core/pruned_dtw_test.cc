// Differential and property tests for PrunedDTW: always exact, never
// more work than the plain kernel.

#include <gtest/gtest.h>

#include "warp/core/dtw.h"
#include "warp/gen/random_walk.h"
#include "warp/gen/warping.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace {

TEST(PrunedDtwTest, AlwaysEqualsPlainCdtw) {
  Rng rng(251);
  for (int round = 0; round < 100; ++round) {
    const size_t n = 2 + rng.UniformInt(100);
    const std::vector<double> x = ZNormalized(gen::RandomWalk(n, rng));
    const std::vector<double> y = ZNormalized(gen::RandomWalk(n, rng));
    for (size_t band : {0u, 2u, 8u, 1000u}) {
      const double plain = CdtwDistance(x, y, band);
      const double pruned = PrunedCdtwDistance(x, y, band);
      ASSERT_NEAR(pruned, plain, 1e-9)
          << "n=" << n << " band=" << band << " round=" << round;
    }
  }
}

TEST(PrunedDtwTest, NeverVisitsMoreCellsThanPlain) {
  Rng rng(252);
  for (int round = 0; round < 30; ++round) {
    const size_t n = 16 + rng.UniformInt(150);
    const std::vector<double> x = ZNormalized(gen::RandomWalk(n, rng));
    const std::vector<double> y = ZNormalized(gen::RandomWalk(n, rng));
    const size_t band = 4 + rng.UniformInt(20);
    uint64_t plain_cells = 0;
    uint64_t pruned_cells = 0;
    CdtwDistance(x, y, band, CostKind::kSquared, nullptr, &plain_cells);
    PrunedCdtwDistance(x, y, band, CostKind::kSquared, -1.0, nullptr,
                       &pruned_cells);
    EXPECT_LE(pruned_cells, plain_cells);
  }
}

TEST(PrunedDtwTest, SimilarSeriesPruneHard) {
  // When the series are near-copies the Euclidean bound is tight and
  // pruning should skip a large share of the band.
  Rng rng(253);
  const std::vector<double> x = ZNormalized(gen::RandomWalk(500, rng));
  const std::vector<double> y =
      ZNormalized(gen::ApplyRandomWarp(x, 0.02, rng));
  const size_t band = 100;  // 20% band, far wider than the 2% warp.
  uint64_t plain_cells = 0;
  uint64_t pruned_cells = 0;
  CdtwDistance(x, y, band, CostKind::kSquared, nullptr, &plain_cells);
  const double d = PrunedCdtwDistance(x, y, band, CostKind::kSquared, -1.0,
                                      nullptr, &pruned_cells);
  EXPECT_NEAR(d, CdtwDistance(x, y, band), 1e-9);
  // The loose Euclidean bound prunes a modest but real share here; the
  // dramatic savings come from tight best-so-far bounds (next test).
  EXPECT_LT(pruned_cells, plain_cells * 9 / 10)
      << pruned_cells << " vs " << plain_cells;
}

TEST(PrunedDtwTest, TighterCallerBoundPrunesMore) {
  Rng rng(254);
  const std::vector<double> x = ZNormalized(gen::RandomWalk(300, rng));
  const std::vector<double> y = ZNormalized(gen::RandomWalk(300, rng));
  const size_t band = 50;
  const double exact = CdtwDistance(x, y, band);

  uint64_t loose_cells = 0;
  uint64_t tight_cells = 0;
  PrunedCdtwDistance(x, y, band, CostKind::kSquared, -1.0, nullptr,
                     &loose_cells);
  const double with_tight = PrunedCdtwDistance(
      x, y, band, CostKind::kSquared, exact * 1.0001, nullptr, &tight_cells);
  EXPECT_NEAR(with_tight, exact, 1e-9);
  EXPECT_LE(tight_cells, loose_cells);
}

TEST(PrunedDtwTest, TooTightBoundReturnsInfinityNotGarbage) {
  Rng rng(255);
  const std::vector<double> x = ZNormalized(gen::RandomWalk(64, rng));
  const std::vector<double> y = ZNormalized(gen::RandomWalk(64, rng));
  const double exact = CdtwDistance(x, y, 8);
  const double result =
      PrunedCdtwDistance(x, y, 8, CostKind::kSquared, exact * 0.5);
  EXPECT_TRUE(std::isinf(result) || result >= exact - 1e-9);
}

TEST(PrunedDtwTest, AbsoluteCostKindWorksToo) {
  Rng rng(256);
  const std::vector<double> x = ZNormalized(gen::RandomWalk(80, rng));
  const std::vector<double> y = ZNormalized(gen::RandomWalk(80, rng));
  EXPECT_NEAR(PrunedCdtwDistance(x, y, 10, CostKind::kAbsolute),
              CdtwDistance(x, y, 10, CostKind::kAbsolute), 1e-9);
}

}  // namespace
}  // namespace warp
