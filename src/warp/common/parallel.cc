#include "warp/common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <utility>

#include "warp/common/stopwatch.h"
#include "warp/common/metrics.h"

namespace warp {

size_t DefaultThreadCount() {
  if (const char* env = std::getenv("WARP_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && value > 0) return static_cast<size_t>(value);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t ResolveThreadCount(size_t requested) {
  return requested == 0 ? DefaultThreadCount() : requested;
}

ThreadPool::ThreadPool(size_t threads) {
  const size_t count = std::max<size_t>(1, ResolveThreadCount(threads));
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  WARP_COUNT(obs::Counter::kPoolTasks);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_exception_ != nullptr) {
    std::exception_ptr exception = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(exception);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Idle time between tasks, attributed per worker thread. Waits that
      // end in shutdown are not counted — only waits a task resolves, so
      // the total reflects queue starvation during real work. Clock reads
      // cannot be optimized out, so the whole probe is compiled away when
      // profiling is off (WARP_COUNT alone would not remove the now()).
#if WARP_PROFILE_ENABLED
      Stopwatch wait_watch;
#endif
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run.
#if WARP_PROFILE_ENABLED
      WARP_COUNT_ADD(obs::Counter::kPoolQueueWaitNanos,
                     wait_watch.ElapsedSeconds() * 1e9);
#endif
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (first_exception_ == nullptr) {
        first_exception_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const ChunkFn& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const size_t num_chunks = ChunkCount(begin, end, grain);
  const size_t workers = pool == nullptr ? 1 : pool->size();
  WARP_COUNT(obs::Counter::kPoolParallelFors);
  WARP_COUNT_ADD(obs::Counter::kPoolChunks, num_chunks);

  auto run_chunk = [&](size_t chunk, size_t worker) {
    const size_t chunk_begin = begin + chunk * grain;
    const size_t chunk_end = std::min(end, chunk_begin + grain);
    fn(chunk_begin, chunk_end, worker);
  };

  if (workers <= 1 || num_chunks <= 1) {
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) run_chunk(chunk, 0);
    return;
  }

  // Dynamic chunk claiming: fixed chunk boundaries (determinism) with
  // work stealing by counter (load balance). Once any chunk throws, the
  // remaining chunks are abandoned; the pool rethrows from Wait().
  auto next = std::make_shared<std::atomic<size_t>>(0);
  auto failed = std::make_shared<std::atomic<bool>>(false);
  const size_t tasks = std::min(workers, num_chunks);
  for (size_t worker = 0; worker < tasks; ++worker) {
    pool->Submit([next, failed, num_chunks, worker, &run_chunk] {
      for (;;) {
        const size_t chunk = next->fetch_add(1, std::memory_order_relaxed);
        if (chunk >= num_chunks || failed->load(std::memory_order_relaxed)) {
          return;
        }
        try {
          run_chunk(chunk, worker);
        } catch (...) {
          failed->store(true, std::memory_order_relaxed);
          throw;  // Captured by the pool, rethrown from Wait().
        }
      }
    });
  }
  pool->Wait();
}

}  // namespace warp
