#include "warp/lintkit/token_rules.h"

#include <string>
#include <string_view>

#include "warp/lintkit/rules_util.h"

namespace warp {
namespace lintkit {

namespace {

void Add(std::vector<Finding>* findings, const char* rule,
         const LexedFile& file, size_t line, size_t col,
         std::string message) {
  Finding finding;
  finding.rule = rule;
  finding.file = file.path;
  finding.line = line;
  finding.col = col;
  finding.message = std::move(message);
  findings->push_back(std::move(finding));
}

// --- raw-assert -------------------------------------------------------------
// Invariants go through WARP_CHECK/WARP_DCHECK (warp/common/assert.h);
// a raw assert() compiles out under NDEBUG and bypasses the project's
// failure reporting. static_assert and internal_assert are distinct
// identifier tokens, so they never fire here.
void RawAssertRule(const LexedFile& file, std::vector<Finding>* findings) {
  for (size_t i = 0; i < file.tokens.size(); ++i) {
    if (IsCallOf(file.tokens, i, "assert")) {
      Add(findings, "raw-assert", file, file.tokens[i].line,
          file.tokens[i].col,
          "raw assert() — use WARP_CHECK/WARP_DCHECK (warp/common/assert.h)");
    }
  }
}

// --- platform-rng -----------------------------------------------------------
// All randomness in library code flows through warp::Rng with explicit
// seeds (CONTRIBUTING.md): platform RNGs have unspecified stream
// ordering across standard libraries, which breaks bitwise repro.
void PlatformRngRule(const LexedFile& file, std::vector<Finding>* findings) {
  if (!StartsWith(file.path, "src/")) return;
  for (size_t i = 0; i < file.tokens.size(); ++i) {
    const Token& token = file.tokens[i];
    if (token.kind != TokenKind::kIdentifier) continue;
    const bool banned_type = token.text == "mt19937" ||
                             token.text == "mt19937_64" ||
                             token.text == "random_device";
    const bool banned_call =
        (token.text == "rand" || token.text == "srand") &&
        IsCallOf(file.tokens, i, token.text);
    if (banned_type || banned_call) {
      Add(findings, "platform-rng", file, token.line, token.col,
          "platform RNG '" + token.text +
              "' in src/ — all randomness must flow through warp::Rng");
    }
  }
}

// --- chrono-containment -----------------------------------------------------
// Timing flows through warp::Stopwatch so the observability layer sees
// it; only the Stopwatch implementation and the obs/ subsystem may touch
// the clock directly.
void ChronoRule(const LexedFile& file, std::vector<Finding>* findings) {
  if (!StartsWith(file.path, "src/")) return;
  if (StartsWith(file.path, "src/warp/common/stopwatch") ||
      StartsWith(file.path, "src/warp/obs/")) {
    return;
  }
  for (const IncludeDirective& include : file.includes) {
    if (include.path == "chrono") {
      Add(findings, "chrono-containment", file, include.line, 1,
          "<chrono> included in src/ — time through warp::Stopwatch "
          "(warp/common/stopwatch.h)");
    }
  }
  for (const Token& token : file.tokens) {
    if (token.kind == TokenKind::kIdentifier && token.text == "chrono") {
      Add(findings, "chrono-containment", file, token.line, token.col,
          "std::chrono used in src/ — time through warp::Stopwatch "
          "(warp/common/stopwatch.h)");
    }
  }
}

// --- dp-engine-only ---------------------------------------------------------
// A `std::vector<double> prev(` declaration in src/warp/core/ is the
// telltale of a hand-rolled two-row DP loop; all banded/two-row DP
// belongs in dp::TwoRowEngine (DESIGN.md "One banded-DP engine").
void DpEngineRule(const LexedFile& file, std::vector<Finding>* findings) {
  if (!StartsWith(file.path, "src/warp/core/")) return;
  if (file.path == "src/warp/core/dp_engine.h") return;
  const std::vector<Token>& tokens = file.tokens;
  static constexpr std::string_view kShape[] = {"std", "::", "vector", "<",
                                                "double", ">", "prev", "("};
  constexpr size_t kLen = sizeof(kShape) / sizeof(kShape[0]);
  if (tokens.size() < kLen) return;
  for (size_t i = 0; i + kLen <= tokens.size(); ++i) {
    bool match = true;
    for (size_t j = 0; j < kLen; ++j) {
      if (tokens[i + j].text != kShape[j]) {
        match = false;
        break;
      }
    }
    if (match) {
      Add(findings, "dp-engine-only", file, tokens[i].line, tokens[i].col,
          "hand-rolled two-row DP loop in src/warp/core/ — instantiate "
          "dp::TwoRowEngine (warp/core/dp_engine.h) instead");
    }
  }
}

// --- socket-containment -----------------------------------------------------
// The serve subsystem's entire syscall surface lives behind TcpConn /
// TcpListener (warp/serve/net.h): loopback-only binding, line-size cap,
// EINTR handling. Raw socket calls anywhere else bypass all three.
void SocketRule(const LexedFile& file, std::vector<Finding>* findings) {
  if (StartsWith(file.path, "src/warp/serve/net.")) return;
  static constexpr std::string_view kCalls[] = {
      "socket",  "bind",       "listen",      "accept",      "accept4",
      "connect", "recv",       "send",        "sendto",      "recvfrom",
      "setsockopt", "getsockname", "shutdown"};
  for (const IncludeDirective& include : file.includes) {
    if (include.path == "sys/socket.h" || include.path == "arpa/inet.h" ||
        StartsWith(include.path, "netinet/")) {
      Add(findings, "socket-containment", file, include.line, 1,
          "socket header <" + include.path +
              "> outside src/warp/serve/net.* — go through "
              "TcpConn/TcpListener (warp/serve/net.h)");
    }
  }
  for (size_t i = 0; i < file.tokens.size(); ++i) {
    const Token& token = file.tokens[i];
    if (token.kind != TokenKind::kIdentifier) continue;
    for (const std::string_view call : kCalls) {
      if (token.text == call && IsCallOf(file.tokens, i, call)) {
        Add(findings, "socket-containment", file, token.line, token.col,
            "raw socket syscall '" + token.text +
                "' outside src/warp/serve/net.* — go through "
                "TcpConn/TcpListener (warp/serve/net.h)");
      }
    }
  }
}

// --- proc-containment -------------------------------------------------------
// The cluster subsystem's process-control surface (fork/exec, signals,
// reaping) lives behind ChildProcess / SendSignal (warp/cluster/proc.h):
// stdout piping, EINTR handling, and pid bookkeeping in one place. Raw
// process syscalls anywhere else bypass all three.
void ProcRule(const LexedFile& file, std::vector<Finding>* findings) {
  if (StartsWith(file.path, "src/warp/cluster/proc.")) return;
  static constexpr std::string_view kCalls[] = {
      "fork",  "vfork", "execv",   "execve", "execvp",
      "execl", "execlp", "waitpid", "kill"};
  for (const IncludeDirective& include : file.includes) {
    if (include.path == "sys/wait.h") {
      Add(findings, "proc-containment", file, include.line, 1,
          "process header <" + include.path +
              "> outside src/warp/cluster/proc.* — go through "
              "ChildProcess/SendSignal (warp/cluster/proc.h)");
    }
  }
  for (size_t i = 0; i < file.tokens.size(); ++i) {
    const Token& token = file.tokens[i];
    if (token.kind != TokenKind::kIdentifier) continue;
    for (const std::string_view call : kCalls) {
      if (token.text == call && IsCallOf(file.tokens, i, call)) {
        Add(findings, "proc-containment", file, token.line, token.col,
            "raw process syscall '" + token.text +
                "' outside src/warp/cluster/proc.* — go through "
                "ChildProcess/SendSignal (warp/cluster/proc.h)");
      }
    }
  }
}

// --- serve-io-containment ---------------------------------------------------
// The serve subsystem's only durable-state surface is the snapshot module
// (warp/serve/snapshot.h): versioned, checksummed, refuse-don't-guess.
// File IO anywhere else in src/warp/serve/ would create on-disk state
// with none of those guarantees. stdio *formatting* (fprintf to stderr)
// is fine — only file-handle IO is confined.
void ServeIoRule(const LexedFile& file, std::vector<Finding>* findings) {
  if (!StartsWith(file.path, "src/warp/serve/")) return;
  if (StartsWith(file.path, "src/warp/serve/snapshot.")) return;
  for (const IncludeDirective& include : file.includes) {
    if (include.path == "fstream" || include.path == "filesystem") {
      Add(findings, "serve-io-containment", file, include.line, 1,
          "<" + include.path +
              "> in src/warp/serve/ outside snapshot.* — persistence "
              "goes through warp/serve/snapshot.h");
    }
  }
  static constexpr std::string_view kCalls[] = {
      "fopen", "freopen", "fread", "fwrite", "fgets",
      "fgetc", "fscanf",  "fseek", "ftell"};
  for (size_t i = 0; i < file.tokens.size(); ++i) {
    const Token& token = file.tokens[i];
    if (token.kind != TokenKind::kIdentifier) continue;
    for (const std::string_view call : kCalls) {
      if (token.text == call && IsCallOf(file.tokens, i, call)) {
        Add(findings, "serve-io-containment", file, token.line, token.col,
            "raw file IO '" + token.text +
                "' in src/warp/serve/ outside snapshot.* — persistence "
                "goes through warp/serve/snapshot.h");
      }
    }
  }
}

// --- intrinsics-containment -------------------------------------------------
// All architecture-specific SIMD lives behind the vdouble wrapper
// (warp/simd/vdouble.h); a raw intrinsics header elsewhere bypasses the
// scalar fallback, the runtime --simd dispatch, and the determinism
// contract (docs/SIMD.md).
void IntrinsicsRule(const LexedFile& file, std::vector<Finding>* findings) {
  if (StartsWith(file.path, "src/warp/simd/")) return;
  static constexpr std::string_view kHeaders[] = {
      "immintrin.h", "arm_neon.h", "x86intrin.h", "emmintrin.h",
      "smmintrin.h"};
  for (const IncludeDirective& include : file.includes) {
    for (const std::string_view header : kHeaders) {
      if (include.path == header) {
        Add(findings, "intrinsics-containment", file, include.line, 1,
            "raw SIMD intrinsics header <" + include.path +
                "> outside src/warp/simd/ — go through vdouble "
                "(warp/simd/vdouble.h)");
      }
    }
  }
}

// --- include-guards ---------------------------------------------------------
// Headers use project include guards derived from their path; #pragma
// once is banned (guard names double as a uniqueness check across the
// tree, and the guard grep predates every toolchain we support).
void IncludeGuardRule(const LexedFile& file, std::vector<Finding>* findings) {
  if (!IsHeaderPath(file.path)) return;
  const std::string guard = ExpectedGuard(file.path);
  bool saw_ifndef = false;
  bool saw_define = false;
  for (size_t i = 0; i + 1 < file.tokens.size(); ++i) {
    const Token& token = file.tokens[i];
    const Token& next = file.tokens[i + 1];
    if (token.kind != TokenKind::kDirective) continue;
    if (token.text == "pragma" && next.kind == TokenKind::kIdentifier &&
        next.text == "once") {
      Add(findings, "include-guards", file, token.line, token.col,
          "#pragma once — use the " + guard + " include guard");
    }
    if (next.kind != TokenKind::kIdentifier || next.text != guard) continue;
    if (token.text == "ifndef") saw_ifndef = true;
    if (token.text == "define") saw_define = true;
  }
  if (!saw_ifndef || !saw_define) {
    Add(findings, "include-guards", file, 1, 1,
        "missing or misnamed include guard (expected " + guard + ")");
  }
}

const std::vector<TokenRule> kTokenRules = {
    {"raw-assert",
     "no raw assert(): invariants go through WARP_CHECK/WARP_DCHECK",
     RawAssertRule},
    {"platform-rng",
     "no platform RNG in src/: randomness flows through warp::Rng",
     PlatformRngRule},
    {"chrono-containment",
     "no std::chrono in src/ outside common/stopwatch* and obs/",
     ChronoRule},
    {"dp-engine-only",
     "no hand-rolled two-row DP loops in src/warp/core/",
     DpEngineRule},
    {"socket-containment",
     "socket syscalls and headers only in src/warp/serve/net.*",
     SocketRule},
    {"proc-containment",
     "fork/exec/kill/waitpid only in src/warp/cluster/proc.*",
     ProcRule},
    {"serve-io-containment",
     "file IO in src/warp/serve/ only in snapshot.*",
     ServeIoRule},
    {"intrinsics-containment",
     "raw SIMD intrinsics headers only in src/warp/simd/",
     IntrinsicsRule},
    {"include-guards",
     "headers use path-derived WARP_..._H_ guards, never #pragma once",
     IncludeGuardRule},
};

}  // namespace

const std::vector<TokenRule>& TokenRules() { return kTokenRules; }

}  // namespace lintkit
}  // namespace warp
