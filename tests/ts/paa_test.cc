// Unit tests for PAA, halve-by-two coarsening, and resampling.

#include "warp/ts/paa.h"

#include <gtest/gtest.h>

#include "warp/common/random.h"
#include "warp/gen/random_walk.h"

namespace warp {
namespace {

TEST(PaaTest, ExactDivision) {
  const std::vector<double> x = {1.0, 3.0, 5.0, 7.0};
  EXPECT_EQ(Paa(x, 2), (std::vector<double>{2.0, 6.0}));
  EXPECT_EQ(Paa(x, 4), x);
  EXPECT_EQ(Paa(x, 1), (std::vector<double>{4.0}));
}

TEST(PaaTest, FractionalBoundariesAreWeighted) {
  // Three points into two segments: the middle point contributes half to
  // each segment: [(1 + 0.5*2)/1.5, (0.5*2 + 3)/1.5].
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> paa = Paa(x, 2);
  ASSERT_EQ(paa.size(), 2u);
  EXPECT_NEAR(paa[0], (1.0 + 0.5 * 2.0) / 1.5, 1e-12);
  EXPECT_NEAR(paa[1], (0.5 * 2.0 + 3.0) / 1.5, 1e-12);
}

TEST(PaaTest, PreservesMeanOfSeries) {
  Rng rng(61);
  const std::vector<double> x = gen::RandomWalk(100, rng);
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= 100.0;
  for (size_t segments : {1u, 4u, 10u, 25u, 50u, 100u}) {
    const std::vector<double> paa = Paa(x, segments);
    double paa_mean = 0.0;
    for (double v : paa) paa_mean += v;
    paa_mean /= static_cast<double>(paa.size());
    EXPECT_NEAR(paa_mean, mean, 1e-9) << "segments=" << segments;
  }
}

TEST(HalveByTwoTest, AveragesAdjacentPairs) {
  const std::vector<double> x = {1.0, 3.0, 5.0, 9.0};
  EXPECT_EQ(HalveByTwo(x), (std::vector<double>{2.0, 7.0}));
}

TEST(HalveByTwoTest, DropsOddTail) {
  // The reference FastDTW semantics: a trailing unpaired element vanishes.
  const std::vector<double> x = {1.0, 3.0, 100.0};
  EXPECT_EQ(HalveByTwo(x), (std::vector<double>{2.0}));
}

TEST(HalveByTwoTest, CancelsPeriodTwoAlternation) {
  // The property the adversarial construction exploits.
  std::vector<double> x;
  for (int i = 0; i < 16; ++i) x.push_back(i % 2 == 0 ? 4.0 : -4.0);
  for (double v : HalveByTwo(x)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ResampleLinearTest, IdentityWhenSameLength) {
  const std::vector<double> x = {1.0, 2.0, 5.0};
  EXPECT_EQ(ResampleLinear(x, 3), x);
}

TEST(ResampleLinearTest, EndpointsPreserved) {
  const std::vector<double> x = {3.0, -1.0, 7.0, 2.0};
  for (size_t target : {2u, 5u, 17u}) {
    const std::vector<double> resampled = ResampleLinear(x, target);
    ASSERT_EQ(resampled.size(), target);
    EXPECT_DOUBLE_EQ(resampled.front(), 3.0);
    EXPECT_DOUBLE_EQ(resampled.back(), 2.0);
  }
}

TEST(ResampleLinearTest, UpsampleInterpolatesLinearly) {
  const std::vector<double> x = {0.0, 2.0};
  const std::vector<double> up = ResampleLinear(x, 5);
  EXPECT_EQ(up, (std::vector<double>{0.0, 0.5, 1.0, 1.5, 2.0}));
}

TEST(ResampleLinearTest, SinglePointExpands) {
  const std::vector<double> x = {7.0};
  EXPECT_EQ(ResampleLinear(x, 4), (std::vector<double>{7.0, 7.0, 7.0, 7.0}));
}

TEST(DownsampleTest, KeepsEveryKth) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  EXPECT_EQ(Downsample(x, 3), (std::vector<double>{0.0, 3.0, 6.0}));
  EXPECT_EQ(Downsample(x, 1), x);
}

}  // namespace
}  // namespace warp
