// Lane-parallel candidate batches for the 1-NN cascade's first rung.
//
// LB_Kim(first/last) for candidate i is
//   cost(q_first, head[i]) + cost(q_last, tail[i])
// — no dependence on the running best-so-far bound, so a block of
// candidates can be evaluated in vector lanes before the sequential
// kill loop consumes the values one by one with fresh bounds. Each lane
// performs exactly the scalar evaluation (two cost applications, one
// add, in that order), so the cached values are bitwise identical to
// computing them inline, and every downstream prune decision — and
// therefore every counter and stat — is unchanged.

#ifndef WARP_SIMD_BATCH_H_
#define WARP_SIMD_BATCH_H_

#include <cstddef>

#include "warp/common/cost.h"
#include "warp/common/metrics.h"
#include "warp/simd/vdouble.h"

namespace warp {
namespace simd {

// Fills out[0, count) with cost(q_first, heads[i]) + cost(q_last,
// tails[i]). heads/tails/out must not alias.
template <typename Cost>
void LbKimBatch(double q_first, double q_last, const double* heads,
                const double* tails, size_t count, double* out) {
  const vdouble qf = vdouble::Broadcast(q_first);
  const vdouble ql = vdouble::Broadcast(q_last);
  auto kernel = [&](vdouble head, vdouble tail) {
    vdouble front;
    vdouble back;
    if constexpr (Cost::kKind == CostKind::kSquared) {
      const vdouble df = qf - head;
      const vdouble db = ql - tail;
      front = df * df;
      back = db * db;
    } else {
      front = Abs(qf - head);
      back = Abs(ql - tail);
    }
    return front + back;
  };
  size_t i = 0;
  for (; i + kLanes <= count; i += kLanes) {
    kernel(vdouble::Load(heads + i), vdouble::Load(tails + i)).Store(out + i);
    WARP_COUNT(obs::Counter::kSimdBlocks);
  }
  if (i < count) {
    const size_t rest = count - i;
    kernel(vdouble::LoadMasked(heads + i, rest),
           vdouble::LoadMasked(tails + i, rest))
        .StoreMasked(out + i, rest);
    WARP_COUNT_ADD(obs::Counter::kSimdScalarTail, rest);
  }
}

}  // namespace simd
}  // namespace warp

#endif  // WARP_SIMD_BATCH_H_
