// Evaluation metrics for classification and clustering.
//
// The quantities the experiments report: confusion matrices with
// per-class precision/recall/F1 for classifiers, and (adjusted) Rand
// indices for comparing clusterings against ground truth or each other.

#ifndef WARP_MINING_EVALUATION_H_
#define WARP_MINING_EVALUATION_H_

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace warp {

// ---------------------------------------------------------------------------
// Classification.

class ConfusionMatrix {
 public:
  // Labels may be any ints; rows/columns are created on demand.
  void Add(int actual, int predicted);

  size_t count(int actual, int predicted) const;
  size_t total() const { return total_; }

  double Accuracy() const;
  // Per-class one-vs-rest metrics; a class with no predictions has
  // precision 0 by convention (and no examples -> recall 0).
  double Precision(int label) const;
  double Recall(int label) const;
  double F1(int label) const;
  // Unweighted mean F1 over the classes that appear (macro-F1).
  double MacroF1() const;

  std::vector<int> Labels() const;
  std::string ToString() const;  // Aligned table, actual rows x predicted cols.

 private:
  std::map<std::pair<int, int>, size_t> counts_;
  std::map<int, size_t> actual_totals_;
  std::map<int, size_t> predicted_totals_;
  size_t total_ = 0;
};

// ---------------------------------------------------------------------------
// Clustering. Assignments are arbitrary integer cluster ids; only the
// induced partition matters.

// Rand index: share of pairs on which the two partitions agree
// (same-same or different-different). In [0, 1].
double RandIndex(std::span<const int> a, std::span<const int> b);

// Adjusted Rand index (Hubert & Arabie): Rand corrected for chance;
// 1 = identical partitions, ~0 = random agreement (can be negative).
double AdjustedRandIndex(std::span<const int> a, std::span<const int> b);

// Clustering purity against ground-truth labels: each cluster votes for
// its majority label. In (0, 1].
double Purity(std::span<const int> clusters, std::span<const int> labels);

}  // namespace warp

#endif  // WARP_MINING_EVALUATION_H_
