#include "warp/ucr/ucr_metadata.h"

#include <algorithm>
#include <array>

#include "warp/common/assert.h"

namespace warp {
namespace ucr {

namespace {

// {name, train, test, length, classes, best_w%, ed_err, cdtw_err}
constexpr DatasetInfo kDatasets[] = {
    {"ACSF1", 100, 100, 1460, 10, 4, 0.460, 0.380},
    {"Adiac", 390, 391, 176, 37, 3, 0.389, 0.391},
    {"AllGestureWiimoteX", 300, 700, 500, 10, 14, 0.485, 0.283},
    {"AllGestureWiimoteY", 300, 700, 500, 10, 9, 0.431, 0.270},
    {"AllGestureWiimoteZ", 300, 700, 500, 10, 11, 0.546, 0.349},
    {"ArrowHead", 36, 175, 251, 3, 0, 0.200, 0.200},
    {"BME", 30, 150, 128, 3, 4, 0.167, 0.020},
    {"Beef", 30, 30, 470, 5, 0, 0.333, 0.333},
    {"BeetleFly", 20, 20, 512, 2, 7, 0.250, 0.300},
    {"BirdChicken", 20, 20, 512, 2, 6, 0.450, 0.300},
    {"CBF", 30, 900, 128, 3, 11, 0.148, 0.004},
    {"Car", 60, 60, 577, 4, 1, 0.267, 0.233},
    {"Chinatown", 20, 343, 24, 2, 0, 0.047, 0.047},
    {"ChlorineConcentration", 467, 3840, 166, 3, 0, 0.350, 0.350},
    {"CinCECGTorso", 40, 1380, 1639, 4, 1, 0.103, 0.070},
    {"Coffee", 28, 28, 286, 2, 0, 0.000, 0.000},
    {"Computers", 250, 250, 720, 2, 12, 0.424, 0.380},
    {"CricketX", 390, 390, 300, 12, 10, 0.423, 0.228},
    {"CricketY", 390, 390, 300, 12, 17, 0.433, 0.238},
    {"CricketZ", 390, 390, 300, 12, 5, 0.413, 0.254},
    {"Crop", 7200, 16800, 46, 24, 0, 0.288, 0.288},
    {"DiatomSizeReduction", 16, 306, 345, 4, 0, 0.065, 0.065},
    {"DistalPhalanxOutlineAgeGroup", 400, 139, 80, 3, 0, 0.374, 0.374},
    {"DistalPhalanxOutlineCorrect", 600, 276, 80, 2, 1, 0.283, 0.272},
    {"DistalPhalanxTW", 400, 139, 80, 6, 0, 0.367, 0.367},
    {"DodgerLoopDay", 78, 80, 288, 7, 0, 0.450, 0.450},
    {"DodgerLoopGame", 20, 138, 288, 2, 6, 0.117, 0.070},
    {"DodgerLoopWeekend", 20, 138, 288, 2, 8, 0.015, 0.022},
    {"ECG200", 100, 100, 96, 2, 0, 0.120, 0.120},
    {"ECG5000", 500, 4500, 140, 5, 1, 0.075, 0.075},
    {"ECGFiveDays", 23, 861, 136, 2, 0, 0.203, 0.203},
    {"EOGHorizontalSignal", 362, 362, 1250, 12, 3, 0.583, 0.525},
    {"EOGVerticalSignal", 362, 362, 1250, 12, 4, 0.558, 0.525},
    {"Earthquakes", 322, 139, 512, 2, 6, 0.288, 0.273},
    {"ElectricDevices", 8926, 7711, 96, 7, 14, 0.449, 0.381},
    {"EthanolLevel", 504, 500, 1751, 4, 1, 0.726, 0.718},
    {"FaceAll", 560, 1690, 131, 14, 3, 0.286, 0.192},
    {"FaceFour", 24, 88, 350, 4, 2, 0.216, 0.114},
    {"FacesUCR", 200, 2050, 131, 14, 12, 0.231, 0.088},
    {"FiftyWords", 450, 455, 270, 50, 6, 0.369, 0.242},
    {"Fish", 175, 175, 463, 7, 4, 0.217, 0.154},
    {"FordA", 3601, 1320, 500, 2, 1, 0.335, 0.309},
    {"FordB", 3636, 810, 500, 2, 1, 0.394, 0.393},
    {"FreezerRegularTrain", 150, 2850, 301, 2, 1, 0.195, 0.093},
    {"FreezerSmallTrain", 28, 2850, 301, 2, 3, 0.333, 0.242},
    {"Fungi", 18, 186, 201, 18, 0, 0.177, 0.177},
    {"GestureMidAirD1", 208, 130, 360, 26, 4, 0.423, 0.362},
    {"GestureMidAirD2", 208, 130, 360, 26, 4, 0.508, 0.385},
    {"GestureMidAirD3", 208, 130, 360, 26, 2, 0.654, 0.623},
    {"GesturePebbleZ1", 132, 172, 455, 6, 13, 0.267, 0.174},
    {"GesturePebbleZ2", 146, 158, 455, 6, 9, 0.329, 0.222},
    {"GunPoint", 50, 150, 150, 2, 0, 0.087, 0.087},
    {"GunPointAgeSpan", 135, 316, 150, 2, 2, 0.101, 0.035},
    {"GunPointMaleVersusFemale", 135, 316, 150, 2, 1, 0.025, 0.003},
    {"GunPointOldVersusYoung", 136, 315, 150, 2, 3, 0.048, 0.016},
    {"Ham", 109, 105, 431, 2, 0, 0.400, 0.400},
    {"HandOutlines", 1000, 370, 2709, 2, 1, 0.138, 0.119},
    {"Haptics", 155, 308, 1092, 5, 2, 0.630, 0.588},
    {"Herring", 64, 64, 512, 2, 5, 0.484, 0.469},
    {"HouseTwenty", 40, 119, 2000, 2, 11, 0.336, 0.076},
    {"InlineSkate", 100, 550, 1882, 7, 14, 0.658, 0.613},
    {"InsectEPGRegularTrain", 62, 249, 601, 3, 11, 0.322, 0.128},
    {"InsectEPGSmallTrain", 17, 249, 601, 3, 14, 0.663, 0.305},
    {"InsectWingbeatSound", 220, 1980, 256, 11, 1, 0.438, 0.422},
    {"ItalyPowerDemand", 67, 1029, 24, 2, 0, 0.045, 0.045},
    {"LargeKitchenAppliances", 375, 375, 720, 3, 94, 0.507, 0.205},
    {"Lightning2", 60, 61, 637, 2, 6, 0.246, 0.131},
    {"Lightning7", 70, 73, 319, 7, 5, 0.425, 0.288},
    {"Mallat", 55, 2345, 1024, 8, 0, 0.086, 0.086},
    {"Meat", 60, 60, 448, 3, 0, 0.067, 0.067},
    {"MedicalImages", 381, 760, 99, 10, 20, 0.316, 0.253},
    {"MelbournePedestrian", 1194, 2439, 24, 10, 0, 0.152, 0.152},
    {"MiddlePhalanxOutlineAgeGroup", 400, 154, 80, 3, 0, 0.481, 0.481},
    {"MiddlePhalanxOutlineCorrect", 600, 291, 80, 2, 0, 0.234, 0.234},
    {"MiddlePhalanxTW", 399, 154, 80, 6, 0, 0.487, 0.487},
    {"MixedShapesRegularTrain", 500, 2425, 1024, 5, 4, 0.103, 0.058},
    {"MixedShapesSmallTrain", 100, 2425, 1024, 5, 6, 0.164, 0.110},
    {"MoteStrain", 20, 1252, 84, 2, 1, 0.121, 0.113},
    {"NonInvasiveFetalECGThorax1", 1800, 1965, 750, 42, 1, 0.171, 0.154},
    {"NonInvasiveFetalECGThorax2", 1800, 1965, 750, 42, 1, 0.120, 0.106},
    {"OSULeaf", 200, 242, 427, 6, 7, 0.479, 0.388},
    {"OliveOil", 30, 30, 570, 4, 0, 0.133, 0.133},
    {"PLAID", 537, 537, 1345, 11, 3, 0.480, 0.160},
    {"PhalangesOutlinesCorrect", 1800, 858, 80, 2, 0, 0.239, 0.239},
    {"Phoneme", 214, 1896, 1024, 39, 14, 0.891, 0.773},
    {"PickupGestureWiimoteZ", 50, 50, 361, 10, 16, 0.440, 0.340},
    {"PigAirwayPressure", 104, 208, 2000, 52, 1, 0.942, 0.903},
    {"PigArtPressure", 104, 208, 2000, 52, 1, 0.875, 0.803},
    {"PigCVP", 104, 208, 2000, 52, 2, 0.918, 0.841},
    {"Plane", 105, 105, 144, 7, 6, 0.038, 0.000},
    {"PowerCons", 180, 180, 144, 2, 3, 0.067, 0.078},
    {"ProximalPhalanxOutlineAgeGroup", 400, 205, 80, 3, 0, 0.215, 0.215},
    {"ProximalPhalanxOutlineCorrect", 600, 291, 80, 2, 0, 0.192, 0.192},
    {"ProximalPhalanxTW", 400, 205, 80, 6, 0, 0.293, 0.293},
    {"RefrigerationDevices", 375, 375, 720, 3, 8, 0.605, 0.536},
    {"Rock", 20, 50, 2844, 4, 0, 0.160, 0.160},
    {"ScreenType", 375, 375, 720, 3, 17, 0.640, 0.589},
    {"SemgHandGenderCh2", 300, 600, 1500, 2, 1, 0.238, 0.155},
    {"SemgHandMovementCh2", 450, 450, 1500, 6, 1, 0.631, 0.362},
    {"SemgHandSubjectCh2", 450, 450, 1500, 5, 2, 0.596, 0.200},
    {"ShakeGestureWiimoteZ", 50, 50, 385, 10, 6, 0.400, 0.140},
    {"ShapeletSim", 20, 180, 500, 2, 3, 0.461, 0.300},
    {"ShapesAll", 600, 600, 512, 60, 4, 0.248, 0.198},
    {"SmallKitchenAppliances", 375, 375, 720, 3, 15, 0.659, 0.328},
    {"SmoothSubspace", 150, 150, 15, 3, 13, 0.093, 0.047},
    {"SonyAIBORobotSurface1", 20, 601, 70, 2, 0, 0.305, 0.305},
    {"SonyAIBORobotSurface2", 27, 953, 65, 2, 0, 0.141, 0.141},
    {"StarLightCurves", 1000, 8236, 1024, 3, 16, 0.151, 0.095},
    {"Strawberry", 613, 370, 235, 2, 0, 0.054, 0.054},
    {"SwedishLeaf", 500, 625, 128, 15, 2, 0.211, 0.154},
    {"Symbols", 25, 995, 398, 6, 8, 0.100, 0.062},
    {"SyntheticControl", 300, 300, 60, 6, 6, 0.120, 0.017},
    {"ToeSegmentation1", 40, 228, 277, 2, 8, 0.320, 0.250},
    {"ToeSegmentation2", 36, 130, 343, 2, 5, 0.192, 0.092},
    {"Trace", 100, 100, 275, 4, 3, 0.240, 0.010},
    {"TwoLeadECG", 23, 1139, 82, 2, 4, 0.253, 0.132},
    {"TwoPatterns", 1000, 4000, 128, 4, 4, 0.093, 0.002},
    {"UMD", 36, 144, 150, 3, 11, 0.236, 0.028},
    {"UWaveGestureLibraryAll", 896, 3582, 945, 8, 4, 0.052, 0.034},
    {"UWaveGestureLibraryX", 896, 3582, 315, 8, 4, 0.261, 0.227},
    {"UWaveGestureLibraryY", 896, 3582, 315, 8, 4, 0.338, 0.301},
    {"UWaveGestureLibraryZ", 896, 3582, 315, 8, 6, 0.350, 0.322},
    {"Wafer", 1000, 6164, 152, 2, 1, 0.005, 0.005},
    {"Wine", 57, 54, 234, 2, 0, 0.389, 0.389},
    {"WordSynonyms", 267, 638, 270, 25, 9, 0.382, 0.252},
    {"Worms", 181, 77, 900, 5, 9, 0.545, 0.416},
    {"WormsTwoClass", 181, 77, 900, 2, 9, 0.390, 0.377},
    {"Yoga", 300, 3000, 426, 2, 2, 0.170, 0.155},
};

constexpr size_t kNumDatasets = sizeof(kDatasets) / sizeof(kDatasets[0]);
static_assert(kNumDatasets == 128, "the UCR-2018 archive has 128 datasets");

}  // namespace

std::span<const DatasetInfo> AllDatasets() {
  return {kDatasets, kNumDatasets};
}

const DatasetInfo* FindDataset(std::string_view name) {
  const auto it = std::lower_bound(
      std::begin(kDatasets), std::end(kDatasets), name,
      [](const DatasetInfo& info, std::string_view key) {
        return info.name < key;
      });
  if (it != std::end(kDatasets) && it->name == name) return &*it;
  return nullptr;
}

std::vector<double> BestWindowPercents() {
  std::vector<double> values;
  values.reserve(kNumDatasets);
  for (const DatasetInfo& info : kDatasets) {
    values.push_back(static_cast<double>(info.best_window_percent));
  }
  return values;
}

WarpingCase CaseOf(const DatasetInfo& info) {
  const bool long_series = info.length >= 1000;
  const bool wide_warping = info.best_window_percent >= 20;
  if (long_series) return wide_warping ? WarpingCase::kD : WarpingCase::kB;
  return wide_warping ? WarpingCase::kC : WarpingCase::kA;
}

const char* CaseName(WarpingCase c) {
  switch (c) {
    case WarpingCase::kA:
      return "A (short N, narrow W)";
    case WarpingCase::kB:
      return "B (long N, narrow W)";
    case WarpingCase::kC:
      return "C (short N, wide W)";
    case WarpingCase::kD:
      return "D (long N, wide W)";
  }
  return "?";
}

std::array<size_t, 4> CaseCensus() {
  std::array<size_t, 4> census{0, 0, 0, 0};
  for (const DatasetInfo& info : kDatasets) {
    ++census[static_cast<size_t>(CaseOf(info))];
  }
  return census;
}

std::vector<double> SeriesLengths() {
  std::vector<double> values;
  values.reserve(kNumDatasets);
  for (const DatasetInfo& info : kDatasets) {
    values.push_back(static_cast<double>(info.length));
  }
  return values;
}

}  // namespace ucr
}  // namespace warp
