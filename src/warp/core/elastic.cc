#include "warp/core/elastic.h"

#include "warp/common/assert.h"
#include "warp/core/dp_engine.h"

namespace warp {

size_t LcssLength(std::span<const double> x, std::span<const double> y,
                  double epsilon, size_t band, DtwWorkspace* workspace) {
  WARP_CHECK(!x.empty() && !y.empty());
  WARP_CHECK(epsilon >= 0.0);

  // Max-DP over match counts, run in the engine's double rows (counts are
  // small non-negative integers, exact in double). Cells outside the band
  // stay at the running maximum of their row prefix (standard banded-LCSS
  // semantics: matches are only allowed inside the band, carries are
  // free), so the policy gates the band instead of the row range.
  const double length = dp::TwoRowEngine(
      x.size(), y.size(), dp::FullRowRange{y.size() - 1},
      dp::LcssPolicy{x.data(), y.data(), epsilon, band}, dp::kInf, workspace);
  return static_cast<size_t>(length);
}

double LcssDistance(std::span<const double> x, std::span<const double> y,
                    double epsilon, size_t band, DtwWorkspace* workspace) {
  const size_t lcss = LcssLength(x, y, epsilon, band, workspace);
  const size_t shortest = std::min(x.size(), y.size());
  return 1.0 - static_cast<double>(lcss) / static_cast<double>(shortest);
}

double ErpDistance(std::span<const double> x, std::span<const double> y,
                   double gap_value, DtwWorkspace* workspace) {
  WARP_CHECK(!x.empty() && !y.empty());
  // Boundaries are gap prefix sums — D(i, -1) accumulates |x[0..i] - g|
  // across rows inside the (stateful) policy, D(-1, j) is the top-row
  // prefix of |y[0..j] - g|; interior is the three-way edit recurrence on
  // L1 costs. The SIMD wavefront injects the same prefixes through its
  // boundary sentinels, so both paths agree bitwise (docs/SIMD.md).
  dp::ErpPolicy policy{x.data(), y.data(), gap_value};
  double wave_result;
  if (dp::TryWavefront(x.size(), y.size(), std::max(x.size(), y.size()),
                       policy, workspace, {}, &wave_result)) {
    return wave_result;
  }
  return dp::TwoRowEngine(x.size(), y.size(), dp::FullRowRange{y.size() - 1},
                          policy, dp::kInf, workspace);
}

double MsmDistance(std::span<const double> x, std::span<const double> y,
                   double split_merge_cost, DtwWorkspace* workspace) {
  WARP_CHECK(!x.empty() && !y.empty());
  WARP_CHECK(split_merge_cost >= 0.0);
  return dp::TwoRowEngine(
      x.size(), y.size(), dp::FullRowRange{y.size() - 1},
      dp::MsmPolicy{x.data(), y.data(), split_merge_cost}, dp::kInf,
      workspace);
}

}  // namespace warp
