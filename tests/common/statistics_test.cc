// Unit tests for descriptive statistics and histograms.

#include "warp/common/statistics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace warp {
namespace {

TEST(StatisticsTest, MeanMedianStd) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(Mean(x), 3.0);
  EXPECT_DOUBLE_EQ(Median(x), 3.0);
  EXPECT_NEAR(StdDev(x), std::sqrt(2.5), 1e-12);
}

TEST(StatisticsTest, MedianOfEvenCountInterpolates) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 10.0};
  EXPECT_DOUBLE_EQ(Median(x), 2.5);
}

TEST(StatisticsTest, SingleElement) {
  const std::vector<double> x = {7.0};
  EXPECT_DOUBLE_EQ(Mean(x), 7.0);
  EXPECT_DOUBLE_EQ(StdDev(x), 0.0);
  EXPECT_DOUBLE_EQ(Median(x), 7.0);
  EXPECT_DOUBLE_EQ(Percentile(x, 99.0), 7.0);
}

TEST(StatisticsTest, PercentileEndpoints) {
  const std::vector<double> x = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(x, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(x, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(x, 50.0), 2.5);
}

TEST(StatisticsTest, ComputeStatsAggregates) {
  const std::vector<double> x = {2.0, 4.0, 6.0};
  const SampleStats stats = ComputeStats(x);
  EXPECT_EQ(stats.count, 3u);
  EXPECT_DOUBLE_EQ(stats.mean, 4.0);
  EXPECT_DOUBLE_EQ(stats.min, 2.0);
  EXPECT_DOUBLE_EQ(stats.max, 6.0);
  EXPECT_DOUBLE_EQ(stats.median, 4.0);
}

TEST(HistogramTest, BinAssignment) {
  Histogram hist(0.0, 10.0, 5);
  hist.Add(0.0);   // Bin 0.
  hist.Add(1.99);  // Bin 0.
  hist.Add(2.0);   // Bin 1.
  hist.Add(9.99);  // Bin 4.
  EXPECT_EQ(hist.count(0), 2u);
  EXPECT_EQ(hist.count(1), 1u);
  EXPECT_EQ(hist.count(4), 1u);
  EXPECT_EQ(hist.total(), 4u);
}

TEST(HistogramTest, OutOfRangeValuesClampToEdgeBins) {
  Histogram hist(0.0, 10.0, 2);
  hist.Add(-5.0);
  hist.Add(100.0);
  EXPECT_EQ(hist.count(0), 1u);
  EXPECT_EQ(hist.count(1), 1u);
}

TEST(HistogramTest, BinEdges) {
  Histogram hist(0.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(hist.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(hist.bin_hi(0), 2.5);
  EXPECT_DOUBLE_EQ(hist.bin_lo(3), 7.5);
  EXPECT_DOUBLE_EQ(hist.bin_hi(3), 10.0);
}

TEST(HistogramTest, RenderShowsBars) {
  Histogram hist(0.0, 2.0, 2);
  hist.Add(0.5);
  hist.Add(0.5);
  hist.Add(1.5);
  const std::string rendered = hist.Render(10);
  EXPECT_NE(rendered.find("##########"), std::string::npos);
  EXPECT_NE(rendered.find("#####"), std::string::npos);
}

}  // namespace
}  // namespace warp
