#include "warp/core/dtw.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "warp/common/assert.h"
#include "warp/core/dp_engine.h"
#include "warp/common/metrics.h"

namespace warp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Every DTW-family kernel below is a thin instantiation of the shared
// engine in dp_engine.h: a MinPlus recurrence over a row range, with the
// abandon hook and the PrunedDTW pruner composed in as policies. The
// engine publishes this family's work through the kDtwCells /
// kDtwEarlyAbandons / kPrunedDtw* counters.

dp::EngineCounters DtwCounters(uint64_t* cells) {
  dp::EngineCounters counters;
  counters.cells = obs::Counter::kDtwCells;
  counters.abandons = obs::Counter::kDtwEarlyAbandons;
  counters.cells_out = cells;
  return counters;
}

template <typename CellCostFn>
double BandedDistance(size_t n, size_t m, size_t band, CellCostFn&& cell_cost,
                      double abandon_above, DtwWorkspace* workspace,
                      uint64_t* cells) {
  return dp::BandedTwoRowEngine(
      n, m, band, dp::MinPlusPolicy<CellCostFn>{cell_cost}, abandon_above,
      workspace, DtwCounters(cells));
}

}  // namespace

// ---------------------------------------------------------------------------
// Unconstrained DTW.

double DtwDistance(std::span<const double> x, std::span<const double> y,
                   CostKind cost, uint64_t* cells, DtwWorkspace* workspace) {
  WARP_CHECK(!x.empty() && !y.empty());
  const size_t band = std::max(x.size(), y.size());
  return WithCost(cost, [&](auto c) {
    return BandedDistance(
        x.size(), y.size(), band,
        dp::SeriesCellCost<decltype(c)>{x.data(), y.data(), c}, kInf,
        workspace, cells);
  });
}

DtwResult Dtw(std::span<const double> x, std::span<const double> y,
              CostKind cost) {
  return WindowedDtw(x, y, WarpingWindow::Full(x.size(), y.size()), cost);
}

// ---------------------------------------------------------------------------
// Sakoe–Chiba constrained DTW.

double CdtwDistance(std::span<const double> x, std::span<const double> y,
                    size_t band, CostKind cost, DtwWorkspace* buffer,
                    uint64_t* cells) {
  WARP_CHECK(!x.empty() && !y.empty());
  return WithCost(cost, [&](auto c) {
    return BandedDistance(
        x.size(), y.size(), band,
        dp::SeriesCellCost<decltype(c)>{x.data(), y.data(), c}, kInf, buffer,
        cells);
  });
}

double CdtwDistanceFraction(std::span<const double> x,
                            std::span<const double> y, double fraction,
                            CostKind cost, DtwWorkspace* buffer) {
  WARP_CHECK(fraction >= 0.0);
  const size_t longest = std::max(x.size(), y.size());
  const size_t band = static_cast<size_t>(
      std::llround(fraction * static_cast<double>(longest)));
  return CdtwDistance(x, y, band, cost, buffer);
}

double CdtwDistanceAbandoning(std::span<const double> x,
                              std::span<const double> y, size_t band,
                              double abandon_above, CostKind cost,
                              DtwWorkspace* buffer) {
  WARP_CHECK(!x.empty() && !y.empty());
  return WithCost(cost, [&](auto c) {
    return BandedDistance(
        x.size(), y.size(), band,
        dp::SeriesCellCost<decltype(c)>{x.data(), y.data(), c}, abandon_above,
        buffer, nullptr);
  });
}

double PrunedCdtwDistance(std::span<const double> x,
                          std::span<const double> y, size_t band,
                          CostKind cost, double upper_bound,
                          DtwWorkspace* buffer, uint64_t* cells) {
  WARP_CHECK(!x.empty());
  WARP_CHECK_MSG(x.size() == y.size(),
                 "PrunedDTW requires equal lengths (the Euclidean upper "
                 "bound rides the diagonal)");
  const size_t n = x.size();
  double ub =
      upper_bound >= 0.0 ? upper_bound : EuclideanDistance(x, y, cost);
  // Tiny inflation so floating-point drift between the bound's summation
  // order and the DP's cannot prune a cell of the optimal path. Larger ub
  // only weakens pruning, never correctness.
  ub += 1e-9 * (std::fabs(ub) + 1.0);

  dp::EngineCounters counters;
  counters.cells = obs::Counter::kPrunedDtwCells;
  counters.skipped = obs::Counter::kPrunedDtwCellsSkipped;
  counters.cells_out = cells;
  return WithCost(cost, [&](auto c) {
    return dp::TwoRowEngine(
        n, n, dp::SquareBandRowRange{band, n - 1},
        dp::MinPlusPolicy<dp::SeriesCellCost<decltype(c)>>{
            {x.data(), y.data(), c}},
        kInf, buffer, counters, dp::BandPruner(ub, n));
  });
}

DtwResult Cdtw(std::span<const double> x, std::span<const double> y,
               size_t band, CostKind cost) {
  return WindowedDtw(x, y, WarpingWindow::SakoeChiba(x.size(), y.size(), band),
                     cost);
}

// ---------------------------------------------------------------------------
// Arbitrary-window DTW.

double WindowedDtwDistance(std::span<const double> x,
                           std::span<const double> y,
                           const WarpingWindow& window, CostKind cost,
                           DtwWorkspace* buffer, uint64_t* cells) {
  WARP_CHECK(!x.empty() && !y.empty());
  WARP_CHECK(window.rows() == x.size() && window.cols() == y.size());
  return WithCost(cost, [&](auto c) {
    return dp::TwoRowEngine(
        x.size(), y.size(), dp::WindowRowRange{&window},
        dp::MinPlusPolicy<dp::SeriesCellCost<decltype(c)>>{
            {x.data(), y.data(), c}},
        kInf, buffer, DtwCounters(cells));
  });
}

DtwResult WindowedDtw(std::span<const double> x, std::span<const double> y,
                      const WarpingWindow& window, CostKind cost) {
  WARP_CHECK(!x.empty() && !y.empty());
  return WithCost(cost, [&](auto c) {
    dp::MaterializedResult dp_result = dp::MaterializedDp(
        x.size(), y.size(), window,
        dp::SeriesCellCost<decltype(c)>{x.data(), y.data(), c},
        obs::Counter::kPathEngineCells, obs::Counter::kPathEngineBytes);
    DtwResult result;
    result.distance = dp_result.distance;
    result.cells_visited = dp_result.cells_visited;
    result.path = WarpingPath(std::move(dp_result.path));
#ifndef NDEBUG
    // Debug-build invariant oracle hooks: the recovered alignment must be
    // a legal warping path, stay inside the window it was searched in,
    // and cost exactly what the DP reported.
    std::string path_error;
    WARP_CHECK_MSG(result.path.Validate(x.size(), y.size(), &path_error),
                   path_error.c_str());
    for (const PathPoint& p : result.path.points()) {
      WARP_DCHECK(window.Contains(p.i, p.j));
    }
#endif
    return result;
  });
}

double NormalizedCdtwDistance(std::span<const double> x,
                              std::span<const double> y, size_t band,
                              CostKind cost) {
  const DtwResult result = Cdtw(x, y, band, cost);
  return result.distance / static_cast<double>(result.path.size());
}

double NormalizedDtwDistance(std::span<const double> x,
                             std::span<const double> y, CostKind cost) {
  const DtwResult result = Dtw(x, y, cost);
  return result.distance / static_cast<double>(result.path.size());
}

// ---------------------------------------------------------------------------
// Euclidean distance.

double EuclideanDistance(std::span<const double> x, std::span<const double> y,
                         CostKind cost) {
  WARP_CHECK_MSG(x.size() == y.size(),
                 "Euclidean distance requires equal lengths");
  WARP_CHECK(!x.empty());
  return WithCost(cost, [&](auto c) {
    double sum = 0.0;
    for (size_t i = 0; i < x.size(); ++i) sum += c(x[i], y[i]);
    return sum;
  });
}

double EuclideanDistanceAbandoning(std::span<const double> x,
                                   std::span<const double> y,
                                   double abandon_above, CostKind cost) {
  WARP_CHECK_MSG(x.size() == y.size(),
                 "Euclidean distance requires equal lengths");
  WARP_CHECK(!x.empty());
  return WithCost(cost, [&](auto c) {
    double sum = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      sum += c(x[i], y[i]);
      if (sum > abandon_above) return kInf;
    }
    return sum;
  });
}

// ---------------------------------------------------------------------------
// Multichannel DTW.

double MultiDtwDistance(const MultiSeries& x, const MultiSeries& y,
                        CostKind cost, uint64_t* cells) {
  WARP_CHECK(!x.empty() && !y.empty());
  WARP_CHECK(x.num_channels() == y.num_channels());
  const size_t band = std::max(x.length(), y.length());
  return WithCost(cost, [&](auto c) {
    return BandedDistance(x.length(), y.length(), band,
                          dp::MultiCellCost<decltype(c)>{&x, &y, c}, kInf,
                          nullptr, cells);
  });
}

double MultiCdtwDistance(const MultiSeries& x, const MultiSeries& y,
                         size_t band, CostKind cost, DtwWorkspace* buffer,
                         uint64_t* cells) {
  WARP_CHECK(!x.empty() && !y.empty());
  WARP_CHECK(x.num_channels() == y.num_channels());
  return WithCost(cost, [&](auto c) {
    return BandedDistance(x.length(), y.length(), band,
                          dp::MultiCellCost<decltype(c)>{&x, &y, c}, kInf,
                          buffer, cells);
  });
}

DtwResult MultiWindowedDtw(const MultiSeries& x, const MultiSeries& y,
                           const WarpingWindow& window, CostKind cost) {
  WARP_CHECK(!x.empty() && !y.empty());
  WARP_CHECK(x.num_channels() == y.num_channels());
  return WithCost(cost, [&](auto c) {
    dp::MaterializedResult dp_result = dp::MaterializedDp(
        x.length(), y.length(), window,
        dp::MultiCellCost<decltype(c)>{&x, &y, c},
        obs::Counter::kPathEngineCells, obs::Counter::kPathEngineBytes);
    DtwResult result;
    result.distance = dp_result.distance;
    result.cells_visited = dp_result.cells_visited;
    result.path = WarpingPath(std::move(dp_result.path));
#ifndef NDEBUG
    std::string path_error;
    WARP_CHECK_MSG(result.path.Validate(x.length(), y.length(), &path_error),
                   path_error.c_str());
    for (const PathPoint& p : result.path.points()) {
      WARP_DCHECK(window.Contains(p.i, p.j));
    }
#endif
    return result;
  });
}

}  // namespace warp
