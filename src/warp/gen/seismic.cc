#include "warp/gen/seismic.h"

#include <cmath>

#include "warp/common/assert.h"
#include "warp/gen/warping.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace gen {

namespace {

// An enveloped wave packet: carrier sine under an asymmetric (fast
// attack, slow decay) envelope.
void AddWavePacket(std::vector<double>* trace, double onset_fraction,
                   double duration_fraction, double frequency,
                   double amplitude, Rng& rng) {
  const size_t n = trace->size();
  const double onset = onset_fraction * static_cast<double>(n);
  const double duration = duration_fraction * static_cast<double>(n);
  const double phase = rng.Uniform(0.0, 2.0 * M_PI);
  const size_t begin = static_cast<size_t>(std::max(0.0, onset));
  const size_t end =
      std::min(n, static_cast<size_t>(onset + 4.0 * duration));
  for (size_t t = begin; t < end; ++t) {
    const double rel = (static_cast<double>(t) - onset) / duration;
    if (rel < 0.0) continue;
    const double envelope =
        rel < 0.15 ? rel / 0.15 : std::exp(-(rel - 0.15) / 1.2);
    (*trace)[t] += amplitude * envelope *
                   std::sin(2.0 * M_PI * frequency * rel + phase);
  }
}

}  // namespace

std::vector<double> MakeSeismicTrace(const SeismicOptions& options,
                                     Rng& rng) {
  WARP_CHECK(options.length >= 100);
  std::vector<double> trace(options.length, 0.0);
  // P wave: higher frequency, smaller; S wave: lower frequency, larger;
  // surface-wave coda: lowest and longest.
  AddWavePacket(&trace, options.p_arrival, 0.03, 60.0, 0.5, rng);
  AddWavePacket(&trace, options.s_arrival, 0.05, 30.0, 1.0, rng);
  AddWavePacket(&trace, options.s_arrival + 0.08, 0.12, 12.0, 0.6, rng);
  for (double& v : trace) v += rng.Gaussian(0.0, options.noise_stddev);
  return trace;
}

std::pair<std::vector<double>, std::vector<double>> MakeSeismicPair(
    const SeismicOptions& options) {
  Rng rng(options.seed);
  std::vector<double> station_a = MakeSeismicTrace(options, rng);
  // Station B sees the same ground motion under a small smooth delay,
  // with its own sensor noise.
  std::vector<double> station_b =
      ApplyRandomWarp(station_a, options.max_delay_fraction, rng);
  for (double& v : station_b) {
    v += rng.Gaussian(0.0, options.noise_stddev);
  }
  ZNormalizeInPlace(station_a);
  ZNormalizeInPlace(station_b);
  return {std::move(station_a), std::move(station_b)};
}

}  // namespace gen
}  // namespace warp
