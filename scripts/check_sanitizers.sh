#!/usr/bin/env bash
# Unified sanitizer-matrix driver.
#
# Builds the tree under each requested sanitizer configuration and runs
# the full ctest suite in it. Debug builds are used so the WARP_DCHECK
# invariant-oracle hooks in the core kernels are live under the
# sanitizers.
#
# Usage:
#   scripts/check_sanitizers.sh [entry ...] [-- ctest-args...]
#
# Entries (default: the full matrix, in this order):
#   address             ASan: out-of-bounds, use-after-free, leaks
#   undefined           UBSan: overflow, bad shifts, misaligned access
#   address,undefined   the combined ASan+UBSan build
#   thread              TSan: races in the parallel execution layer
#
# Environment:
#   WARP_THREADS   worker-pool override forwarded to the tests
#                  (default 4, so "auto" code paths take 4 workers even on
#                  a single-core host)
#   CTEST_EXCLUDE  extra ctest -E regex (e.g. to skip wall-clock-ratio
#                  tests that sanitizer slowdowns would distort)
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

CXX_BIN="${CXX:-c++}"

DEFAULT_MATRIX=("address" "undefined" "address,undefined" "thread")
MATRIX=()
CTEST_EXTRA=()
parsing_ctest=0
for arg in "$@"; do
  if [ "$arg" = "--" ]; then
    parsing_ctest=1
  elif [ "$parsing_ctest" = 1 ]; then
    CTEST_EXTRA+=("$arg")
  else
    MATRIX+=("$arg")
  fi
done
[ ${#MATRIX[@]} -eq 0 ] && MATRIX=("${DEFAULT_MATRIX[@]}")

# Fail loudly — not silently skip — when the toolchain cannot build and
# run a binary under the requested sanitizer.
probe_sanitizer() {
  local flag="$1"
  local probe_dir
  probe_dir="$(mktemp -d)" || return 1
  local status=0
  if ! echo 'int main() { return 0; }' | \
      "$CXX_BIN" -fsanitize="$flag" -x c++ - -o "$probe_dir/probe" \
      > "$probe_dir/log" 2>&1; then
    status=1
  elif ! "$probe_dir/probe" > "$probe_dir/log" 2>&1; then
    status=1
  fi
  if [ $status -ne 0 ]; then
    echo "FATAL: compiler '$CXX_BIN' cannot build/run with -fsanitize=$flag:" >&2
    cat "$probe_dir/log" >&2
  fi
  rm -rf "$probe_dir"
  return $status
}

run_entry() {
  local entry="$1"
  local slug="${entry//,/-}"
  local build_dir="build-san-$slug"

  echo "=== sanitizer matrix: $entry (build dir: $build_dir) ==="
  probe_sanitizer "$entry" || return 2

  cmake -B "$build_dir" -S . \
        -DWARP_SANITIZE="$entry" \
        -DCMAKE_BUILD_TYPE=Debug \
        -DWARP_BUILD_BENCHMARKS=OFF -DWARP_BUILD_EXAMPLES=OFF \
        > /dev/null || return 1
  cmake --build "$build_dir" -j || return 1

  # halt_on_error makes every sanitizer report a test failure instead of
  # a log line; leaks stay on for ASan unless the kernel blocks ptrace.
  local -a ctest_cmd=(ctest --test-dir "$build_dir" --output-on-failure)
  [ -n "${CTEST_EXCLUDE:-}" ] && ctest_cmd+=(-E "$CTEST_EXCLUDE")
  [ ${#CTEST_EXTRA[@]} -gt 0 ] && ctest_cmd+=("${CTEST_EXTRA[@]}")
  ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_stack_use_after_return=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  WARP_THREADS="${WARP_THREADS:-4}" \
      "${ctest_cmd[@]}"
}

overall=0
failed_entries=()
for entry in "${MATRIX[@]}"; do
  if ! run_entry "$entry"; then
    overall=1
    failed_entries+=("$entry")
    echo "--- sanitizer matrix entry FAILED: $entry ---" >&2
  fi
done

if [ $overall -eq 0 ]; then
  echo "Sanitizer matrix passed: ${MATRIX[*]}"
else
  echo "Sanitizer matrix FAILED for: ${failed_entries[*]}" >&2
fi
exit $overall
