// A labeled collection of time series plus the split/shuffle operations the
// classification experiments need.

#ifndef WARP_TS_DATASET_H_
#define WARP_TS_DATASET_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "warp/common/random.h"
#include "warp/ts/time_series.h"

namespace warp {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<TimeSeries> series)
      : series_(std::move(series)) {}

  size_t size() const { return series_.size(); }
  bool empty() const { return series_.empty(); }

  const TimeSeries& operator[](size_t i) const { return series_[i]; }
  TimeSeries& operator[](size_t i) { return series_[i]; }

  const std::vector<TimeSeries>& series() const { return series_; }

  void Add(TimeSeries series) { series_.push_back(std::move(series)); }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // Distinct labels present, in ascending order.
  std::vector<int> Labels() const;

  // Count of series per label.
  std::map<int, size_t> ClassCounts() const;

  // Length of the series if uniform, 0 otherwise.
  size_t UniformLength() const;

  // Z-normalizes every series in place.
  void ZNormalizeAll();

  // Fisher–Yates shuffle with the provided RNG.
  void Shuffle(Rng& rng);

  // Splits into (train, test) preserving per-class proportions:
  // `train_fraction` of each class goes to train (at least one exemplar per
  // class if the class is non-empty). Order within each class is preserved.
  std::pair<Dataset, Dataset> StratifiedSplit(double train_fraction) const;

 private:
  std::vector<TimeSeries> series_;
  std::string name_;
};

}  // namespace warp

#endif  // WARP_TS_DATASET_H_
