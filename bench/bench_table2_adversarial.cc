// Experiment E7 — paper Table 2, Fig. 7, Fig. 8 (accuracy failure).
//
// Three series (A, B, C): A and B are the Appendix-A adversarial pair
// (near-identical under unconstrained warping, but whose PAA-coarsened
// versions warp the opposite way); C is genuinely different. The paper
// shows Full DTW clusters {A, B} together while FastDTW_20 misjudges
// d(A, B) by orders of magnitude (0.020 -> 31.24, a 156,100% error) and
// flips the dendrogram. This harness prints both distance matrices, the
// error metric, both dendrograms, and the Fig. 8 "wrong-way warp"
// diagnostic on the 8:1 PAA-coarsened pair.
//
// Flags: --radius (20), --json=<path>.

#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_flags.h"
#include "warp/common/stopwatch.h"
#include "warp/core/approx_error.h"
#include "warp/core/distance_matrix.h"
#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/gen/adversarial.h"
#include "warp/mining/hierarchical_clustering.h"
#include "warp/common/metrics.h"
#include "warp/obs/report.h"
#include "warp/ts/paa.h"

namespace warp {
namespace bench {
namespace {

// Mean signed deviation (j - i) of a warping path: positive means the
// alignment warps "rightward" (the first series lags), negative means
// "leftward". Fig. 8's point is that the coarse pair warps the opposite
// way to the raw pair.
double MeanPathDirection(const WarpingPath& path) {
  double sum = 0.0;
  for (const PathPoint& p : path.points()) {
    sum += static_cast<double>(p.j) - static_cast<double>(p.i);
  }
  return sum / static_cast<double>(path.size());
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t radius = static_cast<size_t>(flags.GetInt("radius", 20));
  const size_t threads = SingleCoreThreadsFlag(flags);
  const std::string json_path = JsonFlag(flags);
  SimdFlag(flags);
  flags.Finalize();

  obs::BenchReport report(
      "E7 / Table 2 + Figs. 7-8",
      "Adversarial triple: Full DTW vs FastDTW distance matrices");
  report.AddConfig("threads", static_cast<int64_t>(threads));
  report.AddConfig("radius", static_cast<int64_t>(radius));

  PrintBanner("E7 / Table 2 + Figs. 7-8",
              "Adversarial triple: Full DTW vs FastDTW_20 distance "
              "matrices, dendrograms, and the wrong-way-warp diagnostic");

  const gen::AdversarialTriple triple = gen::MakeAdversarialTriple();
  const std::vector<std::vector<double>> series = {triple.a, triple.b,
                                                   triple.c};
  const std::vector<std::string> labels = {"A", "B", "C"};

  obs::MetricsSnapshot before = obs::SnapshotCounters();
  Stopwatch watch;
  const DistanceMatrix exact = ComputePairwiseMatrix(
      series, [](std::span<const double> a, std::span<const double> b) {
        return DtwDistance(a, b);
      });
  report.AddCase("full_dtw_matrix",
                 SummarizeSamples({watch.ElapsedSeconds()}),
                 obs::CountersSince(before));
  before = obs::SnapshotCounters();
  watch.Restart();
  const DistanceMatrix approx = ComputePairwiseMatrix(
      series,
      [radius](std::span<const double> a, std::span<const double> b) {
        return FastDtwDistance(a, b, radius);
      });
  report.AddCase("fastdtw_matrix",
                 SummarizeSamples({watch.ElapsedSeconds()}),
                 obs::CountersSince(before));

  std::printf("Full DTW distance matrix:\n%s\n",
              exact.ToString(labels).c_str());
  std::printf("FastDTW_%zu distance matrix:\n%s\n", radius,
              approx.ToString(labels).c_str());

  std::printf("d(A,B): exact %.4f vs FastDTW_%zu %.4f -> error %.0f%%  "
              "(paper: 0.020 vs 31.24 -> 156,100%%)\n\n",
              exact.at(0, 1), radius, approx.at(0, 1),
              ApproxErrorPercent(approx.at(0, 1), exact.at(0, 1)));

  const Dendrogram exact_tree = AgglomerativeCluster(exact, Linkage::kSingle);
  const Dendrogram approx_tree =
      AgglomerativeCluster(approx, Linkage::kSingle);
  std::printf("Fig. 7(a) dendrogram under Full DTW:\n%s",
              exact_tree.RenderAscii(labels).c_str());
  std::printf("  newick: %s\n\n", exact_tree.ToNewick(labels).c_str());
  std::printf("Fig. 7(b) dendrogram under FastDTW_%zu:\n%s", radius,
              approx_tree.RenderAscii(labels).c_str());
  std::printf("  newick: %s\n\n", approx_tree.ToNewick(labels).c_str());

  const MergeStep& exact_first = exact_tree.merges()[0];
  const bool exact_ab_first =
      (exact_first.left == 0 && exact_first.right == 1) ||
      (exact_first.left == 1 && exact_first.right == 0);
  const MergeStep& approx_first = approx_tree.merges()[0];
  const bool approx_ab_first =
      (approx_first.left == 0 && approx_first.right == 1) ||
      (approx_first.left == 1 && approx_first.right == 0);
  std::printf("Topology: Full DTW merges {A,B} first: %s; FastDTW does: %s "
              "-> flip %s\n\n",
              exact_ab_first ? "yes" : "no", approx_ab_first ? "yes" : "no",
              exact_ab_first && !approx_ab_first ? "reproduced"
                                                 : "NOT reproduced");

  // Fig. 8: direction of the optimal warp, raw vs 8:1 PAA.
  const DtwResult raw_alignment = Dtw(triple.a, triple.b);
  const std::vector<double> coarse_a = Paa(triple.a, triple.a.size() / 8);
  const std::vector<double> coarse_b = Paa(triple.b, triple.b.size() / 8);
  const DtwResult coarse_alignment = Dtw(coarse_a, coarse_b);
  const double raw_direction = MeanPathDirection(raw_alignment.path);
  const double coarse_direction = MeanPathDirection(coarse_alignment.path);
  std::printf(
      "Fig. 8 diagnostic: mean path deviation (j - i)\n"
      "  raw pair:           %+8.2f cells\n"
      "  8:1 PAA pair:       %+8.2f cells (scaled x8: %+8.2f)\n"
      "  opposite direction: %s (this is why FastDTW cannot recover)\n",
      raw_direction, coarse_direction, coarse_direction * 8.0,
      raw_direction * coarse_direction < 0.0 ? "yes" : "no");
  report.Finish(json_path);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace warp

int main(int argc, char** argv) { return warp::bench::Main(argc, argv); }
