#include "warp/common/metrics.h"

#include <mutex>
#include <vector>

namespace warp {
namespace obs {

const char* CounterName(Counter counter) {
  static constexpr const char* kNames[kNumCounters] = {
#define WARP_OBS_DECLARE_NAME(name, json_name) json_name,
      WARP_OBS_COUNTER_LIST(WARP_OBS_DECLARE_NAME)
#undef WARP_OBS_DECLARE_NAME
  };
  const size_t index = static_cast<size_t>(counter);
  return index < kNumCounters ? kNames[index] : "invalid_counter";
}

namespace {

// Global slab registry. Intentionally leaked (never destroyed) so that
// threads whose destructors run during static teardown can still touch
// their slabs safely — the same rationale as the leaky singletons in
// parallel.cc.
struct Registry {
  std::mutex mutex;
  std::vector<CounterSlab*> slabs;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace

namespace internal {

thread_local CounterSlab* local_slab = nullptr;

CounterSlab* RegisterLocalSlab() {
  // Leaked on purpose: snapshots taken after this thread exits must still
  // see its contribution, and lock-free readers may hold the pointer.
  CounterSlab* slab = new CounterSlab();
  Registry& registry = GlobalRegistry();
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.slabs.push_back(slab);
  }
  local_slab = slab;
  return slab;
}

}  // namespace internal

MetricsSnapshot operator-(const MetricsSnapshot& a, const MetricsSnapshot& b) {
  MetricsSnapshot delta;
  for (size_t i = 0; i < kNumCounters; ++i) {
    delta.values[i] = a.values[i] >= b.values[i] ? a.values[i] - b.values[i]
                                                 : uint64_t{0};
  }
  return delta;
}

MetricsSnapshot SnapshotCounters() {
  MetricsSnapshot snapshot;
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const CounterSlab* slab : registry.slabs) {
    for (size_t i = 0; i < kNumCounters; ++i) {
      snapshot.values[i] += slab->values[i].load(std::memory_order_relaxed);
    }
  }
  return snapshot;
}

MetricsSnapshot CountersSince(const MetricsSnapshot& before) {
  return SnapshotCounters() - before;
}

void ResetCounters() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (CounterSlab* slab : registry.slabs) {
    for (size_t i = 0; i < kNumCounters; ++i) {
      slab->values[i].store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace obs
}  // namespace warp
