// Router-vs-inprocess golden test: every answer the cluster router
// assembles from real worker processes must be BYTE-identical to the
// single-process `--shards=N` server — for all five query ops, at
// shards {2, 4} x threads {1, 4}, cold, from the workers' result caches,
// and under pipelined batch submission.
//
// This is the cross-process half of the determinism contract
// (docs/SERVING.md, "Multi-process cluster"): the in-process
// shard_golden_test proves shards are an execution detail within one
// process; this test proves the process boundary (FormatRequest /
// ParseResponseLine round trips, scatter stamps, shard-major gather,
// top-k re-merge) adds no observable difference either.

#include "warp/cluster/router.h"

#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "warp/cluster/supervisor.h"
#include "warp/gen/random_walk.h"
#include "warp/obs/json_writer.h"
#include "warp/serve/dataset_store.h"
#include "warp/serve/net.h"
#include "warp/serve/server.h"
#include "warp/serve/snapshot.h"

namespace warp {
namespace cluster {
namespace {

constexpr size_t kSeries = 30;
constexpr size_t kLength = 48;
constexpr uint64_t kSeed = 3;

// Writes the dataset used by every server in this file as a one-snapshot
// directory (the workers' load medium) and returns the directory.
std::string SnapshotDirOnce() {
  static const std::string dir = [] {
    const std::string path = ::testing::TempDir() + "/router_golden_snaps";
    std::filesystem::create_directories(path);
    // Any shard count works: snapshots store the global order and every
    // loader re-shards at its own count.
    serve::DatasetStore store(1);
    const auto stored =
        store.Register("d", gen::RandomWalkDataset(kSeries, kLength, kSeed),
                       {5});
    std::string error;
    EXPECT_TRUE(
        serve::SaveSnapshot(*stored, path + "/d.wsnap", &error))
        << error;
    return path;
  }();
  return dir;
}

std::string QueryLine(int64_t id, const std::string& op,
                      const std::vector<double>& query, size_t k,
                      size_t index, double threshold) {
  obs::JsonWriter writer;
  writer.BeginObject()
      .Key("id").Int(id)
      .Key("op").String(op)
      .Key("dataset").String("d");
  if (op == "knn") writer.Key("k").Uint(k);
  if (op == "range") writer.Key("threshold").Double(threshold);
  if (op == "dist" || op == "subsequence") writer.Key("index").Uint(index);
  writer.Key("query").BeginArray();
  for (double v : query) writer.Double(v);
  writer.EndArray().EndObject();
  return writer.TakeOutput();
}

// The five-op request mix every comparison uses.
std::vector<std::string> RequestMix() {
  const Dataset queries = gen::RandomWalkDataset(2, kLength, 71);
  const std::vector<double> q = queries[0].values();
  const std::vector<double> short_q(queries[1].values().begin(),
                                    queries[1].values().begin() + 16);
  return {
      QueryLine(1, "1nn", q, 0, 0, 0.0),
      QueryLine(2, "knn", q, 5, 0, 0.0),
      QueryLine(3, "range", q, 0, 0, 60.0),
      QueryLine(4, "dist", q, 0, 7, 0.0),
      QueryLine(5, "subsequence", short_q, 0, 3, 0.0),
  };
}

// Pipelined round trip over an existing connection: one write, one
// response line per request, raw bytes preserved.
std::vector<std::string> RoundTrip(serve::TcpConn& conn,
                                   const std::vector<std::string>& lines) {
  std::string payload;
  for (const std::string& line : lines) payload += line + "\n";
  EXPECT_TRUE(conn.WriteAll(payload));
  std::vector<std::string> responses;
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string line;
    if (!conn.ReadLine(&line)) {
      ADD_FAILURE() << "connection closed after " << i << " responses";
      break;
    }
    responses.push_back(std::move(line));
  }
  return responses;
}

// The single-process `--shards=N` reference answers.
std::vector<std::string> GoldenAnswers(size_t shards, size_t threads,
                                       const std::vector<std::string>& lines,
                                       size_t passes) {
  serve::ServerOptions options;
  options.shards = shards;
  options.threads = threads;
  options.cache_capacity = 64;
  serve::Server server(std::move(options));
  std::string error;
  EXPECT_TRUE(server.LoadSnapshotDir(SnapshotDirOnce(), &error)) << error;
  EXPECT_TRUE(server.Start(&error)) << error;
  std::thread serve_thread([&server] { server.Serve(); });
  serve::TcpConn conn = serve::ConnectLoopback(server.port(), &error);
  EXPECT_TRUE(conn.valid()) << error;
  std::vector<std::string> all;
  for (size_t pass = 0; pass < passes; ++pass) {
    const std::vector<std::string> responses = RoundTrip(conn, lines);
    all.insert(all.end(), responses.begin(), responses.end());
  }
  conn.Close();
  server.RequestShutdown();
  serve_thread.join();
  return all;
}

TEST(RouterGoldenTest, AnswersMatchSingleProcessBytewise) {
  const std::vector<std::string> lines = RequestMix();
  for (const size_t shards : {size_t{2}, size_t{4}}) {
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      // Two passes: pass 1 computes, pass 2 answers from the workers'
      // result caches — both must equal the single process's two passes.
      const std::vector<std::string> golden =
          GoldenAnswers(shards, threads, lines, /*passes=*/2);
      ASSERT_EQ(golden.size(), 2 * lines.size());

      SupervisorOptions sup;
      sup.shards = shards;
      sup.threads = threads;
      sup.cache_capacity = 64;
      sup.worker_binary = WARP_SERVE_PATH;
      sup.snapshot_dir = SnapshotDirOnce();
      Supervisor supervisor(sup);
      std::string error;
      ASSERT_TRUE(supervisor.Start(&error)) << error;

      Router router(RouterOptions{}, &supervisor);
      ASSERT_TRUE(router.Start(&error)) << error;
      std::thread router_thread([&router] { router.Serve(); });
      serve::TcpConn conn = serve::ConnectLoopback(router.port(), &error);
      ASSERT_TRUE(conn.valid()) << error;

      std::vector<std::string> clustered;
      for (size_t pass = 0; pass < 2; ++pass) {
        const std::vector<std::string> responses = RoundTrip(conn, lines);
        clustered.insert(clustered.end(), responses.begin(), responses.end());
      }
      ASSERT_EQ(clustered.size(), golden.size());
      for (size_t i = 0; i < golden.size(); ++i) {
        EXPECT_EQ(clustered[i], golden[i]) << "response " << i;
      }

      conn.Close();
      router.RequestShutdown();
      router_thread.join();
      supervisor.Stop();
    }
  }
}

// One-at-a-time submission (separate write per request, fresh scatter per
// line) must agree with the pipelined batch answers above — batch
// boundaries are invisible in the bytes.
TEST(RouterGoldenTest, SingleSubmissionsMatchPipelinedBatch) {
  const std::vector<std::string> lines = RequestMix();
  const std::vector<std::string> golden =
      GoldenAnswers(/*shards=*/2, /*threads=*/1, lines, /*passes=*/1);

  SupervisorOptions sup;
  sup.shards = 2;
  sup.worker_binary = WARP_SERVE_PATH;
  sup.snapshot_dir = SnapshotDirOnce();
  Supervisor supervisor(sup);
  std::string error;
  ASSERT_TRUE(supervisor.Start(&error)) << error;
  Router router(RouterOptions{}, &supervisor);
  ASSERT_TRUE(router.Start(&error)) << error;
  std::thread router_thread([&router] { router.Serve(); });
  serve::TcpConn conn = serve::ConnectLoopback(router.port(), &error);
  ASSERT_TRUE(conn.valid()) << error;

  for (size_t i = 0; i < lines.size(); ++i) {
    const std::vector<std::string> one = RoundTrip(conn, {lines[i]});
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], golden[i]) << "request " << i;
  }

  conn.Close();
  router.RequestShutdown();
  router_thread.join();
  supervisor.Stop();
}

}  // namespace
}  // namespace cluster
}  // namespace warp
