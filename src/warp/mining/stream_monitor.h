// Real-time streaming query monitor.
//
// The workload in the paper's footnote 3: Schneider et al. wondered how
// FastDTW could ever reach "real-time capability" for gesture spotting,
// while exact cDTW had been monitoring streams at millions of samples per
// second for a decade (the UCR-suite demo). This class is that primitive:
// it ingests one sample at a time, maintains the trailing window's
// running mean/stddev, and fires an event whenever the z-normalized
// trailing window matches the query under cDTW_band below a threshold —
// using the same LB_Kim -> LB_Keogh -> early-abandon cascade as offline
// search, so most samples cost O(1)..O(m) and almost none cost a DTW.

#ifndef WARP_MINING_STREAM_MONITOR_H_
#define WARP_MINING_STREAM_MONITOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "warp/common/cost.h"
#include "warp/core/dtw.h"
#include "warp/core/envelope.h"
#include "warp/ts/znorm.h"

namespace warp {

class StreamMonitor {
 public:
  struct Event {
    uint64_t end_time = 0;  // Sample index at which the window completed.
    double distance = 0.0;  // cDTW distance of the matching window.
  };

  struct Stats {
    uint64_t samples = 0;
    uint64_t windows_checked = 0;
    uint64_t pruned_by_kim = 0;
    uint64_t pruned_by_keogh = 0;
    uint64_t abandoned_dtw = 0;
    uint64_t full_dtw = 0;
    uint64_t events = 0;
  };

  // `query` is z-normalized internally; `threshold` is in the same units
  // as CdtwDistance on z-normalized series.
  StreamMonitor(std::vector<double> query, size_t band, double threshold,
                CostKind cost = CostKind::kSquared);

  // Feeds one sample; returns an event iff the window ending at this
  // sample matches. Event checks begin once `query.size()` samples have
  // been seen.
  std::optional<Event> Push(double value);

  const Stats& stats() const { return stats_; }
  uint64_t time() const { return stats_.samples; }

 private:
  std::vector<double> query_;
  Envelope query_envelope_;
  size_t band_;
  double threshold_;
  CostKind cost_;

  std::vector<double> ring_;   // Circular buffer of the last m samples.
  size_t ring_head_ = 0;       // Next write slot.
  RunningMeanStd running_;
  std::vector<double> window_; // Scratch: normalized trailing window.
  DtwWorkspace buffer_;
  Stats stats_;
};

}  // namespace warp

#endif  // WARP_MINING_STREAM_MONITOR_H_
