#include "warp/serve/request.h"

namespace warp {
namespace serve {

const char* QueryOpName(QueryOp op) {
  switch (op) {
    case QueryOp::k1Nn: return "1nn";
    case QueryOp::kKnn: return "knn";
    case QueryOp::kRange: return "range";
    case QueryOp::kDist: return "dist";
    case QueryOp::kSubsequence: return "subsequence";
  }
  return "unknown";
}

bool ParseQueryOp(const std::string& name, QueryOp* op) {
  if (name == "1nn") *op = QueryOp::k1Nn;
  else if (name == "knn") *op = QueryOp::kKnn;
  else if (name == "range") *op = QueryOp::kRange;
  else if (name == "dist") *op = QueryOp::kDist;
  else if (name == "subsequence") *op = QueryOp::kSubsequence;
  else return false;
  return true;
}

}  // namespace serve
}  // namespace warp
