#include "warp/core/fastdtw_reference.h"

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "warp/common/assert.h"
#include "warp/core/dp_engine.h"
#include "warp/core/fastdtw_common.h"
#include "warp/core/window.h"
#include "warp/common/metrics.h"
#include "warp/ts/paa.h"

namespace warp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// (i, j) cell packed into one key, offset so the scheme also accepts the
// +1-shifted DP coordinates. Only non-negative in-range cells are ever
// inserted, so 32 bits per coordinate is ample.
uint64_t Key(int64_t i, int64_t j) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(i)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(j));
}

struct Cell {
  int32_t i;
  int32_t j;
};

struct DpEntry {
  double cost = kInf;
  int32_t parent_i = 0;
  int32_t parent_j = 0;
};

// The package's __dtw: DP over an explicit cell list with a hash-map cost
// matrix and parent pointers, followed by parent-pointer traceback.
template <typename CellCostFn>
DtwResult WindowedDtwReference(size_t n, size_t m,
                               const std::vector<Cell>& window,
                               CellCostFn&& cell_cost) {
  std::unordered_map<uint64_t, DpEntry> d;
  d.reserve(window.size() * 2);
  d[Key(0, 0)] = {0.0, 0, 0};

  auto cost_at = [&d](int64_t i, int64_t j) {
    const auto it = d.find(Key(i, j));
    return it == d.end() ? kInf : it->second.cost;
  };

  // The reference iterates cells in (+1, +1)-shifted coordinates.
  for (const Cell& cell : window) {
    const int64_t i = cell.i + 1;
    const int64_t j = cell.j + 1;
    const double dt = cell_cost(static_cast<size_t>(cell.i),
                                static_cast<size_t>(cell.j));
    DpEntry entry;
    const double up = cost_at(i - 1, j);
    const double left = cost_at(i, j - 1);
    const double diag = cost_at(i - 1, j - 1);
    // min() over candidate tuples, matching the package's ordering (the
    // first minimal candidate wins: up, then left, then diagonal).
    entry.cost = up;
    entry.parent_i = static_cast<int32_t>(i - 1);
    entry.parent_j = static_cast<int32_t>(j);
    if (left < entry.cost) {
      entry.cost = left;
      entry.parent_i = static_cast<int32_t>(i);
      entry.parent_j = static_cast<int32_t>(j - 1);
    }
    if (diag < entry.cost) {
      entry.cost = diag;
      entry.parent_i = static_cast<int32_t>(i - 1);
      entry.parent_j = static_cast<int32_t>(j - 1);
    }
    entry.cost += dt;
    d[Key(i, j)] = entry;
  }

  DtwResult result;
  result.cells_visited = window.size();
  WARP_COUNT_ADD(obs::Counter::kFastDtwRefCells, window.size());
  const auto corner = d.find(Key(static_cast<int64_t>(n),
                                 static_cast<int64_t>(m)));
  WARP_CHECK_MSG(corner != d.end() && corner->second.cost < kInf,
                 "reference window admits no complete path");
  result.distance = corner->second.cost;

  int64_t i = static_cast<int64_t>(n);
  int64_t j = static_cast<int64_t>(m);
  std::vector<PathPoint> reversed;
  while (!(i == 0 && j == 0)) {
    reversed.push_back({static_cast<uint32_t>(i - 1),
                        static_cast<uint32_t>(j - 1)});
    const DpEntry& entry = d[Key(i, j)];
    i = entry.parent_i;
    j = entry.parent_j;
  }
  result.path = WarpingPath(
      std::vector<PathPoint>(reversed.rbegin(), reversed.rend()));
  return result;
}

// Base case: the full n x m matrix. A dense DP over the full window with
// the reference tie order reproduces the hash-map DP exactly — cumulative
// values are order-independent, and traceback-by-value re-derives the
// same first-minimal parent each forward pointer would have recorded — so
// the base case runs on the shared materialized engine instead.
template <typename CellCostFn>
DtwResult FullMatrixReferenceDtw(size_t n, size_t m, CellCostFn&& cell_cost) {
  auto dp_result = dp::MaterializedDp<dp::ReferenceTie>(
      n, m, WarpingWindow::Full(n, m), cell_cost,
      obs::Counter::kFastDtwRefCells);
  DtwResult result;
  result.distance = dp_result.distance;
  result.cells_visited = dp_result.cells_visited;
  result.path = WarpingPath(std::move(dp_result.path));
  return result;
}

// The package's __expand_window, structure preserved: a hash set of path
// cells expanded by radius in every direction, doubled to the next
// resolution through a second hash set, then flattened into a row-major
// cell list by scanning each row for its first contiguous run.
std::vector<Cell> ExpandWindowReference(const WarpingPath& path, size_t n,
                                        size_t m, size_t radius) {
  const int64_t r = static_cast<int64_t>(radius);
  std::unordered_set<uint64_t> expanded;
  expanded.reserve(path.size() * (2 * radius + 1) * (2 * radius + 1));
  for (const PathPoint& p : path.points()) {
    for (int64_t a = -r; a <= r; ++a) {
      for (int64_t b = -r; b <= r; ++b) {
        const int64_t i = static_cast<int64_t>(p.i) + a;
        const int64_t j = static_cast<int64_t>(p.j) + b;
        // The Python set happily stores negative cells; they can never be
        // matched by the (non-negative) scan below, so skipping them here
        // is behavior-preserving.
        if (i >= 0 && j >= 0) expanded.insert(Key(i, j));
      }
    }
  }

  std::unordered_set<uint64_t> doubled;
  doubled.reserve(expanded.size() * 4);
  for (const uint64_t key : expanded) {
    const int64_t i = static_cast<int64_t>(key >> 32);
    const int64_t j = static_cast<int64_t>(key & 0xffffffffULL);
    doubled.insert(Key(2 * i, 2 * j));
    doubled.insert(Key(2 * i, 2 * j + 1));
    doubled.insert(Key(2 * i + 1, 2 * j));
    doubled.insert(Key(2 * i + 1, 2 * j + 1));
  }

  std::vector<Cell> window;
  int64_t start_j = 0;
  int64_t last_covered_j = 0;
  for (int64_t i = 0; i < static_cast<int64_t>(n); ++i) {
    int64_t new_start_j = -1;
    for (int64_t j = start_j; j < static_cast<int64_t>(m); ++j) {
      if (doubled.count(Key(i, j)) != 0) {
        window.push_back({static_cast<int32_t>(i), static_cast<int32_t>(j)});
        last_covered_j = j;
        if (new_start_j < 0) new_start_j = j;
      } else if (new_start_j >= 0) {
        break;
      }
    }
    if (new_start_j >= 0) {
      start_j = new_start_j;
    } else {
      // Reference quirk repair: the Python package crashes when a row has
      // no projected cells (odd lengths with radius 0). Extending the
      // previous row's last column keeps the window connected without
      // changing any case the package itself survives.
      window.push_back({static_cast<int32_t>(i),
                        static_cast<int32_t>(last_covered_j)});
    }
  }
  // Same repair for a missed bottom-right corner (the DP needs it as the
  // traceback anchor): extend the last row's run rightward so the corner
  // stays connected.
  WARP_DCHECK(!window.empty() &&
              window.back().i == static_cast<int32_t>(n - 1));
  for (int32_t j = window.back().j + 1; j <= static_cast<int32_t>(m - 1);
       ++j) {
    window.push_back({static_cast<int32_t>(n - 1), j});
  }
  return window;
}

template <typename Cost>
DtwResult ReferenceFastDtw1D(std::vector<double> x, std::vector<double> y,
                             size_t radius, Cost cost) {
  auto cell_cost = [&x, &y, cost](size_t i, size_t j) {
    return cost(x[i], y[j]);
  };
  WARP_COUNT(obs::Counter::kFastDtwRefLevels);
  if (AtFastDtwBaseCase(x.size(), y.size(), radius)) {
    WARP_COUNT(obs::Counter::kFastDtwRefBaseCases);
    return FullMatrixReferenceDtw(x.size(), y.size(), cell_cost);
  }
  std::vector<double> x_shrunk = HalveByTwo(x);
  std::vector<double> y_shrunk = HalveByTwo(y);
  const DtwResult low_res = ReferenceFastDtw1D(
      std::move(x_shrunk), std::move(y_shrunk), radius, cost);
  const std::vector<Cell> window =
      ExpandWindowReference(low_res.path, x.size(), y.size(), radius);
  DtwResult refined =
      WindowedDtwReference(x.size(), y.size(), window, cell_cost);
  refined.cells_visited += low_res.cells_visited;
  return refined;
}

template <typename Cost>
DtwResult ReferenceFastDtwMulti(const MultiSeries& x, const MultiSeries& y,
                                size_t radius, Cost cost) {
  auto cell_cost = [&x, &y, cost](size_t i, size_t j) {
    double sum = 0.0;
    for (size_t c = 0; c < x.num_channels(); ++c) {
      sum += cost(x.at(c, i), y.at(c, j));
    }
    return sum;
  };
  WARP_COUNT(obs::Counter::kFastDtwRefLevels);
  if (AtFastDtwBaseCase(x.length(), y.length(), radius)) {
    WARP_COUNT(obs::Counter::kFastDtwRefBaseCases);
    return FullMatrixReferenceDtw(x.length(), y.length(), cell_cost);
  }
  const MultiSeries x_shrunk = HalveMultiByTwo(x);
  const MultiSeries y_shrunk = HalveMultiByTwo(y);
  const DtwResult low_res =
      ReferenceFastDtwMulti(x_shrunk, y_shrunk, radius, cost);
  const std::vector<Cell> window =
      ExpandWindowReference(low_res.path, x.length(), y.length(), radius);
  DtwResult refined =
      WindowedDtwReference(x.length(), y.length(), window, cell_cost);
  refined.cells_visited += low_res.cells_visited;
  return refined;
}

}  // namespace

DtwResult ReferenceFastDtw(std::span<const double> x,
                           std::span<const double> y, size_t radius,
                           CostKind cost) {
  WARP_CHECK(!x.empty() && !y.empty());
  return WithCost(cost, [&](auto c) {
    return ReferenceFastDtw1D(std::vector<double>(x.begin(), x.end()),
                              std::vector<double>(y.begin(), y.end()),
                              radius, c);
  });
}

DtwResult ReferenceMultiFastDtw(const MultiSeries& x, const MultiSeries& y,
                                size_t radius, CostKind cost) {
  WARP_CHECK(!x.empty() && !y.empty());
  WARP_CHECK(x.num_channels() == y.num_channels());
  return WithCost(cost,
                  [&](auto c) { return ReferenceFastDtwMulti(x, y, radius, c); });
}

}  // namespace warp
