// Unit tests for the literal port of the reference FastDTW package, and
// differential tests against the optimized reimplementation.

#include "warp/core/fastdtw_reference.h"

#include <vector>

#include <gtest/gtest.h>

#include "warp/core/fastdtw.h"
#include "warp/gen/adversarial.h"
#include "warp/gen/random_walk.h"

namespace warp {
namespace {

TEST(ReferenceFastDtwTest, IdenticalSeriesIsZero) {
  Rng rng(1);
  const std::vector<double> x = gen::RandomWalk(120, rng);
  const DtwResult result = ReferenceFastDtw(x, x, 1);
  EXPECT_NEAR(result.distance, 0.0, 1e-12);
  EXPECT_TRUE(result.path.IsValid(x.size(), x.size()));
}

TEST(ReferenceFastDtwTest, BaseCaseIsExactDtw) {
  Rng rng(2);
  const std::vector<double> x = gen::RandomWalk(12, rng);
  const std::vector<double> y = gen::RandomWalk(9, rng);
  EXPECT_NEAR(ReferenceFastDtw(x, y, 12).distance, DtwDistance(x, y), 1e-9);
}

TEST(ReferenceFastDtwTest, NeverUndershootsExactDtw) {
  Rng rng(3);
  for (int round = 0; round < 10; ++round) {
    const size_t n = 16 + rng.UniformInt(150);
    const size_t m = 16 + rng.UniformInt(150);
    const std::vector<double> x = gen::RandomWalk(n, rng);
    const std::vector<double> y = gen::RandomWalk(m, rng);
    const double exact = DtwDistance(x, y);
    for (size_t radius : {0u, 1u, 2u, 10u}) {
      EXPECT_GE(ReferenceFastDtw(x, y, radius).distance, exact - 1e-9)
          << "n=" << n << " m=" << m << " r=" << radius;
    }
  }
}

TEST(ReferenceFastDtwTest, PathIsValidAndCostsItsDistance) {
  Rng rng(4);
  const std::vector<double> x = gen::RandomWalk(143, rng);  // Odd length.
  const std::vector<double> y = gen::RandomWalk(200, rng);
  for (size_t radius : {0u, 1u, 5u}) {
    const DtwResult result = ReferenceFastDtw(x, y, radius);
    EXPECT_TRUE(result.path.IsValid(x.size(), y.size())) << "r=" << radius;
    EXPECT_NEAR(result.path.CostAlong(x, y), result.distance, 1e-9);
  }
}

TEST(ReferenceFastDtwTest, AgreesWithOptimizedImplementationClosely) {
  // The two implementations build their windows with slightly different
  // (but same-radius) semantics, so exact equality is not guaranteed;
  // they must agree to within a small relative tolerance across a batch.
  Rng rng(5);
  for (int round = 0; round < 8; ++round) {
    const std::vector<double> x = gen::RandomWalk(200, rng);
    const std::vector<double> y = gen::RandomWalk(200, rng);
    for (size_t radius : {1u, 5u, 20u}) {
      const double reference = ReferenceFastDtw(x, y, radius).distance;
      const double optimized = FastDtwDistance(x, y, radius);
      EXPECT_NEAR(optimized, reference,
                  0.05 * reference + 1e-6)
          << "round=" << round << " r=" << radius;
    }
  }
}

TEST(ReferenceFastDtwTest, ReproducesAdversarialFailure) {
  // The reference package fails on the Appendix-A pair the same way.
  const gen::AdversarialTriple triple = gen::MakeAdversarialTriple();
  const double exact = DtwDistance(triple.a, triple.b);
  const double reference = ReferenceFastDtw(triple.a, triple.b, 20).distance;
  EXPECT_GT(reference, 100.0 * exact);
}

TEST(ReferenceMultiFastDtwTest, SingleChannelMatchesScalar) {
  Rng rng(6);
  const std::vector<double> x = gen::RandomWalk(90, rng);
  const std::vector<double> y = gen::RandomWalk(110, rng);
  const MultiSeries mx(std::vector<std::vector<double>>{x});
  const MultiSeries my(std::vector<std::vector<double>>{y});
  EXPECT_NEAR(ReferenceMultiFastDtw(mx, my, 3).distance,
              ReferenceFastDtw(x, y, 3).distance, 1e-9);
}

TEST(ReferenceFastDtwTest, CountsMoreOverheadThanOptimized) {
  // Not a timing test (too flaky in CI); instead assert the structural
  // fact that both visit a comparable number of cells, so any speed gap
  // is pure constant factor.
  Rng rng(7);
  const std::vector<double> x = gen::RandomWalk(512, rng);
  const std::vector<double> y = gen::RandomWalk(512, rng);
  const uint64_t reference_cells =
      ReferenceFastDtw(x, y, 10).cells_visited;
  const uint64_t optimized_cells = FastDtw(x, y, 10).cells_visited;
  EXPECT_LT(reference_cells, optimized_cells * 2);
  EXPECT_GT(reference_cells, optimized_cells / 2);
}

}  // namespace
}  // namespace warp
