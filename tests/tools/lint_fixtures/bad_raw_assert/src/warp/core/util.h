#ifndef WARP_CORE_UTIL_H_
#define WARP_CORE_UTIL_H_

namespace warp {
inline void CheckPositive(int x) {
  assert(x > 0);
}
}  // namespace warp

#endif  // WARP_CORE_UTIL_H_
