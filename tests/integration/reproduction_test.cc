// The paper's claims as assertions.
//
// Scaled-down versions of every experiment's *shape check*, so the
// reproduction itself is CI-checkable: if a refactor ever breaks a claim
// (e.g. makes cDTW slower than the reference FastDTW at matched
// fidelity, or un-breaks the adversarial pair), a test fails. Timing
// assertions use generous factors (>= 2x where the measured gaps are
// 10-1000x) to stay robust on slow or noisy machines.

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "warp/common/stopwatch.h"
#include "warp/core/approx_error.h"
#include "warp/core/distance_matrix.h"
#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/core/fastdtw_reference.h"
#include "warp/gen/adversarial.h"
#include "warp/gen/chroma.h"
#include "warp/gen/fall.h"
#include "warp/gen/gesture.h"
#include "warp/gen/power_demand.h"
#include "warp/gen/random_walk.h"
#include "warp/mining/hierarchical_clustering.h"
#include "warp/ucr/ucr_metadata.h"

namespace warp {
namespace {

// Median-of-reps timing to tame scheduler noise.
double MedianSeconds(const std::function<void()>& fn, int reps = 5) {
  std::vector<double> times;
  fn();  // Warmup.
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    times.push_back(watch.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

TEST(ReproductionTest, CaseA_CdtwAtOptimalWindowBeatsReferenceFastDtw0) {
  // Fig. 1's headline at reduced N: cDTW_4 faster than FastDTW_0.
  gen::GestureOptions options;
  options.length = 473;  // Odd, ~half UWave scale.
  Rng rng(1);
  const std::vector<double> x = gen::MakeGesture(0, options, rng).values();
  const std::vector<double> y = gen::MakeGesture(1, options, rng).values();
  DtwBuffer buffer;
  const double cdtw_seconds = MedianSeconds([&] {
    CdtwDistanceFraction(x, y, 0.04, CostKind::kSquared, &buffer);
  });
  const double fastdtw_seconds = MedianSeconds([&] {
    ReferenceFastDtw(x, y, 0);
  });
  EXPECT_LT(cdtw_seconds * 2.0, fastdtw_seconds)
      << "cDTW_4 " << cdtw_seconds << "s vs reference FastDTW_0 "
      << fastdtw_seconds << "s";
}

TEST(ReproductionTest, CaseA_CdtwMaxWindowBeatsReferenceFastDtw10) {
  gen::GestureOptions options;
  options.length = 473;
  Rng rng(2);
  const std::vector<double> x = gen::MakeGesture(0, options, rng).values();
  const std::vector<double> y = gen::MakeGesture(1, options, rng).values();
  DtwBuffer buffer;
  const double cdtw_seconds = MedianSeconds([&] {
    CdtwDistanceFraction(x, y, 0.20, CostKind::kSquared, &buffer);
  });
  const double fastdtw_seconds = MedianSeconds([&] {
    ReferenceFastDtw(x, y, 10);
  });
  EXPECT_LT(cdtw_seconds * 2.0, fastdtw_seconds);
}

TEST(ReproductionTest, CaseB_CdtwBeatsBothFastDtwPorts) {
  gen::ChromaOptions options;
  options.length = 8000;  // A third of paper scale keeps CI fast.
  const auto [studio, live] = gen::MakePerformancePair(options);
  DtwBuffer buffer;
  const double cdtw_seconds = MedianSeconds([&] {
    CdtwDistanceFraction(studio, live, 0.0083, CostKind::kSquared, &buffer);
  });
  const double reference_seconds =
      MedianSeconds([&] { ReferenceFastDtw(studio, live, 10); }, 3);
  EXPECT_LT(cdtw_seconds * 2.0, reference_seconds);
}

TEST(ReproductionTest, CaseC_WideWindowStillBeatsReferenceFastDtw) {
  // At N=450 even the coarsest FastDTW_0 is only a rough tie with the
  // maximal-window exact cDTW_40 (the Fig. 4 curves start close); the
  // claim with teeth is at serviceable fidelity, where the gap is ~30x.
  Rng rng(3);
  const TimeSeries day1 = gen::MakeDishwasherNight(450, 20, rng);
  const TimeSeries day2 = gen::MakeDishwasherNight(450, 170, rng);
  DtwBuffer buffer;
  const double cdtw_seconds = MedianSeconds([&] {
    CdtwDistanceFraction(day1.view(), day2.view(), 0.40,
                         CostKind::kSquared, &buffer);
  });
  const double fastdtw_seconds = MedianSeconds([&] {
    ReferenceFastDtw(day1.view(), day2.view(), 8);
  });
  EXPECT_LT(cdtw_seconds * 2.0, fastdtw_seconds);
}

TEST(ReproductionTest, CaseD_CrossoverExistsForOptimizedPort) {
  // At small N unconstrained cDTW wins; by N ~ thousands the optimized
  // FastDTW_40 must win — the Fig. 6 crossover, bracketed.
  Rng rng(4);
  const auto [early_small, late_small] = gen::MakeFallPair(1.0, 100.0, rng);
  DtwBuffer buffer;
  const double cdtw_small = MedianSeconds([&] {
    CdtwDistance(early_small, late_small, early_small.size(),
                 CostKind::kSquared, &buffer);
  });
  const double fast_small = MedianSeconds(
      [&] { FastDtwDistance(early_small, late_small, 40); });
  EXPECT_LT(cdtw_small, fast_small) << "at N=100 exact must win";

  const auto [early_big, late_big] = gen::MakeFallPair(60.0, 100.0, rng);
  const double cdtw_big = MedianSeconds(
      [&] {
        CdtwDistance(early_big, late_big, early_big.size(),
                     CostKind::kSquared, &buffer);
      },
      3);
  const double fast_big = MedianSeconds(
      [&] { FastDtwDistance(early_big, late_big, 40); }, 3);
  EXPECT_LT(fast_big, cdtw_big) << "at N=6000 the approximation must win";
}

TEST(ReproductionTest, Table2_ErrorAndDendrogramFlip) {
  const gen::AdversarialTriple triple = gen::MakeAdversarialTriple();
  const std::vector<std::vector<double>> series = {triple.a, triple.b,
                                                   triple.c};
  const DistanceMatrix exact = ComputePairwiseMatrix(
      series, [](std::span<const double> a, std::span<const double> b) {
        return DtwDistance(a, b);
      });
  const DistanceMatrix approx = ComputePairwiseMatrix(
      series, [](std::span<const double> a, std::span<const double> b) {
        return FastDtwDistance(a, b, 20);
      });

  // Orders-of-magnitude error on (A,B); near-agreement elsewhere.
  EXPECT_GT(ApproxErrorPercent(approx.at(0, 1), exact.at(0, 1)), 10000.0);
  EXPECT_LT(ApproxErrorPercent(approx.at(0, 2), exact.at(0, 2)), 25.0);
  EXPECT_LT(ApproxErrorPercent(approx.at(1, 2), exact.at(1, 2)), 25.0);

  const MergeStep exact_first =
      AgglomerativeCluster(exact, Linkage::kSingle).merges()[0];
  const MergeStep approx_first =
      AgglomerativeCluster(approx, Linkage::kSingle).merges()[0];
  EXPECT_EQ(exact_first.left + exact_first.right, 1u);  // {A,B} = {0,1}.
  EXPECT_NE(approx_first.left + approx_first.right, 1u);
}

TEST(ReproductionTest, Fig2_ArchiveDistributionClaims) {
  size_t w_le10 = 0;
  size_t len_lt1000 = 0;
  for (const ucr::DatasetInfo& info : ucr::AllDatasets()) {
    if (info.best_window_percent <= 10) ++w_le10;
    if (info.length < 1000) ++len_lt1000;
  }
  EXPECT_GT(w_le10 * 4, 128u * 3);      // > 75% have w <= 10%.
  EXPECT_GT(len_lt1000 * 2, 128u);      // Majority shorter than 1,000.
}

TEST(ReproductionTest, FastDtwRadiusAccuracyTradeoffHolds) {
  // The original-paper claim the ICDE paper accepts: error decays in r.
  Rng rng(5);
  double error_r1 = 0.0;
  double error_r20 = 0.0;
  for (int p = 0; p < 8; ++p) {
    const std::vector<double> x = gen::RandomWalk(256, rng);
    const std::vector<double> y = gen::RandomWalk(256, rng);
    const double exact = DtwDistance(x, y);
    error_r1 += ApproxErrorPercent(FastDtwDistance(x, y, 1), exact);
    error_r20 += ApproxErrorPercent(FastDtwDistance(x, y, 20), exact);
  }
  EXPECT_LT(error_r20, error_r1);
  EXPECT_LT(error_r20 / 8.0, 5.0);  // Serviceable at r=20.
}

}  // namespace
}  // namespace warp
