#include "warp/mining/dba.h"

#include <algorithm>
#include <limits>

#include "warp/common/assert.h"
#include "warp/core/dtw.h"

namespace warp {

namespace {

size_t EffectiveBand(const DbaOptions& options, size_t length) {
  return options.band == 0 ? length : options.band;
}

double TotalCost(const std::vector<std::vector<double>>& series,
                 const std::vector<double>& average,
                 const DbaOptions& options) {
  double total = 0.0;
  DtwWorkspace buffer;
  for (const auto& s : series) {
    total += CdtwDistance(average, s,
                          EffectiveBand(options, average.size()),
                          options.cost, &buffer);
  }
  return total;
}

size_t MedoidIndex(const std::vector<std::vector<double>>& series,
                   const DbaOptions& options) {
  size_t best_index = 0;
  double best_sum = std::numeric_limits<double>::infinity();
  DtwWorkspace buffer;
  for (size_t i = 0; i < series.size(); ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < series.size(); ++j) {
      if (i == j) continue;
      sum += CdtwDistance(series[i], series[j],
                          EffectiveBand(options, series[i].size()),
                          options.cost, &buffer);
      if (sum >= best_sum) break;
    }
    if (sum < best_sum) {
      best_sum = sum;
      best_index = i;
    }
  }
  return best_index;
}

}  // namespace

DbaResult DtwBarycenterAverage(const std::vector<std::vector<double>>& series,
                               const DbaOptions& options) {
  WARP_CHECK(!series.empty());
  for (const auto& s : series) WARP_CHECK(!s.empty());

  DbaResult result;
  result.barycenter = series[MedoidIndex(series, options)];
  double previous_cost = std::numeric_limits<double>::infinity();

  std::vector<double> sums(result.barycenter.size());
  std::vector<size_t> counts(result.barycenter.size());
  for (size_t iter = 0; iter < options.iterations; ++iter) {
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);

    // Align every series to the current average and collect, for each
    // average index, all the values warped onto it.
    for (const auto& s : series) {
      const DtwResult alignment =
          Cdtw(result.barycenter, s,
               EffectiveBand(options, result.barycenter.size()),
               options.cost);
      for (const PathPoint& p : alignment.path.points()) {
        sums[p.i] += s[p.j];
        ++counts[p.i];
      }
    }
    for (size_t i = 0; i < result.barycenter.size(); ++i) {
      WARP_DCHECK(counts[i] > 0);  // Every row is on some path.
      result.barycenter[i] = sums[i] / static_cast<double>(counts[i]);
    }
    ++result.iterations_run;

    const double cost = TotalCost(series, result.barycenter, options);
    if (previous_cost - cost <
        options.convergence_threshold * std::max(1.0, previous_cost)) {
      result.total_cost = cost;
      return result;
    }
    previous_cost = cost;
  }
  result.total_cost = TotalCost(series, result.barycenter, options);
  return result;
}

}  // namespace warp
