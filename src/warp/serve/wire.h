// Wire-format JSON parsing for the serving protocol.
//
// The serving layer speaks line-delimited JSON (docs/SERVING.md). The
// library already owns a strict JSON *emitter* (warp/obs/json_writer.h);
// this is its read-side counterpart: a small recursive-descent parser for
// one complete JSON value, dependency-free, with depth and size limits so
// a hostile client cannot blow the stack or the heap. Numbers parse with
// strtod, so any double emitted by JsonWriter::FormatDouble round-trips
// to the identical bits — the property the result-cache and golden
// serving tests rely on.

#ifndef WARP_SERVE_WIRE_H_
#define WARP_SERVE_WIRE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace warp {
namespace serve {

// A parsed JSON value. Objects keep their members in a sorted map (the
// protocol never depends on member order); numbers are always doubles,
// matching the emitter.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }
  const std::map<std::string, JsonValue>& AsObject() const { return object_; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  // Typed member accessors with defaults, for flat request objects.
  double NumberOr(const std::string& key, double fallback) const;
  bool BoolOr(const std::string& key, bool fallback) const;
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// Parses exactly one JSON value spanning all of `text` (surrounding
// whitespace allowed). On failure returns false and fills *error with a
// position-annotated message; *value is unspecified.
bool ParseJson(std::string_view text, JsonValue* value, std::string* error);

}  // namespace serve
}  // namespace warp

#endif  // WARP_SERVE_WIRE_H_
