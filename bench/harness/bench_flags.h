// Minimal --key=value flag parsing for the experiment harnesses.
//
// Every bench binary accepts scaling flags (sample sizes, repetition
// counts) so the full paper-scale sweeps can be run on bigger hardware
// while the defaults finish in seconds on a laptop. Malformed arguments
// abort immediately; unknown (unconsumed) flags abort from Finalize(),
// which every binary calls after reading its flags and before doing any
// work — so typos never silently run the default configuration.

#ifndef WARP_BENCH_HARNESS_BENCH_FLAGS_H_
#define WARP_BENCH_HARNESS_BENCH_FLAGS_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include "warp/common/parallel.h"
#include "warp/simd/dispatch.h"

namespace warp {
namespace bench {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unrecognized argument: %s\n", arg.c_str());
        std::exit(2);
      }
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "true";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  ~Flags() {
    // Backstop for binaries that forgot to call Finalize(): still warn so
    // a typo is at least visible, even though the run already happened.
    for (const auto& [key, value] : values_) {
      if (consumed_.count(key) == 0) {
        std::fprintf(stderr, "warning: unknown flag --%s=%s ignored\n",
                     key.c_str(), value.c_str());
      }
    }
  }

  int64_t GetInt(const std::string& name, int64_t default_value) {
    consumed_.insert(name);
    const auto it = values_.find(name);
    return it == values_.end() ? default_value
                               : std::strtoll(it->second.c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& name, double default_value) {
    consumed_.insert(name);
    const auto it = values_.find(name);
    return it == values_.end() ? default_value
                               : std::strtod(it->second.c_str(), nullptr);
  }

  bool GetBool(const std::string& name, bool default_value) {
    consumed_.insert(name);
    const auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    return it->second != "false" && it->second != "0";
  }

  std::string GetString(const std::string& name,
                        const std::string& default_value) {
    consumed_.insert(name);
    const auto it = values_.find(name);
    return it == values_.end() ? default_value : it->second;
  }

  // Exits(2) if any provided flag was never consumed by a Get*() call.
  // Call after reading every flag and before the measurement loop, so a
  // typo fails fast instead of after minutes of benchmarking.
  void Finalize() {
    bool ok = true;
    for (const auto& [key, value] : values_) {
      if (consumed_.count(key) == 0) {
        std::fprintf(stderr, "error: unknown flag --%s=%s\n", key.c_str(),
                     value.c_str());
        ok = false;
      }
    }
    if (!ok) std::exit(2);
    finalized_ = true;
  }

  bool finalized() const { return finalized_; }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> consumed_;
  bool finalized_ = false;
};

// Shared --threads flag. Default 1 keeps every harness paper-faithful
// (single core); --threads=0 means auto (WARP_THREADS env, else
// hardware_concurrency); --threads=N uses N pool workers.
inline size_t ThreadsFlag(Flags& flags) {
  const int64_t value = flags.GetInt("threads", 1);
  return value <= 0 ? DefaultThreadCount() : static_cast<size_t>(value);
}

// Shared --threads handling for the harnesses that measure single-core by
// design (the paper's configuration). The flag is accepted and recorded in
// the report config so flag surfaces stay uniform across every bench
// binary, but a value above 1 prints a note instead of silently changing
// nothing — the harness convention is that flags never no-op quietly.
inline size_t SingleCoreThreadsFlag(Flags& flags) {
  const size_t threads = ThreadsFlag(flags);
  if (threads > 1) {
    std::fprintf(stderr,
                 "note: single-core harness; --threads=%zu is recorded in "
                 "the report but does not parallelize the measurement\n",
                 threads);
  }
  return threads;
}

// Shared --json=<path> flag: destination for the machine-readable
// warp-bench-v1 report (docs/OBSERVABILITY.md); empty means console only.
inline std::string JsonFlag(Flags& flags) {
  return flags.GetString("json", "");
}

// Shared --simd=on|off|auto flag (docs/SIMD.md). Installs the parsed
// mode process-wide and returns it; anything else is a hard usage error
// (exit 2), matching the harness convention that typos never silently
// run a default configuration.
inline simd::SimdMode SimdFlag(Flags& flags) {
  const std::string text = flags.GetString("simd", "auto");
  simd::SimdMode mode;
  if (!simd::ParseSimdMode(text, &mode)) {
    std::fprintf(stderr,
                 "error: invalid --simd=%s (expected on, off, or auto)\n",
                 text.c_str());
    std::exit(2);
  }
  simd::SetSimdMode(mode);
  return mode;
}

// Standard experiment banner so every harness's output is self-describing.
inline void PrintBanner(const char* experiment_id, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", experiment_id, description);
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace warp

#endif  // WARP_BENCH_HARNESS_BENCH_FLAGS_H_
