// warp_lint — the repository's dependency-free static analyzer.
//
// Runs the lintkit rule set (docs/STATIC_ANALYSIS.md) over the source
// tree: seven token-level convention rules plus the cross-file project
// invariants (module layering, own-header-first, counter cross-
// reference, measure coverage, bench flag wiring, test registration,
// pragma hygiene). scripts/lint.sh builds and drives this binary, so
// strict lint runs identically in CI and in the g++-only container.
//
// Usage:
//   warp_lint [--root=DIR] [--json=PATH] [--disable=rule,rule] [--quiet]
//   warp_lint --list-rules
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "warp/lintkit/analyzer.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: warp_lint [--root=DIR] [--json=PATH] [--disable=rule,rule]\n"
      "                 [--quiet] [--list-rules]\n");
  return 2;
}

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin <= list.size()) {
    const size_t comma = list.find(',', begin);
    const std::string item = list.substr(
        begin, comma == std::string::npos ? std::string::npos : comma - begin);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  warp::lintkit::AnalyzerConfig config;
  std::string json_path;
  bool quiet = false;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--root=", 0) == 0) {
      config.root = value_of("--root=");
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = value_of("--json=");
    } else if (arg.rfind("--disable=", 0) == 0) {
      for (std::string& rule : SplitCommas(value_of("--disable="))) {
        config.disabled_rules.push_back(std::move(rule));
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else {
      std::fprintf(stderr, "warp_lint: unknown argument '%s'\n", arg.c_str());
      return Usage();
    }
  }

  if (list_rules) {
    for (const warp::lintkit::RuleStatus& rule : warp::lintkit::AllRules()) {
      std::printf("%-24s %s %s\n", rule.id.c_str(),
                  rule.cross_file ? "[cross-file]" : "[token]     ",
                  rule.summary.c_str());
    }
    return 0;
  }

  const warp::lintkit::AnalyzerResult result =
      warp::lintkit::RunAnalyzer(config);

  for (const std::string& error : result.errors) {
    std::fprintf(stderr, "warp_lint: error: %s\n", error.c_str());
  }
  if (!quiet) {
    for (const warp::lintkit::Finding& finding : result.findings) {
      std::fprintf(stderr, "%s\n",
                   warp::lintkit::FormatFinding(finding).c_str());
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "warp_lint: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << warp::lintkit::ResultToJson(config, result);
  }

  std::fprintf(stderr,
               "warp_lint: %zu finding(s), %zu suppressed, %zu file(s) "
               "scanned\n",
               result.findings.size(), result.suppressed.size(),
               result.files_scanned);
  if (!result.errors.empty()) return 2;
  return result.findings.empty() ? 0 : 1;
}
