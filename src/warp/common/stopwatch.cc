#include "warp/common/stopwatch.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "warp/common/assert.h"

namespace warp {

std::string TimingSummary::ToString() const {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer),
                "%.3f ms (std %.3f, min %.3f, max %.3f, n=%d)", mean * 1e3,
                stddev * 1e3, min * 1e3, max * 1e3, repetitions);
  return buffer;
}

TimingSummary MeasureRepeated(const std::function<void()>& fn,
                              int repetitions, int warmup) {
  WARP_CHECK(repetitions > 0);
  for (int i = 0; i < warmup; ++i) fn();

  TimingSummary summary;
  summary.repetitions = repetitions;
  summary.min = std::numeric_limits<double>::infinity();
  summary.max = 0.0;

  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < repetitions; ++i) {
    Stopwatch watch;
    fn();
    const double elapsed = watch.ElapsedSeconds();
    sum += elapsed;
    sum_sq += elapsed * elapsed;
    if (elapsed < summary.min) summary.min = elapsed;
    if (elapsed > summary.max) summary.max = elapsed;
  }
  summary.total = sum;
  summary.mean = sum / repetitions;
  const double variance =
      repetitions > 1
          ? std::max(0.0, (sum_sq - sum * sum / repetitions) /
                              (repetitions - 1))
          : 0.0;
  summary.stddev = std::sqrt(variance);
  return summary;
}

}  // namespace warp
