#!/usr/bin/env bash
# Builds the tree under ThreadSanitizer (WARP_SANITIZE=thread) and runs
# the core + mining test binaries — above all the parallel-layer unit and
# determinism tests — with a 4-worker default pool, so every parallelized
# hot path is raced-checked at an oversubscribed thread count.
#
# Usage:  scripts/check_tsan.sh [build_dir]     (default: build-tsan)
set -u

BUILD_DIR="${1:-build-tsan}"
[ $# -ge 1 ] && shift  # Remaining args are forwarded to ctest.
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$BUILD_DIR" -S . -DWARP_SANITIZE=thread \
      -DWARP_BUILD_BENCHMARKS=OFF -DWARP_BUILD_EXAMPLES=OFF || exit 1
cmake --build "$BUILD_DIR" -j || exit 1

# WARP_THREADS=4 makes every threads=0 ("auto") code path take 4 workers
# even on a single-core CI host; the determinism tests additionally pin
# 1, 2, and 8 threads explicitly.
WARP_THREADS=4 ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R '^(common_parallel|mining_parallel_determinism|core_|mining_)' "$@"
status=$?

if [ $status -eq 0 ]; then
  echo "TSan check passed."
else
  echo "TSan check FAILED (exit $status)." >&2
fi
exit $status
