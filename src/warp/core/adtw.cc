#include "warp/core/adtw.h"

#include "warp/common/assert.h"
#include "warp/core/dp_engine.h"

namespace warp {

double AdtwDistance(std::span<const double> x, std::span<const double> y,
                    double omega, CostKind cost, DtwWorkspace* workspace) {
  WARP_CHECK(!x.empty() && !y.empty());
  WARP_CHECK(omega >= 0.0);

  // The engine's ADTW policy: same two-row layout as DTW (dp[j+1] =
  // D(i, j)), with the amercement added on the two non-diagonal
  // predecessors. Unconstrained, so every row spans all columns — which
  // is exactly the geometry the SIMD wavefront handles; results are
  // bitwise identical either way (docs/SIMD.md).
  return WithCost(cost, [&](auto c) {
    dp::AdtwPolicy<dp::SeriesCellCost<decltype(c)>> policy{
        {x.data(), y.data(), c}, omega};
    double wave_result;
    if (dp::TryWavefront(x.size(), y.size(), std::max(x.size(), y.size()),
                         policy, workspace, {}, &wave_result)) {
      return wave_result;
    }
    return dp::TwoRowEngine(x.size(), y.size(),
                            dp::FullRowRange{y.size() - 1}, policy, dp::kInf,
                            workspace);
  });
}

double SuggestAdtwOmega(std::span<const double> x, std::span<const double> y,
                        double ratio, CostKind cost) {
  WARP_CHECK(ratio >= 0.0);
  WARP_CHECK_MSG(x.size() == y.size(),
                 "omega suggestion uses the Euclidean per-step cost");
  const double per_step = EuclideanDistance(x, y, cost) /
                          static_cast<double>(x.size());
  return ratio * per_step;
}

}  // namespace warp
