// Name-keyed registry of the library's elastic measures.
//
// One place maps a measure name ("cdtw", "msm", "fastdtw-ref", ...) to a
// ready-to-call SeriesMeasure closure, so the CLI, the bake-off bench,
// and any mining harness enumerate and construct measures from the same
// table instead of each hand-rolling an if/else chain. Parameters that
// the call sites historically disagreed on (band as a fraction vs. an
// explicit cell count, fixed omega vs. ratio-suggested omega) are all
// expressible in MeasureParams, so every existing behavior is
// reproducible bit-for-bit through the registry.
//
// The returned closures use a thread-local DtwWorkspace for their scratch
// rows, so steady-state calls (1-NN loops, pairwise matrices) do no heap
// allocation — see DtwWorkspace in warp/core/dp_engine.h.

#ifndef WARP_CORE_MEASURE_H_
#define WARP_CORE_MEASURE_H_

#include <string>
#include <vector>

#include "warp/common/cost.h"
#include "warp/core/distance_matrix.h"

namespace warp {

// Tuning knobs. Every field has the library's documented default; call
// sites override only what their flag surface exposes.
struct MeasureParams {
  // Sakoe–Chiba band for cdtw/ddtw/lcss (and wdtw unless full-band).
  // band_cells >= 0 wins; otherwise the band is
  // llround(window_fraction * max(n, m)) per pair — the same rounding as
  // CdtwDistanceFraction.
  double window_fraction = 0.1;
  long band_cells = -1;

  double wdtw_g = 0.05;        // logistic steepness.
  bool wdtw_full_band = false; // band = series length (classic WDTW).

  // ADTW penalty: adtw_omega >= 0 uses that fixed omega; otherwise omega
  // is suggested per pair as SuggestAdtwOmega(a, b, adtw_ratio).
  double adtw_omega = -1.0;
  double adtw_ratio = 0.1;

  double lcss_epsilon = 0.1;
  double erp_gap = 0.0;
  double msm_cost = 1.0;

  size_t fastdtw_radius = 10;  // fastdtw / fastdtw-ref.

  CostKind cost = CostKind::kSquared;
};

struct MeasureInfo {
  std::string name;     // Registry key, e.g. "cdtw".
  std::string summary;  // One-line description for --help output.
  bool exact = true;    // False for the FastDTW approximations.
};

// All registered measures, in canonical (display) order.
const std::vector<MeasureInfo>& RegisteredMeasures();

bool IsRegisteredMeasure(const std::string& name);

// "ed | cdtw | dtw | ..." — for CLI help text and error messages.
std::string RegisteredMeasureNames();

// Builds the distance closure for `name` with the given parameters.
// WARP_CHECKs that the name is registered; gate with IsRegisteredMeasure
// when the name comes from user input.
SeriesMeasure MakeMeasure(const std::string& name,
                          const MeasureParams& params = {});

}  // namespace warp

#endif  // WARP_CORE_MEASURE_H_
