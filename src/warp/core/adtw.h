// Amerced Dynamic Time Warping (Herrmann & Webb, 2023).
//
// A modern exact alternative to windowing: instead of forbidding warping
// outside a band, ADTW charges a fixed additive penalty `omega` for every
// non-diagonal step. omega = 0 recovers unconstrained DTW; omega -> inf
// forces the diagonal (Euclidean distance). Like the Sakoe–Chiba w, the
// penalty expresses "a little warping is good, a lot is suspicious" — but
// smoothly, with no hard cliff. Included as an extension because it is
// the currently recommended tunable exact measure in classification
// bake-offs, and it drops into this library's engine pattern naturally.

#ifndef WARP_CORE_ADTW_H_
#define WARP_CORE_ADTW_H_

#include <span>

#include "warp/core/dtw.h"

namespace warp {

// O(n*m) time, O(m) space. `omega` must be >= 0.
double AdtwDistance(std::span<const double> x, std::span<const double> y,
                    double omega, CostKind cost = CostKind::kSquared,
                    DtwWorkspace* workspace = nullptr);

// A common heuristic for picking omega: a fraction of the average
// per-step cost, estimated from the Euclidean distance of a sample pair.
// ratio in [0, 1]: 0 -> full DTW behavior, 1 -> strongly diagonal.
double SuggestAdtwOmega(std::span<const double> x, std::span<const double> y,
                        double ratio, CostKind cost = CostKind::kSquared);

}  // namespace warp

#endif  // WARP_CORE_ADTW_H_
