// Unit tests for the best-window LOOCV search.

#include "warp/mining/window_search.h"

#include <gtest/gtest.h>

#include "warp/gen/gesture.h"

namespace warp {
namespace {

TEST(WindowSearchTest, LoocvAccuracyPerfectOnTrivialData) {
  Dataset dataset;
  for (int i = 0; i < 4; ++i) {
    dataset.Add(TimeSeries({0.0, 0.0, 0.0, static_cast<double>(i) * 0.01}, 0));
    dataset.Add(TimeSeries({9.0, 9.0, 9.0, 9.0 + i * 0.01}, 1));
  }
  EXPECT_DOUBLE_EQ(LoocvAccuracy(dataset, 0), 1.0);
  EXPECT_DOUBLE_EQ(LoocvAccuracy(dataset, 2), 1.0);
}

TEST(WindowSearchTest, SweepsRequestedBands) {
  gen::GestureOptions options;
  options.length = 48;
  options.num_classes = 2;
  options.seed = 121;
  const Dataset dataset = gen::MakeGestureDataset(5, options);
  const WindowSearchResult result = FindBestWindowLoocv(dataset, 8, 2);
  EXPECT_EQ(result.bands, (std::vector<size_t>{0, 2, 4, 6, 8}));
  EXPECT_EQ(result.accuracy_by_band.size(), 5u);
  EXPECT_GE(result.best_accuracy, 0.0);
  EXPECT_LE(result.best_accuracy, 1.0);
}

TEST(WindowSearchTest, BestBandAchievesReportedAccuracy) {
  gen::GestureOptions options;
  options.length = 64;
  options.num_classes = 3;
  options.warp_fraction = 0.08;
  options.seed = 122;
  const Dataset dataset = gen::MakeGestureDataset(4, options);
  const WindowSearchResult result = FindBestWindowLoocv(dataset, 10, 5);
  EXPECT_DOUBLE_EQ(LoocvAccuracy(dataset, result.best_band),
                   result.best_accuracy);
  // The reported best really is the max of the sweep.
  for (double accuracy : result.accuracy_by_band) {
    EXPECT_LE(accuracy, result.best_accuracy);
  }
}

TEST(WindowSearchTest, TiesPreferSmallerBand) {
  Dataset dataset;
  for (int i = 0; i < 3; ++i) {
    dataset.Add(TimeSeries({0.0, 0.1 * i, 0.0}, 0));
    dataset.Add(TimeSeries({5.0, 5.0 + 0.1 * i, 5.0}, 1));
  }
  // Trivially separable at every band, so accuracy ties at 1.0 everywhere.
  const WindowSearchResult result = FindBestWindowLoocv(dataset, 3);
  EXPECT_EQ(result.best_band, 0u);
}

TEST(WindowSearchTest, WindowPercentHelper) {
  WindowSearchResult result;
  result.best_band = 5;
  EXPECT_DOUBLE_EQ(result.best_window_percent(100), 5.0);
}

TEST(WindowSearchTest, WarpedClassesNeedNonZeroWindow) {
  // With heavy within-class warping and near-identical class shapes,
  // Euclidean (band 0) should do worse than a modest window.
  gen::GestureOptions options;
  options.length = 80;
  options.num_classes = 2;
  options.warp_fraction = 0.15;
  options.noise_stddev = 0.02;
  options.seed = 123;
  const Dataset dataset = gen::MakeGestureDataset(8, options);
  const double at_zero = LoocvAccuracy(dataset, 0);
  const double at_twelve = LoocvAccuracy(dataset, 12);
  EXPECT_GE(at_twelve, at_zero);
}

}  // namespace
}  // namespace warp
