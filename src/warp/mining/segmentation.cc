#include "warp/mining/segmentation.h"

#include <algorithm>
#include <cmath>

#include "warp/common/assert.h"

namespace warp {

namespace {

// Least-squares line fit over series[begin..end], returning a Segment.
Segment FitSegment(std::span<const double> series, size_t begin,
                   size_t end) {
  WARP_DCHECK(begin <= end && end < series.size());
  Segment segment;
  segment.begin = begin;
  segment.end = end;
  const size_t count = end - begin + 1;
  if (count == 1) {
    segment.intercept = series[begin];
    return segment;
  }
  // x runs 0..count-1 relative to `begin`.
  double sum_x = 0.0;
  double sum_y = 0.0;
  double sum_xx = 0.0;
  double sum_xy = 0.0;
  for (size_t k = 0; k < count; ++k) {
    const double x = static_cast<double>(k);
    const double y = series[begin + k];
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_xy += x * y;
  }
  const double n = static_cast<double>(count);
  const double denom = n * sum_xx - sum_x * sum_x;
  segment.slope = denom != 0.0 ? (n * sum_xy - sum_x * sum_y) / denom : 0.0;
  segment.intercept = (sum_y - segment.slope * sum_x) / n;
  for (size_t k = 0; k < count; ++k) {
    const double residual =
        series[begin + k] -
        (segment.intercept + segment.slope * static_cast<double>(k));
    segment.error += residual * residual;
  }
  return segment;
}

}  // namespace

std::vector<Segment> BottomUpSegmentation(std::span<const double> series,
                                          const SegmentationOptions& options) {
  WARP_CHECK(series.size() >= 2);
  WARP_CHECK(options.max_segments >= 1);

  // Seed: segments of two points (last one may take three).
  std::vector<Segment> segments;
  for (size_t begin = 0; begin + 1 < series.size(); begin += 2) {
    const size_t end =
        (begin + 3 >= series.size()) ? series.size() - 1 : begin + 1;
    segments.push_back(FitSegment(series, begin, end));
    if (end == series.size() - 1) break;
  }

  // Merge cost of joining segments[i] and segments[i+1].
  auto merged = [&](size_t i) {
    return FitSegment(series, segments[i].begin, segments[i + 1].end);
  };

  std::vector<Segment> merge_result;
  merge_result.reserve(segments.size());
  while (segments.size() > options.max_segments) {
    size_t best_index = 0;
    double best_error = std::numeric_limits<double>::infinity();
    Segment best_merge;
    for (size_t i = 0; i + 1 < segments.size(); ++i) {
      const Segment candidate = merged(i);
      const double increase =
          candidate.error - segments[i].error - segments[i + 1].error;
      if (increase < best_error) {
        best_error = increase;
        best_index = i;
        best_merge = candidate;
      }
    }
    if (best_merge.error > options.max_segment_error) break;
    segments[best_index] = best_merge;
    segments.erase(segments.begin() + static_cast<ptrdiff_t>(best_index) + 1);
  }
  return segments;
}

std::vector<double> ReconstructFromSegments(
    const std::vector<Segment>& segments) {
  WARP_CHECK(!segments.empty());
  std::vector<double> out;
  out.reserve(segments.back().end + 1);
  for (const Segment& segment : segments) {
    WARP_CHECK_MSG(segment.begin == out.size(),
                   "segments must tile the series contiguously");
    for (size_t index = segment.begin; index <= segment.end; ++index) {
      out.push_back(segment.ValueAt(index));
    }
  }
  return out;
}

double TotalSegmentationError(const std::vector<Segment>& segments) {
  double total = 0.0;
  for (const Segment& segment : segments) total += segment.error;
  return total;
}

}  // namespace warp
