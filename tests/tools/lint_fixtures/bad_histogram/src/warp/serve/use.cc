#include "warp/obs/histogram.h"

namespace warp {
void ServeTick() {
  obs::Bump(obs::Counter::kUsed);
  obs::RecordValue(obs::Histogram::kRecorded, 7);
  obs::RecordValue(obs::Histogram::kPhantomHist, 7);
  obs::GaugeAdd(obs::Gauge::kDepth, 1);
  obs::GaugeAdd(obs::Gauge::kPhantomGauge, -1);
}
}  // namespace warp
