// Experiment companion — the "bake-off" framing of the paper's refs
// [1]-[5].
//
// The paper's premise is that "extensive empirical bake-offs have
// confirmed" cDTW as the measure to beat. This harness runs the bake-off
// on this library's own measures: 1-NN accuracy and total classification
// time for every distance in the suite, on two synthetic domains
// (gestures and ECG beats) whose within-class variation is a bounded time
// warp — i.e., data where elasticity should matter.
//
// Flags: --length (128), --train (6), --test (10), --classes (6),
//        --warp (0.1), --noise (0.45), --json=<path>.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "harness/bench_flags.h"
#include "warp/common/stopwatch.h"
#include "warp/common/table_printer.h"
#include "warp/core/measure.h"
#include "warp/gen/ecg.h"
#include "warp/gen/gesture.h"
#include "warp/mining/nn_classifier.h"
#include "warp/common/metrics.h"
#include "warp/obs/report.h"
#include "warp/simd/dispatch.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace bench {
namespace {

struct MeasureSpec {
  std::string name;
  SeriesMeasure measure;
  bool exact = true;
};

// The bake-off enumerates the measure registry (warp/core/measure.h), so
// a newly registered measure shows up here automatically; only the
// display name and the per-measure tuning below are bake-off-specific.
std::vector<MeasureSpec> MakeMeasures(size_t length) {
  const size_t band = std::max<size_t>(1, length / 10);
  std::vector<MeasureSpec> measures;
  for (const MeasureInfo& info : RegisteredMeasures()) {
    MeasureParams params;
    params.band_cells = static_cast<long>(band);
    std::string display = info.name;
    if (info.name == "ed") {
      display = "Euclidean";
    } else if (info.name == "cdtw") {
      display = "cDTW_10%";
    } else if (info.name == "dtw") {
      display = "Full DTW";
    } else if (info.name == "ddtw") {
      display = "DDTW_10%";
    } else if (info.name == "wdtw") {
      display = "WDTW g=0.1";
      params.wdtw_g = 0.1;
      params.wdtw_full_band = true;
    } else if (info.name == "adtw") {
      display = "ADTW";  // omega suggested per pair at ratio 0.1.
    } else if (info.name == "lcss") {
      display = "LCSS e=0.3";
      params.lcss_epsilon = 0.3;
    } else if (info.name == "erp") {
      display = "ERP g=0";
    } else if (info.name == "msm") {
      display = "MSM c=0.5";
      params.msm_cost = 0.5;
    } else if (info.name == "fastdtw") {
      display = "FastDTW_10";
    } else if (info.name == "fastdtw-ref") {
      display = "FastDTW_ref_10";
    }
    measures.push_back({display, MakeMeasure(info.name, params), info.exact});
  }
  return measures;
}

void RunDomain(obs::BenchReport& report, const char* domain,
               const Dataset& train, const Dataset& test, size_t length,
               simd::SimdMode simd_mode) {
  // SIMD A/B (docs/SIMD.md): unless the run is already pinned scalar,
  // every measure is timed twice — once under the requested mode
  // (primary row) and once pinned to the scalar paths ("<name>/scalar"
  // in the JSON) — so one run reports the vectorization speedup.
  const bool ab_scalar = simd_mode != simd::SimdMode::kOff;
  std::printf("\n%s (%zu train / %zu test, N=%zu):\n", domain, train.size(),
              test.size(), length);
  TablePrinter table({"measure", "accuracy (%)", "time (s)", "scalar (s)",
                      "simd speedup", "kind"});
  for (const MeasureSpec& spec : MakeMeasures(length)) {
    const obs::MetricsSnapshot before = obs::SnapshotCounters();
    const ClassificationStats stats =
        Evaluate1Nn(train, test, spec.measure);
    report.AddCase(std::string(domain) + "/" + spec.name,
                   SummarizeSamples({stats.seconds}),
                   obs::CountersSince(before));
    std::string scalar_text = "-";
    std::string speedup_text = "-";
    if (ab_scalar) {
      const simd::ScopedSimdMode off(simd::SimdMode::kOff);
      const obs::MetricsSnapshot scalar_before = obs::SnapshotCounters();
      const ClassificationStats scalar_stats =
          Evaluate1Nn(train, test, spec.measure);
      report.AddCase(std::string(domain) + "/" + spec.name + "/scalar",
                     SummarizeSamples({scalar_stats.seconds}),
                     obs::CountersSince(scalar_before));
      scalar_text = TablePrinter::FormatDouble(scalar_stats.seconds, 2);
      speedup_text =
          TablePrinter::FormatDouble(scalar_stats.seconds / stats.seconds, 2) +
          "x";
    }
    table.AddRow({spec.name,
                  TablePrinter::FormatDouble(stats.accuracy * 100.0, 1),
                  TablePrinter::FormatDouble(stats.seconds, 2), scalar_text,
                  speedup_text, spec.exact ? "exact" : "approximate"});
  }
  table.Print();
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t length = static_cast<size_t>(flags.GetInt("length", 128));
  const size_t per_class_train =
      static_cast<size_t>(flags.GetInt("train", 6));
  const size_t per_class_test = static_cast<size_t>(flags.GetInt("test", 10));
  const int classes = static_cast<int>(flags.GetInt("classes", 6));
  const double warp = flags.GetDouble("warp", 0.1);
  const double noise = flags.GetDouble("noise", 0.45);
  const size_t threads = SingleCoreThreadsFlag(flags);
  const std::string json_path = JsonFlag(flags);
  const simd::SimdMode simd_mode = SimdFlag(flags);
  flags.Finalize();

  obs::BenchReport report(
      "Bake-off", "1-NN accuracy and time for every measure in the suite");
  report.AddConfig("threads", static_cast<int64_t>(threads));
  report.AddConfig("length", static_cast<int64_t>(length));
  report.AddConfig("train", static_cast<int64_t>(per_class_train));
  report.AddConfig("test", static_cast<int64_t>(per_class_test));
  report.AddConfig("classes", classes);
  report.AddConfig("warp", warp);
  report.AddConfig("noise", noise);
  report.AddConfig("simd", simd::SimdModeName(simd_mode));
  report.AddConfig("simd_backend", simd::SimdBackendName());

  PrintBanner("Bake-off",
              "1-NN accuracy and time for every measure in the suite "
              "(the refs [1]-[5] framing)");

  // Domain 1: gestures.
  gen::GestureOptions gesture_options;
  gesture_options.length = length;
  gesture_options.num_classes = classes;
  gesture_options.warp_fraction = warp;
  gesture_options.noise_stddev = noise;
  gesture_options.seed = 808;
  const Dataset gesture_pool = gen::MakeGestureDataset(
      per_class_train + per_class_test, gesture_options);
  Dataset gesture_train;
  Dataset gesture_test;
  const size_t pool_per_class = per_class_train + per_class_test;
  for (size_t i = 0; i < gesture_pool.size(); ++i) {
    (i % pool_per_class < per_class_train ? gesture_train : gesture_test)
        .Add(gesture_pool[i]);
  }
  RunDomain(report, "Gestures", gesture_train, gesture_test, length,
            simd_mode);

  // Domain 2: ECG beats (normal vs PVC).
  gen::EcgOptions ecg_options;
  ecg_options.beat_length = length;
  ecg_options.noise_stddev = 0.12;
  ecg_options.seed = 909;
  const Dataset ecg_pool =
      gen::MakeBeatDataset(per_class_train + per_class_test, ecg_options);
  const auto [ecg_train, ecg_test] = ecg_pool.StratifiedSplit(
      static_cast<double>(per_class_train) /
      static_cast<double>(per_class_train + per_class_test));
  RunDomain(report, "ECG beats", ecg_train, ecg_test, length, simd_mode);

  std::printf(
      "\nReading guide: the elastic measures cluster at the top on warped "
      "data, with cDTW_10%% among the fastest of them — the bake-off "
      "consensus the paper builds on. The two FastDTW rows are the only "
      "approximate entries, and both approximate the *unconstrained* "
      "variant.\n");
  report.Finish(json_path);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace warp

int main(int argc, char** argv) { return warp::bench::Main(argc, argv); }
