// Tests for the work-counter registry: hand-counted cell totals,
// thread-merge determinism, and the no-behavior-change guarantee.

#include "warp/common/metrics.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "warp/common/parallel.h"
#include "warp/core/dtw.h"
#include "warp/core/envelope.h"
#include "warp/core/fastdtw.h"
#include "warp/gen/random_walk.h"

namespace warp {
namespace obs {
namespace {

TEST(MetricsTest, CounterNamesAreUniqueAndNonEmpty) {
  for (size_t i = 0; i < kNumCounters; ++i) {
    const char* name = CounterName(static_cast<Counter>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::strlen(name), 0u);
    for (size_t j = 0; j < i; ++j) {
      EXPECT_STRNE(name, CounterName(static_cast<Counter>(j)));
    }
  }
}

TEST(MetricsTest, SnapshotDifferenceSaturatesAtZero) {
  MetricsSnapshot a;
  MetricsSnapshot b;
  a.values[0] = 10;
  b.values[0] = 3;
  b.values[1] = 5;  // Larger than a's 0: must clamp, not wrap.
  const MetricsSnapshot d = a - b;
  EXPECT_EQ(d.values[0], 7u);
  EXPECT_EQ(d.values[1], 0u);
}

TEST(MetricsTest, FullDtwCountsExactlyNTimesMCells) {
  if (!kProfilingEnabled) GTEST_SKIP() << "built with WARP_PROFILE=OFF";
  const std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y = {0.0, 1.0, 2.0};
  const MetricsSnapshot before = SnapshotCounters();
  DtwDistance(x, y);
  const MetricsSnapshot delta = CountersSince(before);
  // Full DTW evaluates every cell of the 4x3 matrix.
  EXPECT_EQ(delta[Counter::kDtwCells], 12u);
}

TEST(MetricsTest, BandedDtwCountsExactlyTheBandCells) {
  if (!kProfilingEnabled) GTEST_SKIP() << "built with WARP_PROFILE=OFF";
  Rng rng(7);
  const std::vector<double> x = gen::RandomWalk(8, rng);
  const std::vector<double> y = gen::RandomWalk(8, rng);
  const MetricsSnapshot before = SnapshotCounters();
  CdtwDistance(x, y, 1);
  const MetricsSnapshot delta = CountersSince(before);
  // Band 1 on an 8x8 grid: rows 0 and 7 have 2 in-band cells, the six
  // middle rows have 3 -> 2 + 6*3 + 2 = 22.
  EXPECT_EQ(delta[Counter::kDtwCells], 22u);
}

TEST(MetricsTest, FastDtwCounterMatchesResultCellsVisited) {
  if (!kProfilingEnabled) GTEST_SKIP() << "built with WARP_PROFILE=OFF";
  Rng rng(11);
  const std::vector<double> x = gen::RandomWalk(200, rng);
  const std::vector<double> y = gen::RandomWalk(200, rng);
  const MetricsSnapshot before = SnapshotCounters();
  const DtwResult result = FastDtw(x, y, 4);
  const MetricsSnapshot delta = CountersSince(before);
  EXPECT_EQ(delta[Counter::kFastDtwCells], result.cells_visited);
  EXPECT_GT(delta[Counter::kFastDtwLevels], 0u);
  EXPECT_GT(delta[Counter::kFastDtwBaseCases], 0u);
}

TEST(MetricsTest, EnvelopeCountsBuildsAndPoints) {
  if (!kProfilingEnabled) GTEST_SKIP() << "built with WARP_PROFILE=OFF";
  Rng rng(13);
  const std::vector<double> x = gen::RandomWalk(64, rng);
  const MetricsSnapshot before = SnapshotCounters();
  ComputeEnvelope(x, 5);
  ComputeEnvelope(x, 9);
  const MetricsSnapshot delta = CountersSince(before);
  EXPECT_EQ(delta[Counter::kEnvelopeBuilds], 2u);
  EXPECT_EQ(delta[Counter::kEnvelopePoints], 128u);
}

// The same total work split across 1, 2, and 8 threads must merge to
// bitwise-identical counter totals: the slabs are summed with unsigned
// addition, which is order-independent.
uint64_t CountCellsAcrossThreads(size_t num_threads, size_t jobs) {
  const MetricsSnapshot before = SnapshotCounters();
  std::vector<std::thread> workers;
  for (size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([t, num_threads, jobs] {
      Rng rng(17);
      const std::vector<double> x = gen::RandomWalk(32, rng);
      const std::vector<double> y = gen::RandomWalk(32, rng);
      for (size_t j = t; j < jobs; j += num_threads) {
        DtwDistance(x, y);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  return CountersSince(before)[Counter::kDtwCells];
}

TEST(MetricsTest, MergeIsIdenticalAtOneTwoAndEightThreads) {
  if (!kProfilingEnabled) GTEST_SKIP() << "built with WARP_PROFILE=OFF";
  constexpr size_t kJobs = 40;
  const uint64_t serial = CountCellsAcrossThreads(1, kJobs);
  EXPECT_EQ(serial, kJobs * 32u * 32u);
  EXPECT_EQ(CountCellsAcrossThreads(2, kJobs), serial);
  EXPECT_EQ(CountCellsAcrossThreads(8, kJobs), serial);
}

// Counting must never change results: the distance computed with
// counters accumulating is bitwise-equal across serial and pooled runs.
TEST(MetricsTest, CountingDoesNotPerturbResults) {
  Rng rng(23);
  const std::vector<double> x = gen::RandomWalk(128, rng);
  const std::vector<double> y = gen::RandomWalk(128, rng);
  const double serial = CdtwDistance(x, y, 12);
  for (const size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<double> results(16);
    ParallelFor(&pool, 0, results.size(), 1,
                [&](size_t begin, size_t end, size_t) {
                  for (size_t i = begin; i < end; ++i) {
                    results[i] = CdtwDistance(x, y, 12);
                  }
                });
    for (const double r : results) {
      EXPECT_EQ(r, serial);
    }
  }
}

TEST(MetricsTest, OffBuildSnapshotsStayZero) {
  if (kProfilingEnabled) GTEST_SKIP() << "needs WARP_PROFILE=OFF";
  Rng rng(29);
  const std::vector<double> x = gen::RandomWalk(32, rng);
  const MetricsSnapshot before = SnapshotCounters();
  DtwDistance(x, x);
  const MetricsSnapshot delta = CountersSince(before);
  for (size_t i = 0; i < kNumCounters; ++i) {
    EXPECT_EQ(delta.values[i], 0u);
  }
}

}  // namespace
}  // namespace obs
}  // namespace warp
