#include "warp/mining/anomaly.h"

#include <limits>
#include <vector>

#include "warp/common/assert.h"
#include "warp/core/dtw.h"
#include "warp/ts/znorm.h"

namespace warp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Discord FindTopDiscord(std::span<const double> series, size_t m, size_t band,
                       CostKind cost, size_t stride, DiscordStats* stats) {
  WARP_CHECK(m >= 2);
  WARP_CHECK(stride >= 1);
  WARP_CHECK_MSG(series.size() >= 2 * m,
                 "series must contain at least two non-overlapping windows");
  const size_t num_windows = series.size() - m + 1;

  // Materialize z-normalized windows once; discords are defined on
  // normalized subsequences (shape anomalies, not level anomalies).
  std::vector<std::vector<double>> windows;
  windows.reserve((num_windows + stride - 1) / stride);
  std::vector<size_t> positions;
  for (size_t pos = 0; pos < num_windows; pos += stride) {
    windows.push_back(
        ZNormalized(series.subspan(pos, m)));
    positions.push_back(pos);
  }

  Discord best;
  best.nn_distance = -1.0;
  DtwWorkspace buffer;
  for (size_t a = 0; a < windows.size(); ++a) {
    if (stats != nullptr) ++stats->candidates;
    double nn = kInf;
    size_t nn_index = a;
    bool abandoned = false;
    for (size_t b = 0; b < windows.size(); ++b) {
      const size_t gap = positions[a] > positions[b]
                             ? positions[a] - positions[b]
                             : positions[b] - positions[a];
      if (gap < m) continue;  // Self-match exclusion.
      if (stats != nullptr) ++stats->distance_calls;
      // Early-abandon at the candidate's current NN bound: any tighter
      // neighbor only lowers nn further.
      const double d = band == 0
                           ? EuclideanDistanceAbandoning(windows[a],
                                                         windows[b], nn, cost)
                           : CdtwDistanceAbandoning(windows[a], windows[b],
                                                    band, nn, cost, &buffer);
      if (d < nn) {
        nn = d;
        nn_index = b;
      }
      // If this candidate's NN is already closer than the best discord's,
      // it cannot be the discord.
      if (nn <= best.nn_distance) {
        abandoned = true;
        break;
      }
    }
    if (abandoned) {
      if (stats != nullptr) ++stats->abandoned_candidates;
      continue;
    }
    if (nn > best.nn_distance && nn < kInf) {
      best.nn_distance = nn;
      best.position = positions[a];
      best.nn_position = positions[nn_index];
    }
  }
  WARP_CHECK_MSG(best.nn_distance >= 0.0, "no discord candidate evaluated");
  return best;
}

Motif FindTopMotif(std::span<const double> series, size_t m, size_t band,
                   CostKind cost, size_t stride, DiscordStats* stats) {
  WARP_CHECK(m >= 2);
  WARP_CHECK(stride >= 1);
  WARP_CHECK_MSG(series.size() >= 2 * m,
                 "series must contain at least two non-overlapping windows");
  const size_t num_windows = series.size() - m + 1;

  std::vector<std::vector<double>> windows;
  std::vector<size_t> positions;
  for (size_t pos = 0; pos < num_windows; pos += stride) {
    windows.push_back(ZNormalized(series.subspan(pos, m)));
    positions.push_back(pos);
  }

  Motif best;
  best.distance = kInf;
  DtwWorkspace buffer;
  for (size_t a = 0; a < windows.size(); ++a) {
    if (stats != nullptr) ++stats->candidates;
    for (size_t b = a + 1; b < windows.size(); ++b) {
      if (positions[b] - positions[a] < m) continue;  // Overlap exclusion.
      if (stats != nullptr) ++stats->distance_calls;
      // Early-abandon above the best pair found so far.
      const double d =
          band == 0 ? EuclideanDistanceAbandoning(windows[a], windows[b],
                                                  best.distance, cost)
                    : CdtwDistanceAbandoning(windows[a], windows[b], band,
                                             best.distance, cost, &buffer);
      if (d < best.distance) {
        best.distance = d;
        best.position_a = positions[a];
        best.position_b = positions[b];
      }
    }
  }
  WARP_CHECK_MSG(best.distance < kInf, "no motif pair evaluated");
  return best;
}

}  // namespace warp
