// One-nearest-neighbor time-series classification.
//
// 1-NN with a DTW-family distance is the reference classifier throughout
// the paper (the UCR archive error rates in Section 3.1, the Appendix-B
// gesture experiment). Two engines are provided:
//
//   * Generic brute force over any SeriesMeasure — the honest baseline and
//     the harness FastDTW plugs into.
//   * An accelerated *exact* cDTW_w classifier using the full cascade the
//     paper alludes to (LB_Kim -> LB_Keogh both ways -> early-abandoning
//     DTW), demonstrating the "further two orders of magnitude" available
//     only to exact DTW.

#ifndef WARP_MINING_NN_CLASSIFIER_H_
#define WARP_MINING_NN_CLASSIFIER_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "warp/common/cost.h"
#include "warp/core/distance_matrix.h"
#include "warp/core/envelope.h"
#include "warp/ts/dataset.h"
#include "warp/ts/multi_series.h"

namespace warp {

struct DtwWorkspace;

struct Prediction {
  int label = TimeSeries::kUnlabeled;
  size_t nn_index = 0;
  double distance = 0.0;
};

struct ClassificationStats {
  size_t total = 0;
  size_t correct = 0;
  double accuracy = 0.0;
  double error_rate = 0.0;
  double seconds = 0.0;
  // Accelerated engine only: how far each candidate got in the cascade.
  uint64_t candidates = 0;
  uint64_t pruned_by_kim = 0;
  uint64_t pruned_by_keogh = 0;
  uint64_t abandoned_dtw = 0;
  uint64_t full_dtw = 0;
};

// ---------------------------------------------------------------------------
// Generic brute-force engine.

Prediction Classify1Nn(const Dataset& train, std::span<const double> query,
                       const SeriesMeasure& measure);

// All Evaluate* functions accept a thread count: 1 (default) runs the
// historical serial loop on the calling thread; N > 1 fans the test
// queries out over a ThreadPool in fixed-size chunks, with per-chunk
// results merged in chunk order so every field of the returned stats
// (except wall-clock seconds) is bitwise-identical at any thread count.
// 0 = DefaultThreadCount(). When threads > 1 the measure is invoked
// concurrently and must be thread-safe.
ClassificationStats Evaluate1Nn(const Dataset& train, const Dataset& test,
                                const SeriesMeasure& measure,
                                size_t threads = 1);

// k-NN with majority vote; ties go to the class of the nearest neighbor
// among the tied classes. k = 1 reduces exactly to Classify1Nn. The
// returned Prediction's nn_index/distance refer to the overall nearest
// neighbor, label to the vote winner.
Prediction ClassifyKnn(const Dataset& train, std::span<const double> query,
                       size_t k, const SeriesMeasure& measure);

ClassificationStats EvaluateKnn(const Dataset& train, const Dataset& test,
                                size_t k, const SeriesMeasure& measure,
                                size_t threads = 1);

// Multichannel variant (Appendix B).
using MultiMeasure =
    std::function<double(const MultiSeries&, const MultiSeries&)>;

Prediction Classify1NnMulti(const std::vector<MultiSeries>& train,
                            const MultiSeries& query,
                            const MultiMeasure& measure);

ClassificationStats Evaluate1NnMulti(const std::vector<MultiSeries>& train,
                                     const std::vector<MultiSeries>& test,
                                     const MultiMeasure& measure,
                                     size_t threads = 1);

// ---------------------------------------------------------------------------
// Accelerated exact cDTW_w engine.

class AcceleratedNnClassifier {
 public:
  // Copies the training set and precomputes per-exemplar envelopes.
  // All series (train and later queries) must share one length.
  AcceleratedNnClassifier(const Dataset& train, size_t band,
                          CostKind cost = CostKind::kSquared);

  // Classifies against a thread-local reusable DtwWorkspace, so repeated
  // queries on one thread allocate nothing in steady state.
  Prediction Classify(std::span<const double> query,
                      ClassificationStats* stats = nullptr) const;

  // As above with a caller-owned workspace (e.g. a PerThread<DtwWorkspace>
  // slot); the cascade's DTW rung reuses it across candidates.
  Prediction Classify(std::span<const double> query,
                      ClassificationStats* stats,
                      DtwWorkspace* workspace) const;

  // Exact accelerated k-NN: the cascade prunes against the k-th best
  // distance so far, so correctness is preserved for any k.
  Prediction ClassifyKnn(std::span<const double> query, size_t k,
                         ClassificationStats* stats = nullptr) const;

  // threads as for Evaluate1Nn: parallelism is over test queries, each
  // worker reuses a private DtwWorkspace, and the cascade counters are
  // summed in chunk order — bitwise-identical stats at any thread count.
  ClassificationStats Evaluate(const Dataset& test, size_t threads = 1) const;

  size_t band() const { return band_; }

 private:

  Dataset train_;
  size_t band_;
  CostKind cost_;
  size_t length_;
  std::vector<Envelope> train_envelopes_;
  // Contiguous first/last elements of every training series, so the
  // cascade's LB_Kim rung can be evaluated for whole candidate blocks in
  // vector lanes (warp/simd/batch.h).
  std::vector<double> heads_;
  std::vector<double> tails_;
};

}  // namespace warp

#endif  // WARP_MINING_NN_CLASSIFIER_H_
