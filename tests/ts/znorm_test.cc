// Unit tests for z-normalization and running mean/stddev.

#include "warp/ts/znorm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "warp/gen/random_walk.h"

namespace warp {
namespace {

TEST(ZNormTest, MeanStdOfKnownSeries) {
  const std::vector<double> x = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const MeanStd ms = ComputeMeanStd(x);
  EXPECT_DOUBLE_EQ(ms.mean, 5.0);
  EXPECT_DOUBLE_EQ(ms.stddev, 2.0);
}

TEST(ZNormTest, NormalizedSeriesHasZeroMeanUnitStd) {
  Rng rng(71);
  const std::vector<double> z = ZNormalized(gen::RandomWalk(200, rng));
  const MeanStd ms = ComputeMeanStd(z);
  EXPECT_NEAR(ms.mean, 0.0, 1e-9);
  EXPECT_NEAR(ms.stddev, 1.0, 1e-9);
}

TEST(ZNormTest, ConstantSeriesNormalizesToZeros) {
  std::vector<double> x(10, 42.0);
  ZNormalizeInPlace(x);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ZNormTest, InPlaceMatchesCopying) {
  Rng rng(72);
  std::vector<double> x = gen::RandomWalk(50, rng);
  const std::vector<double> copied = ZNormalized(x);
  ZNormalizeInPlace(x);
  EXPECT_EQ(x, copied);
}

TEST(ZNormTest, IdempotentUpToFloatingPoint) {
  Rng rng(73);
  std::vector<double> x = ZNormalized(gen::RandomWalk(80, rng));
  const std::vector<double> twice = ZNormalized(x);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(twice[i], x[i], 1e-9);
}

TEST(RunningMeanStdTest, MatchesBatchOverSlidingWindows) {
  Rng rng(74);
  const std::vector<double> x = gen::RandomWalk(120, rng);
  const size_t m = 16;
  RunningMeanStd running(m);
  for (size_t i = 0; i < m; ++i) running.Push(x[i]);
  for (size_t pos = 0; pos + m <= x.size(); ++pos) {
    if (pos > 0) {
      running.Pop(x[pos - 1]);
      running.Push(x[pos + m - 1]);
    }
    const MeanStd batch =
        ComputeMeanStd(std::span<const double>(x).subspan(pos, m));
    EXPECT_NEAR(running.mean(), batch.mean, 1e-9) << "pos=" << pos;
    EXPECT_NEAR(running.stddev(), batch.stddev, 1e-9) << "pos=" << pos;
  }
}

TEST(RunningMeanStdTest, ResetClearsState) {
  RunningMeanStd running(4);
  running.Push(10.0);
  running.Push(20.0);
  running.Reset();
  EXPECT_EQ(running.size(), 0u);
  running.Push(1.0);
  EXPECT_DOUBLE_EQ(running.mean(), 1.0);
}

}  // namespace
}  // namespace warp
