// Cluster-side view of one shard worker (docs/SERVING.md,
// "Multi-process cluster").
//
// A worker is a plain `warp_serve` process started with
// `--worker --shard-id=K --shard-count=N`: it loads the full snapshot
// set (so every process agrees on the pinned partition and epoch
// sequence), but answers only sub-scans stamped "shard":K, scanning
// exactly shard K's candidates. This header holds what the rest of the
// cluster needs to know about such a process: how to build its command
// line, how to scrape its readiness line, and how to talk to it over the
// wire (WorkerClient).

#ifndef WARP_CLUSTER_WORKER_H_
#define WARP_CLUSTER_WORKER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "warp/serve/net.h"

namespace warp {
namespace cluster {

// Everything a spawned worker needs; mirrors warp_serve's flags.
struct WorkerSpec {
  size_t shard_id = 0;
  size_t shard_count = 1;
  size_t threads = 1;
  size_t cache_capacity = 256;
  size_t max_queue_depth = 1024;
  std::string snapshot_dir;  // Re-fed on every (re)start: the handoff medium.
};

// The argv for spawning `worker_binary` (a warp_serve build) as the
// worker described by `spec`. Always binds --port=0; the bound port is
// scraped from the child's "ready port=<P>" line.
std::vector<std::string> WorkerCommand(const std::string& worker_binary,
                                       const WorkerSpec& spec);

// Parses a "ready port=<P>" stdout line. Returns false when `line` is
// not a readiness line.
bool ParseReadyPort(const std::string& line, int* port);

// A single-connection wire client for one worker process. Not
// thread-safe: the router serializes access per worker. A failed round
// trip drops the connection; the caller decides whether to reconnect
// (same generation) or give the worker up for dead (supervisor restart).
class WorkerClient {
 public:
  // (Re)connects to 127.0.0.1:`port`. Any previous connection is closed.
  bool Connect(int port, int timeout_ms, std::string* error);

  bool connected() const { return conn_.valid(); }
  void Disconnect() { conn_.Close(); }

  // Writes `payload` (one or more complete '\n'-terminated request
  // lines). Returns false on IO failure (connection dropped).
  bool Send(const std::string& payload);

  // Reads exactly `expect` response lines into *responses, waiting at
  // most `timeout_ms` for each line to start arriving. Returns false on
  // EOF, error, or timeout (connection is dropped so the next use starts
  // clean — a half-read pipeline must never be resumed).
  bool ReadLines(size_t expect, int timeout_ms,
                 std::vector<std::string>* responses);

  // Send + ReadLines: the one-worker convenience round trip.
  bool RoundTrip(const std::string& payload, size_t expect,
                 std::vector<std::string>* responses);

 private:
  serve::TcpConn conn_;
};

}  // namespace cluster
}  // namespace warp

#endif  // WARP_CLUSTER_WORKER_H_
