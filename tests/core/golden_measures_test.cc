// Golden-value pinning for every registered measure.
//
// The hexfloat constants below were captured from the library BEFORE the
// kernels were re-expressed on the shared two-row engine
// (warp/core/dp_engine.h); the refactor's contract is bitwise-identical
// output. Every comparison is exact (EXPECT_EQ on doubles), and the
// pairwise matrices are evaluated at 1, 2, and 8 threads — the parallel
// fill must reproduce the serial result bit for bit.
//
// If a pin ever fails: either a kernel's arithmetic changed (fix the
// kernel — reordering float operations is a behavior change here), or the
// change is intentional, in which case re-capture the constants and say
// so loudly in the commit message.

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "warp/common/random.h"
#include "warp/core/adtw.h"
#include "warp/core/ddtw.h"
#include "warp/core/distance_matrix.h"
#include "warp/core/dtw.h"
#include "warp/core/elastic.h"
#include "warp/core/fastdtw.h"
#include "warp/core/fastdtw_reference.h"
#include "warp/core/measure.h"
#include "warp/core/subsequence_dtw.h"
#include "warp/core/wdtw.h"
#include "warp/core/window.h"
#include "warp/ts/multi_series.h"

namespace warp {
namespace {

// Fixed-seed Gaussian random walk — the golden input family. Seeds and
// lengths must never change: the pins below are functions of them.
std::vector<double> GoldenWalk(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<double> v(n);
  double x = 0.0;
  for (size_t i = 0; i < n; ++i) {
    x += rng.Gaussian();
    v[i] = x;
  }
  return v;
}

std::vector<std::vector<double>> GoldenSeries() {
  std::vector<std::vector<double>> s;
  for (uint64_t k = 0; k < 4; ++k) s.push_back(GoldenWalk(1000 + k, 64));
  return s;
}

constexpr size_t kBand64 = 6;   // llround(0.1 * 64).
constexpr size_t kBand96 = 10;  // llround(0.1 * 96).

struct MeasurePins {
  const char* name;
  // The 6 unordered pairs of the 4 golden walks, row-major:
  // (0,1) (0,2) (0,3) (1,2) (1,3) (2,3).
  std::array<double, 6> pairs;
};

// Captured pre-refactor with band = kBand64, squared cost, and each
// measure's registry defaults (wdtw g=0.05, adtw ratio-suggested omega at
// 0.1, lcss epsilon=0.1, erp gap=0, msm c=1, fastdtw radius=10).
const MeasurePins kPins[] = {
    {"ed",
     {0x1.38e08cadabe48p+9, 0x1.436e534e40e61p+11, 0x1.3540ac05a99e3p+13,
      0x1.26246f4b363cfp+12, 0x1.aa2193889324cp+13, 0x1.876095abdc91cp+11}},
    {"cdtw",
     {0x1.d458ce59abf3cp+8, 0x1.23ac36a1bc85bp+11, 0x1.31c54f850fc3p+13,
      0x1.033df3cfa35edp+12, 0x1.a54c0f7520067p+13, 0x1.543ac1b310fefp+11}},
    {"dtw",
     {0x1.b46e323930e62p+8, 0x1.4c71ab36b6b0ap+10, 0x1.2fb37c67648fp+13,
      0x1.779ac33406d8p+11, 0x1.a05eda14f4123p+13, 0x1.187a4d2743302p+11}},
    {"ddtw",
     {0x1.0f68f98ea7b4dp+4, 0x1.52ac84cb4404bp+4, 0x1.cb42e2eabc7fep+4,
      0x1.65179c5ad8db6p+4, 0x1.b34f42e52d5f9p+4, 0x1.7ab3eaf94a2d7p+4}},
    {"wdtw",
     {0x1.44566931e9ed8p+6, 0x1.afed443c5d6bdp+8, 0x1.9d97232ff9837p+10,
      0x1.80a3dde254c01p+9, 0x1.1da7c75757546p+11, 0x1.f38705ad60a2ep+8}},
    {"adtw",
     {0x1.f0fe5bef8408p+8, 0x1.a75e248fcc2c6p+10, 0x1.3540ac05a99e3p+13,
      0x1.c33356121748dp+11, 0x1.aa2193889324cp+13, 0x1.4c64484713685p+11}},
    {"lcss",
     {0x1.bp-1, 0x1.fp-1, 0x1.fp-1, 0x1.fp-1, 0x1.fp-1, 0x1.d8p-1}},
    {"erp",
     {0x1.27e3a2ce082c7p+7, 0x1.77009b86741ebp+8, 0x1.5b31db656ecfp+9,
      0x1.dc54a79cbc0fap+8, 0x1.8f39389ba56d8p+9, 0x1.55d6ddd690b12p+8}},
    {"msm",
     {0x1.7cc56791376c8p+6, 0x1.3b97f6fd01133p+7, 0x1.4f29b868d8e21p+7,
      0x1.370ba6eca5358p+7, 0x1.56bd4e2e1bf19p+7, 0x1.e309fa448efa2p+6}},
    {"fastdtw",
     {0x1.b46e323930e62p+8, 0x1.4c71ab36b6b0ap+10, 0x1.2fb37c67648fp+13,
      0x1.779ac33406d8p+11, 0x1.a05eda14f4123p+13, 0x1.187a4d2743302p+11}},
    {"fastdtw-ref",
     {0x1.b46e323930e62p+8, 0x1.4c71ab36b6b0ap+10, 0x1.2fb37c67648fp+13,
      0x1.779ac33406d8p+11, 0x1.a05eda14f4123p+13, 0x1.187a4d2743302p+11}},
};

const MeasurePins* FindPins(const std::string& name) {
  for (const MeasurePins& pins : kPins) {
    if (name == pins.name) return &pins;
  }
  return nullptr;
}

// Every registered measure, evaluated as a pairwise matrix at 1, 2, and 8
// threads, must reproduce its pre-refactor pins exactly.
TEST(GoldenMeasuresTest, PairwiseMatrixPinnedAtEveryThreadCount) {
  const std::vector<std::vector<double>> series = GoldenSeries();
  MeasureParams params;
  params.band_cells = static_cast<long>(kBand64);

  for (const MeasureInfo& info : RegisteredMeasures()) {
    const MeasurePins* pins = FindPins(info.name);
    ASSERT_NE(pins, nullptr)
        << "registered measure '" << info.name
        << "' has no golden pins — capture them and add a row";
    const SeriesMeasure fn = MakeMeasure(info.name, params);
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      const DistanceMatrix matrix =
          ComputePairwiseMatrix(series, fn, threads);
      size_t k = 0;
      for (size_t i = 0; i < series.size(); ++i) {
        for (size_t j = i + 1; j < series.size(); ++j, ++k) {
          EXPECT_EQ(matrix.at(i, j), pins->pairs[k])
              << info.name << " pair (" << i << "," << j << ") at "
              << threads << " threads";
        }
      }
    }
  }
}

// No pinned measure has silently dropped out of the registry.
TEST(GoldenMeasuresTest, EveryPinnedMeasureIsRegistered) {
  for (const MeasurePins& pins : kPins) {
    EXPECT_TRUE(IsRegisteredMeasure(pins.name)) << pins.name;
  }
}

// Unequal-length pairs exercise the rectangular row ranges.
TEST(GoldenMeasuresTest, UnequalLengthPins) {
  const std::vector<double> a = GoldenWalk(1000, 64);
  const std::vector<double> u96 = GoldenWalk(2000, 96);

  EXPECT_EQ(CdtwDistance(a, u96, kBand96), 0x1.6b97007b84619p+13);
  EXPECT_EQ(DtwDistance(a, u96), 0x1.2678a586a9859p+13);
  EXPECT_EQ(DdtwDistance(a, u96, kBand96), 0x1.d13dbcbc531e1p+4);
  EXPECT_EQ(AdtwDistance(a, u96, 0.5), 0x1.28026da8a6afp+13);
  EXPECT_EQ(LcssDistance(a, u96, 0.1, kBand96), 0x1.e8p-1);
  EXPECT_EQ(ErpDistance(a, u96, 0.0), 0x1.0ca1b099530fdp+10);
  EXPECT_EQ(MsmDistance(a, u96, 1.0), 0x1.5537d2ed1d69bp+7);
  EXPECT_EQ(FastDtwDistance(a, u96, 10), 0x1.2678a586a9859p+13);
  EXPECT_EQ(ReferenceFastDtw(a, u96, 10).distance, 0x1.2678a586a9859p+13);
}

// Kernel-level pins beyond the registry surface: subsequence alignment,
// pruning, early abandoning, path recovery, FastDTW cell accounting,
// arbitrary windows, the absolute cost, and the multivariate kernels.
TEST(GoldenMeasuresTest, KernelPins) {
  const std::vector<std::vector<double>> s = GoldenSeries();
  const std::vector<double> u96 = GoldenWalk(2000, 96);
  const std::vector<double> q32 = GoldenWalk(3000, 32);

  EXPECT_EQ(SubsequenceDtwDistance(q32, u96), 0x1.996c4dcebe38bp+3);
  const SubsequenceAlignment align = SubsequenceDtw(q32, u96);
  EXPECT_EQ(align.distance, 0x1.996c4dcebe38bp+3);
  EXPECT_EQ(align.start, 7u);
  EXPECT_EQ(align.end, 28u);
  EXPECT_EQ(align.path.size(), 39u);

  EXPECT_EQ(PrunedCdtwDistance(s[0], s[1], kBand64), 0x1.d458ce59abf3cp+8);
  EXPECT_EQ(CdtwDistanceAbandoning(s[0], s[1], kBand64, 1e30),
            0x1.d458ce59abf3cp+8);

  const DtwResult cdtw_path = Cdtw(s[0], s[1], kBand64);
  EXPECT_EQ(cdtw_path.distance, 0x1.d458ce59abf3cp+8);
  EXPECT_EQ(cdtw_path.path.size(), 93u);
  const DtwResult dtw_path = Dtw(s[0], s[1]);
  EXPECT_EQ(dtw_path.distance, 0x1.b46e323930e62p+8);
  EXPECT_EQ(dtw_path.path.size(), 104u);

  const DtwResult fast2 = FastDtw(s[0], s[1], 2);
  EXPECT_EQ(fast2.distance, 0x1.b46e323930e62p+8);
  EXPECT_EQ(fast2.path.size(), 104u);
  EXPECT_EQ(fast2.cells_visited, 1928u);
  const DtwResult ref2 = ReferenceFastDtw(s[0], s[1], 2);
  EXPECT_EQ(ref2.distance, 0x1.b46e323930e62p+8);
  EXPECT_EQ(ref2.path.size(), 104u);
  EXPECT_EQ(ref2.cells_visited, 1928u);

  EXPECT_EQ(WdtwDistance(s[0], s[1], 0.05, 64), 0x1.2d82e228b8e1cp+6);
  EXPECT_EQ(LcssLength(s[0], s[1], 0.1, kBand64), 10u);

  const WarpingWindow itakura = WarpingWindow::Itakura(64, 64, 2.0);
  EXPECT_EQ(WindowedDtwDistance(s[0], s[1], itakura),
            0x1.bd5c7ac7b6ccp+8);
  EXPECT_EQ(CdtwDistance(s[0], s[1], kBand64, CostKind::kAbsolute),
            0x1.f07765c1102adp+6);

  const MultiSeries mx({s[0], s[1]}, 0);
  const MultiSeries my({s[2], s[3]}, 0);
  EXPECT_EQ(MultiCdtwDistance(mx, my, kBand64), 0x1.f7a30886f8afbp+13);
  const DtwResult mfast = MultiFastDtw(mx, my, 4);
  EXPECT_EQ(mfast.distance, 0x1.f1ff155a29809p+13);
  EXPECT_EQ(mfast.path.size(), 90u);
}

}  // namespace
}  // namespace warp
