#include "warp/ts/transforms.h"

#include <algorithm>

#include "warp/common/assert.h"

namespace warp {

std::vector<double> MovingAverage(std::span<const double> values,
                                  size_t radius) {
  WARP_CHECK(!values.empty());
  const size_t n = values.size();
  std::vector<double> out(n);
  // Sliding-sum: O(n) regardless of radius.
  double sum = 0.0;
  size_t lo = 0;  // Inclusive window start.
  size_t hi = 0;  // Exclusive window end.
  for (size_t i = 0; i < n; ++i) {
    const size_t want_lo = i > radius ? i - radius : 0;
    const size_t want_hi = std::min(n, i + radius + 1);
    while (hi < want_hi) sum += values[hi++];
    while (lo < want_lo) sum -= values[lo++];
    out[i] = sum / static_cast<double>(hi - lo);
  }
  return out;
}

std::vector<double> Difference(std::span<const double> values) {
  WARP_CHECK(values.size() >= 2);
  std::vector<double> out(values.size() - 1);
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    out[i] = values[i + 1] - values[i];
  }
  return out;
}

std::vector<double> DetrendLinear(std::span<const double> values) {
  WARP_CHECK(!values.empty());
  const size_t n = values.size();
  if (n == 1) return {0.0};
  double sum_x = 0.0;
  double sum_y = 0.0;
  double sum_xx = 0.0;
  double sum_xy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    sum_x += x;
    sum_y += values[i];
    sum_xx += x * x;
    sum_xy += x * values[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sum_xx - sum_x * sum_x;
  const double slope = denom != 0.0 ? (dn * sum_xy - sum_x * sum_y) / denom
                                    : 0.0;
  const double intercept = (sum_y - slope * sum_x) / dn;
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = values[i] - (intercept + slope * static_cast<double>(i));
  }
  return out;
}

std::vector<double> ExponentialSmoothing(std::span<const double> values,
                                         double alpha) {
  WARP_CHECK(!values.empty());
  WARP_CHECK(alpha > 0.0 && alpha <= 1.0);
  std::vector<double> out(values.size());
  out[0] = values[0];
  for (size_t i = 1; i < values.size(); ++i) {
    out[i] = alpha * values[i] + (1.0 - alpha) * out[i - 1];
  }
  return out;
}

std::vector<double> MinMaxScale(std::span<const double> values) {
  WARP_CHECK(!values.empty());
  const auto [lo_it, hi_it] =
      std::minmax_element(values.begin(), values.end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  std::vector<double> out(values.size());
  if (hi == lo) {
    std::fill(out.begin(), out.end(), 0.5);
    return out;
  }
  const double inv = 1.0 / (hi - lo);
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = (values[i] - lo) * inv;
  }
  return out;
}

}  // namespace warp
