// Exact Dynamic Time Warping: full, Sakoe–Chiba banded (cDTW_w), and
// arbitrary-window variants, in distance-only and path-recovering forms.
//
// Terminology follows the paper:
//   * DTW        — unconstrained ("Full") DTW; O(n*m) time.
//   * cDTW_w     — DTW constrained to a Sakoe–Chiba band of half-width w;
//                  O(n*w) time and O(w) space in the distance-only kernel.
//                  cDTW_0 is the Euclidean distance; cDTW_100% is Full DTW.
//   * windowed   — DTW restricted to an arbitrary WarpingWindow; this is
//                  the refinement step FastDTW runs at each resolution.
//
// Distances are accumulated local costs (squared differences by default)
// with no final square root, matching the recurrence in Section 2 of the
// paper. Callers who want a metric-like value can take std::sqrt.
//
// All functions accept series as std::span<const double>; std::vector
// converts implicitly.

#ifndef WARP_CORE_DTW_H_
#define WARP_CORE_DTW_H_

#include <cstdint>
#include <span>
#include <vector>

#include "warp/common/cost.h"
#include "warp/core/dp_engine.h"
#include "warp/core/warping_path.h"
#include "warp/core/window.h"
#include "warp/ts/multi_series.h"

namespace warp {

// Result of a path-recovering DTW computation.
struct DtwResult {
  double distance = 0.0;
  WarpingPath path;
  uint64_t cells_visited = 0;
};

// Historical name for the engine's reusable scratch space (see
// DtwWorkspace in dp_engine.h). Passing the same workspace across calls
// in a tight loop makes the steady state allocation-free.
using DtwBuffer = DtwWorkspace;

// ---------------------------------------------------------------------------
// Unconstrained (Full) DTW.

// Distance only; O(min) memory. `cells` (optional) receives the number of
// DP cells evaluated; `workspace` (optional) reuses scratch rows across
// calls.
double DtwDistance(std::span<const double> x, std::span<const double> y,
                   CostKind cost = CostKind::kSquared,
                   uint64_t* cells = nullptr,
                   DtwWorkspace* workspace = nullptr);

// Distance and optimal warping path; O(n*m) memory.
DtwResult Dtw(std::span<const double> x, std::span<const double> y,
              CostKind cost = CostKind::kSquared);

// ---------------------------------------------------------------------------
// Sakoe–Chiba constrained DTW (cDTW_w). `band` is the half-width in cells;
// the *Fraction forms take the paper's w as a fraction of the longer
// length (e.g. 0.05 for w = 5%).

double CdtwDistance(std::span<const double> x, std::span<const double> y,
                    size_t band, CostKind cost = CostKind::kSquared,
                    DtwBuffer* buffer = nullptr, uint64_t* cells = nullptr);

double CdtwDistanceFraction(std::span<const double> x,
                            std::span<const double> y, double fraction,
                            CostKind cost = CostKind::kSquared,
                            DtwBuffer* buffer = nullptr);

// Early-abandoning variant: returns +infinity as soon as every cell in a
// DP row exceeds `abandon_above` (at which point the true distance is
// provably > abandon_above). Used by the accelerated 1-NN search.
double CdtwDistanceAbandoning(std::span<const double> x,
                              std::span<const double> y, size_t band,
                              double abandon_above,
                              CostKind cost = CostKind::kSquared,
                              DtwBuffer* buffer = nullptr);

// Distance and path under a Sakoe–Chiba band.
DtwResult Cdtw(std::span<const double> x, std::span<const double> y,
               size_t band, CostKind cost = CostKind::kSquared);

// PrunedDTW (Silva & Batista, SDM 2016): exact banded DTW that skips DP
// cells provably not on any path cheaper than an upper bound. The bound
// defaults to the Euclidean distance (the diagonal path, always
// admissible in a Sakoe–Chiba window on equal lengths); a tighter caller-
// supplied `upper_bound` (e.g. a best-so-far) prunes more. Result is
// always identical to CdtwDistance; only `cells` shrinks. Requires equal
// lengths.
double PrunedCdtwDistance(std::span<const double> x,
                          std::span<const double> y, size_t band,
                          CostKind cost = CostKind::kSquared,
                          double upper_bound = -1.0,
                          DtwBuffer* buffer = nullptr,
                          uint64_t* cells = nullptr);

// ---------------------------------------------------------------------------
// Arbitrary-window DTW. The window must be valid (see WarpingWindow) and
// shaped (x.size(), y.size()).

double WindowedDtwDistance(std::span<const double> x,
                           std::span<const double> y,
                           const WarpingWindow& window,
                           CostKind cost = CostKind::kSquared,
                           DtwBuffer* buffer = nullptr,
                           uint64_t* cells = nullptr);

DtwResult WindowedDtw(std::span<const double> x, std::span<const double> y,
                      const WarpingWindow& window,
                      CostKind cost = CostKind::kSquared);

// ---------------------------------------------------------------------------
// Normalization helpers. DTW distances accumulate along paths of varying
// length, so comparing distances across different-length pairs often
// wants per-step normalization: distance / path length. These wrap the
// path-recovering calls.

// cDTW distance divided by the optimal path's length.
double NormalizedCdtwDistance(std::span<const double> x,
                              std::span<const double> y, size_t band,
                              CostKind cost = CostKind::kSquared);

// Full-DTW distance divided by the optimal path's length.
double NormalizedDtwDistance(std::span<const double> x,
                             std::span<const double> y,
                             CostKind cost = CostKind::kSquared);

// ---------------------------------------------------------------------------
// Euclidean distance (= cDTW_0), provided for convenience and used as the
// first rung of the lower-bound cascade. Lengths must match.

double EuclideanDistance(std::span<const double> x,
                         std::span<const double> y,
                         CostKind cost = CostKind::kSquared);

// Early-abandoning Euclidean distance: returns +infinity once the running
// sum exceeds `abandon_above`.
double EuclideanDistanceAbandoning(std::span<const double> x,
                                   std::span<const double> y,
                                   double abandon_above,
                                   CostKind cost = CostKind::kSquared);

// ---------------------------------------------------------------------------
// Multichannel (dependent) DTW: the local cost of aligning frames i and j
// is the sum of per-channel costs, so all channels warp together. Used by
// the Appendix-B gesture experiments.

double MultiDtwDistance(const MultiSeries& x, const MultiSeries& y,
                        CostKind cost = CostKind::kSquared,
                        uint64_t* cells = nullptr);

double MultiCdtwDistance(const MultiSeries& x, const MultiSeries& y,
                         size_t band, CostKind cost = CostKind::kSquared,
                         DtwBuffer* buffer = nullptr,
                         uint64_t* cells = nullptr);

DtwResult MultiWindowedDtw(const MultiSeries& x, const MultiSeries& y,
                           const WarpingWindow& window,
                           CostKind cost = CostKind::kSquared);

}  // namespace warp

#endif  // WARP_CORE_DTW_H_
