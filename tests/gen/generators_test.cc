// Unit tests for the data generators: determinism, shape properties, and
// the domain characteristics each paper experiment relies on.

#include <cmath>

#include <gtest/gtest.h>

#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/gen/adversarial.h"
#include "warp/gen/chroma.h"
#include "warp/gen/fall.h"
#include "warp/gen/gesture.h"
#include "warp/gen/power_demand.h"
#include "warp/gen/seismic.h"
#include "warp/gen/random_walk.h"
#include "warp/gen/warping.h"
#include "warp/ts/paa.h"

namespace warp {
namespace gen {
namespace {

TEST(WarpMapTest, EndpointsFixedAndMonotone) {
  Rng rng(91);
  for (int round = 0; round < 20; ++round) {
    const size_t n = 10 + rng.UniformInt(500);
    const double fraction = rng.Uniform(0.0, 0.3);
    const std::vector<double> map = MakeSmoothMonotoneWarp(n, fraction, rng);
    ASSERT_EQ(map.size(), n);
    EXPECT_DOUBLE_EQ(map.front(), 0.0);
    EXPECT_DOUBLE_EQ(map.back(), static_cast<double>(n - 1));
    for (size_t i = 1; i < n; ++i) EXPECT_GE(map[i], map[i - 1]);
  }
}

TEST(WarpMapTest, DeviationBounded) {
  Rng rng(92);
  const size_t n = 400;
  const double fraction = 0.05;
  for (int round = 0; round < 10; ++round) {
    const std::vector<double> map = MakeSmoothMonotoneWarp(n, fraction, rng);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_LE(std::fabs(map[i] - static_cast<double>(i)),
                fraction * n + 1e-9);
    }
  }
}

TEST(WarpMapTest, ZeroFractionIsIdentity) {
  Rng rng(93);
  const std::vector<double> map = MakeSmoothMonotoneWarp(50, 0.0, rng);
  for (size_t i = 0; i < map.size(); ++i) {
    EXPECT_NEAR(map[i], static_cast<double>(i), 1e-9);
  }
}

TEST(WarpMapTest, ApplyIdentityReturnsSeries) {
  Rng rng(94);
  const std::vector<double> x = RandomWalk(64, rng);
  std::vector<double> identity(64);
  for (size_t i = 0; i < 64; ++i) identity[i] = static_cast<double>(i);
  const std::vector<double> warped = ApplyWarpMap(x, identity);
  for (size_t i = 0; i < 64; ++i) EXPECT_NEAR(warped[i], x[i], 1e-12);
}

TEST(WarpedSeriesTest, SmallDtwDistanceToOriginal) {
  // The whole point of the warp generator: the warped copy is close under
  // DTW with an adequate band, far under Euclidean.
  Rng rng(95);
  const std::vector<double> x = RandomWalk(300, rng);
  const std::vector<double> y = ApplyRandomWarp(x, 0.05, rng);
  const double cdtw = CdtwDistanceFraction(x, y, 0.06);
  const double euclidean = EuclideanDistance(x, y);
  EXPECT_LT(cdtw, euclidean * 0.5);
}

TEST(RandomWalkTest, DeterministicAndCorrectLength) {
  Rng a(96);
  Rng b(96);
  EXPECT_EQ(RandomWalk(100, a), RandomWalk(100, b));
  EXPECT_EQ(RandomWalk(17, a).size(), 17u);
}

TEST(RandomWalkDatasetTest, ShapeAndNormalization) {
  const Dataset dataset = RandomWalkDataset(10, 64, 97);
  EXPECT_EQ(dataset.size(), 10u);
  EXPECT_EQ(dataset.UniformLength(), 64u);
  for (const auto& series : dataset.series()) {
    EXPECT_NEAR(series.Mean(), 0.0, 1e-9);
  }
}

TEST(GestureTest, TemplatesAreClassDistinct) {
  const std::vector<double> t0 = GestureTemplate(0, 256, 7);
  const std::vector<double> t1 = GestureTemplate(1, 256, 7);
  EXPECT_GT(EuclideanDistance(t0, t1), 1.0);
  // And deterministic.
  EXPECT_EQ(t0, GestureTemplate(0, 256, 7));
}

TEST(GestureTest, DatasetHasRequestedShape) {
  GestureOptions options;
  options.length = 128;
  options.num_classes = 4;
  const Dataset dataset = MakeGestureDataset(5, options);
  EXPECT_EQ(dataset.size(), 20u);
  EXPECT_EQ(dataset.UniformLength(), 128u);
  EXPECT_EQ(dataset.Labels(), (std::vector<int>{0, 1, 2, 3}));
}

TEST(GestureTest, WithinClassCloserThanBetweenClassUnderCdtw) {
  GestureOptions options;
  options.length = 128;
  options.num_classes = 2;
  options.seed = 99;
  Rng rng(100);
  const TimeSeries a1 = MakeGesture(0, options, rng);
  const TimeSeries a2 = MakeGesture(0, options, rng);
  const TimeSeries b1 = MakeGesture(1, options, rng);
  const size_t band = 13;  // ~10% of 128.
  const double within = CdtwDistance(a1.view(), a2.view(), band);
  const double between = CdtwDistance(a1.view(), b1.view(), band);
  EXPECT_LT(within, between);
}

TEST(GestureTest, MultiChannelShape) {
  GestureOptions options;
  options.length = 64;
  options.num_classes = 3;
  const auto dataset = MakeMultiGestureDataset(2, 4, options);
  EXPECT_EQ(dataset.size(), 6u);
  for (const auto& series : dataset) {
    EXPECT_EQ(series.num_channels(), 4u);
    EXPECT_EQ(series.length(), 64u);
  }
}

TEST(ChromaTest, PerformancePairAlignsUnderSmallBand) {
  ChromaOptions options;
  options.length = 2000;
  const auto [studio, live] = MakePerformancePair(options);
  EXPECT_EQ(studio.size(), 2000u);
  EXPECT_EQ(live.size(), 2000u);
  // cDTW at the paper's window absorbs the tempo warp almost fully.
  const double banded = CdtwDistanceFraction(studio, live, 0.01);
  const double euclidean = EuclideanDistance(studio, live);
  EXPECT_LT(banded, euclidean);
}

TEST(PowerDemandTest, DishwasherNightsCarryThePattern) {
  Rng rng(101);
  const TimeSeries quiet = MakeQuietNight(450, rng);
  const TimeSeries dishwasher = MakeDishwasherNight(450, 30, rng);
  EXPECT_EQ(quiet.label(), kQuietNightLabel);
  EXPECT_EQ(dishwasher.label(), kDishwasherNightLabel);
  EXPECT_GT(dishwasher.Max(), quiet.Max() + 1.0);
}

TEST(PowerDemandTest, ShiftedProgramsAlignUnderWideWindowOnly) {
  // The Case-C property: W is a large fraction of N. The paper estimates
  // W = 34% from the third peak pair; shift the program by ~33% here.
  Rng rng(102);
  const size_t n = 450;
  const TimeSeries early = MakeDishwasherNight(n, 10, rng);
  const TimeSeries late = MakeDishwasherNight(n, 10 + n / 3, rng);
  const double wide = CdtwDistanceFraction(early.view(), late.view(), 0.40);
  const double narrow = CdtwDistanceFraction(early.view(), late.view(), 0.05);
  EXPECT_LT(wide, narrow * 0.5);
}

TEST(PowerDemandTest, DatasetMixesLabels) {
  const Dataset dataset = MakePowerDemandDataset(100, 200, 0.5, 103);
  const auto counts = dataset.ClassCounts();
  EXPECT_GT(counts.at(kQuietNightLabel), 20u);
  EXPECT_GT(counts.at(kDishwasherNightLabel), 20u);
}

TEST(FallTest, PairHasOppositeFallPositions) {
  Rng rng(104);
  const auto [early, late] = MakeFallPair(2.0, 100.0, rng);
  EXPECT_EQ(early.size(), 200u);
  EXPECT_EQ(late.size(), 200u);
  // Early fall: low at the end. Late fall: high until near the end.
  EXPECT_LT(early[150], 0.2);
  EXPECT_GT(late[100], 0.8);
}

TEST(FallTest, AlignmentRequiresNearFullWarping) {
  Rng rng(105);
  const auto [early, late] = MakeFallPair(2.0, 100.0, rng);
  const double full = DtwDistance(early, late);
  const double narrow = CdtwDistanceFraction(early, late, 0.05);
  // With only 5% warping the falls cannot be aligned.
  EXPECT_GT(narrow, full * 5.0);
}

TEST(SeismicTest, PairAlignsUnderNarrowWindowOnly) {
  // Case B's structure: long N, tiny W — the arrivals match after a
  // sub-1% warp; Euclidean pays for the misalignment.
  SeismicOptions options;
  options.length = 4000;
  const auto [a, b] = MakeSeismicPair(options);
  ASSERT_EQ(a.size(), 4000u);
  const double banded = CdtwDistanceFraction(a, b, 0.01);
  const double euclidean = EuclideanDistance(a, b);
  EXPECT_LT(banded, euclidean * 0.7);
}

TEST(SeismicTest, ArrivalsOrderedAndEnergetic) {
  SeismicOptions options;
  options.length = 4000;
  Rng rng(300);
  const std::vector<double> trace = MakeSeismicTrace(options, rng);
  // Pre-arrival quiet vs post-S energy.
  double quiet = 0.0;
  double loud = 0.0;
  const size_t p_onset = static_cast<size_t>(0.25 * 4000);
  const size_t s_onset = static_cast<size_t>(0.45 * 4000);
  for (size_t t = 0; t < p_onset; ++t) quiet += trace[t] * trace[t];
  for (size_t t = s_onset; t < s_onset + p_onset; ++t) {
    loud += trace[t] * trace[t];
  }
  EXPECT_GT(loud, 10.0 * quiet);
}

TEST(SeismicTest, DeterministicPerSeed) {
  SeismicOptions options;
  options.length = 500;
  const auto pair1 = MakeSeismicPair(options);
  const auto pair2 = MakeSeismicPair(options);
  EXPECT_EQ(pair1.first, pair2.first);
  EXPECT_EQ(pair1.second, pair2.second);
}

TEST(NormalizedDtwTest, PerStepNormalizationBounds) {
  // Normalized distance <= raw distance (path length >= 1) and equals
  // raw / path-length exactly.
  Rng rng(301);
  const std::vector<double> x = RandomWalk(60, rng);
  const std::vector<double> y = RandomWalk(70, rng);
  const DtwResult full = Dtw(x, y);
  EXPECT_NEAR(NormalizedDtwDistance(x, y),
              full.distance / static_cast<double>(full.path.size()), 1e-12);
  const DtwResult banded = Cdtw(x, y, 10);
  EXPECT_NEAR(NormalizedCdtwDistance(x, y, 10),
              banded.distance / static_cast<double>(banded.path.size()),
              1e-12);
}

TEST(AdversarialTest, BurstVanishesUnderHalving) {
  const AdversarialTriple triple = MakeAdversarialTriple();
  const std::vector<double> halved = HalveByTwo(triple.a);
  double max_abs = 0.0;
  for (double v : halved) max_abs = std::max(max_abs, std::fabs(v));
  // Only the bump (amplitude ~0.04) survives.
  EXPECT_LT(max_abs, 0.15);
}

TEST(AdversarialTest, FullDtwFindsNearPerfectAlignment) {
  const AdversarialTriple triple = MakeAdversarialTriple();
  const double d_ab = DtwDistance(triple.a, triple.b);
  const double d_ac = DtwDistance(triple.a, triple.c);
  const double d_bc = DtwDistance(triple.b, triple.c);
  EXPECT_LT(d_ab, 0.2);
  EXPECT_GT(d_ac, 10.0 * d_ab);
  EXPECT_GT(d_bc, 10.0 * d_ab);
}

TEST(AdversarialTest, FastDtwInflatesOnlyTheAbPair) {
  const AdversarialTriple triple = MakeAdversarialTriple();
  const double exact_ab = DtwDistance(triple.a, triple.b);
  const double fast_ab = FastDtwDistance(triple.a, triple.b, 20);
  EXPECT_GT(fast_ab, 100.0 * exact_ab);
  const double exact_ac = DtwDistance(triple.a, triple.c);
  const double fast_ac = FastDtwDistance(triple.a, triple.c, 20);
  EXPECT_LT(fast_ac, 1.5 * exact_ac + 1.0);
}

}  // namespace
}  // namespace gen
}  // namespace warp
