#include "warp/serve/batcher.h"

#include <utility>

namespace warp {
namespace serve {

Batcher::Batcher(QueryEngine* engine)
    : engine_(engine), dispatcher_([this] { DispatchLoop(); }) {}

Batcher::~Batcher() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  pending_cv_.notify_all();
  dispatcher_.join();
}

void Batcher::Execute(const std::vector<ServeRequest>& requests,
                      std::vector<ServeResponse>* responses) {
  if (requests.empty()) {
    responses->clear();
    return;
  }
  Submission submission;
  submission.requests = &requests;
  submission.responses = responses;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.push_back(&submission);
  }
  pending_cv_.notify_one();
  std::unique_lock<std::mutex> lock(mutex_);
  submission.cv.wait(lock, [&] { return submission.done; });
}

uint64_t Batcher::batches_dispatched() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batches_;
}

void Batcher::DispatchLoop() {
  while (true) {
    std::vector<Submission*> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      pending_cv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stop_ and fully drained.
      batch.assign(pending_.begin(), pending_.end());
      pending_.clear();
      ++batches_;
    }

    // Flatten every pending submission into one engine batch.
    std::vector<ServeRequest> requests;
    for (const Submission* s : batch) {
      requests.insert(requests.end(), s->requests->begin(),
                      s->requests->end());
    }
    std::vector<ServeResponse> responses;
    engine_->RunBatch(requests, &responses);

    {
      std::lock_guard<std::mutex> lock(mutex_);
      size_t offset = 0;
      for (Submission* s : batch) {
        const size_t count = s->requests->size();
        s->responses->assign(
            std::make_move_iterator(responses.begin() +
                                    static_cast<ptrdiff_t>(offset)),
            std::make_move_iterator(responses.begin() +
                                    static_cast<ptrdiff_t>(offset + count)));
        offset += count;
        s->done = true;
        // Notify while holding the lock: the submitter frees the
        // Submission (stack storage) the moment it observes done, which
        // it cannot do before we release the mutex.
        s->cv.notify_one();
      }
    }
  }
}

}  // namespace serve
}  // namespace warp
