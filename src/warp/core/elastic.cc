#include "warp/core/elastic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "warp/common/assert.h"

namespace warp {

size_t LcssLength(std::span<const double> x, std::span<const double> y,
                  double epsilon, size_t band) {
  WARP_CHECK(!x.empty() && !y.empty());
  WARP_CHECK(epsilon >= 0.0);
  const size_t n = x.size();
  const size_t m = y.size();

  // Two-row DP over match lengths; cells outside the band stay at the
  // running maximum of their row prefix (standard banded-LCSS semantics:
  // matches are only allowed inside the band, carries are free).
  std::vector<size_t> prev(m + 1, 0);
  std::vector<size_t> cur(m + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    cur[0] = 0;
    for (size_t j = 0; j < m; ++j) {
      const size_t dev = i > j ? i - j : j - i;
      if (dev <= band && std::fabs(x[i] - y[j]) <= epsilon) {
        cur[j + 1] = prev[j] + 1;
      } else {
        cur[j + 1] = std::max(prev[j + 1], cur[j]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double LcssDistance(std::span<const double> x, std::span<const double> y,
                    double epsilon, size_t band) {
  const size_t lcss = LcssLength(x, y, epsilon, band);
  const size_t shortest = std::min(x.size(), y.size());
  return 1.0 - static_cast<double>(lcss) / static_cast<double>(shortest);
}

double ErpDistance(std::span<const double> x, std::span<const double> y,
                   double gap_value) {
  WARP_CHECK(!x.empty() && !y.empty());
  const size_t n = x.size();
  const size_t m = y.size();

  // D(i, -1) = sum of |x[0..i] - g| (everything gapped), likewise the
  // first row; interior is the three-way edit recurrence on L1 costs.
  std::vector<double> prev(m + 1, 0.0);
  std::vector<double> cur(m + 1, 0.0);
  for (size_t j = 0; j < m; ++j) {
    prev[j + 1] = prev[j] + std::fabs(y[j] - gap_value);
  }
  double left_boundary = 0.0;  // D(i-1, -1).
  for (size_t i = 0; i < n; ++i) {
    cur[0] = left_boundary + std::fabs(x[i] - gap_value);
    for (size_t j = 0; j < m; ++j) {
      const double match = prev[j] + std::fabs(x[i] - y[j]);
      const double gap_x = prev[j + 1] + std::fabs(x[i] - gap_value);
      const double gap_y = cur[j] + std::fabs(y[j] - gap_value);
      cur[j + 1] = std::min({match, gap_x, gap_y});
    }
    left_boundary = cur[0];
    std::swap(prev, cur);
  }
  return prev[m];
}

namespace {

// MSM's split/merge cost: moving `value` next to `adjacent` when the
// opposite series sits at `opposite`. Free-of-extras (just c) when value
// lies between them, otherwise c plus the distance to the nearer one.
double MsmCost(double value, double adjacent, double opposite, double c) {
  if ((adjacent <= value && value <= opposite) ||
      (adjacent >= value && value >= opposite)) {
    return c;
  }
  return c + std::min(std::fabs(value - adjacent),
                      std::fabs(value - opposite));
}

}  // namespace

double MsmDistance(std::span<const double> x, std::span<const double> y,
                   double split_merge_cost) {
  WARP_CHECK(!x.empty() && !y.empty());
  WARP_CHECK(split_merge_cost >= 0.0);
  const size_t n = x.size();
  const size_t m = y.size();
  const double c = split_merge_cost;

  std::vector<double> prev(m);
  std::vector<double> cur(m);
  prev[0] = std::fabs(x[0] - y[0]);
  for (size_t j = 1; j < m; ++j) {
    prev[j] = prev[j - 1] + MsmCost(y[j], y[j - 1], x[0], c);
  }
  for (size_t i = 1; i < n; ++i) {
    cur[0] = prev[0] + MsmCost(x[i], x[i - 1], y[0], c);
    for (size_t j = 1; j < m; ++j) {
      const double match = prev[j - 1] + std::fabs(x[i] - y[j]);
      const double split_x = prev[j] + MsmCost(x[i], x[i - 1], y[j], c);
      const double merge_y = cur[j - 1] + MsmCost(y[j], y[j - 1], x[i], c);
      cur[j] = std::min({match, split_x, merge_y});
    }
    std::swap(prev, cur);
  }
  return prev[m - 1];
}

}  // namespace warp
