// The cluster front end: one process speaking the ordinary serve wire
// protocol to clients, scattering every query to the shard workers and
// gathering their sub-scans into answers that are BITWISE-identical to a
// single-process `--shards=N` server (docs/SERVING.md, "Multi-process
// cluster").
//
// Determinism contract, layer by layer:
//   * every sub-scan is stamped ("shard":K, "shard_epoch":E) via
//     FormatRequest, and a worker refuses mis-routed or stale work, so an
//     answer can only ever be assembled from the pinned partition;
//   * 1nn/knn gather merges the workers' per-shard top-k lists in shard
//     order under the strict (distance, index) order — a set property
//     that reproduces the single process's shard-major chunk merge;
//   * range hits are concatenated and re-sorted by global index, exactly
//     the single process's final sort;
//   * dist/subsequence go only to the owning shard
//     (ShardRouter::Partition) and the reply is relayed field-for-field;
//   * doubles cross the wire via FormatDouble <-> strtod, so every
//     distance survives bit-for-bit and the re-serialized merge is
//     byte-identical.
//
// Degradation: while a shard's worker is down, scan queries still answer
// from the remaining shards with `partial:true` and `shards_missing:[K]`
// (never cached by workers, so recovery is clean); dist/subsequence
// targeting the dead shard fail fast with an error. Stats, metrics, and
// slowlog fan out to every live worker and merge order-independently
// (counter sums, bucket-wise histogram merges).

#ifndef WARP_CLUSTER_ROUTER_H_
#define WARP_CLUSTER_ROUTER_H_

#include <cstdint>
#include <memory>
#include <string>

namespace warp {
namespace cluster {

class Supervisor;

struct RouterOptions {
  int port = 0;               // 0 = kernel-assigned; port() reports it.
  int connect_timeout_ms = 2000;   // Per worker (re)connect.
  int gather_timeout_ms = 60000;   // Max wait per sub-scan reply line.
};

// Accepts client connections and serves them against the supervisor's
// workers. Start() binds the listener; Serve() blocks in the accept loop
// until a client sends `shutdown` or RequestShutdown() is called.
class Router {
 public:
  Router(const RouterOptions& options, Supervisor* supervisor);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  bool Start(std::string* error);
  int port() const;
  void Serve();
  void RequestShutdown();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Start + the "listening"/"ready port=" stdout lines + Serve, mirroring
// serve::RunServer. Returns a process exit code.
int RunRouter(Router* router);

}  // namespace cluster
}  // namespace warp

#endif  // WARP_CLUSTER_ROUTER_H_
