// Lower bounds for cDTW_w.
//
// These are the cheap tests that make repeated exact DTW fast in practice
// — the "lower bounding and early abandoning" the paper says shave a
// further two-plus orders of magnitude off cDTW (and that cannot be
// applied to FastDTW). Each bound B satisfies B(q, c) <= cDTW_w(q, c), so
// a candidate whose bound already exceeds the best-so-far can be discarded
// without running DTW.
//
// All bounds assume equal-length series (the 1-NN classification setting)
// and are exact lower bounds for the same CostKind used by the DTW call.

#ifndef WARP_CORE_LOWER_BOUNDS_H_
#define WARP_CORE_LOWER_BOUNDS_H_

#include <limits>
#include <span>

#include "warp/common/cost.h"
#include "warp/core/envelope.h"

namespace warp {

inline constexpr double kNoAbandon = std::numeric_limits<double>::max();

// LB_Kim (first/last variant, as in the UCR suite): the costs of aligning
// the two endpoints are unavoidable because every warping path matches
// (0,0) and (n-1,m-1).
double LbKimFl(std::span<const double> x, std::span<const double> y,
               CostKind cost = CostKind::kSquared);

// LB_Keogh: sum of each candidate point's excursion outside the query's
// warping envelope. `envelope` must have been computed from the query with
// the same band as the eventual cDTW call. Once the partial sum crosses
// `abandon_above` the scan stops and the partial sum (already a valid
// lower bound exceeding the threshold) is returned.
double LbKeogh(const Envelope& query_envelope,
               std::span<const double> candidate,
               CostKind cost = CostKind::kSquared,
               double abandon_above = kNoAbandon);

// Symmetric refinement: max of LB_Keogh(env(q), c) and LB_Keogh(env(c), q).
// Tighter, but requires the candidate's envelope too.
double LbKeoghSymmetric(const Envelope& query_envelope,
                        std::span<const double> query,
                        const Envelope& candidate_envelope,
                        std::span<const double> candidate,
                        CostKind cost = CostKind::kSquared);

// LB_Improved (Lemire 2009): LB_Keogh plus the cost of the *projection*'s
// excursion — project the candidate onto the query's envelope, then add
// LB_Keogh of the query against the projection's own envelope (computed
// with the same band). Strictly >= LB_Keogh and still a valid lower bound
// of cDTW at that band. `band` must match the envelopes' band.
double LbImproved(const Envelope& query_envelope,
                  std::span<const double> query,
                  std::span<const double> candidate, size_t band,
                  CostKind cost = CostKind::kSquared);

}  // namespace warp

#endif  // WARP_CORE_LOWER_BOUNDS_H_
