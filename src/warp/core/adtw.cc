#include "warp/core/adtw.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "warp/common/assert.h"

namespace warp {

double AdtwDistance(std::span<const double> x, std::span<const double> y,
                    double omega, CostKind cost) {
  WARP_CHECK(!x.empty() && !y.empty());
  WARP_CHECK(omega >= 0.0);
  const size_t n = x.size();
  const size_t m = y.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  return WithCost(cost, [&](auto c) {
    // Same two-row layout as the DTW engine (dp[j+1] = D(i, j)), with the
    // amercement added on the two non-diagonal predecessors.
    std::vector<double> prev(m + 1, kInf);
    std::vector<double> cur(m + 1, kInf);
    prev[0] = 0.0;
    for (size_t i = 0; i < n; ++i) {
      cur[0] = kInf;
      double left = kInf;
      double diag = prev[0];
      for (size_t j = 0; j < m; ++j) {
        const double up = prev[j + 1];
        double best = diag;                        // Diagonal: no penalty.
        if (up + omega < best) best = up + omega;  // Stretch x.
        if (left + omega < best) best = left + omega;  // Stretch y.
        const double value = best + c(x[i], y[j]);
        cur[j + 1] = value;
        left = value;
        diag = up;
      }
      std::swap(prev, cur);
    }
    return prev[m];
  });
}

double SuggestAdtwOmega(std::span<const double> x, std::span<const double> y,
                        double ratio, CostKind cost) {
  WARP_CHECK(ratio >= 0.0);
  WARP_CHECK_MSG(x.size() == y.size(),
                 "omega suggestion uses the Euclidean per-step cost");
  const double per_step = EuclideanDistance(x, y, cost) /
                          static_cast<double>(x.size());
  return ratio * per_step;
}

}  // namespace warp
