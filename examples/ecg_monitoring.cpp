// ECG beat classification and rhythm monitoring — the paper's favorite
// domain, end to end.
//
// The paper argues all cardiological DTW is Case A: beats are short
// (120–200 samples), the natural warping W is a few percent, and nobody
// should ever compare hundred-beat regions. This example:
//   1. classifies single beats (normal vs PVC-like) with the accelerated
//      exact 1-NN cDTW engine at w = 5%,
//   2. scans a long rhythm with the matrix profile to surface the ectopic
//      beats as discords,
//   3. monitors the rhythm in (simulated) real time for a PVC template.
//
// Build & run:  ./build/examples/ecg_monitoring

#include <algorithm>
#include <cstdio>
#include <vector>

#include "warp/common/stopwatch.h"
#include "warp/gen/ecg.h"
#include "warp/mining/matrix_profile.h"
#include "warp/mining/nn_classifier.h"
#include "warp/mining/stream_monitor.h"
#include "warp/ts/znorm.h"

int main() {
  // --- 1: beat classification ----------------------------------------------
  warp::gen::EcgOptions options;
  options.seed = 99;
  const warp::Dataset pool = warp::gen::MakeBeatDataset(60, options);
  const auto [train, test] = pool.StratifiedSplit(0.5);
  const size_t band = options.beat_length * 5 / 100;  // w = 5%.

  const warp::AcceleratedNnClassifier classifier(train, band);
  const warp::ClassificationStats stats = classifier.Evaluate(test);
  std::printf("beat classification (N=%zu, w=5%%): accuracy %.1f%% over "
              "%zu beats in %.0f ms\n\n",
              options.beat_length, stats.accuracy * 100.0, stats.total,
              stats.seconds * 1e3);

  // --- 2: offline rhythm analysis -------------------------------------------
  warp::gen::EcgOptions rhythm_options;
  rhythm_options.seed = 7;
  rhythm_options.pvc_probability = 0.04;
  std::vector<size_t> beat_starts;
  std::vector<int> beat_labels;
  const std::vector<double> rhythm = warp::gen::MakeRhythm(
      300, rhythm_options, &beat_starts, &beat_labels);

  warp::Stopwatch mp_watch;
  const warp::MatrixProfile profile =
      warp::ComputeMatrixProfile(rhythm, rhythm_options.beat_length);
  const warp::ProfileDiscord discord = warp::TopDiscord(profile);
  std::printf("matrix profile over a %zu-sample rhythm (300 beats) took "
              "%.2f s\n",
              rhythm.size(), mp_watch.ElapsedSeconds());

  // Which beat does the discord land on, and is it really a PVC?
  size_t discord_beat = 0;
  for (size_t b = 0; b < beat_starts.size(); ++b) {
    if (beat_starts[b] <= discord.position) discord_beat = b;
  }
  size_t num_pvcs = 0;
  for (int label : beat_labels) {
    if (label == warp::gen::kPvcBeatLabel) ++num_pvcs;
  }
  std::printf("top discord at sample %zu -> beat #%zu, which is %s "
              "(%zu PVCs among 300 beats)\n\n",
              discord.position, discord_beat,
              beat_labels[discord_beat] == warp::gen::kPvcBeatLabel
                  ? "a PVC: found the ectopy"
                  : "NOT a PVC",
              num_pvcs);

  // --- 3: streaming PVC detection -------------------------------------------
  warp::Rng template_rng(1234);
  const std::vector<double> pvc_template =
      warp::gen::MakeBeat(warp::gen::kPvcBeatLabel, options, template_rng);
  warp::StreamMonitor monitor(pvc_template, band, /*threshold=*/20.0);

  warp::Stopwatch stream_watch;
  size_t alerts = 0;
  uint64_t last_alert = 0;
  for (double v : rhythm) {
    const auto event = monitor.Push(v);
    if (event.has_value() &&
        (alerts == 0 ||
         event->end_time > last_alert + options.beat_length / 2)) {
      ++alerts;
      last_alert = event->end_time;
    }
  }
  const double seconds = stream_watch.ElapsedSeconds();
  std::printf("streaming PVC monitor: %zu alerts (%zu true PVCs) over "
              "%zu samples in %.0f ms (%.1f Msamples/s; %.2f%% of windows "
              "reached DTW)\n",
              alerts, num_pvcs, rhythm.size(), seconds * 1e3,
              static_cast<double>(rhythm.size()) / seconds / 1e6,
              100.0 *
                  static_cast<double>(monitor.stats().full_dtw +
                                      monitor.stats().abandoned_dtw) /
                  static_cast<double>(monitor.stats().windows_checked));

  std::printf(
      "\nAt 250 Hz this monitor runs ~%.0fx faster than real time — the "
      "paper's footnote-3 point about what exact DTW already made "
      "possible.\n",
      static_cast<double>(rhythm.size()) / seconds / 250.0);
  return 0;
}
