#include "warp/core/subsequence_dtw.h"

#include "warp/common/assert.h"
#include "warp/core/dp_engine.h"
#include "warp/core/window.h"
#include "warp/common/metrics.h"

namespace warp {

double SubsequenceDtwDistance(std::span<const double> query,
                              std::span<const double> series,
                              CostKind cost,
                              DtwWorkspace* workspace) {
  WARP_CHECK(!query.empty() && !series.empty());
  const size_t n = query.size();
  const size_t m = series.size();
  WARP_COUNT_ADD(obs::Counter::kSubsequenceCells, n * m);
  // Free start = a virtual all-zero row above the matrix (row 0 then pays
  // only its own cell cost); free end = min over the last row.
  return WithCost(cost, [&](auto c) {
    return dp::TwoRowEngine(
        n, m, dp::FullRowRange{m - 1},
        dp::FreeEndsMinPlusPolicy<dp::SeriesCellCost<decltype(c)>>{
            {query.data(), series.data(), c}},
        dp::kInf, workspace);
  });
}

SubsequenceAlignment SubsequenceDtw(std::span<const double> query,
                                    std::span<const double> series,
                                    CostKind cost) {
  WARP_CHECK(!query.empty() && !series.empty());
  const size_t n = query.size();
  const size_t m = series.size();
  WARP_COUNT_ADD(obs::Counter::kSubsequenceCells, n * m);

  return WithCost(cost, [&](auto c) {
    const WarpingWindow window = WarpingWindow::Full(n, m);
    auto dp_result = dp::MaterializedDp<dp::PreferDiagonalTie,
                                        dp::FreeEndsAnchors>(
        n, m, window,
        [&](size_t i, size_t j) { return c(query[i], series[j]); });

    SubsequenceAlignment result;
    result.distance = dp_result.distance;
    result.end = dp_result.end_col;
    result.path = std::move(dp_result.path);
    result.start = result.path.front().j;
    return result;
  });
}

}  // namespace warp
