// ucr_runner — reproduce UCR-archive-style result rows on real data.
//
// Given a directory laid out like the UCR archive
// (<dir>/<Name>/<Name>_TRAIN.tsv and <Name>_TEST.tsv), runs for each
// requested dataset:
//   * 1-NN Euclidean error,
//   * best-window LOOCV search on the training set,
//   * 1-NN cDTW error at that window (accelerated exact engine),
//   * optionally 1-NN FastDTW error and runtime for contrast,
// and prints a row comparable to the archive's summary table (and to the
// bundled snapshot in warp/ucr). This is the bridge from the synthetic
// reproduction to the real archive for users who have it.
//
// Usage: ucr_runner <archive_dir> <DatasetName> [more names...]
//        [--max-window=20] [--fastdtw] [--radius=10]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "warp/common/stopwatch.h"
#include "warp/common/table_printer.h"
#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/mining/nn_classifier.h"
#include "warp/mining/window_search.h"
#include "warp/ts/io.h"
#include "warp/ucr/ucr_metadata.h"

namespace warp {
namespace tools {
namespace {

struct Options {
  std::string archive_dir;
  std::vector<std::string> datasets;
  size_t max_window_percent = 20;
  bool run_fastdtw = false;
  size_t radius = 10;
};

bool ParseArgs(int argc, char** argv, Options* options) {
  if (argc < 3) return false;
  options->archive_dir = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--max-window=", 0) == 0) {
      options->max_window_percent =
          static_cast<size_t>(std::strtoul(arg.c_str() + 13, nullptr, 10));
    } else if (arg == "--fastdtw") {
      options->run_fastdtw = true;
    } else if (arg.rfind("--radius=", 0) == 0) {
      options->radius =
          static_cast<size_t>(std::strtoul(arg.c_str() + 9, nullptr, 10));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    } else {
      options->datasets.push_back(arg);
    }
  }
  return !options->datasets.empty();
}

int Run(const Options& options) {
  TablePrinter table({"dataset", "N", "train", "test", "ED err",
                      "best w%", "cDTW err", "cDTW s", "FastDTW err",
                      "FastDTW s", "snapshot w%/err"});
  for (const std::string& name : options.datasets) {
    const std::string base = options.archive_dir + "/" + name + "/" + name;
    Dataset train;
    Dataset test;
    std::string error;
    if (!LoadUcrFile(base + "_TRAIN.tsv", &train, &error) ||
        !LoadUcrFile(base + "_TEST.tsv", &test, &error)) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(), error.c_str());
      continue;
    }
    const size_t length = train.UniformLength();
    if (length == 0 || test.UniformLength() != length) {
      std::fprintf(stderr, "%s: skipped (variable-length series)\n",
                   name.c_str());
      continue;
    }

    // Euclidean baseline.
    const ClassificationStats ed = Evaluate1Nn(
        train, test,
        [](std::span<const double> a, std::span<const double> b) {
          return EuclideanDistance(a, b);
        });

    // Best window by LOOCV (the archive's procedure), step 1% of length.
    const WindowSearchResult search = FindBestWindowLoocv(
        train, options.max_window_percent * length / 100,
        std::max<size_t>(1, length / 100));

    const AcceleratedNnClassifier classifier(train, search.best_band);
    const ClassificationStats cdtw = classifier.Evaluate(test);

    std::string fastdtw_err = "-";
    std::string fastdtw_time = "-";
    if (options.run_fastdtw) {
      const size_t radius = options.radius;
      const ClassificationStats fast = Evaluate1Nn(
          train, test,
          [radius](std::span<const double> a, std::span<const double> b) {
            return FastDtwDistance(a, b, radius);
          });
      fastdtw_err = TablePrinter::FormatDouble(fast.error_rate, 3);
      fastdtw_time = TablePrinter::FormatDouble(fast.seconds, 1);
    }

    std::string snapshot = "-";
    if (const ucr::DatasetInfo* info = ucr::FindDataset(name)) {
      snapshot = std::to_string(info->best_window_percent) + "/" +
                 TablePrinter::FormatDouble(info->cdtw_error, 3);
    }

    table.AddRow({name, std::to_string(length),
                  std::to_string(train.size()), std::to_string(test.size()),
                  TablePrinter::FormatDouble(ed.error_rate, 3),
                  TablePrinter::FormatDouble(
                      search.best_window_percent(length), 0),
                  TablePrinter::FormatDouble(cdtw.error_rate, 3),
                  TablePrinter::FormatDouble(cdtw.seconds, 1), fastdtw_err,
                  fastdtw_time, snapshot});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace tools
}  // namespace warp

int main(int argc, char** argv) {
  warp::tools::Options options;
  if (!warp::tools::ParseArgs(argc, argv, &options)) {
    std::fprintf(stderr,
                 "usage: ucr_runner <archive_dir> <Dataset> [...] "
                 "[--max-window=20] [--fastdtw] [--radius=10]\n");
    return 1;
  }
  return warp::tools::Run(options);
}
