#include "warp/serve/snapshot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "warp/common/metrics.h"
#include "warp/common/stopwatch.h"
#include "warp/obs/histogram.h"

namespace warp {
namespace serve {

namespace {

constexpr char kMagic[8] = {'w', 'a', 'r', 'p', 's', 'n', 'a', 'p'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 8;

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t hash = 1469598103934665603ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

// ---- Payload writer: appends little-endian scalars to a byte buffer.

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

// Raw IEEE-754 bit pattern: the round trip is bit-exact by construction,
// including negative zero and subnormals.
void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

void PutDoubles(std::string* out, const double* values, size_t count) {
  for (size_t i = 0; i < count; ++i) PutF64(out, values[i]);
}

// ---- Payload reader: bounds-checked little-endian cursor.

struct Reader {
  const std::string& bytes;
  size_t pos = 0;

  bool U32(uint32_t* v) {
    if (bytes.size() - pos < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<unsigned char>(bytes[pos + i]))
            << (8 * i);
    }
    pos += 4;
    return true;
  }

  bool U64(uint64_t* v) {
    if (bytes.size() - pos < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<unsigned char>(bytes[pos + i]))
            << (8 * i);
    }
    pos += 8;
    return true;
  }

  bool I64(int64_t* v) {
    uint64_t u;
    if (!U64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  bool F64(double* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool String(std::string* s) {
    uint64_t len;
    if (!U64(&len)) return false;
    if (bytes.size() - pos < len) return false;
    s->assign(bytes, pos, len);
    pos += len;
    return true;
  }

  bool Doubles(std::vector<double>* out, size_t count) {
    if ((bytes.size() - pos) / 8 < count) return false;
    out->resize(count);
    for (size_t i = 0; i < count; ++i) {
      if (!F64(&(*out)[i])) return false;
    }
    return true;
  }
};

bool Fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

// RAII FILE handle so every early return closes the descriptor.
struct File {
  std::FILE* f = nullptr;
  explicit File(const std::string& path, const char* mode)
      : f(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (f != nullptr) std::fclose(f);
  }
};

std::string BuildPayload(const StoredDataset& stored) {
  std::string payload;
  PutString(&payload, stored.name);
  PutU64(&payload, stored.epoch);
  PutU64(&payload, stored.uniform_length);
  PutU64(&payload, stored.size());
  PutU64(&payload, stored.bands.size());
  for (const size_t band : stored.bands) PutU64(&payload, band);
  // Everything below walks GLOBAL series order via `locate`, undoing the
  // sharded layout: the file never depends on the saving server's shard
  // count.
  for (size_t i = 0; i < stored.size(); ++i) {
    const TimeSeries& s = stored.SeriesAt(i);
    PutU64(&payload, s.size());
    PutI64(&payload, s.label());
    PutString(&payload, s.name());
    PutDoubles(&payload, s.view().data(), s.size());
  }
  for (size_t i = 0; i < stored.size(); ++i) {
    const SeriesRef ref = stored.locate[i];
    PutF64(&payload, stored.shards[ref.shard].head[ref.local]);
  }
  for (size_t i = 0; i < stored.size(); ++i) {
    const SeriesRef ref = stored.locate[i];
    PutF64(&payload, stored.shards[ref.shard].tail[ref.local]);
  }
  for (size_t slot = 0; slot < stored.bands.size(); ++slot) {
    for (size_t i = 0; i < stored.size(); ++i) {
      const SeriesRef ref = stored.locate[i];
      const Envelope& env =
          stored.shards[ref.shard].envelopes[slot][ref.local];
      PutDoubles(&payload, env.upper.data(), env.upper.size());
      PutDoubles(&payload, env.lower.data(), env.lower.size());
    }
  }
  return payload;
}

}  // namespace

bool SaveSnapshot(const StoredDataset& stored, const std::string& path,
                  std::string* error, SnapshotMeta* meta) {
  const Stopwatch watch;
  const std::string payload = BuildPayload(stored);
  const uint64_t checksum = Fnv1a(payload);

  std::string header;
  header.append(kMagic, sizeof(kMagic));
  PutU32(&header, kVersion);
  PutU32(&header, 0);  // flags
  PutU64(&header, payload.size());
  std::string trailer;
  PutU64(&trailer, checksum);

  File file(path, "wb");
  if (file.f == nullptr) {
    return Fail(error, "cannot open snapshot file for writing: " + path);
  }
  if (std::fwrite(header.data(), 1, header.size(), file.f) != header.size() ||
      std::fwrite(payload.data(), 1, payload.size(), file.f) !=
          payload.size() ||
      std::fwrite(trailer.data(), 1, trailer.size(), file.f) !=
          trailer.size()) {
    return Fail(error, "short write saving snapshot: " + path);
  }

  if (meta != nullptr) {
    meta->dataset = stored.name;
    meta->epoch = stored.epoch;
    meta->series = stored.size();
    meta->uniform_length = stored.uniform_length;
    meta->bands = stored.bands;
    meta->payload_bytes = payload.size();
    meta->checksum = checksum;
  }
  WARP_COUNT(obs::Counter::kServeSnapshotSaves);
  WARP_HISTOGRAM_RECORD_US(obs::Histogram::kServeSnapshotSaveUs,
                           watch.ElapsedMicros());
  return true;
}

bool LoadSnapshot(const std::string& path, DatasetIndex* index,
                  SnapshotMeta* meta, std::string* error) {
  const Stopwatch watch;
  File file(path, "rb");
  if (file.f == nullptr) {
    return Fail(error, "cannot open snapshot file: " + path);
  }

  char header[kHeaderBytes];
  if (std::fread(header, 1, kHeaderBytes, file.f) != kHeaderBytes) {
    return Fail(error, "truncated snapshot header: " + path);
  }
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return Fail(error, "bad snapshot magic (not a warp-snap file): " + path);
  }
  std::string fixed(header + 8, kHeaderBytes - 8);
  Reader fixed_reader{fixed};
  uint32_t version = 0;
  uint32_t flags = 0;
  uint64_t payload_len = 0;
  fixed_reader.U32(&version);
  fixed_reader.U32(&flags);
  fixed_reader.U64(&payload_len);
  if (version != kVersion) {
    return Fail(error, "unsupported snapshot version " +
                           std::to_string(version) + " (this build reads " +
                           std::to_string(kVersion) + "): " + path);
  }
  if (flags != 0) {
    return Fail(error, "snapshot uses unknown feature flags: " + path);
  }

  std::string payload(payload_len, '\0');
  if (payload_len > 0 &&
      std::fread(payload.data(), 1, payload_len, file.f) != payload_len) {
    return Fail(error, "truncated snapshot payload: " + path);
  }
  char trailer[8];
  if (std::fread(trailer, 1, sizeof(trailer), file.f) != sizeof(trailer)) {
    return Fail(error, "truncated snapshot checksum: " + path);
  }
  std::string trailer_bytes(trailer, sizeof(trailer));
  Reader trailer_reader{trailer_bytes};
  uint64_t expected = 0;
  trailer_reader.U64(&expected);
  const uint64_t actual = Fnv1a(payload);
  if (actual != expected) {
    return Fail(error, "snapshot checksum mismatch (file corrupt): " + path);
  }

  Reader r{payload};
  DatasetIndex parsed;
  SnapshotMeta parsed_meta;
  uint64_t uniform_length = 0;
  uint64_t series_count = 0;
  uint64_t band_count = 0;
  if (!r.String(&parsed_meta.dataset) || !r.U64(&parsed_meta.epoch) ||
      !r.U64(&uniform_length) || !r.U64(&series_count) ||
      !r.U64(&band_count)) {
    return Fail(error, "truncated snapshot payload: " + path);
  }
  if (series_count == 0) {
    return Fail(error, "snapshot has no series: " + path);
  }
  parsed.uniform_length = static_cast<size_t>(uniform_length);
  for (uint64_t b = 0; b < band_count; ++b) {
    uint64_t band = 0;
    if (!r.U64(&band)) {
      return Fail(error, "truncated snapshot payload: " + path);
    }
    parsed.bands.push_back(static_cast<size_t>(band));
  }

  for (uint64_t i = 0; i < series_count; ++i) {
    uint64_t length = 0;
    int64_t label = 0;
    std::string name;
    if (!r.U64(&length) || !r.I64(&label) || !r.String(&name)) {
      return Fail(error, "truncated snapshot payload: " + path);
    }
    if (length == 0) {
      return Fail(error, "snapshot contains an empty series: " + path);
    }
    if (uniform_length > 0 && length != uniform_length) {
      return Fail(error,
                  "snapshot series length disagrees with its uniform-length "
                  "header: " +
                      path);
    }
    std::vector<double> values;
    if (!r.Doubles(&values, static_cast<size_t>(length))) {
      return Fail(error, "truncated snapshot payload: " + path);
    }
    for (const double v : values) {
      if (!std::isfinite(v)) {
        return Fail(error, "snapshot contains a non-finite value: " + path);
      }
    }
    TimeSeries series(std::move(values), static_cast<int>(label));
    series.set_name(std::move(name));
    parsed.data.Add(std::move(series));
  }
  parsed.data.set_name(parsed_meta.dataset);

  if (!r.Doubles(&parsed.head, static_cast<size_t>(series_count)) ||
      !r.Doubles(&parsed.tail, static_cast<size_t>(series_count))) {
    return Fail(error, "truncated snapshot payload: " + path);
  }
  for (uint64_t i = 0; i < series_count; ++i) {
    const std::vector<double>& values = parsed.data[i].values();
    if (std::memcmp(&parsed.head[i], &values.front(), sizeof(double)) != 0 ||
        std::memcmp(&parsed.tail[i], &values.back(), sizeof(double)) != 0) {
      return Fail(error,
                  "snapshot endpoint cache disagrees with its series: " +
                      path);
    }
  }

  parsed.envelopes.resize(parsed.bands.size());
  for (size_t slot = 0; slot < parsed.bands.size(); ++slot) {
    parsed.envelopes[slot].reserve(series_count);
    for (uint64_t i = 0; i < series_count; ++i) {
      Envelope env;
      const size_t length = parsed.data[i].size();
      if (!r.Doubles(&env.upper, length) || !r.Doubles(&env.lower, length)) {
        return Fail(error, "truncated snapshot payload: " + path);
      }
      parsed.envelopes[slot].push_back(std::move(env));
    }
  }
  if (r.pos != payload.size()) {
    return Fail(error, "snapshot has trailing garbage after payload: " + path);
  }

  parsed_meta.series = static_cast<size_t>(series_count);
  parsed_meta.uniform_length = parsed.uniform_length;
  parsed_meta.bands = parsed.bands;
  parsed_meta.payload_bytes = payload.size();
  parsed_meta.checksum = actual;

  *index = std::move(parsed);
  if (meta != nullptr) *meta = std::move(parsed_meta);
  WARP_COUNT(obs::Counter::kServeSnapshotLoads);
  WARP_HISTOGRAM_RECORD_US(obs::Histogram::kServeSnapshotLoadUs,
                           watch.ElapsedMicros());
  return true;
}

bool ListSnapshotFiles(const std::string& dir,
                       std::vector<std::string>* paths, std::string* error) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Fail(error, "cannot read snapshot directory " + dir + ": " +
                           ec.message());
  }
  std::vector<std::string> found;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const std::filesystem::path& p = entry.path();
    if (p.extension() == kSnapshotExtension) found.push_back(p.string());
  }
  std::sort(found.begin(), found.end());
  *paths = std::move(found);
  return true;
}

}  // namespace serve
}  // namespace warp
