// Agglomerative hierarchical clustering and dendrograms (paper Fig. 7).
//
// The paper's headline accuracy failure is a *clustering topology flip*:
// under Full DTW the adversarial pair {A, B} merges first; under
// FastDTW_20 it does not. This module builds dendrograms from any
// DistanceMatrix with single, complete, or average linkage and renders
// them as ASCII trees and Newick strings.

#ifndef WARP_MINING_HIERARCHICAL_CLUSTERING_H_
#define WARP_MINING_HIERARCHICAL_CLUSTERING_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "warp/core/distance_matrix.h"

namespace warp {

enum class Linkage {
  kSingle,    // Nearest members.
  kComplete,  // Farthest members.
  kAverage,   // Unweighted mean (UPGMA).
};

// One merge: clusters are numbered 0..n-1 for leaves, n+k for the cluster
// created by merge k.
struct MergeStep {
  size_t left = 0;
  size_t right = 0;
  double height = 0.0;  // Linkage distance at which the merge happened.
};

class Dendrogram {
 public:
  Dendrogram(size_t num_leaves, std::vector<MergeStep> merges);

  size_t num_leaves() const { return num_leaves_; }
  const std::vector<MergeStep>& merges() const { return merges_; }

  // Leaf labels of the subtree rooted at cluster `id`, left to right.
  std::vector<size_t> LeavesOf(size_t cluster_id) const;

  // Cluster assignment (values 0..k-1) obtained by undoing the last k-1
  // merges. k must be in [1, num_leaves].
  std::vector<int> CutIntoClusters(size_t k) const;

  // Newick tree with branch heights, e.g. "((A:0.01,B:0.01):3.4,C:3.41);".
  std::string ToNewick(std::span<const std::string> labels) const;

  // Indented ASCII rendering with merge heights.
  std::string RenderAscii(std::span<const std::string> labels) const;

 private:
  size_t num_leaves_;
  std::vector<MergeStep> merges_;
};

// O(n^3) Lance–Williams agglomeration — ample for the paper's use (3–1000
// series).
Dendrogram AgglomerativeCluster(const DistanceMatrix& distances,
                                Linkage linkage);

}  // namespace warp

#endif  // WARP_MINING_HIERARCHICAL_CLUSTERING_H_
