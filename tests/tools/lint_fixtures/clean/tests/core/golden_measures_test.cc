#include "warp/core/measure.h"

namespace {

const char* GoldenNames() {
  static const char* kNames[] = {"dtw", "fastdtw"};
  return kNames[0];
}

}  // namespace
