// Unit tests for the synthetic ECG generator and its Case-A properties.

#include "warp/gen/ecg.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "warp/core/dtw.h"
#include "warp/mining/nn_classifier.h"
#include "warp/ts/znorm.h"

namespace warp {
namespace gen {
namespace {

TEST(EcgTest, BeatHasDominantRWave) {
  EcgOptions options;
  Rng rng(241);
  const std::vector<double> beat = MakeBeat(kNormalBeatLabel, options, rng);
  ASSERT_EQ(beat.size(), options.beat_length);
  // The R peak is around 42% of the beat and is the global maximum.
  const size_t peak = static_cast<size_t>(
      std::max_element(beat.begin(), beat.end()) - beat.begin());
  EXPECT_NEAR(static_cast<double>(peak),
              0.42 * static_cast<double>(options.beat_length),
              0.06 * static_cast<double>(options.beat_length));
}

TEST(EcgTest, MorphologiesAreDistinct) {
  EcgOptions options;
  Rng rng(242);
  const std::vector<double> normal =
      ZNormalized(MakeBeat(kNormalBeatLabel, options, rng));
  const std::vector<double> pvc =
      ZNormalized(MakeBeat(kPvcBeatLabel, options, rng));
  const std::vector<double> normal2 =
      ZNormalized(MakeBeat(kNormalBeatLabel, options, rng));
  const size_t band = options.beat_length / 20;
  EXPECT_LT(CdtwDistance(normal, normal2, band),
            CdtwDistance(normal, pvc, band));
}

TEST(EcgTest, BeatsClassifyNearPerfectlyWithSmallWindow) {
  // The paper's Case-A story on its favorite domain: beats + small w.
  EcgOptions options;
  options.seed = 243;
  const Dataset pool = MakeBeatDataset(20, options);
  const auto [train, test] = pool.StratifiedSplit(0.5);
  const AcceleratedNnClassifier classifier(train,
                                           options.beat_length * 5 / 100);
  const ClassificationStats stats = classifier.Evaluate(test);
  EXPECT_GT(stats.accuracy, 0.95);
}

TEST(EcgTest, RhythmConcatenatesBeatsWithJitter) {
  EcgOptions options;
  options.seed = 244;
  options.rate_jitter = 0.1;
  std::vector<size_t> starts;
  std::vector<int> labels;
  const std::vector<double> rhythm =
      MakeRhythm(20, options, &starts, &labels);
  ASSERT_EQ(starts.size(), 20u);
  ASSERT_EQ(labels.size(), 20u);
  EXPECT_EQ(starts.front(), 0u);
  // Beat lengths vary within the jitter bound.
  size_t min_len = rhythm.size();
  size_t max_len = 0;
  for (size_t b = 1; b < starts.size(); ++b) {
    const size_t len = starts[b] - starts[b - 1];
    min_len = std::min(min_len, len);
    max_len = std::max(max_len, len);
  }
  EXPECT_GE(min_len,
            static_cast<size_t>(0.85 * static_cast<double>(
                                           options.beat_length)));
  EXPECT_LE(max_len,
            static_cast<size_t>(1.15 * static_cast<double>(
                                           options.beat_length)));
  EXPECT_GT(max_len, min_len);  // Jitter actually happened.
}

TEST(EcgTest, PvcProbabilityControlsMix) {
  EcgOptions options;
  options.seed = 245;
  options.pvc_probability = 0.3;
  std::vector<int> labels;
  MakeRhythm(200, options, nullptr, &labels);
  const size_t pvcs = static_cast<size_t>(
      std::count(labels.begin(), labels.end(), kPvcBeatLabel));
  EXPECT_GT(pvcs, 30u);
  EXPECT_LT(pvcs, 90u);
}

TEST(EcgTest, DeterministicPerSeed) {
  EcgOptions options;
  options.seed = 246;
  const Dataset a = MakeBeatDataset(3, options);
  const Dataset b = MakeBeatDataset(3, options);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].values(), b[i].values());
  }
}

}  // namespace
}  // namespace gen
}  // namespace warp
