// Deterministic, seedable pseudo-random number generation.
//
// All data generators in warp/gen take an explicit seed and route their
// randomness through Rng so that every experiment in the paper reproduction
// is bit-reproducible across runs. The engine is xoshiro256** (Blackman &
// Vigna), seeded via SplitMix64; both are implemented here so the library
// has no dependency on the platform's std::mt19937 stream ordering.

#ifndef WARP_COMMON_RANDOM_H_
#define WARP_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <limits>

#include "warp/common/assert.h"

namespace warp {

// SplitMix64: used to expand a single 64-bit seed into the 256-bit xoshiro
// state. Public because it is occasionally useful for deriving independent
// sub-seeds (e.g. one per generated exemplar).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// xoshiro256** PRNG with convenience distributions. Copyable: copying an
// Rng forks the stream (both copies then produce the same sequence), which
// generators use to create reproducible independent exemplars.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9c0ffee123456789ULL) {
    SplitMix64 mix(seed);
    for (auto& word : state_) word = mix.Next();
  }

  // Uniform over the full 64-bit range.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    WARP_DCHECK(lo <= hi);
    return lo + (hi - lo) * NextDouble();
  }

  // Uniform integer in [0, bound). bound must be positive.
  uint64_t UniformInt(uint64_t bound) {
    WARP_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (~bound + 1) % bound;  // = 2^64 mod bound
    for (;;) {
      const uint64_t r = NextU64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    WARP_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Standard normal via Marsaglia polar method.
  double Gaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u, v, s;
    do {
      u = Uniform(-1.0, 1.0);
      v = Uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_gaussian_ = v * factor;
    has_cached_gaussian_ = true;
    return u * factor;
  }

  double Gaussian(double mean, double stddev) {
    WARP_DCHECK(stddev >= 0.0);
    return mean + stddev * Gaussian();
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace warp

#endif  // WARP_COMMON_RANDOM_H_
