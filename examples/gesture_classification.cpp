// Gesture classification with the full exact-DTW tool chain (Case A).
//
// The end-to-end workflow the paper says "at least 99%" of DTW users
// need:
//   1. learn the best warping window w from the training data
//      (leave-one-out cross-validation, the UCR-archive procedure),
//   2. classify with the accelerated exact 1-NN cDTW engine
//      (LB_Kim -> LB_Keogh -> early-abandoning DTW),
//   3. compare against Euclidean and FastDTW baselines.
//
// Build & run:  ./build/examples/gesture_classification

#include <cstdio>

#include "warp/common/stopwatch.h"
#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/gen/gesture.h"
#include "warp/mining/evaluation.h"
#include "warp/mining/nn_classifier.h"
#include "warp/mining/window_search.h"

int main() {
  // A UWave-like setup, scaled to run in seconds: 8 gesture classes,
  // length 315 (the per-axis UWave length), 10 train / 15 test per class.
  warp::gen::GestureOptions options;
  options.length = 315;
  options.num_classes = 8;
  options.warp_fraction = 0.12;  // Heavy re-performance variation.
  options.noise_stddev = 0.5;
  options.seed = 20260704;
  const warp::Dataset pool = warp::gen::MakeGestureDataset(20, options);
  const auto [train, test] = pool.StratifiedSplit(0.35);
  std::printf("dataset: %zu train / %zu test, length %zu, %d classes\n\n",
              train.size(), test.size(), options.length,
              options.num_classes);

  // Step 1: find the best window on the training data.
  warp::Stopwatch search_watch;
  const warp::WindowSearchResult search = warp::FindBestWindowLoocv(
      train, /*max_band=*/options.length / 5, /*step=*/4);
  std::printf("best-window search (LOOCV, %zu candidate bands) took %.1f "
              "s\n",
              search.bands.size(), search_watch.ElapsedSeconds());
  std::printf("  best band = %zu cells (w = %.1f%%), LOOCV accuracy %.1f%%\n\n",
              search.best_band,
              search.best_window_percent(options.length),
              search.best_accuracy * 100.0);

  // Step 2: classify the held-out set with the accelerated exact engine.
  const warp::AcceleratedNnClassifier classifier(train, search.best_band);
  warp::ClassificationStats accelerated = classifier.Evaluate(test);
  std::printf("accelerated exact 1-NN cDTW_%zu:\n", search.best_band);
  std::printf("  accuracy %.1f%% in %.2f s\n", accelerated.accuracy * 100.0,
              accelerated.seconds);
  warp::ConfusionMatrix confusion;
  for (const auto& query : test.series()) {
    confusion.Add(query.label(), classifier.Classify(query.view()).label);
  }
  std::printf("  macro-F1 %.3f; confusion matrix:\n%s", confusion.MacroF1(),
              confusion.ToString().c_str());
  // A second pass collecting cascade statistics.
  warp::ClassificationStats cascade;
  for (const auto& query : test.series()) {
    classifier.Classify(query.view(), &cascade);
  }
  std::printf("  cascade: %llu candidates -> %llu LB_Kim-pruned, %llu "
              "LB_Keogh-pruned, %llu abandoned, %llu full DTWs\n\n",
              static_cast<unsigned long long>(cascade.candidates),
              static_cast<unsigned long long>(cascade.pruned_by_kim),
              static_cast<unsigned long long>(cascade.pruned_by_keogh),
              static_cast<unsigned long long>(cascade.abandoned_dtw),
              static_cast<unsigned long long>(cascade.full_dtw));

  // Step 3: baselines.
  const warp::ClassificationStats euclidean = warp::Evaluate1Nn(
      train, test, [](std::span<const double> a, std::span<const double> b) {
        return warp::EuclideanDistance(a, b);
      });
  const warp::ClassificationStats fastdtw = warp::Evaluate1Nn(
      train, test, [](std::span<const double> a, std::span<const double> b) {
        return warp::FastDtwDistance(a, b, 10);
      });
  std::printf("baselines:\n");
  std::printf("  1-NN Euclidean : accuracy %.1f%% in %.2f s\n",
              euclidean.accuracy * 100.0, euclidean.seconds);
  std::printf("  1-NN FastDTW_10: accuracy %.1f%% in %.2f s (approximate, "
              "and approximates the *unconstrained* DTW the archive shows "
              "is less accurate)\n",
              fastdtw.accuracy * 100.0, fastdtw.seconds);
  return 0;
}
