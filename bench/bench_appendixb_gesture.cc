// Experiment E9 — paper Appendix B (independent third-party confirmation).
//
// Schneider et al. re-ran their RGB-video gesture classifier replacing the
// `fastdtw` package (radius 30) with the authors' exact DTW and found the
// exact version was ~24x faster on average and ~5% *more accurate*
// (77.38% -> 82.14%). This harness reproduces the protocol on synthetic
// multichannel gestures: 1-NN classification of skeleton-like channels
// under (a) FastDTW_30, (b) exact unconstrained multichannel DTW, and
// (c) exact cDTW at a 10% window.
//
// Flags: --channels (6), --length (120), --classes (8), --train (6),
//        --test (4), --radius (30), --json=<path>.

#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_flags.h"
#include "warp/common/stopwatch.h"
#include "warp/common/table_printer.h"
#include "warp/core/dtw.h"
#include "warp/core/fastdtw.h"
#include "warp/core/fastdtw_reference.h"
#include "warp/gen/gesture.h"
#include "warp/mining/nn_classifier.h"
#include "warp/common/metrics.h"
#include "warp/obs/report.h"

namespace warp {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t channels = static_cast<size_t>(flags.GetInt("channels", 6));
  const size_t length = static_cast<size_t>(flags.GetInt("length", 120));
  const int classes = static_cast<int>(flags.GetInt("classes", 8));
  const size_t per_class_train =
      static_cast<size_t>(flags.GetInt("train", 6));
  const size_t per_class_test = static_cast<size_t>(flags.GetInt("test", 4));
  const size_t radius = static_cast<size_t>(flags.GetInt("radius", 30));
  const size_t threads = SingleCoreThreadsFlag(flags);
  const std::string json_path = JsonFlag(flags);

  obs::BenchReport report(
      "E9 / Appendix B",
      "Multichannel gesture 1-NN: FastDTW_30 vs exact DTW");
  report.AddConfig("threads", static_cast<int64_t>(threads));
  report.AddConfig("channels", static_cast<int64_t>(channels));
  report.AddConfig("length", static_cast<int64_t>(length));
  report.AddConfig("classes", classes);
  report.AddConfig("train", static_cast<int64_t>(per_class_train));
  report.AddConfig("test", static_cast<int64_t>(per_class_test));
  report.AddConfig("radius", static_cast<int64_t>(radius));

  PrintBanner("E9 / Appendix B",
              "Multichannel gesture 1-NN classification: FastDTW_30 vs "
              "exact DTW (the Schneider et al. re-run)");

  gen::GestureOptions options;
  options.length = length;
  options.num_classes = classes;
  options.warp_fraction = flags.GetDouble("warp", 0.08);
  options.noise_stddev = flags.GetDouble("noise", 0.15);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 555));
  SimdFlag(flags);
  flags.Finalize();
  report.AddConfig("warp", options.warp_fraction);
  report.AddConfig("noise", options.noise_stddev);
  report.AddConfig("seed", static_cast<uint64_t>(options.seed));
  // One pool per class (class templates are derived from the seed, so
  // train and test must come from the same draw), split class-major:
  // the first per_class_train exemplars of each class train, the rest test.
  const auto pool = gen::MakeMultiGestureDataset(
      per_class_train + per_class_test, channels, options);
  std::vector<MultiSeries> train;
  std::vector<MultiSeries> test;
  const size_t pool_per_class = per_class_train + per_class_test;
  for (size_t i = 0; i < pool.size(); ++i) {
    (i % pool_per_class < per_class_train ? train : test).push_back(pool[i]);
  }
  std::printf("%zu train / %zu test exemplars, %zu channels, length %zu\n\n",
              train.size(), test.size(), channels, length);

  // The `fastdtw` package is exactly what Schneider et al. measured, so
  // the reference port is the headline; the optimized port is also timed.
  const MultiMeasure fastdtw = [radius](const MultiSeries& a,
                                        const MultiSeries& b) {
    return ReferenceMultiFastDtw(a, b, radius).distance;
  };
  const MultiMeasure fastdtw_optimized = [radius](const MultiSeries& a,
                                                  const MultiSeries& b) {
    return MultiFastDtw(a, b, radius).distance;
  };
  const MultiMeasure exact_full = [](const MultiSeries& a,
                                     const MultiSeries& b) {
    return MultiDtwDistance(a, b);
  };
  const size_t band = length / 10;
  DtwBuffer buffer;
  const MultiMeasure exact_banded = [band, &buffer](const MultiSeries& a,
                                                    const MultiSeries& b) {
    return MultiCdtwDistance(a, b, band, CostKind::kSquared, &buffer);
  };

  // Each evaluation is one pass over the test set; record the pass as a
  // case whose counters cover every distance call it made.
  const auto evaluate = [&](const std::string& name,
                            const MultiMeasure& measure) {
    const obs::MetricsSnapshot before = obs::SnapshotCounters();
    const ClassificationStats stats = Evaluate1NnMulti(train, test, measure);
    report.AddCase(name, SummarizeSamples({stats.seconds}),
                   obs::CountersSince(before));
    return stats;
  };
  const ClassificationStats fast_stats = evaluate("fastdtw_ref_r30", fastdtw);
  const ClassificationStats fast_opt_stats =
      evaluate("fastdtw_opt_r30", fastdtw_optimized);
  const ClassificationStats full_stats = evaluate("full_dtw", exact_full);
  const ClassificationStats banded_stats =
      evaluate("cdtw_10", exact_banded);

  TablePrinter table(
      {"measure", "accuracy (%)", "total time (s)", "vs FastDTW"});
  auto add = [&](const char* name, const ClassificationStats& stats) {
    table.AddRow({name,
                  TablePrinter::FormatDouble(stats.accuracy * 100.0, 2),
                  TablePrinter::FormatDouble(stats.seconds, 3),
                  TablePrinter::FormatDouble(
                      fast_stats.seconds / stats.seconds, 1) + "x"});
  };
  add("FastDTW_30 (reference pkg)", fast_stats);
  add("FastDTW_30 (optimized)", fast_opt_stats);
  add("Full DTW (exact)", full_stats);
  add("cDTW_10% (exact)", banded_stats);
  table.Print();

  std::printf(
      "\nPaper's Appendix-B findings: exact DTW ~24x faster (mean), and "
      "accuracy improved ~5 points.\n"
      "Shape check: exact cDTW faster than FastDTW: %s; exact accuracy >= "
      "FastDTW accuracy: %s\n",
      banded_stats.seconds < fast_stats.seconds ? "reproduced"
                                                : "NOT reproduced",
      banded_stats.accuracy >= fast_stats.accuracy - 1e-9
          ? "reproduced"
          : "NOT reproduced");
  std::printf("\nWork counters:\n%s", report.CounterTable().c_str());
  report.Finish(json_path);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace warp

int main(int argc, char** argv) { return warp::bench::Main(argc, argv); }
