// Derivative Dynamic Time Warping (Keogh & Pazzani, SDM 2001).
//
// An extension beyond the paper: DTW on the estimated first derivative of
// the series rather than on raw values. Alignments are then driven by
// *shape* (slopes) instead of absolute level, which prevents the
// "singularity" artifacts where one point maps onto a long constant run.
// Included because it composes with everything here — DDTW is just DTW on
// a transformed series, so windows, lower bounds and FastDTW all apply.

#ifndef WARP_CORE_DDTW_H_
#define WARP_CORE_DDTW_H_

#include <span>
#include <vector>

#include "warp/core/dtw.h"

namespace warp {

// The paper's derivative estimate:
//   d[i] = ((x[i] - x[i-1]) + (x[i+1] - x[i-1]) / 2) / 2
// for interior points; the endpoints copy their neighbors' estimates.
// Requires at least 3 points.
std::vector<double> DerivativeTransform(std::span<const double> values);

// DTW distance between the derivative transforms, constrained to `band`
// cells (band >= length gives unconstrained DDTW).
double DdtwDistance(std::span<const double> x, std::span<const double> y,
                    size_t band, CostKind cost = CostKind::kSquared,
                    DtwWorkspace* workspace = nullptr);

// Path-recovering variant. The path indexes the *original* series (the
// transform is length-preserving).
DtwResult Ddtw(std::span<const double> x, std::span<const double> y,
               size_t band, CostKind cost = CostKind::kSquared);

}  // namespace warp

#endif  // WARP_CORE_DDTW_H_
