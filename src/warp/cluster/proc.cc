#include "warp/cluster/proc.h"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "warp/common/stopwatch.h"

namespace warp {
namespace cluster {

ChildProcess::~ChildProcess() { CloseStdout(); }

ChildProcess::ChildProcess(ChildProcess&& other) noexcept
    : pid_(other.pid_),
      stdout_fd_(other.stdout_fd_),
      pending_(std::move(other.pending_)) {
  other.pid_ = -1;
  other.stdout_fd_ = -1;
}

ChildProcess& ChildProcess::operator=(ChildProcess&& other) noexcept {
  if (this != &other) {
    CloseStdout();
    pid_ = other.pid_;
    stdout_fd_ = other.stdout_fd_;
    pending_ = std::move(other.pending_);
    other.pid_ = -1;
    other.stdout_fd_ = -1;
  }
  return *this;
}

void ChildProcess::CloseStdout() {
  if (stdout_fd_ >= 0) {
    close(stdout_fd_);
    stdout_fd_ = -1;
  }
  pending_.clear();
}

bool ChildProcess::Spawn(const std::vector<std::string>& argv,
                         std::string* error) {
  if (argv.empty()) {
    *error = "spawn: empty argv";
    return false;
  }
  if (pid_ > 0) {
    *error = "spawn: a child is already running (pid " +
             std::to_string(pid_) + ")";
    return false;
  }
  int fds[2];
  if (pipe(fds) != 0) {
    *error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    *error = std::string("fork: ") + std::strerror(errno);
    close(fds[0]);
    close(fds[1]);
    return false;
  }
  if (pid == 0) {
    // Child: stdout -> pipe write end, then exec. Only async-signal-safe
    // calls between fork and exec.
    close(fds[0]);
    dup2(fds[1], STDOUT_FILENO);
    close(fds[1]);
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const std::string& arg : argv) {
      args.push_back(const_cast<char*>(arg.c_str()));
    }
    args.push_back(nullptr);
    execvp(args[0], args.data());
    _exit(127);  // exec failed; the parent sees exit status 127.
  }
  close(fds[1]);
  CloseStdout();
  stdout_fd_ = fds[0];
  pid_ = pid;
  return true;
}

bool ChildProcess::WaitForLinePrefix(const std::string& prefix,
                                     int timeout_ms, std::string* line) {
  if (stdout_fd_ < 0) return false;
  const Stopwatch watch;
  while (true) {
    // Consume complete buffered lines first.
    size_t newline;
    while ((newline = pending_.find('\n')) != std::string::npos) {
      std::string candidate = pending_.substr(0, newline);
      pending_.erase(0, newline + 1);
      if (!candidate.empty() && candidate.back() == '\r') {
        candidate.pop_back();
      }
      if (candidate.compare(0, prefix.size(), prefix) == 0) {
        *line = std::move(candidate);
        return true;
      }
    }
    const double elapsed_ms = watch.ElapsedMillis();
    if (elapsed_ms >= timeout_ms) return false;
    pollfd pfd{};
    pfd.fd = stdout_fd_;
    pfd.events = POLLIN;
    int ready;
    do {
      ready = poll(&pfd, 1, timeout_ms - static_cast<int>(elapsed_ms));
    } while (ready < 0 && errno == EINTR);
    if (ready <= 0) return false;  // Timeout or poll failure.
    char chunk[4096];
    ssize_t got;
    do {
      got = read(stdout_fd_, chunk, sizeof(chunk));
    } while (got < 0 && errno == EINTR);
    if (got <= 0) return false;  // EOF: the child exited or closed stdout.
    pending_.append(chunk, static_cast<size_t>(got));
  }
}

void ChildProcess::Kill(int signum) {
  if (pid_ > 0) kill(static_cast<pid_t>(pid_), signum);
}

bool ChildProcess::TryReap(int* status) {
  if (pid_ <= 0) return false;
  int raw = 0;
  const pid_t got = waitpid(static_cast<pid_t>(pid_), &raw, WNOHANG);
  if (got != static_cast<pid_t>(pid_)) return false;
  if (status != nullptr) *status = raw;
  pid_ = -1;
  CloseStdout();
  return true;
}

int ChildProcess::Reap() {
  if (pid_ <= 0) return 0;
  int raw = 0;
  pid_t got;
  do {
    got = waitpid(static_cast<pid_t>(pid_), &raw, 0);
  } while (got < 0 && errno == EINTR);
  pid_ = -1;
  CloseStdout();
  return raw;
}

bool SendSignal(long pid, int signum) {
  if (pid <= 0) return false;
  return kill(static_cast<pid_t>(pid), signum) == 0;
}

void SleepMillis(int ms) {
  if (ms <= 0) return;
  timespec spec{};
  spec.tv_sec = ms / 1000;
  spec.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
  while (nanosleep(&spec, &spec) != 0 && errno == EINTR) {
  }
}

}  // namespace cluster
}  // namespace warp
