#include "warp/simd/dispatch.h"

#include <atomic>

#include "warp/simd/vdouble.h"

namespace warp {
namespace simd {

namespace {

std::atomic<SimdMode> g_mode{SimdMode::kAuto};

bool DetectRuntimeSupport() {
#if defined(WARP_SIMD_BACKEND_AVX2)
  return __builtin_cpu_supports("avx2") != 0;
#elif defined(WARP_SIMD_BACKEND_NEON)
  return true;  // NEON is baseline on aarch64.
#else
  return false;
#endif
}

}  // namespace

bool ParseSimdMode(std::string_view text, SimdMode* mode) {
  if (text == "on") {
    *mode = SimdMode::kOn;
  } else if (text == "off") {
    *mode = SimdMode::kOff;
  } else if (text == "auto") {
    *mode = SimdMode::kAuto;
  } else {
    return false;
  }
  return true;
}

const char* SimdModeName(SimdMode mode) {
  switch (mode) {
    case SimdMode::kOff:
      return "off";
    case SimdMode::kOn:
      return "on";
    case SimdMode::kAuto:
    default:
      return "auto";
  }
}

void SetSimdMode(SimdMode mode) {
  g_mode.store(mode, std::memory_order_relaxed);
}

SimdMode GetSimdMode() { return g_mode.load(std::memory_order_relaxed); }

const char* SimdBackendName() { return kBackendName; }

bool SimdRuntimeSupported() {
  // The probe result never changes within a process.
  static const bool supported = kVectorBackend && DetectRuntimeSupport();
  return supported;
}

bool SimdActive() {
  switch (GetSimdMode()) {
    case SimdMode::kOff:
      return false;
    case SimdMode::kOn:
      return true;
    case SimdMode::kAuto:
    default:
      return SimdRuntimeSupported();
  }
}

bool WavefrontEligible(size_t width) {
  switch (GetSimdMode()) {
    case SimdMode::kOff:
      return false;
    case SimdMode::kOn:
      return true;
    case SimdMode::kAuto:
    default:
      return SimdRuntimeSupported() && width >= kWavefrontAutoMinWidth;
  }
}

bool EnvelopeEligible(size_t band) {
  switch (GetSimdMode()) {
    case SimdMode::kOff:
      return false;
    case SimdMode::kOn:
      return true;
    case SimdMode::kAuto:
    default:
      return SimdRuntimeSupported() && band <= kEnvelopeAutoMaxBand;
  }
}

}  // namespace simd
}  // namespace warp
