#include "helpers/local.h"

namespace warp {
int GenLocal() { return 3; }
}  // namespace warp
