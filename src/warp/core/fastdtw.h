// FastDTW (Salvador & Chan, "FastDTW: Toward Accurate Dynamic Time Warping
// in Linear Time and Space", Intelligent Data Analysis 11(5), 2007).
//
// The algorithm approximates Full DTW in three recursive steps:
//   1. Coarsen both series to half length (PAA by 2).
//   2. Recurse to find a warping path at the lower resolution.
//   3. Refine: project that path up one resolution, expand it by `radius`
//      cells in every direction, and run exact DTW inside that window.
// Recursion bottoms out at series shorter than radius + 2, where Full DTW
// is run directly — the semantics of the published reference
// implementation.
//
// The radius r trades accuracy for speed: larger r explores more cells.
// Note r is *not* a warping constraint (the paper is emphatic about the
// distinction between r and the Sakoe–Chiba w); FastDTW approximates
// *unconstrained* DTW.
//
// The returned distance is the cost of the path FastDTW finds, which is
// always >= the true DTW distance (the restricted search can only miss the
// optimum, never beat it).

#ifndef WARP_CORE_FASTDTW_H_
#define WARP_CORE_FASTDTW_H_

#include <span>

#include "warp/core/dtw.h"

namespace warp {

// Full FastDTW: distance + path. `cells_visited` in the result counts DP
// cells across *all* recursion levels, making work comparisons against
// exact cDTW meaningful.
DtwResult FastDtw(std::span<const double> x, std::span<const double> y,
                  size_t radius, CostKind cost = CostKind::kSquared);

// Convenience wrapper returning just the distance. FastDTW must compute
// the path at every level anyway, so this costs the same as FastDtw.
double FastDtwDistance(std::span<const double> x, std::span<const double> y,
                       size_t radius, CostKind cost = CostKind::kSquared);

// Multichannel FastDTW (dependent warping): channels are coarsened
// independently, the path is shared. Matches how the Python `fastdtw`
// package treats vector-valued series in the Appendix-B experiment.
DtwResult MultiFastDtw(const MultiSeries& x, const MultiSeries& y,
                       size_t radius, CostKind cost = CostKind::kSquared);

}  // namespace warp

#endif  // WARP_CORE_FASTDTW_H_
