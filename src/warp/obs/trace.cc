#include "warp/obs/trace.h"

#include <mutex>
#include <utility>

#include "warp/common/assert.h"

namespace warp {
namespace obs {

namespace {

// Completed spans, appended under a mutex from whichever thread closed
// them. Leaked singleton for the same static-teardown reason as the
// metrics registry.
struct SpanBuffer {
  std::mutex mutex;
  std::vector<SpanRecord> records;
};

SpanBuffer& GlobalSpanBuffer() {
  static SpanBuffer* buffer = new SpanBuffer();
  return *buffer;
}

// Each thread tracks its own open-span ancestry; spans must be closed in
// LIFO order, which scoped construction guarantees.
thread_local std::vector<std::string> open_span_names;

std::string JoinPath(const std::vector<std::string>& names) {
  std::string path;
  for (const std::string& name : names) {
    if (!path.empty()) path.push_back('/');
    path += name;
  }
  return path;
}

}  // namespace

TraceSpan::TraceSpan(std::string name) {
  open_span_names.push_back(std::move(name));
  start_counters_ = SnapshotCounters();
  watch_.Restart();
}

TraceSpan::~TraceSpan() {
  const double seconds = watch_.ElapsedSeconds();
  WARP_CHECK(!open_span_names.empty());

  SpanRecord record;
  record.seconds = seconds;
  record.counters = CountersSince(start_counters_);
  record.depth = open_span_names.size() - 1;
  record.path = JoinPath(open_span_names);
  record.name = open_span_names.back();
  open_span_names.pop_back();

  SpanBuffer& buffer = GlobalSpanBuffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.records.push_back(std::move(record));
}

std::vector<SpanRecord> DrainSpans() {
  SpanBuffer& buffer = GlobalSpanBuffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  std::vector<SpanRecord> drained = std::move(buffer.records);
  buffer.records.clear();
  return drained;
}

size_t ActiveSpanDepth() { return open_span_names.size(); }

}  // namespace obs
}  // namespace warp
