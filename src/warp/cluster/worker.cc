#include "warp/cluster/worker.h"

#include <cstdlib>

namespace warp {
namespace cluster {

std::vector<std::string> WorkerCommand(const std::string& worker_binary,
                                       const WorkerSpec& spec) {
  std::vector<std::string> argv;
  argv.push_back(worker_binary);
  argv.push_back("--worker");
  argv.push_back("--shard-id=" + std::to_string(spec.shard_id));
  argv.push_back("--shard-count=" + std::to_string(spec.shard_count));
  argv.push_back("--port=0");
  argv.push_back("--threads=" + std::to_string(spec.threads));
  argv.push_back("--cache=" + std::to_string(spec.cache_capacity));
  argv.push_back("--max-queue-depth=" + std::to_string(spec.max_queue_depth));
  if (!spec.snapshot_dir.empty()) {
    argv.push_back("--snapshot-dir=" + spec.snapshot_dir);
  }
  return argv;
}

bool ParseReadyPort(const std::string& line, int* port) {
  static const char kPrefix[] = "ready port=";
  if (line.compare(0, sizeof(kPrefix) - 1, kPrefix) != 0) return false;
  const std::string digits = line.substr(sizeof(kPrefix) - 1);
  if (digits.empty()) return false;
  char* end = nullptr;
  const long value = std::strtol(digits.c_str(), &end, 10);
  if (end == digits.c_str() || *end != '\0') return false;
  if (value <= 0 || value > 65535) return false;
  *port = static_cast<int>(value);
  return true;
}

bool WorkerClient::Connect(int port, int timeout_ms, std::string* error) {
  conn_.Close();
  conn_ = serve::ConnectLoopbackTimeout(port, timeout_ms, error);
  return conn_.valid();
}

bool WorkerClient::Send(const std::string& payload) {
  if (!conn_.valid()) return false;
  if (!conn_.WriteAll(payload)) {
    conn_.Close();
    return false;
  }
  return true;
}

bool WorkerClient::ReadLines(size_t expect, int timeout_ms,
                             std::vector<std::string>* responses) {
  responses->clear();
  if (!conn_.valid()) return false;
  responses->reserve(expect);
  for (size_t i = 0; i < expect; ++i) {
    if (timeout_ms > 0 && !conn_.WaitReadable(timeout_ms)) {
      conn_.Close();
      return false;
    }
    std::string line;
    if (!conn_.ReadLine(&line)) {
      conn_.Close();
      return false;
    }
    responses->push_back(std::move(line));
  }
  return true;
}

bool WorkerClient::RoundTrip(const std::string& payload, size_t expect,
                             std::vector<std::string>* responses) {
  responses->clear();
  if (!Send(payload)) return false;
  return ReadLines(expect, /*timeout_ms=*/0, responses);
}

}  // namespace cluster
}  // namespace warp
