// Loopback TCP primitives for the serve subsystem.
//
// The ONLY files in the repository allowed to issue raw socket syscalls
// (enforced by scripts/lint.sh): everything else — server, client, tools,
// tests — goes through TcpListener / TcpConn. The listener binds
// 127.0.0.1 exclusively; this subsystem is an in-process/loopback query
// service, not an exposed network daemon (docs/SERVING.md).

#ifndef WARP_SERVE_NET_H_
#define WARP_SERVE_NET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace warp {
namespace serve {

// A connected stream with buffered line reading. Movable, not copyable;
// closes on destruction.
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd) : fd_(fd) {}
  ~TcpConn();

  TcpConn(TcpConn&& other) noexcept;
  TcpConn& operator=(TcpConn&& other) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  bool valid() const { return fd_ >= 0; }

  // Reads one '\n'-terminated line (terminator stripped, '\r' too).
  // Returns false on EOF or error. Lines above the protocol's size cap
  // (64 MiB) fail the connection rather than buffering unboundedly.
  bool ReadLine(std::string* line);

  // True when at least one complete line is already buffered — the
  // server's cue to keep draining before answering, forming a pipeline
  // batch.
  bool HasBufferedLine() const;

  // Waits up to `timeout_ms` for the connection to become readable (data
  // or EOF). Returns true immediately when a complete line is already
  // buffered. The cluster supervisor's liveness pings use this so a hung
  // worker cannot block the monitor forever.
  bool WaitReadable(int timeout_ms);

  // Writes all of `data`; returns false on error.
  bool WriteAll(std::string_view data);

  // Half-closes both directions so a blocked reader unblocks (used for
  // server shutdown); Close() releases the descriptor.
  void ShutdownBoth();
  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;
};

// A listening socket bound to 127.0.0.1.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Binds and listens on loopback `port` (0 = kernel-assigned; port()
  // reports the actual one). Returns false and fills *error on failure.
  bool Listen(uint16_t port, std::string* error);

  int port() const { return port_; }
  bool valid() const { return fd_ >= 0; }

  // Waits up to `timeout_ms` for a connection. Returns a valid TcpConn,
  // or an invalid one on timeout/closure (distinguish with *timed_out).
  TcpConn AcceptWithTimeout(int timeout_ms, bool* timed_out);

  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

// Connects to 127.0.0.1:`port`. Returns an invalid conn and fills *error
// on failure.
TcpConn ConnectLoopback(int port, std::string* error);

// Like ConnectLoopback but gives up after `timeout_ms` instead of
// blocking in connect(). The cluster router and supervisor use this so a
// wedged worker costs a bounded wait, not a hang.
TcpConn ConnectLoopbackTimeout(int port, int timeout_ms, std::string* error);

}  // namespace serve
}  // namespace warp

#endif  // WARP_SERVE_NET_H_
