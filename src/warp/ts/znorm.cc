#include "warp/ts/znorm.h"

#include "warp/common/assert.h"
#include "warp/common/metrics.h"
#include "warp/simd/dispatch.h"
#include "warp/simd/vdouble.h"

namespace warp {

MeanStd ComputeMeanStd(std::span<const double> values) {
  WARP_CHECK(!values.empty());
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  const double n = static_cast<double>(values.size());
  MeanStd result;
  result.mean = sum / n;
  const double variance = sum_sq / n - result.mean * result.mean;
  result.stddev = variance > 0.0 ? std::sqrt(variance) : 0.0;
  return result;
}

void ZNormalizeInPlace(std::span<double> values, double min_stddev) {
  if (values.empty()) return;
  const MeanStd ms = ComputeMeanStd(values);
  if (ms.stddev < min_stddev) {
    for (double& v : values) v = 0.0;
    return;
  }
  // The mean/stddev reduction above stays scalar (vectorizing it would
  // re-associate the sums and move the result). The scale pass below is
  // per-element — one subtract, one multiply, no cross-lane data flow —
  // so its vector form is bitwise identical to the scalar loop.
  const double inv = 1.0 / ms.stddev;
  double* p = values.data();
  const size_t n = values.size();
  size_t i = 0;
  if (simd::SimdActive()) {
    const simd::vdouble mean_v = simd::vdouble::Broadcast(ms.mean);
    const simd::vdouble inv_v = simd::vdouble::Broadcast(inv);
    for (; i + simd::kLanes <= n; i += simd::kLanes) {
      ((simd::vdouble::Load(p + i) - mean_v) * inv_v).Store(p + i);
      WARP_COUNT(obs::Counter::kSimdBlocks);
    }
    WARP_COUNT_ADD(obs::Counter::kSimdScalarTail, n - i);
  }
  for (; i < n; ++i) p[i] = (p[i] - ms.mean) * inv;
}

std::vector<double> ZNormalized(std::span<const double> values,
                                double min_stddev) {
  std::vector<double> out(values.begin(), values.end());
  ZNormalizeInPlace(out, min_stddev);
  return out;
}

}  // namespace warp
