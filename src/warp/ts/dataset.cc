#include "warp/ts/dataset.h"

#include <algorithm>
#include <set>
#include <utility>

#include "warp/common/assert.h"
#include "warp/ts/znorm.h"

namespace warp {

std::vector<int> Dataset::Labels() const {
  std::set<int> labels;
  for (const auto& s : series_) labels.insert(s.label());
  return {labels.begin(), labels.end()};
}

std::map<int, size_t> Dataset::ClassCounts() const {
  std::map<int, size_t> counts;
  for (const auto& s : series_) ++counts[s.label()];
  return counts;
}

size_t Dataset::UniformLength() const {
  if (series_.empty()) return 0;
  const size_t length = series_[0].size();
  for (const auto& s : series_) {
    if (s.size() != length) return 0;
  }
  return length;
}

void Dataset::ZNormalizeAll() {
  for (auto& s : series_) ZNormalizeInPlace(s.mutable_values());
}

void Dataset::Shuffle(Rng& rng) {
  for (size_t i = series_.size(); i > 1; --i) {
    const size_t j = rng.UniformInt(i);
    std::swap(series_[i - 1], series_[j]);
  }
}

std::pair<Dataset, Dataset> Dataset::StratifiedSplit(
    double train_fraction) const {
  WARP_CHECK(train_fraction > 0.0 && train_fraction < 1.0);
  const std::map<int, size_t> counts = ClassCounts();

  Dataset train;
  Dataset test;
  train.set_name(name_ + "_train");
  test.set_name(name_ + "_test");

  std::map<int, size_t> train_quota;
  for (const auto& [label, count] : counts) {
    size_t quota = static_cast<size_t>(train_fraction *
                                       static_cast<double>(count));
    if (quota == 0 && count > 0) quota = 1;
    train_quota[label] = quota;
  }

  std::map<int, size_t> taken;
  for (const auto& s : series_) {
    if (taken[s.label()] < train_quota[s.label()]) {
      train.Add(s);
      ++taken[s.label()];
    } else {
      test.Add(s);
    }
  }
  return {std::move(train), std::move(test)};
}

}  // namespace warp
